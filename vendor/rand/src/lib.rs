//! Offline stand-in for `rand` 0.8.
//!
//! Implements the slice of the `rand` API the workspace uses — `StdRng`,
//! [`SeedableRng::seed_from_u64`], and the [`Rng`] convenience methods
//! `gen`, `gen_bool` and `gen_range` — over a deterministic
//! xoshiro256\*\* generator seeded through splitmix64 (the same seeding
//! construction real `rand` uses for `seed_from_u64`).
//!
//! The streams are NOT bit-compatible with the real crate, but everything
//! in the workspace that consumes randomness only relies on determinism
//! for a fixed seed, which this crate provides.

use std::ops::{Range, RangeInclusive};

/// Random number generators and adapters (mirrors `rand::rngs`).
pub mod rngs {
    /// The standard deterministic generator: xoshiro256\*\*.
    #[derive(Debug, Clone)]
    pub struct StdRng {
        pub(crate) s: [u64; 4],
    }
}

pub use rngs::StdRng;

fn splitmix64(state: &mut u64) -> u64 {
    *state = state.wrapping_add(0x9E37_79B9_7F4A_7C15);
    let mut z = *state;
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

/// Seedable generators (mirrors `rand::SeedableRng`).
pub trait SeedableRng: Sized {
    /// Builds a generator from a 64-bit seed, expanding it with splitmix64.
    fn seed_from_u64(seed: u64) -> Self;
}

impl SeedableRng for StdRng {
    fn seed_from_u64(seed: u64) -> Self {
        let mut sm = seed;
        let s = [
            splitmix64(&mut sm),
            splitmix64(&mut sm),
            splitmix64(&mut sm),
            splitmix64(&mut sm),
        ];
        StdRng { s }
    }
}

/// Uniform generation of a value of `Self` from raw generator output.
pub trait Standard: Sized {
    /// Draws one uniformly-distributed value.
    fn sample<R: Rng + ?Sized>(rng: &mut R) -> Self;
}

macro_rules! standard_uint {
    ($($t:ty),*) => {$(
        impl Standard for $t {
            fn sample<R: Rng + ?Sized>(rng: &mut R) -> Self {
                rng.next_u64() as $t
            }
        }
    )*};
}
standard_uint!(u8, u16, u32, u64, usize);

macro_rules! standard_sint {
    ($($t:ty),*) => {$(
        impl Standard for $t {
            fn sample<R: Rng + ?Sized>(rng: &mut R) -> Self {
                rng.next_u64() as $t
            }
        }
    )*};
}
standard_sint!(i8, i16, i32, i64, isize);

impl Standard for bool {
    fn sample<R: Rng + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64() & 1 == 1
    }
}

impl Standard for f64 {
    fn sample<R: Rng + ?Sized>(rng: &mut R) -> Self {
        // 53 uniform mantissa bits in [0, 1).
        (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }
}

impl Standard for f32 {
    fn sample<R: Rng + ?Sized>(rng: &mut R) -> Self {
        (rng.next_u64() >> 40) as f32 * (1.0 / (1u64 << 24) as f32)
    }
}

/// Ranges usable with [`Rng::gen_range`] (mirrors
/// `rand::distributions::uniform::SampleRange`).
pub trait SampleRange<T> {
    /// Draws one value uniformly from the range.
    fn sample_single<R: Rng + ?Sized>(self, rng: &mut R) -> T;
}

macro_rules! int_sample_range {
    ($($t:ty),*) => {$(
        impl SampleRange<$t> for Range<$t> {
            fn sample_single<R: Rng + ?Sized>(self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "gen_range: empty range");
                let span = (self.end as i128 - self.start as i128) as u128;
                let v = ((rng.next_u64() as u128) % span) as i128;
                (self.start as i128 + v) as $t
            }
        }
        impl SampleRange<$t> for RangeInclusive<$t> {
            fn sample_single<R: Rng + ?Sized>(self, rng: &mut R) -> $t {
                let (lo, hi) = (*self.start(), *self.end());
                assert!(lo <= hi, "gen_range: empty range");
                let span = (hi as i128 - lo as i128) as u128 + 1;
                let v = ((rng.next_u64() as u128) % span) as i128;
                (lo as i128 + v) as $t
            }
        }
    )*};
}
int_sample_range!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl SampleRange<f64> for Range<f64> {
    fn sample_single<R: Rng + ?Sized>(self, rng: &mut R) -> f64 {
        assert!(self.start < self.end, "gen_range: empty range");
        let unit = f64::sample(rng);
        self.start + unit * (self.end - self.start)
    }
}

impl SampleRange<f64> for RangeInclusive<f64> {
    fn sample_single<R: Rng + ?Sized>(self, rng: &mut R) -> f64 {
        let (lo, hi) = (*self.start(), *self.end());
        assert!(lo <= hi, "gen_range: empty range");
        lo + f64::sample(rng) * (hi - lo)
    }
}

/// The user-facing generator trait (mirrors `rand::Rng`).
pub trait Rng {
    /// The raw 64-bit output stream.
    fn next_u64(&mut self) -> u64;

    /// Draws a uniformly-distributed value of type `T`.
    fn gen<T: Standard>(&mut self) -> T {
        T::sample(self)
    }

    /// Returns `true` with probability `p`.
    ///
    /// # Panics
    ///
    /// Panics if `p` is not in `[0, 1]`.
    fn gen_bool(&mut self, p: f64) -> bool {
        assert!((0.0..=1.0).contains(&p), "gen_bool: p must be in [0, 1]");
        f64::sample(self) < p
    }

    /// Draws a value uniformly from `range`.
    fn gen_range<T, S: SampleRange<T>>(&mut self, range: S) -> T {
        range.sample_single(self)
    }
}

impl Rng for StdRng {
    fn next_u64(&mut self) -> u64 {
        // xoshiro256** by Blackman & Vigna (public domain).
        let s = &mut self.s;
        let result = s[1].wrapping_mul(5).rotate_left(7).wrapping_mul(9);
        let t = s[1] << 17;
        s[2] ^= s[0];
        s[3] ^= s[1];
        s[1] ^= s[2];
        s[0] ^= s[3];
        s[2] ^= t;
        s[3] = s[3].rotate_left(45);
        result
    }
}

impl<R: Rng + ?Sized> Rng for &mut R {
    fn next_u64(&mut self) -> u64 {
        (**self).next_u64()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn deterministic_for_fixed_seed() {
        let mut a = StdRng::seed_from_u64(42);
        let mut b = StdRng::seed_from_u64(42);
        for _ in 0..100 {
            assert_eq!(a.gen::<u64>(), b.gen::<u64>());
        }
        let mut c = StdRng::seed_from_u64(43);
        assert_ne!(StdRng::seed_from_u64(42).gen::<u64>(), c.gen::<u64>());
    }

    #[test]
    fn gen_range_respects_bounds() {
        let mut rng = StdRng::seed_from_u64(7);
        for _ in 0..1000 {
            let v = rng.gen_range(3u32..17);
            assert!((3..17).contains(&v));
            let i = rng.gen_range(-5i32..5);
            assert!((-5..5).contains(&i));
            let f = rng.gen_range(0.25f64..0.75);
            assert!((0.25..0.75).contains(&f));
            let w = rng.gen_range(1u32..=64);
            assert!((1..=64).contains(&w));
        }
    }

    #[test]
    fn gen_bool_extremes() {
        let mut rng = StdRng::seed_from_u64(1);
        assert!(!rng.gen_bool(0.0));
        assert!(rng.gen_bool(1.0));
        let hits = (0..10_000).filter(|_| rng.gen_bool(0.5)).count();
        assert!((4_000..6_000).contains(&hits), "p=0.5 gave {hits}/10000");
    }

    #[test]
    fn unit_floats_in_range() {
        let mut rng = StdRng::seed_from_u64(2);
        for _ in 0..1000 {
            let f = rng.gen::<f64>();
            assert!((0.0..1.0).contains(&f));
        }
    }
}

//! Offline stand-in for `proptest`.
//!
//! Provides the strategy combinators and macros the workspace's property
//! tests use: `proptest!`, `prop_assert!`/`prop_assert_eq!`, `any`,
//! integer/float range strategies, `prop_map`, `collection::vec` and
//! `sample::select`.
//!
//! Unlike real proptest there is no shrinking and no persistence of
//! failing seeds: each test runs a fixed number of deterministic random
//! cases (seeded from the test's module path and name), and a failing
//! case panics with the ordinary `assert!` message. That retains the
//! bug-finding value of the properties while keeping this crate
//! dependency-free.

/// Number of random cases each `proptest!` test executes.
pub const NUM_CASES: u32 = 96;

pub mod test_runner {
    //! The per-test random source.

    use rand::{Rng, SeedableRng, StdRng};

    /// Deterministic RNG handed to strategies during a test run.
    #[derive(Debug, Clone)]
    pub struct TestRng {
        inner: StdRng,
    }

    impl TestRng {
        /// Creates a generator whose stream is a pure function of `name`
        /// (typically the test's `module_path!()::name`).
        pub fn deterministic(name: &str) -> Self {
            // FNV-1a over the test name gives every test its own stream
            // while keeping runs reproducible.
            let mut h: u64 = 0xcbf2_9ce4_8422_2325;
            for b in name.bytes() {
                h ^= u64::from(b);
                h = h.wrapping_mul(0x0000_0100_0000_01B3);
            }
            TestRng {
                inner: StdRng::seed_from_u64(h),
            }
        }

        /// The raw output stream.
        pub fn next_u64(&mut self) -> u64 {
            self.inner.next_u64()
        }

        /// Uniform value in `[0, 1)`.
        pub fn unit_f64(&mut self) -> f64 {
            self.inner.gen::<f64>()
        }

        /// Uniform integer in `[0, bound)`.
        ///
        /// # Panics
        ///
        /// Panics if `bound` is zero.
        pub fn below(&mut self, bound: u64) -> u64 {
            assert!(bound > 0, "below: empty range");
            self.inner.gen_range(0..bound)
        }
    }
}

pub mod strategy {
    //! Value-generation strategies.

    use super::test_runner::TestRng;
    use std::ops::{Range, RangeInclusive};

    /// A recipe for generating values of an associated type.
    pub trait Strategy {
        /// The type of value this strategy produces.
        type Value;

        /// Draws one value.
        fn generate(&self, rng: &mut TestRng) -> Self::Value;

        /// Maps generated values through `f`.
        fn prop_map<U, F: Fn(Self::Value) -> U>(self, f: F) -> Map<Self, F>
        where
            Self: Sized,
        {
            Map { inner: self, f }
        }
    }

    /// Strategy returned by [`Strategy::prop_map`].
    pub struct Map<S, F> {
        pub(crate) inner: S,
        pub(crate) f: F,
    }

    impl<S: Strategy, U, F: Fn(S::Value) -> U> Strategy for Map<S, F> {
        type Value = U;
        fn generate(&self, rng: &mut TestRng) -> U {
            (self.f)(self.inner.generate(rng))
        }
    }

    /// Types with a canonical "any value" strategy.
    pub trait Arbitrary: Sized {
        /// Draws an unconstrained value.
        fn arbitrary(rng: &mut TestRng) -> Self;
    }

    macro_rules! arbitrary_int {
        ($($t:ty),*) => {$(
            impl Arbitrary for $t {
                fn arbitrary(rng: &mut TestRng) -> Self {
                    rng.next_u64() as $t
                }
            }
        )*};
    }
    arbitrary_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

    impl Arbitrary for bool {
        fn arbitrary(rng: &mut TestRng) -> Self {
            rng.next_u64() & 1 == 1
        }
    }

    impl Arbitrary for f64 {
        fn arbitrary(rng: &mut TestRng) -> Self {
            // Finite and sign-symmetric; unconstrained enough for the
            // workspace's numeric properties.
            rng.unit_f64() * 2e12 - 1e12
        }
    }

    /// Strategy produced by [`any`].
    pub struct Any<T>(pub(crate) std::marker::PhantomData<T>);

    impl<T: Arbitrary> Strategy for Any<T> {
        type Value = T;
        fn generate(&self, rng: &mut TestRng) -> T {
            T::arbitrary(rng)
        }
    }

    macro_rules! int_range_strategy {
        ($($t:ty),*) => {$(
            impl Strategy for Range<$t> {
                type Value = $t;
                fn generate(&self, rng: &mut TestRng) -> $t {
                    assert!(self.start < self.end, "strategy range is empty");
                    let span = (self.end as i128 - self.start as i128) as u64;
                    (self.start as i128 + rng.below(span) as i128) as $t
                }
            }
            impl Strategy for RangeInclusive<$t> {
                type Value = $t;
                fn generate(&self, rng: &mut TestRng) -> $t {
                    let (lo, hi) = (*self.start(), *self.end());
                    assert!(lo <= hi, "strategy range is empty");
                    let span = (hi as i128 - lo as i128 + 1) as u64;
                    (lo as i128 + rng.below(span) as i128) as $t
                }
            }
        )*};
    }
    int_range_strategy!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

    impl Strategy for Range<f64> {
        type Value = f64;
        fn generate(&self, rng: &mut TestRng) -> f64 {
            assert!(self.start < self.end, "strategy range is empty");
            self.start + rng.unit_f64() * (self.end - self.start)
        }
    }

    impl Strategy for RangeInclusive<f64> {
        type Value = f64;
        fn generate(&self, rng: &mut TestRng) -> f64 {
            let (lo, hi) = (*self.start(), *self.end());
            assert!(lo <= hi, "strategy range is empty");
            lo + rng.unit_f64() * (hi - lo)
        }
    }

    /// A strategy that always yields a clone of one value.
    #[derive(Debug, Clone)]
    pub struct Just<T>(pub T);

    impl<T: Clone> Strategy for Just<T> {
        type Value = T;
        fn generate(&self, _rng: &mut TestRng) -> T {
            self.0.clone()
        }
    }

    macro_rules! tuple_strategy {
        ($(($($n:tt $t:ident),+))+) => {$(
            impl<$($t: Strategy),+> Strategy for ($($t,)+) {
                type Value = ($($t::Value,)+);
                fn generate(&self, rng: &mut TestRng) -> Self::Value {
                    ($(self.$n.generate(rng),)+)
                }
            }
        )+};
    }
    tuple_strategy! {
        (0 A, 1 B)
        (0 A, 1 B, 2 C)
        (0 A, 1 B, 2 C, 3 D)
    }
}

/// Returns the canonical strategy for `T` (mirrors `proptest::arbitrary::any`).
pub fn any<T: strategy::Arbitrary>() -> strategy::Any<T> {
    strategy::Any(std::marker::PhantomData)
}

pub mod collection {
    //! Collection strategies.

    use super::strategy::Strategy;
    use super::test_runner::TestRng;
    use std::ops::Range;

    /// Strategy for `Vec<S::Value>` with a length drawn from `len`.
    pub struct VecStrategy<S> {
        element: S,
        len: Range<usize>,
    }

    /// Generates vectors whose elements come from `element` and whose
    /// length is uniform in `len`.
    pub fn vec<S: Strategy>(element: S, len: Range<usize>) -> VecStrategy<S> {
        VecStrategy { element, len }
    }

    impl<S: Strategy> Strategy for VecStrategy<S> {
        type Value = Vec<S::Value>;
        fn generate(&self, rng: &mut TestRng) -> Self::Value {
            let n = self.len.clone().generate(rng);
            (0..n).map(|_| self.element.generate(rng)).collect()
        }
    }
}

pub mod sample {
    //! Strategies that pick from explicit value sets.

    use super::strategy::Strategy;
    use super::test_runner::TestRng;

    /// Strategy returned by [`select`].
    pub struct Select<T> {
        options: Vec<T>,
    }

    /// Picks uniformly from `options`.
    ///
    /// # Panics
    ///
    /// Panics at generation time if `options` is empty.
    pub fn select<T: Clone>(options: Vec<T>) -> Select<T> {
        Select { options }
    }

    impl<T: Clone> Strategy for Select<T> {
        type Value = T;
        fn generate(&self, rng: &mut TestRng) -> T {
            assert!(!self.options.is_empty(), "select: no options");
            let idx = rng.below(self.options.len() as u64) as usize;
            self.options[idx].clone()
        }
    }
}

pub mod prelude {
    //! The glob-import surface: `use proptest::prelude::*;`.

    pub use crate::strategy::{Just, Strategy};
    pub use crate::{any, prop_assert, prop_assert_eq, prop_assert_ne, proptest};
}

/// Runs each contained `#[test]` function over [`NUM_CASES`] random cases.
///
/// Supported argument form: `name in strategy_expr`. The body runs once per
/// case with the arguments bound to freshly generated values.
#[macro_export]
macro_rules! proptest {
    ($(
        $(#[$meta:meta])*
        fn $name:ident($($arg:ident in $strat:expr),* $(,)?) $body:block
    )*) => {
        $(
            $(#[$meta])*
            fn $name() {
                let __strategies = ($(($strat),)*);
                #[allow(unused_variables, unused_mut)]
                let mut __rng = $crate::test_runner::TestRng::deterministic(
                    concat!(module_path!(), "::", stringify!($name)),
                );
                for __case in 0..$crate::NUM_CASES {
                    let ($($arg,)*) = {
                        #[allow(unused_imports)]
                        use $crate::strategy::Strategy as _;
                        let ($(ref $arg,)*) = __strategies;
                        ($($arg.generate(&mut __rng),)*)
                    };
                    $body
                }
            }
        )*
    };
}

/// Asserts a property holds for the current case (panics on failure).
#[macro_export]
macro_rules! prop_assert {
    ($($t:tt)*) => { assert!($($t)*) };
}

/// Asserts two expressions are equal for the current case.
#[macro_export]
macro_rules! prop_assert_eq {
    ($($t:tt)*) => { assert_eq!($($t)*) };
}

/// Asserts two expressions are unequal for the current case.
#[macro_export]
macro_rules! prop_assert_ne {
    ($($t:tt)*) => { assert_ne!($($t)*) };
}

#[cfg(test)]
mod tests {
    use crate::prelude::*;

    proptest! {
        #[test]
        fn ranges_in_bounds(a in 3u32..17, b in -5i32..=5, f in 0.25f64..0.75) {
            prop_assert!((3..17).contains(&a));
            prop_assert!((-5..=5).contains(&b));
            prop_assert!((0.25..0.75).contains(&f));
        }

        #[test]
        fn map_and_collections(
            w in (1u32..=64).prop_map(|b| b * 2),
            v in crate::collection::vec(0u64..100, 2..20),
        ) {
            prop_assert!((2..=128).contains(&w));
            prop_assert!(v.len() >= 2 && v.len() < 20);
            prop_assert!(v.iter().all(|&x| x < 100));
        }

        #[test]
        fn select_picks_members(x in crate::sample::select(vec![1u8, 3, 5])) {
            prop_assert!([1u8, 3, 5].contains(&x));
        }

        #[test]
        fn any_is_unconstrained(x in any::<u64>(), flag in any::<bool>()) {
            let _ = (x, flag);
        }
    }

    #[test]
    fn deterministic_across_runs() {
        let mut a = crate::test_runner::TestRng::deterministic("t");
        let mut b = crate::test_runner::TestRng::deterministic("t");
        assert_eq!(a.next_u64(), b.next_u64());
        let mut c = crate::test_runner::TestRng::deterministic("u");
        assert_ne!(
            crate::test_runner::TestRng::deterministic("t").next_u64(),
            c.next_u64()
        );
    }
}

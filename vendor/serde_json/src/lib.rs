//! Offline stand-in for `serde_json`.
//!
//! Works directly on the vendored `serde` crate's [`Value`] tree:
//! `to_string`/`to_string_pretty` render a value, `from_str` parses JSON
//! text back into a value and decodes it. The text format is standard JSON
//! with sorted object keys (objects are `BTreeMap`s), so output is
//! deterministic — which the artifact store relies on for checksumming.

pub use serde::{Number, Value};

use std::collections::BTreeMap;
use std::fmt;

/// JSON map type, as used for building documents by hand.
///
/// Real `serde_json` has a dedicated `Map<String, Value>`; the vendored
/// value tree stores objects as `BTreeMap` directly, so the alias is exact.
pub type Map = BTreeMap<String, Value>;

/// Error produced by [`from_str`] (syntax) or decoding (shape mismatch).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Error(pub String);

impl fmt::Display for Error {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "JSON error: {}", self.0)
    }
}

impl std::error::Error for Error {}

impl From<serde::DeError> for Error {
    fn from(e: serde::DeError) -> Self {
        Error(e.0)
    }
}

/// Serializes a value to compact JSON.
///
/// # Errors
///
/// Never fails with the vendored value model; the `Result` mirrors the real
/// crate's signature.
pub fn to_string<T: serde::Serialize + ?Sized>(value: &T) -> Result<String, Error> {
    let mut out = String::new();
    write_value(&mut out, &value.to_value(), None, 0);
    Ok(out)
}

/// Serializes a value to human-readable JSON (two-space indent).
///
/// # Errors
///
/// Never fails with the vendored value model; the `Result` mirrors the real
/// crate's signature.
pub fn to_string_pretty<T: serde::Serialize + ?Sized>(value: &T) -> Result<String, Error> {
    let mut out = String::new();
    write_value(&mut out, &value.to_value(), Some(2), 0);
    Ok(out)
}

/// Parses JSON text and decodes it into `T`.
///
/// # Errors
///
/// Returns [`Error`] on malformed JSON or when the document's shape does not
/// match `T`.
pub fn from_str<T: serde::Deserialize>(s: &str) -> Result<T, Error> {
    let value = parse_value(s)?;
    Ok(T::from_value(&value)?)
}

/// Converts any serializable value into a [`Value`] tree.
pub fn to_value<T: serde::Serialize + ?Sized>(value: &T) -> Result<Value, Error> {
    Ok(value.to_value())
}

/// Decodes a [`Value`] tree into `T`.
///
/// # Errors
///
/// Returns [`Error`] when the value's shape does not match `T`.
pub fn from_value<T: serde::Deserialize>(value: &Value) -> Result<T, Error> {
    Ok(T::from_value(value)?)
}

/// Builds a [`Value`] in place.
///
/// Supports the subset the workspace uses: `null`, object literals with
/// string keys, array literals, and arbitrary serializable expressions.
#[macro_export]
macro_rules! json {
    (null) => { $crate::Value::Null };
    ({ $($key:tt : $value:expr),* $(,)? }) => {{
        let mut __map = $crate::Map::new();
        $( __map.insert(($key).to_string(), $crate::json!($value)); )*
        $crate::Value::Object(__map)
    }};
    ([ $($elem:expr),* $(,)? ]) => {
        $crate::Value::Array(vec![ $( $crate::json!($elem) ),* ])
    };
    ($other:expr) => { $crate::__private::Serialize::to_value(&$other) };
}

/// Implementation detail of [`json!`]; not part of the public API.
#[doc(hidden)]
pub mod __private {
    pub use serde::Serialize;
}

// ---- rendering -------------------------------------------------------------

fn write_value(out: &mut String, v: &Value, indent: Option<usize>, depth: usize) {
    match v {
        Value::Null => out.push_str("null"),
        Value::Bool(true) => out.push_str("true"),
        Value::Bool(false) => out.push_str("false"),
        Value::Number(n) => write_number(out, *n),
        Value::String(s) => write_escaped(out, s),
        Value::Array(items) => {
            if items.is_empty() {
                out.push_str("[]");
                return;
            }
            out.push('[');
            for (i, item) in items.iter().enumerate() {
                if i > 0 {
                    out.push(',');
                }
                newline_indent(out, indent, depth + 1);
                write_value(out, item, indent, depth + 1);
            }
            newline_indent(out, indent, depth);
            out.push(']');
        }
        Value::Object(entries) => {
            if entries.is_empty() {
                out.push_str("{}");
                return;
            }
            out.push('{');
            for (i, (k, item)) in entries.iter().enumerate() {
                if i > 0 {
                    out.push(',');
                }
                newline_indent(out, indent, depth + 1);
                write_escaped(out, k);
                out.push(':');
                if indent.is_some() {
                    out.push(' ');
                }
                write_value(out, item, indent, depth + 1);
            }
            newline_indent(out, indent, depth);
            out.push('}');
        }
    }
}

fn newline_indent(out: &mut String, indent: Option<usize>, depth: usize) {
    if let Some(width) = indent {
        out.push('\n');
        for _ in 0..width * depth {
            out.push(' ');
        }
    }
}

fn write_number(out: &mut String, n: Number) {
    match n {
        Number::U64(u) => out.push_str(&u.to_string()),
        Number::I64(i) => out.push_str(&i.to_string()),
        Number::F64(f) if f.is_finite() => {
            let s = format!("{f}");
            out.push_str(&s);
            // Keep floats recognisable as floats on re-parse.
            if !s.contains(['.', 'e', 'E']) {
                out.push_str(".0");
            }
        }
        // JSON has no NaN/Infinity; match serde_json's lossy behaviour.
        Number::F64(_) => out.push_str("null"),
    }
}

fn write_escaped(out: &mut String, s: &str) {
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                out.push_str(&format!("\\u{:04x}", c as u32));
            }
            c => out.push(c),
        }
    }
    out.push('"');
}

// ---- parsing ---------------------------------------------------------------

struct Parser<'a> {
    bytes: &'a [u8],
    pos: usize,
}

fn parse_value(s: &str) -> Result<Value, Error> {
    let mut p = Parser {
        bytes: s.as_bytes(),
        pos: 0,
    };
    let v = p.value()?;
    p.skip_ws();
    if p.pos != p.bytes.len() {
        return Err(Error(format!("trailing characters at byte {}", p.pos)));
    }
    Ok(v)
}

impl<'a> Parser<'a> {
    fn skip_ws(&mut self) {
        while let Some(&b) = self.bytes.get(self.pos) {
            if matches!(b, b' ' | b'\t' | b'\n' | b'\r') {
                self.pos += 1;
            } else {
                break;
            }
        }
    }

    fn peek(&mut self) -> Result<u8, Error> {
        self.skip_ws();
        self.bytes
            .get(self.pos)
            .copied()
            .ok_or_else(|| Error("unexpected end of input".into()))
    }

    fn expect(&mut self, b: u8) -> Result<(), Error> {
        if self.peek()? == b {
            self.pos += 1;
            Ok(())
        } else {
            Err(Error(format!(
                "expected `{}` at byte {}",
                b as char, self.pos
            )))
        }
    }

    fn eat_keyword(&mut self, kw: &str, v: Value) -> Result<Value, Error> {
        if self.bytes[self.pos..].starts_with(kw.as_bytes()) {
            self.pos += kw.len();
            Ok(v)
        } else {
            Err(Error(format!("invalid literal at byte {}", self.pos)))
        }
    }

    fn value(&mut self) -> Result<Value, Error> {
        match self.peek()? {
            b'n' => self.eat_keyword("null", Value::Null),
            b't' => self.eat_keyword("true", Value::Bool(true)),
            b'f' => self.eat_keyword("false", Value::Bool(false)),
            b'"' => self.string().map(Value::String),
            b'[' => self.array(),
            b'{' => self.object(),
            b'-' | b'0'..=b'9' => self.number(),
            other => Err(Error(format!(
                "unexpected character `{}` at byte {}",
                other as char, self.pos
            ))),
        }
    }

    fn array(&mut self) -> Result<Value, Error> {
        self.expect(b'[')?;
        let mut items = Vec::new();
        if self.peek()? == b']' {
            self.pos += 1;
            return Ok(Value::Array(items));
        }
        loop {
            items.push(self.value()?);
            match self.peek()? {
                b',' => self.pos += 1,
                b']' => {
                    self.pos += 1;
                    return Ok(Value::Array(items));
                }
                other => {
                    return Err(Error(format!(
                        "expected `,` or `]`, got `{}` at byte {}",
                        other as char, self.pos
                    )))
                }
            }
        }
    }

    fn object(&mut self) -> Result<Value, Error> {
        self.expect(b'{')?;
        let mut entries = BTreeMap::new();
        if self.peek()? == b'}' {
            self.pos += 1;
            return Ok(Value::Object(entries));
        }
        loop {
            if self.peek()? != b'"' {
                return Err(Error(format!("expected object key at byte {}", self.pos)));
            }
            let key = self.string()?;
            self.expect(b':')?;
            entries.insert(key, self.value()?);
            match self.peek()? {
                b',' => self.pos += 1,
                b'}' => {
                    self.pos += 1;
                    return Ok(Value::Object(entries));
                }
                other => {
                    return Err(Error(format!(
                        "expected `,` or `}}`, got `{}` at byte {}",
                        other as char, self.pos
                    )))
                }
            }
        }
    }

    fn string(&mut self) -> Result<String, Error> {
        self.expect(b'"')?;
        let mut out = String::new();
        loop {
            // Fast path: take the maximal span free of quotes and escapes in
            // one go, validating its UTF-8 once. Per-character validation of
            // the remaining input would make parsing quadratic.
            let span = self.pos;
            while self
                .bytes
                .get(self.pos)
                .is_some_and(|&b| b != b'"' && b != b'\\')
            {
                self.pos += 1;
            }
            if self.pos > span {
                let chunk = std::str::from_utf8(&self.bytes[span..self.pos])
                    .map_err(|_| Error("invalid UTF-8".into()))?;
                out.push_str(chunk);
            }
            let b = *self
                .bytes
                .get(self.pos)
                .ok_or_else(|| Error("unterminated string".into()))?;
            match b {
                b'"' => {
                    self.pos += 1;
                    return Ok(out);
                }
                b'\\' => {
                    self.pos += 1;
                    let esc = *self
                        .bytes
                        .get(self.pos)
                        .ok_or_else(|| Error("unterminated escape".into()))?;
                    self.pos += 1;
                    match esc {
                        b'"' => out.push('"'),
                        b'\\' => out.push('\\'),
                        b'/' => out.push('/'),
                        b'n' => out.push('\n'),
                        b'r' => out.push('\r'),
                        b't' => out.push('\t'),
                        b'b' => out.push('\u{0008}'),
                        b'f' => out.push('\u{000C}'),
                        b'u' => {
                            let hex = self
                                .bytes
                                .get(self.pos..self.pos + 4)
                                .ok_or_else(|| Error("truncated \\u escape".into()))?;
                            let hex = std::str::from_utf8(hex)
                                .map_err(|_| Error("invalid \\u escape".into()))?;
                            let code = u32::from_str_radix(hex, 16)
                                .map_err(|_| Error("invalid \\u escape".into()))?;
                            self.pos += 4;
                            out.push(
                                char::from_u32(code)
                                    .ok_or_else(|| Error("invalid \\u code point".into()))?,
                            );
                        }
                        other => {
                            return Err(Error(format!("bad escape `\\{}`", other as char)));
                        }
                    }
                }
                // The fast path stops only at `"` or `\`.
                _ => unreachable!("span scan stops only at quote or escape"),
            }
        }
    }

    fn number(&mut self) -> Result<Value, Error> {
        let start = self.pos;
        if self.bytes.get(self.pos) == Some(&b'-') {
            self.pos += 1;
        }
        let mut is_float = false;
        while let Some(&b) = self.bytes.get(self.pos) {
            match b {
                b'0'..=b'9' => self.pos += 1,
                b'.' | b'e' | b'E' | b'+' | b'-' => {
                    is_float = true;
                    self.pos += 1;
                }
                _ => break,
            }
        }
        let text = std::str::from_utf8(&self.bytes[start..self.pos])
            .map_err(|_| Error("invalid number".into()))?;
        if !is_float {
            if let Ok(u) = text.parse::<u64>() {
                return Ok(Value::Number(Number::U64(u)));
            }
            if let Ok(i) = text.parse::<i64>() {
                return Ok(Value::Number(Number::I64(i)));
            }
        }
        text.parse::<f64>()
            .map(|f| Value::Number(Number::F64(f)))
            .map_err(|_| Error(format!("invalid number `{text}`")))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn render_and_parse_round_trip() {
        let mut m = Map::new();
        m.insert("name".into(), json!("rok"));
        m.insert("cycles".into(), json!(1000u64));
        m.insert("power".into(), json!(12.5f64));
        m.insert("tags".into(), json!([1u32, 2u32, 3u32]));
        let doc = Value::Object(m);
        for text in [to_string(&doc).unwrap(), to_string_pretty(&doc).unwrap()] {
            let back: Value = from_str(&text).unwrap();
            assert_eq!(back, doc);
        }
    }

    #[test]
    fn json_macro_shapes() {
        assert_eq!(json!(null), Value::Null);
        let v = json!({ "a": 1u32, "b": [true, false] });
        assert_eq!(v.object_get("a").and_then(Value::as_u64), Some(1));
        assert_eq!(
            v.object_get("b"),
            Some(&Value::Array(vec![Value::Bool(true), Value::Bool(false)]))
        );
    }

    #[test]
    fn escapes_round_trip() {
        let s = "line\n\"quoted\" \\ tab\t\u{1}µ".to_owned();
        let text = to_string(&s).unwrap();
        let back: String = from_str(&text).unwrap();
        assert_eq!(back, s);
    }

    #[test]
    fn typed_round_trip() {
        let v: Vec<(String, u64)> = vec![("a".into(), 1), ("b".into(), u64::MAX)];
        let text = to_string(&v).unwrap();
        let back: Vec<(String, u64)> = from_str(&text).unwrap();
        assert_eq!(back, v);
    }

    #[test]
    fn negative_and_float_numbers() {
        let back: i64 = from_str("-42").unwrap();
        assert_eq!(back, -42);
        let back: f64 = from_str("-1.5e3").unwrap();
        assert_eq!(back, -1500.0);
        let ser = to_string(&2.0f64).unwrap();
        assert_eq!(ser, "2.0");
    }

    #[test]
    fn syntax_errors_reported() {
        assert!(from_str::<Value>("{").is_err());
        assert!(from_str::<Value>("[1,]").is_err());
        assert!(from_str::<Value>("nulL").is_err());
        assert!(from_str::<Value>("1 2").is_err());
    }
}

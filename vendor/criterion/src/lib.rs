//! Offline stand-in for `criterion`.
//!
//! Implements the benchmark-group API surface the workspace's benches use
//! (`benchmark_group`, `sample_size`, `throughput`, `bench_function`,
//! `b.iter`, `criterion_group!`/`criterion_main!`) over a simple
//! wall-clock harness: a warm-up pass sizes the iteration count, then each
//! sample is timed and the median/min/max are reported on stdout.
//!
//! There is no statistical analysis, plotting or result persistence —
//! numbers printed by this harness are indicative, not rigorous. That is
//! sufficient for the repo's relative comparisons (e.g. cold vs warm
//! prepare), which span orders of magnitude.

use std::time::{Duration, Instant};

/// Measurement units for reported throughput.
#[derive(Debug, Clone, Copy)]
pub enum Throughput {
    /// Elements processed per iteration.
    Elements(u64),
    /// Bytes processed per iteration.
    Bytes(u64),
}

/// Entry point handed to benchmark functions.
#[derive(Debug, Default)]
pub struct Criterion {
    _private: (),
}

impl Criterion {
    /// Starts a named group of related benchmarks.
    pub fn benchmark_group(&mut self, name: &str) -> BenchmarkGroup<'_> {
        println!("\nbenchmark group: {name}");
        BenchmarkGroup {
            _parent: self,
            sample_size: 20,
            throughput: None,
        }
    }

    /// Runs a stand-alone benchmark outside any group.
    pub fn bench_function<F: FnMut(&mut Bencher)>(&mut self, id: &str, mut f: F) -> &mut Self {
        run_benchmark(id, 20, None, &mut f);
        self
    }
}

/// A collection of benchmarks sharing sample-size and throughput settings.
pub struct BenchmarkGroup<'a> {
    _parent: &'a mut Criterion,
    sample_size: usize,
    throughput: Option<Throughput>,
}

impl BenchmarkGroup<'_> {
    /// Sets how many timed samples each benchmark takes.
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        self.sample_size = n.max(2);
        self
    }

    /// Declares per-iteration throughput so rates are reported.
    pub fn throughput(&mut self, throughput: Throughput) -> &mut Self {
        self.throughput = Some(throughput);
        self
    }

    /// Times one benchmark.
    pub fn bench_function<F: FnMut(&mut Bencher)>(&mut self, id: &str, mut f: F) -> &mut Self {
        run_benchmark(id, self.sample_size, self.throughput, &mut f);
        self
    }

    /// Ends the group (kept for API compatibility; no-op).
    pub fn finish(self) {}
}

/// Timer handle passed to the benchmark closure.
pub struct Bencher {
    samples: Vec<Duration>,
    iters_per_sample: u64,
    mode: BencherMode,
}

enum BencherMode {
    /// Calibrate `iters_per_sample` from a single probe run.
    Warmup,
    /// Record `samples` timed runs.
    Measure,
}

impl Bencher {
    /// Runs `routine` under the timer.
    pub fn iter<O, F: FnMut() -> O>(&mut self, mut routine: F) {
        match self.mode {
            BencherMode::Warmup => {
                // One probe to size the sample loop towards ~50ms/sample,
                // bounded so huge routines still complete quickly.
                let start = Instant::now();
                std::hint::black_box(routine());
                let once = start.elapsed().max(Duration::from_nanos(1));
                let target = Duration::from_millis(50);
                self.iters_per_sample =
                    (target.as_nanos() / once.as_nanos()).clamp(1, 10_000) as u64;
            }
            BencherMode::Measure => {
                let start = Instant::now();
                for _ in 0..self.iters_per_sample {
                    std::hint::black_box(routine());
                }
                self.samples
                    .push(start.elapsed() / self.iters_per_sample as u32);
            }
        }
    }
}

fn run_benchmark<F: FnMut(&mut Bencher)>(
    id: &str,
    sample_size: usize,
    throughput: Option<Throughput>,
    f: &mut F,
) {
    let mut b = Bencher {
        samples: Vec::new(),
        iters_per_sample: 1,
        mode: BencherMode::Warmup,
    };
    f(&mut b);
    b.mode = BencherMode::Measure;
    for _ in 0..sample_size {
        f(&mut b);
    }
    if b.samples.is_empty() {
        println!("  {id}: no samples (closure never called iter)");
        return;
    }
    b.samples.sort_unstable();
    let median = b.samples[b.samples.len() / 2];
    let min = b.samples[0];
    let max = *b.samples.last().expect("nonempty");
    let rate = throughput.map(|t| match t {
        Throughput::Elements(n) => format!(
            "  ({:.0} elem/s)",
            n as f64 / median.as_secs_f64().max(f64::MIN_POSITIVE)
        ),
        Throughput::Bytes(n) => format!(
            "  ({:.0} B/s)",
            n as f64 / median.as_secs_f64().max(f64::MIN_POSITIVE)
        ),
    });
    println!(
        "  {id}: median {median:?}  [min {min:?}, max {max:?}]{}",
        rate.unwrap_or_default()
    );
}

/// Re-export for benches that import it from criterion rather than
/// `std::hint` (API compatibility with the real crate).
pub fn black_box<T>(x: T) -> T {
    std::hint::black_box(x)
}

/// Bundles benchmark functions into a callable group.
#[macro_export]
macro_rules! criterion_group {
    ($name:ident, $($target:path),+ $(,)?) => {
        pub fn $name() {
            let mut criterion = $crate::Criterion::default();
            $( $target(&mut criterion); )+
        }
    };
}

/// Emits `main` running the listed groups.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $( $group(); )+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    fn quick(c: &mut Criterion) {
        let mut group = c.benchmark_group("selftest");
        group.sample_size(3);
        group.throughput(Throughput::Elements(10));
        group.bench_function("noop_sum", |b| {
            b.iter(|| (0u64..10).sum::<u64>());
        });
        group.finish();
    }

    #[test]
    fn harness_runs_and_reports() {
        let mut c = Criterion::default();
        quick(&mut c);
        c.bench_function("standalone", |b| b.iter(|| 2 + 2));
    }

    criterion_group!(self_group, quick);

    #[test]
    fn group_macro_invokes_targets() {
        self_group();
    }
}

//! Offline stand-in for `serde_derive`.
//!
//! Emits impls of the vendored value-based `serde::Serialize` /
//! `serde::Deserialize` traits. The input item is parsed directly from the
//! `proc_macro::TokenStream` (no `syn`/`quote` — the container has no
//! crates.io access) and the generated impl is assembled as source text and
//! re-parsed.
//!
//! Supported shapes — everything the workspace derives on:
//!
//! * structs with named fields, tuple structs (including newtypes), unit
//!   structs;
//! * enums with unit, newtype, tuple and struct variants.
//!
//! Generics and `#[serde(...)]` attributes are not supported and produce a
//! compile error, matching how the workspace uses the real derive.

use proc_macro::{Delimiter, TokenStream, TokenTree};

/// The shape of the item being derived for.
enum Shape {
    /// `struct S { a: T, b: U }`
    NamedStruct(Vec<String>),
    /// `struct S(T, U);` — a single field is treated as a newtype.
    TupleStruct(usize),
    /// `struct S;`
    UnitStruct,
    /// `enum E { ... }`
    Enum(Vec<Variant>),
}

struct Variant {
    name: String,
    shape: VariantShape,
}

enum VariantShape {
    Unit,
    /// Tuple variant with this many fields; one field gets newtype encoding.
    Tuple(usize),
    Named(Vec<String>),
}

#[proc_macro_derive(Serialize)]
pub fn derive_serialize(input: TokenStream) -> TokenStream {
    let (name, shape) = parse_item(input);
    gen_serialize(&name, &shape)
        .parse()
        .expect("serde_derive generated invalid Serialize impl")
}

#[proc_macro_derive(Deserialize)]
pub fn derive_deserialize(input: TokenStream) -> TokenStream {
    let (name, shape) = parse_item(input);
    gen_deserialize(&name, &shape)
        .parse()
        .expect("serde_derive generated invalid Deserialize impl")
}

#[proc_macro_derive(Blob)]
pub fn derive_blob(input: TokenStream) -> TokenStream {
    let (name, shape) = parse_item(input);
    gen_blob(&name, &shape)
        .parse()
        .expect("serde_derive generated invalid Blob impl")
}

// ---- parsing ---------------------------------------------------------------

fn parse_item(input: TokenStream) -> (String, Shape) {
    let mut it = input.into_iter().peekable();
    skip_attrs_and_vis(&mut it);
    let kw = match it.next() {
        Some(TokenTree::Ident(i)) => i.to_string(),
        other => panic!("serde_derive: expected `struct` or `enum`, got {other:?}"),
    };
    let name = match it.next() {
        Some(TokenTree::Ident(i)) => i.to_string(),
        other => panic!("serde_derive: expected item name, got {other:?}"),
    };
    if matches!(it.peek(), Some(TokenTree::Punct(p)) if p.as_char() == '<') {
        panic!("serde_derive: generic types are not supported by the vendored derive");
    }
    let shape = match kw.as_str() {
        "struct" => match it.next() {
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Brace => {
                Shape::NamedStruct(parse_named_fields(g.stream()))
            }
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Parenthesis => {
                Shape::TupleStruct(count_tuple_fields(g.stream()))
            }
            Some(TokenTree::Punct(p)) if p.as_char() == ';' => Shape::UnitStruct,
            other => panic!("serde_derive: malformed struct body: {other:?}"),
        },
        "enum" => match it.next() {
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Brace => {
                Shape::Enum(parse_variants(g.stream()))
            }
            other => panic!("serde_derive: malformed enum body: {other:?}"),
        },
        other => panic!("serde_derive: cannot derive for `{other}` items"),
    };
    (name, shape)
}

/// Skips outer attributes (including doc comments) and a `pub`/`pub(...)`
/// visibility prefix.
fn skip_attrs_and_vis(it: &mut std::iter::Peekable<impl Iterator<Item = TokenTree>>) {
    loop {
        match it.peek() {
            Some(TokenTree::Punct(p)) if p.as_char() == '#' => {
                it.next();
                it.next(); // the [...] group
            }
            Some(TokenTree::Ident(i)) if i.to_string() == "pub" => {
                it.next();
                if matches!(
                    it.peek(),
                    Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Parenthesis
                ) {
                    it.next();
                }
            }
            _ => return,
        }
    }
}

/// Parses `a: T, b: U, ...` field lists, returning the field names. Types are
/// skipped with angle-bracket awareness so `HashMap<String, Vec<String>>`
/// does not split on its inner commas.
fn parse_named_fields(stream: TokenStream) -> Vec<String> {
    let mut it = stream.into_iter().peekable();
    let mut fields = Vec::new();
    loop {
        skip_attrs_and_vis(&mut it);
        match it.next() {
            None => break,
            Some(TokenTree::Ident(i)) => {
                fields.push(i.to_string());
                match it.next() {
                    Some(TokenTree::Punct(p)) if p.as_char() == ':' => {}
                    other => panic!("serde_derive: expected `:` after field, got {other:?}"),
                }
                skip_type(&mut it);
            }
            other => panic!("serde_derive: expected field name, got {other:?}"),
        }
    }
    fields
}

/// Skips one type (everything up to the next top-level comma or the end).
fn skip_type(it: &mut std::iter::Peekable<impl Iterator<Item = TokenTree>>) {
    let mut angle_depth = 0i32;
    for tok in it.by_ref() {
        match tok {
            TokenTree::Punct(p) if p.as_char() == '<' => angle_depth += 1,
            TokenTree::Punct(p) if p.as_char() == '>' => angle_depth -= 1,
            TokenTree::Punct(p) if p.as_char() == ',' && angle_depth == 0 => return,
            _ => {}
        }
    }
}

/// Counts the fields of a tuple struct/variant body.
fn count_tuple_fields(stream: TokenStream) -> usize {
    let mut it = stream.into_iter().peekable();
    let mut count = 0;
    loop {
        skip_attrs_and_vis(&mut it);
        if it.peek().is_none() {
            break;
        }
        count += 1;
        skip_type(&mut it);
    }
    count
}

fn parse_variants(stream: TokenStream) -> Vec<Variant> {
    let mut it = stream.into_iter().peekable();
    let mut variants = Vec::new();
    loop {
        skip_attrs_and_vis(&mut it);
        let name = match it.next() {
            None => break,
            Some(TokenTree::Ident(i)) => i.to_string(),
            other => panic!("serde_derive: expected variant name, got {other:?}"),
        };
        let shape = match it.peek() {
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Parenthesis => {
                let n = count_tuple_fields(g.stream());
                it.next();
                VariantShape::Tuple(n)
            }
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Brace => {
                let fields = parse_named_fields(g.stream());
                it.next();
                VariantShape::Named(fields)
            }
            _ => VariantShape::Unit,
        };
        // Skip an explicit discriminant and/or the trailing comma.
        for tok in it.by_ref() {
            if matches!(&tok, TokenTree::Punct(p) if p.as_char() == ',') {
                break;
            }
        }
        variants.push(Variant { name, shape });
    }
    variants
}

// ---- codegen ---------------------------------------------------------------

fn gen_serialize(name: &str, shape: &Shape) -> String {
    let body = match shape {
        Shape::UnitStruct => "::serde::Value::Null".to_owned(),
        Shape::TupleStruct(1) => "::serde::Serialize::to_value(&self.0)".to_owned(),
        Shape::TupleStruct(n) => {
            let elems: Vec<String> = (0..*n)
                .map(|i| format!("::serde::Serialize::to_value(&self.{i})"))
                .collect();
            format!("::serde::Value::Array(vec![{}])", elems.join(", "))
        }
        Shape::NamedStruct(fields) => {
            let mut s = String::from("let mut __obj = ::serde::Value::new_object();\n");
            for f in fields {
                s.push_str(&format!(
                    "__obj.object_insert({f:?}, ::serde::Serialize::to_value(&self.{f}));\n"
                ));
            }
            s.push_str("__obj");
            s
        }
        Shape::Enum(variants) => {
            let mut arms = String::new();
            for v in variants {
                let vn = &v.name;
                match &v.shape {
                    VariantShape::Unit => arms.push_str(&format!(
                        "{name}::{vn} => ::serde::Value::String({vn:?}.to_string()),\n"
                    )),
                    VariantShape::Tuple(1) => arms.push_str(&format!(
                        "{name}::{vn}(__f0) => {{\n\
                         let mut __obj = ::serde::Value::new_object();\n\
                         __obj.object_insert({vn:?}, ::serde::Serialize::to_value(__f0));\n\
                         __obj\n}}\n"
                    )),
                    VariantShape::Tuple(n) => {
                        let binds: Vec<String> = (0..*n).map(|i| format!("__f{i}")).collect();
                        let elems: Vec<String> = binds
                            .iter()
                            .map(|b| format!("::serde::Serialize::to_value({b})"))
                            .collect();
                        arms.push_str(&format!(
                            "{name}::{vn}({binds}) => {{\n\
                             let mut __obj = ::serde::Value::new_object();\n\
                             __obj.object_insert({vn:?}, ::serde::Value::Array(vec![{elems}]));\n\
                             __obj\n}}\n",
                            binds = binds.join(", "),
                            elems = elems.join(", ")
                        ));
                    }
                    VariantShape::Named(fields) => {
                        let mut inner =
                            String::from("let mut __inner = ::serde::Value::new_object();\n");
                        for f in fields {
                            inner.push_str(&format!(
                                "__inner.object_insert({f:?}, ::serde::Serialize::to_value({f}));\n"
                            ));
                        }
                        arms.push_str(&format!(
                            "{name}::{vn} {{ {fields} }} => {{\n\
                             {inner}\
                             let mut __obj = ::serde::Value::new_object();\n\
                             __obj.object_insert({vn:?}, __inner);\n\
                             __obj\n}}\n",
                            fields = fields.join(", ")
                        ));
                    }
                }
            }
            format!("match self {{\n{arms}}}")
        }
    };
    format!(
        "#[automatically_derived]\n\
         impl ::serde::Serialize for {name} {{\n\
         fn to_value(&self) -> ::serde::Value {{\n{body}\n}}\n}}\n"
    )
}

/// `field: Deserialize::from_value(obj lookup)?` for a named field.
fn named_field_expr(f: &str, src: &str) -> String {
    format!(
        "{f}: ::serde::Deserialize::from_value(\
         {src}.object_get({f:?}).ok_or_else(|| ::serde::DeError::missing_field({f:?}))?)?"
    )
}

fn gen_deserialize(name: &str, shape: &Shape) -> String {
    let body = match shape {
        Shape::UnitStruct => format!(
            "match __v {{\n\
             ::serde::Value::Null => ::core::result::Result::Ok({name}),\n\
             __other => ::core::result::Result::Err(::serde::DeError::expected(\"null\", __other)),\n}}"
        ),
        Shape::TupleStruct(1) => format!(
            "::core::result::Result::Ok({name}(::serde::Deserialize::from_value(__v)?))"
        ),
        Shape::TupleStruct(n) => {
            let elems: Vec<String> = (0..*n)
                .map(|i| format!("::serde::Deserialize::from_value(&__items[{i}])?"))
                .collect();
            format!(
                "let ::serde::Value::Array(__items) = __v else {{\n\
                 return ::core::result::Result::Err(::serde::DeError::expected(\"array\", __v));\n}};\n\
                 if __items.len() != {n} {{\n\
                 return ::core::result::Result::Err(::serde::DeError(\
                 format!(\"expected {n} elements, got {{}}\", __items.len())));\n}}\n\
                 ::core::result::Result::Ok({name}({elems}))",
                elems = elems.join(", ")
            )
        }
        Shape::NamedStruct(fields) => {
            let inits: Vec<String> = fields.iter().map(|f| named_field_expr(f, "__v")).collect();
            format!(
                "if __v.as_object().is_none() {{\n\
                 return ::core::result::Result::Err(::serde::DeError::expected(\"object\", __v));\n}}\n\
                 ::core::result::Result::Ok({name} {{\n{inits}\n}})",
                inits = inits.join(",\n")
            )
        }
        Shape::Enum(variants) => {
            let mut unit_arms = String::new();
            let mut data_arms = String::new();
            for v in variants {
                let vn = &v.name;
                match &v.shape {
                    VariantShape::Unit => unit_arms.push_str(&format!(
                        "{vn:?} => ::core::result::Result::Ok({name}::{vn}),\n"
                    )),
                    VariantShape::Tuple(1) => data_arms.push_str(&format!(
                        "{vn:?} => ::core::result::Result::Ok(\
                         {name}::{vn}(::serde::Deserialize::from_value(__inner)?)),\n"
                    )),
                    VariantShape::Tuple(n) => {
                        let elems: Vec<String> = (0..*n)
                            .map(|i| format!("::serde::Deserialize::from_value(&__items[{i}])?"))
                            .collect();
                        data_arms.push_str(&format!(
                            "{vn:?} => {{\n\
                             let ::serde::Value::Array(__items) = __inner else {{\n\
                             return ::core::result::Result::Err(\
                             ::serde::DeError::expected(\"array\", __inner));\n}};\n\
                             if __items.len() != {n} {{\n\
                             return ::core::result::Result::Err(::serde::DeError(\
                             format!(\"expected {n} elements, got {{}}\", __items.len())));\n}}\n\
                             ::core::result::Result::Ok({name}::{vn}({elems}))\n}}\n",
                            elems = elems.join(", ")
                        ));
                    }
                    VariantShape::Named(fields) => {
                        let inits: Vec<String> =
                            fields.iter().map(|f| named_field_expr(f, "__inner")).collect();
                        data_arms.push_str(&format!(
                            "{vn:?} => {{\n\
                             if __inner.as_object().is_none() {{\n\
                             return ::core::result::Result::Err(\
                             ::serde::DeError::expected(\"object\", __inner));\n}}\n\
                             ::core::result::Result::Ok({name}::{vn} {{\n{inits}\n}})\n}}\n",
                            inits = inits.join(",\n")
                        ));
                    }
                }
            }
            format!(
                "if let ::serde::Value::String(__s) = __v {{\n\
                 return match __s.as_str() {{\n\
                 {unit_arms}\
                 __other => ::core::result::Result::Err(::serde::DeError::unknown_variant(__other)),\n\
                 }};\n}}\n\
                 let __obj = match __v.as_object() {{\n\
                 ::core::option::Option::Some(__m) if __m.len() == 1 => __m,\n\
                 _ => return ::core::result::Result::Err(\
                 ::serde::DeError::expected(\"single-key enum object\", __v)),\n}};\n\
                 let (__tag, __inner) = __obj.iter().next().expect(\"len checked\");\n\
                 match __tag.as_str() {{\n\
                 {data_arms}\
                 __other => ::core::result::Result::Err(::serde::DeError::unknown_variant(__other)),\n\
                 }}"
            )
        }
    };
    format!(
        "#[automatically_derived]\n\
         impl ::serde::Deserialize for {name} {{\n\
         fn from_value(__v: &::serde::Value) \
         -> ::core::result::Result<Self, ::serde::DeError> {{\n{body}\n}}\n}}\n"
    )
}

// ---- Blob codegen ----------------------------------------------------------

/// Emits a `serde::Blob` impl: fields encode/decode in declaration order,
/// enum variants carry their declaration index as a one-byte tag.
fn gen_blob(name: &str, shape: &Shape) -> String {
    let encode_body;
    let decode_body;
    match shape {
        Shape::UnitStruct => {
            encode_body = String::new();
            decode_body = format!("::core::result::Result::Ok({name})");
        }
        Shape::TupleStruct(n) => {
            let mut enc = String::new();
            for i in 0..*n {
                enc.push_str(&format!("::serde::Blob::encode_blob(&self.{i}, __out);\n"));
            }
            let fields: Vec<String> = (0..*n)
                .map(|_| "::serde::Blob::decode_blob(__r)?".to_owned())
                .collect();
            encode_body = enc;
            decode_body = format!(
                "::core::result::Result::Ok({name}({fields}))",
                fields = fields.join(", ")
            );
        }
        Shape::NamedStruct(fields) => {
            let mut enc = String::new();
            for f in fields {
                enc.push_str(&format!("::serde::Blob::encode_blob(&self.{f}, __out);\n"));
            }
            let inits: Vec<String> = fields
                .iter()
                .map(|f| format!("{f}: ::serde::Blob::decode_blob(__r)?"))
                .collect();
            encode_body = enc;
            decode_body = format!(
                "::core::result::Result::Ok({name} {{\n{inits}\n}})",
                inits = inits.join(",\n")
            );
        }
        Shape::Enum(variants) => {
            assert!(
                variants.len() <= 256,
                "serde_derive: Blob enums are limited to 256 variants"
            );
            let mut enc_arms = String::new();
            let mut dec_arms = String::new();
            for (tag, v) in variants.iter().enumerate() {
                let vn = &v.name;
                match &v.shape {
                    VariantShape::Unit => {
                        enc_arms.push_str(&format!("{name}::{vn} => __out.push({tag}u8),\n"));
                        dec_arms.push_str(&format!(
                            "{tag}u8 => ::core::result::Result::Ok({name}::{vn}),\n"
                        ));
                    }
                    VariantShape::Tuple(n) => {
                        let binds: Vec<String> = (0..*n).map(|i| format!("__f{i}")).collect();
                        let mut enc = String::new();
                        for b in &binds {
                            enc.push_str(&format!("::serde::Blob::encode_blob({b}, __out);\n"));
                        }
                        let fields: Vec<String> = (0..*n)
                            .map(|_| "::serde::Blob::decode_blob(__r)?".to_owned())
                            .collect();
                        enc_arms.push_str(&format!(
                            "{name}::{vn}({binds}) => {{\n__out.push({tag}u8);\n{enc}}}\n",
                            binds = binds.join(", ")
                        ));
                        dec_arms.push_str(&format!(
                            "{tag}u8 => ::core::result::Result::Ok({name}::{vn}({fields})),\n",
                            fields = fields.join(", ")
                        ));
                    }
                    VariantShape::Named(fields) => {
                        let mut enc = String::new();
                        for f in fields {
                            enc.push_str(&format!("::serde::Blob::encode_blob({f}, __out);\n"));
                        }
                        let inits: Vec<String> = fields
                            .iter()
                            .map(|f| format!("{f}: ::serde::Blob::decode_blob(__r)?"))
                            .collect();
                        enc_arms.push_str(&format!(
                            "{name}::{vn} {{ {fields} }} => {{\n__out.push({tag}u8);\n{enc}}}\n",
                            fields = fields.join(", ")
                        ));
                        dec_arms.push_str(&format!(
                            "{tag}u8 => ::core::result::Result::Ok({name}::{vn} {{\n{inits}\n}}),\n",
                            inits = inits.join(",\n")
                        ));
                    }
                }
            }
            encode_body = format!("match self {{\n{enc_arms}}}\n");
            decode_body = format!(
                "match __r.byte()? {{\n\
                 {dec_arms}\
                 __other => ::core::result::Result::Err(::serde::DeError(\
                 format!(\"blob: invalid variant tag {{__other}} for {name}\"))),\n}}"
            );
        }
    }
    format!(
        "#[automatically_derived]\n\
         impl ::serde::Blob for {name} {{\n\
         fn encode_blob(&self, __out: &mut ::std::vec::Vec<u8>) {{\n\
         let _ = &__out;\n{encode_body}}}\n\
         fn decode_blob(__r: &mut ::serde::BlobReader<'_>) \
         -> ::core::result::Result<Self, ::serde::DeError> {{\n\
         let _ = &__r;\n{decode_body}\n}}\n}}\n"
    )
}

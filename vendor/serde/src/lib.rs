//! Offline stand-in for `serde`.
//!
//! The build container has no access to crates.io, so the workspace vendors
//! a minimal, value-based serialization framework under the same crate
//! name. The surface mirrors what the workspace actually uses:
//!
//! * `#[derive(Serialize, Deserialize)]` on structs and enums (via the
//!   vendored `serde_derive` proc-macro, re-exported behind the `derive`
//!   feature exactly like the real crate);
//! * blanket implementations for the standard types the workspace
//!   serializes (integers, floats, `String`, `Vec`, tuples, `Option`,
//!   maps and sets).
//!
//! Unlike real serde there is no streaming `Serializer`/`Deserializer`
//! pair: serialization goes through the [`Value`] tree and `serde_json`
//! renders/parses that tree. This is slower than real serde but
//! dependency-free, deterministic and more than fast enough for most of
//! the artifact sizes Strober produces. For megabyte-scale hot paths the
//! [`blob`] module provides a bincode-style binary codec ([`Blob`], also
//! derivable) that skips the tree entirely.

pub mod blob;
mod value;

pub use blob::{from_blob, to_blob, Blob, BlobReader};
pub use value::{Number, Value};

#[cfg(feature = "derive")]
pub use serde_derive::{Blob, Deserialize, Serialize};

use std::collections::{BTreeMap, BTreeSet, HashMap, HashSet};
use std::fmt;
use std::hash::Hash;

/// Error produced when a [`Value`] cannot be decoded into a Rust type.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct DeError(pub String);

impl DeError {
    /// A "missing field" error, used by derived impls.
    pub fn missing_field(name: &str) -> Self {
        DeError(format!("missing field `{name}`"))
    }

    /// A type-mismatch error.
    pub fn expected(what: &str, got: &Value) -> Self {
        DeError(format!("expected {what}, got {}", got.kind()))
    }

    /// An unknown-enum-variant error, used by derived impls.
    pub fn unknown_variant(name: &str) -> Self {
        DeError(format!("unknown enum variant `{name}`"))
    }
}

impl fmt::Display for DeError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "deserialization error: {}", self.0)
    }
}

impl std::error::Error for DeError {}

/// Types that can be converted into a [`Value`] tree.
pub trait Serialize {
    /// Converts `self` into a [`Value`].
    fn to_value(&self) -> Value;
}

/// Types that can be reconstructed from a [`Value`] tree.
pub trait Deserialize: Sized {
    /// Rebuilds `Self` from a [`Value`].
    ///
    /// # Errors
    ///
    /// Returns [`DeError`] when the value's shape does not match.
    fn from_value(v: &Value) -> Result<Self, DeError>;
}

/// Map keys, stringified the way `serde_json` stringifies non-string map
/// keys.
pub trait MapKey: Sized {
    /// Renders the key as a JSON object key.
    fn to_key(&self) -> String;
    /// Parses the key back.
    ///
    /// # Errors
    ///
    /// Returns [`DeError`] on malformed keys.
    fn from_key(s: &str) -> Result<Self, DeError>;
}

impl MapKey for String {
    fn to_key(&self) -> String {
        self.clone()
    }
    fn from_key(s: &str) -> Result<Self, DeError> {
        Ok(s.to_owned())
    }
}

macro_rules! int_map_key {
    ($($t:ty),*) => {$(
        impl MapKey for $t {
            fn to_key(&self) -> String {
                self.to_string()
            }
            fn from_key(s: &str) -> Result<Self, DeError> {
                s.parse()
                    .map_err(|_| DeError(format!("bad integer map key `{s}`")))
            }
        }
    )*};
}
int_map_key!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

// ---- primitive impls -------------------------------------------------------

macro_rules! ser_uint {
    ($($t:ty),*) => {$(
        impl Serialize for $t {
            fn to_value(&self) -> Value {
                Value::Number(Number::U64(u64::from(*self)))
            }
        }
        impl Deserialize for $t {
            fn from_value(v: &Value) -> Result<Self, DeError> {
                let n = v.as_u64().ok_or_else(|| DeError::expected("unsigned integer", v))?;
                <$t>::try_from(n).map_err(|_| DeError(format!("{n} out of range")))
            }
        }
    )*};
}
ser_uint!(u8, u16, u32, u64);

impl Serialize for usize {
    fn to_value(&self) -> Value {
        Value::Number(Number::U64(*self as u64))
    }
}
impl Deserialize for usize {
    fn from_value(v: &Value) -> Result<Self, DeError> {
        let n = v
            .as_u64()
            .ok_or_else(|| DeError::expected("unsigned integer", v))?;
        usize::try_from(n).map_err(|_| DeError(format!("{n} out of range")))
    }
}

macro_rules! ser_sint {
    ($($t:ty),*) => {$(
        impl Serialize for $t {
            fn to_value(&self) -> Value {
                Value::Number(Number::I64(i64::from(*self)))
            }
        }
        impl Deserialize for $t {
            fn from_value(v: &Value) -> Result<Self, DeError> {
                let n = v.as_i64().ok_or_else(|| DeError::expected("integer", v))?;
                <$t>::try_from(n).map_err(|_| DeError(format!("{n} out of range")))
            }
        }
    )*};
}
ser_sint!(i8, i16, i32, i64);

impl Serialize for isize {
    fn to_value(&self) -> Value {
        Value::Number(Number::I64(*self as i64))
    }
}
impl Deserialize for isize {
    fn from_value(v: &Value) -> Result<Self, DeError> {
        let n = v.as_i64().ok_or_else(|| DeError::expected("integer", v))?;
        isize::try_from(n).map_err(|_| DeError(format!("{n} out of range")))
    }
}

impl Serialize for f64 {
    fn to_value(&self) -> Value {
        Value::Number(Number::F64(*self))
    }
}
impl Deserialize for f64 {
    fn from_value(v: &Value) -> Result<Self, DeError> {
        v.as_f64().ok_or_else(|| DeError::expected("number", v))
    }
}

impl Serialize for f32 {
    fn to_value(&self) -> Value {
        Value::Number(Number::F64(f64::from(*self)))
    }
}
impl Deserialize for f32 {
    fn from_value(v: &Value) -> Result<Self, DeError> {
        v.as_f64()
            .map(|f| f as f32)
            .ok_or_else(|| DeError::expected("number", v))
    }
}

impl Serialize for bool {
    fn to_value(&self) -> Value {
        Value::Bool(*self)
    }
}
impl Deserialize for bool {
    fn from_value(v: &Value) -> Result<Self, DeError> {
        match v {
            Value::Bool(b) => Ok(*b),
            _ => Err(DeError::expected("bool", v)),
        }
    }
}

impl Serialize for String {
    fn to_value(&self) -> Value {
        Value::String(self.clone())
    }
}
impl Deserialize for String {
    fn from_value(v: &Value) -> Result<Self, DeError> {
        match v {
            Value::String(s) => Ok(s.clone()),
            _ => Err(DeError::expected("string", v)),
        }
    }
}

impl Serialize for str {
    fn to_value(&self) -> Value {
        Value::String(self.to_owned())
    }
}

impl Serialize for char {
    fn to_value(&self) -> Value {
        Value::String(self.to_string())
    }
}
impl Deserialize for char {
    fn from_value(v: &Value) -> Result<Self, DeError> {
        match v {
            Value::String(s) if s.chars().count() == 1 => Ok(s.chars().next().unwrap()),
            _ => Err(DeError::expected("single-character string", v)),
        }
    }
}

impl<T: Serialize + ?Sized> Serialize for &T {
    fn to_value(&self) -> Value {
        (**self).to_value()
    }
}

impl<T: Serialize> Serialize for Box<T> {
    fn to_value(&self) -> Value {
        (**self).to_value()
    }
}
impl<T: Deserialize> Deserialize for Box<T> {
    fn from_value(v: &Value) -> Result<Self, DeError> {
        T::from_value(v).map(Box::new)
    }
}

impl<T: Serialize> Serialize for Option<T> {
    fn to_value(&self) -> Value {
        match self {
            Some(t) => t.to_value(),
            None => Value::Null,
        }
    }
}
impl<T: Deserialize> Deserialize for Option<T> {
    fn from_value(v: &Value) -> Result<Self, DeError> {
        match v {
            Value::Null => Ok(None),
            other => T::from_value(other).map(Some),
        }
    }
}

impl<T: Serialize> Serialize for Vec<T> {
    fn to_value(&self) -> Value {
        Value::Array(self.iter().map(Serialize::to_value).collect())
    }
}
impl<T: Deserialize> Deserialize for Vec<T> {
    fn from_value(v: &Value) -> Result<Self, DeError> {
        match v {
            Value::Array(items) => items.iter().map(T::from_value).collect(),
            _ => Err(DeError::expected("array", v)),
        }
    }
}

impl<T: Serialize> Serialize for [T] {
    fn to_value(&self) -> Value {
        Value::Array(self.iter().map(Serialize::to_value).collect())
    }
}

impl<T: Serialize, const N: usize> Serialize for [T; N] {
    fn to_value(&self) -> Value {
        self.as_slice().to_value()
    }
}

impl Serialize for () {
    fn to_value(&self) -> Value {
        Value::Null
    }
}

impl Deserialize for () {
    fn from_value(value: &Value) -> Result<Self, DeError> {
        match value {
            Value::Null => Ok(()),
            other => Err(DeError::expected("null", other)),
        }
    }
}

macro_rules! tuple_impls {
    ($(($($n:tt $t:ident),+))+) => {$(
        impl<$($t: Serialize),+> Serialize for ($($t,)+) {
            fn to_value(&self) -> Value {
                Value::Array(vec![$(self.$n.to_value()),+])
            }
        }
        impl<$($t: Deserialize),+> Deserialize for ($($t,)+) {
            fn from_value(v: &Value) -> Result<Self, DeError> {
                let Value::Array(items) = v else {
                    return Err(DeError::expected("tuple array", v));
                };
                let expect = [$($n),+].len();
                if items.len() != expect {
                    return Err(DeError(format!(
                        "expected {expect}-tuple, got {} elements",
                        items.len()
                    )));
                }
                Ok(($($t::from_value(&items[$n])?,)+))
            }
        }
    )+};
}
tuple_impls! {
    (0 A)
    (0 A, 1 B)
    (0 A, 1 B, 2 C)
    (0 A, 1 B, 2 C, 3 D)
    (0 A, 1 B, 2 C, 3 D, 4 E)
}

fn map_to_value<'a, K, V, I>(iter: I) -> Value
where
    K: MapKey + 'a,
    V: Serialize + 'a,
    I: Iterator<Item = (&'a K, &'a V)>,
{
    Value::Object(iter.map(|(k, v)| (k.to_key(), v.to_value())).collect())
}

impl<K: MapKey, V: Serialize, S> Serialize for HashMap<K, V, S> {
    fn to_value(&self) -> Value {
        let mut entries: Vec<(String, Value)> = self
            .iter()
            .map(|(k, v)| (k.to_key(), v.to_value()))
            .collect();
        entries.sort_by(|a, b| a.0.cmp(&b.0));
        Value::Object(entries.into_iter().collect())
    }
}
impl<K: MapKey + Eq + Hash, V: Deserialize> Deserialize for HashMap<K, V> {
    fn from_value(v: &Value) -> Result<Self, DeError> {
        let Value::Object(entries) = v else {
            return Err(DeError::expected("object", v));
        };
        entries
            .iter()
            .map(|(k, v)| Ok((K::from_key(k)?, V::from_value(v)?)))
            .collect()
    }
}

impl<K: MapKey, V: Serialize> Serialize for BTreeMap<K, V> {
    fn to_value(&self) -> Value {
        map_to_value(self.iter())
    }
}
impl<K: MapKey + Ord, V: Deserialize> Deserialize for BTreeMap<K, V> {
    fn from_value(v: &Value) -> Result<Self, DeError> {
        let Value::Object(entries) = v else {
            return Err(DeError::expected("object", v));
        };
        entries
            .iter()
            .map(|(k, v)| Ok((K::from_key(k)?, V::from_value(v)?)))
            .collect()
    }
}

impl<T: Serialize + Ord> Serialize for BTreeSet<T> {
    fn to_value(&self) -> Value {
        Value::Array(self.iter().map(Serialize::to_value).collect())
    }
}
impl<T: Deserialize + Ord> Deserialize for BTreeSet<T> {
    fn from_value(v: &Value) -> Result<Self, DeError> {
        match v {
            Value::Array(items) => items.iter().map(T::from_value).collect(),
            _ => Err(DeError::expected("array", v)),
        }
    }
}

impl<T: Serialize, S> Serialize for HashSet<T, S> {
    fn to_value(&self) -> Value {
        // Sorted so canonical output is process-independent (hash iteration
        // order is randomised per process).
        let mut items: Vec<Value> = self.iter().map(Serialize::to_value).collect();
        items.sort_by(|a, b| a.canonical_cmp(b));
        Value::Array(items)
    }
}
impl<T: Deserialize + Eq + Hash> Deserialize for HashSet<T> {
    fn from_value(v: &Value) -> Result<Self, DeError> {
        match v {
            Value::Array(items) => items.iter().map(T::from_value).collect(),
            _ => Err(DeError::expected("array", v)),
        }
    }
}

impl Serialize for Value {
    fn to_value(&self) -> Value {
        self.clone()
    }
}
impl Deserialize for Value {
    fn from_value(v: &Value) -> Result<Self, DeError> {
        Ok(v.clone())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn primitives_round_trip() {
        assert_eq!(u64::from_value(&42u64.to_value()).unwrap(), 42);
        assert_eq!(i32::from_value(&(-7i32).to_value()).unwrap(), -7);
        assert!(bool::from_value(&true.to_value()).unwrap());
        assert_eq!(
            String::from_value(&"hi".to_owned().to_value()).unwrap(),
            "hi"
        );
        let f = f64::from_value(&1.5f64.to_value()).unwrap();
        assert_eq!(f, 1.5);
    }

    #[test]
    fn containers_round_trip() {
        let v = vec![(1u32, "a".to_owned()), (2, "b".to_owned())];
        let back: Vec<(u32, String)> = Deserialize::from_value(&v.to_value()).unwrap();
        assert_eq!(back, v);

        let mut m = HashMap::new();
        m.insert("k".to_owned(), vec![1u64, 2, 3]);
        let back: HashMap<String, Vec<u64>> = Deserialize::from_value(&m.to_value()).unwrap();
        assert_eq!(back, m);

        let s: HashSet<String> = ["x".to_owned(), "y".to_owned()].into_iter().collect();
        let back: HashSet<String> = Deserialize::from_value(&s.to_value()).unwrap();
        assert_eq!(back, s);
    }

    #[test]
    fn integer_map_keys_stringify() {
        let mut m = BTreeMap::new();
        m.insert(7u32, true);
        let val = m.to_value();
        assert_eq!(val.object_get("7"), Some(&Value::Bool(true)));
        let back: BTreeMap<u32, bool> = Deserialize::from_value(&val).unwrap();
        assert_eq!(back, m);
    }

    #[test]
    fn option_uses_null() {
        assert_eq!(None::<u32>.to_value(), Value::Null);
        let back: Option<u32> = Deserialize::from_value(&Value::Null).unwrap();
        assert_eq!(back, None);
        let back: Option<u32> = Deserialize::from_value(&5u32.to_value()).unwrap();
        assert_eq!(back, Some(5));
    }

    #[test]
    fn mismatches_error() {
        assert!(u64::from_value(&Value::String("x".into())).is_err());
        assert!(bool::from_value(&Value::Null).is_err());
        assert!(<(u32, u32)>::from_value(&Value::Array(vec![Value::Null])).is_err());
    }
}

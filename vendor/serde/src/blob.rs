//! A compact binary codec, the offline analogue of `bincode`.
//!
//! [`Blob`] encodes a value as a flat byte string with no field names or
//! self-description: fixed-width little-endian integers, `u32` length
//! prefixes for sequences and strings, one tag byte for enum variants and
//! `Option`. Field order is the struct declaration order, so the format is
//! deterministic across processes but — like bincode — NOT self-describing:
//! readers and writers must agree on the type, and any type change is a
//! format change (callers version their containers, see `strober-store`).
//!
//! The trait exists for hot paths where the [`Value`](crate::Value) tree's
//! per-node allocations dominate: decoding a megabyte-scale artifact
//! through `Blob` is an order of magnitude faster than parsing the
//! equivalent JSON.
//!
//! Unordered collections (`HashMap`, `HashSet`) are encoded in ascending
//! key order so equal values always produce identical bytes.
//!
//! Decoding is total: every failure is a [`DeError`], never a panic, and
//! allocations are capped by the remaining input so hostile length prefixes
//! cannot balloon memory.

use crate::DeError;
use std::collections::{BTreeMap, HashMap, HashSet};
use std::hash::Hash;

/// Binary serialization in declaration order. See the [module
/// docs](self) for the format.
pub trait Blob: Sized {
    /// Appends this value's encoding to `out`.
    fn encode_blob(&self, out: &mut Vec<u8>);
    /// Decodes one value from the reader's current position.
    ///
    /// # Errors
    ///
    /// Returns a [`DeError`] when the input is exhausted or malformed.
    fn decode_blob(r: &mut BlobReader<'_>) -> Result<Self, DeError>;
}

/// Encodes a value to a fresh byte vector.
pub fn to_blob<T: Blob>(value: &T) -> Vec<u8> {
    let mut out = Vec::new();
    value.encode_blob(&mut out);
    out
}

/// Decodes a value from `bytes`, requiring the input to be fully consumed.
///
/// # Errors
///
/// Returns a [`DeError`] on malformed input or trailing bytes.
pub fn from_blob<T: Blob>(bytes: &[u8]) -> Result<T, DeError> {
    let mut r = BlobReader::new(bytes);
    let value = T::decode_blob(&mut r)?;
    r.finish()?;
    Ok(value)
}

/// A bounds-checked cursor over an encoded byte string.
#[derive(Debug)]
pub struct BlobReader<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl<'a> BlobReader<'a> {
    /// Starts reading at the beginning of `bytes`.
    pub fn new(bytes: &'a [u8]) -> Self {
        BlobReader { bytes, pos: 0 }
    }

    /// Bytes not yet consumed.
    pub fn remaining(&self) -> usize {
        self.bytes.len() - self.pos
    }

    /// Consumes exactly `n` bytes.
    ///
    /// # Errors
    ///
    /// Returns a [`DeError`] when fewer than `n` bytes remain.
    pub fn take(&mut self, n: usize) -> Result<&'a [u8], DeError> {
        let end = self
            .pos
            .checked_add(n)
            .filter(|&end| end <= self.bytes.len())
            .ok_or_else(|| DeError(format!("blob: input exhausted ({n} bytes wanted)")))?;
        let slice = &self.bytes[self.pos..end];
        self.pos = end;
        Ok(slice)
    }

    /// Consumes one byte.
    ///
    /// # Errors
    ///
    /// Returns a [`DeError`] at end of input.
    pub fn byte(&mut self) -> Result<u8, DeError> {
        Ok(self.take(1)?[0])
    }

    /// Requires the input to be fully consumed.
    ///
    /// # Errors
    ///
    /// Returns a [`DeError`] when bytes are left over.
    pub fn finish(self) -> Result<(), DeError> {
        if self.remaining() == 0 {
            Ok(())
        } else {
            Err(DeError(format!(
                "blob: {} trailing bytes after value",
                self.remaining()
            )))
        }
    }
}

/// A sequence length prefix: `u32` little-endian.
fn encode_len(len: usize, out: &mut Vec<u8>) {
    let len = u32::try_from(len).expect("blob sequences are capped at u32::MAX elements");
    out.extend_from_slice(&len.to_le_bytes());
}

fn decode_len(r: &mut BlobReader<'_>) -> Result<usize, DeError> {
    Ok(u32::decode_blob(r)? as usize)
}

macro_rules! int_blob {
    ($($ty:ty),*) => {$(
        impl Blob for $ty {
            fn encode_blob(&self, out: &mut Vec<u8>) {
                out.extend_from_slice(&self.to_le_bytes());
            }
            fn decode_blob(r: &mut BlobReader<'_>) -> Result<Self, DeError> {
                let raw = r.take(std::mem::size_of::<$ty>())?;
                Ok(<$ty>::from_le_bytes(raw.try_into().expect("exact length taken")))
            }
        }
    )*};
}

int_blob!(u8, u16, u32, u64, i8, i16, i32, i64);

impl Blob for usize {
    fn encode_blob(&self, out: &mut Vec<u8>) {
        (*self as u64).encode_blob(out);
    }
    fn decode_blob(r: &mut BlobReader<'_>) -> Result<Self, DeError> {
        usize::try_from(u64::decode_blob(r)?)
            .map_err(|_| DeError("blob: usize out of range".to_owned()))
    }
}

impl Blob for bool {
    fn encode_blob(&self, out: &mut Vec<u8>) {
        out.push(u8::from(*self));
    }
    fn decode_blob(r: &mut BlobReader<'_>) -> Result<Self, DeError> {
        match r.byte()? {
            0 => Ok(false),
            1 => Ok(true),
            other => Err(DeError(format!("blob: invalid bool byte {other}"))),
        }
    }
}

impl Blob for f64 {
    fn encode_blob(&self, out: &mut Vec<u8>) {
        self.to_bits().encode_blob(out);
    }
    fn decode_blob(r: &mut BlobReader<'_>) -> Result<Self, DeError> {
        Ok(f64::from_bits(u64::decode_blob(r)?))
    }
}

impl Blob for f32 {
    fn encode_blob(&self, out: &mut Vec<u8>) {
        self.to_bits().encode_blob(out);
    }
    fn decode_blob(r: &mut BlobReader<'_>) -> Result<Self, DeError> {
        Ok(f32::from_bits(u32::decode_blob(r)?))
    }
}

impl Blob for () {
    fn encode_blob(&self, _out: &mut Vec<u8>) {}
    fn decode_blob(_r: &mut BlobReader<'_>) -> Result<Self, DeError> {
        Ok(())
    }
}

impl Blob for String {
    fn encode_blob(&self, out: &mut Vec<u8>) {
        encode_len(self.len(), out);
        out.extend_from_slice(self.as_bytes());
    }
    fn decode_blob(r: &mut BlobReader<'_>) -> Result<Self, DeError> {
        let len = decode_len(r)?;
        let raw = r.take(len)?;
        String::from_utf8(raw.to_vec()).map_err(|_| DeError("blob: invalid UTF-8".to_owned()))
    }
}

impl<T: Blob> Blob for Vec<T> {
    fn encode_blob(&self, out: &mut Vec<u8>) {
        encode_len(self.len(), out);
        for item in self {
            item.encode_blob(out);
        }
    }
    fn decode_blob(r: &mut BlobReader<'_>) -> Result<Self, DeError> {
        let len = decode_len(r)?;
        // Cap the up-front allocation by the bytes actually present so a
        // corrupted length prefix cannot balloon memory.
        let mut items = Vec::with_capacity(len.min(r.remaining()));
        for _ in 0..len {
            items.push(T::decode_blob(r)?);
        }
        Ok(items)
    }
}

impl<T: Blob> Blob for Option<T> {
    fn encode_blob(&self, out: &mut Vec<u8>) {
        match self {
            None => out.push(0),
            Some(v) => {
                out.push(1);
                v.encode_blob(out);
            }
        }
    }
    fn decode_blob(r: &mut BlobReader<'_>) -> Result<Self, DeError> {
        match r.byte()? {
            0 => Ok(None),
            1 => Ok(Some(T::decode_blob(r)?)),
            other => Err(DeError(format!("blob: invalid Option tag {other}"))),
        }
    }
}

macro_rules! tuple_blob {
    ($(($($name:ident . $idx:tt),+))*) => {$(
        impl<$($name: Blob),+> Blob for ($($name,)+) {
            fn encode_blob(&self, out: &mut Vec<u8>) {
                $(self.$idx.encode_blob(out);)+
            }
            fn decode_blob(r: &mut BlobReader<'_>) -> Result<Self, DeError> {
                Ok(($($name::decode_blob(r)?,)+))
            }
        }
    )*};
}

tuple_blob! {
    (A.0)
    (A.0, B.1)
    (A.0, B.1, C.2)
    (A.0, B.1, C.2, D.3)
}

impl<K: Blob + Ord, V: Blob> Blob for BTreeMap<K, V> {
    fn encode_blob(&self, out: &mut Vec<u8>) {
        encode_len(self.len(), out);
        for (k, v) in self {
            k.encode_blob(out);
            v.encode_blob(out);
        }
    }
    fn decode_blob(r: &mut BlobReader<'_>) -> Result<Self, DeError> {
        let len = decode_len(r)?;
        let mut map = BTreeMap::new();
        for _ in 0..len {
            let k = K::decode_blob(r)?;
            let v = V::decode_blob(r)?;
            map.insert(k, v);
        }
        Ok(map)
    }
}

impl<K: Blob + Ord + Hash + Eq, V: Blob> Blob for HashMap<K, V> {
    fn encode_blob(&self, out: &mut Vec<u8>) {
        encode_len(self.len(), out);
        let mut entries: Vec<(&K, &V)> = self.iter().collect();
        entries.sort_by(|a, b| a.0.cmp(b.0));
        for (k, v) in entries {
            k.encode_blob(out);
            v.encode_blob(out);
        }
    }
    fn decode_blob(r: &mut BlobReader<'_>) -> Result<Self, DeError> {
        let len = decode_len(r)?;
        let mut map = HashMap::with_capacity(len.min(r.remaining()));
        for _ in 0..len {
            let k = K::decode_blob(r)?;
            let v = V::decode_blob(r)?;
            map.insert(k, v);
        }
        Ok(map)
    }
}

impl<T: Blob + Ord + Hash + Eq> Blob for HashSet<T> {
    fn encode_blob(&self, out: &mut Vec<u8>) {
        encode_len(self.len(), out);
        let mut items: Vec<&T> = self.iter().collect();
        items.sort();
        for item in items {
            item.encode_blob(out);
        }
    }
    fn decode_blob(r: &mut BlobReader<'_>) -> Result<Self, DeError> {
        let len = decode_len(r)?;
        let mut set = HashSet::with_capacity(len.min(r.remaining()));
        for _ in 0..len {
            set.insert(T::decode_blob(r)?);
        }
        Ok(set)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn round_trip<T: Blob + PartialEq + std::fmt::Debug>(value: T) {
        let bytes = to_blob(&value);
        let back: T = from_blob(&bytes).expect("round trip decodes");
        assert_eq!(back, value);
    }

    #[test]
    fn primitives_round_trip() {
        round_trip(0u8);
        round_trip(u64::MAX);
        round_trip(-42i64);
        round_trip(usize::MAX);
        round_trip(true);
        round_trip(1.5f64);
        round_trip(f64::NEG_INFINITY.to_bits());
        round_trip(String::from("héllo\nworld"));
        round_trip(());
    }

    #[test]
    fn collections_round_trip() {
        round_trip(vec![1u32, 2, 3]);
        round_trip(Vec::<String>::new());
        round_trip(Some(vec![false, true]));
        round_trip(Option::<u8>::None);
        round_trip((String::from("k"), 9u64, vec![1u8]));
        round_trip(BTreeMap::from([(String::from("a"), 1u32)]));
        round_trip(HashMap::from([(7u32, ()), (3, ())]));
        round_trip(HashSet::from([String::from("x"), String::from("y")]));
    }

    #[test]
    fn unordered_collections_encode_deterministically() {
        let mut a = HashMap::new();
        let mut b = HashMap::new();
        for i in 0..64u32 {
            a.insert(i, i * 3);
        }
        for i in (0..64u32).rev() {
            b.insert(i, i * 3);
        }
        assert_eq!(to_blob(&a), to_blob(&b));
    }

    #[test]
    fn truncated_input_errors_cleanly() {
        let bytes = to_blob(&vec![1u64, 2, 3]);
        for cut in 0..bytes.len() {
            assert!(from_blob::<Vec<u64>>(&bytes[..cut]).is_err());
        }
    }

    #[test]
    fn trailing_bytes_rejected() {
        let mut bytes = to_blob(&7u32);
        bytes.push(0);
        assert!(from_blob::<u32>(&bytes).is_err());
    }

    #[test]
    fn hostile_length_prefix_does_not_balloon() {
        // Claims u32::MAX elements but provides none.
        let bytes = u32::MAX.to_le_bytes();
        assert!(from_blob::<Vec<u64>>(&bytes).is_err());
    }

    #[test]
    fn invalid_bool_and_option_tags_error() {
        assert!(from_blob::<bool>(&[2]).is_err());
        assert!(from_blob::<Option<u8>>(&[9, 1]).is_err());
    }
}

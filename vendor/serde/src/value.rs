//! The self-describing value tree all (de)serialization goes through.

use std::collections::BTreeMap;

/// A JSON-style number: unsigned, signed or floating.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum Number {
    /// A non-negative integer.
    U64(u64),
    /// A negative integer.
    I64(i64),
    /// A floating-point number.
    F64(f64),
}

/// A self-describing value, structurally identical to a JSON document.
///
/// Objects use a [`BTreeMap`], so rendering is deterministic (keys sorted).
#[derive(Debug, Clone, PartialEq)]
pub enum Value {
    /// JSON `null`.
    Null,
    /// A boolean.
    Bool(bool),
    /// A number.
    Number(Number),
    /// A string.
    String(String),
    /// An array.
    Array(Vec<Value>),
    /// An object with sorted keys.
    Object(BTreeMap<String, Value>),
}

impl Value {
    /// A short name for the value's kind, for error messages.
    pub fn kind(&self) -> &'static str {
        match self {
            Value::Null => "null",
            Value::Bool(_) => "bool",
            Value::Number(_) => "number",
            Value::String(_) => "string",
            Value::Array(_) => "array",
            Value::Object(_) => "object",
        }
    }

    /// The value as a `u64`, if it is a non-negative integer.
    pub fn as_u64(&self) -> Option<u64> {
        match self {
            Value::Number(Number::U64(n)) => Some(*n),
            Value::Number(Number::I64(n)) => u64::try_from(*n).ok(),
            Value::Number(Number::F64(f))
                if f.fract() == 0.0 && *f >= 0.0 && *f <= u64::MAX as f64 =>
            {
                Some(*f as u64)
            }
            _ => None,
        }
    }

    /// The value as an `i64`, if it is an integer in range.
    pub fn as_i64(&self) -> Option<i64> {
        match self {
            Value::Number(Number::I64(n)) => Some(*n),
            Value::Number(Number::U64(n)) => i64::try_from(*n).ok(),
            Value::Number(Number::F64(f))
                if f.fract() == 0.0 && *f >= i64::MIN as f64 && *f <= i64::MAX as f64 =>
            {
                Some(*f as i64)
            }
            _ => None,
        }
    }

    /// The value as an `f64`, if it is any number.
    pub fn as_f64(&self) -> Option<f64> {
        match self {
            Value::Number(Number::F64(f)) => Some(*f),
            Value::Number(Number::U64(n)) => Some(*n as f64),
            Value::Number(Number::I64(n)) => Some(*n as f64),
            _ => None,
        }
    }

    /// The value as a string slice, if it is a string.
    pub fn as_str(&self) -> Option<&str> {
        match self {
            Value::String(s) => Some(s),
            _ => None,
        }
    }

    /// An empty object, for incremental construction.
    pub fn new_object() -> Value {
        Value::Object(BTreeMap::new())
    }

    /// Inserts a key into an object value.
    ///
    /// # Panics
    ///
    /// Panics if `self` is not an object (only called by generated code).
    pub fn object_insert(&mut self, key: &str, value: Value) {
        match self {
            Value::Object(m) => {
                m.insert(key.to_owned(), value);
            }
            _ => panic!("object_insert on {}", self.kind()),
        }
    }

    /// Looks up a key in an object value.
    pub fn object_get(&self, key: &str) -> Option<&Value> {
        match self {
            Value::Object(m) => m.get(key),
            _ => None,
        }
    }

    /// The fields of an object value.
    pub fn as_object(&self) -> Option<&BTreeMap<String, Value>> {
        match self {
            Value::Object(m) => Some(m),
            _ => None,
        }
    }

    /// The elements of an array value.
    pub fn as_array(&self) -> Option<&[Value]> {
        match self {
            Value::Array(a) => Some(a),
            _ => None,
        }
    }
}

macro_rules! value_from_uint {
    ($($t:ty),*) => {$(
        impl From<$t> for Value {
            fn from(v: $t) -> Value {
                Value::Number(Number::U64(v as u64))
            }
        }
    )*};
}
value_from_uint!(u8, u16, u32, u64, usize);

macro_rules! value_from_sint {
    ($($t:ty),*) => {$(
        impl From<$t> for Value {
            fn from(v: $t) -> Value {
                Value::Number(Number::I64(v as i64))
            }
        }
    )*};
}
value_from_sint!(i8, i16, i32, i64, isize);

impl From<f64> for Value {
    fn from(v: f64) -> Value {
        Value::Number(Number::F64(v))
    }
}

impl From<f32> for Value {
    fn from(v: f32) -> Value {
        Value::Number(Number::F64(f64::from(v)))
    }
}

impl From<bool> for Value {
    fn from(v: bool) -> Value {
        Value::Bool(v)
    }
}

impl From<String> for Value {
    fn from(v: String) -> Value {
        Value::String(v)
    }
}

impl From<&str> for Value {
    fn from(v: &str) -> Value {
        Value::String(v.to_owned())
    }
}

impl From<BTreeMap<String, Value>> for Value {
    fn from(m: BTreeMap<String, Value>) -> Value {
        Value::Object(m)
    }
}

impl From<Vec<Value>> for Value {
    fn from(a: Vec<Value>) -> Value {
        Value::Array(a)
    }
}

impl Value {
    fn canonical_rank(&self) -> u8 {
        match self {
            Value::Null => 0,
            Value::Bool(_) => 1,
            Value::Number(_) => 2,
            Value::String(_) => 3,
            Value::Array(_) => 4,
            Value::Object(_) => 5,
        }
    }

    /// A total order over values, used to serialise unordered collections
    /// (`HashSet`) deterministically so canonical output is stable across
    /// processes. The order itself is arbitrary but fixed.
    pub fn canonical_cmp(&self, other: &Value) -> std::cmp::Ordering {
        use std::cmp::Ordering;
        match (self, other) {
            (Value::Null, Value::Null) => Ordering::Equal,
            (Value::Bool(a), Value::Bool(b)) => a.cmp(b),
            (Value::Number(a), Value::Number(b)) => number_cmp(a, b),
            (Value::String(a), Value::String(b)) => a.cmp(b),
            (Value::Array(a), Value::Array(b)) => {
                for (x, y) in a.iter().zip(b.iter()) {
                    let ord = x.canonical_cmp(y);
                    if ord != Ordering::Equal {
                        return ord;
                    }
                }
                a.len().cmp(&b.len())
            }
            (Value::Object(a), Value::Object(b)) => {
                for ((ka, va), (kb, vb)) in a.iter().zip(b.iter()) {
                    let ord = ka.cmp(kb).then_with(|| va.canonical_cmp(vb));
                    if ord != Ordering::Equal {
                        return ord;
                    }
                }
                a.len().cmp(&b.len())
            }
            _ => self.canonical_rank().cmp(&other.canonical_rank()),
        }
    }
}

fn number_cmp(a: &Number, b: &Number) -> std::cmp::Ordering {
    fn tag(n: &Number) -> u8 {
        match n {
            Number::U64(_) => 0,
            Number::I64(_) => 1,
            Number::F64(_) => 2,
        }
    }
    match (a, b) {
        (Number::U64(x), Number::U64(y)) => x.cmp(y),
        (Number::I64(x), Number::I64(y)) => x.cmp(y),
        (Number::F64(x), Number::F64(y)) => x.total_cmp(y),
        _ => {
            let fa = match a {
                Number::U64(x) => *x as f64,
                Number::I64(x) => *x as f64,
                Number::F64(x) => *x,
            };
            let fb = match b {
                Number::U64(x) => *x as f64,
                Number::I64(x) => *x as f64,
                Number::F64(x) => *x,
            };
            fa.total_cmp(&fb).then_with(|| tag(a).cmp(&tag(b)))
        }
    }
}

//! An application-specific accelerator under Strober — the paper's "the
//! approach applies to any Chisel RTL including application-specific
//! accelerators", plus the §IV-C3 retimed-datapath mechanism: the MAC's
//! pipeline registers are annotated for retiming, so their values cannot
//! be loaded from RTL snapshots; replay recovers them by forcing recorded
//! I/O for the pipeline depth before each measurement window.
//!
//! Run with: `cargo run --release --example accelerator`

use strober::{StroberConfig, StroberFlow};
use strober_dsl::Ctx;
use strober_platform::{HostModel, OutputView};
use strober_rtl::{Design, Width};
use strober_synth::SynthOptions;

/// A streaming dot-product accelerator: two 16-bit operands per cycle feed
/// a 3-stage multiply-accumulate pipeline; `acc` drains on `clear`.
fn build_mac() -> Design {
    let ctx = Ctx::new("dotprod");
    let w16 = Width::new(16).unwrap();
    let w32 = Width::new(32).unwrap();
    let a = ctx.input("a", w16);
    let b = ctx.input("b", w16);
    let valid = ctx.input("valid", Width::BIT);
    let clear = ctx.input("clear", Width::BIT);

    // The retimed datapath: operand latch → product latch (the synthesis
    // retimer is free to move these; replay recovers them via warmup).
    let (p2, v2) = ctx.scope("mac", |c| {
        let a1 = c.reg("a1", w16, 0);
        let b1 = c.reg("b1", w16, 0);
        let v1 = c.reg("v1", Width::BIT, 0);
        a1.set(&a);
        b1.set(&b);
        v1.set(&valid);
        let product = a1.out().zext(w32).mul(&b1.out().zext(w32));
        let p2 = c.reg("p2", w32, 0);
        let v2 = c.reg("v2", Width::BIT, 0);
        p2.set(&product);
        v2.set(&v1.out());
        (p2, v2)
    });

    let acc = ctx.scope("accum", |c| c.reg("acc", w32, 0));
    let zero = ctx.lit(0, w32);
    let sum = &acc.out() + &p2.out();
    let kept = v2.out().mux(&sum, &acc.out());
    acc.set(&clear.mux(&zero, &kept));

    ctx.output("acc", &acc.out());
    ctx.finish().expect("accelerator elaborates")
}

/// Streams pseudo-random vectors through the accelerator.
struct VectorFeeder;

impl HostModel for VectorFeeder {
    fn tick(&mut self, cycle: u64, io: &mut OutputView<'_>) {
        let phase = cycle % 80;
        // 64 elements, then a 16-cycle gap with a clear.
        if phase < 64 {
            io.set("a", (cycle * 1103 + 7) % 65_536);
            io.set("b", (cycle * 419 + 3) % 65_536);
            io.set("valid", 1);
            io.set("clear", 0);
        } else {
            io.set("valid", 0);
            io.set("clear", u64::from(phase == 79));
        }
    }
}

fn main() -> Result<(), strober::StroberError> {
    let design = build_mac();

    let flow = StroberFlow::new(
        &design,
        StroberConfig {
            replay_length: 64,
            // Warmup must cover the retimed pipeline's depth.
            warmup: 4,
            sample_size: 30,
            synth: SynthOptions {
                retime_prefixes: vec!["mac/".to_owned()],
                ..SynthOptions::default()
            },
            ..StroberConfig::default()
        },
    )?;

    println!(
        "retimed registers (excluded from snapshot loading): {:?}",
        flow.name_map().retimed
    );
    println!(
        "retiming moves applied by synthesis: {}",
        flow.synth().info.retime_moves
    );

    let run = flow.run_sampled(&mut VectorFeeder, 100_000)?;
    let results = flow.replay_all(&run.snapshots, 4)?;
    let estimate = flow.estimate(&run, &results)?;

    println!();
    print!("{estimate}");
    println!(
        "({} snapshots; every replay recovered the retimed MAC state by \
forcing {} warmup cycles of recorded I/O and verified all outputs)",
        results.len(),
        flow.config().warmup
    );
    Ok(())
}

//! Memory-system exploration with the DRAM timing model (the Fig. 7
//! mechanism as a user-facing workflow): sweep the simulated DRAM latency
//! and watch a pointer-chasing workload's performance and DRAM power
//! respond.
//!
//! Run with: `cargo run --release --example dram_explore`

use strober_cores::{build_core, CoreConfig};
use strober_dram::{DramConfig, DramModel, LpddrPowerParams};
use strober_isa::{assemble, programs};
use strober_sim::Simulator;

fn main() {
    let design = build_core(&CoreConfig::rok());
    // A 64 KiB working set — four times the 16 KiB D$, so every hop goes
    // to memory.
    let src = programs::pointer_chase(16 * 1024, 4, 4096);
    let image = assemble(&src).expect("assembles").words;
    let params = LpddrPowerParams::lpddr2_s4();

    println!(
        "{:>12} {:>12} {:>14} {:>12} {:>12}",
        "DRAM latency", "run cycles", "cycles/load", "activations", "DRAM mW"
    );
    for latency in [25u64, 50, 100, 200, 400] {
        let mut sim = Simulator::new(&design).expect("core");
        let mut dram = DramModel::new(
            DramConfig {
                cas_latency_cycles: latency,
                ..DramConfig::default()
            },
            programs::MEM_BYTES,
        );
        dram.load(&image, 0);
        let mut cycles = 0u64;
        while dram.exit_code().is_none() {
            dram.tick_raw(&mut sim);
            cycles += 1;
            assert!(cycles < 100_000_000, "did not finish");
        }
        let chase_cycles = f64::from(dram.exit_code().unwrap());
        let power = params.average_power_mw(dram.counters(), cycles, 1.0e9);
        println!(
            "{:>12} {:>12} {:>14.1} {:>12} {:>12.2}",
            latency,
            cycles,
            chase_cycles / 4096.0,
            dram.counters().activations,
            power.total_mw()
        );
    }
    println!();
    println!("Load-to-load latency tracks the simulated DRAM latency, while");
    println!("DRAM power *drops* as latency rises: the same accesses spread");
    println!("over more cycles (background power dominates a stalled system).");
}

//! Quickstart: sample-based energy simulation of a GCD unit.
//!
//! Builds a small RTL design in the construction DSL, runs the complete
//! Strober flow (FAME1 transform + scan chains, synthesis, formal
//! matching, fast sampled simulation, gate-level replay, power analysis),
//! and prints the average-power estimate with its confidence interval.
//!
//! Run with: `cargo run --release --example quickstart`

use strober::{StroberConfig, StroberFlow};
use strober_dsl::Ctx;
use strober_platform::{HostModel, OutputView};
use strober_rtl::Width;

/// Host model: feeds a new GCD problem whenever the unit reports done.
struct GcdDriver {
    problems: u64,
}

impl HostModel for GcdDriver {
    fn tick(&mut self, cycle: u64, io: &mut OutputView<'_>) {
        if io.get("done") == 1 || cycle == 0 {
            // A little deterministic variety.
            let a = 5000 + (cycle * 97 + 13) % 50_000;
            let b = 3 + (cycle * 31 + 7) % 9_000;
            io.set("a", a);
            io.set("b", b);
            io.set("start", 1);
            self.problems += 1;
        } else {
            io.set("start", 0);
        }
    }
}

fn build_gcd() -> strober_rtl::Design {
    let ctx = Ctx::new("gcd");
    let w16 = Width::new(16).unwrap();
    let a_in = ctx.input("a", w16);
    let b_in = ctx.input("b", w16);
    let start = ctx.input("start", Width::BIT);

    let (x, y) = ctx.scope("datapath", |c| (c.reg("x", w16, 0), c.reg("y", w16, 0)));
    let x_gt_y = y.out().ltu(&x.out());
    let x_next = x_gt_y.mux(&(&x.out() - &y.out()), &x.out());
    let y_next = x_gt_y.mux(&y.out(), &(&y.out() - &x.out()));
    x.set(&start.mux(&a_in, &x_next));
    y.set(&start.mux(&b_in, &y_next));

    ctx.output("result", &x.out());
    ctx.output("done", &y.out().eq_lit(0));
    ctx.finish().expect("gcd elaborates")
}

fn main() -> Result<(), strober::StroberError> {
    let design = build_gcd();
    println!("target: {design}");

    // 1. Instrument + synthesize + formally match.
    let flow = StroberFlow::new(
        &design,
        StroberConfig {
            replay_length: 64,
            sample_size: 30,
            ..StroberConfig::default()
        },
    )?;
    println!(
        "hub has {} registers ({} in the scan chain); netlist has {} gates + {} flip-flops",
        flow.fame().hub.register_count(),
        flow.fame().meta.scan_chain.len(),
        flow.synth().netlist.comb_gate_count(),
        flow.synth().netlist.dff_count(),
    );

    // 2. Fast simulation with reservoir-sampled snapshots.
    let mut driver = GcdDriver { problems: 0 };
    let run = flow.run_sampled(&mut driver, 200_000)?;
    println!(
        "ran {} target cycles ({} replay windows), captured {} snapshots in {} record operations",
        run.target_cycles,
        run.windows,
        run.snapshots.len(),
        run.records
    );

    // 3. Replay each snapshot on gate-level simulation (in parallel) and
    //    turn the signal activity into power.
    let results = flow.replay_all(&run.snapshots, 4)?;
    let checked: u64 = results.iter().map(|r| r.outputs_checked).sum();
    println!(
        "replayed {} snapshots; {} output values checked against traces",
        results.len(),
        checked
    );

    // 4. The estimate.
    let estimate = flow.estimate(&run, &results)?;
    println!();
    print!("{estimate}");
    println!(
        "total energy for the run: {:.3} mJ over {} GCD problems",
        estimate.total_energy_mj(),
        driver.problems
    );
    Ok(())
}

//! Design-space exploration: performance, power and energy of the three
//! bundled cores on a CoreMark-like workload — the paper's headline use
//! case ("productive design-space exploration early in the RTL design
//! process").
//!
//! Run with: `cargo run --release --example design_space`

use strober::{StroberConfig, StroberFlow};
use strober_cores::{build_core, CoreConfig};
use strober_dram::{DramConfig, DramModel, LpddrPowerParams};
use strober_isa::{assemble, programs};

fn main() -> Result<(), strober::StroberError> {
    let image = assemble(&programs::coremark_like(30))
        .expect("assembles")
        .words;
    let dram_params = LpddrPowerParams::lpddr2_s4();

    println!(
        "{:<10} {:>10} {:>8} {:>12} {:>12} {:>12}",
        "core", "cycles", "CPI", "core mW", "DRAM mW", "EPI nJ/inst"
    );

    let mut baseline_epi = None;
    for config in CoreConfig::table2() {
        let design = build_core(&config);
        let flow = StroberFlow::new(
            &design,
            StroberConfig {
                replay_length: 128,
                sample_size: 30,
                ..StroberConfig::default()
            },
        )?;

        let mut dram = DramModel::new(DramConfig::default(), programs::MEM_BYTES);
        dram.load(&image, 0);
        let run = flow.run_sampled(&mut dram, 50_000_000)?;
        assert!(dram.exit_code().is_some(), "workload must finish");

        let results = flow.replay_all(&run.snapshots, 4)?;
        let estimate = flow.estimate(&run, &results)?;

        let instret = dram.instret();
        let cpi = run.target_cycles as f64 / instret as f64;
        let dram_mw = dram_params
            .average_power_mw(dram.counters(), run.target_cycles, 1.0e9)
            .total_mw();
        let total_mw = estimate.mean_power_mw() + dram_mw;
        let epi = total_mw * 1e-3 * (run.target_cycles as f64 / 1.0e9) / instret as f64 * 1e9;
        baseline_epi.get_or_insert(epi);

        println!(
            "{:<10} {:>10} {:>8.2} {:>12.2} {:>12.2} {:>12.2}",
            config.name,
            run.target_cycles,
            cpi,
            estimate.mean_power_mw(),
            dram_mw,
            epi
        );
    }

    println!();
    println!("Expected design-space shape (paper Fig. 9): the wider core is");
    println!("faster on compute-heavy code but burns more power; the in-order");
    println!("core is the most energy-efficient per instruction.");
    Ok(())
}

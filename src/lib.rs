//! Umbrella crate: re-exports the Strober workspace for integration tests and examples.
pub use strober;

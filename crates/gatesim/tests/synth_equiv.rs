//! End-to-end synthesis correctness: for random RTL designs, the gate-level
//! netlist simulated by `GateSim` must match the RTL tape simulator output
//! cycle-for-cycle — with and without optimisation and mangling. This is
//! the random-vector half of the equivalence evidence a commercial formal
//! tool provides.

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use strober_gatesim::GateSim;
use strober_sim::rand_design::{rand_design, RandDesignConfig};
use strober_sim::Simulator;
use strober_synth::{synthesize, SynthOptions};

fn check_equiv(seed: u64, opts: &SynthOptions, cycles: u64) {
    let cfg = RandDesignConfig::default();
    let design = rand_design(seed, &cfg);
    let result = synthesize(&design, opts).expect("synthesis must succeed");

    let mut rtl = Simulator::new(&design).expect("valid design");
    let mut gate = GateSim::new(&result.netlist).expect("valid netlist");
    let mut rng = StdRng::seed_from_u64(seed ^ 0xC0FFEE);

    let ports: Vec<(String, u64)> = design
        .ports()
        .iter()
        .map(|p| (p.name().to_owned(), p.width().mask()))
        .collect();
    let outputs: Vec<String> = design.outputs().iter().map(|(n, _)| n.clone()).collect();

    for cycle in 0..cycles {
        for (name, mask) in &ports {
            let v = rng.gen::<u64>() & mask;
            rtl.poke_by_name(name, v).unwrap();
            gate.poke_port(name, v).unwrap();
        }
        for out in &outputs {
            let r = rtl.peek_output(out).unwrap();
            let g = gate.peek_port(out).unwrap();
            assert_eq!(
                r, g,
                "seed {seed}: output `{out}` diverged at cycle {cycle}: rtl={r:#x} gate={g:#x}"
            );
        }
        rtl.step();
        gate.step();
    }
}

#[test]
fn unoptimized_netlists_match_rtl() {
    let opts = SynthOptions {
        optimize: false,
        mangle: false,
        retime_prefixes: Vec::new(),
    };
    for seed in 0..25 {
        check_equiv(seed, &opts, 40);
    }
}

#[test]
fn optimized_netlists_match_rtl() {
    let opts = SynthOptions {
        optimize: true,
        mangle: false,
        retime_prefixes: Vec::new(),
    };
    for seed in 0..25 {
        check_equiv(seed, &opts, 40);
    }
}

#[test]
fn mangled_optimized_netlists_match_rtl() {
    let opts = SynthOptions::default();
    for seed in 100..115 {
        check_equiv(seed, &opts, 40);
    }
}

#[test]
fn long_run_equivalence() {
    check_equiv(777, &SynthOptions::default(), 500);
}

#[test]
fn state_loading_by_synthinfo_names_reproduces_rtl_state() {
    // Capture RTL state mid-run, load it into a fresh gate simulation via
    // the SynthInfo name map, and check the two simulations then agree —
    // the essence of snapshot replay.
    let cfg = RandDesignConfig::default();
    let design = rand_design(2024, &cfg);
    let result = synthesize(&design, &SynthOptions::default()).unwrap();

    let mut rtl = Simulator::new(&design).unwrap();
    let mut rng = StdRng::seed_from_u64(55);
    let ports: Vec<(String, u64)> = design
        .ports()
        .iter()
        .map(|p| (p.name().to_owned(), p.width().mask()))
        .collect();

    // Run the RTL sim for a while with random stimulus.
    let mut last_inputs = Vec::new();
    for _ in 0..100 {
        last_inputs.clear();
        for (name, mask) in &ports {
            let v = rng.gen::<u64>() & mask;
            rtl.poke_by_name(name, v).unwrap();
            last_inputs.push((name.clone(), v));
        }
        rtl.step();
    }

    // Transfer state into the gate sim via instance names.
    let mut gate = GateSim::new(&result.netlist).unwrap();
    for (reg_id, reg) in design.registers() {
        let value = rtl.reg_value(reg_id);
        let dff_names = &result.info.reg_map[reg.name()];
        for (i, dff) in dff_names.iter().enumerate() {
            gate.set_dff(dff, (value >> i) & 1 == 1).unwrap();
        }
    }
    for (mem_id, mem) in design.memories() {
        let macro_name = &result.info.mem_map[mem.name()];
        for addr in 0..mem.depth() {
            gate.set_sram_word(macro_name, addr, rtl.mem_value(mem_id, addr))
                .unwrap();
        }
    }

    // From here the two simulations must track exactly.
    let outputs: Vec<String> = design.outputs().iter().map(|(n, _)| n.clone()).collect();
    for cycle in 0..50 {
        for (name, mask) in &ports {
            let v = rng.gen::<u64>() & mask;
            rtl.poke_by_name(name, v).unwrap();
            gate.poke_port(name, v).unwrap();
        }
        for out in &outputs {
            assert_eq!(
                rtl.peek_output(out).unwrap(),
                gate.peek_port(out).unwrap(),
                "diverged at cycle {cycle} after state load"
            );
        }
        rtl.step();
        gate.step();
    }
}

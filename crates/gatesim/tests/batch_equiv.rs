//! Differential proof for the bit-parallel engine: a `BatchSim` carrying
//! N lanes must be *bit-identical* — outputs, toggle counts and SRAM
//! access counts — to N sequential 1-lane `GateSim` replays of the same
//! stimulus. This is the property that lets the replay flow route every
//! sample through the packed path without changing any result.

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use strober_dsl::Ctx;
use strober_gatesim::{BatchSim, GateSim};
use strober_rtl::{Design, Width};
use strober_sim::rand_design::{rand_design, RandDesignConfig};
use strober_synth::{synthesize, SynthOptions};

/// Runs `lanes` scalar sims and one batched sim over identical per-lane
/// random stimulus, checking every output on every cycle and the full
/// activity report at the end. `reset_at` exercises the measurement-window
/// boundary (`reset_activity`) mid-run on both engines.
fn check_batch_equiv(design: &Design, lanes: usize, cycles: u64, seed: u64, reset_at: Option<u64>) {
    let netlist = synthesize(design, &SynthOptions::default())
        .expect("synthesis must succeed")
        .netlist;
    let mut scalars: Vec<GateSim> = (0..lanes)
        .map(|_| GateSim::new(&netlist).expect("valid netlist"))
        .collect();
    let mut batch = BatchSim::with_lanes(&netlist, lanes).expect("valid lane count");

    let ports: Vec<(String, u64)> = design
        .ports()
        .iter()
        .map(|p| (p.name().to_owned(), p.width().mask()))
        .collect();
    let outputs: Vec<String> = design.outputs().iter().map(|(n, _)| n.clone()).collect();
    let mut rngs: Vec<StdRng> = (0..lanes)
        .map(|l| StdRng::seed_from_u64(seed ^ (0xBAD5EED + l as u64)))
        .collect();

    let mut lane_vals = vec![0u64; lanes];
    for cycle in 0..cycles {
        for (name, mask) in &ports {
            for lane in 0..lanes {
                lane_vals[lane] = rngs[lane].gen::<u64>() & mask;
                scalars[lane].poke_port(name, lane_vals[lane]).unwrap();
            }
            batch.poke_port_lanes(name, &lane_vals).unwrap();
        }
        if reset_at == Some(cycle) {
            for s in &mut scalars {
                s.reset_activity();
            }
            batch.reset_activity();
        }
        for out in &outputs {
            batch.peek_port_lanes_into(out, &mut lane_vals).unwrap();
            for lane in 0..lanes {
                let scalar = scalars[lane].peek_port(out).unwrap();
                assert_eq!(
                    scalar, lane_vals[lane],
                    "seed {seed}: output `{out}` lane {lane} diverged at cycle {cycle}: \
                     scalar={scalar:#x} batch={:#x}",
                    lane_vals[lane]
                );
                assert_eq!(scalar, batch.peek_port_lane(out, lane).unwrap());
            }
        }
        for s in &mut scalars {
            s.step();
        }
        batch.step();
    }

    for (lane, scalar) in scalars.iter_mut().enumerate() {
        let want = scalar.activity();
        let got = batch.activity_lane(lane).unwrap();
        assert_eq!(
            want, got,
            "seed {seed}: lane {lane} activity diverged (toggle or SRAM access counts)"
        );
    }
}

#[test]
fn full_64_lane_batch_matches_64_sequential_replays() {
    let design = rand_design(11, &RandDesignConfig::default());
    check_batch_equiv(&design, 64, 50, 11, None);
}

#[test]
fn partial_batches_match_sequential_replays() {
    // Lane counts that don't fill the word: the tail snapshots of a
    // sample set land in batches like these.
    let design = rand_design(42, &RandDesignConfig::default());
    for lanes in [1, 2, 5, 33, 63] {
        check_batch_equiv(&design, lanes, 30, 42, None);
    }
}

#[test]
fn activity_windows_match_after_mid_run_reset() {
    // reset_activity mid-run is exactly what replay does at the
    // measurement-window boundary; window semantics must agree per lane.
    let design = rand_design(77, &RandDesignConfig::default());
    check_batch_equiv(&design, 16, 60, 77, Some(25));
}

#[test]
fn sram_heavy_designs_match() {
    // Multiple memories with active read/write traffic: the lane-wise
    // scalar SRAM port path against the scalar engine's.
    let ctx = Ctx::new("srams");
    let w8 = Width::new(8).unwrap();
    let w16 = Width::new(16).unwrap();
    let addr_a = ctx.input("addr_a", Width::new(5).unwrap());
    let addr_b = ctx.input("addr_b", Width::new(4).unwrap());
    let data = ctx.input("data", w16);
    let we = ctx.input("we", Width::BIT);
    let a = ctx.mem("a", w16, 32);
    let b = ctx.mem("b", w8, 16);
    ctx.output("qa", &a.read(&addr_a));
    ctx.output("qb", &b.read(&addr_b));
    a.write(&addr_a, &data, &we);
    b.write(&addr_b, &data.bits(7, 0), &we);
    let design = ctx.finish().unwrap();
    check_batch_equiv(&design, 64, 80, 5, Some(20));
}

#[test]
fn extreme_widths_match() {
    // 1-, 7-, 63- and 64-bit ports and registers: the word-packing edge
    // cases (full-width shifts, top-bit lanes).
    let ctx = Ctx::new("widths");
    let w64 = Width::new(64).unwrap();
    let w63 = Width::new(63).unwrap();
    let w7 = Width::new(7).unwrap();
    let x1 = ctx.input("x1", Width::BIT);
    let x7 = ctx.input("x7", w7);
    let x63 = ctx.input("x63", w63);
    let x64 = ctx.input("x64", w64);
    let r64 = ctx.reg("r64", w64, 0);
    let r63 = ctx.reg("r63", w63, 1);
    r64.set(&(&x64 ^ &r64.out()));
    r63.set(&(&x63 + &r63.out()));
    ctx.output("y64", &r64.out());
    ctx.output("y63", &r63.out());
    ctx.output("y1", &(&x1 ^ &r64.out().bit(63)));
    ctx.output("y7", &(&x7 + &r63.out().bits(6, 0)));
    let design = ctx.finish().unwrap();
    check_batch_equiv(&design, 64, 60, 9, None);
}

//! State snapshot loaders with modelled wall-clock cost.
//!
//! §IV-C2 of the paper: loading RTL state through the simulator's command
//! console ran at ~400 commands/second (40 minutes for 30 snapshots of a
//! 35k-flop design), while a custom loader using the Verilog Programming
//! Language Interface reached ~20 000 commands/second (54 seconds). Both
//! loaders here perform identical loads; they differ in the *modelled*
//! seconds they report, which feed the replay-time term `T_load` of the
//! §IV-E performance model — and they make the 50× contrast measurable in
//! the benchmark suite.

use crate::batch::BatchSim;
use crate::sim::{GateSim, GateSimError};

/// Statistics from one state load.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct LoadStats {
    /// Number of loader commands issued (one per flip-flop bit plus one per
    /// memory word).
    pub commands: u64,
    /// Modelled wall-clock seconds for the load at this loader's command
    /// rate.
    pub modeled_seconds: f64,
}

/// A loader that drives the simulator's interactive console: one command
/// per bit, at the paper's measured ~400 commands/second.
#[derive(Debug)]
pub struct ScriptLoader;

/// A loader compiled into the simulator through the VPI: bulk transfers at
/// the paper's measured ~20 000 commands/second.
#[derive(Debug)]
pub struct VpiLoader;

/// The per-command rates reported in §IV-C2.
impl ScriptLoader {
    /// Commands per second through the interactive console.
    pub const COMMANDS_PER_SECOND: f64 = 400.0;

    /// Loads flip-flop and SRAM state, returning the modelled cost.
    ///
    /// # Errors
    ///
    /// Propagates [`GateSimError`] for unknown names or bad addresses.
    pub fn load(
        sim: &mut GateSim,
        dff_values: &[(String, bool)],
        sram_words: &[(String, usize, u64)],
    ) -> Result<LoadStats, GateSimError> {
        let commands = apply(sim, dff_values, sram_words)?;
        Ok(LoadStats {
            commands,
            modeled_seconds: commands as f64 / Self::COMMANDS_PER_SECOND,
        })
    }

    /// Loads per-lane flip-flop and SRAM state into a batched simulator;
    /// see [`VpiLoader::load_batch`] for the data layout and cost model.
    ///
    /// # Errors
    ///
    /// Propagates [`GateSimError`] for unknown names, bad addresses or
    /// wrong-length lane slices.
    pub fn load_batch(
        sim: &mut BatchSim,
        dff_words: &[(String, u64)],
        sram_words: &[(String, usize, Vec<u64>)],
    ) -> Result<LoadStats, GateSimError> {
        let commands = apply_batch(sim, dff_words, sram_words)?;
        Ok(LoadStats {
            commands,
            modeled_seconds: commands as f64 / Self::COMMANDS_PER_SECOND,
        })
    }
}

impl VpiLoader {
    /// Commands per second through the VPI bulk interface.
    pub const COMMANDS_PER_SECOND: f64 = 20_000.0;

    /// Loads flip-flop and SRAM state, returning the modelled cost.
    ///
    /// # Errors
    ///
    /// Propagates [`GateSimError`] for unknown names or bad addresses.
    pub fn load(
        sim: &mut GateSim,
        dff_values: &[(String, bool)],
        sram_words: &[(String, usize, u64)],
    ) -> Result<LoadStats, GateSimError> {
        let commands = apply(sim, dff_values, sram_words)?;
        Ok(LoadStats {
            commands,
            modeled_seconds: commands as f64 / Self::COMMANDS_PER_SECOND,
        })
    }

    /// Loads per-lane flip-flop and SRAM state into a batched simulator.
    ///
    /// `dff_words` carries one packed word per flop (bit `l` = lane `l`'s
    /// value); each `sram_words` entry carries one word per lane for one
    /// address. The modelled cost is `lanes ×` the per-snapshot command
    /// count: batching saves *evaluation* time, not the per-snapshot VPI
    /// transfer the §IV-E model charges for.
    ///
    /// # Errors
    ///
    /// Propagates [`GateSimError`] for unknown names, bad addresses or
    /// wrong-length lane slices.
    pub fn load_batch(
        sim: &mut BatchSim,
        dff_words: &[(String, u64)],
        sram_words: &[(String, usize, Vec<u64>)],
    ) -> Result<LoadStats, GateSimError> {
        let commands = apply_batch(sim, dff_words, sram_words)?;
        Ok(LoadStats {
            commands,
            modeled_seconds: commands as f64 / Self::COMMANDS_PER_SECOND,
        })
    }
}

fn apply(
    sim: &mut GateSim,
    dff_values: &[(String, bool)],
    sram_words: &[(String, usize, u64)],
) -> Result<u64, GateSimError> {
    let _span = strober_probe::span("strober.gatesim.load");
    strober_probe::counter_add(
        "strober.gatesim.load_commands",
        (dff_values.len() + sram_words.len()) as u64,
    );
    for (name, v) in dff_values {
        sim.set_dff(name, *v)?;
    }
    for (name, addr, word) in sram_words {
        sim.set_sram_word(name, *addr, *word)?;
    }
    Ok((dff_values.len() + sram_words.len()) as u64)
}

fn apply_batch(
    sim: &mut BatchSim,
    dff_words: &[(String, u64)],
    sram_words: &[(String, usize, Vec<u64>)],
) -> Result<u64, GateSimError> {
    let _span = strober_probe::span("strober.gatesim.load_batch");
    let commands = ((dff_words.len() + sram_words.len()) * sim.lanes()) as u64;
    strober_probe::counter_add("strober.gatesim.load_commands", commands);
    for (name, packed) in dff_words {
        sim.set_dff_lanes(name, *packed)?;
    }
    for (name, addr, words) in sram_words {
        sim.set_sram_word_lanes(name, *addr, words)?;
    }
    Ok(commands)
}

#[cfg(test)]
mod tests {
    use super::*;
    use strober_dsl::Ctx;
    use strober_rtl::Width;
    use strober_synth::{synthesize, SynthOptions};

    fn sim() -> GateSim {
        let ctx = Ctx::new("t");
        let r = ctx.reg("state", Width::new(4).unwrap(), 0);
        r.set(&r.out());
        ctx.output("o", &r.out());
        let design = ctx.finish().unwrap();
        let nl = synthesize(
            &design,
            &SynthOptions {
                optimize: false,
                mangle: false,
                retime_prefixes: Vec::new(),
            },
        )
        .unwrap()
        .netlist;
        GateSim::new(&nl).unwrap()
    }

    #[test]
    fn both_loaders_load_the_same_state() {
        let values: Vec<(String, bool)> = (0..4)
            .map(|i| (format!("state_reg_{i}_"), i % 2 == 0))
            .collect();
        let mut s1 = sim();
        let mut s2 = sim();
        let a = ScriptLoader::load(&mut s1, &values, &[]).unwrap();
        let b = VpiLoader::load(&mut s2, &values, &[]).unwrap();
        assert_eq!(s1.peek_port("o").unwrap(), s2.peek_port("o").unwrap());
        assert_eq!(s1.peek_port("o").unwrap(), 0b0101);
        assert_eq!(a.commands, 4);
        assert_eq!(b.commands, 4);
    }

    #[test]
    fn vpi_is_fifty_times_faster() {
        let values: Vec<(String, bool)> =
            (0..4).map(|i| (format!("state_reg_{i}_"), true)).collect();
        let mut s1 = sim();
        let mut s2 = sim();
        let script = ScriptLoader::load(&mut s1, &values, &[]).unwrap();
        let vpi = VpiLoader::load(&mut s2, &values, &[]).unwrap();
        let ratio = script.modeled_seconds / vpi.modeled_seconds;
        assert!((ratio - 50.0).abs() < 1e-9);
    }

    #[test]
    fn batch_load_matches_sequential_loads() {
        let values: Vec<(String, bool)> = (0..4)
            .map(|i| (format!("state_reg_{i}_"), i % 2 == 0))
            .collect();
        let mut scalar = sim();
        let seq = VpiLoader::load(&mut scalar, &values, &[]).unwrap();

        // Two lanes, both loaded with the same snapshot.
        let words: Vec<(String, u64)> = values
            .iter()
            .map(|(n, v)| (n.clone(), if *v { 0b11 } else { 0 }))
            .collect();
        let mut batch = BatchSim::with_lanes(scalar.netlist(), 2).unwrap();
        let stats = VpiLoader::load_batch(&mut batch, &words, &[]).unwrap();
        for lane in 0..2 {
            assert_eq!(
                batch.peek_port_lane("o", lane).unwrap(),
                scalar.peek_port("o").unwrap()
            );
        }
        // Batching does not discount the modelled per-snapshot VPI cost.
        assert_eq!(stats.commands, 2 * seq.commands);
    }

    #[test]
    fn paper_example_magnitudes() {
        // 35k flops × 30 snapshots: 40 minutes by script, under a minute
        // per the paper's VPI fix (54 s for 30 loads of the in-order core).
        let commands = 35_000.0 * 30.0;
        let script_minutes = commands / ScriptLoader::COMMANDS_PER_SECOND / 60.0;
        let vpi_seconds = commands / VpiLoader::COMMANDS_PER_SECOND;
        assert!((script_minutes - 43.75).abs() < 0.1); // "takes 40 minutes"
        assert!(vpi_seconds < 60.0); // "reducing runtime to only 54 seconds"
    }
}

//! Bit-parallel batched gate-level simulation: 64 replays per pass.
//!
//! [`BatchSim`] evaluates the same compiled op tape as [`crate::GateSim`],
//! but over one `u64` *word* per net instead of one `bool`: bit-lane `l`
//! of every word holds the value of that net in replay `l`. A single
//! AND/OR/XOR/NOT pass over the tape therefore advances up to 64
//! independent sample replays at once — the classic bit-parallel
//! ("PLP") gate simulation restructuring, applied to Strober's replay
//! stage where every snapshot runs the *same* netlist for the *same*
//! number of cycles and only the data differs.
//!
//! What stays lane-wise (scalar per lane):
//!
//! * SRAM read/write ports — each lane addresses its own copy of the
//!   macro contents, so addresses and data are gathered/scattered per
//!   lane. Ports are rare relative to gates, so this does not dominate.
//! * Activity counting — per-net toggle counters are kept per lane for
//!   the power model; the per-cycle cost is proportional to the number
//!   of *toggling* lanes (`diff.count_ones()`), not to the lane count.
//!
//! The result is bit-identical to running 64 separate [`crate::GateSim`]
//! replays (a property enforced by the `batch_equiv` differential test),
//! at a fraction of the cost.
//!
//! # Examples
//!
//! ```
//! use strober_dsl::Ctx;
//! use strober_rtl::Width;
//! use strober_synth::{synthesize, SynthOptions};
//! use strober_gatesim::BatchSim;
//!
//! # fn main() -> Result<(), Box<dyn std::error::Error>> {
//! let ctx = Ctx::new("counter");
//! let en = ctx.input("en", Width::BIT);
//! let count = ctx.reg("count", Width::new(8)?, 0);
//! count.set_en(&count.out().add_lit(1), &en);
//! ctx.output("value", &count.out());
//! let synth = synthesize(&ctx.finish()?, &SynthOptions::default())?;
//!
//! // Four lanes: lanes 0 and 2 enabled, lanes 1 and 3 idle.
//! let mut sim = BatchSim::with_lanes(&synth.netlist, 4)?;
//! sim.poke_port_lanes("en", &[1, 0, 1, 0])?;
//! sim.step_n(10);
//! assert_eq!(sim.peek_port_lane("value", 0)?, 10);
//! assert_eq!(sim.peek_port_lane("value", 1)?, 0);
//! assert_eq!(sim.peek_port_lane("value", 2)?, 10);
//! # Ok(())
//! # }
//! ```

use crate::activity::ActivityReport;
use crate::compile::{Step, Tape};
use crate::sim::GateSimError;
use std::collections::HashMap;
use strober_gates::{CellKind, Netlist};

/// The maximum number of bit-lanes a [`BatchSim`] can carry: one sample
/// per bit of a `u64`.
pub const MAX_LANES: usize = 64;

#[derive(Debug, Clone)]
struct BatchSramState {
    /// Per-lane macro contents, laid out `[lane * depth + addr]`.
    contents: Vec<u64>,
    /// Previous read address per `(port, lane)`, laid out
    /// `[port * lanes + lane]`.
    prev_read_addr: Vec<Option<usize>>,
    /// Read accesses charged, per lane.
    reads: Vec<u64>,
    /// Write accesses committed, per lane.
    writes: Vec<u64>,
}

/// The bit-parallel batched gate-level simulator.
///
/// Carries `lanes` (1..=[`MAX_LANES`]) independent replays of one netlist;
/// every lane sees identical zero-delay levelized semantics to a
/// standalone [`crate::GateSim`]. All lanes share the clock: one
/// [`BatchSim::step`] advances every lane by one cycle.
#[derive(Debug, Clone)]
pub struct BatchSim {
    netlist: Netlist,
    tape: std::sync::Arc<Tape>,
    lanes: usize,
    /// Bits `0..lanes` set; everything lane-visible is masked with this.
    lane_mask: u64,
    /// One word per net; bit `l` = the net's value in lane `l`.
    values: Vec<u64>,
    prev_values: Vec<u64>,
    /// Per-net, per-lane toggle counters, laid out `[net * lanes + lane]`.
    toggles: Vec<u64>,
    /// Clock-edge scratch for DFF next-state words; reused every cycle.
    dff_scratch: Vec<u64>,
    /// Per-lane address scratch for SRAM port evaluation; reused.
    lane_addr: Vec<usize>,
    srams: Vec<BatchSramState>,
    inputs: Vec<(u32, u64)>,
    input_index: HashMap<u32, usize>,
    cycle: u64,
    dirty: bool,
    settled_once: bool,
}

impl BatchSim {
    /// Compiles a netlist for batched simulation with the full 64 lanes.
    ///
    /// # Errors
    ///
    /// Returns [`GateSimError::BadNetlist`] if the netlist fails
    /// validation.
    pub fn new(netlist: &Netlist) -> Result<Self, GateSimError> {
        Self::with_lanes(netlist, MAX_LANES)
    }

    /// Compiles a netlist for batched simulation with `lanes` active
    /// bit-lanes.
    ///
    /// # Errors
    ///
    /// Returns [`GateSimError::BadLaneCount`] unless `1 <= lanes <= 64`,
    /// or [`GateSimError::BadNetlist`] for an invalid netlist.
    pub fn with_lanes(netlist: &Netlist, lanes: usize) -> Result<Self, GateSimError> {
        let _span = strober_probe::span("strober.gatesim.batch_compile");
        let tape = std::sync::Arc::new(Tape::compile(netlist)?);
        Self::with_tape_lanes(tape, netlist, lanes)
    }

    /// Builds a batched simulator from a tape compiled earlier with
    /// [`Tape::compile`], skipping compilation entirely. The tape **must**
    /// have been compiled from this exact `netlist` (see
    /// [`GateSim::with_tape`](crate::GateSim::with_tape)).
    ///
    /// # Errors
    ///
    /// Returns [`GateSimError::BadLaneCount`] unless `1 <= lanes <= 64`.
    pub fn with_tape_lanes(
        tape: std::sync::Arc<Tape>,
        netlist: &Netlist,
        lanes: usize,
    ) -> Result<Self, GateSimError> {
        if lanes == 0 || lanes > MAX_LANES {
            return Err(GateSimError::BadLaneCount { lanes });
        }
        let lane_mask = mask_for(lanes);

        let mut srams = Vec::new();
        for s in netlist.srams() {
            let mut one = s.init.clone();
            one.resize(s.depth, 0);
            let mut contents = Vec::with_capacity(s.depth * lanes);
            for _ in 0..lanes {
                contents.extend_from_slice(&one);
            }
            srams.push(BatchSramState {
                contents,
                prev_read_addr: vec![None; s.read_ports.len() * lanes],
                reads: vec![0; lanes],
                writes: vec![0; lanes],
            });
        }

        let mut values = vec![0u64; tape.net_count];
        // Reset values broadcast to every lane.
        for (&(_, q), &init) in tape.dffs.iter().zip(&tape.dff_inits) {
            values[q as usize] = if init { !0 } else { 0 };
        }

        Ok(BatchSim {
            prev_values: values.clone(),
            toggles: vec![0; tape.net_count * lanes],
            dff_scratch: vec![0; tape.dffs.len()],
            lane_addr: vec![0; lanes],
            values,
            tape,
            lanes,
            lane_mask,
            srams,
            inputs: Vec::new(),
            input_index: HashMap::new(),
            cycle: 0,
            dirty: true,
            settled_once: false,
            netlist: netlist.clone(),
        })
    }

    /// The netlist being simulated.
    pub fn netlist(&self) -> &Netlist {
        &self.netlist
    }

    /// The number of active bit-lanes.
    pub fn lanes(&self) -> usize {
        self.lanes
    }

    /// The current cycle count (shared by every lane).
    pub fn cycle(&self) -> u64 {
        self.cycle
    }

    fn check_lane(&self, lane: usize) -> Result<(), GateSimError> {
        if lane >= self.lanes {
            return Err(GateSimError::LaneOutOfRange {
                lane,
                lanes: self.lanes,
            });
        }
        Ok(())
    }

    /// Drives a word-level input port with one value per lane
    /// (`values[l]` goes to lane `l`; `values.len()` must equal
    /// [`BatchSim::lanes`]).
    ///
    /// # Errors
    ///
    /// Returns [`GateSimError::UnknownName`], [`GateSimError::BadLaneCount`]
    /// for a wrong-length slice, or [`GateSimError::ValueTooWide`] if any
    /// lane's value exceeds the port width.
    pub fn poke_port_lanes(&mut self, name: &str, values: &[u64]) -> Result<(), GateSimError> {
        if values.len() != self.lanes {
            return Err(GateSimError::BadLaneCount {
                lanes: values.len(),
            });
        }
        let bits = self
            .tape
            .port_bits
            .get(name)
            .ok_or_else(|| GateSimError::UnknownName {
                kind: "input port",
                name: name.to_owned(),
            })?;
        let width = bits.len() as u32;
        for (lane, &v) in values.iter().enumerate() {
            if width < 64 && v >> width != 0 {
                let _ = lane;
                return Err(GateSimError::ValueTooWide {
                    port: name.to_owned(),
                    value: v,
                    width,
                });
            }
        }
        // Transpose: for each port bit, assemble the lane word.
        for (i, &net) in bits.iter().enumerate() {
            let mut word = 0u64;
            for (lane, &v) in values.iter().enumerate() {
                word |= ((v >> i) & 1) << lane;
            }
            match self.input_index.get(&net) {
                Some(&slot) => self.inputs[slot].1 = word,
                None => {
                    self.input_index.insert(net, self.inputs.len());
                    self.inputs.push((net, word));
                }
            }
        }
        self.dirty = true;
        Ok(())
    }

    /// Drives a word-level input port with the same value on every lane.
    ///
    /// # Errors
    ///
    /// Returns [`GateSimError::UnknownName`] or
    /// [`GateSimError::ValueTooWide`].
    pub fn poke_port_broadcast(&mut self, name: &str, value: u64) -> Result<(), GateSimError> {
        let bits = self
            .tape
            .port_bits
            .get(name)
            .ok_or_else(|| GateSimError::UnknownName {
                kind: "input port",
                name: name.to_owned(),
            })?;
        let width = bits.len() as u32;
        if width < 64 && value >> width != 0 {
            return Err(GateSimError::ValueTooWide {
                port: name.to_owned(),
                value,
                width,
            });
        }
        for (i, &net) in bits.iter().enumerate() {
            let word = if (value >> i) & 1 == 1 { !0u64 } else { 0 };
            match self.input_index.get(&net) {
                Some(&slot) => self.inputs[slot].1 = word,
                None => {
                    self.input_index.insert(net, self.inputs.len());
                    self.inputs.push((net, word));
                }
            }
        }
        self.dirty = true;
        Ok(())
    }

    /// Reads a word-level output port on one lane.
    ///
    /// # Errors
    ///
    /// Returns [`GateSimError::UnknownName`] or
    /// [`GateSimError::LaneOutOfRange`].
    pub fn peek_port_lane(&mut self, name: &str, lane: usize) -> Result<u64, GateSimError> {
        self.check_lane(lane)?;
        self.settle();
        let bits = self
            .tape
            .output_bits
            .get(name)
            .ok_or_else(|| GateSimError::UnknownName {
                kind: "output port",
                name: name.to_owned(),
            })?;
        let mut v = 0u64;
        for (i, &net) in bits.iter().enumerate() {
            v |= ((self.values[net as usize] >> lane) & 1) << i;
        }
        Ok(v)
    }

    /// Reads a word-level output port on every lane into `out`
    /// (`out.len()` must equal [`BatchSim::lanes`]). One name lookup and
    /// one settle serve all lanes — this is the hot-path form the replay
    /// loop uses for output-trace checking.
    ///
    /// # Errors
    ///
    /// Returns [`GateSimError::UnknownName`] or
    /// [`GateSimError::BadLaneCount`] for a wrong-length slice.
    pub fn peek_port_lanes_into(
        &mut self,
        name: &str,
        out: &mut [u64],
    ) -> Result<(), GateSimError> {
        if out.len() != self.lanes {
            return Err(GateSimError::BadLaneCount { lanes: out.len() });
        }
        self.settle();
        let bits = self
            .tape
            .output_bits
            .get(name)
            .ok_or_else(|| GateSimError::UnknownName {
                kind: "output port",
                name: name.to_owned(),
            })?;
        out.fill(0);
        for (i, &net) in bits.iter().enumerate() {
            let word = self.values[net as usize];
            for (lane, slot) in out.iter_mut().enumerate() {
                *slot |= ((word >> lane) & 1) << i;
            }
        }
        Ok(())
    }

    /// Reads a word-level output port on every lane.
    ///
    /// # Errors
    ///
    /// Returns [`GateSimError::UnknownName`].
    pub fn peek_port_lanes(&mut self, name: &str) -> Result<Vec<u64>, GateSimError> {
        let mut out = vec![0u64; self.lanes];
        self.peek_port_lanes_into(name, &mut out)?;
        Ok(out)
    }

    fn settle(&mut self) {
        if !self.dirty {
            return;
        }
        for &(net, word) in &self.inputs {
            self.values[net as usize] = word;
        }
        for step in &self.tape.steps {
            match *step {
                Step::Gate(op) => {
                    let a = self.values[op.in0 as usize];
                    let b = self.values[op.in1 as usize];
                    let v = match op.kind {
                        CellKind::Inv => !a,
                        CellKind::Buf => a,
                        CellKind::Nand2 => !(a & b),
                        CellKind::Nor2 => !(a | b),
                        CellKind::And2 => a & b,
                        CellKind::Or2 => a | b,
                        CellKind::Xor2 => a ^ b,
                        CellKind::Xnor2 => !(a ^ b),
                        CellKind::Mux2 => {
                            let s = self.values[op.in2 as usize];
                            (b & s) | (a & !s)
                        }
                        CellKind::Tie0 => 0,
                        CellKind::Tie1 => !0,
                        CellKind::Dff => unreachable!("DFFs are not tape steps"),
                    };
                    self.values[op.out as usize] = v;
                }
                Step::SramRead { sram, port } => {
                    let si = sram as usize;
                    let s = &self.netlist.srams()[si];
                    let rp = &s.read_ports[port as usize];
                    let depth = s.depth;
                    for lane in 0..self.lanes {
                        let mut addr = 0usize;
                        for (i, a) in rp.addr.iter().enumerate() {
                            addr |= (((self.values[a.index()] >> lane) & 1) as usize) << i;
                        }
                        self.lane_addr[lane] = addr;
                    }
                    let st = &self.srams[si];
                    for (i, d) in rp.data.iter().enumerate() {
                        let mut w = 0u64;
                        for lane in 0..self.lanes {
                            let addr = self.lane_addr[lane];
                            let word = if addr < depth {
                                st.contents[lane * depth + addr]
                            } else {
                                0
                            };
                            w |= ((word >> i) & 1) << lane;
                        }
                        self.values[d.index()] = w;
                    }
                }
            }
        }
        self.dirty = false;
    }

    /// Advances one clock cycle on every lane: settle, count per-lane
    /// toggles, commit lane-wise SRAM accesses, latch flip-flops.
    pub fn step(&mut self) {
        self.settle();

        // Per-lane toggle counting. `diff` has one set bit per toggling
        // lane, so the inner loop costs one counter bump per *toggle*, not
        // per lane — idle lanes are free, exactly like the scalar path.
        if self.settled_once {
            let lanes = self.lanes;
            for net in 0..self.values.len() {
                let mut diff = (self.values[net] ^ self.prev_values[net]) & self.lane_mask;
                while diff != 0 {
                    let lane = diff.trailing_zeros() as usize;
                    self.toggles[net * lanes + lane] += 1;
                    diff &= diff - 1;
                }
            }
        }
        self.prev_values.copy_from_slice(&self.values);
        self.settled_once = true;

        // SRAM access counting and writes, lane by lane.
        for (si, s) in self.netlist.srams().iter().enumerate() {
            let depth = s.depth;
            for (pi, rp) in s.read_ports.iter().enumerate() {
                for lane in 0..self.lanes {
                    let mut addr = 0usize;
                    for (i, a) in rp.addr.iter().enumerate() {
                        addr |= (((self.values[a.index()] >> lane) & 1) as usize) << i;
                    }
                    let slot = pi * self.lanes + lane;
                    if self.srams[si].prev_read_addr[slot] != Some(addr) {
                        self.srams[si].reads[lane] += 1;
                        self.srams[si].prev_read_addr[slot] = Some(addr);
                    }
                }
            }
            for wp in &s.write_ports {
                let mut enabled = self.values[wp.enable.index()] & self.lane_mask;
                while enabled != 0 {
                    let lane = enabled.trailing_zeros() as usize;
                    enabled &= enabled - 1;
                    let mut addr = 0usize;
                    for (i, a) in wp.addr.iter().enumerate() {
                        addr |= (((self.values[a.index()] >> lane) & 1) as usize) << i;
                    }
                    if addr >= depth {
                        continue;
                    }
                    let mut word = 0u64;
                    for (i, d) in wp.data.iter().enumerate() {
                        word |= ((self.values[d.index()] >> lane) & 1) << i;
                    }
                    self.srams[si].contents[lane * depth + addr] = word;
                    self.srams[si].writes[lane] += 1;
                }
            }
        }

        // Latch flip-flops, capture-then-commit, one word per flop.
        for (slot, &(d, _)) in self.dff_scratch.iter_mut().zip(&self.tape.dffs) {
            *slot = self.values[d as usize];
        }
        for (&v, &(_, q)) in self.dff_scratch.iter().zip(&self.tape.dffs) {
            self.values[q as usize] = v;
        }

        self.cycle += 1;
        self.dirty = true;
    }

    /// Advances `n` cycles on every lane.
    pub fn step_n(&mut self, n: u64) {
        for _ in 0..n {
            self.step();
        }
    }

    /// Sets a flip-flop's current value on every lane at once: bit `l` of
    /// `packed` becomes the flop's value in lane `l`. One name lookup
    /// serves the whole batch — the bulk snapshot-load primitive.
    ///
    /// # Errors
    ///
    /// Returns [`GateSimError::UnknownName`] for an unknown instance.
    pub fn set_dff_lanes(&mut self, name: &str, packed: u64) -> Result<(), GateSimError> {
        let &idx = self
            .tape
            .dff_by_name
            .get(name)
            .ok_or_else(|| GateSimError::UnknownName {
                kind: "flip-flop",
                name: name.to_owned(),
            })?;
        let (_, q) = self.tape.dffs[idx];
        let keep = !self.lane_mask;
        let set = packed & self.lane_mask;
        self.values[q as usize] = (self.values[q as usize] & keep) | set;
        self.prev_values[q as usize] = (self.prev_values[q as usize] & keep) | set;
        self.dirty = true;
        Ok(())
    }

    /// Sets a flip-flop's current value on one lane.
    ///
    /// # Errors
    ///
    /// Returns [`GateSimError::UnknownName`] or
    /// [`GateSimError::LaneOutOfRange`].
    pub fn set_dff_lane(
        &mut self,
        name: &str,
        lane: usize,
        value: bool,
    ) -> Result<(), GateSimError> {
        self.check_lane(lane)?;
        let &idx = self
            .tape
            .dff_by_name
            .get(name)
            .ok_or_else(|| GateSimError::UnknownName {
                kind: "flip-flop",
                name: name.to_owned(),
            })?;
        let (_, q) = self.tape.dffs[idx];
        let bit = 1u64 << lane;
        if value {
            self.values[q as usize] |= bit;
            self.prev_values[q as usize] |= bit;
        } else {
            self.values[q as usize] &= !bit;
            self.prev_values[q as usize] &= !bit;
        }
        self.dirty = true;
        Ok(())
    }

    /// Reads a flip-flop's current value on one lane.
    ///
    /// # Errors
    ///
    /// Returns [`GateSimError::UnknownName`] or
    /// [`GateSimError::LaneOutOfRange`].
    pub fn dff_value_lane(&self, name: &str, lane: usize) -> Result<bool, GateSimError> {
        self.check_lane(lane)?;
        let &idx = self
            .tape
            .dff_by_name
            .get(name)
            .ok_or_else(|| GateSimError::UnknownName {
                kind: "flip-flop",
                name: name.to_owned(),
            })?;
        let (_, q) = self.tape.dffs[idx];
        Ok((self.values[q as usize] >> lane) & 1 == 1)
    }

    /// Writes one word of an SRAM macro on every lane at once
    /// (`words[l]` goes to lane `l`; `words.len()` must equal
    /// [`BatchSim::lanes`]).
    ///
    /// # Errors
    ///
    /// Returns [`GateSimError::UnknownName`],
    /// [`GateSimError::BadLaneCount`] for a wrong-length slice, or
    /// [`GateSimError::AddressOutOfRange`].
    pub fn set_sram_word_lanes(
        &mut self,
        name: &str,
        addr: usize,
        words: &[u64],
    ) -> Result<(), GateSimError> {
        if words.len() != self.lanes {
            return Err(GateSimError::BadLaneCount { lanes: words.len() });
        }
        let &idx = self
            .tape
            .sram_by_name
            .get(name)
            .ok_or_else(|| GateSimError::UnknownName {
                kind: "SRAM macro",
                name: name.to_owned(),
            })?;
        let depth = self.netlist.srams()[idx].depth;
        if addr >= depth {
            return Err(GateSimError::AddressOutOfRange {
                sram: name.to_owned(),
                addr,
            });
        }
        for (lane, &w) in words.iter().enumerate() {
            self.srams[idx].contents[lane * depth + addr] = w;
        }
        self.dirty = true;
        Ok(())
    }

    /// Writes one word of an SRAM macro on one lane.
    ///
    /// # Errors
    ///
    /// Returns [`GateSimError::UnknownName`],
    /// [`GateSimError::LaneOutOfRange`] or
    /// [`GateSimError::AddressOutOfRange`].
    pub fn set_sram_word_lane(
        &mut self,
        name: &str,
        lane: usize,
        addr: usize,
        value: u64,
    ) -> Result<(), GateSimError> {
        self.check_lane(lane)?;
        let &idx = self
            .tape
            .sram_by_name
            .get(name)
            .ok_or_else(|| GateSimError::UnknownName {
                kind: "SRAM macro",
                name: name.to_owned(),
            })?;
        let depth = self.netlist.srams()[idx].depth;
        if addr >= depth {
            return Err(GateSimError::AddressOutOfRange {
                sram: name.to_owned(),
                addr,
            });
        }
        self.srams[idx].contents[lane * depth + addr] = value;
        self.dirty = true;
        Ok(())
    }

    /// Reads one word of an SRAM macro on one lane.
    ///
    /// # Errors
    ///
    /// Returns [`GateSimError::UnknownName`],
    /// [`GateSimError::LaneOutOfRange`] or
    /// [`GateSimError::AddressOutOfRange`].
    pub fn sram_word_lane(
        &self,
        name: &str,
        lane: usize,
        addr: usize,
    ) -> Result<u64, GateSimError> {
        self.check_lane(lane)?;
        let &idx = self
            .tape
            .sram_by_name
            .get(name)
            .ok_or_else(|| GateSimError::UnknownName {
                kind: "SRAM macro",
                name: name.to_owned(),
            })?;
        let depth = self.netlist.srams()[idx].depth;
        if addr >= depth {
            return Err(GateSimError::AddressOutOfRange {
                sram: name.to_owned(),
                addr,
            });
        }
        Ok(self.srams[idx].contents[lane * depth + addr])
    }

    /// Clears every lane's activity counters and starts a fresh
    /// measurement window, with the same window-boundary semantics as
    /// [`crate::GateSim::reset_activity`]: each lane's current read
    /// address becomes that port's baseline.
    pub fn reset_activity(&mut self) {
        self.settle();
        self.toggles.iter_mut().for_each(|t| *t = 0);
        for (si, s) in self.netlist.srams().iter().enumerate() {
            self.srams[si].reads.iter_mut().for_each(|r| *r = 0);
            self.srams[si].writes.iter_mut().for_each(|w| *w = 0);
            for (pi, rp) in s.read_ports.iter().enumerate() {
                for lane in 0..self.lanes {
                    let mut addr = 0usize;
                    for (i, a) in rp.addr.iter().enumerate() {
                        addr |= (((self.values[a.index()] >> lane) & 1) as usize) << i;
                    }
                    self.srams[si].prev_read_addr[pi * self.lanes + lane] = Some(addr);
                }
            }
        }
        self.settled_once = false;
        self.cycle = 0;
    }

    /// Produces one lane's activity report, shaped exactly like a
    /// standalone [`crate::GateSim::activity`] report for the same
    /// netlist (so [`strober_power`-style](ActivityReport) analyzers
    /// consume it unchanged).
    ///
    /// # Errors
    ///
    /// Returns [`GateSimError::LaneOutOfRange`].
    pub fn activity_lane(&self, lane: usize) -> Result<ActivityReport, GateSimError> {
        self.check_lane(lane)?;
        let nets = self.tape.net_count;
        let mut toggles = Vec::with_capacity(nets);
        for net in 0..nets {
            toggles.push(self.toggles[net * self.lanes + lane]);
        }
        Ok(ActivityReport::new(
            self.cycle,
            toggles,
            self.srams
                .iter()
                .map(|s| (s.reads[lane], s.writes[lane]))
                .collect(),
        ))
    }

    /// Produces every lane's activity report, in lane order.
    pub fn activities(&self) -> Vec<ActivityReport> {
        (0..self.lanes)
            .map(|l| self.activity_lane(l).expect("lane in range"))
            .collect()
    }
}

/// The word mask with bits `0..lanes` set.
fn mask_for(lanes: usize) -> u64 {
    if lanes >= 64 {
        !0
    } else {
        (1u64 << lanes) - 1
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use strober_dsl::Ctx;
    use strober_rtl::Width;
    use strober_synth::{synthesize, SynthOptions};

    fn w(bits: u32) -> Width {
        Width::new(bits).unwrap()
    }

    fn plain() -> SynthOptions {
        SynthOptions {
            optimize: false,
            mangle: false,
            retime_prefixes: Vec::new(),
        }
    }

    fn counter_netlist() -> strober_gates::Netlist {
        let ctx = Ctx::new("counter");
        let en = ctx.input("en", Width::BIT);
        let count = ctx.reg("count", w(8), 0);
        count.set_en(&count.out().add_lit(1), &en);
        ctx.output("value", &count.out());
        synthesize(&ctx.finish().unwrap(), &plain())
            .unwrap()
            .netlist
    }

    #[test]
    fn lanes_advance_independently() {
        let mut sim = BatchSim::with_lanes(&counter_netlist(), 3).unwrap();
        sim.poke_port_lanes("en", &[1, 0, 1]).unwrap();
        sim.step_n(7);
        assert_eq!(sim.peek_port_lanes("value").unwrap(), vec![7, 0, 7]);
        sim.poke_port_lanes("en", &[0, 1, 1]).unwrap();
        sim.step_n(3);
        assert_eq!(sim.peek_port_lanes("value").unwrap(), vec![7, 3, 10]);
    }

    #[test]
    fn per_lane_activity_is_isolated() {
        let mut sim = BatchSim::with_lanes(&counter_netlist(), 2).unwrap();
        sim.poke_port_lanes("en", &[1, 0]).unwrap();
        sim.step_n(16);
        let busy = sim.activity_lane(0).unwrap();
        let idle = sim.activity_lane(1).unwrap();
        assert_eq!(busy.cycles(), 16);
        assert!(busy.total_toggles() > 16);
        assert_eq!(idle.total_toggles(), 0);
    }

    #[test]
    fn dff_load_per_lane() {
        let mut sim = BatchSim::with_lanes(&counter_netlist(), 2).unwrap();
        for i in 0..8 {
            // Lane 0 gets 0x2A, lane 1 gets 0x15.
            let packed = u64::from((0x2Au32 >> i) & 1) | (u64::from((0x15u32 >> i) & 1) << 1);
            sim.set_dff_lanes(&format!("count_reg_{i}_"), packed)
                .unwrap();
        }
        assert_eq!(sim.peek_port_lane("value", 0).unwrap(), 0x2A);
        assert_eq!(sim.peek_port_lane("value", 1).unwrap(), 0x15);
        assert!(sim.dff_value_lane("count_reg_1_", 0).unwrap());
        assert!(!sim.dff_value_lane("count_reg_1_", 1).unwrap());
        assert!(sim.set_dff_lanes("nope", 0).is_err());
    }

    #[test]
    fn sram_contents_are_per_lane() {
        let ctx = Ctx::new("ram");
        let m = ctx.mem("buf", w(16), 32);
        let addr = ctx.input("addr", w(5));
        let data = ctx.input("data", w(16));
        let we = ctx.input("we", Width::BIT);
        ctx.output("q", &m.read(&addr));
        m.write(&addr, &data, &we);
        let nl = synthesize(&ctx.finish().unwrap(), &plain())
            .unwrap()
            .netlist;
        let mut sim = BatchSim::with_lanes(&nl, 2).unwrap();
        sim.set_sram_word_lanes("buf_macro", 7, &[0xBEEF, 0xCAFE])
            .unwrap();
        assert_eq!(sim.sram_word_lane("buf_macro", 0, 7).unwrap(), 0xBEEF);
        assert_eq!(sim.sram_word_lane("buf_macro", 1, 7).unwrap(), 0xCAFE);
        sim.poke_port_broadcast("addr", 7).unwrap();
        sim.poke_port_broadcast("we", 0).unwrap();
        sim.poke_port_broadcast("data", 0).unwrap();
        assert_eq!(sim.peek_port_lanes("q").unwrap(), vec![0xBEEF, 0xCAFE]);
        // Lane 1 writes a new value at address 3; lane 0 does not.
        sim.poke_port_lanes("addr", &[7, 3]).unwrap();
        sim.poke_port_lanes("we", &[0, 1]).unwrap();
        sim.poke_port_lanes("data", &[0, 0x1234]).unwrap();
        sim.step();
        assert_eq!(sim.sram_word_lane("buf_macro", 0, 3).unwrap(), 0);
        assert_eq!(sim.sram_word_lane("buf_macro", 1, 3).unwrap(), 0x1234);
        let (r0, w0) = sim.activity_lane(0).unwrap().sram_accesses()[0];
        let (r1, w1) = sim.activity_lane(1).unwrap().sram_accesses()[0];
        assert_eq!(w0, 0);
        assert_eq!(w1, 1);
        assert!(r0 >= 1 && r1 >= 1);
    }

    #[test]
    fn lane_bounds_are_checked() {
        let nl = counter_netlist();
        assert!(matches!(
            BatchSim::with_lanes(&nl, 0),
            Err(GateSimError::BadLaneCount { lanes: 0 })
        ));
        assert!(matches!(
            BatchSim::with_lanes(&nl, 65),
            Err(GateSimError::BadLaneCount { lanes: 65 })
        ));
        let mut sim = BatchSim::with_lanes(&nl, 4).unwrap();
        assert!(matches!(
            sim.peek_port_lane("value", 4),
            Err(GateSimError::LaneOutOfRange { lane: 4, lanes: 4 })
        ));
        assert!(sim.poke_port_lanes("en", &[0, 1]).is_err());
        assert!(matches!(
            sim.poke_port_lanes("en", &[2, 0, 0, 0]),
            Err(GateSimError::ValueTooWide { .. })
        ));
    }

    #[test]
    fn full_64_lane_masking_is_sound() {
        let mut sim = BatchSim::new(&counter_netlist()).unwrap();
        assert_eq!(sim.lanes(), 64);
        let mut enables = [0u64; 64];
        enables[63] = 1;
        sim.poke_port_lanes("en", &enables).unwrap();
        sim.step_n(5);
        assert_eq!(sim.peek_port_lane("value", 63).unwrap(), 5);
        assert_eq!(sim.peek_port_lane("value", 0).unwrap(), 0);
        assert!(sim.activity_lane(63).unwrap().total_toggles() > 0);
        assert_eq!(sim.activity_lane(0).unwrap().total_toggles(), 0);
    }
}

//! Netlist compilation into a flat, levelized op tape.
//!
//! Both gate-level engines — the scalar [`crate::GateSim`] and the packed
//! [`crate::BatchSim`] — execute the same compiled program: a single flat
//! array of [`Step`]s in topological order, produced once per netlist by
//! [`Tape::compile`]. Each step is either a combinational gate (inputs and
//! output pre-resolved to raw net indices, no name lookups on the hot
//! path) or an SRAM read port. Flip-flops and write ports are not on the
//! tape; they act at the clock edge, outside combinational settling.
//!
//! Compiling once and interpreting the same instruction stream for every
//! replay is what makes bit-parallel batching work: the tape is identical
//! for all samples, only the word-sized value vector differs (see
//! `DESIGN.md` §9).

use crate::sim::GateSimError;
use std::collections::HashMap;
use strober_gates::{CellKind, Gate, NetId, Netlist};

/// One compiled combinational gate. Unused input slots alias net 0; the
/// evaluation match never reads them for the affected kinds.
#[derive(Debug, Clone, Copy)]
pub(crate) struct GateOp {
    /// The cell function.
    pub kind: CellKind,
    /// First input net index (`a0` for Mux2).
    pub in0: u32,
    /// Second input net index (`a1` for Mux2).
    pub in1: u32,
    /// Third input net index (`s` for Mux2).
    pub in2: u32,
    /// Output net index.
    pub out: u32,
}

/// One tape instruction, in levelized order.
#[derive(Debug, Clone, Copy)]
pub(crate) enum Step {
    /// Evaluate a combinational gate.
    Gate(GateOp),
    /// Evaluate SRAM `sram`'s read port `port` (combinational read).
    SramRead {
        /// Index into [`Netlist::srams`].
        sram: u32,
        /// Index into that macro's `read_ports`.
        port: u32,
    },
}

/// The compiled program plus the name-resolution side tables every engine
/// needs: sequential elements, port bit groupings, and lookup maps.
#[derive(Debug, Clone)]
pub struct Tape {
    /// Combinational steps in topological (levelized) order.
    pub(crate) steps: Vec<Step>,
    /// `(d net, q net)` per flip-flop, in gate order.
    pub(crate) dffs: Vec<(u32, u32)>,
    /// Reset value per flip-flop, aligned with `dffs`.
    pub(crate) dff_inits: Vec<bool>,
    /// Flip-flop instance name → index into `dffs`.
    pub(crate) dff_by_name: HashMap<String, usize>,
    /// SRAM macro instance name → index into [`Netlist::srams`].
    pub(crate) sram_by_name: HashMap<String, usize>,
    /// Input port name → bit nets, LSB first.
    pub(crate) port_bits: HashMap<String, Vec<u32>>,
    /// Output port name → bit nets, LSB first.
    pub(crate) output_bits: HashMap<String, Vec<u32>>,
    /// Number of nets in the netlist (the value vector length).
    pub(crate) net_count: usize,
}

impl Tape {
    /// Validates, levelizes and flattens `netlist` into a tape.
    ///
    /// # Errors
    ///
    /// Returns [`GateSimError::BadNetlist`] if the netlist fails
    /// validation or contains a combinational loop.
    pub fn compile(netlist: &Netlist) -> Result<Self, GateSimError> {
        netlist.validate()?;
        let order = netlist.levelize()?;
        let gates = netlist.gates();
        let n_gates = gates.len();

        // Element indices past the gates address SRAM read ports in
        // declaration order; precompute the (sram, port) pair per element.
        let mut sram_ports = Vec::new();
        for (si, s) in netlist.srams().iter().enumerate() {
            for pi in 0..s.read_ports.len() {
                sram_ports.push((si as u32, pi as u32));
            }
        }

        let mut dffs = Vec::new();
        let mut dff_inits = Vec::new();
        let mut dff_by_name = HashMap::new();
        for g in gates {
            if let Gate::Dff {
                name, d, q, init, ..
            } = g
            {
                dff_by_name.insert(name.clone(), dffs.len());
                dffs.push((d.index() as u32, q.index() as u32));
                dff_inits.push(*init);
            }
        }

        let mut steps = Vec::with_capacity(order.len());
        for elem in order {
            if elem < n_gates {
                let Gate::Comb {
                    kind,
                    inputs,
                    output,
                    ..
                } = &gates[elem]
                else {
                    continue; // DFFs are clock-edge elements, not tape steps.
                };
                let pin = |i: usize| inputs.get(i).map_or(0, |n| n.index() as u32);
                steps.push(Step::Gate(GateOp {
                    kind: *kind,
                    in0: pin(0),
                    in1: pin(1),
                    in2: pin(2),
                    out: output.index() as u32,
                }));
            } else {
                let (sram, port) = sram_ports[elem - n_gates];
                steps.push(Step::SramRead { sram, port });
            }
        }

        let sram_by_name = netlist
            .srams()
            .iter()
            .enumerate()
            .map(|(i, s)| (s.name.clone(), i))
            .collect();

        Ok(Tape {
            steps,
            dffs,
            dff_inits,
            dff_by_name,
            sram_by_name,
            port_bits: group_bits(netlist.inputs()),
            output_bits: group_bits(netlist.outputs()),
            net_count: netlist.net_count(),
        })
    }
}

/// Groups `name[i]` bit names back into word ports.
pub(crate) fn group_bits(bits: &[(String, NetId)]) -> HashMap<String, Vec<u32>> {
    let mut map: HashMap<String, Vec<(u32, u32)>> = HashMap::new();
    for (name, net) in bits {
        if let Some(open) = name.rfind('[') {
            if let Some(stripped) = name[open + 1..].strip_suffix(']') {
                if let Ok(idx) = stripped.parse::<u32>() {
                    map.entry(name[..open].to_owned())
                        .or_default()
                        .push((idx, net.index() as u32));
                    continue;
                }
            }
        }
        map.entry(name.clone())
            .or_default()
            .push((0, net.index() as u32));
    }
    map.into_iter()
        .map(|(k, mut v)| {
            v.sort_unstable_by_key(|&(i, _)| i);
            (k, v.into_iter().map(|(_, n)| n).collect())
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use strober_gates::{CellKind, Netlist, SramMacro, SramReadPort};

    #[test]
    fn tape_orders_sram_reads_before_their_users() {
        let mut nl = Netlist::new("s");
        let a0 = nl.add_net("a0");
        nl.add_input("a0", a0);
        let d0 = nl.add_net("d0");
        let inv = nl.add_net("inv");
        nl.add_sram(SramMacro {
            name: "ram".to_owned(),
            width: 1,
            depth: 2,
            init: vec![],
            read_ports: vec![SramReadPort {
                addr: vec![a0],
                data: vec![d0],
            }],
            write_ports: vec![],
            region: 0,
        });
        nl.add_gate(CellKind::Inv, vec![d0], inv, 0);
        nl.add_output("o", inv);
        let tape = Tape::compile(&nl).unwrap();
        assert_eq!(tape.steps.len(), 2);
        assert!(matches!(tape.steps[0], Step::SramRead { sram: 0, port: 0 }));
        assert!(matches!(tape.steps[1], Step::Gate(_)));
        assert_eq!(tape.net_count, 3);
    }

    #[test]
    fn dffs_become_sequential_slots_not_steps() {
        let mut nl = Netlist::new("t");
        let q = nl.add_net("q");
        let d = nl.add_net("d");
        nl.add_gate(CellKind::Inv, vec![q], d, 0);
        nl.add_dff("toggle_reg", d, q, true, 0);
        nl.add_output("q", q);
        let tape = Tape::compile(&nl).unwrap();
        assert_eq!(tape.steps.len(), 1);
        assert_eq!(tape.dffs, vec![(d.index() as u32, q.index() as u32)]);
        assert_eq!(tape.dff_inits, vec![true]);
        assert_eq!(tape.dff_by_name["toggle_reg"], 0);
    }
}

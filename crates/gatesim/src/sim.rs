//! The levelized gate-level simulator.

use crate::activity::ActivityReport;
use crate::compile::{Step, Tape};
use std::collections::HashMap;
use std::error::Error;
use std::fmt;
use strober_gates::{CellKind, Netlist, NetlistError};

/// Errors produced by the gate-level simulators.
#[derive(Debug, Clone, PartialEq, Eq)]
#[non_exhaustive]
pub enum GateSimError {
    /// The netlist failed validation.
    BadNetlist(NetlistError),
    /// A named port, flip-flop or macro does not exist.
    UnknownName {
        /// What kind of thing was looked up.
        kind: &'static str,
        /// The name that was not found.
        name: String,
    },
    /// A poked value does not fit the port's bit count.
    ValueTooWide {
        /// The port name.
        port: String,
        /// The value poked.
        value: u64,
        /// The port's width in bits.
        width: u32,
    },
    /// An address was out of range for a macro.
    AddressOutOfRange {
        /// The macro name.
        sram: String,
        /// The offending address.
        addr: usize,
    },
    /// A batch simulator was asked for an unsupported lane count.
    BadLaneCount {
        /// The requested lane count (must be 1..=64).
        lanes: usize,
    },
    /// A lane index addressed past the batch's active lanes.
    LaneOutOfRange {
        /// The offending lane index.
        lane: usize,
        /// The number of active lanes.
        lanes: usize,
    },
}

impl fmt::Display for GateSimError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            GateSimError::BadNetlist(e) => write!(f, "bad netlist: {e}"),
            GateSimError::UnknownName { kind, name } => write!(f, "unknown {kind} `{name}`"),
            GateSimError::ValueTooWide { port, value, width } => {
                write!(f, "value {value:#x} too wide for {width}-bit port `{port}`")
            }
            GateSimError::AddressOutOfRange { sram, addr } => {
                write!(f, "address {addr} out of range for macro `{sram}`")
            }
            GateSimError::BadLaneCount { lanes } => {
                write!(f, "batch lane count {lanes} not in 1..=64")
            }
            GateSimError::LaneOutOfRange { lane, lanes } => {
                write!(f, "lane {lane} out of range for a {lanes}-lane batch")
            }
        }
    }
}

impl Error for GateSimError {
    fn source(&self) -> Option<&(dyn Error + 'static)> {
        match self {
            GateSimError::BadNetlist(e) => Some(e),
            _ => None,
        }
    }
}

impl From<NetlistError> for GateSimError {
    fn from(e: NetlistError) -> Self {
        GateSimError::BadNetlist(e)
    }
}

#[derive(Debug, Clone)]
struct SramState {
    contents: Vec<u64>,
    /// Previous cycle's read addresses, for access counting.
    prev_read_addr: Vec<Option<usize>>,
    reads: u64,
    writes: u64,
}

/// The levelized zero-delay gate-level simulator.
///
/// Construction compiles the netlist once into a flat op tape (the
/// `compile` module, `DESIGN.md` §9); every cycle then interprets it over one
/// `bool` per net. For replaying many independent samples at once, prefer
/// [`crate::BatchSim`], which interprets the same tape over one 64-lane
/// word per net.
///
/// See the [crate documentation](crate) for an example.
#[derive(Debug, Clone)]
pub struct GateSim {
    netlist: Netlist,
    tape: std::sync::Arc<Tape>,
    values: Vec<bool>,
    prev_values: Vec<bool>,
    toggles: Vec<u64>,
    /// Clock-edge scratch for DFF next-state values; reused every cycle so
    /// [`GateSim::step`] allocates nothing.
    dff_scratch: Vec<bool>,
    srams: Vec<SramState>,
    inputs: Vec<(u32, bool)>,
    input_index: HashMap<u32, usize>,
    cycle: u64,
    dirty: bool,
    settled_once: bool,
}

impl GateSim {
    /// Compiles a netlist for simulation.
    ///
    /// # Errors
    ///
    /// Returns [`GateSimError::BadNetlist`] if the netlist fails
    /// validation.
    pub fn new(netlist: &Netlist) -> Result<Self, GateSimError> {
        let _span = strober_probe::span("strober.gatesim.compile");
        let tape = std::sync::Arc::new(Tape::compile(netlist)?);
        Ok(Self::with_tape(tape, netlist))
    }

    /// Builds a simulator from a tape compiled earlier with
    /// [`Tape::compile`], skipping compilation entirely. The tape **must**
    /// have been compiled from this exact `netlist`; a session that caches
    /// the tape keyed by the design fingerprint (as the estimation server
    /// does) satisfies this by construction.
    pub fn with_tape(tape: std::sync::Arc<Tape>, netlist: &Netlist) -> Self {
        let mut srams = Vec::new();
        for s in netlist.srams() {
            let mut contents = s.init.clone();
            contents.resize(s.depth, 0);
            srams.push(SramState {
                contents,
                prev_read_addr: vec![None; s.read_ports.len()],
                reads: 0,
                writes: 0,
            });
        }

        let mut values = vec![false; tape.net_count];
        // Initialise DFF outputs to their reset values.
        for (&(_, q), &init) in tape.dffs.iter().zip(&tape.dff_inits) {
            values[q as usize] = init;
        }

        GateSim {
            prev_values: values.clone(),
            toggles: vec![0; tape.net_count],
            values,
            dff_scratch: vec![false; tape.dffs.len()],
            tape,
            srams,
            inputs: Vec::new(),
            input_index: HashMap::new(),
            cycle: 0,
            dirty: true,
            settled_once: false,
            netlist: netlist.clone(),
        }
    }

    /// The netlist being simulated.
    pub fn netlist(&self) -> &Netlist {
        &self.netlist
    }

    /// The current cycle count.
    pub fn cycle(&self) -> u64 {
        self.cycle
    }

    /// Drives a word-level input port (bits `name[i]`).
    ///
    /// # Errors
    ///
    /// Returns [`GateSimError::UnknownName`] or
    /// [`GateSimError::ValueTooWide`].
    pub fn poke_port(&mut self, name: &str, value: u64) -> Result<(), GateSimError> {
        let bits = self
            .tape
            .port_bits
            .get(name)
            .ok_or_else(|| GateSimError::UnknownName {
                kind: "input port",
                name: name.to_owned(),
            })?;
        let width = bits.len() as u32;
        if width < 64 && value >> width != 0 {
            return Err(GateSimError::ValueTooWide {
                port: name.to_owned(),
                value,
                width,
            });
        }
        for (i, &net) in bits.iter().enumerate() {
            let bit = (value >> i) & 1 == 1;
            match self.input_index.get(&net) {
                Some(&slot) => self.inputs[slot].1 = bit,
                None => {
                    self.input_index.insert(net, self.inputs.len());
                    self.inputs.push((net, bit));
                }
            }
        }
        self.dirty = true;
        Ok(())
    }

    /// Reads a word-level output port.
    ///
    /// # Errors
    ///
    /// Returns [`GateSimError::UnknownName`] for an unknown output.
    pub fn peek_port(&mut self, name: &str) -> Result<u64, GateSimError> {
        self.settle();
        let bits = self
            .tape
            .output_bits
            .get(name)
            .ok_or_else(|| GateSimError::UnknownName {
                kind: "output port",
                name: name.to_owned(),
            })?;
        let mut v = 0u64;
        for (i, &net) in bits.iter().enumerate() {
            if self.values[net as usize] {
                v |= 1 << i;
            }
        }
        Ok(v)
    }

    fn settle(&mut self) {
        if !self.dirty {
            return;
        }
        for &(net, bit) in &self.inputs {
            self.values[net as usize] = bit;
        }
        for step in &self.tape.steps {
            match *step {
                Step::Gate(op) => {
                    let v = match op.kind {
                        CellKind::Inv => !self.values[op.in0 as usize],
                        CellKind::Buf => self.values[op.in0 as usize],
                        CellKind::Nand2 => {
                            !(self.values[op.in0 as usize] && self.values[op.in1 as usize])
                        }
                        CellKind::Nor2 => {
                            !(self.values[op.in0 as usize] || self.values[op.in1 as usize])
                        }
                        CellKind::And2 => {
                            self.values[op.in0 as usize] && self.values[op.in1 as usize]
                        }
                        CellKind::Or2 => {
                            self.values[op.in0 as usize] || self.values[op.in1 as usize]
                        }
                        CellKind::Xor2 => {
                            self.values[op.in0 as usize] ^ self.values[op.in1 as usize]
                        }
                        CellKind::Xnor2 => {
                            !(self.values[op.in0 as usize] ^ self.values[op.in1 as usize])
                        }
                        CellKind::Mux2 => {
                            if self.values[op.in2 as usize] {
                                self.values[op.in1 as usize]
                            } else {
                                self.values[op.in0 as usize]
                            }
                        }
                        CellKind::Tie0 => false,
                        CellKind::Tie1 => true,
                        CellKind::Dff => unreachable!("DFFs are not tape steps"),
                    };
                    self.values[op.out as usize] = v;
                }
                Step::SramRead { sram, port } => {
                    let si = sram as usize;
                    let rp = &self.netlist.srams()[si].read_ports[port as usize];
                    let mut addr = 0usize;
                    for (i, a) in rp.addr.iter().enumerate() {
                        if self.values[a.index()] {
                            addr |= 1 << i;
                        }
                    }
                    let word = self.srams[si].contents.get(addr).copied().unwrap_or(0);
                    for (i, d) in rp.data.iter().enumerate() {
                        self.values[d.index()] = (word >> i) & 1 == 1;
                    }
                }
            }
        }
        self.dirty = false;
    }

    /// Advances one clock cycle: settle, count toggles against the previous
    /// settled state, latch flip-flops, commit SRAM writes, count SRAM
    /// accesses.
    pub fn step(&mut self) {
        self.settle();

        // Toggle counting: transitions between consecutive settled cycles
        // (zero-delay semantics; glitches are not modelled, as with a
        // cycle-based SAIF flow).
        if self.settled_once {
            for i in 0..self.values.len() {
                if self.values[i] != self.prev_values[i] {
                    self.toggles[i] += 1;
                }
            }
        }
        self.prev_values.copy_from_slice(&self.values);
        self.settled_once = true;

        // SRAM access counting and writes.
        for (si, s) in self.netlist.srams().iter().enumerate() {
            for (pi, rp) in s.read_ports.iter().enumerate() {
                let mut addr = 0usize;
                for (i, a) in rp.addr.iter().enumerate() {
                    if self.values[a.index()] {
                        addr |= 1 << i;
                    }
                }
                // A read access is charged when the port visits a new
                // address; a quiescent port holding one line costs leakage
                // only.
                if self.srams[si].prev_read_addr[pi] != Some(addr) {
                    self.srams[si].reads += 1;
                    self.srams[si].prev_read_addr[pi] = Some(addr);
                }
            }
            for wp in &s.write_ports {
                if self.values[wp.enable.index()] {
                    let mut addr = 0usize;
                    for (i, a) in wp.addr.iter().enumerate() {
                        if self.values[a.index()] {
                            addr |= 1 << i;
                        }
                    }
                    let mut word = 0u64;
                    for (i, d) in wp.data.iter().enumerate() {
                        if self.values[d.index()] {
                            word |= 1 << i;
                        }
                    }
                    if let Some(slot) = self.srams[si].contents.get_mut(addr) {
                        *slot = word;
                        self.srams[si].writes += 1;
                    }
                }
            }
        }

        // Latch flip-flops: capture every D into the reusable scratch
        // buffer first, then commit, so a flop feeding another flop's D
        // input transfers its pre-edge value (two-phase clock-edge
        // semantics, no per-cycle allocation).
        for (slot, &(d, _)) in self.dff_scratch.iter_mut().zip(&self.tape.dffs) {
            *slot = self.values[d as usize];
        }
        for (&v, &(_, q)) in self.dff_scratch.iter().zip(&self.tape.dffs) {
            self.values[q as usize] = v;
        }

        self.cycle += 1;
        self.dirty = true;
    }

    /// Advances `n` cycles.
    pub fn step_n(&mut self, n: u64) {
        for _ in 0..n {
            self.step();
        }
    }

    /// Sets a flip-flop's current value by instance name (the snapshot
    /// loading primitive; see [`crate::VpiLoader`]).
    ///
    /// # Errors
    ///
    /// Returns [`GateSimError::UnknownName`] for an unknown instance.
    pub fn set_dff(&mut self, name: &str, value: bool) -> Result<(), GateSimError> {
        let &idx = self
            .tape
            .dff_by_name
            .get(name)
            .ok_or_else(|| GateSimError::UnknownName {
                kind: "flip-flop",
                name: name.to_owned(),
            })?;
        let (_, q) = self.tape.dffs[idx];
        self.values[q as usize] = value;
        self.prev_values[q as usize] = value;
        self.dirty = true;
        Ok(())
    }

    /// Reads a flip-flop's current value by instance name.
    ///
    /// # Errors
    ///
    /// Returns [`GateSimError::UnknownName`] for an unknown instance.
    pub fn dff_value(&self, name: &str) -> Result<bool, GateSimError> {
        let &idx = self
            .tape
            .dff_by_name
            .get(name)
            .ok_or_else(|| GateSimError::UnknownName {
                kind: "flip-flop",
                name: name.to_owned(),
            })?;
        let (_, q) = self.tape.dffs[idx];
        Ok(self.values[q as usize])
    }

    /// Writes one word of an SRAM macro by instance name.
    ///
    /// # Errors
    ///
    /// Returns [`GateSimError::UnknownName`] or
    /// [`GateSimError::AddressOutOfRange`].
    pub fn set_sram_word(
        &mut self,
        name: &str,
        addr: usize,
        value: u64,
    ) -> Result<(), GateSimError> {
        let &idx = self
            .tape
            .sram_by_name
            .get(name)
            .ok_or_else(|| GateSimError::UnknownName {
                kind: "SRAM macro",
                name: name.to_owned(),
            })?;
        let s = &mut self.srams[idx];
        let slot = s
            .contents
            .get_mut(addr)
            .ok_or_else(|| GateSimError::AddressOutOfRange {
                sram: name.to_owned(),
                addr,
            })?;
        *slot = value;
        self.dirty = true;
        Ok(())
    }

    /// Reads one word of an SRAM macro by instance name.
    ///
    /// # Errors
    ///
    /// Returns [`GateSimError::UnknownName`] or
    /// [`GateSimError::AddressOutOfRange`].
    pub fn sram_word(&self, name: &str, addr: usize) -> Result<u64, GateSimError> {
        let &idx = self
            .tape
            .sram_by_name
            .get(name)
            .ok_or_else(|| GateSimError::UnknownName {
                kind: "SRAM macro",
                name: name.to_owned(),
            })?;
        self.srams[idx]
            .contents
            .get(addr)
            .copied()
            .ok_or_else(|| GateSimError::AddressOutOfRange {
                sram: name.to_owned(),
                addr,
            })
    }

    /// Clears activity counters and starts a fresh measurement window.
    ///
    /// The current combinational state becomes the window's baseline: SRAM
    /// read ports holding their current address are not charged a new
    /// access, avoiding a per-window boundary bias during snapshot replay.
    pub fn reset_activity(&mut self) {
        self.settle();
        self.toggles.iter_mut().for_each(|t| *t = 0);
        for (si, s) in self.netlist.srams().iter().enumerate() {
            self.srams[si].reads = 0;
            self.srams[si].writes = 0;
            for (pi, rp) in s.read_ports.iter().enumerate() {
                let mut addr = 0usize;
                for (i, a) in rp.addr.iter().enumerate() {
                    if self.values[a.index()] {
                        addr |= 1 << i;
                    }
                }
                self.srams[si].prev_read_addr[pi] = Some(addr);
            }
        }
        self.settled_once = false;
        self.cycle = 0;
    }

    /// Produces the activity report (SAIF analog) for the cycles simulated
    /// since construction or the last [`GateSim::reset_activity`].
    pub fn activity(&self) -> ActivityReport {
        ActivityReport::new(
            self.cycle,
            self.toggles.clone(),
            self.srams.iter().map(|s| (s.reads, s.writes)).collect(),
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use strober_dsl::Ctx;
    use strober_rtl::Width;
    use strober_synth::{synthesize, SynthOptions};

    fn w(bits: u32) -> Width {
        Width::new(bits).unwrap()
    }

    fn plain() -> SynthOptions {
        SynthOptions {
            optimize: false,
            mangle: false,
            retime_prefixes: Vec::new(),
        }
    }

    fn counter_netlist() -> strober_gates::Netlist {
        let ctx = Ctx::new("counter");
        let en = ctx.input("en", Width::BIT);
        let count = ctx.reg("count", w(8), 0);
        count.set_en(&count.out().add_lit(1), &en);
        ctx.output("value", &count.out());
        let design = ctx.finish().unwrap();
        synthesize(&design, &plain()).unwrap().netlist
    }

    #[test]
    fn gate_level_counter_counts() {
        let mut sim = GateSim::new(&counter_netlist()).unwrap();
        sim.poke_port("en", 1).unwrap();
        sim.step_n(10);
        assert_eq!(sim.peek_port("value").unwrap(), 10);
        sim.poke_port("en", 0).unwrap();
        sim.step_n(5);
        assert_eq!(sim.peek_port("value").unwrap(), 10);
    }

    #[test]
    fn toggle_counting_reflects_activity() {
        let mut sim = GateSim::new(&counter_netlist()).unwrap();
        sim.poke_port("en", 1).unwrap();
        sim.step_n(16);
        let act = sim.activity();
        assert_eq!(act.cycles(), 16);
        // Bit 0 of the counter toggles every cycle; total toggles must be
        // substantial.
        assert!(act.total_toggles() > 16);
    }

    #[test]
    fn idle_circuit_has_no_toggles() {
        let mut sim = GateSim::new(&counter_netlist()).unwrap();
        sim.poke_port("en", 0).unwrap();
        sim.step_n(16);
        assert_eq!(sim.activity().total_toggles(), 0);
    }

    #[test]
    fn dff_poke_by_name() {
        let mut sim = GateSim::new(&counter_netlist()).unwrap();
        // Load 0x2A into the counter via its DFF instances.
        for i in 0..8 {
            sim.set_dff(&format!("count_reg_{i}_"), (0x2A >> i) & 1 == 1)
                .unwrap();
        }
        assert_eq!(sim.peek_port("value").unwrap(), 0x2A);
        assert!(sim.dff_value("count_reg_1_").unwrap());
        assert!(sim.set_dff("nope", true).is_err());
    }

    #[test]
    fn dff_chain_latches_pre_edge_values() {
        // A flop feeding another flop's D input: on a clock edge the
        // second stage must capture the first stage's *pre-edge* value,
        // whatever order the netlist lists the flops in. Regression test
        // for the two-phase (capture-then-commit) latch in `step`.
        let ctx = Ctx::new("shift");
        let x = ctx.input("x", Width::BIT);
        let s1 = ctx.reg("s1", Width::BIT, 0);
        let s2 = ctx.reg("s2", Width::BIT, 0);
        s1.set(&x);
        s2.set(&s1.out());
        ctx.output("y", &s2.out());
        let nl = synthesize(&ctx.finish().unwrap(), &plain())
            .unwrap()
            .netlist;
        let mut sim = GateSim::new(&nl).unwrap();
        let pattern = [1u64, 0, 0, 1, 1, 0, 1, 0];
        let mut seen = Vec::new();
        for &bit in &pattern {
            sim.poke_port("x", bit).unwrap();
            sim.step();
            seen.push(sim.peek_port("y").unwrap());
        }
        // Reading y after step k must show pattern[k-2]: the first edge
        // moves pattern[0] only into s1, so y still shows the reset value;
        // the second edge moves it to s2. A commit that lets s2 see s1's
        // *post-edge* value would collapse the chain to a one-cycle delay
        // ([1, 0, 0, 1, ...] here).
        assert_eq!(seen, vec![0, 1, 0, 0, 1, 1, 0, 1]);
    }

    #[test]
    fn sram_load_and_read() {
        let ctx = Ctx::new("ram");
        let m = ctx.mem("buf", w(16), 32);
        let addr = ctx.input("addr", w(5));
        ctx.output("q", &m.read(&addr));
        let design = ctx.finish().unwrap();
        let nl = synthesize(&design, &plain()).unwrap().netlist;
        let mut sim = GateSim::new(&nl).unwrap();
        sim.set_sram_word("buf_macro", 7, 0xBEEF).unwrap();
        assert_eq!(sim.sram_word("buf_macro", 7).unwrap(), 0xBEEF);
        sim.poke_port("addr", 7).unwrap();
        assert_eq!(sim.peek_port("q").unwrap(), 0xBEEF);
        assert!(sim.set_sram_word("buf_macro", 99, 0).is_err());
        assert!(sim.sram_word("nope", 0).is_err());
    }

    #[test]
    fn sram_access_counting() {
        let ctx = Ctx::new("ram");
        let m = ctx.mem("buf", w(16), 32);
        let addr = ctx.input("addr", w(5));
        ctx.output("q", &m.read(&addr));
        let design = ctx.finish().unwrap();
        let nl = synthesize(&design, &plain()).unwrap().netlist;
        let mut sim = GateSim::new(&nl).unwrap();
        // Sweeping addresses charges a read per new address.
        for a in 0..8 {
            sim.poke_port("addr", a).unwrap();
            sim.step();
        }
        let sweeping = sim.activity().sram_accesses()[0].0;
        sim.reset_activity();
        // Holding one address is a single access then quiescent.
        sim.poke_port("addr", 3).unwrap();
        sim.step_n(8);
        let holding = sim.activity().sram_accesses()[0].0;
        assert!(sweeping >= 8);
        assert!(holding <= 1);
    }

    #[test]
    fn value_too_wide_rejected() {
        let mut sim = GateSim::new(&counter_netlist()).unwrap();
        assert!(matches!(
            sim.poke_port("en", 2),
            Err(GateSimError::ValueTooWide { .. })
        ));
        assert!(sim.poke_port("nope", 0).is_err());
        assert!(sim.peek_port("nope").is_err());
    }
}

//! The activity report — our switching activity interchange format (SAIF).

/// Per-net toggle counts and per-macro access counts over a measurement
/// window, as a power analysis tool consumes them.
///
/// The paper's flow writes SAIF files from gate-level simulation and feeds
/// them to PrimeTime PX (§IV-C); this struct is that file. Because each
/// snapshot replay is a fixed number of cycles and SAIF stores aggregate
/// activity, "the power analysis time is independent of the length of each
/// sample snapshot" (§IV-E) — the same property holds here.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ActivityReport {
    cycles: u64,
    toggles: Vec<u64>,
    sram_accesses: Vec<(u64, u64)>,
}

impl ActivityReport {
    /// Assembles a report.
    pub fn new(cycles: u64, toggles: Vec<u64>, sram_accesses: Vec<(u64, u64)>) -> Self {
        ActivityReport {
            cycles,
            toggles,
            sram_accesses,
        }
    }

    /// The number of cycles in the measurement window.
    pub fn cycles(&self) -> u64 {
        self.cycles
    }

    /// Toggle count per net, indexed by net id.
    pub fn toggles(&self) -> &[u64] {
        &self.toggles
    }

    /// Total toggles over all nets.
    pub fn total_toggles(&self) -> u64 {
        self.toggles.iter().sum()
    }

    /// `(reads, writes)` per SRAM macro, in netlist declaration order.
    pub fn sram_accesses(&self) -> &[(u64, u64)] {
        &self.sram_accesses
    }

    /// Average toggle rate (toggles per net per cycle), a quick activity
    /// factor summary.
    pub fn activity_factor(&self) -> f64 {
        if self.cycles == 0 || self.toggles.is_empty() {
            return 0.0;
        }
        self.total_toggles() as f64 / (self.cycles as f64 * self.toggles.len() as f64)
    }

    /// Merges another window into this one (used when aggregating replay
    /// segments).
    ///
    /// # Panics
    ///
    /// Panics if the two reports have different shapes (different
    /// netlists).
    pub fn merge(&mut self, other: &ActivityReport) {
        assert_eq!(self.toggles.len(), other.toggles.len(), "netlist mismatch");
        assert_eq!(
            self.sram_accesses.len(),
            other.sram_accesses.len(),
            "netlist mismatch"
        );
        self.cycles += other.cycles;
        for (t, o) in self.toggles.iter_mut().zip(&other.toggles) {
            *t += o;
        }
        for (s, o) in self.sram_accesses.iter_mut().zip(&other.sram_accesses) {
            s.0 += o.0;
            s.1 += o.1;
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn merge_accumulates() {
        let mut a = ActivityReport::new(10, vec![1, 2, 3], vec![(4, 5)]);
        let b = ActivityReport::new(5, vec![10, 0, 1], vec![(1, 1)]);
        a.merge(&b);
        assert_eq!(a.cycles(), 15);
        assert_eq!(a.toggles(), &[11, 2, 4]);
        assert_eq!(a.sram_accesses(), &[(5, 6)]);
        assert_eq!(a.total_toggles(), 17);
    }

    #[test]
    fn activity_factor_bounds() {
        let a = ActivityReport::new(10, vec![10, 0], vec![]);
        assert!((a.activity_factor() - 0.5).abs() < 1e-12);
        let empty = ActivityReport::new(0, vec![], vec![]);
        assert_eq!(empty.activity_factor(), 0.0);
    }

    #[test]
    #[should_panic(expected = "netlist mismatch")]
    fn merge_rejects_shape_mismatch() {
        let mut a = ActivityReport::new(1, vec![0], vec![]);
        let b = ActivityReport::new(1, vec![0, 0], vec![]);
        a.merge(&b);
    }
}

//! Gate-level simulation with signal-activity collection.
//!
//! This crate plays the role of the commercial Verilog simulator (VCS) in
//! the Strober replay flow (Fig. 5 of the paper): it simulates a
//! [`strober_gates::Netlist`] cycle by cycle with zero-delay levelized
//! evaluation, counting every net's toggles. The resulting
//! [`ActivityReport`] is the SAIF file of our flow — `strober-power`
//! consumes it together with the cell library to produce average power.
//!
//! Two state-loading interfaces reproduce the §IV-C2 finding that snapshot
//! loading dominates replay time unless done through a programmatic
//! interface:
//!
//! * [`ScriptLoader`] — models a simulator driven by one console command
//!   per register bit (~400 commands/second in the paper).
//! * [`VpiLoader`] — models the custom VPI bulk loader (~20 000
//!   commands/second), 50× faster.
//!
//! Both load identical state; they differ only in the modelled wall-clock
//! cost, which the replay performance model uses.
//!
//! Two evaluation engines share one compiled program (the levelized op
//! tape, see `DESIGN.md` §9):
//!
//! * [`GateSim`] — scalar reference engine, one replay at a time.
//! * [`BatchSim`] — bit-parallel engine packing up to 64 independent
//!   replays into the bit-lanes of a `u64` per net, with lane-wise SRAM
//!   state and per-lane activity counting. Bit-identical to 64 scalar
//!   runs, at a fraction of the cost.
//!
//! # Examples
//!
//! ```
//! use strober_dsl::Ctx;
//! use strober_rtl::Width;
//! use strober_synth::{synthesize, SynthOptions};
//! use strober_gatesim::GateSim;
//!
//! # fn main() -> Result<(), Box<dyn std::error::Error>> {
//! let ctx = Ctx::new("counter");
//! let count = ctx.reg("count", Width::new(8)?, 0);
//! count.set(&count.out().add_lit(1));
//! ctx.output("value", &count.out());
//! let design = ctx.finish()?;
//! let synth = synthesize(&design, &SynthOptions::default())?;
//!
//! let mut gsim = GateSim::new(&synth.netlist)?;
//! gsim.step_n(5);
//! assert_eq!(gsim.peek_port("value")?, 5);
//! # Ok(())
//! # }
//! ```

#![deny(missing_docs)]
#![deny(missing_debug_implementations)]

mod activity;
mod batch;
mod compile;
mod loader;
mod sim;

pub use activity::ActivityReport;
pub use batch::{BatchSim, MAX_LANES};
pub use compile::Tape;
pub use loader::{LoadStats, ScriptLoader, VpiLoader};
pub use sim::{GateSim, GateSimError};

//! Tape-to-native codegen: JIT-compile the hub simulator's settle loop.
//!
//! The optimized op tape is still *interpreted* by
//! [`strober_sim::Simulator`]: a dispatch loop, bounds checks and slot
//! indirection on every op, every cycle. This crate removes all three.
//! [`strober_sim::Simulator::jit_source`] lowers the tape to one
//! straight-line Rust function of word ops over the flat value slab
//! (constants, masks and slot indices baked into the instruction
//! stream); [`JitCompiler`] compiles that source with a cached
//! `rustc --crate-type cdylib` invocation and `dlopen`s the result; and
//! [`Simulator::attach_jit`] plugs it in behind the existing facade —
//! callers keep poking, peeking and stepping exactly as before.
//!
//! # Caching
//!
//! Compiled dylibs are content-addressed: the file name is the FNV-1a
//! hash of the generated source plus the `rustc` version, so a second
//! simulator built for the same design and optimizer options loads the
//! existing artifact without invoking `rustc` at all. `strober-core`
//! additionally persists the dylib bytes in the artifact store as a
//! [`JitArtifact`] keyed by design fingerprint + tape options + rustc
//! version, making codegen a warm-start artifact exactly like prepare
//! outputs.
//!
//! # Safety and identity
//!
//! Every loaded dylib must export `strober_jit_sig`, whose value is
//! checked against the hash of the source the simulator would generate
//! for its own tape ([`Simulator::attach_jit`] refuses a mismatch). A
//! stale or foreign dylib is therefore rejected before its code can run.
//! Bit-identity with the interpreted tape is enforced by the golden
//! suites (`sim/tests/jit_equivalence.rs`, `bench/tests/jit_golden.rs`)
//! and the fuzz oracle's `tape-jit` lane.
//!
//! # Fallback
//!
//! Everything here degrades gracefully: no `rustc` on `PATH`, a failed
//! compile or a failed `dlopen` all surface as a [`JitError`] that
//! callers (the platform layer) turn into a logged fallback to the
//! interpreted engines, counted by `strober.jit.fallback`.
//!
//! [`Simulator::attach_jit`]: strober_sim::Simulator::attach_jit

#![deny(missing_docs)]
#![deny(missing_debug_implementations)]

mod dylib;

pub use dylib::DylibEngine;

use std::path::{Path, PathBuf};
use std::process::Command;
use std::sync::{Arc, OnceLock};
use std::time::Instant;
use strober_sim::{JitSource, NativeSettle, Simulator};

/// Errors from compiling or loading a native settle engine.
#[derive(Debug)]
#[non_exhaustive]
pub enum JitError {
    /// No usable `rustc` was found on `PATH`.
    NoRustc,
    /// `rustc` ran but rejected the generated source.
    Compile {
        /// The compiler's stderr.
        stderr: String,
    },
    /// The compiled dylib could not be loaded.
    Dlopen(String),
    /// The loaded dylib does not export a required entry point.
    MissingSymbol(&'static str),
    /// The dylib was built from a different tape than the simulator's.
    SignatureMismatch {
        /// Hash of the source the simulator generates.
        expected: u64,
        /// Hash the dylib reports.
        actual: u64,
    },
    /// Filesystem trouble around the cache directory.
    Io(std::io::Error),
}

impl std::fmt::Display for JitError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            JitError::NoRustc => write!(f, "no rustc on PATH"),
            JitError::Compile { stderr } => {
                write!(f, "rustc rejected generated settle source: {stderr}")
            }
            JitError::Dlopen(msg) => write!(f, "cannot load settle dylib: {msg}"),
            JitError::MissingSymbol(name) => {
                write!(f, "settle dylib does not export `{name}`")
            }
            JitError::SignatureMismatch { expected, actual } => write!(
                f,
                "settle dylib signature {actual:#x} does not match tape source ({expected:#x})"
            ),
            JitError::Io(e) => write!(f, "jit cache i/o error: {e}"),
        }
    }
}

impl std::error::Error for JitError {}

impl From<std::io::Error> for JitError {
    fn from(e: std::io::Error) -> Self {
        JitError::Io(e)
    }
}

/// The `rustc --version` string of the compiler on `PATH`, probed once
/// per process, or `None` when no working `rustc` is available (the
/// fallback-to-interpreter case).
pub fn rustc_version() -> Option<&'static str> {
    static VERSION: OnceLock<Option<String>> = OnceLock::new();
    VERSION
        .get_or_init(|| {
            let out = Command::new("rustc").arg("--version").output().ok()?;
            if !out.status.success() {
                return None;
            }
            let v = String::from_utf8_lossy(&out.stdout).trim().to_owned();
            (!v.is_empty()).then_some(v)
        })
        .as_deref()
}

/// How an attach was satisfied, mirroring the store's prepare
/// provenance ladder.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum JitProvenance {
    /// `rustc` was invoked and the dylib compiled fresh.
    Cold,
    /// The dylib came from the content-addressed file cache; no compile.
    Warm,
    /// The dylib bytes came from the artifact store; no compile.
    Store,
}

impl JitProvenance {
    /// The manifest/metrics label (`"cold"`, `"warm"`, `"store"`).
    pub fn as_str(self) -> &'static str {
        match self {
            JitProvenance::Cold => "cold",
            JitProvenance::Warm => "warm",
            JitProvenance::Store => "store",
        }
    }
}

/// The result of a successful [`JitCompiler::attach`].
#[derive(Debug, Clone)]
pub struct JitOutcome {
    /// Whether the dylib was compiled (`Cold`) or reused.
    pub provenance: JitProvenance,
    /// Wall-clock milliseconds spent inside `rustc` (0 on reuse).
    pub compile_ms: u64,
    /// Where the loaded dylib lives on disk.
    pub dylib_path: PathBuf,
    /// The tape source signature (also the dylib's exported sig).
    pub sig: u64,
}

/// A compiled settle dylib plus enough provenance to rebuild the cache
/// entry on another machine: the artifact-store payload for warm-started
/// codegen. Keyed in the store by design fingerprint + tape options +
/// rustc version (see `strober-core`).
#[derive(Debug, Clone, serde::Serialize, serde::Deserialize, serde::Blob)]
pub struct JitArtifact {
    /// `rustc --version` of the compiler that built the dylib.
    pub rustc: String,
    /// The generated source's FNV-1a signature.
    pub sig: u64,
    /// The compiled dylib, byte for byte.
    pub dylib: Vec<u8>,
    /// Wall-clock milliseconds the original compile took.
    pub compile_ms: u64,
}

/// Compiles generated settle source to dylibs in a content-addressed
/// file cache and attaches the result to simulators.
#[derive(Debug, Clone)]
pub struct JitCompiler {
    cache_dir: PathBuf,
}

impl JitCompiler {
    /// A compiler writing to an explicit cache directory (the store root
    /// in the managed flow).
    pub fn new(cache_dir: impl Into<PathBuf>) -> Self {
        JitCompiler {
            cache_dir: cache_dir.into(),
        }
    }

    /// A compiler writing to `strober-jit` under the system temp
    /// directory — the default for library users with no store.
    pub fn in_temp() -> Self {
        Self::new(std::env::temp_dir().join("strober-jit"))
    }

    /// The cache directory dylibs land in.
    pub fn cache_dir(&self) -> &Path {
        &self.cache_dir
    }

    /// The content-addressed dylib path for a given source: FNV-1a over
    /// the source text and the rustc version, so either changing
    /// invalidates the entry.
    fn dylib_path(&self, source: &JitSource, rustc: &str) -> PathBuf {
        let mut h: u64 = 0xcbf2_9ce4_8422_2325;
        for &b in source.source.as_bytes().iter().chain(rustc.as_bytes()) {
            h ^= u64::from(b);
            h = h.wrapping_mul(0x0000_0100_0000_01b3);
        }
        self.cache_dir.join(format!("strober_jit_{h:016x}.so"))
    }

    /// Compiles (or reuses from the file cache) the native settle engine
    /// for a generated source, without attaching it to anything. The flow
    /// layer uses this to build one engine and share it across every
    /// simulator clone of a run.
    ///
    /// Emits `strober.jit.compile_ms` and `strober.jit.cache_hit` probe
    /// metrics; callers are expected to count `strober.jit.fallback`
    /// when they downgrade on error (see [`record_fallback`]).
    ///
    /// # Errors
    ///
    /// [`JitError::NoRustc`] without a compiler on `PATH`, otherwise any
    /// compile/load/signature failure.
    pub fn prepare(&self, source: &JitSource) -> Result<(DylibEngine, JitOutcome), JitError> {
        let rustc = rustc_version().ok_or(JitError::NoRustc)?;
        let path = self.dylib_path(source, rustc);
        if path.exists() {
            if let Ok(found) = self.load_existing(&path, source) {
                return Ok(found);
            }
            // A corrupt or stale file under a content-addressed name:
            // recompile over it rather than failing the attach.
        }
        let compile_ms = self.compile(source, &path)?;
        strober_probe::histogram_record("strober.jit.compile_ms", compile_ms as f64);
        let engine = DylibEngine::load(&path)?;
        let outcome = JitOutcome {
            provenance: JitProvenance::Cold,
            compile_ms,
            dylib_path: path,
            sig: source.sig,
        };
        Ok((engine, outcome))
    }

    /// Loads an already-present cache file, verifying identity.
    fn load_existing(
        &self,
        path: &Path,
        source: &JitSource,
    ) -> Result<(DylibEngine, JitOutcome), JitError> {
        let engine = DylibEngine::load(path)?;
        if engine.signature() != source.sig {
            return Err(JitError::SignatureMismatch {
                expected: source.sig,
                actual: engine.signature(),
            });
        }
        strober_probe::counter_add("strober.jit.cache_hit", 1);
        let outcome = JitOutcome {
            provenance: JitProvenance::Warm,
            compile_ms: 0,
            dylib_path: path.to_path_buf(),
            sig: source.sig,
        };
        Ok((engine, outcome))
    }

    /// Materializes a store-loaded [`JitArtifact`] into the file cache
    /// (if not already present) and loads it. Never invokes `rustc`.
    ///
    /// # Errors
    ///
    /// [`JitError::SignatureMismatch`] when the artifact was generated
    /// from a different tape than `source`, or any load failure.
    pub fn prepare_artifact(
        &self,
        source: &JitSource,
        artifact: &JitArtifact,
    ) -> Result<(DylibEngine, JitOutcome), JitError> {
        if artifact.sig != source.sig {
            return Err(JitError::SignatureMismatch {
                expected: source.sig,
                actual: artifact.sig,
            });
        }
        let path = self.dylib_path(source, &artifact.rustc);
        if !path.exists() {
            std::fs::create_dir_all(&self.cache_dir)?;
            write_atomic(&path, &artifact.dylib)?;
        }
        let (engine, outcome) = self.load_existing(&path, source)?;
        Ok((
            engine,
            JitOutcome {
                provenance: JitProvenance::Store,
                ..outcome
            },
        ))
    }

    /// Compiles (or reuses) the native settle engine for `sim`'s tape and
    /// attaches it. On success the simulator's `settle` dispatches to
    /// native code until [`Simulator::detach_jit`] is called.
    ///
    /// # Errors
    ///
    /// See [`JitCompiler::prepare`].
    pub fn attach(&self, sim: &mut Simulator) -> Result<JitOutcome, JitError> {
        let (engine, outcome) = self.prepare(&sim.jit_source())?;
        attach_engine(sim, engine)?;
        Ok(outcome)
    }

    /// Materializes a store-loaded [`JitArtifact`] and attaches it,
    /// never invoking `rustc`.
    ///
    /// # Errors
    ///
    /// See [`JitCompiler::prepare_artifact`].
    pub fn attach_artifact(
        &self,
        sim: &mut Simulator,
        artifact: &JitArtifact,
    ) -> Result<JitOutcome, JitError> {
        let (engine, outcome) = self.prepare_artifact(&sim.jit_source(), artifact)?;
        attach_engine(sim, engine)?;
        Ok(outcome)
    }

    /// Runs `rustc` on the generated source, landing the dylib at `out`
    /// atomically. Returns the compile wall-time in milliseconds.
    fn compile(&self, source: &JitSource, out: &Path) -> Result<u64, JitError> {
        std::fs::create_dir_all(&self.cache_dir)?;
        let src_path = out.with_extension("rs");
        std::fs::write(&src_path, &source.source)?;
        let tmp = out.with_extension(format!("so.tmp.{}", std::process::id()));
        let started = Instant::now();
        let result = Command::new("rustc")
            .arg("--edition")
            .arg("2021")
            .arg("-O")
            .arg("--crate-type")
            .arg("cdylib")
            .arg("-C")
            .arg("panic=abort")
            .arg("-o")
            .arg(&tmp)
            .arg(&src_path)
            .output()
            .map_err(|_| JitError::NoRustc)?;
        let compile_ms = started.elapsed().as_millis() as u64;
        if !result.status.success() {
            let _ = std::fs::remove_file(&tmp);
            return Err(JitError::Compile {
                stderr: String::from_utf8_lossy(&result.stderr).into_owned(),
            });
        }
        std::fs::rename(&tmp, out)?;
        strober_probe::counter_add("strober.jit.compiled", 1);
        Ok(compile_ms)
    }
}

/// Shared attach tail: map the simulator's signature check into
/// [`JitError`].
fn attach_engine(sim: &mut Simulator, engine: DylibEngine) -> Result<(), JitError> {
    let actual = engine.signature();
    sim.attach_jit(Arc::new(engine))
        .map_err(|_| JitError::SignatureMismatch {
            expected: sim.jit_source().sig,
            actual,
        })
}

/// Counts a downgrade from the JIT engine to an interpreted one and logs
/// why. The platform layer calls this wherever its fallback ladder fires
/// so `strober.jit.fallback` tells operators codegen is not engaged.
pub fn record_fallback(reason: &str) {
    strober_probe::counter_add("strober.jit.fallback", 1);
    strober_probe::warn!("jit engine unavailable, falling back to interpreter: {reason}");
}

/// Writes `bytes` to `path` via a same-directory temp file and rename,
/// so concurrent processes never observe a torn dylib.
fn write_atomic(path: &Path, bytes: &[u8]) -> std::io::Result<()> {
    let tmp = path.with_extension(format!("tmp.{}", std::process::id()));
    std::fs::write(&tmp, bytes)?;
    std::fs::rename(&tmp, path)
}

#[cfg(test)]
mod tests {
    use super::*;
    use strober_dsl::Ctx;
    use strober_rtl::{Design, Width};

    fn counter_design() -> Design {
        let ctx = Ctx::new("counter");
        let en = ctx.input("en", Width::BIT);
        let count = ctx.reg("count", Width::new(8).unwrap(), 0);
        count.set_en(&count.out().add_lit(1), &en);
        ctx.output("value", &count.out());
        ctx.finish().unwrap()
    }

    fn temp_compiler(tag: &str) -> JitCompiler {
        JitCompiler::new(
            std::env::temp_dir()
                .join("strober-jit-test")
                .join(format!("{tag}-{}", std::process::id())),
        )
    }

    #[test]
    fn compiles_attaches_and_runs_bit_identical() {
        if rustc_version().is_none() {
            eprintln!("skipping: no rustc on PATH");
            return;
        }
        let design = counter_design();
        let mut jit = Simulator::new(&design).unwrap();
        let mut interp = Simulator::new(&design).unwrap();
        let compiler = temp_compiler("basic");
        let outcome = compiler.attach(&mut jit).expect("attach");
        assert_eq!(outcome.provenance, JitProvenance::Cold);
        assert!(jit.has_jit());
        assert_eq!(jit.active_engine_name(), "tape-jit");
        for sim in [&mut jit, &mut interp] {
            sim.poke_by_name("en", 1).unwrap();
            sim.step_n(300);
        }
        assert_eq!(
            jit.peek_output("value").unwrap(),
            interp.peek_output("value").unwrap()
        );
        assert_eq!(jit.state(), interp.state());
    }

    #[test]
    fn second_attach_hits_the_file_cache() {
        if rustc_version().is_none() {
            eprintln!("skipping: no rustc on PATH");
            return;
        }
        let design = counter_design();
        let compiler = temp_compiler("cache");
        let mut first = Simulator::new(&design).unwrap();
        let cold = compiler.attach(&mut first).expect("cold attach");
        assert_eq!(cold.provenance, JitProvenance::Cold);
        let mut second = Simulator::new(&design).unwrap();
        let warm = compiler.attach(&mut second).expect("warm attach");
        assert_eq!(warm.provenance, JitProvenance::Warm);
        assert_eq!(warm.compile_ms, 0);
        assert_eq!(warm.dylib_path, cold.dylib_path);
    }

    #[test]
    fn artifact_round_trips_through_bytes() {
        if rustc_version().is_none() {
            eprintln!("skipping: no rustc on PATH");
            return;
        }
        let design = counter_design();
        let compiler = temp_compiler("artifact");
        let mut sim = Simulator::new(&design).unwrap();
        let outcome = compiler.attach(&mut sim).expect("attach");
        let artifact = JitArtifact {
            rustc: rustc_version().unwrap().to_owned(),
            sig: outcome.sig,
            dylib: std::fs::read(&outcome.dylib_path).unwrap(),
            compile_ms: outcome.compile_ms,
        };
        // A fresh cache directory proves the bytes alone are enough.
        let other = temp_compiler("artifact-other");
        let mut warm = Simulator::new(&design).unwrap();
        let restored = other
            .attach_artifact(&mut warm, &artifact)
            .expect("restore");
        assert_eq!(restored.provenance, JitProvenance::Store);
        warm.poke_by_name("en", 1).unwrap();
        warm.step_n(5);
        assert_eq!(warm.peek_output("value").unwrap(), 5);
    }

    #[test]
    fn stale_artifact_is_rejected() {
        let design = counter_design();
        let mut sim = Simulator::new(&design).unwrap();
        let artifact = JitArtifact {
            rustc: "rustc 0.0.0".to_owned(),
            sig: 0xdead_beef,
            dylib: vec![0x7f, b'E', b'L', b'F'],
            compile_ms: 1,
        };
        let compiler = temp_compiler("stale");
        match compiler.attach_artifact(&mut sim, &artifact) {
            Err(JitError::SignatureMismatch { .. }) => {}
            other => panic!("expected signature mismatch, got {other:?}"),
        }
        assert!(!sim.has_jit());
    }
}

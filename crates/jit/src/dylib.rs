//! `dlopen` plumbing for compiled settle engines.
//!
//! The loader is raw `libdl` FFI — no external crates — and the loaded
//! handle lives as long as the [`DylibEngine`], which the simulator holds
//! behind an `Arc`. The handle is closed on drop, after every clone of
//! the owning simulator has released it, so the settle function pointer
//! can never outlive its code.

use crate::JitError;
use std::ffi::{c_char, c_int, c_void, CString};
use std::path::{Path, PathBuf};
use strober_sim::NativeSettle;

#[link(name = "dl")]
extern "C" {
    fn dlopen(filename: *const c_char, flags: c_int) -> *mut c_void;
    fn dlsym(handle: *mut c_void, symbol: *const c_char) -> *mut c_void;
    fn dlclose(handle: *mut c_void) -> c_int;
    fn dlerror() -> *mut c_char;
}

const RTLD_NOW: c_int = 2;

/// Mirrors the `#[repr(C)] MemSpan` the generated code declares: one
/// memory array flattened to a pointer/length pair for the C ABI.
#[repr(C)]
#[derive(Clone, Copy)]
struct MemSpan {
    ptr: *const u64,
    len: usize,
}

type SettleFn = unsafe extern "C" fn(*mut u64, *const u64, *const u64, *const MemSpan);
type SigFn = unsafe extern "C" fn() -> u64;

/// The last `dlerror` as a string, or a placeholder when libdl reports
/// nothing.
fn last_dl_error() -> String {
    // Safety: dlerror returns a thread-local NUL-terminated string or null.
    unsafe {
        let msg = dlerror();
        if msg.is_null() {
            "unknown dlopen error".to_owned()
        } else {
            std::ffi::CStr::from_ptr(msg).to_string_lossy().into_owned()
        }
    }
}

/// A native settle engine loaded from a compiled dylib.
///
/// Implements [`NativeSettle`]; attach with
/// [`Simulator::attach_jit`](strober_sim::Simulator::attach_jit), which
/// verifies [`signature`](NativeSettle::signature) against the tape's
/// own generated source first.
pub struct DylibEngine {
    handle: *mut c_void,
    settle: SettleFn,
    sig: u64,
    path: PathBuf,
}

// Safety: the dylib's code section is immutable and the settle function
// writes only through the pointers passed per call; the raw handle is
// only used again on drop.
unsafe impl Send for DylibEngine {}
unsafe impl Sync for DylibEngine {}

impl std::fmt::Debug for DylibEngine {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("DylibEngine")
            .field("path", &self.path)
            .field("sig", &format_args!("{:#x}", self.sig))
            .finish()
    }
}

impl DylibEngine {
    /// Loads a compiled settle dylib and resolves its entry points.
    ///
    /// # Errors
    ///
    /// [`JitError::Dlopen`] when the file cannot be loaded and
    /// [`JitError::MissingSymbol`] when it is not a strober-jit dylib.
    pub fn load(path: &Path) -> Result<Self, JitError> {
        let c_path = CString::new(path.as_os_str().as_encoded_bytes())
            .map_err(|_| JitError::Dlopen("path contains NUL".to_owned()))?;
        // Safety: plain dlopen of a regular file path.
        let handle = unsafe { dlopen(c_path.as_ptr(), RTLD_NOW) };
        if handle.is_null() {
            return Err(JitError::Dlopen(last_dl_error()));
        }
        let lookup = |name: &'static str| -> Result<*mut c_void, JitError> {
            let c_name = CString::new(name).expect("static name");
            // Safety: handle is the live handle opened above.
            let sym = unsafe { dlsym(handle, c_name.as_ptr()) };
            if sym.is_null() {
                // Safety: closing the handle we just opened.
                unsafe { dlclose(handle) };
                Err(JitError::MissingSymbol(name))
            } else {
                Ok(sym)
            }
        };
        let settle_sym = lookup("strober_jit_settle")?;
        let sig_sym = lookup("strober_jit_sig")?;
        // Safety: the symbols were emitted by our own codegen with these
        // exact signatures; transmuting a data pointer to a function
        // pointer is what dlsym requires on every Unix.
        let settle: SettleFn = unsafe { std::mem::transmute(settle_sym) };
        let sig_fn: SigFn = unsafe { std::mem::transmute(sig_sym) };
        // Safety: nullary pure function exported by the generated code.
        let sig = unsafe { sig_fn() };
        Ok(DylibEngine {
            handle,
            settle,
            sig,
            path: path.to_path_buf(),
        })
    }

    /// Where the dylib was loaded from.
    pub fn path(&self) -> &Path {
        &self.path
    }
}

impl Drop for DylibEngine {
    fn drop(&mut self) {
        // Safety: the handle is live and no call can be in flight — the
        // simulator's Arc keeps the engine alive across every clone.
        unsafe { dlclose(self.handle) };
    }
}

impl NativeSettle for DylibEngine {
    fn settle(&self, values: &mut [u64], inputs: &[u64], regs: &[u64], mems: &[Vec<u64>]) {
        // Flatten memories to C spans on the stack for the common case;
        // designs with very many memories fall back to a heap vector.
        let mut stack = [MemSpan {
            ptr: std::ptr::null(),
            len: 0,
        }; 16];
        let mut heap;
        let spans: &[MemSpan] = if mems.len() <= stack.len() {
            for (slot, m) in stack.iter_mut().zip(mems) {
                slot.ptr = m.as_ptr();
                slot.len = m.len();
            }
            &stack[..mems.len()]
        } else {
            heap = Vec::with_capacity(mems.len());
            heap.extend(mems.iter().map(|m| MemSpan {
                ptr: m.as_ptr(),
                len: m.len(),
            }));
            &heap
        };
        // Safety: attach-time signature verification proved this code was
        // generated from the exact tape whose slab we are passing, so
        // every baked index is in bounds for these slices.
        unsafe {
            (self.settle)(
                values.as_mut_ptr(),
                inputs.as_ptr(),
                regs.as_ptr(),
                spans.as_ptr(),
            );
        }
    }

    fn signature(&self) -> u64 {
        self.sig
    }
}

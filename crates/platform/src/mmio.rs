//! The MMIO register map.
//!
//! The platform-mapping transform "generates a wrapper to convert
//! platform-specific data to simulation timing tokens, as well as assigns
//! addresses for the communication channels and scan chain outputs"
//! (§IV-B3). [`MmioMap`] is that address assignment: every hub control
//! input gets a write register and every hub output a read register, at
//! word-aligned addresses, so the host driver can operate the simulator
//! exactly as it would over a Zynq AXI-lite interface.

use std::collections::HashMap;
use strober_fame::FameMeta;
use strober_rtl::{Design, NodeId, PortId};
use strober_sim::{SimError, Simulator};

/// One mapped register.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct MmioReg {
    /// The word-aligned address.
    pub addr: u32,
    /// The hub port the register is bound to.
    pub port: String,
    /// Whether the host writes (control input) or reads (status output).
    pub writable: bool,
}

/// The hub's MMIO address map.
#[derive(Debug, Clone)]
pub struct MmioMap {
    regs: Vec<MmioReg>,
    write_ports: HashMap<u32, PortId>,
    read_nodes: HashMap<u32, NodeId>,
    by_name: HashMap<String, u32>,
}

impl MmioMap {
    /// Builds the address map for a transformed design: control inputs
    /// first, then status outputs, at consecutive word addresses from
    /// `0x0`.
    ///
    /// # Errors
    ///
    /// Returns [`SimError::UnknownName`] if the hub design does not match
    /// the metadata.
    pub fn from_meta(hub: &Design, meta: &FameMeta) -> Result<Self, SimError> {
        let mut regs = Vec::new();
        let mut write_ports = HashMap::new();
        let mut read_nodes = HashMap::new();
        let mut by_name = HashMap::new();
        let mut next_addr = 0u32;

        let ctl = &meta.control;
        let inputs = [
            &ctl.fire,
            &ctl.scan_capture,
            &ctl.scan_shift,
            &ctl.mem_scan_en,
            &ctl.mem_scan_rst,
            &ctl.trace_raddr,
        ];
        for name in inputs {
            let port = hub
                .port_by_name(name)
                .ok_or_else(|| SimError::UnknownName {
                    kind: "hub control input",
                    name: name.clone(),
                })?
                .id();
            let addr = next_addr;
            next_addr += 4;
            regs.push(MmioReg {
                addr,
                port: name.clone(),
                writable: true,
            });
            write_ports.insert(addr, port);
            by_name.insert(name.clone(), addr);
        }

        let mut outputs: Vec<&String> = vec![&ctl.scan_out, &ctl.cycle];
        for m in &meta.mem_scans {
            outputs.push(&m.out_port);
        }
        for t in meta.traces_in.iter().chain(&meta.traces_out) {
            outputs.push(&t.out_port);
        }
        for name in outputs {
            let node = hub
                .output_by_name(name)
                .ok_or_else(|| SimError::UnknownName {
                    kind: "hub status output",
                    name: name.clone(),
                })?;
            let addr = next_addr;
            next_addr += 4;
            regs.push(MmioReg {
                addr,
                port: name.clone(),
                writable: false,
            });
            read_nodes.insert(addr, node);
            by_name.insert(name.clone(), addr);
        }

        Ok(MmioMap {
            regs,
            write_ports,
            read_nodes,
            by_name,
        })
    }

    /// All mapped registers, in address order.
    pub fn regs(&self) -> &[MmioReg] {
        &self.regs
    }

    /// The address assigned to a hub port.
    pub fn addr_of(&self, port: &str) -> Option<u32> {
        self.by_name.get(port).copied()
    }

    /// Performs an MMIO write (a control-register store from the host).
    ///
    /// # Errors
    ///
    /// Returns [`SimError::UnknownName`] for an unmapped or read-only
    /// address.
    pub fn write(&self, sim: &mut Simulator, addr: u32, value: u64) -> Result<(), SimError> {
        let port = self
            .write_ports
            .get(&addr)
            .ok_or_else(|| SimError::UnknownName {
                kind: "writable MMIO address",
                name: format!("{addr:#x}"),
            })?;
        sim.poke(*port, value);
        Ok(())
    }

    /// Performs an MMIO read (a status-register load from the host).
    ///
    /// # Errors
    ///
    /// Returns [`SimError::UnknownName`] for an unmapped or write-only
    /// address.
    pub fn read(&self, sim: &mut Simulator, addr: u32) -> Result<u64, SimError> {
        let node = self
            .read_nodes
            .get(&addr)
            .ok_or_else(|| SimError::UnknownName {
                kind: "readable MMIO address",
                name: format!("{addr:#x}"),
            })?;
        Ok(sim.peek(*node))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use strober_dsl::Ctx;
    use strober_fame::{transform, FameConfig};
    use strober_rtl::Width;

    fn fame() -> strober_fame::FameResult {
        let ctx = Ctx::new("counter");
        let count = ctx.reg("count", Width::new(8).unwrap(), 0);
        count.set(&count.out().add_lit(1));
        ctx.output("value", &count.out());
        transform(&ctx.finish().unwrap(), &FameConfig::default()).unwrap()
    }

    #[test]
    fn addresses_are_word_aligned_and_unique() {
        let f = fame();
        let map = MmioMap::from_meta(&f.hub, &f.meta).unwrap();
        let mut seen = std::collections::HashSet::new();
        for r in map.regs() {
            assert_eq!(r.addr % 4, 0);
            assert!(seen.insert(r.addr), "duplicate address {:#x}", r.addr);
        }
        assert!(map.addr_of("fame/fire").is_some());
        assert!(map.addr_of("fame/scan_out").is_some());
        assert!(map.addr_of("bogus").is_none());
    }

    #[test]
    fn mmio_drives_the_hub() {
        let f = fame();
        let map = MmioMap::from_meta(&f.hub, &f.meta).unwrap();
        let mut sim = Simulator::new(&f.hub).unwrap();
        let fire = map.addr_of("fame/fire").unwrap();
        let cycle = map.addr_of("fame/cycle").unwrap();
        map.write(&mut sim, fire, 1).unwrap();
        for _ in 0..5 {
            sim.step();
        }
        assert_eq!(map.read(&mut sim, cycle).unwrap(), 5);
        // Read-only/write-only addresses reject the wrong operation.
        assert!(map.read(&mut sim, fire).is_err());
        assert!(map.write(&mut sim, cycle, 0).is_err());
        assert!(map.write(&mut sim, 0xFFFF_FFF0, 0).is_err());
    }
}

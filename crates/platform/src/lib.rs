//! The simulated FPGA host platform.
//!
//! The paper maps Strober hubs onto Xilinx Zynq boards: the transformed
//! design lives in the FPGA fabric, while main memory and I/O devices are
//! mapped to the host CPU's memory and software, exchanging timing tokens
//! through communication channels and control state through an MMIO
//! register map (§IV-B3). Host communication stalls the simulator every
//! 256 target cycles (§V-B), which is what separates the ~50 MHz fabric
//! clock from the ~3.6 MHz effective simulation rate of Table III.
//!
//! This crate reproduces that host:
//!
//! * [`TokenChannel`] — bounded FIFOs carrying timing tokens between host
//!   models and the target (the "communication channels" of Fig. 3).
//! * [`MmioMap`] — the address map a platform-mapping pass assigns to
//!   control signals, scan-chain outputs and trace buffers.
//! * [`ZynqHost`] — the driver loop: it services target I/O through a
//!   [`HostModel`] every cycle, fires the FAME1 hub, triggers snapshot
//!   captures, and maintains the *modelled* wall-clock cost (raw fabric
//!   cycles, host-sync stalls, per-record readout latency) alongside real
//!   host-machine time.
//!
//! The separation mirrors the paper exactly: `strober-fame` produces the
//! hardware; this crate is the software driver generated from the
//! simulation metadata.

#![deny(missing_docs)]
#![deny(missing_debug_implementations)]

mod channel;
mod host;
mod mmio;

pub use channel::TokenChannel;
pub use host::{
    HostModel, HubEngine, OutputView, PlatformConfig, PlatformStats, TargetInput, TargetOutput,
    ZynqHost,
};
pub use mmio::{MmioMap, MmioReg};

//! The host driver loop and its cost model.

use std::collections::HashMap;
use strober_fame::{FameResult, FameSnapshot, SnapshotController};
use strober_rtl::{NodeId, PortId};
use strober_sim::{SimError, Simulator, TapeOptions};

/// Host-side models of the target's environment (main memory, I/O
/// devices), serviced once per target cycle — the software half of the
/// paper's Zynq mapping.
pub trait HostModel {
    /// Services one target cycle: read the target's outputs, update model
    /// state (e.g. the DRAM timing model), and drive the target's inputs
    /// for this cycle.
    ///
    /// Outputs read through [`OutputView::get`] reflect the input values
    /// most recently set; targets with registered I/O (all bundled cores)
    /// make the read/write order irrelevant.
    fn tick(&mut self, cycle: u64, io: &mut OutputView<'_>);

    /// Whether the workload has finished (stops [`ZynqHost::run`]).
    fn is_done(&self) -> bool {
        false
    }
}

/// A pre-resolved handle to a target output, obtained from
/// [`OutputView::output`]. Lets host models skip the name hash on every
/// cycle of the hot driver loop.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct TargetOutput(NodeId);

/// A pre-resolved handle to a target input, obtained from
/// [`OutputView::input`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct TargetInput(PortId);

/// The host model's window onto the target's ports.
#[derive(Debug)]
pub struct OutputView<'a> {
    sim: &'a mut Simulator,
    out_map: &'a HashMap<String, NodeId>,
    in_map: &'a HashMap<String, PortId>,
}

impl OutputView<'_> {
    /// Reads a target output.
    ///
    /// # Panics
    ///
    /// Panics on an unknown output name — a host-model programming error.
    pub fn get(&mut self, name: &str) -> u64 {
        let node = *self
            .out_map
            .get(name)
            .unwrap_or_else(|| panic!("host model read unknown target output `{name}`"));
        self.sim.peek(node)
    }

    /// Drives a target input for this cycle.
    ///
    /// # Panics
    ///
    /// Panics on an unknown input name — a host-model programming error.
    pub fn set(&mut self, name: &str, value: u64) {
        let port = *self
            .in_map
            .get(name)
            .unwrap_or_else(|| panic!("host model drove unknown target input `{name}`"));
        self.sim.poke(port, value);
    }

    /// Resolves a target output name once; pair with
    /// [`read`](OutputView::read) in per-cycle loops.
    ///
    /// # Panics
    ///
    /// Panics on an unknown output name — a host-model programming error.
    pub fn output(&self, name: &str) -> TargetOutput {
        TargetOutput(
            *self
                .out_map
                .get(name)
                .unwrap_or_else(|| panic!("host model resolved unknown target output `{name}`")),
        )
    }

    /// Resolves a target input name once; pair with
    /// [`write`](OutputView::write) in per-cycle loops.
    ///
    /// # Panics
    ///
    /// Panics on an unknown input name — a host-model programming error.
    pub fn input(&self, name: &str) -> TargetInput {
        TargetInput(
            *self
                .in_map
                .get(name)
                .unwrap_or_else(|| panic!("host model resolved unknown target input `{name}`")),
        )
    }

    /// Reads a target output through a pre-resolved handle (no hashing).
    pub fn read(&mut self, port: TargetOutput) -> u64 {
        self.sim.peek(port.0)
    }

    /// Drives a target input through a pre-resolved handle (no hashing).
    pub fn write(&mut self, port: TargetInput, value: u64) {
        self.sim.poke(port.0, value);
    }
}

/// Which settle engine drives the hub simulator.
///
/// Selected with `--hub-engine` on `estimate`/`submit` and threaded
/// through [`PlatformConfig::hub_engine`]. All variants are bit-identical
/// — they differ only in how the combinational settle is evaluated (see
/// DESIGN.md §16's which-engine-when table).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default, serde::Serialize, serde::Deserialize)]
pub enum HubEngine {
    /// Backward-compatible default: [`PlatformConfig::hub_threads`]
    /// decides — 1 keeps the sequential tape walk, more selects the
    /// partitioned engine. Never JIT-compiles on its own, but keeps a
    /// pre-attached native engine if the flow installed one.
    #[default]
    Auto,
    /// Force the sequential interpreted tape walk, detaching any native
    /// engine and ignoring `hub_threads`.
    Interp,
    /// Force the partitioned multi-threaded settle engine with
    /// `hub_threads.max(2)` workers (DESIGN.md §14).
    Partitioned,
    /// JIT-compile the tape to native code via `strober-jit`. Falls back
    /// down the ladder (partitioned if `hub_threads > 1`, else the
    /// sequential walk) when no `rustc` is on `PATH` or compilation
    /// fails, counting `strober.jit.fallback`.
    Jit,
}

impl HubEngine {
    /// The wire/CLI name (`auto`, `interp`, `partitioned`, `jit`).
    pub fn name(self) -> &'static str {
        match self {
            HubEngine::Auto => "auto",
            HubEngine::Interp => "interp",
            HubEngine::Partitioned => "partitioned",
            HubEngine::Jit => "jit",
        }
    }

    /// Parses a wire/CLI name.
    pub fn from_name(name: &str) -> Option<Self> {
        match name {
            "auto" => Some(HubEngine::Auto),
            "interp" => Some(HubEngine::Interp),
            "partitioned" => Some(HubEngine::Partitioned),
            "jit" => Some(HubEngine::Jit),
            _ => None,
        }
    }
}

impl std::fmt::Display for HubEngine {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(self.name())
    }
}

/// Cost-model parameters for the simulated platform.
///
/// Defaults reproduce the paper's measured environment: a ~50 MHz fabric
/// clock, a host synchronisation stall every 256 target cycles costing a
/// host round trip (which yields the ~3.9 MHz "without sampling" rate of
/// Table III), and 1.3 s of host readout latency per snapshot record.
#[derive(Debug, Clone, serde::Serialize, serde::Deserialize)]
pub struct PlatformConfig {
    /// Raw FPGA fabric clock in Hz.
    pub raw_clock_hz: f64,
    /// Target cycles between host synchronisations (I/O devices are
    /// host-mapped, §V-B).
    pub sync_period: u64,
    /// Fabric cycles lost per host synchronisation (one host round trip).
    pub sync_penalty_cycles: u64,
    /// Fixed host-side seconds per snapshot record (the paper's measured
    /// 1.3 s per replayable RTL snapshot readout).
    pub record_fixed_seconds: f64,
    /// Whether the hub simulator runs the optimizing tape compiler
    /// (default `true`); the CLI `--no-tape-opt` escape hatch clears it.
    pub tape_opt: bool,
    /// Worker threads for the hub simulator's combinational settle
    /// (default 1 = sequential). Values above 1 select the partitioned
    /// parallel engine (DESIGN.md §14); results are bit-identical either
    /// way. The CLI `--hub-threads` flag sets this.
    pub hub_threads: usize,
    /// Which settle engine drives the hub (default [`HubEngine::Auto`]:
    /// `hub_threads` decides). The CLI `--hub-engine` flag sets this.
    pub hub_engine: HubEngine,
    /// Target relative error ε for confidence-driven adaptive sampling
    /// (default 0 = disabled). Any value in `(0, 1)` makes the streaming
    /// pipeline stop capture once the estimate's relative error bound
    /// reaches ε (DESIGN.md §15). The CLI `--target-error` flag sets
    /// this.
    pub target_error: f64,
    /// Minimum replayed samples before the adaptive stopping rule may
    /// fire (default 30, eq. 8's CLT floor). Ignored when `target_error`
    /// is 0. The CLI `--min-samples` flag sets this.
    pub min_samples: usize,
}

impl Default for PlatformConfig {
    fn default() -> Self {
        PlatformConfig {
            raw_clock_hz: 50.0e6,
            sync_period: 256,
            sync_penalty_cycles: 3020,
            record_fixed_seconds: 1.3,
            tape_opt: true,
            hub_threads: 1,
            hub_engine: HubEngine::Auto,
            target_error: 0.0,
            min_samples: 30,
        }
    }
}

/// Aggregate statistics from one host session.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct PlatformStats {
    /// Target cycles executed (the `fame/cycle` counter).
    pub target_cycles: u64,
    /// Hub cycles spent advancing the target.
    pub hub_cycles: u64,
    /// Hub cycles spent in snapshot capture (scan + trace readout).
    pub scan_overhead_cycles: u64,
    /// Host synchronisations performed.
    pub syncs: u64,
    /// Snapshot records taken.
    pub records: u64,
    /// Modelled wall-clock seconds on the reference platform.
    pub modeled_seconds: f64,
    /// Modelled effective simulation rate in Hz (target cycles per
    /// modelled second).
    pub effective_hz: f64,
}

/// The simulated Zynq host: drives a FAME1 hub, services target I/O
/// through a [`HostModel`], captures snapshots, and maintains the §IV-E
/// cost model.
///
/// # Examples
///
/// ```
/// use strober_dsl::Ctx;
/// use strober_rtl::Width;
/// use strober_fame::{transform, FameConfig};
/// use strober_platform::{HostModel, OutputView, PlatformConfig, ZynqHost};
///
/// struct FreeRun;
/// impl HostModel for FreeRun {
///     fn tick(&mut self, _cycle: u64, _io: &mut OutputView<'_>) {}
/// }
///
/// # fn main() -> Result<(), Box<dyn std::error::Error>> {
/// let ctx = Ctx::new("counter");
/// let count = ctx.reg("count", Width::new(8)?, 0);
/// count.set(&count.out().add_lit(1));
/// ctx.output("value", &count.out());
/// let fame = transform(&ctx.finish()?, &FameConfig::default())?;
///
/// let mut host = ZynqHost::new(&fame, PlatformConfig::default())?;
/// host.run(&mut FreeRun, 100)?;
/// assert_eq!(host.stats().target_cycles, 100);
/// # Ok(())
/// # }
/// ```
#[derive(Debug)]
pub struct ZynqHost {
    sim: Simulator,
    ctl: SnapshotController,
    cfg: PlatformConfig,
    out_map: HashMap<String, NodeId>,
    in_map: HashMap<String, PortId>,
    target_cycles: u64,
    hub_cycles: u64,
    syncs: u64,
    records: u64,
}

/// Applies [`PlatformConfig::hub_engine`] to a hub simulator — the one
/// place engine selection happens.
///
/// `Jit` keeps a native engine the flow pre-attached (the store-backed
/// warm path); otherwise it compiles into the temp cache here. Failures
/// walk the fallback ladder — partitioned when `hub_threads > 1`, else
/// the sequential walk — and count `strober.jit.fallback`, so a missing
/// `rustc` degrades a run's speed, never its results.
fn apply_engine(sim: &mut Simulator, cfg: &PlatformConfig) {
    match cfg.hub_engine {
        HubEngine::Auto => {
            // PR8-compatible: thread count decides. A pre-attached native
            // engine (which dispatches ahead of both) is left in place.
            sim.set_threads(cfg.hub_threads.max(1));
        }
        HubEngine::Interp => {
            sim.detach_jit();
            sim.set_threads(1);
        }
        HubEngine::Partitioned => {
            sim.detach_jit();
            sim.set_threads(cfg.hub_threads.max(2));
        }
        HubEngine::Jit => {
            sim.set_threads(cfg.hub_threads.max(1));
            if sim.has_jit() {
                return;
            }
            match strober_jit::JitCompiler::in_temp().attach(sim) {
                Ok(_) => {}
                Err(e) => strober_jit::record_fallback(&e.to_string()),
            }
        }
    }
}

impl ZynqHost {
    /// Boots a host session for a transformed design.
    ///
    /// # Errors
    ///
    /// Returns [`SimError`] when the hub design is malformed, or the hub's
    /// validation error via `strober-sim`.
    pub fn new(fame: &FameResult, cfg: PlatformConfig) -> Result<Self, SimError> {
        let options = if cfg.tape_opt {
            TapeOptions::all()
        } else {
            TapeOptions::none()
        };
        let sim =
            Simulator::with_options(&fame.hub, &options).map_err(|e| SimError::UnknownName {
                kind: "hub design",
                name: e.to_string(),
            })?;
        Self::with_sim(fame, cfg, sim)
    }

    /// Boots a host session from an already-lowered hub simulator,
    /// skipping the lowering + tape-optimization pipeline entirely. The
    /// simulator **must** have been built from `fame.hub` (and not yet
    /// stepped): a session that caches the pristine lowered simulator
    /// keyed by the design fingerprint — as `StroberFlow` and the
    /// estimation server do — satisfies this by construction.
    ///
    /// # Errors
    ///
    /// Returns [`SimError`] if the hub's control ports cannot be driven.
    pub fn with_sim(
        fame: &FameResult,
        cfg: PlatformConfig,
        mut sim: Simulator,
    ) -> Result<Self, SimError> {
        let ctl = SnapshotController::new(&fame.meta);
        let out_map: HashMap<String, NodeId> = fame
            .hub
            .outputs()
            .iter()
            .map(|(n, id)| (n.clone(), *id))
            .collect();
        let in_map: HashMap<String, PortId> = fame
            .hub
            .ports()
            .iter()
            .map(|p| (p.name().to_owned(), p.id()))
            .collect();
        // Single choke point for the engine selection: both the flow's
        // cached-simulator path and `ZynqHost::new` funnel through here.
        apply_engine(&mut sim, &cfg);
        ctl.set_fire(&mut sim, true)?;
        Ok(ZynqHost {
            sim,
            ctl,
            cfg,
            out_map,
            in_map,
            target_cycles: 0,
            hub_cycles: 0,
            syncs: 0,
            records: 0,
        })
    }

    /// The settle engine actually in effect after selection and any
    /// fallback (`"tape"`, `"tape-partitioned"` or `"tape-jit"`).
    pub fn engine_name(&self) -> &'static str {
        self.sim.active_engine_name()
    }

    /// The full traced window length (`replay_length + warmup`) in cycles.
    pub fn trace_window(&self) -> u64 {
        u64::from(self.ctl.meta().replay_length + self.ctl.meta().warmup)
    }

    /// The measurement window length (`replay_length`) in cycles.
    pub fn replay_length(&self) -> u64 {
        u64::from(self.ctl.meta().replay_length)
    }

    /// Advances the target by exactly one cycle, servicing the host model.
    ///
    /// # Errors
    ///
    /// Returns [`SimError`] if the hub does not match the metadata.
    pub fn step_target(&mut self, model: &mut dyn HostModel) -> Result<(), SimError> {
        {
            let mut io = OutputView {
                sim: &mut self.sim,
                out_map: &self.out_map,
                in_map: &self.in_map,
            };
            model.tick(self.target_cycles, &mut io);
        }
        self.sim.step();
        self.hub_cycles += 1;
        self.target_cycles += 1;
        if self.target_cycles.is_multiple_of(self.cfg.sync_period) {
            self.syncs += 1;
        }
        Ok(())
    }

    /// Runs up to `max_cycles` target cycles, stopping early when the
    /// model reports completion. Returns the number of cycles run.
    ///
    /// # Errors
    ///
    /// Returns [`SimError`] if the hub does not match the metadata.
    pub fn run(&mut self, model: &mut dyn HostModel, max_cycles: u64) -> Result<u64, SimError> {
        let mut ran = 0;
        while ran < max_cycles && !model.is_done() {
            self.step_target(model)?;
            ran += 1;
        }
        Ok(ran)
    }

    /// Captures a complete replayable snapshot: runs the `warmup` prefix
    /// (recorded in the trace so replay can recover retimed datapaths,
    /// §IV-C3), stalls and scans out state, runs the `replay_length`
    /// measurement window, reads the traces, and resumes.
    ///
    /// # Errors
    ///
    /// Returns [`SimError`] if the hub does not match the metadata.
    pub fn capture_snapshot(
        &mut self,
        model: &mut dyn HostModel,
    ) -> Result<FameSnapshot, SimError> {
        let _span = strober_probe::span("strober.platform.capture_snapshot");
        let scan_before = self.ctl.overhead_cycles();
        let warmup = self.trace_window() - self.replay_length();
        for _ in 0..warmup {
            self.step_target(model)?;
        }
        self.ctl.set_fire(&mut self.sim, false)?;
        let pending = self.ctl.begin_snapshot(&mut self.sim)?;
        self.ctl.set_fire(&mut self.sim, true)?;
        for _ in 0..self.replay_length() {
            self.step_target(model)?;
        }
        self.ctl.set_fire(&mut self.sim, false)?;
        let snap = self.ctl.finish_snapshot(&mut self.sim, pending)?;
        self.ctl.set_fire(&mut self.sim, true)?;
        self.records += 1;
        strober_probe::counter_add("strober.platform.records", 1);
        strober_probe::counter_add(
            "strober.platform.scan_cycles",
            self.ctl.overhead_cycles() - scan_before,
        );
        Ok(snap)
    }

    /// Reads a target output by name (for checking workload completion,
    /// performance counters, etc.).
    ///
    /// # Errors
    ///
    /// Returns [`SimError::UnknownName`] for an unknown output.
    pub fn peek_output(&mut self, name: &str) -> Result<u64, SimError> {
        match self.out_map.get(name) {
            Some(&node) => Ok(self.sim.peek(node)),
            None => Err(SimError::UnknownName {
                kind: "target output",
                name: name.to_owned(),
            }),
        }
    }

    /// The current target cycle.
    pub fn target_cycles(&self) -> u64 {
        self.target_cycles
    }

    /// Session statistics under the platform cost model.
    pub fn stats(&self) -> PlatformStats {
        let scan = self.ctl.overhead_cycles();
        let fabric_cycles = self.hub_cycles + scan + self.syncs * self.cfg.sync_penalty_cycles;
        let modeled_seconds = fabric_cycles as f64 / self.cfg.raw_clock_hz
            + self.records as f64 * self.cfg.record_fixed_seconds;
        PlatformStats {
            target_cycles: self.target_cycles,
            hub_cycles: self.hub_cycles,
            scan_overhead_cycles: scan,
            syncs: self.syncs,
            records: self.records,
            modeled_seconds,
            effective_hz: if modeled_seconds > 0.0 {
                self.target_cycles as f64 / modeled_seconds
            } else {
                0.0
            },
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use strober_dsl::Ctx;
    use strober_fame::{transform, FameConfig};
    use strober_rtl::Width;

    struct Echo {
        last: u64,
        limit: u64,
    }

    impl HostModel for Echo {
        fn tick(&mut self, cycle: u64, io: &mut OutputView<'_>) {
            self.last = io.get("value");
            io.set("x", cycle & 0xFF);
        }

        fn is_done(&self) -> bool {
            self.last >= self.limit
        }
    }

    fn fame() -> strober_fame::FameResult {
        let ctx = Ctx::new("acc");
        let x = ctx.input("x", Width::new(8).unwrap());
        let acc = ctx.reg("acc", Width::new(16).unwrap(), 0);
        acc.set(&(&acc.out() + &x.zext(Width::new(16).unwrap())));
        ctx.output("value", &acc.out());
        transform(
            &ctx.finish().unwrap(),
            &FameConfig {
                replay_length: 8,
                warmup: 0,
            },
        )
        .unwrap()
    }

    #[test]
    fn host_services_the_model_every_cycle() {
        let mut host = ZynqHost::new(&fame(), PlatformConfig::default()).unwrap();
        let mut model = Echo {
            last: 0,
            limit: u64::MAX,
        };
        host.run(&mut model, 10).unwrap();
        // acc = 0+1+...+9 = 45.
        assert_eq!(host.peek_output("value").unwrap(), 45);
        assert_eq!(host.stats().target_cycles, 10);
    }

    #[test]
    fn model_done_stops_the_run() {
        let mut host = ZynqHost::new(&fame(), PlatformConfig::default()).unwrap();
        let mut model = Echo { last: 0, limit: 45 };
        let ran = host.run(&mut model, 1_000_000).unwrap();
        assert!(ran < 1000, "run should stop shortly after acc reaches 45");
    }

    #[test]
    fn snapshot_capture_accounts_overhead_and_keeps_running() {
        let mut host = ZynqHost::new(&fame(), PlatformConfig::default()).unwrap();
        let mut model = Echo {
            last: 0,
            limit: u64::MAX,
        };
        host.run(&mut model, 20).unwrap();
        let snap = host.capture_snapshot(&mut model).unwrap();
        assert_eq!(snap.cycle, 20);
        assert_eq!(snap.trace_len(), 8);
        // The trace window advanced the target.
        assert_eq!(host.stats().target_cycles, 28);
        assert_eq!(host.stats().records, 1);
        assert!(host.stats().scan_overhead_cycles > 0);
        // Execution continues seamlessly.
        host.run(&mut model, 10).unwrap();
        assert_eq!(host.stats().target_cycles, 38);
    }

    #[test]
    fn cost_model_reproduces_the_papers_effective_rate() {
        // With the default constants, a long sampling-free run lands in the
        // paper's ~3.9 MHz band (Table III, "without sampling").
        let cfg = PlatformConfig::default();
        let cycles = 1_000_000f64;
        let syncs = cycles / cfg.sync_period as f64;
        let modeled = (cycles + syncs * cfg.sync_penalty_cycles as f64) / cfg.raw_clock_hz;
        let effective = cycles / modeled;
        assert!(
            (3.5e6..4.3e6).contains(&effective),
            "effective rate {effective} outside the Table III band"
        );
    }

    #[test]
    fn stats_modeled_seconds_include_records() {
        let mut host = ZynqHost::new(&fame(), PlatformConfig::default()).unwrap();
        let mut model = Echo {
            last: 0,
            limit: u64::MAX,
        };
        host.run(&mut model, 100).unwrap();
        let before = host.stats().modeled_seconds;
        host.capture_snapshot(&mut model).unwrap();
        let after = host.stats().modeled_seconds;
        assert!(after > before + 1.0, "record latency must dominate");
    }
}

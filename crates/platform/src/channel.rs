//! Timing-token channels.

use std::collections::VecDeque;

/// A bounded FIFO of timing tokens connecting a host model to a target
/// port (Fig. 3 of the paper).
///
/// A FAME1 simulation module fires only when every input channel holds a
/// token and every output channel has space; the channel therefore also
/// counts the stalls it caused, which the host uses to attribute lost
/// simulation throughput.
#[derive(Debug, Clone)]
pub struct TokenChannel {
    name: String,
    capacity: usize,
    tokens: VecDeque<u64>,
    enqueued: u64,
    stalls: u64,
}

impl TokenChannel {
    /// Creates an empty channel with the given capacity.
    ///
    /// # Panics
    ///
    /// Panics if `capacity` is zero.
    pub fn new(name: impl Into<String>, capacity: usize) -> Self {
        assert!(capacity > 0, "channel capacity must be nonzero");
        TokenChannel {
            name: name.into(),
            capacity,
            tokens: VecDeque::with_capacity(capacity),
            enqueued: 0,
            stalls: 0,
        }
    }

    /// The channel's name (usually the target port it feeds).
    pub fn name(&self) -> &str {
        &self.name
    }

    /// The channel's capacity in tokens.
    pub fn capacity(&self) -> usize {
        self.capacity
    }

    /// Number of buffered tokens.
    pub fn len(&self) -> usize {
        self.tokens.len()
    }

    /// Whether the channel holds no tokens.
    pub fn is_empty(&self) -> bool {
        self.tokens.is_empty()
    }

    /// Whether the channel is full.
    pub fn is_full(&self) -> bool {
        self.tokens.len() == self.capacity
    }

    /// Enqueues a token; returns `false` (and counts a stall) when full.
    pub fn push(&mut self, token: u64) -> bool {
        if self.is_full() {
            self.stalls += 1;
            return false;
        }
        self.tokens.push_back(token);
        self.enqueued += 1;
        true
    }

    /// Dequeues a token; returns `None` (and counts a stall) when empty.
    pub fn pop(&mut self) -> Option<u64> {
        match self.tokens.pop_front() {
            Some(t) => Some(t),
            None => {
                self.stalls += 1;
                None
            }
        }
    }

    /// Total tokens ever enqueued.
    pub fn enqueued(&self) -> u64 {
        self.enqueued
    }

    /// Number of failed pushes/pops (full/empty encounters).
    pub fn stalls(&self) -> u64 {
        self.stalls
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fifo_order() {
        let mut ch = TokenChannel::new("a", 4);
        assert!(ch.push(1));
        assert!(ch.push(2));
        assert_eq!(ch.pop(), Some(1));
        assert_eq!(ch.pop(), Some(2));
        assert_eq!(ch.pop(), None);
        assert_eq!(ch.stalls(), 1);
        assert_eq!(ch.enqueued(), 2);
    }

    #[test]
    fn capacity_enforced() {
        let mut ch = TokenChannel::new("a", 2);
        assert!(ch.push(1));
        assert!(ch.push(2));
        assert!(ch.is_full());
        assert!(!ch.push(3));
        assert_eq!(ch.stalls(), 1);
        assert_eq!(ch.len(), 2);
    }

    #[test]
    #[should_panic(expected = "nonzero")]
    fn zero_capacity_rejected() {
        let _ = TokenChannel::new("a", 0);
    }
}

//! Node, register, memory and port identifiers, and the combinational
//! operator set.

use crate::value::{mask, sign_extend, Width};
use std::fmt;

macro_rules! id_type {
    ($(#[$doc:meta])* $name:ident, $prefix:literal) => {
        $(#[$doc])*
        #[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
        #[derive(serde::Serialize, serde::Deserialize, serde::Blob)]
        pub struct $name(pub(crate) u32);

        impl $name {
            /// The raw index of this id within its arena.
            pub fn index(self) -> usize {
                self.0 as usize
            }

            /// Reconstructs an id from a raw arena index.
            ///
            /// Intended for compiler passes that rebuild designs; using an
            /// index from a different design is a logic error that
            /// validation will catch.
            pub fn from_index(index: usize) -> Self {
                $name(index as u32)
            }
        }

        impl fmt::Display for $name {
            fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
                write!(f, concat!($prefix, "{}"), self.0)
            }
        }
    };
}

id_type!(
    /// Identifier of a combinational node within a [`crate::Design`].
    NodeId,
    "n"
);
id_type!(
    /// Identifier of a register within a [`crate::Design`].
    RegId,
    "r"
);
id_type!(
    /// Identifier of a memory within a [`crate::Design`].
    MemId,
    "m"
);
id_type!(
    /// Identifier of a top-level input port within a [`crate::Design`].
    PortId,
    "p"
);
id_type!(
    /// Identifier of a forward-declared wire within a [`crate::Design`].
    WireId,
    "w"
);

/// Unary combinational operators.
#[derive(
    Debug, Clone, Copy, PartialEq, Eq, Hash, serde::Serialize, serde::Deserialize, serde::Blob,
)]
pub enum UnOp {
    /// Bitwise complement within the operand width.
    Not,
    /// Two's-complement negation within the operand width.
    Neg,
    /// AND-reduction to a single bit.
    RedAnd,
    /// OR-reduction to a single bit.
    RedOr,
    /// XOR-reduction (parity) to a single bit.
    RedXor,
}

impl UnOp {
    /// Evaluates the operator on a value of width `w`.
    pub fn eval(self, a: u64, w: Width) -> u64 {
        match self {
            UnOp::Not => mask(!a, w),
            UnOp::Neg => mask(a.wrapping_neg(), w),
            UnOp::RedAnd => u64::from(a == w.mask()),
            UnOp::RedOr => u64::from(a != 0),
            UnOp::RedXor => u64::from(a.count_ones() % 2 == 1),
        }
    }

    /// The width of the result given an operand of width `w`.
    pub fn result_width(self, w: Width) -> Width {
        match self {
            UnOp::Not | UnOp::Neg => w,
            UnOp::RedAnd | UnOp::RedOr | UnOp::RedXor => Width::BIT,
        }
    }
}

/// Binary combinational operators.
///
/// Shifts treat the right operand as an unsigned count and saturate:
/// shifting a `w`-bit value by ≥ `w` yields 0 (or the sign fill for
/// [`BinOp::Sra`]), matching Verilog semantics for self-width shifts.
#[derive(
    Debug, Clone, Copy, PartialEq, Eq, Hash, serde::Serialize, serde::Deserialize, serde::Blob,
)]
pub enum BinOp {
    /// Wrapping addition.
    Add,
    /// Wrapping subtraction.
    Sub,
    /// Wrapping multiplication (low word).
    Mul,
    /// Unsigned division; division by zero yields the all-ones value
    /// (Verilog `x` modelled as all-ones, deterministic).
    DivU,
    /// Unsigned remainder; remainder by zero yields the left operand.
    RemU,
    /// Bitwise AND.
    And,
    /// Bitwise OR.
    Or,
    /// Bitwise XOR.
    Xor,
    /// Logical left shift.
    Shl,
    /// Logical right shift.
    Shr,
    /// Arithmetic right shift (sign of the left operand's width).
    Sra,
    /// Equality, producing one bit.
    Eq,
    /// Inequality, producing one bit.
    Neq,
    /// Unsigned less-than, producing one bit.
    Ltu,
    /// Unsigned less-or-equal, producing one bit.
    Leu,
    /// Signed less-than, producing one bit.
    Lts,
    /// Signed less-or-equal, producing one bit.
    Les,
}

impl BinOp {
    /// Evaluates the operator on operands of width `w` (both operands of a
    /// binary node share a width; see [`crate::Design::binary`]).
    pub fn eval(self, a: u64, b: u64, w: Width) -> u64 {
        match self {
            BinOp::Add => mask(a.wrapping_add(b), w),
            BinOp::Sub => mask(a.wrapping_sub(b), w),
            BinOp::Mul => mask(a.wrapping_mul(b), w),
            // Explicit-check form keeps the deterministic x/0 semantics
            // obvious; checked_div would obscure the `w.mask()` fallback.
            #[allow(clippy::manual_checked_ops)]
            BinOp::DivU => {
                if b == 0 {
                    w.mask()
                } else {
                    mask(a / b, w)
                }
            }
            BinOp::RemU => {
                if b == 0 {
                    a
                } else {
                    mask(a % b, w)
                }
            }
            BinOp::And => a & b,
            BinOp::Or => a | b,
            BinOp::Xor => a ^ b,
            BinOp::Shl => {
                if b >= u64::from(w.bits()) {
                    0
                } else {
                    mask(a << b, w)
                }
            }
            BinOp::Shr => {
                if b >= u64::from(w.bits()) {
                    0
                } else {
                    a >> b
                }
            }
            BinOp::Sra => {
                let sa = sign_extend(a, w);
                let shift = b.min(u64::from(w.bits()) - 1);
                mask((sa >> shift) as u64, w)
            }
            BinOp::Eq => u64::from(a == b),
            BinOp::Neq => u64::from(a != b),
            BinOp::Ltu => u64::from(a < b),
            BinOp::Leu => u64::from(a <= b),
            BinOp::Lts => u64::from(sign_extend(a, w) < sign_extend(b, w)),
            BinOp::Les => u64::from(sign_extend(a, w) <= sign_extend(b, w)),
        }
    }

    /// The width of the result given operands of width `w`.
    pub fn result_width(self, w: Width) -> Width {
        match self {
            BinOp::Eq | BinOp::Neq | BinOp::Ltu | BinOp::Leu | BinOp::Lts | BinOp::Les => {
                Width::BIT
            }
            _ => w,
        }
    }

    /// Whether the result produces a single bit regardless of operand width.
    pub fn is_comparison(self) -> bool {
        self.result_width(Width::W64) == Width::BIT
    }
}

/// A combinational node in the design graph.
///
/// Nodes form a DAG; [`crate::Design::validate`] rejects combinational
/// cycles. The variants correspond one-to-one with the word-level operator
/// set of a lowered hardware IR.
#[derive(Debug, Clone, PartialEq, Eq, serde::Serialize, serde::Deserialize, serde::Blob)]
pub enum Node {
    /// The value of a top-level input port.
    Input(PortId),
    /// A constant.
    Const(u64),
    /// A unary operator.
    Unary {
        /// The operator.
        op: UnOp,
        /// The operand.
        a: NodeId,
    },
    /// A binary operator over same-width operands.
    Binary {
        /// The operator.
        op: BinOp,
        /// Left operand.
        a: NodeId,
        /// Right operand.
        b: NodeId,
    },
    /// A two-way multiplexer: `sel ? t : f`.
    Mux {
        /// One-bit select.
        sel: NodeId,
        /// Value when `sel` is 1.
        t: NodeId,
        /// Value when `sel` is 0.
        f: NodeId,
    },
    /// Bit extraction `a[hi:lo]` (inclusive).
    Slice {
        /// Source value.
        a: NodeId,
        /// High bit index (inclusive).
        hi: u32,
        /// Low bit index (inclusive).
        lo: u32,
    },
    /// Concatenation `{hi, lo}`; `lo` occupies the least significant bits.
    Cat {
        /// Most significant part.
        hi: NodeId,
        /// Least significant part.
        lo: NodeId,
    },
    /// The current value of a register.
    RegOut(RegId),
    /// A forward-declared wire; its driver is registered separately via
    /// [`crate::Design::drive_wire`], enabling feedback-style construction
    /// (e.g. a pipeline stall signal used before it is computed).
    Wire(WireId),
    /// The combinational output of a memory read port.
    MemRead {
        /// The memory.
        mem: MemId,
        /// Index of the read port within the memory.
        port: usize,
    },
}

#[cfg(test)]
mod tests {
    use super::*;

    #[allow(non_snake_case)]
    fn W8() -> Width {
        Width::new(8).unwrap()
    }

    #[test]
    fn unary_semantics() {
        assert_eq!(UnOp::Not.eval(0x0F, W8()), 0xF0);
        assert_eq!(UnOp::Neg.eval(1, W8()), 0xFF);
        assert_eq!(UnOp::RedAnd.eval(0xFF, W8()), 1);
        assert_eq!(UnOp::RedAnd.eval(0xFE, W8()), 0);
        assert_eq!(UnOp::RedOr.eval(0, W8()), 0);
        assert_eq!(UnOp::RedOr.eval(4, W8()), 1);
        assert_eq!(UnOp::RedXor.eval(0b1011, W8()), 1);
        assert_eq!(UnOp::RedXor.eval(0b1010, W8()), 0);
    }

    #[test]
    fn arithmetic_wraps_to_width() {
        assert_eq!(BinOp::Add.eval(0xFF, 1, W8()), 0);
        assert_eq!(BinOp::Sub.eval(0, 1, W8()), 0xFF);
        assert_eq!(BinOp::Mul.eval(0x80, 2, W8()), 0);
    }

    #[test]
    fn division_by_zero_is_deterministic() {
        assert_eq!(BinOp::DivU.eval(42, 0, W8()), 0xFF);
        assert_eq!(BinOp::RemU.eval(42, 0, W8()), 42);
        assert_eq!(BinOp::DivU.eval(42, 5, W8()), 8);
        assert_eq!(BinOp::RemU.eval(42, 5, W8()), 2);
    }

    #[test]
    fn shifts_saturate() {
        assert_eq!(BinOp::Shl.eval(1, 7, W8()), 0x80);
        assert_eq!(BinOp::Shl.eval(1, 8, W8()), 0);
        assert_eq!(BinOp::Shr.eval(0x80, 7, W8()), 1);
        assert_eq!(BinOp::Shr.eval(0x80, 8, W8()), 0);
        assert_eq!(BinOp::Sra.eval(0x80, 3, W8()), 0xF0);
        assert_eq!(BinOp::Sra.eval(0x80, 100, W8()), 0xFF);
        assert_eq!(BinOp::Sra.eval(0x40, 100, W8()), 0);
    }

    #[test]
    fn comparisons() {
        assert_eq!(BinOp::Ltu.eval(0x80, 0x7F, W8()), 0);
        assert_eq!(BinOp::Lts.eval(0x80, 0x7F, W8()), 1); // -128 < 127
        assert_eq!(BinOp::Leu.eval(5, 5, W8()), 1);
        assert_eq!(BinOp::Les.eval(0xFF, 0, W8()), 1); // -1 <= 0
        assert_eq!(BinOp::Eq.eval(3, 3, W8()), 1);
        assert_eq!(BinOp::Neq.eval(3, 4, W8()), 1);
        assert!(BinOp::Eq.is_comparison());
        assert!(!BinOp::Add.is_comparison());
    }

    #[test]
    fn ids_display_with_prefixes() {
        assert_eq!(NodeId(3).to_string(), "n3");
        assert_eq!(RegId(1).to_string(), "r1");
        assert_eq!(MemId(0).to_string(), "m0");
        assert_eq!(PortId(9).to_string(), "p9");
    }
}

//! Topological ordering of the combinational graph.

use crate::design::Design;
use crate::error::RtlError;
use crate::node::{Node, NodeId};

/// A topological evaluation order for a design's combinational nodes.
///
/// Register outputs, inputs and constants are sources; every other node
/// appears after all of its combinational operands (including the address
/// node feeding a memory read port). Both simulators and the synthesizer
/// consume this order.
#[derive(Debug, Clone)]
pub struct TopoOrder {
    order: Vec<NodeId>,
}

impl TopoOrder {
    /// Computes the order with Kahn's algorithm.
    ///
    /// # Errors
    ///
    /// Returns [`RtlError::CombinationalLoop`] if the graph has a cycle.
    pub fn compute(design: &Design) -> Result<Self, RtlError> {
        let n = design.node_count();
        let mut indegree = vec![0u32; n];
        let mut users: Vec<Vec<u32>> = vec![Vec::new(); n];

        let add_edge =
            |from: NodeId, to: usize, users: &mut Vec<Vec<u32>>, indeg: &mut Vec<u32>| {
                users[from.index()].push(to as u32);
                indeg[to] += 1;
            };

        for (id, node, _) in design.nodes() {
            let to = id.index();
            match *node {
                Node::Input(_) | Node::Const(_) | Node::RegOut(_) => {}
                Node::Unary { a, .. } => add_edge(a, to, &mut users, &mut indegree),
                Node::Binary { a, b, .. } => {
                    add_edge(a, to, &mut users, &mut indegree);
                    add_edge(b, to, &mut users, &mut indegree);
                }
                Node::Mux { sel, t, f } => {
                    add_edge(sel, to, &mut users, &mut indegree);
                    add_edge(t, to, &mut users, &mut indegree);
                    add_edge(f, to, &mut users, &mut indegree);
                }
                Node::Slice { a, .. } => add_edge(a, to, &mut users, &mut indegree),
                Node::Cat { hi, lo } => {
                    add_edge(hi, to, &mut users, &mut indegree);
                    add_edge(lo, to, &mut users, &mut indegree);
                }
                Node::MemRead { mem, port } => {
                    let addr = design.memory(mem).read_ports()[port].addr();
                    add_edge(addr, to, &mut users, &mut indegree);
                }
                Node::Wire(wid) => {
                    // An undriven wire is caught by validation; for ordering
                    // purposes treat it as a source.
                    if let Some(driver) = design.wire_driver(wid) {
                        add_edge(driver, to, &mut users, &mut indegree);
                    }
                }
            }
        }

        let mut queue: Vec<u32> = (0..n as u32)
            .filter(|&i| indegree[i as usize] == 0)
            .collect();
        let mut order = Vec::with_capacity(n);
        let mut head = 0;
        while head < queue.len() {
            let v = queue[head];
            head += 1;
            order.push(NodeId::from_index(v as usize));
            for &u in &users[v as usize] {
                indegree[u as usize] -= 1;
                if indegree[u as usize] == 0 {
                    queue.push(u);
                }
            }
        }

        if order.len() != n {
            // Find a node still carrying in-degree to report a hint.
            let stuck = indegree
                .iter()
                .position(|&d| d > 0)
                .map(|i| NodeId::from_index(i).to_string())
                .unwrap_or_else(|| "unknown".to_owned());
            return Err(RtlError::CombinationalLoop { hint: stuck });
        }
        Ok(TopoOrder { order })
    }

    /// The node ids in evaluation order.
    pub fn as_slice(&self) -> &[NodeId] {
        &self.order
    }

    /// Iterates over the node ids in evaluation order.
    pub fn iter(&self) -> impl Iterator<Item = NodeId> + '_ {
        self.order.iter().copied()
    }

    /// The number of ordered nodes.
    pub fn len(&self) -> usize {
        self.order.len()
    }

    /// Whether the design had no nodes at all.
    pub fn is_empty(&self) -> bool {
        self.order.is_empty()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::value::Width;

    #[test]
    fn order_respects_dependencies() {
        let mut d = Design::new("t");
        let w8 = Width::new(8).unwrap();
        let a = d.input("a", w8).unwrap();
        let b = d.input("b", w8).unwrap();
        let s = d.add(a, b).unwrap();
        let n = d.not(s);
        d.output("o", n).unwrap();
        let topo = d.topo_order().unwrap();
        let pos = |id: NodeId| topo.as_slice().iter().position(|&x| x == id).unwrap();
        assert!(pos(a) < pos(s));
        assert!(pos(b) < pos(s));
        assert!(pos(s) < pos(n));
        assert_eq!(topo.len(), d.node_count());
        assert!(!topo.is_empty());
    }

    #[test]
    fn empty_design_is_fine() {
        let d = Design::new("empty");
        let topo = d.topo_order().unwrap();
        assert!(topo.is_empty());
    }
}

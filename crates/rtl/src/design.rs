//! The [`Design`] container and its construction API.

use crate::error::RtlError;
use crate::node::{BinOp, MemId, Node, NodeId, PortId, RegId, UnOp, WireId};
use crate::topo::TopoOrder;
use crate::value::Width;
use std::collections::HashSet;
use std::fmt;

/// A named top-level input.
#[derive(Debug, Clone, PartialEq, Eq, serde::Serialize, serde::Deserialize, serde::Blob)]
pub struct Port {
    name: String,
    width: Width,
    id: PortId,
}

impl Port {
    /// The port's name.
    pub fn name(&self) -> &str {
        &self.name
    }

    /// The port's width.
    pub fn width(&self) -> Width {
        self.width
    }

    /// The port's id.
    pub fn id(&self) -> PortId {
        self.id
    }
}

/// A positive-edge register.
#[derive(Debug, Clone, PartialEq, Eq, serde::Serialize, serde::Deserialize, serde::Blob)]
pub struct Register {
    name: String,
    width: Width,
    init: u64,
    next: Option<NodeId>,
    enable: Option<NodeId>,
}

impl Register {
    /// The register's hierarchical name.
    pub fn name(&self) -> &str {
        &self.name
    }

    /// The register's width.
    pub fn width(&self) -> Width {
        self.width
    }

    /// The reset value.
    pub fn init(&self) -> u64 {
        self.init
    }

    /// The node driving the register's next value, once connected.
    pub fn next(&self) -> Option<NodeId> {
        self.next
    }

    /// The one-bit enable node, if the register is enable-gated.
    pub fn enable(&self) -> Option<NodeId> {
        self.enable
    }
}

/// A combinational memory read port.
#[derive(Debug, Clone, Copy, PartialEq, Eq, serde::Serialize, serde::Deserialize, serde::Blob)]
pub struct MemReadPort {
    addr: NodeId,
}

impl MemReadPort {
    /// The node supplying the read address.
    pub fn addr(&self) -> NodeId {
        self.addr
    }
}

/// A clocked memory write port.
#[derive(Debug, Clone, Copy, PartialEq, Eq, serde::Serialize, serde::Deserialize, serde::Blob)]
pub struct WritePort {
    addr: NodeId,
    data: NodeId,
    enable: NodeId,
}

impl WritePort {
    /// The node supplying the write address.
    pub fn addr(&self) -> NodeId {
        self.addr
    }

    /// The node supplying the write data.
    pub fn data(&self) -> NodeId {
        self.data
    }

    /// The one-bit write enable node.
    pub fn enable(&self) -> NodeId {
        self.enable
    }
}

/// A word-addressed RAM with combinational reads and clocked writes.
#[derive(Debug, Clone, PartialEq, Eq, serde::Serialize, serde::Deserialize, serde::Blob)]
pub struct Memory {
    name: String,
    width: Width,
    depth: usize,
    init: Vec<u64>,
    read_ports: Vec<MemReadPort>,
    write_ports: Vec<WritePort>,
}

impl Memory {
    /// The memory's hierarchical name.
    pub fn name(&self) -> &str {
        &self.name
    }

    /// The word width.
    pub fn width(&self) -> Width {
        self.width
    }

    /// The number of words.
    pub fn depth(&self) -> usize {
        self.depth
    }

    /// Initial contents (empty means all zeros).
    pub fn init(&self) -> &[u64] {
        &self.init
    }

    /// The address width required by this memory's ports.
    pub fn addr_width(&self) -> Width {
        Width::for_depth(self.depth).expect("depth validated at construction")
    }

    /// The read ports.
    pub fn read_ports(&self) -> &[MemReadPort] {
        &self.read_ports
    }

    /// The write ports.
    pub fn write_ports(&self) -> &[WritePort] {
        &self.write_ports
    }

    /// Total state bits held by this memory.
    pub fn state_bits(&self) -> u64 {
        self.depth as u64 * u64::from(self.width.bits())
    }
}

/// A flat, word-level RTL design.
///
/// See the [crate-level documentation](crate) for the data model and an
/// example.
#[derive(Debug, Clone, serde::Serialize, serde::Deserialize, serde::Blob)]
pub struct Design {
    name: String,
    nodes: Vec<(Node, Width)>,
    ports: Vec<Port>,
    registers: Vec<Register>,
    memories: Vec<Memory>,
    outputs: Vec<(String, NodeId)>,
    wires: Vec<Option<NodeId>>,
    names: HashSet<String>,
}

impl Design {
    /// Creates an empty design.
    pub fn new(name: impl Into<String>) -> Self {
        Design {
            name: name.into(),
            nodes: Vec::new(),
            ports: Vec::new(),
            registers: Vec::new(),
            memories: Vec::new(),
            outputs: Vec::new(),
            wires: Vec::new(),
            names: HashSet::new(),
        }
    }

    /// The design's name.
    pub fn name(&self) -> &str {
        &self.name
    }

    fn claim_name(&mut self, name: &str) -> Result<(), RtlError> {
        if !self.names.insert(name.to_owned()) {
            return Err(RtlError::DuplicateName {
                name: name.to_owned(),
            });
        }
        Ok(())
    }

    fn push_node(&mut self, node: Node, width: Width) -> NodeId {
        let id = NodeId(self.nodes.len() as u32);
        self.nodes.push((node, width));
        id
    }

    /// Looks up a node.
    ///
    /// # Panics
    ///
    /// Panics if `id` is not a node of this design.
    pub fn node(&self, id: NodeId) -> &Node {
        &self.nodes[id.index()].0
    }

    /// The width of a node's value.
    ///
    /// # Panics
    ///
    /// Panics if `id` is not a node of this design.
    pub fn width(&self, id: NodeId) -> Width {
        self.nodes[id.index()].1
    }

    /// Iterates over all nodes in creation order.
    pub fn nodes(&self) -> impl Iterator<Item = (NodeId, &Node, Width)> {
        self.nodes
            .iter()
            .enumerate()
            .map(|(i, (n, w))| (NodeId(i as u32), n, *w))
    }

    /// The number of nodes.
    pub fn node_count(&self) -> usize {
        self.nodes.len()
    }

    // ---- ports ----------------------------------------------------------

    /// Declares a top-level input and returns the node carrying its value.
    ///
    /// # Errors
    ///
    /// Returns [`RtlError::DuplicateName`] if `name` is already used.
    pub fn input(&mut self, name: impl Into<String>, width: Width) -> Result<NodeId, RtlError> {
        let name = name.into();
        self.claim_name(&name)?;
        let id = PortId(self.ports.len() as u32);
        self.ports.push(Port { name, width, id });
        Ok(self.push_node(Node::Input(id), width))
    }

    /// Declares a named top-level output driven by `node`.
    ///
    /// # Errors
    ///
    /// Returns [`RtlError::DuplicateName`] if `name` is already used.
    pub fn output(&mut self, name: impl Into<String>, node: NodeId) -> Result<(), RtlError> {
        let name = name.into();
        self.claim_name(&name)?;
        self.outputs.push((name, node));
        Ok(())
    }

    /// The input ports, in declaration order.
    pub fn ports(&self) -> &[Port] {
        &self.ports
    }

    /// Finds an input port by name.
    pub fn port_by_name(&self, name: &str) -> Option<&Port> {
        self.ports.iter().find(|p| p.name == name)
    }

    /// The outputs, in declaration order.
    pub fn outputs(&self) -> &[(String, NodeId)] {
        &self.outputs
    }

    /// Finds an output by name.
    pub fn output_by_name(&self, name: &str) -> Option<NodeId> {
        self.outputs
            .iter()
            .find(|(n, _)| n == name)
            .map(|&(_, id)| id)
    }

    // ---- combinational nodes --------------------------------------------

    /// A constant of the given width.
    ///
    /// # Panics
    ///
    /// Panics if `value` does not fit in `width` bits; constants are always
    /// produced by generator code, where this is a programming error.
    pub fn constant(&mut self, value: u64, width: Width) -> NodeId {
        assert!(
            value <= width.mask(),
            "constant {value:#x} does not fit in {width}"
        );
        self.push_node(Node::Const(value), width)
    }

    /// Applies a unary operator.
    pub fn unary(&mut self, op: UnOp, a: NodeId) -> NodeId {
        let w = self.width(a);
        self.push_node(Node::Unary { op, a }, op.result_width(w))
    }

    /// Applies a binary operator.
    ///
    /// # Errors
    ///
    /// Returns [`RtlError::WidthMismatch`] unless both operands have the
    /// same width.
    pub fn binary(&mut self, op: BinOp, a: NodeId, b: NodeId) -> Result<NodeId, RtlError> {
        let (wa, wb) = (self.width(a), self.width(b));
        if wa != wb {
            return Err(RtlError::WidthMismatch {
                context: "binary operator",
                left: wa.bits(),
                right: wb.bits(),
            });
        }
        Ok(self.push_node(Node::Binary { op, a, b }, op.result_width(wa)))
    }

    /// Two-way multiplexer `sel ? t : f`.
    ///
    /// # Errors
    ///
    /// Returns [`RtlError::WidthMismatch`] unless `sel` is one bit wide and
    /// `t`, `f` share a width.
    pub fn mux(&mut self, sel: NodeId, t: NodeId, f: NodeId) -> Result<NodeId, RtlError> {
        if self.width(sel) != Width::BIT {
            return Err(RtlError::WidthMismatch {
                context: "mux select",
                left: self.width(sel).bits(),
                right: 1,
            });
        }
        let (wt, wf) = (self.width(t), self.width(f));
        if wt != wf {
            return Err(RtlError::WidthMismatch {
                context: "mux arms",
                left: wt.bits(),
                right: wf.bits(),
            });
        }
        Ok(self.push_node(Node::Mux { sel, t, f }, wt))
    }

    /// Bit slice `a[hi:lo]` (inclusive).
    ///
    /// # Errors
    ///
    /// Returns [`RtlError::InvalidSlice`] when the range is empty or out of
    /// bounds.
    pub fn slice(&mut self, a: NodeId, hi: u32, lo: u32) -> Result<NodeId, RtlError> {
        let w = self.width(a);
        if hi < lo || hi >= w.bits() {
            return Err(RtlError::InvalidSlice {
                hi,
                lo,
                width: w.bits(),
            });
        }
        let width = Width::new(hi - lo + 1)?;
        Ok(self.push_node(Node::Slice { a, hi, lo }, width))
    }

    /// Concatenation `{hi, lo}`.
    ///
    /// # Errors
    ///
    /// Returns [`RtlError::CatTooWide`] when the result exceeds 64 bits.
    pub fn cat(&mut self, hi: NodeId, lo: NodeId) -> Result<NodeId, RtlError> {
        let total = self.width(hi).bits() + self.width(lo).bits();
        let width = Width::new(total).map_err(|_| RtlError::CatTooWide { total })?;
        Ok(self.push_node(Node::Cat { hi, lo }, width))
    }

    // ---- convenience wrappers --------------------------------------------

    /// Wrapping addition (see [`BinOp::Add`]).
    ///
    /// # Errors
    ///
    /// Propagates width mismatches from [`Design::binary`].
    pub fn add(&mut self, a: NodeId, b: NodeId) -> Result<NodeId, RtlError> {
        self.binary(BinOp::Add, a, b)
    }

    /// Bitwise AND (see [`BinOp::And`]).
    ///
    /// # Errors
    ///
    /// Propagates width mismatches from [`Design::binary`].
    pub fn and(&mut self, a: NodeId, b: NodeId) -> Result<NodeId, RtlError> {
        self.binary(BinOp::And, a, b)
    }

    /// Bitwise OR (see [`BinOp::Or`]).
    ///
    /// # Errors
    ///
    /// Propagates width mismatches from [`Design::binary`].
    pub fn or(&mut self, a: NodeId, b: NodeId) -> Result<NodeId, RtlError> {
        self.binary(BinOp::Or, a, b)
    }

    /// Bitwise complement (see [`UnOp::Not`]).
    pub fn not(&mut self, a: NodeId) -> NodeId {
        self.unary(UnOp::Not, a)
    }

    // ---- wires --------------------------------------------------------------

    /// Declares a forward-reference wire of the given width and returns the
    /// node carrying its (eventual) value.
    ///
    /// The wire must be driven exactly once with [`Design::drive_wire`]
    /// before validation.
    pub fn wire(&mut self, width: Width) -> NodeId {
        let id = WireId(self.wires.len() as u32);
        self.wires.push(None);
        self.push_node(Node::Wire(id), width)
    }

    /// Connects the driver of a wire created with [`Design::wire`].
    ///
    /// # Errors
    ///
    /// Returns [`RtlError::DanglingId`] if `wire` is not a wire node,
    /// [`RtlError::RegisterConnection`] if it is already driven, or
    /// [`RtlError::WidthMismatch`] on width errors.
    pub fn drive_wire(&mut self, wire: NodeId, src: NodeId) -> Result<(), RtlError> {
        let Node::Wire(wid) = *self.node(wire) else {
            return Err(RtlError::DanglingId { what: "wire node" });
        };
        if self.width(wire) != self.width(src) {
            return Err(RtlError::WidthMismatch {
                context: "wire driver",
                left: self.width(wire).bits(),
                right: self.width(src).bits(),
            });
        }
        let slot = &mut self.wires[wid.index()];
        if slot.is_some() {
            return Err(RtlError::RegisterConnection {
                name: wid.to_string(),
                problem: "wire already driven",
            });
        }
        *slot = Some(src);
        Ok(())
    }

    /// The driver of a wire, if connected.
    pub fn wire_driver(&self, wire: WireId) -> Option<NodeId> {
        self.wires.get(wire.index()).copied().flatten()
    }

    // ---- registers --------------------------------------------------------

    /// Declares a register with a reset value; connect its input later with
    /// [`Design::connect_reg`].
    ///
    /// # Errors
    ///
    /// Returns [`RtlError::DuplicateName`] on a name clash or
    /// [`RtlError::ConstantTooWide`] if `init` does not fit.
    pub fn reg(
        &mut self,
        name: impl Into<String>,
        width: Width,
        init: u64,
    ) -> Result<RegId, RtlError> {
        let name = name.into();
        if init > width.mask() {
            return Err(RtlError::ConstantTooWide {
                value: init,
                width: width.bits(),
            });
        }
        self.claim_name(&name)?;
        let id = RegId(self.registers.len() as u32);
        self.registers.push(Register {
            name,
            width,
            init,
            next: None,
            enable: None,
        });
        Ok(id)
    }

    /// The node carrying a register's current value.
    pub fn reg_out(&mut self, reg: RegId) -> NodeId {
        let width = self.registers[reg.index()].width;
        self.push_node(Node::RegOut(reg), width)
    }

    /// Connects a register's next-value input, optionally gated by a
    /// one-bit enable.
    ///
    /// # Errors
    ///
    /// Returns [`RtlError::RegisterConnection`] if already connected, or
    /// [`RtlError::WidthMismatch`] on width errors.
    pub fn connect_reg(
        &mut self,
        reg: RegId,
        next: NodeId,
        enable: Option<NodeId>,
    ) -> Result<(), RtlError> {
        if self.registers[reg.index()].next.is_some() {
            return Err(RtlError::RegisterConnection {
                name: self.registers[reg.index()].name.clone(),
                problem: "already connected",
            });
        }
        self.reconnect_reg(reg, next, enable)
    }

    /// Reconnects a register's input, replacing any existing connection.
    ///
    /// This is the mutation hook used by compiler passes (e.g. the FAME1
    /// transform gating every register with the global `fire` signal).
    ///
    /// # Errors
    ///
    /// Returns [`RtlError::WidthMismatch`] when the next value's width does
    /// not match the register or the enable is not one bit.
    pub fn reconnect_reg(
        &mut self,
        reg: RegId,
        next: NodeId,
        enable: Option<NodeId>,
    ) -> Result<(), RtlError> {
        let rw = self.registers[reg.index()].width;
        if self.width(next) != rw {
            return Err(RtlError::WidthMismatch {
                context: "register next value",
                left: rw.bits(),
                right: self.width(next).bits(),
            });
        }
        if let Some(en) = enable {
            if self.width(en) != Width::BIT {
                return Err(RtlError::WidthMismatch {
                    context: "register enable",
                    left: self.width(en).bits(),
                    right: 1,
                });
            }
        }
        let r = &mut self.registers[reg.index()];
        r.next = Some(next);
        r.enable = enable;
        Ok(())
    }

    /// The registers, in declaration order.
    pub fn registers(&self) -> impl Iterator<Item = (RegId, &Register)> {
        self.registers
            .iter()
            .enumerate()
            .map(|(i, r)| (RegId(i as u32), r))
    }

    /// Looks up a register.
    ///
    /// # Panics
    ///
    /// Panics if `reg` is not a register of this design.
    pub fn register(&self, reg: RegId) -> &Register {
        &self.registers[reg.index()]
    }

    /// The number of registers.
    pub fn register_count(&self) -> usize {
        self.registers.len()
    }

    // ---- memories ----------------------------------------------------------

    /// Declares a memory of `depth` words of `width` bits, with optional
    /// initial contents.
    ///
    /// # Errors
    ///
    /// Returns [`RtlError::InvalidMemory`] for a zero or over-large depth or
    /// oversized initial image, and [`RtlError::DuplicateName`] on a name
    /// clash.
    pub fn mem(
        &mut self,
        name: impl Into<String>,
        width: Width,
        depth: usize,
        init: Vec<u64>,
    ) -> Result<MemId, RtlError> {
        let name = name.into();
        if depth < 2 {
            return Err(RtlError::InvalidMemory {
                name,
                problem: "depth must be at least 2",
            });
        }
        if depth > (1 << 30) {
            return Err(RtlError::InvalidMemory {
                name,
                problem: "depth exceeds 2^30 words",
            });
        }
        if init.len() > depth {
            return Err(RtlError::InvalidMemory {
                name,
                problem: "initial image longer than the memory",
            });
        }
        if init.iter().any(|&v| v > width.mask()) {
            return Err(RtlError::InvalidMemory {
                name,
                problem: "initial value does not fit the word width",
            });
        }
        self.claim_name(&name)?;
        let id = MemId(self.memories.len() as u32);
        self.memories.push(Memory {
            name,
            width,
            depth,
            init,
            read_ports: Vec::new(),
            write_ports: Vec::new(),
        });
        Ok(id)
    }

    /// Adds a combinational read port and returns the node carrying the
    /// read data.
    ///
    /// # Errors
    ///
    /// Returns [`RtlError::WidthMismatch`] unless `addr` has exactly the
    /// memory's address width.
    pub fn mem_read(&mut self, mem: MemId, addr: NodeId) -> Result<NodeId, RtlError> {
        let m = &self.memories[mem.index()];
        let (aw, dw) = (m.addr_width(), m.width);
        if self.width(addr) != aw {
            return Err(RtlError::WidthMismatch {
                context: "memory read address",
                left: aw.bits(),
                right: self.width(addr).bits(),
            });
        }
        let port = self.memories[mem.index()].read_ports.len();
        self.memories[mem.index()]
            .read_ports
            .push(MemReadPort { addr });
        Ok(self.push_node(Node::MemRead { mem, port }, dw))
    }

    /// Adds a clocked write port.
    ///
    /// # Errors
    ///
    /// Returns [`RtlError::WidthMismatch`] on address/data/enable width
    /// errors.
    pub fn mem_write(
        &mut self,
        mem: MemId,
        addr: NodeId,
        data: NodeId,
        enable: NodeId,
    ) -> Result<(), RtlError> {
        let m = &self.memories[mem.index()];
        let (aw, dw) = (m.addr_width(), m.width);
        if self.width(addr) != aw {
            return Err(RtlError::WidthMismatch {
                context: "memory write address",
                left: aw.bits(),
                right: self.width(addr).bits(),
            });
        }
        if self.width(data) != dw {
            return Err(RtlError::WidthMismatch {
                context: "memory write data",
                left: dw.bits(),
                right: self.width(data).bits(),
            });
        }
        if self.width(enable) != Width::BIT {
            return Err(RtlError::WidthMismatch {
                context: "memory write enable",
                left: self.width(enable).bits(),
                right: 1,
            });
        }
        self.memories[mem.index()]
            .write_ports
            .push(WritePort { addr, data, enable });
        Ok(())
    }

    /// Replaces the address node of an existing read port.
    ///
    /// Used by the scan-chain transform, which borrows a read port's address
    /// bus while the simulation is stalled (§IV-B2 of the paper).
    ///
    /// # Errors
    ///
    /// Returns [`RtlError::DanglingId`] for an unknown port and
    /// [`RtlError::WidthMismatch`] for a mis-sized address.
    pub fn set_read_port_addr(
        &mut self,
        mem: MemId,
        port: usize,
        addr: NodeId,
    ) -> Result<(), RtlError> {
        let aw = self.memories[mem.index()].addr_width();
        if self.width(addr) != aw {
            return Err(RtlError::WidthMismatch {
                context: "memory read address",
                left: aw.bits(),
                right: self.width(addr).bits(),
            });
        }
        let m = &mut self.memories[mem.index()];
        let p = m.read_ports.get_mut(port).ok_or(RtlError::DanglingId {
            what: "memory read port",
        })?;
        p.addr = addr;
        Ok(())
    }

    /// Replaces the enable node of an existing write port.
    ///
    /// Used by the FAME1 transform to gate memory writes with the global
    /// `fire` signal.
    ///
    /// # Errors
    ///
    /// Returns [`RtlError::DanglingId`] for an unknown port and
    /// [`RtlError::WidthMismatch`] for a non-1-bit enable.
    pub fn set_write_port_enable(
        &mut self,
        mem: MemId,
        port: usize,
        enable: NodeId,
    ) -> Result<(), RtlError> {
        if self.width(enable) != Width::BIT {
            return Err(RtlError::WidthMismatch {
                context: "memory write enable",
                left: self.width(enable).bits(),
                right: 1,
            });
        }
        let m = &mut self.memories[mem.index()];
        let p = m.write_ports.get_mut(port).ok_or(RtlError::DanglingId {
            what: "memory write port",
        })?;
        p.enable = enable;
        Ok(())
    }

    /// The memories, in declaration order.
    pub fn memories(&self) -> impl Iterator<Item = (MemId, &Memory)> {
        self.memories
            .iter()
            .enumerate()
            .map(|(i, m)| (MemId(i as u32), m))
    }

    /// Looks up a memory.
    ///
    /// # Panics
    ///
    /// Panics if `mem` is not a memory of this design.
    pub fn memory(&self, mem: MemId) -> &Memory {
        &self.memories[mem.index()]
    }

    /// The number of memories.
    pub fn memory_count(&self) -> usize {
        self.memories.len()
    }

    // ---- analysis -----------------------------------------------------------

    /// Total architectural state bits (registers plus memories); determines
    /// snapshot size and scan-chain readout time.
    pub fn state_bits(&self) -> u64 {
        let regs: u64 = self
            .registers
            .iter()
            .map(|r| u64::from(r.width.bits()))
            .sum();
        let mems: u64 = self.memories.iter().map(Memory::state_bits).sum();
        regs + mems
    }

    /// Computes a topological order of the combinational graph.
    ///
    /// # Errors
    ///
    /// Returns [`RtlError::CombinationalLoop`] when the graph has a cycle.
    pub fn topo_order(&self) -> Result<TopoOrder, RtlError> {
        TopoOrder::compute(self)
    }

    /// Validates the design: all registers connected, all ids in range and
    /// widths consistent, and no combinational loops.
    ///
    /// # Errors
    ///
    /// Returns the first problem found.
    pub fn validate(&self) -> Result<(), RtlError> {
        for r in &self.registers {
            let next = r.next.ok_or_else(|| RtlError::RegisterConnection {
                name: r.name.clone(),
                problem: "never connected",
            })?;
            if self.width(next) != r.width {
                return Err(RtlError::WidthMismatch {
                    context: "register next value",
                    left: r.width.bits(),
                    right: self.width(next).bits(),
                });
            }
        }
        for (id, node, width) in self.nodes() {
            let _ = id;
            match *node {
                Node::Binary { op, a, b } => {
                    if self.width(a) != self.width(b) {
                        return Err(RtlError::WidthMismatch {
                            context: "binary operator",
                            left: self.width(a).bits(),
                            right: self.width(b).bits(),
                        });
                    }
                    if op.result_width(self.width(a)) != width {
                        return Err(RtlError::WidthMismatch {
                            context: "binary result",
                            left: width.bits(),
                            right: op.result_width(self.width(a)).bits(),
                        });
                    }
                }
                Node::Mux { sel, t, f }
                    if (self.width(sel) != Width::BIT || self.width(t) != self.width(f)) =>
                {
                    return Err(RtlError::WidthMismatch {
                        context: "mux",
                        left: self.width(t).bits(),
                        right: self.width(f).bits(),
                    });
                }
                Node::Slice { a, hi, lo } if (hi < lo || hi >= self.width(a).bits()) => {
                    return Err(RtlError::InvalidSlice {
                        hi,
                        lo,
                        width: self.width(a).bits(),
                    });
                }
                Node::Wire(wid) => {
                    let driver =
                        self.wires[wid.index()].ok_or_else(|| RtlError::RegisterConnection {
                            name: wid.to_string(),
                            problem: "wire never driven",
                        })?;
                    if self.width(driver) != width {
                        return Err(RtlError::WidthMismatch {
                            context: "wire driver",
                            left: width.bits(),
                            right: self.width(driver).bits(),
                        });
                    }
                }
                _ => {}
            }
        }
        self.topo_order().map(|_| ())
    }
}

impl fmt::Display for Design {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(
            f,
            "design {} ({} nodes, {} regs, {} mems, {} state bits)",
            self.name,
            self.nodes.len(),
            self.registers.len(),
            self.memories.len(),
            self.state_bits()
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::value::Width;

    fn w(bits: u32) -> Width {
        Width::new(bits).unwrap()
    }

    #[test]
    fn counter_builds_and_validates() {
        let mut d = Design::new("counter");
        let en = d.input("en", Width::BIT).unwrap();
        let r = d.reg("count", w(8), 0).unwrap();
        let q = d.reg_out(r);
        let one = d.constant(1, w(8));
        let next = d.add(q, one).unwrap();
        d.connect_reg(r, next, Some(en)).unwrap();
        d.output("value", q).unwrap();
        d.validate().unwrap();
        assert_eq!(d.state_bits(), 8);
    }

    #[test]
    fn duplicate_names_rejected() {
        let mut d = Design::new("t");
        d.input("x", Width::BIT).unwrap();
        assert!(matches!(
            d.input("x", Width::BIT),
            Err(RtlError::DuplicateName { .. })
        ));
        let n = d.constant(0, Width::BIT);
        d.output("y", n).unwrap();
        assert!(matches!(
            d.output("y", n),
            Err(RtlError::DuplicateName { .. })
        ));
    }

    #[test]
    fn unconnected_register_fails_validation() {
        let mut d = Design::new("t");
        let r = d.reg("r", w(4), 0).unwrap();
        let _ = d.reg_out(r);
        assert!(matches!(
            d.validate(),
            Err(RtlError::RegisterConnection { .. })
        ));
    }

    #[test]
    fn double_connect_rejected_but_reconnect_allowed() {
        let mut d = Design::new("t");
        let r = d.reg("r", w(4), 0).unwrap();
        let c = d.constant(3, w(4));
        d.connect_reg(r, c, None).unwrap();
        assert!(d.connect_reg(r, c, None).is_err());
        d.reconnect_reg(r, c, None).unwrap();
        d.validate().unwrap();
    }

    #[test]
    fn width_mismatch_detected() {
        let mut d = Design::new("t");
        let a = d.constant(1, w(4));
        let b = d.constant(1, w(8));
        assert!(matches!(d.add(a, b), Err(RtlError::WidthMismatch { .. })));
        assert!(d.mux(a, b, b).is_err()); // select must be 1 bit
    }

    #[test]
    fn slice_and_cat() {
        let mut d = Design::new("t");
        let a = d.constant(0xAB, w(8));
        let hi = d.slice(a, 7, 4).unwrap();
        let lo = d.slice(a, 3, 0).unwrap();
        assert_eq!(d.width(hi), w(4));
        let back = d.cat(hi, lo).unwrap();
        assert_eq!(d.width(back), w(8));
        assert!(d.slice(a, 8, 0).is_err());
        assert!(d.slice(a, 2, 3).is_err());
    }

    #[test]
    fn cat_over_64_bits_rejected() {
        let mut d = Design::new("t");
        let a = d.constant(0, Width::W64);
        let b = d.constant(0, Width::BIT);
        assert!(matches!(d.cat(a, b), Err(RtlError::CatTooWide { .. })));
    }

    #[test]
    fn memory_ports_check_widths() {
        let mut d = Design::new("t");
        let m = d.mem("ram", w(16), 256, vec![]).unwrap();
        let addr = d.constant(3, w(8));
        let rd = d.mem_read(m, addr).unwrap();
        assert_eq!(d.width(rd), w(16));
        let bad_addr = d.constant(0, w(4));
        assert!(d.mem_read(m, bad_addr).is_err());
        let data = d.constant(7, w(16));
        let en = d.constant(1, Width::BIT);
        d.mem_write(m, addr, data, en).unwrap();
        assert_eq!(d.memory(m).write_ports().len(), 1);
        assert_eq!(d.memory(m).state_bits(), 256 * 16);
    }

    #[test]
    fn memory_invalid_params_rejected() {
        let mut d = Design::new("t");
        assert!(d.mem("a", w(8), 1, vec![]).is_err());
        assert!(d.mem("b", w(8), 4, vec![0; 5]).is_err());
        assert!(d.mem("c", w(8), 4, vec![0x100]).is_err());
    }

    #[test]
    fn combinational_loop_detected() {
        let mut d = Design::new("t");
        let r = d.reg("r", Width::BIT, 0).unwrap();
        let q = d.reg_out(r);
        // Build a = a & q by forging an id cycle through reconnect: use two
        // muxes wired to each other via the public API is impossible, so
        // use a memory read port whose address depends on its own output.
        let m = d.mem("ram", Width::BIT, 2, vec![]).unwrap();
        let rd = d.mem_read(m, q).unwrap(); // placeholder addr
        d.set_read_port_addr(m, 0, rd).unwrap(); // now rd depends on itself
        d.connect_reg(r, rd, None).unwrap();
        assert!(matches!(
            d.validate(),
            Err(RtlError::CombinationalLoop { .. })
        ));
    }

    #[test]
    fn reg_init_must_fit() {
        let mut d = Design::new("t");
        assert!(matches!(
            d.reg("r", w(4), 16),
            Err(RtlError::ConstantTooWide { .. })
        ));
    }

    #[test]
    #[should_panic(expected = "does not fit")]
    fn constant_too_wide_panics() {
        let mut d = Design::new("t");
        let _ = d.constant(0x100, w(8));
    }

    #[test]
    fn wires_enable_forward_references() {
        let mut d = Design::new("t");
        let stall = d.wire(Width::BIT);
        let r = d.reg("pc", w(8), 0).unwrap();
        let q = d.reg_out(r);
        let one = d.constant(1, w(8));
        let inc = d.add(q, one).unwrap();
        let not_stall = d.not(stall);
        d.connect_reg(r, inc, Some(not_stall)).unwrap();
        // Drive the stall wire after its uses.
        let sense = d.slice(q, 7, 7).unwrap();
        d.drive_wire(stall, sense).unwrap();
        d.validate().unwrap();
    }

    #[test]
    fn undriven_wire_fails_validation() {
        let mut d = Design::new("t");
        let wv = d.wire(w(4));
        d.output("o", wv).unwrap();
        assert!(matches!(
            d.validate(),
            Err(RtlError::RegisterConnection { .. })
        ));
    }

    #[test]
    fn wire_driver_width_and_double_drive_checked() {
        let mut d = Design::new("t");
        let wv = d.wire(w(4));
        let bad = d.constant(0, w(5));
        assert!(d.drive_wire(wv, bad).is_err());
        let good = d.constant(3, w(4));
        d.drive_wire(wv, good).unwrap();
        assert!(d.drive_wire(wv, good).is_err());
        let not_a_wire = d.constant(0, w(4));
        assert!(d.drive_wire(not_a_wire, good).is_err());
    }

    #[test]
    fn wire_cycle_detected() {
        let mut d = Design::new("t");
        let wv = d.wire(Width::BIT);
        let n = d.not(wv);
        d.drive_wire(wv, n).unwrap();
        assert!(matches!(
            d.validate(),
            Err(RtlError::CombinationalLoop { .. })
        ));
    }

    #[test]
    fn lookup_by_name() {
        let mut d = Design::new("t");
        let x = d.input("x", w(2)).unwrap();
        d.output("y", x).unwrap();
        assert_eq!(d.port_by_name("x").unwrap().width(), w(2));
        assert_eq!(d.output_by_name("y"), Some(x));
        assert!(d.port_by_name("z").is_none());
        assert!(d.output_by_name("z").is_none());
    }
}

use std::error::Error;
use std::fmt;

/// Errors produced when constructing or validating a design.
#[derive(Debug, Clone, PartialEq, Eq)]
#[non_exhaustive]
pub enum RtlError {
    /// A width outside `1..=64` was requested.
    InvalidWidth {
        /// The requested number of bits.
        bits: u32,
    },
    /// Two operands of a binary operator have different widths.
    WidthMismatch {
        /// Context describing the operation.
        context: &'static str,
        /// Width of the left-hand side in bits.
        left: u32,
        /// Width of the right-hand side in bits.
        right: u32,
    },
    /// A slice's bit range is invalid or exceeds the operand width.
    InvalidSlice {
        /// High bit index requested.
        hi: u32,
        /// Low bit index requested.
        lo: u32,
        /// Width of the operand being sliced.
        width: u32,
    },
    /// A concatenation would exceed 64 bits.
    CatTooWide {
        /// Total width that was requested.
        total: u32,
    },
    /// A name is already in use for a port or output.
    DuplicateName {
        /// The clashing name.
        name: String,
    },
    /// A register was connected twice, or never connected.
    RegisterConnection {
        /// The register's name.
        name: String,
        /// What went wrong.
        problem: &'static str,
    },
    /// The combinational graph contains a cycle.
    CombinationalLoop {
        /// Name of a signal participating in the cycle, if known.
        hint: String,
    },
    /// A constant does not fit in the requested width.
    ConstantTooWide {
        /// The constant value.
        value: u64,
        /// The requested width in bits.
        width: u32,
    },
    /// A memory parameter was invalid.
    InvalidMemory {
        /// The memory's name.
        name: String,
        /// What went wrong.
        problem: &'static str,
    },
    /// An id referred to an element that does not exist in this design.
    DanglingId {
        /// Description of the reference.
        what: &'static str,
    },
}

impl fmt::Display for RtlError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            RtlError::InvalidWidth { bits } => {
                write!(f, "invalid width {bits} (must be 1..=64)")
            }
            RtlError::WidthMismatch {
                context,
                left,
                right,
            } => write!(f, "width mismatch in {context}: {left}b vs {right}b"),
            RtlError::InvalidSlice { hi, lo, width } => {
                write!(f, "invalid slice [{hi}:{lo}] of a {width}b value")
            }
            RtlError::CatTooWide { total } => {
                write!(f, "concatenation of {total}b exceeds the 64b limit")
            }
            RtlError::DuplicateName { name } => write!(f, "duplicate name `{name}`"),
            RtlError::RegisterConnection { name, problem } => {
                write!(f, "register `{name}`: {problem}")
            }
            RtlError::CombinationalLoop { hint } => {
                write!(f, "combinational loop detected (near `{hint}`)")
            }
            RtlError::ConstantTooWide { value, width } => {
                write!(f, "constant {value:#x} does not fit in {width} bits")
            }
            RtlError::InvalidMemory { name, problem } => {
                write!(f, "memory `{name}`: {problem}")
            }
            RtlError::DanglingId { what } => write!(f, "dangling id reference: {what}"),
        }
    }
}

impl Error for RtlError {}

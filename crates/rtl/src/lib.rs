//! Word-level RTL intermediate representation.
//!
//! This crate plays the role of Chisel's intermediate representation in the
//! Strober flow (§IV-A of the paper): a structural, synthesizable netlist of
//! word-level operators, registers and memories that downstream compiler
//! passes can freely analyse and rewrite. The FAME1 transform, scan-chain
//! insertion, synthesis to gates, and both simulators all operate on the
//! [`Design`] defined here.
//!
//! A design is a flat graph:
//!
//! * **Ports** — named top-level inputs ([`Design::input`]) and outputs
//!   ([`Design::output`]).
//! * **Nodes** — combinational operators over values of 1–64 bits
//!   ([`Node`]); every node records its [`Width`] and results are always
//!   masked to that width.
//! * **Registers** — positive-edge D flip-flops with optional enable and a
//!   reset value ([`Design::reg`]).
//! * **Memories** — word-addressed RAMs with combinational read ports and
//!   clocked write ports ([`Design::mem`]).
//!
//! Hierarchy is expressed through hierarchical signal names (`"fetch/pc"`),
//! produced by the `strober-dsl` scoping API; compiler passes treat the
//! design as flat, exactly like FIRRTL after lowering.
//!
//! # Examples
//!
//! Build an 8-bit counter and inspect it:
//!
//! ```
//! use strober_rtl::{Design, Width};
//!
//! # fn main() -> Result<(), strober_rtl::RtlError> {
//! let mut d = Design::new("counter");
//! let w8 = Width::new(8)?;
//! let en = d.input("en", Width::BIT)?;
//! let count = d.reg("count", w8, 0)?;
//! let one = d.constant(1, w8);
//! let q = d.reg_out(count);
//! let next = d.add(q, one)?;
//! d.connect_reg(count, next, Some(en))?;
//! d.output("value", q)?;
//! d.validate()?;
//! assert_eq!(d.registers().count(), 1);
//! # Ok(())
//! # }
//! ```

#![deny(missing_docs)]
#![deny(missing_debug_implementations)]

mod design;
mod error;
mod node;
mod topo;
mod value;
pub mod verilog;

pub use design::{Design, MemReadPort, Memory, Port, Register, WritePort};
pub use error::RtlError;
pub use node::{BinOp, MemId, Node, NodeId, PortId, RegId, UnOp, WireId};
pub use topo::TopoOrder;
pub use value::{mask, sign_extend, Width};

//! Bit widths and value masking helpers.
//!
//! All signal values in the IR are carried in `u64` words; a [`Width`]
//! records how many of the low bits are meaningful. Every operation masks
//! its result, so a value of width `w` always satisfies `v == mask(v, w)`.

use crate::error::RtlError;
use std::fmt;

/// The width in bits of a signal, between 1 and 64 inclusive.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct Width(u8);

impl serde::Serialize for Width {
    fn to_value(&self) -> serde::Value {
        serde::Value::from(self.bits())
    }
}

impl serde::Deserialize for Width {
    fn from_value(value: &serde::Value) -> Result<Self, serde::DeError> {
        let bits = value
            .as_u64()
            .ok_or_else(|| serde::DeError::expected("width in bits", value))?;
        let bits = u32::try_from(bits)
            .map_err(|_| serde::DeError(format!("width {bits} out of range")))?;
        Width::new(bits).map_err(|e| serde::DeError(e.to_string()))
    }
}

impl serde::Blob for Width {
    fn encode_blob(&self, out: &mut Vec<u8>) {
        out.push(self.0);
    }

    fn decode_blob(r: &mut serde::BlobReader<'_>) -> Result<Self, serde::DeError> {
        let bits = r.byte()?;
        Width::new(u32::from(bits)).map_err(|e| serde::DeError(e.to_string()))
    }
}

impl Width {
    /// The maximum representable width.
    pub const MAX_BITS: u32 = 64;

    /// A single-bit width, used for control signals.
    pub const BIT: Width = Width(1);

    /// A 32-bit width, the natural word size of the bundled processor
    /// designs.
    pub const W32: Width = Width(32);

    /// A 64-bit width.
    pub const W64: Width = Width(64);

    /// Creates a width.
    ///
    /// # Errors
    ///
    /// Returns [`RtlError::InvalidWidth`] unless `1 ≤ bits ≤ 64`.
    pub fn new(bits: u32) -> Result<Self, RtlError> {
        if bits == 0 || bits > Self::MAX_BITS {
            Err(RtlError::InvalidWidth { bits })
        } else {
            Ok(Width(bits as u8))
        }
    }

    /// The number of bits.
    pub fn bits(self) -> u32 {
        u32::from(self.0)
    }

    /// The all-ones mask for this width.
    pub fn mask(self) -> u64 {
        if self.bits() == 64 {
            u64::MAX
        } else {
            (1u64 << self.bits()) - 1
        }
    }

    /// The number of bits needed to address `depth` distinct locations
    /// (at least 1).
    ///
    /// # Errors
    ///
    /// Returns [`RtlError::InvalidWidth`] when `depth < 2` would need zero
    /// bits or exceeds the addressable range.
    pub fn for_depth(depth: usize) -> Result<Self, RtlError> {
        let bits = usize::BITS - depth.next_power_of_two().leading_zeros() - 1;
        Width::new(bits.max(1))
    }
}

impl fmt::Display for Width {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}b", self.0)
    }
}

/// Masks `value` to `width` bits.
///
/// # Examples
///
/// ```
/// use strober_rtl::{mask, Width};
/// assert_eq!(mask(0x1FF, Width::new(8).unwrap()), 0xFF);
/// ```
pub fn mask(value: u64, width: Width) -> u64 {
    value & width.mask()
}

/// Sign-extends a `width`-bit value to a full `i64`.
///
/// # Examples
///
/// ```
/// use strober_rtl::{sign_extend, Width};
/// assert_eq!(sign_extend(0xFF, Width::new(8).unwrap()), -1);
/// assert_eq!(sign_extend(0x7F, Width::new(8).unwrap()), 127);
/// ```
pub fn sign_extend(value: u64, width: Width) -> i64 {
    let shift = 64 - width.bits();
    ((value << shift) as i64) >> shift
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn width_bounds() {
        assert!(Width::new(0).is_err());
        assert!(Width::new(65).is_err());
        assert_eq!(Width::new(1).unwrap(), Width::BIT);
        assert_eq!(Width::new(64).unwrap().bits(), 64);
    }

    #[test]
    fn masks() {
        assert_eq!(Width::BIT.mask(), 1);
        assert_eq!(Width::new(8).unwrap().mask(), 0xFF);
        assert_eq!(Width::W64.mask(), u64::MAX);
    }

    #[test]
    fn sign_extension() {
        let w4 = Width::new(4).unwrap();
        assert_eq!(sign_extend(0b1000, w4), -8);
        assert_eq!(sign_extend(0b0111, w4), 7);
        assert_eq!(sign_extend(u64::MAX, Width::W64), -1);
    }

    #[test]
    fn width_for_depth() {
        assert_eq!(Width::for_depth(2).unwrap().bits(), 1);
        assert_eq!(Width::for_depth(1024).unwrap().bits(), 10);
        assert_eq!(Width::for_depth(1000).unwrap().bits(), 10);
        assert_eq!(Width::for_depth(1025).unwrap().bits(), 11);
    }

    #[test]
    fn display_is_nonempty() {
        assert_eq!(Width::W32.to_string(), "32b");
    }
}

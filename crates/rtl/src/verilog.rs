//! Verilog emission — the "Chisel Verilog Backend" of the paper's replay
//! flow (Fig. 5): any [`Design`] can be exported as self-contained,
//! synthesizable Verilog-2001 for consumption by external CAD tools.
//!
//! Conventions:
//!
//! * One module with `clock` plus the design's ports.
//! * Register and memory initial values are emitted as `initial` blocks
//!   (the designs use power-on initialisation rather than a reset tree,
//!   matching the simulators' semantics).
//! * The IR's deterministic division-by-zero semantics (`x/0 = all ones`,
//!   `x%0 = x`) and shift-saturation semantics are emitted as guarded
//!   expressions so the Verilog matches the simulators bit-for-bit.
//! * Hierarchical names are flattened with `_`; collisions get numeric
//!   suffixes.

use crate::design::Design;
use crate::node::{BinOp, Node, NodeId, UnOp};
use std::collections::HashMap;
use std::fmt::Write as _;

/// A name table that flattens hierarchical names and keeps them unique.
struct Names {
    taken: HashMap<String, u32>,
    by_key: HashMap<String, String>,
}

impl Names {
    fn new() -> Self {
        Names {
            taken: HashMap::new(),
            by_key: HashMap::new(),
        }
    }

    fn assign(&mut self, key: &str, preferred: &str) -> String {
        if let Some(existing) = self.by_key.get(key) {
            return existing.clone();
        }
        let base: String = preferred
            .chars()
            .map(|c| {
                if c.is_ascii_alphanumeric() || c == '_' {
                    c
                } else {
                    '_'
                }
            })
            .collect();
        let base = if base.starts_with(|c: char| c.is_ascii_digit()) {
            format!("_{base}")
        } else {
            base
        };
        let count = self.taken.entry(base.clone()).or_insert(0);
        let name = if *count == 0 {
            base.clone()
        } else {
            format!("{base}_{count}")
        };
        *count += 1;
        self.by_key.insert(key.to_owned(), name.clone());
        name
    }

    fn get(&self, key: &str) -> &str {
        &self.by_key[key]
    }
}

fn width_decl(bits: u32) -> String {
    if bits == 1 {
        String::new()
    } else {
        format!("[{}:0] ", bits - 1)
    }
}

/// Emits the design as a self-contained Verilog-2001 module.
///
/// # Errors
///
/// Returns the design's validation error if it is malformed.
pub fn to_verilog(design: &Design) -> Result<String, crate::error::RtlError> {
    design.validate()?;
    let topo = design.topo_order()?;
    let mut names = Names::new();
    let mut v = String::new();

    // Assign stable names: ports first, then registers/memories, then
    // internal nets.
    for p in design.ports() {
        names.assign(&format!("port:{}", p.name()), p.name());
    }
    for (out_name, _) in design.outputs() {
        names.assign(&format!("out:{out_name}"), out_name);
    }
    for (_, r) in design.registers() {
        names.assign(&format!("reg:{}", r.name()), r.name());
    }
    for (_, m) in design.memories() {
        names.assign(&format!("mem:{}", m.name()), m.name());
    }
    for (id, _, _) in design.nodes() {
        names.assign(&format!("node:{id}"), &format!("n{}", id.index()));
    }

    let node_name = |names: &Names, id: NodeId| names.get(&format!("node:{id}")).to_owned();

    // ---- module header ------------------------------------------------------
    let mut port_list: Vec<String> = vec!["clock".to_owned()];
    for p in design.ports() {
        port_list.push(names.get(&format!("port:{}", p.name())).to_owned());
    }
    for (out_name, _) in design.outputs() {
        port_list.push(names.get(&format!("out:{out_name}")).to_owned());
    }
    let module_name: String = design
        .name()
        .chars()
        .map(|c| {
            if c.is_ascii_alphanumeric() || c == '_' {
                c
            } else {
                '_'
            }
        })
        .collect();
    writeln!(v, "module {module_name} (").unwrap();
    writeln!(v, "  {}", port_list.join(",\n  ")).unwrap();
    writeln!(v, ");").unwrap();
    writeln!(v, "  input clock;").unwrap();
    for p in design.ports() {
        writeln!(
            v,
            "  input {}{};",
            width_decl(p.width().bits()),
            names.get(&format!("port:{}", p.name()))
        )
        .unwrap();
    }
    for (out_name, id) in design.outputs() {
        writeln!(
            v,
            "  output {}{};",
            width_decl(design.width(*id).bits()),
            names.get(&format!("out:{out_name}"))
        )
        .unwrap();
    }
    writeln!(v).unwrap();

    // ---- state declarations ---------------------------------------------------
    for (_, r) in design.registers() {
        writeln!(
            v,
            "  reg {}{};",
            width_decl(r.width().bits()),
            names.get(&format!("reg:{}", r.name()))
        )
        .unwrap();
    }
    for (_, m) in design.memories() {
        writeln!(
            v,
            "  reg {}{} [0:{}];",
            width_decl(m.width().bits()),
            names.get(&format!("mem:{}", m.name())),
            m.depth() - 1
        )
        .unwrap();
    }
    writeln!(v).unwrap();

    // ---- combinational nets ------------------------------------------------------
    for id in topo.iter() {
        let w = design.width(id);
        let n = node_name(&names, id);
        let bits = w.bits();
        let expr: String = match *design.node(id) {
            Node::Input(p) => names
                .get(&format!("port:{}", design.ports()[p.index()].name()))
                .to_owned(),
            Node::Const(c) => format!("{bits}'h{c:x}"),
            Node::RegOut(r) => names
                .get(&format!("reg:{}", design.register(r).name()))
                .to_owned(),
            Node::Wire(wid) => {
                let src = design.wire_driver(wid).expect("validated");
                node_name(&names, src)
            }
            Node::Slice { a, hi, lo } => {
                format!("{}[{}:{}]", node_name(&names, a), hi, lo)
            }
            Node::Cat { hi, lo } => {
                format!("{{{}, {}}}", node_name(&names, hi), node_name(&names, lo))
            }
            Node::Mux { sel, t, f } => format!(
                "{} ? {} : {}",
                node_name(&names, sel),
                node_name(&names, t),
                node_name(&names, f)
            ),
            Node::Unary { op, a } => {
                let an = node_name(&names, a);
                match op {
                    UnOp::Not => format!("~{an}"),
                    UnOp::Neg => format!("-{an}"),
                    UnOp::RedAnd => format!("&{an}"),
                    UnOp::RedOr => format!("|{an}"),
                    UnOp::RedXor => format!("^{an}"),
                }
            }
            Node::Binary { op, a, b } => {
                let aw = design.width(a).bits();
                let an = node_name(&names, a);
                let bn = node_name(&names, b);
                match op {
                    BinOp::Add => format!("{an} + {bn}"),
                    BinOp::Sub => format!("{an} - {bn}"),
                    BinOp::Mul => format!("{an} * {bn}"),
                    BinOp::DivU => format!("({bn} == {aw}'h0) ? {{{aw}{{1'b1}}}} : ({an} / {bn})"),
                    BinOp::RemU => format!("({bn} == {aw}'h0) ? {an} : ({an} % {bn})"),
                    BinOp::And => format!("{an} & {bn}"),
                    BinOp::Or => format!("{an} | {bn}"),
                    BinOp::Xor => format!("{an} ^ {bn}"),
                    BinOp::Shl => format!("{an} << {bn}"),
                    BinOp::Shr => format!("{an} >> {bn}"),
                    BinOp::Sra => {
                        format!("$signed({an}) >>> (({bn} > {w}) ? {w} : {bn})", w = aw - 1)
                    }
                    BinOp::Eq => format!("{an} == {bn}"),
                    BinOp::Neq => format!("{an} != {bn}"),
                    BinOp::Ltu => format!("{an} < {bn}"),
                    BinOp::Leu => format!("{an} <= {bn}"),
                    BinOp::Lts => format!("$signed({an}) < $signed({bn})"),
                    BinOp::Les => format!("$signed({an}) <= $signed({bn})"),
                }
            }
            Node::MemRead { mem, port } => {
                let m = design.memory(mem);
                let addr = m.read_ports()[port].addr();
                format!(
                    "{}[{}]",
                    names.get(&format!("mem:{}", m.name())),
                    node_name(&names, addr)
                )
            }
        };
        writeln!(v, "  wire {}{} = {};", width_decl(bits), n, expr).unwrap();
    }
    writeln!(v).unwrap();

    // ---- outputs -------------------------------------------------------------------
    for (out_name, id) in design.outputs() {
        writeln!(
            v,
            "  assign {} = {};",
            names.get(&format!("out:{out_name}")),
            node_name(&names, *id)
        )
        .unwrap();
    }
    writeln!(v).unwrap();

    // ---- initial state ----------------------------------------------------------------
    if design.memory_count() > 0 {
        writeln!(v, "  integer init_i;").unwrap();
    }
    writeln!(v, "  initial begin").unwrap();
    for (_, r) in design.registers() {
        writeln!(
            v,
            "    {} = {}'h{:x};",
            names.get(&format!("reg:{}", r.name())),
            r.width().bits(),
            r.init()
        )
        .unwrap();
    }
    for (_, m) in design.memories() {
        let mn = names.get(&format!("mem:{}", m.name())).to_owned();
        // Zero-fill first so four-state simulators start from defined
        // values, then apply the nonzero initial image on top.
        writeln!(
            v,
            "    for (init_i = 0; init_i < {}; init_i = init_i + 1)",
            m.depth()
        )
        .unwrap();
        writeln!(v, "      {mn}[init_i] = {}'h0;", m.width().bits()).unwrap();
        for addr in 0..m.depth() {
            let value = m.init().get(addr).copied().unwrap_or(0);
            if value != 0 {
                writeln!(v, "    {mn}[{addr}] = {}'h{value:x};", m.width().bits()).unwrap();
            }
        }
    }
    writeln!(v, "  end").unwrap();
    writeln!(v).unwrap();

    // ---- sequential logic ------------------------------------------------------------
    writeln!(v, "  always @(posedge clock) begin").unwrap();
    for (_, r) in design.registers() {
        let rn = names.get(&format!("reg:{}", r.name())).to_owned();
        let next = node_name(&names, r.next().expect("validated"));
        match r.enable() {
            Some(en) => writeln!(v, "    if ({}) {rn} <= {next};", node_name(&names, en)).unwrap(),
            None => writeln!(v, "    {rn} <= {next};").unwrap(),
        }
    }
    for (_, m) in design.memories() {
        let mn = names.get(&format!("mem:{}", m.name())).to_owned();
        for wp in m.write_ports() {
            writeln!(
                v,
                "    if ({}) {mn}[{}] <= {};",
                node_name(&names, wp.enable()),
                node_name(&names, wp.addr()),
                node_name(&names, wp.data())
            )
            .unwrap();
        }
    }
    writeln!(v, "  end").unwrap();
    writeln!(v, "endmodule").unwrap();
    Ok(v)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::value::Width;

    fn w(bits: u32) -> Width {
        Width::new(bits).unwrap()
    }

    fn counter() -> Design {
        let mut d = Design::new("counter");
        let en = d.input("en", Width::BIT).unwrap();
        let r = d.reg("core/count", w(8), 3).unwrap();
        let q = d.reg_out(r);
        let one = d.constant(1, w(8));
        let next = d.add(q, one).unwrap();
        d.connect_reg(r, next, Some(en)).unwrap();
        d.output("value", q).unwrap();
        d
    }

    #[test]
    fn counter_emits_expected_constructs() {
        let text = to_verilog(&counter()).unwrap();
        assert!(text.starts_with("module counter ("));
        assert!(text.contains("input clock;"));
        assert!(text.contains("input en;"));
        assert!(text.contains("output [7:0] value;"));
        assert!(text.contains("reg [7:0] core_count;"));
        assert!(text.contains("core_count = 8'h3;"));
        assert!(text.contains("always @(posedge clock)"));
        assert!(text.contains("if (")); // the enable guard
        assert!(text.trim_end().ends_with("endmodule"));
    }

    #[test]
    fn memory_emission() {
        let mut d = Design::new("ram");
        let m = d.mem("buf", w(16), 8, vec![7, 0, 9]).unwrap();
        let addr = d.input("addr", w(3)).unwrap();
        let data = d.input("data", w(16)).unwrap();
        let we = d.input("we", Width::BIT).unwrap();
        let rd = d.mem_read(m, addr).unwrap();
        d.mem_write(m, addr, data, we).unwrap();
        d.output("q", rd).unwrap();
        let text = to_verilog(&d).unwrap();
        assert!(text.contains("reg [15:0] buf [0:7];"));
        assert!(text.contains("buf[0] = 16'h7;"));
        assert!(text.contains("buf[2] = 16'h9;"));
        // Write ports reference the internal node wires.
        let has_mem_write = text
            .lines()
            .any(|l| l.contains("if (") && l.contains("buf[") && l.contains("<="));
        assert!(has_mem_write, "missing memory write:\n{text}");
        let has_mem_read = text.lines().any(|l| l.contains("= buf["));
        assert!(has_mem_read, "missing memory read:\n{text}");
    }

    #[test]
    fn hierarchical_names_flatten_without_collisions() {
        let mut d = Design::new("t");
        let r1 = d.reg("a/b", Width::BIT, 0).unwrap();
        let r2 = d.reg("a_b", Width::BIT, 0).unwrap();
        let q1 = d.reg_out(r1);
        let q2 = d.reg_out(r2);
        d.connect_reg(r1, q2, None).unwrap();
        d.connect_reg(r2, q1, None).unwrap();
        d.output("o", q1).unwrap();
        let text = to_verilog(&d).unwrap();
        assert!(text.contains("reg a_b;"));
        assert!(text.contains("reg a_b_1;"));
    }

    #[test]
    fn random_designs_emit_without_panicking() {
        // Every operator must have an emission rule; exercise the full
        // set via direct construction.
        let mut d = Design::new("ops");
        let a = d.input("a", w(13)).unwrap();
        let b = d.input("b", w(13)).unwrap();
        use crate::node::{BinOp::*, UnOp::*};
        for (i, op) in [
            Add, Sub, Mul, DivU, RemU, And, Or, Xor, Shl, Shr, Sra, Eq, Neq, Ltu, Leu, Lts, Les,
        ]
        .into_iter()
        .enumerate()
        {
            let n = d.binary(op, a, b).unwrap();
            d.output(format!("bin{i}"), n).unwrap();
        }
        for (i, op) in [Not, Neg, RedAnd, RedOr, RedXor].into_iter().enumerate() {
            let n = d.unary(op, a);
            d.output(format!("un{i}"), n).unwrap();
        }
        let s = d.slice(a, 7, 3).unwrap();
        let c = d.cat(s, b).unwrap();
        d.output("cat", c).unwrap();
        let text = to_verilog(&d).unwrap();
        assert!(text.contains(">>>")); // arithmetic shift present
        assert!(text.contains("$signed"));
        assert!(text.matches("endmodule").count() == 1);
    }

    #[test]
    fn invalid_design_is_rejected() {
        let mut d = Design::new("t");
        let _unconnected = d.reg("r", w(4), 0).unwrap();
        assert!(to_verilog(&d).is_err());
    }
}

//! Property tests for the IR's operator semantics and bit manipulation.

use proptest::prelude::*;
use strober_rtl::{mask, sign_extend, BinOp, Design, UnOp, Width};

fn arb_width() -> impl Strategy<Value = Width> {
    (1u32..=64).prop_map(|b| Width::new(b).unwrap())
}

proptest! {
    #[test]
    fn masking_is_idempotent(v in any::<u64>(), w in arb_width()) {
        let once = mask(v, w);
        prop_assert_eq!(mask(once, w), once);
        prop_assert!(once <= w.mask());
    }

    #[test]
    fn sign_extension_preserves_low_bits(v in any::<u64>(), w in arb_width()) {
        let masked = mask(v, w);
        let ext = sign_extend(masked, w);
        prop_assert_eq!(mask(ext as u64, w), masked);
        // Extension result fits in the signed range of the width.
        if w.bits() < 64 {
            let bound = 1i64 << (w.bits() - 1);
            prop_assert!((-bound..bound).contains(&ext));
        }
    }

    #[test]
    fn add_sub_roundtrip(a in any::<u64>(), b in any::<u64>(), w in arb_width()) {
        let (a, b) = (mask(a, w), mask(b, w));
        let sum = BinOp::Add.eval(a, b, w);
        prop_assert_eq!(BinOp::Sub.eval(sum, b, w), a);
    }

    #[test]
    fn neg_is_sub_from_zero(a in any::<u64>(), w in arb_width()) {
        let a = mask(a, w);
        prop_assert_eq!(UnOp::Neg.eval(a, w), BinOp::Sub.eval(0, a, w));
    }

    #[test]
    fn comparisons_are_consistent(a in any::<u64>(), b in any::<u64>(), w in arb_width()) {
        let (a, b) = (mask(a, w), mask(b, w));
        let ltu = BinOp::Ltu.eval(a, b, w) == 1;
        let leu = BinOp::Leu.eval(a, b, w) == 1;
        let eq = BinOp::Eq.eval(a, b, w) == 1;
        prop_assert_eq!(leu, ltu || eq);
        prop_assert_eq!(BinOp::Neq.eval(a, b, w) == 1, !eq);
        // Signed compare agrees with sign extension.
        let lts = BinOp::Lts.eval(a, b, w) == 1;
        prop_assert_eq!(lts, sign_extend(a, w) < sign_extend(b, w));
    }

    #[test]
    fn shift_then_unshift(a in any::<u64>(), sh in 0u64..8, ) {
        let w = Width::new(32).unwrap();
        let a = mask(a, w);
        let shifted = BinOp::Shl.eval(a, sh, w);
        let back = BinOp::Shr.eval(shifted, sh, w);
        // Low bits survive the round trip except those pushed off the top.
        let keep = Width::new(32 - sh as u32).unwrap();
        prop_assert_eq!(mask(back, keep), mask(a, keep));
    }

    #[test]
    fn division_identity(a in any::<u64>(), b in 1u64..1000, ) {
        let w = Width::new(32).unwrap();
        let (a, b) = (mask(a, w), mask(b, w));
        let q = BinOp::DivU.eval(a, b, w);
        let r = BinOp::RemU.eval(a, b, w);
        prop_assert_eq!(q * b + r, a);
        prop_assert!(r < b);
    }

    #[test]
    fn slice_cat_roundtrip(v in any::<u64>(), split in 1u32..32) {
        // Build {hi, lo} = v[31:split], v[split-1:0] and re-concatenate.
        let w32 = Width::new(32).unwrap();
        let v = mask(v, w32);
        let mut d = Design::new("prop");
        let c = d.constant(v, w32);
        let hi = d.slice(c, 31, split).unwrap();
        let lo = d.slice(c, split - 1, 0).unwrap();
        let back = d.cat(hi, lo).unwrap();
        d.output("o", back).unwrap();
        d.validate().unwrap();
        let mut sim = strober_sim::Simulator::new(&d).unwrap();
        prop_assert_eq!(sim.peek_output("o").unwrap(), v);
    }

    #[test]
    fn reduction_semantics(v in any::<u64>(), w in arb_width()) {
        let v = mask(v, w);
        prop_assert_eq!(UnOp::RedOr.eval(v, w) == 1, v != 0);
        prop_assert_eq!(UnOp::RedAnd.eval(v, w) == 1, v == w.mask());
        prop_assert_eq!(UnOp::RedXor.eval(v, w), u64::from(v.count_ones() % 2 == 1));
    }
}

//! Fault injection: mutations of the synthesized netlist must be caught
//! by the random-vector equivalence check — the safety net that keeps a
//! buggy "CAD flow" from silently corrupting power estimates.

use strober_dsl::Ctx;
use strober_formal::{match_designs, FormalError, MatchOptions};
use strober_gates::{CellKind, Gate, Netlist};
use strober_rtl::{Design, Width};
use strober_synth::{synthesize, SynthOptions};

fn build() -> (Design, strober_synth::SynthResult) {
    let ctx = Ctx::new("dut");
    let w8 = Width::new(8).unwrap();
    let a = ctx.input("a", w8);
    let b = ctx.input("b", w8);
    let acc = ctx.reg("acc", w8, 0);
    acc.set(&(&acc.out() + &(&a ^ &b)));
    ctx.output("acc_out", &acc.out());
    let design = ctx.finish().unwrap();
    let synth = synthesize(
        &design,
        &SynthOptions {
            optimize: true,
            mangle: false,
            retime_prefixes: Vec::new(),
        },
    )
    .unwrap();
    (design, synth)
}

/// Rebuilds a netlist with the `index`-th combinational gate's kind
/// swapped for `replacement` (a stuck-wrong cell, the classic gate-level
/// fault model).
fn mutate_gate(nl: &Netlist, index: usize, replacement: CellKind) -> Option<Netlist> {
    let mut out = Netlist::new(nl.name());
    for r in nl.regions().iter().skip(1) {
        out.intern_region(r);
    }
    for i in 0..nl.net_count() {
        out.add_net(nl.net_name(strober_gates::NetId::from_index(i)));
    }
    let mut comb_seen = 0;
    let mut mutated = false;
    for g in nl.gates() {
        match g {
            Gate::Comb {
                kind,
                inputs,
                output,
                region,
            } => {
                let mut k = *kind;
                if comb_seen == index
                    && kind.input_count() == replacement.input_count()
                    && *kind != replacement
                {
                    k = replacement;
                    mutated = true;
                }
                comb_seen += 1;
                out.add_gate(k, inputs.clone(), *output, *region);
            }
            Gate::Dff {
                name,
                d,
                q,
                init,
                region,
            } => {
                out.add_dff(name.clone(), *d, *q, *init, *region);
            }
        }
    }
    for s in nl.srams() {
        out.add_sram(s.clone());
    }
    for (name, n) in nl.inputs() {
        out.add_input(name.clone(), *n);
    }
    for (name, n) in nl.outputs() {
        out.add_output(name.clone(), *n);
    }
    mutated.then_some(out)
}

#[test]
fn healthy_netlist_matches() {
    let (design, synth) = build();
    match_designs(&design, &synth, &MatchOptions::default()).expect("clean flow matches");
}

#[test]
fn single_gate_faults_are_caught() {
    let (design, synth) = build();
    let total = synth.netlist.comb_gate_count();
    let mut injected = 0;
    let mut caught = 0;
    for index in 0..total {
        for replacement in [CellKind::Nand2, CellKind::Xor2, CellKind::Nor2] {
            let Some(mutant) = mutate_gate(&synth.netlist, index, replacement) else {
                continue;
            };
            if mutant.validate().is_err() {
                continue;
            }
            injected += 1;
            let mut bad = synth.clone();
            bad.netlist = mutant;
            match match_designs(&design, &bad, &MatchOptions::default()) {
                Err(FormalError::NotEquivalent { .. }) => caught += 1,
                Err(other) => panic!("unexpected failure mode: {other}"),
                // A mutation can be logically masked (e.g. a dead-ish
                // cone under these stimuli); those escape the bounded
                // check, as they would a real bounded equivalence run.
                Ok(_) => {}
            }
        }
    }
    assert!(injected > 50, "expected many mutants, got {injected}");
    let rate = f64::from(caught) / f64::from(injected);
    assert!(
        rate > 0.9,
        "equivalence check caught only {caught}/{injected} mutants"
    );
}

#[test]
fn dff_init_fault_is_caught() {
    let (design, synth) = build();
    // Flip one flip-flop's reset value.
    let mut out = Netlist::new(synth.netlist.name());
    for r in synth.netlist.regions().iter().skip(1) {
        out.intern_region(r);
    }
    for i in 0..synth.netlist.net_count() {
        out.add_net(synth.netlist.net_name(strober_gates::NetId::from_index(i)));
    }
    let mut first = true;
    for g in synth.netlist.gates() {
        match g {
            Gate::Comb {
                kind,
                inputs,
                output,
                region,
            } => {
                out.add_gate(*kind, inputs.clone(), *output, *region);
            }
            Gate::Dff {
                name,
                d,
                q,
                init,
                region,
            } => {
                let init = if first { !*init } else { *init };
                first = false;
                out.add_dff(name.clone(), *d, *q, init, *region);
            }
        }
    }
    for s in synth.netlist.srams() {
        out.add_sram(s.clone());
    }
    for (name, n) in synth.netlist.inputs() {
        out.add_input(name.clone(), *n);
    }
    for (name, n) in synth.netlist.outputs() {
        out.add_output(name.clone(), *n);
    }
    let mut bad = synth.clone();
    bad.netlist = out;
    let err = match_designs(&design, &bad, &MatchOptions::default()).unwrap_err();
    assert!(matches!(err, FormalError::NotEquivalent { .. }), "{err}");
}

//! Formal matching between RTL designs and gate-level netlists.
//!
//! This crate stands in for the commercial formal verification tool
//! (Formality) in the Strober replay flow (§IV-C1 of the paper). Synthesis
//! mangles register and net names, so RTL snapshot values cannot be loaded
//! into the netlist by name alone. The paper's flow has the synthesis tool
//! emit matching hints, which the formal tool validates while proving the
//! two designs equivalent; the verified correspondence becomes the name
//! mapping table used by replay.
//!
//! [`match_designs`] does the same:
//!
//! 1. **Structural matching** — every non-retimed RTL register must map to
//!    exactly `width` existing DFF instances, every memory to a macro of
//!    identical geometry, and every RTL port to the same-width netlist
//!    port.
//! 2. **Equivalence checking** — bounded sequential equivalence by random
//!    stimulus from reset, plus (when no registers were retimed) random
//!    *state injection* through the mapping itself: mid-run RTL states are
//!    transferred into the netlist and the designs must remain
//!    cycle-equivalent afterwards. This second check is exactly the
//!    property snapshot replay relies on.
//!
//! The result is a [`NameMap`] that `strober` uses to load RTL snapshots
//! into gate-level simulation.

#![deny(missing_docs)]
#![deny(missing_debug_implementations)]

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use std::collections::{HashMap, HashSet};
use std::error::Error;
use std::fmt;
use strober_gates::Gate;
use strober_gatesim::GateSim;
use strober_rtl::Design;
use strober_sim::Simulator;
use strober_synth::SynthResult;

/// The verified RTL → netlist name correspondence.
#[derive(
    Debug, Clone, Default, PartialEq, Eq, serde::Serialize, serde::Deserialize, serde::Blob,
)]
pub struct NameMap {
    /// RTL register name → DFF instance names, LSB first.
    pub regs: HashMap<String, Vec<String>>,
    /// RTL memory name → SRAM macro instance name.
    pub mems: HashMap<String, String>,
    /// RTL registers whose state cannot be mapped (retimed datapaths);
    /// replay must warm them by forcing recorded I/O (§IV-C3).
    pub retimed: Vec<String>,
}

impl NameMap {
    /// Total number of mapped register bits.
    pub fn mapped_bits(&self) -> usize {
        self.regs.values().map(Vec::len).sum()
    }
}

/// The outcome of a successful match.
#[derive(Debug, Clone)]
pub struct MatchReport {
    /// The verified name mapping.
    pub name_map: NameMap,
    /// Number of registers structurally matched.
    pub matched_regs: usize,
    /// Number of memories structurally matched.
    pub matched_mems: usize,
    /// Cycles of random-stimulus equivalence checking performed.
    pub checked_cycles: u64,
    /// Number of mid-run state injections validated (0 when retiming
    /// prevents exact state transfer).
    pub state_injections: usize,
}

/// Matching/equivalence failures.
#[derive(Debug, Clone, PartialEq, Eq)]
#[non_exhaustive]
pub enum FormalError {
    /// An RTL register has no usable mapping in the synthesis info.
    UnmatchedRegister {
        /// The RTL register's name.
        rtl_name: String,
        /// Why it could not be matched.
        reason: String,
    },
    /// An RTL memory has no usable macro mapping.
    UnmatchedMemory {
        /// The RTL memory's name.
        rtl_name: String,
        /// Why it could not be matched.
        reason: String,
    },
    /// A port exists in one design but not the other (or widths differ).
    PortMismatch {
        /// The port's name.
        name: String,
    },
    /// The designs produced different outputs under identical stimulus.
    NotEquivalent {
        /// The diverging output's name.
        output: String,
        /// The cycle at which divergence was observed.
        cycle: u64,
        /// The RTL value.
        rtl: u64,
        /// The gate-level value.
        gate: u64,
    },
    /// A simulator could not be constructed (invalid design or netlist).
    SimulatorConstruction {
        /// The underlying failure, as text.
        detail: String,
    },
}

impl fmt::Display for FormalError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            FormalError::UnmatchedRegister { rtl_name, reason } => {
                write!(f, "register `{rtl_name}` could not be matched: {reason}")
            }
            FormalError::UnmatchedMemory { rtl_name, reason } => {
                write!(f, "memory `{rtl_name}` could not be matched: {reason}")
            }
            FormalError::PortMismatch { name } => write!(f, "port `{name}` mismatch"),
            FormalError::NotEquivalent {
                output,
                cycle,
                rtl,
                gate,
            } => write!(
                f,
                "designs are not equivalent: output `{output}` at cycle {cycle}: rtl={rtl:#x} gate={gate:#x}"
            ),
            FormalError::SimulatorConstruction { detail } => {
                write!(f, "could not construct simulator: {detail}")
            }
        }
    }
}

impl Error for FormalError {}

/// Options for the equivalence check.
#[derive(Debug, Clone)]
pub struct MatchOptions {
    /// Cycles of random stimulus from reset.
    pub stimulus_cycles: u64,
    /// Number of mid-run state injections to validate (skipped when any
    /// register was retimed).
    pub state_injections: usize,
    /// Cycles simulated after each state injection.
    pub post_injection_cycles: u64,
    /// RNG seed for reproducibility.
    pub seed: u64,
}

impl Default for MatchOptions {
    fn default() -> Self {
        MatchOptions {
            stimulus_cycles: 200,
            state_injections: 3,
            post_injection_cycles: 50,
            seed: 0x5743_0BE7,
        }
    }
}

/// Matches an RTL design against its synthesized netlist and verifies
/// equivalence.
///
/// # Errors
///
/// Returns a [`FormalError`] describing the first structural mismatch or
/// behavioural divergence found.
pub fn match_designs(
    design: &Design,
    synth: &SynthResult,
    options: &MatchOptions,
) -> Result<MatchReport, FormalError> {
    let _span = strober_probe::span("strober.formal.match");
    let netlist = &synth.netlist;

    // ---- structural matching ------------------------------------------------
    let dff_names: HashSet<&str> = netlist
        .gates()
        .iter()
        .filter_map(|g| match g {
            Gate::Dff { name, .. } => Some(name.as_str()),
            _ => None,
        })
        .collect();

    let mut name_map = NameMap {
        retimed: synth.info.retimed_regs.clone(),
        ..NameMap::default()
    };
    let mut matched_regs = 0;
    for (_, reg) in design.registers() {
        if synth.info.is_retimed(reg.name()) {
            continue;
        }
        let mapped =
            synth
                .info
                .reg_map
                .get(reg.name())
                .ok_or_else(|| FormalError::UnmatchedRegister {
                    rtl_name: reg.name().to_owned(),
                    reason: "no entry in synthesis info".to_owned(),
                })?;
        if mapped.len() != reg.width().bits() as usize {
            return Err(FormalError::UnmatchedRegister {
                rtl_name: reg.name().to_owned(),
                reason: format!(
                    "expected {} bit instances, got {}",
                    reg.width().bits(),
                    mapped.len()
                ),
            });
        }
        for dff in mapped {
            if !dff_names.contains(dff.as_str()) {
                return Err(FormalError::UnmatchedRegister {
                    rtl_name: reg.name().to_owned(),
                    reason: format!("instance `{dff}` not present in netlist"),
                });
            }
        }
        name_map.regs.insert(reg.name().to_owned(), mapped.clone());
        matched_regs += 1;
    }

    let mut matched_mems = 0;
    for (_, mem) in design.memories() {
        let macro_name =
            synth
                .info
                .mem_map
                .get(mem.name())
                .ok_or_else(|| FormalError::UnmatchedMemory {
                    rtl_name: mem.name().to_owned(),
                    reason: "no entry in synthesis info".to_owned(),
                })?;
        let sram = netlist
            .srams()
            .iter()
            .find(|s| &s.name == macro_name)
            .ok_or_else(|| FormalError::UnmatchedMemory {
                rtl_name: mem.name().to_owned(),
                reason: format!("macro `{macro_name}` not present in netlist"),
            })?;
        if sram.width != mem.width().bits() || sram.depth != mem.depth() {
            return Err(FormalError::UnmatchedMemory {
                rtl_name: mem.name().to_owned(),
                reason: format!(
                    "geometry mismatch: {}x{} vs {}x{}",
                    mem.depth(),
                    mem.width().bits(),
                    sram.depth,
                    sram.width
                ),
            });
        }
        name_map
            .mems
            .insert(mem.name().to_owned(), macro_name.clone());
        matched_mems += 1;
    }

    // Port check: every RTL port must appear with the same bit count.
    let mut gate_port_bits: HashMap<&str, u32> = HashMap::new();
    for (name, _) in netlist.inputs() {
        let base = name.rfind('[').map(|i| &name[..i]).unwrap_or(name.as_str());
        *gate_port_bits.entry(base).or_insert(0) += 1;
    }
    for p in design.ports() {
        if gate_port_bits.get(p.name()).copied() != Some(p.width().bits()) {
            return Err(FormalError::PortMismatch {
                name: p.name().to_owned(),
            });
        }
    }

    // ---- behavioural equivalence ---------------------------------------------
    let mut rtl = Simulator::new(design).map_err(|e| FormalError::SimulatorConstruction {
        detail: e.to_string(),
    })?;
    let mut gate = GateSim::new(netlist).map_err(|e| FormalError::SimulatorConstruction {
        detail: e.to_string(),
    })?;

    let mut rng = StdRng::seed_from_u64(options.seed);
    let ports: Vec<(String, u64)> = design
        .ports()
        .iter()
        .map(|p| (p.name().to_owned(), p.width().mask()))
        .collect();
    let outputs: Vec<String> = design.outputs().iter().map(|(n, _)| n.clone()).collect();

    let compare =
        |rtl: &mut Simulator, gate: &mut GateSim, cycle: u64| -> Result<(), FormalError> {
            for out in &outputs {
                let r = rtl.peek_output(out).expect("validated output");
                let g = gate.peek_port(out).expect("validated output");
                if r != g {
                    return Err(FormalError::NotEquivalent {
                        output: out.clone(),
                        cycle,
                        rtl: r,
                        gate: g,
                    });
                }
            }
            Ok(())
        };

    let mut checked_cycles = 0;
    for cycle in 0..options.stimulus_cycles {
        for (name, mask) in &ports {
            let v = rng.gen::<u64>() & mask;
            rtl.poke_by_name(name, v).expect("validated port");
            gate.poke_port(name, v).expect("validated port");
        }
        compare(&mut rtl, &mut gate, cycle)?;
        rtl.step();
        gate.step();
        checked_cycles += 1;
    }

    // ---- state-injection validation --------------------------------------------
    let mut injections = 0;
    if name_map.retimed.is_empty() {
        for round in 0..options.state_injections {
            // Scramble the RTL state randomly, push it through the map,
            // and require continued equivalence.
            let reg_ids: Vec<_> = design
                .registers()
                .map(|(id, r)| (id, r.width().mask(), r.name().to_owned()))
                .collect();
            for (id, mask, name) in &reg_ids {
                let v = rng.gen::<u64>() & mask;
                rtl.set_reg_value(*id, v);
                for (i, dff) in name_map.regs[name].iter().enumerate() {
                    gate.set_dff(dff, (v >> i) & 1 == 1).expect("matched dff");
                }
            }
            let mem_ids: Vec<_> = design
                .memories()
                .map(|(id, m)| (id, m.width().mask(), m.depth(), m.name().to_owned()))
                .collect();
            for (id, mask, depth, name) in &mem_ids {
                let macro_name = &name_map.mems[name];
                for addr in 0..*depth {
                    let v = rng.gen::<u64>() & mask;
                    rtl.set_mem_value(*id, addr, v);
                    gate.set_sram_word(macro_name, addr, v)
                        .expect("matched macro");
                }
            }
            for cycle in 0..options.post_injection_cycles {
                for (name, mask) in &ports {
                    let v = rng.gen::<u64>() & mask;
                    rtl.poke_by_name(name, v).expect("validated port");
                    gate.poke_port(name, v).expect("validated port");
                }
                compare(&mut rtl, &mut gate, cycle)?;
                rtl.step();
                gate.step();
                checked_cycles += 1;
            }
            injections = round + 1;
        }
    }

    Ok(MatchReport {
        name_map,
        matched_regs,
        matched_mems,
        checked_cycles,
        state_injections: injections,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use strober_dsl::Ctx;
    use strober_rtl::Width;
    use strober_synth::{synthesize, SynthOptions};

    fn w(bits: u32) -> Width {
        Width::new(bits).unwrap()
    }

    fn build() -> (Design, SynthResult) {
        let ctx = Ctx::new("dut");
        let en = ctx.input("en", Width::BIT);
        let r = ctx.scope("core", |c| c.reg("acc", w(16), 0));
        let m = ctx.scope("core", |c| c.mem("scratch", w(16), 16));
        let addr = r.out().bits(3, 0);
        let rd = m.read(&addr);
        r.set_en(&(&r.out() + &rd).add_lit(1), &en);
        m.write(&addr, &r.out(), &en);
        ctx.output("acc", &r.out());
        let design = ctx.finish().unwrap();
        let synth = synthesize(&design, &SynthOptions::default()).unwrap();
        (design, synth)
    }

    #[test]
    fn matching_succeeds_on_honest_synthesis() {
        let (design, synth) = build();
        let report = match_designs(&design, &synth, &MatchOptions::default()).unwrap();
        assert_eq!(report.matched_regs, 1);
        assert_eq!(report.matched_mems, 1);
        assert!(report.checked_cycles > 200);
        assert_eq!(report.state_injections, 3);
        assert_eq!(report.name_map.mapped_bits(), 16);
    }

    #[test]
    fn corrupted_reg_map_detected() {
        let (design, mut synth) = build();
        synth.info.reg_map.get_mut("core/acc").unwrap().pop();
        let err = match_designs(&design, &synth, &MatchOptions::default()).unwrap_err();
        assert!(matches!(err, FormalError::UnmatchedRegister { .. }));
    }

    #[test]
    fn missing_dff_instance_detected() {
        let (design, mut synth) = build();
        synth.info.reg_map.get_mut("core/acc").unwrap()[0] = "bogus".to_owned();
        let err = match_designs(&design, &synth, &MatchOptions::default()).unwrap_err();
        assert!(matches!(err, FormalError::UnmatchedRegister { .. }));
    }

    #[test]
    fn missing_mem_map_detected() {
        let (design, mut synth) = build();
        synth.info.mem_map.clear();
        let err = match_designs(&design, &synth, &MatchOptions::default()).unwrap_err();
        assert!(matches!(err, FormalError::UnmatchedMemory { .. }));
    }

    #[test]
    fn swapped_bit_mapping_caught_by_state_injection() {
        let (design, mut synth) = build();
        // Reverse the bit order: structurally fine, behaviourally wrong
        // for any non-palindromic injected value.
        let map = synth.info.reg_map.get_mut("core/acc").unwrap();
        map.reverse();
        let err = match_designs(&design, &synth, &MatchOptions::default()).unwrap_err();
        assert!(
            matches!(err, FormalError::NotEquivalent { .. }),
            "expected NotEquivalent, got {err:?}"
        );
    }

    #[test]
    fn retimed_designs_match_without_state_injection() {
        let ctx = Ctx::new("dut");
        let a = ctx.input("a", w(8));
        let s1 = ctx.scope("fpu", |c| c.reg("s1", w(8), 0));
        let s2 = ctx.scope("fpu", |c| c.reg("s2", w(8), 0));
        s1.set(&a.add_lit(3));
        s2.set(&s1.out().add_lit(5));
        ctx.output("o", &s2.out());
        let design = ctx.finish().unwrap();
        let synth = synthesize(
            &design,
            &SynthOptions {
                retime_prefixes: vec!["fpu/".to_owned()],
                ..SynthOptions::default()
            },
        )
        .unwrap();
        let report = match_designs(&design, &synth, &MatchOptions::default()).unwrap();
        assert_eq!(report.state_injections, 0);
        assert_eq!(report.name_map.retimed.len(), 2);
        // Random-stimulus equivalence still ran from reset.
        assert_eq!(
            report.checked_cycles,
            MatchOptions::default().stimulus_cycles
        );
    }
}

//! Warm-start correctness: a session served from the artifact store must
//! be indistinguishable — bit for bit — from one prepared cold.

use std::path::{Path, PathBuf};
use strober::{StroberConfig, StroberFlow};
use strober_cores::{build_core, CoreConfig};
use strober_dram::{DramConfig, DramModel};
use strober_isa::{assemble, programs};
use strober_store::Store;

struct TempDir {
    path: PathBuf,
}

impl TempDir {
    fn new(label: &str) -> Self {
        let path =
            std::env::temp_dir().join(format!("strober-core-cache-{label}-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&path);
        std::fs::create_dir_all(&path).expect("create temp dir");
        TempDir { path }
    }

    fn path(&self) -> &Path {
        &self.path
    }
}

impl Drop for TempDir {
    fn drop(&mut self) {
        let _ = std::fs::remove_dir_all(&self.path);
    }
}

fn small_config() -> StroberConfig {
    StroberConfig {
        replay_length: 64,
        sample_size: 8,
        ..StroberConfig::default()
    }
}

/// Runs the full sampled flow and returns the estimate's raw bits.
fn estimate_bits(flow: &StroberFlow, image: &[u32]) -> (u64, usize) {
    let mut dram = DramModel::new(DramConfig::default(), programs::MEM_BYTES);
    dram.load(image, 0);
    let run = flow.run_sampled(&mut dram, 2_000_000).expect("sampled run");
    assert!(dram.exit_code().is_some(), "workload must halt");
    let results = flow
        .replay_all(&run.snapshots, StroberFlow::default_parallelism())
        .expect("replays succeed");
    let estimate = flow.estimate(&run, &results).expect("estimate");
    (estimate.mean_power_mw().to_bits(), results.len())
}

#[test]
fn warm_session_estimate_is_bit_identical_to_cold() {
    let dir = TempDir::new("bit_identical");
    let mut store = Store::open(dir.path()).unwrap();

    let design = build_core(&CoreConfig::rok_tiny());
    let src = programs::dhrystone(40);
    let image = assemble(&src).unwrap();

    let (cold, cold_hit) =
        StroberFlow::prepare_cached(&design, small_config(), &mut store).unwrap();
    assert!(!cold_hit, "first preparation must miss");

    let (warm, warm_hit) =
        StroberFlow::prepare_cached(&design, small_config(), &mut store).unwrap();
    assert!(warm_hit, "second preparation must hit");

    let snap = store.metrics();
    assert_eq!(
        (
            snap.counter("strober.store.hits"),
            snap.counter("strober.store.misses")
        ),
        (Some(1), Some(1))
    );

    // The cached artifacts must reproduce preparation exactly.
    assert_eq!(
        warm.synth().netlist.gates().len(),
        cold.synth().netlist.gates().len()
    );
    assert_eq!(warm.name_map(), cold.name_map());
    assert_eq!(warm.fame().meta.to_json(), cold.fame().meta.to_json());

    // Same seed, same design, same workload: the estimate must not drift
    // by even one ulp between a cold and a warm session.
    let (cold_bits, cold_replays) = estimate_bits(&cold, &image.words);
    let (warm_bits, warm_replays) = estimate_bits(&warm, &image.words);
    assert_eq!(cold_replays, warm_replays);
    assert_eq!(
        cold_bits, warm_bits,
        "warm estimate must be bit-identical to cold"
    );
}

#[test]
fn fingerprint_tracks_design_and_config() {
    let design = build_core(&CoreConfig::rok_tiny());
    let base = StroberFlow::prepare_fingerprint(&design, &small_config());
    assert_eq!(
        StroberFlow::prepare_fingerprint(&design, &small_config()),
        base,
        "fingerprint is deterministic"
    );

    let longer_window = StroberConfig {
        replay_length: 128,
        ..small_config()
    };
    assert_ne!(
        StroberFlow::prepare_fingerprint(&design, &longer_window),
        base,
        "config changes change the key"
    );

    let other_design = build_core(&CoreConfig::rok());
    assert_ne!(
        StroberFlow::prepare_fingerprint(&other_design, &small_config()),
        base,
        "design changes change the key"
    );
}

//! Moving parts of the streaming capture→replay pipeline (DESIGN.md §15).
//!
//! [`crate::StroberFlow::replay_streaming`] runs the sampled fast
//! simulation on the calling thread and hands every captured snapshot
//! through a [`BoundedQueue`] to a pool of replay workers, so gate-level
//! replay proceeds while simulation continues. Reservoir evictions are the
//! subtle part: a slot can be recaptured while its previous snapshot is
//! still queued or already replayed, and the final estimate must only see
//! the snapshots that survive in the reservoir. The [`StreamShared`]
//! ledger solves this with per-slot epochs — every placement bumps the
//! slot's epoch, workers drop work items whose epoch is stale, and a
//! recorded result is superseded the moment a fresher epoch's result
//! lands.

use crate::control::{Progress, RunControl};
use crate::error::StroberError;
use crate::estimate::ReplayResult;
use crate::flow::StroberFlow;
use std::collections::VecDeque;
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::{Arc, Condvar, Mutex};
use strober_fame::FameSnapshot;
use strober_sampling::{SampleStats, StoppingRule};

/// One captured snapshot in flight from the simulation thread to a replay
/// worker, tagged with the reservoir slot it was placed into and that
/// slot's epoch at placement time.
pub(crate) struct WorkItem {
    pub(crate) slot: usize,
    pub(crate) epoch: u64,
    pub(crate) snap: Arc<FameSnapshot>,
}

/// A minimal bounded MPMC queue (mutex + condvars; the workspace is
/// dependency-free, and `std::sync::mpsc` receivers cannot be shared by a
/// worker pool). `push` blocks while the queue is full — that is the
/// backpressure that keeps the simulation thread from racing arbitrarily
/// far ahead of replay.
pub(crate) struct BoundedQueue<T> {
    state: Mutex<QueueState<T>>,
    not_full: Condvar,
    not_empty: Condvar,
    capacity: usize,
}

struct QueueState<T> {
    items: VecDeque<T>,
    closed: bool,
}

impl<T> BoundedQueue<T> {
    pub(crate) fn new(capacity: usize) -> Self {
        BoundedQueue {
            state: Mutex::new(QueueState {
                items: VecDeque::with_capacity(capacity),
                closed: false,
            }),
            not_full: Condvar::new(),
            not_empty: Condvar::new(),
            capacity: capacity.max(1),
        }
    }

    /// Enqueues `item`, blocking while the queue is full. Returns `false`
    /// (dropping the item) if the queue was closed — a worker closes the
    /// queue when it hits an error, which unblocks a waiting producer.
    pub(crate) fn push(&self, item: T) -> bool {
        let mut state = self.state.lock().expect("queue lock");
        while state.items.len() >= self.capacity && !state.closed {
            state = self.not_full.wait(state).expect("queue lock");
        }
        if state.closed {
            return false;
        }
        state.items.push_back(item);
        drop(state);
        self.not_empty.notify_one();
        true
    }

    /// Dequeues one item, blocking while the queue is open and empty.
    /// Returns `None` once the queue is closed and drained.
    pub(crate) fn pop(&self) -> Option<T> {
        let mut state = self.state.lock().expect("queue lock");
        loop {
            if let Some(item) = state.items.pop_front() {
                drop(state);
                self.not_full.notify_one();
                return Some(item);
            }
            if state.closed {
                return None;
            }
            state = self.not_empty.wait(state).expect("queue lock");
        }
    }

    /// Dequeues one item if one is ready, without blocking.
    pub(crate) fn try_pop(&self) -> Option<T> {
        let mut state = self.state.lock().expect("queue lock");
        let item = state.items.pop_front();
        drop(state);
        if item.is_some() {
            self.not_full.notify_one();
        }
        item
    }

    /// Closes the queue: pending pops drain the backlog then observe the
    /// close, pending and future pushes fail. Idempotent.
    pub(crate) fn close(&self) {
        self.state.lock().expect("queue lock").closed = true;
        self.not_full.notify_all();
        self.not_empty.notify_all();
    }

    /// Items currently queued (for the depth gauge; racy by nature).
    pub(crate) fn len(&self) -> usize {
        self.state.lock().expect("queue lock").items.len()
    }
}

/// Per-slot bookkeeping shared by the producer and every worker. One lock
/// covers both epochs and results so a staleness check and the action it
/// guards are atomic.
struct Ledger {
    /// Current epoch of each reservoir slot; bumped on every placement.
    epochs: Vec<u64>,
    /// Freshest replay result per slot, tagged with its epoch.
    results: Vec<Option<(u64, ReplayResult)>>,
}

/// Everything [`crate::StroberFlow::replay_streaming`]'s producer and
/// replay workers share.
pub(crate) struct StreamShared {
    pub(crate) queue: BoundedQueue<WorkItem>,
    ledger: Mutex<Ledger>,
    /// Windows simulated so far — the population `N` the stopping rule's
    /// finite-population correction sees.
    pub(crate) windows: AtomicU64,
    /// Replay batches completed, for streamed progress reports.
    pub(crate) batches: AtomicU64,
    /// Trips on error or cancellation: workers bail without draining.
    abort: AtomicBool,
    /// Trips on convergence: the producer stops capturing; workers still
    /// drain the (bounded) backlog so the final sample is consistent.
    stop: AtomicBool,
    error: Mutex<Option<StroberError>>,
    /// `(achieved ε, target ε)` at the moment the stopping rule fired.
    converged: Mutex<Option<(f64, f64)>>,
}

impl StreamShared {
    pub(crate) fn new(slots: usize, queue_capacity: usize) -> Self {
        StreamShared {
            queue: BoundedQueue::new(queue_capacity),
            ledger: Mutex::new(Ledger {
                epochs: vec![0; slots],
                results: (0..slots).map(|_| None).collect(),
            }),
            windows: AtomicU64::new(0),
            batches: AtomicU64::new(0),
            abort: AtomicBool::new(false),
            stop: AtomicBool::new(false),
            error: Mutex::new(None),
            converged: Mutex::new(None),
        }
    }

    /// Bumps `slot`'s epoch for a new placement and returns it. Any
    /// queued or completed replay of the slot's previous snapshot is
    /// invalidated from this moment on.
    pub(crate) fn advance_epoch(&self, slot: usize) -> u64 {
        let mut ledger = self.ledger.lock().expect("ledger lock");
        ledger.epochs[slot] += 1;
        ledger.epochs[slot]
    }

    pub(crate) fn aborted(&self) -> bool {
        self.abort.load(Ordering::SeqCst)
    }

    pub(crate) fn stop_requested(&self) -> bool {
        self.stop.load(Ordering::SeqCst)
    }

    /// Records the first error, trips the abort flag and closes the
    /// queue so a producer blocked in `push` wakes up.
    pub(crate) fn record_error(&self, e: StroberError) {
        let mut slot = self.error.lock().expect("error lock");
        if slot.is_none() {
            *slot = Some(e);
        }
        drop(slot);
        self.abort.store(true, Ordering::SeqCst);
        self.queue.close();
    }

    pub(crate) fn take_error(&self) -> Option<StroberError> {
        self.error.lock().expect("error lock").take()
    }

    /// Drops stale items (slot recaptured since) from a worker's batch,
    /// so evicted snapshots never burn a replay lane.
    fn retain_fresh(&self, batch: &mut Vec<WorkItem>) {
        let mut stale = 0u64;
        {
            let ledger = self.ledger.lock().expect("ledger lock");
            batch.retain(|it| {
                let fresh = ledger.epochs[it.slot] == it.epoch;
                stale += u64::from(!fresh);
                fresh
            });
        }
        if stale > 0 {
            strober_probe::counter_add("strober.core.pipeline.stale_dropped", stale);
        }
    }

    /// Stores a batch's results, epoch-guarded: a result only lands if it
    /// is fresher than what the slot already holds, and a later, fresher
    /// placement supersedes it in turn.
    fn record(&self, items: &[WorkItem], results: Vec<ReplayResult>) {
        let mut superseded = 0u64;
        let mut ledger = self.ledger.lock().expect("ledger lock");
        for (it, r) in items.iter().zip(results) {
            match &ledger.results[it.slot] {
                Some((epoch, _)) if *epoch >= it.epoch => {}
                prev => {
                    superseded += u64::from(prev.is_some());
                    ledger.results[it.slot] = Some((it.epoch, r));
                }
            }
        }
        drop(ledger);
        if superseded > 0 {
            strober_probe::counter_add("strober.core.pipeline.results_superseded", superseded);
        }
    }

    /// Total powers of the results that are current (their epoch matches
    /// the slot's), i.e. the replayed portion of the *live* sample.
    fn current_powers(&self) -> Vec<f64> {
        let ledger = self.ledger.lock().expect("ledger lock");
        ledger
            .results
            .iter()
            .enumerate()
            .filter_map(|(slot, entry)| match entry {
                Some((epoch, r)) if *epoch == ledger.epochs[slot] => Some(r.power.total_mw()),
                _ => None,
            })
            .collect()
    }

    /// Re-evaluates the stopping rule against the currently replayed
    /// sample, reports [`Progress::IntervalUpdate`], and requests a stop
    /// on convergence. Called by workers after every recorded batch.
    fn evaluate_stop(&self, rule: &StoppingRule, ctl: &RunControl<'_>) {
        let powers = self.current_powers();
        if powers.len() < 2 {
            return;
        }
        let Ok(stats) = SampleStats::from_measurements(&powers) else {
            return;
        };
        // The population is the windows simulated so far; replay can
        // momentarily lead the producer's counter during the fill phase,
        // so clamp to keep the finite-population correction sane.
        let population = (self.windows.load(Ordering::Relaxed) as usize).max(stats.size());
        let interval = stats.confidence_interval(population, rule.confidence());
        let relative_error = interval.relative_error_bound();
        strober_probe::counter_add("strober.sampling.stop.evaluations", 1);
        if relative_error.is_finite() {
            strober_probe::gauge_set("strober.sampling.stop.relative_error", relative_error);
            if let Some(labels) = ctl.labels {
                strober_probe::gauge_set_labeled(
                    "strober.sampling.stop.relative_error",
                    labels,
                    relative_error,
                );
            }
        }
        ctl.report(Progress::IntervalUpdate {
            samples: stats.size() as u64,
            mean_mw: interval.mean(),
            half_width_mw: interval.half_width(),
            relative_error,
        });
        if rule.evaluate(&stats, population).is_converged() {
            let mut converged = self.converged.lock().expect("converged lock");
            if converged.is_none() {
                *converged = Some((relative_error, rule.target_epsilon()));
                strober_probe::counter_add("strober.sampling.stop.converged", 1);
            }
            drop(converged);
            self.stop.store(true, Ordering::SeqCst);
        }
    }

    /// Consumes the ledger into slot-ordered results for the first
    /// `filled` slots. Only valid after every worker has exited cleanly.
    ///
    /// # Panics
    ///
    /// Panics if a slot was never replayed or holds a stale result — both
    /// are pipeline invariant violations, not runtime conditions.
    pub(crate) fn into_results(self, filled: usize) -> Vec<ReplayResult> {
        let ledger = self.ledger.into_inner().expect("ledger lock");
        let epochs = ledger.epochs;
        ledger
            .results
            .into_iter()
            .take(filled)
            .enumerate()
            .map(|(slot, entry)| {
                let (epoch, result) = entry.expect("reservoir slot was never replayed");
                assert_eq!(epoch, epochs[slot], "stale replay survived for slot {slot}");
                result
            })
            .collect()
    }
}

/// One replay worker: pops captured snapshots, packs same-trace-length
/// batches up to `batch_lanes` wide, replays them on the batch engine and
/// records the results. Exits when the queue is closed and drained, on
/// abort/cancellation, or on the first replay error (which aborts the
/// whole pipeline).
pub(crate) fn replay_worker(
    flow: &StroberFlow,
    shared: &StreamShared,
    batch_lanes: usize,
    rule: Option<&StoppingRule>,
    ctl: &RunControl<'_>,
) {
    // An item popped while forming a batch but belonging to a different
    // trace length; it seeds the next batch instead.
    let mut carry: Option<WorkItem> = None;
    loop {
        if shared.aborted() || ctl.is_cancelled() {
            // Close the queue on the way out so a producer blocked in
            // `push` (and fellow workers blocked in `pop`) wake up —
            // without this, cancellation could deadlock the pipeline.
            shared.queue.close();
            return;
        }
        let Some(first) = carry.take().or_else(|| shared.queue.pop()) else {
            return;
        };
        let len = first.snap.trace_len();
        let mut batch = vec![first];
        while batch.len() < batch_lanes {
            match shared.queue.try_pop() {
                Some(it) if it.snap.trace_len() == len => batch.push(it),
                Some(it) => {
                    carry = Some(it);
                    break;
                }
                None => break,
            }
        }
        shared.retain_fresh(&mut batch);
        if batch.is_empty() {
            continue;
        }
        let refs: Vec<&FameSnapshot> = batch.iter().map(|it| &*it.snap).collect();
        match flow.replay_batch(&refs) {
            Ok(results) => {
                shared.record(&batch, results);
                strober_probe::counter_add("strober.core.pipeline.batches", 1);
                let done = shared.batches.fetch_add(1, Ordering::Relaxed) + 1;
                ctl.report(Progress::ReplayBatches { done, total: 0 });
                if let Some(rule) = rule {
                    shared.evaluate_stop(rule, ctl);
                }
            }
            Err(e) => {
                shared.record_error(e);
                return;
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bounded_queue_blocks_and_drains_across_threads() {
        let q = Arc::new(BoundedQueue::new(2));
        let producer = {
            let q = q.clone();
            std::thread::spawn(move || {
                for i in 0..100u32 {
                    assert!(q.push(i), "queue closed early");
                }
                q.close();
            })
        };
        let mut got = Vec::new();
        while let Some(v) = q.pop() {
            got.push(v);
        }
        producer.join().unwrap();
        assert_eq!(got, (0..100).collect::<Vec<_>>());
        assert!(q.try_pop().is_none());
        assert!(!q.push(1), "push after close must fail");
    }

    #[test]
    fn closing_wakes_a_blocked_producer() {
        let q = Arc::new(BoundedQueue::new(1));
        assert!(q.push(0u32));
        let blocked = {
            let q = q.clone();
            std::thread::spawn(move || q.push(1))
        };
        // Give the producer a moment to block on the full queue, then
        // close it out from under them.
        std::thread::sleep(std::time::Duration::from_millis(20));
        q.close();
        assert!(!blocked.join().unwrap(), "close must fail the push");
    }
}

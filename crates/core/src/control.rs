//! Cooperative run control: cancellation tokens and progress reporting.
//!
//! Long flow stages — the sampled fast simulation and the gate-level
//! replay — are divided into natural work quanta (sample windows, replay
//! batches). A [`RunControl`] lets a caller observe those quanta as they
//! complete and stop the run between them: the estimation server checks a
//! per-job [`CancelToken`] at every boundary and streams [`Progress`]
//! callbacks to the submitting client, while the one-shot CLI runs with
//! [`RunControl::default`] (never cancelled, no progress) at zero cost.
//!
//! Cancellation is *cooperative*: a cancelled run finishes its current
//! window or batch, then returns [`StroberError::Cancelled`]
//! deterministically — no partial state is observable.
//!
//! [`StroberError::Cancelled`]: crate::StroberError::Cancelled

use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;

/// A shareable cancellation flag.
///
/// Cloning is cheap (one `Arc` bump) and every clone observes the same
/// flag, so a server can hand one clone to the worker running a job and
/// keep another to trip from a `cancel` request.
#[derive(Debug, Clone, Default)]
pub struct CancelToken(Arc<AtomicBool>);

impl CancelToken {
    /// A fresh, uncancelled token.
    pub fn new() -> Self {
        Self::default()
    }

    /// Trips the flag. Idempotent; every clone observes it.
    pub fn cancel(&self) {
        self.0.store(true, Ordering::SeqCst);
    }

    /// Whether [`CancelToken::cancel`] has been called on any clone.
    pub fn is_cancelled(&self) -> bool {
        self.0.load(Ordering::SeqCst)
    }
}

/// One progress observation from a controlled run, reported at a work
/// quantum boundary.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum Progress {
    /// The sampled fast simulation advanced (reported every
    /// [`RunControl::progress_window_stride`] windows and at completion).
    SimWindows {
        /// Replay windows executed so far.
        windows: u64,
        /// Target cycles executed so far.
        target_cycles: u64,
    },
    /// Gate-level replay completed another batch.
    ReplayBatches {
        /// Batches finished so far (across all workers).
        done: u64,
        /// Total batches in this replay (0 when streaming — the total is
        /// unknown while capture is still running).
        total: u64,
    },
    /// The adaptive stopping rule re-evaluated the running estimate after
    /// a replayed batch (streaming pipeline only) — `strober top` and
    /// `watch` render these as live convergence.
    IntervalUpdate {
        /// Samples contributing to the estimate so far.
        samples: u64,
        /// Running mean power, mW.
        mean_mw: f64,
        /// Confidence-interval half width, mW.
        half_width_mw: f64,
        /// Relative error bound (half width / mean); infinite while it
        /// cannot be computed.
        relative_error: f64,
    },
}

/// Caller-provided hooks threaded through a controlled run.
///
/// The default control never cancels and reports nothing — exactly the
/// uncontrolled behaviour, with one relaxed atomic load per quantum as
/// the only overhead.
#[derive(Clone, Copy, Default)]
pub struct RunControl<'a> {
    /// Checked at every sample-window and replay-batch boundary; when
    /// tripped the run stops with [`crate::StroberError::Cancelled`].
    pub cancel: Option<&'a CancelToken>,
    /// Invoked with [`Progress`] observations. Must be `Sync`: replay
    /// workers report from their own threads.
    pub progress: Option<&'a (dyn Fn(Progress) + Sync)>,
    /// Simulation windows between `SimWindows` reports (0 = default
    /// stride of 4096). Replay batches always report each batch.
    pub progress_window_stride: u64,
    /// Dimensional labels for the run's throughput metrics. When set,
    /// the flow records `strober.core.sim_cycles_per_sec` and
    /// `strober.core.replay_samples_per_sec` both globally and as
    /// labeled series (the estimation server passes its job/design/
    /// worker labels here so live telemetry can attribute throughput).
    pub labels: Option<&'a strober_probe::Labels>,
}

impl std::fmt::Debug for RunControl<'_> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("RunControl")
            .field("cancel", &self.cancel)
            .field("progress", &self.progress.map(|_| "Fn(Progress)"))
            .field("progress_window_stride", &self.progress_window_stride)
            .field("labels", &self.labels)
            .finish()
    }
}

impl<'a> RunControl<'a> {
    /// A control that only carries a cancellation token.
    pub fn cancellable(token: &'a CancelToken) -> Self {
        RunControl {
            cancel: Some(token),
            ..RunControl::default()
        }
    }

    /// Whether the token (if any) has been tripped.
    pub fn is_cancelled(&self) -> bool {
        self.cancel.is_some_and(CancelToken::is_cancelled)
    }

    /// Reports a progress observation to the hook, if one is installed.
    pub fn report(&self, progress: Progress) {
        if let Some(hook) = self.progress {
            hook(progress);
        }
    }

    /// The effective window stride for `SimWindows` reports.
    pub fn window_stride(&self) -> u64 {
        if self.progress_window_stride == 0 {
            4096
        } else {
            self.progress_window_stride
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn token_clones_share_the_flag() {
        let a = CancelToken::new();
        let b = a.clone();
        assert!(!a.is_cancelled() && !b.is_cancelled());
        b.cancel();
        assert!(a.is_cancelled() && b.is_cancelled());
    }

    #[test]
    fn default_control_is_inert() {
        let ctl = RunControl::default();
        assert!(!ctl.is_cancelled());
        ctl.report(Progress::SimWindows {
            windows: 1,
            target_cycles: 16,
        });
        assert_eq!(ctl.window_stride(), 4096);
    }

    #[test]
    fn progress_hook_observes_reports() {
        use std::sync::Mutex;
        let seen = Mutex::new(Vec::new());
        let hook = |p: Progress| seen.lock().unwrap().push(p);
        let token = CancelToken::new();
        let ctl = RunControl {
            cancel: Some(&token),
            progress: Some(&hook),
            progress_window_stride: 2,
            labels: None,
        };
        ctl.report(Progress::ReplayBatches { done: 1, total: 3 });
        assert_eq!(ctl.window_stride(), 2);
        assert_eq!(
            seen.lock().unwrap().as_slice(),
            &[Progress::ReplayBatches { done: 1, total: 3 }]
        );
    }
}

//! Run results and the statistical energy estimate.

use std::collections::BTreeMap;
use strober_fame::FameSnapshot;
use strober_platform::PlatformStats;
use strober_power::PowerReport;
use strober_sampling::{Confidence, ConfidenceInterval, SampleStats, StatsError};

/// Why a sampled run stopped simulating.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum StopReason {
    /// The host model reported workload completion.
    WorkloadDone,
    /// The cycle budget (`max_cycles`) was exhausted first.
    MaxCycles,
    /// The adaptive stopping rule converged before the workload ended
    /// (streaming pipeline only): the estimate covers the executed prefix
    /// at the requested relative error.
    Converged {
        /// The relative error bound achieved over the final sample.
        achieved: f64,
        /// The requested target ε.
        target: f64,
    },
}

impl StopReason {
    /// Whether the run was ended by the adaptive stopping rule.
    pub fn is_converged(self) -> bool {
        matches!(self, StopReason::Converged { .. })
    }

    /// A stable lower-case identifier (`workload-done`, `max-cycles`,
    /// `converged`) for manifests and wire formats.
    pub fn as_str(self) -> &'static str {
        match self {
            StopReason::WorkloadDone => "workload-done",
            StopReason::MaxCycles => "max-cycles",
            StopReason::Converged { .. } => "converged",
        }
    }
}

/// The product of one sampled fast-simulation run.
#[derive(Debug, Clone)]
pub struct SampledRun {
    /// The replayable snapshots selected by reservoir sampling.
    pub snapshots: Vec<FameSnapshot>,
    /// Total target cycles executed.
    pub target_cycles: u64,
    /// Number of disjoint replay windows in the execution (the population
    /// size `N/L` for the confidence interval).
    pub windows: u64,
    /// Snapshot record operations performed (Table III's "Record
    /// Counts").
    pub records: u64,
    /// Platform cost-model statistics.
    pub stats: PlatformStats,
    /// Why the simulation stopped.
    pub stop: StopReason,
}

/// The product of replaying one snapshot on gate-level simulation.
///
/// Equality is exact: the batched bit-parallel replay path produces
/// results `==` to the scalar path's, a property the differential test
/// suite leans on.
#[derive(Debug, Clone, PartialEq)]
pub struct ReplayResult {
    /// The target cycle the snapshot was captured at.
    pub cycle: u64,
    /// Power over the measurement window.
    pub power: PowerReport,
    /// Output-trace values checked against the replay (all matched, or
    /// replay would have failed).
    pub outputs_checked: u64,
}

/// The workload-level energy estimate (§III-A applied to replay power
/// measurements).
#[derive(Debug, Clone)]
pub struct EnergyEstimate {
    interval: ConfidenceInterval,
    per_region_mw: BTreeMap<String, f64>,
    sample_size: usize,
    population: usize,
    target_cycles: u64,
    freq_hz: f64,
}

impl EnergyEstimate {
    /// Builds the estimate from per-snapshot total powers.
    ///
    /// # Errors
    ///
    /// Returns [`StatsError::SampleTooSmall`] with fewer than two replay
    /// results (no variance estimate) and
    /// [`StatsError::InvalidParameter`] for a confidence level outside
    /// `(0, 1)` — both previously process-aborting panics.
    pub fn from_results(
        results: &[ReplayResult],
        windows: u64,
        target_cycles: u64,
        freq_hz: f64,
        confidence: Confidence,
    ) -> Result<Self, StatsError> {
        confidence.validate()?;
        let powers: Vec<f64> = results.iter().map(|r| r.power.total_mw()).collect();
        let stats = SampleStats::from_measurements(&powers)?;
        let interval = stats.confidence_interval(windows as usize, confidence);

        let mut per_region_mw = BTreeMap::new();
        for r in results {
            for (region, b) in r.power.by_region() {
                *per_region_mw.entry(region.clone()).or_insert(0.0) += b.total_mw();
            }
        }
        for v in per_region_mw.values_mut() {
            *v /= results.len() as f64;
        }

        Ok(EnergyEstimate {
            interval,
            per_region_mw,
            sample_size: results.len(),
            population: windows as usize,
            target_cycles,
            freq_hz,
        })
    }

    /// The estimated average power in mW.
    pub fn mean_power_mw(&self) -> f64 {
        self.interval.mean()
    }

    /// The confidence interval on average power.
    pub fn interval(&self) -> &ConfidenceInterval {
        &self.interval
    }

    /// Mean power attributed to one component, mW.
    pub fn region_mw(&self, region: &str) -> f64 {
        self.per_region_mw.get(region).copied().unwrap_or(0.0)
    }

    /// The full per-component mean breakdown.
    pub fn per_region_mw(&self) -> &BTreeMap<String, f64> {
        &self.per_region_mw
    }

    /// Number of snapshots replayed.
    pub fn sample_size(&self) -> usize {
        self.sample_size
    }

    /// The population size (replay windows in the execution).
    pub fn population(&self) -> usize {
        self.population
    }

    /// Total estimated energy for the run, in millijoules:
    /// `P̄ · cycles / f`.
    pub fn total_energy_mj(&self) -> f64 {
        self.mean_power_mw() * self.target_cycles as f64 / self.freq_hz / 1e3
    }

    /// Energy per event (e.g. per instruction) in nanojoules, given the
    /// event count — Fig. 9b's EPI when fed retired instructions.
    pub fn energy_per_event_nj(&self, events: u64) -> f64 {
        if events == 0 {
            return f64::INFINITY;
        }
        self.total_energy_mj() * 1e6 / events as f64
    }
}

impl std::fmt::Display for EnergyEstimate {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        writeln!(
            f,
            "average power: {} (n={} of {} windows)",
            self.interval, self.sample_size, self.population
        )?;
        for (region, mw) in &self.per_region_mw {
            writeln!(f, "  {region:<24} {mw:>9.3} mW")?;
        }
        Ok(())
    }
}

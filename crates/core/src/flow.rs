//! The end-to-end Strober flow.

use crate::control::{Progress, RunControl};
use crate::error::StroberError;
use crate::estimate::{EnergyEstimate, ReplayResult, SampledRun, StopReason};
use crate::pipeline::{replay_worker, StreamShared, WorkItem};
use rand::rngs::StdRng;
use rand::SeedableRng;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, OnceLock};
use strober_fame::{transform, FameConfig, FameResult, FameSnapshot};
use strober_formal::{match_designs, MatchOptions, NameMap};
use strober_gates::CellLibrary;
use strober_gatesim::{BatchSim, GateSim, GateSimError, Tape, VpiLoader, MAX_LANES};
use strober_jit::{JitArtifact, JitCompiler, JitProvenance};
use strober_platform::{HostModel, HubEngine, PlatformConfig, ZynqHost};
use strober_power::PowerAnalyzer;
use strober_rtl::Design;
use strober_sampling::{Confidence, Reservoir, SampleStats, StoppingRule};
use strober_sim::{Simulator, TapeOptions};
use strober_store::{fingerprint_parts, Fingerprint, Store};
use strober_synth::{synthesize, SynthOptions, SynthResult};

/// Configuration for a Strober session.
#[derive(Debug, Clone, serde::Serialize, serde::Deserialize)]
pub struct StroberConfig {
    /// Measurement window length `L` in cycles.
    pub replay_length: u32,
    /// Extra leading trace cycles for retimed-datapath recovery (§IV-C3).
    pub warmup: u32,
    /// Reservoir sample size `n` (the paper's validation uses 30).
    pub sample_size: usize,
    /// Confidence level for the power interval (99% in Fig. 8).
    pub confidence: Confidence,
    /// Target clock frequency for power analysis (1 GHz in the paper).
    pub freq_hz: f64,
    /// RNG seed for reservoir sampling.
    pub seed: u64,
    /// Synthesis options (retiming annotations, optimisation, mangling).
    pub synth: SynthOptions,
    /// Host platform cost-model parameters.
    pub platform: PlatformConfig,
}

impl Default for StroberConfig {
    fn default() -> Self {
        StroberConfig {
            replay_length: 128,
            warmup: 0,
            sample_size: 30,
            confidence: Confidence::C99,
            freq_hz: 1.0e9,
            seed: 0x57_0BE5,
            synth: SynthOptions::default(),
            platform: PlatformConfig::default(),
        }
    }
}

/// The cacheable outputs of session preparation: everything
/// [`StroberFlow::new`] derives from the design and configuration that is
/// expensive to rebuild. The cell library and power analyzer are *not*
/// stored — they are cheap pure functions of these parts and the config.
#[derive(Debug, Clone, serde::Serialize, serde::Deserialize, serde::Blob)]
pub struct PreparedArtifact {
    /// FAME1 transform output (hub design + metadata).
    pub fame: FameResult,
    /// Synthesis output (netlist + correspondence info).
    pub synth: SynthResult,
    /// Formally verified RTL↔netlist name map.
    pub name_map: NameMap,
}

/// A fully prepared Strober session for one target design: the FAME1 hub,
/// the synthesized netlist and the verified name map.
///
/// A session additionally caches two derived executables the first run
/// builds — the lowered (and tape-optimized) hub simulator and the
/// compiled gate-level op tape — so a long-lived session (the estimation
/// server holds one per design fingerprint) pays lowering and netlist
/// compilation once, not once per job. Reuse is observable through the
/// `strober.core.hub_tape_reused` and `strober.core.gate_tape_reused`
/// probe counters.
#[derive(Debug)]
pub struct StroberFlow {
    config: StroberConfig,
    fame: FameResult,
    synth: SynthResult,
    name_map: NameMap,
    lib: CellLibrary,
    analyzer: PowerAnalyzer,
    /// Pristine lowered hub simulator, cloned per sampled run.
    hub: OnceLock<Simulator>,
    /// Compiled gate-level op tape, shared by every replay engine.
    gate_tape: OnceLock<Arc<Tape>>,
    /// Prepared native settle engine (hub_engine = jit only); `None`
    /// inside means preparation was attempted and fell back.
    jit: OnceLock<Option<JitPrep>>,
}

/// A prepared native settle engine plus its provenance, shared (via
/// `Arc`) by every hub simulator clone of the session.
#[derive(Debug)]
struct JitPrep {
    engine: Arc<strober_jit::DylibEngine>,
    provenance: JitProvenance,
    compile_ms: u64,
}

impl StroberFlow {
    /// Prepares a session: FAME1 transform, synthesis, formal matching.
    ///
    /// # Errors
    ///
    /// Returns a [`StroberError`] if the design is invalid, synthesis
    /// fails, or the formal matcher finds a discrepancy.
    pub fn new(design: &Design, config: StroberConfig) -> Result<Self, StroberError> {
        let _span = strober_probe::span("strober.core.prepare");
        Self::prepare_cold(design, config)
    }

    /// The uninstrumented cold-preparation pipeline, shared by [`Self::new`]
    /// and [`Self::prepare_cached`] so each entry point records exactly one
    /// `strober.core.prepare` span whether the store hits or not.
    fn prepare_cold(design: &Design, config: StroberConfig) -> Result<Self, StroberError> {
        // Reject an invalid confidence level before the expensive pipeline
        // runs: a bad `Level(p)` from a config file or CLI flag would
        // otherwise only surface as a panic inside `estimate`, hours into
        // a sampled run.
        config.confidence.validate()?;
        let fame = transform(
            design,
            &FameConfig {
                replay_length: config.replay_length,
                warmup: config.warmup,
            },
        )?;
        let synth = synthesize(design, &config.synth)?;
        let report = match_designs(design, &synth, &MatchOptions::default())?;
        let lib = CellLibrary::generic_45nm();
        let analyzer = PowerAnalyzer::new(&synth.netlist, &lib, config.freq_hz);
        Ok(StroberFlow {
            config,
            fame,
            synth,
            name_map: report.name_map,
            lib,
            analyzer,
            hub: OnceLock::new(),
            gate_tape: OnceLock::new(),
            jit: OnceLock::new(),
        })
    }

    /// Reassembles a session from previously prepared artifacts, skipping
    /// the FAME1 transform, synthesis and formal matching. The cheap parts
    /// (cell library, power analyzer) are rebuilt from the config.
    pub fn from_parts(config: StroberConfig, parts: PreparedArtifact) -> Self {
        let lib = CellLibrary::generic_45nm();
        let analyzer = PowerAnalyzer::new(&parts.synth.netlist, &lib, config.freq_hz);
        StroberFlow {
            config,
            fame: parts.fame,
            synth: parts.synth,
            name_map: parts.name_map,
            lib,
            analyzer,
            hub: OnceLock::new(),
            gate_tape: OnceLock::new(),
            jit: OnceLock::new(),
        }
    }

    /// The stable cache key for preparing `design` under `config`.
    ///
    /// Hashes the canonical serialization of the design and every
    /// configuration input that preparation consumes (the full config,
    /// plus the synthesis and FAME sub-configurations explicitly, so a
    /// change in how either is derived also changes the key).
    pub fn prepare_fingerprint(design: &Design, config: &StroberConfig) -> Fingerprint {
        let fame_config = FameConfig {
            replay_length: config.replay_length,
            warmup: config.warmup,
        };
        fingerprint_parts(&[
            &"strober-prepare",
            design,
            config,
            &config.synth,
            &fame_config,
        ])
    }

    /// Prepares a session through the artifact store: on a hit the
    /// transform/synthesis/matching pipeline is skipped entirely and the
    /// session is rebuilt from the cached [`PreparedArtifact`]; on a miss
    /// the session is prepared cold and the artifacts are stored
    /// (best-effort) for next time.
    ///
    /// Returns the session and whether it was served from the store.
    ///
    /// # Errors
    ///
    /// Returns the same errors as [`StroberFlow::new`]; store failures
    /// never surface, they only cost the speedup.
    pub fn prepare_cached(
        design: &Design,
        config: StroberConfig,
        store: &mut Store,
    ) -> Result<(Self, bool), StroberError> {
        let _span = strober_probe::span("strober.core.prepare");
        config.confidence.validate()?;
        let key = Self::prepare_fingerprint(design, &config);
        if let Some(parts) = store.get::<PreparedArtifact>(key) {
            return Ok((Self::from_parts(config, parts), true));
        }
        let flow = Self::prepare_cold(design, config)?;
        store.put(
            key,
            &PreparedArtifact {
                fame: flow.fame.clone(),
                synth: flow.synth.clone(),
                name_map: flow.name_map.clone(),
            },
        );
        Ok((flow, false))
    }

    /// The default replay parallelism: every available hardware thread.
    /// Falls back to 1 when the parallelism cannot be queried.
    pub fn default_parallelism() -> usize {
        std::thread::available_parallelism()
            .map(std::num::NonZeroUsize::get)
            .unwrap_or(1)
    }

    /// The session configuration.
    pub fn config(&self) -> &StroberConfig {
        &self.config
    }

    /// The FAME1 transform output (hub design + metadata).
    pub fn fame(&self) -> &FameResult {
        &self.fame
    }

    /// The synthesis output.
    pub fn synth(&self) -> &SynthResult {
        &self.synth
    }

    /// The verified RTL↔netlist name map.
    pub fn name_map(&self) -> &NameMap {
        &self.name_map
    }

    /// The cell library used for power analysis.
    pub fn library(&self) -> &CellLibrary {
        &self.lib
    }

    /// A ready-to-run hub simulator: lowered and tape-optimized on first
    /// use, cloned from the pristine cached copy afterwards. Cloning
    /// reproduces the fresh-lowering state exactly (cycle 0, reset
    /// registers/memories), so reuse is bit-invisible.
    fn hub_sim(&self) -> Result<Simulator, StroberError> {
        let mut sim = self.pristine_hub()?.clone();
        // With the JIT engine selected, share the session's prepared
        // native settle code with every clone; compile it now (through
        // the temp cache) if no store-backed preparation ran first.
        if self.config.platform.hub_engine == HubEngine::Jit {
            if let Some(prep) = self.jit_prep(None) {
                sim.attach_jit(prep)
                    .expect("session engine was prepared from this very tape");
            }
        }
        Ok(sim)
    }

    /// The pristine lowered hub simulator (never stepped, no engine
    /// attached), built on first use.
    fn pristine_hub(&self) -> Result<&Simulator, StroberError> {
        if let Some(sim) = self.hub.get() {
            strober_probe::counter_add("strober.core.hub_tape_reused", 1);
            return Ok(sim);
        }
        let options = if self.config.platform.tape_opt {
            TapeOptions::all()
        } else {
            TapeOptions::none()
        };
        let sim = Simulator::with_options(&self.fame.hub, &options).map_err(|e| {
            strober_sim::SimError::UnknownName {
                kind: "hub design",
                name: e.to_string(),
            }
        })?;
        strober_probe::counter_add("strober.core.hub_tape_lowered", 1);
        // A concurrent first run may have won the race; either copy is
        // equivalent, so the loser's work is merely discarded.
        let _ = self.hub.set(sim);
        Ok(self.hub.get().expect("just set"))
    }

    /// The artifact-store key for this session's compiled settle dylib:
    /// generated-source signature (a content hash of the design's
    /// optimized tape and the codegen revision) + tape options + rustc
    /// version, so any of the three changing misses cleanly.
    fn jit_fingerprint(sig: u64, tape_opt: bool, rustc: &str) -> Fingerprint {
        fingerprint_parts(&[&"strober-jit", &sig, &tape_opt, &rustc])
    }

    /// Prepares the native settle engine through the artifact store,
    /// mirroring [`prepare_cached`](Self::prepare_cached)'s ladder: a
    /// stored dylib attaches without invoking `rustc` (provenance
    /// `store`), a fresh compile is persisted for next time (`cold`), and
    /// the in-between case — compiled earlier into the same cache
    /// directory — is `warm`. No-op unless the session's
    /// [`HubEngine::Jit`] is selected; on any failure the engines fall
    /// back (see `strober.jit.fallback`) and results are unaffected.
    ///
    /// Returns `(provenance, compile_ms)` when a native engine is ready.
    /// Without a store the compile still runs (and dedupes) through the
    /// on-disk temp cache; only the artifact-store round-trip is skipped.
    pub fn prepare_jit(&self, store: Option<&mut Store>) -> Option<(&'static str, u64)> {
        if self.config.platform.hub_engine != HubEngine::Jit {
            return None;
        }
        self.jit_prep(store);
        self.jit_info()
    }

    /// The settle engine this session's hub simulators run under, after
    /// fallback: `tape-jit` only when a compiled engine is actually
    /// prepared, `tape-partitioned` when the thread count selects the
    /// parallel engine, `tape` otherwise. For run manifests and the
    /// `engine` metric label.
    pub fn hub_engine_name(&self) -> &'static str {
        match self.config.platform.hub_engine {
            HubEngine::Interp => "tape",
            HubEngine::Partitioned => "tape-partitioned",
            HubEngine::Jit => {
                if self.jit_info().is_some() {
                    "tape-jit"
                } else {
                    "tape"
                }
            }
            HubEngine::Auto => {
                if self.config.platform.hub_threads > 1 {
                    "tape-partitioned"
                } else {
                    "tape"
                }
            }
        }
    }

    /// The prepared native engine's `(provenance, compile_ms)`, if one is
    /// attached to this session. For run manifests.
    pub fn jit_info(&self) -> Option<(&'static str, u64)> {
        self.jit
            .get()
            .and_then(|p| p.as_ref())
            .map(|p| (p.provenance.as_str(), p.compile_ms))
    }

    /// Builds (once) and returns the shared native settle engine. With a
    /// store, compiled dylibs round-trip through it as [`JitArtifact`]s;
    /// without one, the temp-directory file cache still dedupes compiles
    /// across sessions. `None` means preparation failed and interpreted
    /// engines take over.
    fn jit_prep(&self, store: Option<&mut Store>) -> Option<Arc<strober_jit::DylibEngine>> {
        let prep = self.jit.get_or_init(|| {
            let _span = strober_probe::span("strober.core.jit_prepare");
            let source = match self.pristine_hub() {
                Ok(sim) => sim.jit_source(),
                Err(e) => {
                    strober_jit::record_fallback(&e.to_string());
                    return None;
                }
            };
            let Some(rustc) = strober_jit::rustc_version() else {
                strober_jit::record_fallback("no rustc on PATH");
                return None;
            };
            let (compiler, store) = match store {
                Some(store) => (JitCompiler::new(store.root().join("jit")), Some(store)),
                None => (JitCompiler::in_temp(), None),
            };
            let key = Self::jit_fingerprint(source.sig, self.config.platform.tape_opt, rustc);
            let mut store = store;
            // Store hit: materialize the cached bytes, skip rustc.
            let stored = store.as_deref_mut().and_then(|s| s.get::<JitArtifact>(key));
            if let Some(artifact) = stored {
                match compiler.prepare_artifact(&source, &artifact) {
                    Ok((engine, outcome)) => {
                        strober_probe::counter_add("strober.jit.prepare_store", 1);
                        return Some(JitPrep {
                            engine: Arc::new(engine),
                            provenance: outcome.provenance,
                            compile_ms: artifact.compile_ms,
                        });
                    }
                    Err(e) => {
                        // A stale store entry under a content key should
                        // not happen; recompile below rather than fail.
                        strober_probe::warn!("stored jit artifact unusable: {e}");
                    }
                }
            }
            match compiler.prepare(&source) {
                Ok((engine, outcome)) => {
                    strober_probe::counter_add(
                        match outcome.provenance {
                            JitProvenance::Cold => "strober.jit.prepare_cold",
                            _ => "strober.jit.prepare_warm",
                        },
                        1,
                    );
                    if outcome.provenance == JitProvenance::Cold {
                        if let Some(store) = store {
                            if let Ok(dylib) = std::fs::read(&outcome.dylib_path) {
                                store.put(
                                    key,
                                    &JitArtifact {
                                        rustc: rustc.to_owned(),
                                        sig: source.sig,
                                        dylib,
                                        compile_ms: outcome.compile_ms,
                                    },
                                );
                            }
                        }
                    }
                    Some(JitPrep {
                        engine: Arc::new(engine),
                        provenance: outcome.provenance,
                        compile_ms: outcome.compile_ms,
                    })
                }
                Err(e) => {
                    strober_jit::record_fallback(&e.to_string());
                    None
                }
            }
        });
        prep.as_ref().map(|p| p.engine.clone())
    }

    /// The compiled gate-level op tape, built from the synthesized
    /// netlist on first use and shared (via `Arc`) by every subsequent
    /// replay engine.
    fn replay_tape(&self) -> Result<Arc<Tape>, StroberError> {
        if let Some(tape) = self.gate_tape.get() {
            strober_probe::counter_add("strober.core.gate_tape_reused", 1);
            return Ok(tape.clone());
        }
        let tape = Arc::new(Tape::compile(&self.synth.netlist)?);
        strober_probe::counter_add("strober.core.gate_tape_compiled", 1);
        let _ = self.gate_tape.set(tape.clone());
        Ok(tape)
    }

    /// Runs the workload on the host platform with reservoir sampling:
    /// the execution is divided into `L`-cycle windows, each window is a
    /// population element, and selected windows are captured as replayable
    /// snapshots (state scan + I/O trace).
    ///
    /// Stops when the host model reports completion or after `max_cycles`.
    ///
    /// # Errors
    ///
    /// Returns a [`StroberError`] if the hub cannot be simulated.
    pub fn run_sampled(
        &self,
        model: &mut dyn HostModel,
        max_cycles: u64,
    ) -> Result<SampledRun, StroberError> {
        self.run_sampled_controlled(model, max_cycles, &RunControl::default())
    }

    /// [`StroberFlow::run_sampled`] with cooperative run control: the
    /// cancellation token is checked at every sample-window boundary
    /// (returning [`StroberError::Cancelled`] when tripped), and
    /// [`Progress::SimWindows`] is reported every
    /// [`RunControl::window_stride`] windows. The default control
    /// reproduces [`StroberFlow::run_sampled`] exactly.
    ///
    /// # Errors
    ///
    /// Returns [`StroberError::Cancelled`] when the token trips, and the
    /// same errors as [`StroberFlow::run_sampled`] otherwise.
    pub fn run_sampled_controlled(
        &self,
        model: &mut dyn HostModel,
        max_cycles: u64,
        ctl: &RunControl<'_>,
    ) -> Result<SampledRun, StroberError> {
        let _span = strober_probe::span("strober.core.run_sampled");
        let t0 = std::time::Instant::now();
        let mut host =
            ZynqHost::with_sim(&self.fame, self.config.platform.clone(), self.hub_sim()?)?;
        let window = host.trace_window();
        let mut rng = StdRng::seed_from_u64(self.config.seed);
        let mut reservoir: Reservoir<FameSnapshot> = Reservoir::new(self.config.sample_size);

        let stride = ctl.window_stride();
        let mut windows = 0u64;
        // Tracks the window count of the last report, so the completion
        // report is skipped when the count lands exactly on a stride
        // boundary (the in-loop report already covered it).
        let mut last_report = u64::MAX;
        while host.target_cycles() < max_cycles && !model.is_done() {
            if ctl.is_cancelled() {
                return Err(StroberError::Cancelled);
            }
            match reservoir.decide(&mut rng) {
                Some(slot) => {
                    let snap = host.capture_snapshot(model)?;
                    reservoir.place(slot, snap)?;
                }
                None => {
                    host.run(model, window)?;
                }
            }
            windows += 1;
            if windows.is_multiple_of(stride) {
                last_report = windows;
                ctl.report(Progress::SimWindows {
                    windows,
                    target_cycles: host.target_cycles(),
                });
            }
        }
        if last_report != windows {
            ctl.report(Progress::SimWindows {
                windows,
                target_cycles: host.target_cycles(),
            });
        }

        if strober_probe::enabled() {
            let elapsed = t0.elapsed().as_secs_f64();
            if elapsed > 0.0 {
                let rate = host.target_cycles() as f64 / elapsed;
                strober_probe::gauge_set("strober.core.sim_cycles_per_sec", rate);
                if let Some(labels) = ctl.labels {
                    strober_probe::gauge_set_labeled(
                        "strober.core.sim_cycles_per_sec",
                        labels,
                        rate,
                    );
                }
            }
        }
        let records = reservoir.records();
        let stop = if model.is_done() {
            StopReason::WorkloadDone
        } else {
            StopReason::MaxCycles
        };
        Ok(SampledRun {
            snapshots: reservoir.into_sample(),
            target_cycles: host.target_cycles(),
            windows,
            records,
            stats: host.stats(),
            stop,
        })
    }

    /// Runs the sampled fast simulation and gate-level replay as one
    /// streaming pipeline: captured snapshots flow through a bounded
    /// queue to `parallelism` persistent replay workers (each batching up
    /// to `batch_lanes` same-length snapshots onto the bit-parallel
    /// engine) while simulation continues on the calling thread — replay
    /// overlaps capture instead of waiting for it.
    ///
    /// A reservoir eviction invalidates any queued or completed replay of
    /// the evicted snapshot (per-slot epochs; see `pipeline.rs`), so the
    /// final results correspond exactly to the surviving uniform sample.
    ///
    /// With `stopping = None` the returned run and results are
    /// bit-identical to [`StroberFlow::run_sampled_controlled`] followed
    /// by [`StroberFlow::replay_all_controlled`] — same RNG sequence,
    /// same snapshots, same slot-ordered results. With a
    /// [`StoppingRule`], workers re-evaluate the confidence interval
    /// after every replayed batch (reporting
    /// [`Progress::IntervalUpdate`]) and capture stops as soon as the
    /// target relative error is met — the run then reports
    /// [`StopReason::Converged`] and the estimate covers the executed
    /// prefix of the workload.
    ///
    /// # Errors
    ///
    /// Returns [`StroberError::Cancelled`] when the control's token
    /// trips, [`StroberError::GateSim`] for a `batch_lanes` outside
    /// `1..=64`, and otherwise the first simulation or replay error
    /// encountered on any thread.
    pub fn replay_streaming(
        &self,
        model: &mut dyn HostModel,
        max_cycles: u64,
        parallelism: usize,
        batch_lanes: usize,
        stopping: Option<StoppingRule>,
        ctl: &RunControl<'_>,
    ) -> Result<(SampledRun, Vec<ReplayResult>), StroberError> {
        let _span = strober_probe::span("strober.core.replay_streaming");
        if batch_lanes == 0 || batch_lanes > MAX_LANES {
            return Err(GateSimError::BadLaneCount { lanes: batch_lanes }.into());
        }
        let parallelism = parallelism.max(1);
        let t0 = std::time::Instant::now();
        let mut host =
            ZynqHost::with_sim(&self.fame, self.config.platform.clone(), self.hub_sim()?)?;
        let window = host.trace_window();
        let mut rng = StdRng::seed_from_u64(self.config.seed);
        let mut reservoir: Reservoir<Arc<FameSnapshot>> = Reservoir::new(self.config.sample_size);

        // Enough queue depth to keep every lane of every worker fed, with
        // backpressure well before capture can run away from replay.
        let queue_capacity = (parallelism * batch_lanes).max(2);
        let shared = StreamShared::new(self.config.sample_size, queue_capacity);
        let stride = ctl.window_stride();
        let mut windows = 0u64;
        let mut last_report = u64::MAX;

        let producer_result: Result<(), StroberError> = std::thread::scope(|scope| {
            for wi in 0..parallelism {
                let shared = &shared;
                let rule = stopping.as_ref();
                scope.spawn(move || {
                    let _span = strober_probe::span(format!("strober.core.stream_worker.{wi}"));
                    replay_worker(self, shared, batch_lanes, rule, ctl);
                });
            }
            // The producer: the exact sequential sampling loop, with each
            // placement also queued for streaming replay. The decide/
            // capture order matches `run_sampled_controlled` so the RNG
            // sequence — and therefore the selected sample — is identical.
            let result = (|| {
                while host.target_cycles() < max_cycles && !model.is_done() {
                    if ctl.is_cancelled() {
                        return Err(StroberError::Cancelled);
                    }
                    if shared.aborted() || shared.stop_requested() {
                        break;
                    }
                    match reservoir.decide(&mut rng) {
                        Some(slot) => {
                            let snap = Arc::new(host.capture_snapshot(model)?);
                            reservoir.place(slot, snap.clone())?;
                            let epoch = shared.advance_epoch(slot);
                            strober_probe::counter_add("strober.core.pipeline.streamed", 1);
                            if !shared.queue.push(WorkItem { slot, epoch, snap }) {
                                // A worker hit an error and closed the
                                // queue; its error surfaces after join.
                                break;
                            }
                            strober_probe::gauge_set(
                                "strober.core.pipeline.queue_depth",
                                shared.queue.len() as f64,
                            );
                        }
                        None => {
                            host.run(model, window)?;
                        }
                    }
                    windows += 1;
                    shared.windows.store(windows, Ordering::Relaxed);
                    if windows.is_multiple_of(stride) {
                        last_report = windows;
                        ctl.report(Progress::SimWindows {
                            windows,
                            target_cycles: host.target_cycles(),
                        });
                    }
                }
                Ok(())
            })();
            // Capture is over (or failed): close the queue so workers
            // drain the backlog and exit. On abort they bail immediately.
            shared.queue.close();
            result
        });
        producer_result?;
        if let Some(e) = shared.take_error() {
            return Err(e);
        }
        if ctl.is_cancelled() {
            return Err(StroberError::Cancelled);
        }
        if last_report != windows {
            ctl.report(Progress::SimWindows {
                windows,
                target_cycles: host.target_cycles(),
            });
        }

        if strober_probe::enabled() {
            let elapsed = t0.elapsed().as_secs_f64();
            if elapsed > 0.0 {
                let rate = host.target_cycles() as f64 / elapsed;
                strober_probe::gauge_set("strober.core.sim_cycles_per_sec", rate);
                if let Some(labels) = ctl.labels {
                    strober_probe::gauge_set_labeled(
                        "strober.core.sim_cycles_per_sec",
                        labels,
                        rate,
                    );
                }
            }
        }

        let records = reservoir.records();
        let snapshots: Vec<FameSnapshot> = reservoir
            .into_sample()
            .into_iter()
            .map(|a| Arc::try_unwrap(a).unwrap_or_else(|a| (*a).clone()))
            .collect();
        let results = shared.into_results(snapshots.len());
        record_replay_rate(results.len(), t0, ctl);

        // The stop reason, with the achieved ε recomputed over the final
        // drained sample (the in-flight trigger evaluated a subset).
        let stop = match stopping {
            Some(rule) if !model.is_done() && host.target_cycles() < max_cycles => {
                let powers: Vec<f64> = results.iter().map(|r| r.power.total_mw()).collect();
                let achieved = SampleStats::from_measurements(&powers)
                    .map(|stats| {
                        stats
                            .confidence_interval(windows as usize, rule.confidence())
                            .relative_error_bound()
                    })
                    .unwrap_or(f64::INFINITY);
                StopReason::Converged {
                    achieved,
                    target: rule.target_epsilon(),
                }
            }
            _ if model.is_done() => StopReason::WorkloadDone,
            _ => StopReason::MaxCycles,
        };
        let run = SampledRun {
            snapshots,
            target_cycles: host.target_cycles(),
            windows,
            records,
            stats: host.stats(),
            stop,
        };
        Ok((run, results))
    }

    /// Assembles one snapshot's bulk-load state through the verified name
    /// map: per-flop booleans plus per-address SRAM words. Retimed
    /// registers are skipped — the warmup prefix recovers them instead.
    #[allow(clippy::type_complexity)]
    fn scan_state(
        &self,
        snapshot: &FameSnapshot,
    ) -> Result<(Vec<(String, bool)>, Vec<(String, usize, u64)>), StroberError> {
        let mut dff_values = Vec::new();
        for (name, value) in &snapshot.regs {
            if self.name_map.retimed.iter().any(|r| r == name) {
                continue;
            }
            let dffs = self
                .name_map
                .regs
                .get(name)
                .ok_or_else(|| StroberError::UnmappedState { name: name.clone() })?;
            for (i, dff) in dffs.iter().enumerate() {
                dff_values.push((dff.clone(), (value >> i) & 1 == 1));
            }
        }
        let mut sram_words = Vec::new();
        for (name, contents) in &snapshot.mems {
            let macro_name = self
                .name_map
                .mems
                .get(name)
                .ok_or_else(|| StroberError::UnmappedState { name: name.clone() })?;
            for (addr, word) in contents.iter().enumerate() {
                sram_words.push((macro_name.clone(), addr, *word));
            }
        }
        Ok((dff_values, sram_words))
    }

    /// Replays one snapshot on gate-level simulation: forces the recorded
    /// inputs for the `warmup` prefix (recovering retimed-datapath state,
    /// §IV-C3), loads the scanned architectural state through the verified
    /// name map (via the VPI-style bulk loader) at the measurement-window
    /// boundary, checks every recorded output inside the window, and
    /// measures power over the `L`-cycle window.
    ///
    /// # Errors
    ///
    /// Returns [`StroberError::ReplayMismatch`] when gate-level outputs
    /// diverge from the trace, [`StroberError::UnmappedState`] for
    /// snapshot state with no mapping, and loader errors otherwise.
    pub fn replay(&self, snapshot: &FameSnapshot) -> Result<ReplayResult, StroberError> {
        let _span = strober_probe::span("strober.core.replay_sample");
        let t0 = strober_probe::enabled().then(std::time::Instant::now);
        let mut sim = GateSim::with_tape(self.replay_tape()?, &self.synth.netlist);

        let (dff_values, sram_words) = self.scan_state(snapshot)?;
        let warmup = self.config.warmup as usize;
        let total = snapshot.trace_len();
        let mut outputs_checked = 0u64;
        for t in 0..total {
            for (port, values) in &snapshot.inputs {
                sim.poke_port(port, values[t])?;
            }
            if t == warmup {
                // The state scan happened `warmup` cycles into the traced
                // window: load it now. Retimed (unmapped) netlist
                // registers keep the values the forced-input prefix gave
                // them — that prefix covers their pipeline depth.
                VpiLoader::load(&mut sim, &dff_values, &sram_words)?;
                sim.reset_activity();
            }
            if t >= warmup {
                for (port, values) in &snapshot.outputs {
                    let got = sim.peek_port(port)?;
                    if got != values[t] {
                        return Err(StroberError::ReplayMismatch {
                            output: port.clone(),
                            offset: t,
                            expected: values[t],
                            got,
                        });
                    }
                    outputs_checked += 1;
                }
            }
            sim.step();
        }

        let power = self.analyzer.analyze(&sim.activity());
        if let Some(t0) = t0 {
            strober_probe::histogram_record(
                "strober.core.replay_sample_ms",
                t0.elapsed().as_secs_f64() * 1e3,
            );
        }
        Ok(ReplayResult {
            cycle: snapshot.cycle,
            power,
            outputs_checked,
        })
    }

    /// Replays a batch of up to 64 snapshots simultaneously on the
    /// bit-parallel [`BatchSim`], one snapshot per bit-lane. Semantics
    /// are identical to calling [`StroberFlow::replay`] on each snapshot
    /// (same warmup forcing, same bulk load at the window boundary, same
    /// output checking, same power analysis), and results are
    /// bit-identical — only the evaluation is shared.
    ///
    /// All snapshots must have the same trace length: lanes share one
    /// instruction stream, hence one cycle count.
    ///
    /// # Errors
    ///
    /// Returns [`StroberError::GateSim`] for an empty or over-64 batch,
    /// [`StroberError::BatchTraceLengthMismatch`] if the snapshots' trace
    /// lengths differ ([`StroberFlow::replay_all_batched`] groups by
    /// length for you), and the same errors as [`StroberFlow::replay`]
    /// otherwise; a mismatch on any lane fails the whole batch.
    pub fn replay_batch(
        &self,
        snapshots: &[&FameSnapshot],
    ) -> Result<Vec<ReplayResult>, StroberError> {
        let _span = strober_probe::span("strober.core.replay_batch");
        let t0 = strober_probe::enabled().then(std::time::Instant::now);
        let lanes = snapshots.len();
        if lanes == 0 || lanes > MAX_LANES {
            return Err(GateSimError::BadLaneCount { lanes }.into());
        }
        let total = snapshots[0].trace_len();
        for (lane, s) in snapshots.iter().enumerate() {
            if s.trace_len() != total {
                return Err(StroberError::BatchTraceLengthMismatch {
                    expected: total,
                    got: s.trace_len(),
                    lane,
                });
            }
        }
        let mut sim = BatchSim::with_tape_lanes(self.replay_tape()?, &self.synth.netlist, lanes)?;

        // Pack every lane's scanned state: one word per flop (bit l =
        // lane l's value), one lane-vector per SRAM word.
        let mut dff_words: Vec<(String, u64)> = Vec::new();
        let mut dff_slots: std::collections::HashMap<String, usize> =
            std::collections::HashMap::new();
        let mut sram_words: Vec<(String, usize, Vec<u64>)> = Vec::new();
        let mut sram_slots: std::collections::HashMap<(String, usize), usize> =
            std::collections::HashMap::new();
        for (lane, snap) in snapshots.iter().enumerate() {
            let (dffs, srams) = self.scan_state(snap)?;
            for (name, v) in dffs {
                let slot = *dff_slots.entry(name.clone()).or_insert_with(|| {
                    dff_words.push((name, 0));
                    dff_words.len() - 1
                });
                dff_words[slot].1 |= u64::from(v) << lane;
            }
            for (name, addr, word) in srams {
                let slot = *sram_slots.entry((name.clone(), addr)).or_insert_with(|| {
                    sram_words.push((name, addr, vec![0; lanes]));
                    sram_words.len() - 1
                });
                sram_words[slot].2[lane] = word;
            }
        }

        let warmup = self.config.warmup as usize;
        let mut checked_per_lane = 0u64;
        let mut lane_vals = vec![0u64; lanes];
        for t in 0..total {
            for (pi, (port, _)) in snapshots[0].inputs.iter().enumerate() {
                for (lane, snap) in snapshots.iter().enumerate() {
                    debug_assert_eq!(snap.inputs[pi].0, *port);
                    lane_vals[lane] = snap.inputs[pi].1[t];
                }
                sim.poke_port_lanes(port, &lane_vals)?;
            }
            if t == warmup {
                VpiLoader::load_batch(&mut sim, &dff_words, &sram_words)?;
                sim.reset_activity();
            }
            if t >= warmup {
                for (pi, (port, _)) in snapshots[0].outputs.iter().enumerate() {
                    sim.peek_port_lanes_into(port, &mut lane_vals)?;
                    for (lane, snap) in snapshots.iter().enumerate() {
                        debug_assert_eq!(snap.outputs[pi].0, *port);
                        let expected = snap.outputs[pi].1[t];
                        if lane_vals[lane] != expected {
                            return Err(StroberError::ReplayMismatch {
                                output: port.clone(),
                                offset: t,
                                expected,
                                got: lane_vals[lane],
                            });
                        }
                    }
                    checked_per_lane += 1;
                }
            }
            sim.step();
        }

        let powers = self.analyzer.analyze_all(&sim.activities());
        strober_probe::counter_add("strober.core.replay_batches", 1);
        strober_probe::counter_add("strober.core.replay_batch_lanes", lanes as u64);
        if let Some(t0) = t0 {
            strober_probe::histogram_record(
                "strober.core.replay_batch_ms",
                t0.elapsed().as_secs_f64() * 1e3,
            );
        }
        Ok(powers
            .into_iter()
            .zip(snapshots)
            .map(|(power, snap)| ReplayResult {
                cycle: snap.cycle,
                power,
                outputs_checked: checked_per_lane,
            })
            .collect())
    }

    /// Replays all snapshots with bit-parallel batching and worker
    /// threads composed: snapshots are grouped by trace length, packed
    /// into batches of up to `batch_lanes` lanes, and the batches are
    /// distributed over `parallelism` threads (`threads × lanes`
    /// concurrent replays). Results come back in snapshot order and are
    /// bit-identical to the scalar path.
    ///
    /// `batch_lanes == 1` selects the scalar [`StroberFlow::replay`]
    /// reference path.
    ///
    /// # Errors
    ///
    /// Returns [`StroberError::GateSim`] for a `batch_lanes` outside
    /// `1..=64`, otherwise the first replay error encountered.
    pub fn replay_all_batched(
        &self,
        snapshots: &[FameSnapshot],
        parallelism: usize,
        batch_lanes: usize,
    ) -> Result<Vec<ReplayResult>, StroberError> {
        self.replay_all_controlled(snapshots, parallelism, batch_lanes, &RunControl::default())
    }

    /// [`StroberFlow::replay_all_batched`] with cooperative run control:
    /// the cancellation token is checked before every batch (on every
    /// worker thread), and [`Progress::ReplayBatches`] is reported as
    /// each batch completes. The default control reproduces
    /// [`StroberFlow::replay_all_batched`] exactly — results are
    /// bit-identical either way.
    ///
    /// # Errors
    ///
    /// Returns [`StroberError::Cancelled`] when the token trips, and the
    /// same errors as [`StroberFlow::replay_all_batched`] otherwise.
    pub fn replay_all_controlled(
        &self,
        snapshots: &[FameSnapshot],
        parallelism: usize,
        batch_lanes: usize,
        ctl: &RunControl<'_>,
    ) -> Result<Vec<ReplayResult>, StroberError> {
        let _span = strober_probe::span("strober.core.replay");
        if batch_lanes == 0 || batch_lanes > MAX_LANES {
            return Err(GateSimError::BadLaneCount { lanes: batch_lanes }.into());
        }
        let parallelism = parallelism.max(1);
        let replay_t0 = std::time::Instant::now();
        if batch_lanes == 1 {
            let out = self.replay_all_scalar(snapshots, parallelism, ctl)?;
            record_replay_rate(out.len(), replay_t0, ctl);
            return Ok(out);
        }

        // Batch formation: group by trace length (lanes share one
        // instruction stream), then cut each group into lane-sized runs,
        // keeping the original order inside every batch.
        let mut by_len: Vec<(usize, Vec<usize>)> = Vec::new();
        for (i, s) in snapshots.iter().enumerate() {
            let len = s.trace_len();
            match by_len.iter_mut().find(|(l, _)| *l == len) {
                Some((_, v)) => v.push(i),
                None => by_len.push((len, vec![i])),
            }
        }
        let mut batches: Vec<Vec<usize>> = Vec::new();
        for (_, idxs) in by_len {
            for chunk in idxs.chunks(batch_lanes) {
                batches.push(chunk.to_vec());
            }
        }

        let total_batches = batches.len() as u64;
        let done_batches = AtomicU64::new(0);
        let bump = |ctl: &RunControl<'_>| {
            let done = done_batches.fetch_add(1, Ordering::Relaxed) + 1;
            ctl.report(Progress::ReplayBatches {
                done,
                total: total_batches,
            });
        };

        let mut slots: Vec<Option<ReplayResult>> = (0..snapshots.len()).map(|_| None).collect();
        if parallelism == 1 || batches.len() <= 1 {
            for b in &batches {
                if ctl.is_cancelled() {
                    return Err(StroberError::Cancelled);
                }
                let refs: Vec<&FameSnapshot> = b.iter().map(|&i| &snapshots[i]).collect();
                for (&i, r) in b.iter().zip(self.replay_batch(&refs)?) {
                    slots[i] = Some(r);
                }
                bump(ctl);
            }
        } else {
            let chunk = batches.len().div_ceil(parallelism);
            let mut results: Vec<Option<Result<Vec<ReplayResult>, StroberError>>> =
                (0..batches.len()).map(|_| None).collect();
            std::thread::scope(|scope| {
                let mut handles = Vec::new();
                for (ci, block) in batches.chunks(chunk).enumerate() {
                    let flow = &*self;
                    let bump = &bump;
                    handles.push((
                        ci,
                        scope.spawn(move || {
                            let _span =
                                strober_probe::span(format!("strober.core.replay_worker.{ci}"));
                            block
                                .iter()
                                .map(|b| {
                                    if ctl.is_cancelled() {
                                        return Err(StroberError::Cancelled);
                                    }
                                    let refs: Vec<&FameSnapshot> =
                                        b.iter().map(|&i| &snapshots[i]).collect();
                                    let r = flow.replay_batch(&refs);
                                    if r.is_ok() {
                                        bump(ctl);
                                    }
                                    r
                                })
                                .collect::<Vec<_>>()
                        }),
                    ));
                }
                for (ci, h) in handles {
                    for (j, r) in h
                        .join()
                        .expect("replay worker panicked")
                        .into_iter()
                        .enumerate()
                    {
                        results[ci * chunk + j] = Some(r);
                    }
                }
            });
            for (b, r) in batches.iter().zip(results) {
                for (&i, r) in b.iter().zip(r.expect("all slots filled")?) {
                    slots[i] = Some(r);
                }
            }
        }
        record_replay_rate(snapshots.len(), replay_t0, ctl);
        Ok(slots
            .into_iter()
            .map(|r| r.expect("every snapshot replayed"))
            .collect())
    }

    /// Replays all snapshots, distributing them over `parallelism` worker
    /// threads — snapshots are independent, exactly as §III-B observes.
    /// Uses full 64-lane bit-parallel batching; call
    /// [`StroberFlow::replay_all_batched`] to pick the lane count.
    ///
    /// # Errors
    ///
    /// Returns the first replay error encountered.
    pub fn replay_all(
        &self,
        snapshots: &[FameSnapshot],
        parallelism: usize,
    ) -> Result<Vec<ReplayResult>, StroberError> {
        self.replay_all_batched(snapshots, parallelism, MAX_LANES)
    }

    /// The scalar reference path: one snapshot per replay, chunked over
    /// worker threads. Each snapshot is one cancellation / progress
    /// quantum (a batch of one).
    fn replay_all_scalar(
        &self,
        snapshots: &[FameSnapshot],
        parallelism: usize,
        ctl: &RunControl<'_>,
    ) -> Result<Vec<ReplayResult>, StroberError> {
        let total = snapshots.len() as u64;
        let done = AtomicU64::new(0);
        let one = |s: &FameSnapshot| {
            if ctl.is_cancelled() {
                return Err(StroberError::Cancelled);
            }
            let r = self.replay(s)?;
            ctl.report(Progress::ReplayBatches {
                done: done.fetch_add(1, Ordering::Relaxed) + 1,
                total,
            });
            Ok(r)
        };
        if parallelism == 1 || snapshots.len() <= 1 {
            return snapshots.iter().map(one).collect();
        }
        let chunk = snapshots.len().div_ceil(parallelism);
        let mut out: Vec<Option<Result<ReplayResult, StroberError>>> =
            (0..snapshots.len()).map(|_| None).collect();
        std::thread::scope(|scope| {
            let mut handles = Vec::new();
            for (ci, block) in snapshots.chunks(chunk).enumerate() {
                let one = &one;
                handles.push((
                    ci,
                    scope.spawn(move || {
                        let _span = strober_probe::span(format!("strober.core.replay_worker.{ci}"));
                        block.iter().map(one).collect::<Vec<_>>()
                    }),
                ));
            }
            for (ci, h) in handles {
                let results = h.join().expect("replay worker panicked");
                for (i, r) in results.into_iter().enumerate() {
                    out[ci * chunk + i] = Some(r);
                }
            }
        });
        out.into_iter()
            .map(|r| r.expect("all slots filled"))
            .collect()
    }

    /// Combines a sampled run and its replay results into the final
    /// energy estimate with a confidence interval.
    ///
    /// # Errors
    ///
    /// Returns [`StroberError::Stats`] with fewer than two replay results
    /// or an invalid configured confidence level — both previously
    /// process-aborting panics.
    pub fn estimate(
        &self,
        run: &SampledRun,
        results: &[ReplayResult],
    ) -> Result<EnergyEstimate, StroberError> {
        let _span = strober_probe::span("strober.core.estimate");
        Ok(EnergyEstimate::from_results(
            results,
            run.windows,
            run.target_cycles,
            self.config.freq_hz,
            self.config.confidence,
        )?)
    }
}

/// Records replay throughput (`strober.core.replay_samples_per_sec`) —
/// globally, and as a labeled series when the control carries run
/// labels — so live telemetry can attribute a replay to its job.
fn record_replay_rate(samples: usize, since: std::time::Instant, ctl: &RunControl<'_>) {
    if !strober_probe::enabled() {
        return;
    }
    let elapsed = since.elapsed().as_secs_f64();
    if elapsed <= 0.0 {
        return;
    }
    let rate = samples as f64 / elapsed;
    strober_probe::gauge_set("strober.core.replay_samples_per_sec", rate);
    if let Some(labels) = ctl.labels {
        strober_probe::gauge_set_labeled("strober.core.replay_samples_per_sec", labels, rate);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use strober_dsl::Ctx;
    use strober_platform::OutputView;
    use strober_rtl::Width;

    struct NoIo;
    impl HostModel for NoIo {
        fn tick(&mut self, _c: u64, _io: &mut OutputView<'_>) {}
    }

    fn counter_design() -> Design {
        let ctx = Ctx::new("counter");
        let w16 = Width::new(16).unwrap();
        let count = ctx.scope("core", |c| c.reg("count", w16, 0));
        count.set(&count.out().add_lit(1));
        ctx.output("value", &count.out());
        ctx.finish().unwrap()
    }

    fn small_config() -> StroberConfig {
        StroberConfig {
            replay_length: 16,
            sample_size: 5,
            ..StroberConfig::default()
        }
    }

    #[test]
    fn end_to_end_counter() {
        let flow = StroberFlow::new(&counter_design(), small_config()).unwrap();
        let run = flow.run_sampled(&mut NoIo, 2_000).unwrap();
        assert_eq!(run.snapshots.len(), 5);
        assert!(run.target_cycles >= 2_000);
        assert!(run.records >= 5);

        let results = flow.replay_all(&run.snapshots, 2).unwrap();
        assert_eq!(results.len(), 5);
        for r in &results {
            assert!(r.outputs_checked > 0);
            assert!(r.power.total_mw() > 0.0);
        }

        let estimate = flow.estimate(&run, &results).unwrap();
        assert!(estimate.mean_power_mw() > 0.0);
        assert!(estimate.region_mw("core") > 0.0);
        assert!(estimate.total_energy_mj() > 0.0);
    }

    #[test]
    fn estimate_with_too_few_results_is_a_typed_error() {
        // Previously an `expect` panic inside `EnergyEstimate`.
        let flow = StroberFlow::new(&counter_design(), small_config()).unwrap();
        let run = flow.run_sampled(&mut NoIo, 1_000).unwrap();
        let results = flow.replay_all(&run.snapshots[..1], 1).unwrap();
        let err = flow.estimate(&run, &results).unwrap_err();
        assert!(matches!(err, StroberError::Stats(_)), "{err}");
    }

    #[test]
    fn invalid_confidence_is_rejected_before_the_run() {
        // Previously the bad level would only panic inside `estimate`,
        // after the full sampled run and replay had already been paid for.
        let config = StroberConfig {
            confidence: Confidence::Level(1.5),
            ..small_config()
        };
        let err = StroberFlow::new(&counter_design(), config).unwrap_err();
        assert!(matches!(err, StroberError::Stats(_)), "{err}");
    }

    #[test]
    fn mixed_trace_lengths_are_a_typed_error() {
        // Previously an `assert!` abort inside `replay_batch`.
        let flow = StroberFlow::new(&counter_design(), small_config()).unwrap();
        let run = flow.run_sampled(&mut NoIo, 1_000).unwrap();
        let mut short = run.snapshots[1].clone();
        for (_, values) in short.inputs.iter_mut().chain(short.outputs.iter_mut()) {
            values.truncate(4);
        }
        let err = flow.replay_batch(&[&run.snapshots[0], &short]).unwrap_err();
        assert!(
            matches!(
                err,
                StroberError::BatchTraceLengthMismatch {
                    lane: 1,
                    got: 4,
                    ..
                }
            ),
            "{err}"
        );
    }

    #[test]
    fn replay_detects_corrupted_snapshots() {
        let flow = StroberFlow::new(&counter_design(), small_config()).unwrap();
        let run = flow.run_sampled(&mut NoIo, 1_000).unwrap();
        let mut snap = run.snapshots[0].clone();
        // Corrupt the captured register state: the free-running counter's
        // outputs can no longer match the trace.
        snap.regs[0].1 ^= 0x5A;
        let err = flow.replay(&snap).unwrap_err();
        assert!(matches!(err, StroberError::ReplayMismatch { .. }), "{err}");
    }

    #[test]
    fn batched_replay_is_bit_identical_to_sequential() {
        let flow = StroberFlow::new(&counter_design(), small_config()).unwrap();
        let run = flow.run_sampled(&mut NoIo, 2_000).unwrap();
        let sequential: Vec<ReplayResult> = run
            .snapshots
            .iter()
            .map(|s| flow.replay(s).unwrap())
            .collect();
        // Full-width lanes, narrow lanes, and the scalar fallback must
        // all agree exactly — power reports included.
        for lanes in [64, 2, 1] {
            let batched = flow.replay_all_batched(&run.snapshots, 1, lanes).unwrap();
            assert_eq!(batched, sequential, "lane count {lanes} diverged");
        }
    }

    #[test]
    fn batched_replay_detects_corrupted_lanes() {
        let flow = StroberFlow::new(&counter_design(), small_config()).unwrap();
        let run = flow.run_sampled(&mut NoIo, 1_000).unwrap();
        let mut snapshots = run.snapshots.clone();
        // Corrupt one lane in the middle of the batch.
        snapshots[2].regs[0].1 ^= 0x5A;
        let err = flow.replay_all_batched(&snapshots, 1, 64).unwrap_err();
        assert!(matches!(err, StroberError::ReplayMismatch { .. }), "{err}");
    }

    #[test]
    fn bad_lane_counts_are_rejected() {
        let flow = StroberFlow::new(&counter_design(), small_config()).unwrap();
        for lanes in [0, 65] {
            let err = flow.replay_all_batched(&[], 1, lanes).unwrap_err();
            assert!(matches!(err, StroberError::GateSim(_)), "{err}");
        }
    }

    #[test]
    fn cancelled_token_stops_sim_and_replay() {
        use crate::control::{CancelToken, RunControl};
        let flow = StroberFlow::new(&counter_design(), small_config()).unwrap();
        let token = CancelToken::new();
        token.cancel();
        let ctl = RunControl::cancellable(&token);
        let err = flow
            .run_sampled_controlled(&mut NoIo, 2_000, &ctl)
            .unwrap_err();
        assert!(matches!(err, StroberError::Cancelled), "{err}");

        // Capture a run with an inert control, then cancel its replay.
        let run = flow.run_sampled(&mut NoIo, 2_000).unwrap();
        for (parallelism, lanes) in [(1, 64), (2, 64), (1, 1), (2, 1)] {
            let err = flow
                .replay_all_controlled(&run.snapshots, parallelism, lanes, &ctl)
                .unwrap_err();
            assert!(matches!(err, StroberError::Cancelled), "{err}");
        }
    }

    #[test]
    fn controlled_replay_reports_progress_and_matches_uncontrolled() {
        use crate::control::{Progress, RunControl};
        use std::sync::Mutex;
        let flow = StroberFlow::new(&counter_design(), small_config()).unwrap();
        let run = flow.run_sampled(&mut NoIo, 2_000).unwrap();
        let baseline = flow.replay_all(&run.snapshots, 1).unwrap();

        let seen = Mutex::new(Vec::new());
        let hook = |p: Progress| seen.lock().unwrap().push(p);
        let ctl = RunControl {
            cancel: None,
            progress: Some(&hook),
            progress_window_stride: 0,
            labels: None,
        };
        let controlled = flow
            .replay_all_controlled(&run.snapshots, 2, 2, &ctl)
            .unwrap();
        assert_eq!(controlled, baseline, "control must not change results");
        let seen = seen.lock().unwrap();
        let batches: Vec<_> = seen
            .iter()
            .filter(|p| matches!(p, Progress::ReplayBatches { .. }))
            .collect();
        // 5 snapshots at 2 lanes = 3 batches, each reported once.
        assert_eq!(batches.len(), 3, "{seen:?}");
    }

    #[test]
    fn second_run_reuses_the_lowered_hub_and_gate_tape() {
        let flow = StroberFlow::new(&counter_design(), small_config()).unwrap();
        assert!(flow.hub.get().is_none() && flow.gate_tape.get().is_none());
        let run = flow.run_sampled(&mut NoIo, 1_000).unwrap();
        let first = flow.replay_all(&run.snapshots, 1).unwrap();

        // The first run populated both caches; the second run must hand
        // back the very same tape (pointer-identical) and the pristine
        // hub clone — and stay bit-identical to the first.
        let tape = flow.gate_tape.get().expect("gate tape cached").clone();
        assert!(flow.hub.get().is_some(), "hub simulator cached");
        let run2 = flow.run_sampled(&mut NoIo, 1_000).unwrap();
        let second = flow.replay_all(&run2.snapshots, 1).unwrap();
        assert!(
            Arc::ptr_eq(&tape, &flow.replay_tape().unwrap()),
            "replays share one compiled tape"
        );
        assert_eq!(first, second);
    }

    #[test]
    fn streaming_matches_sequential_when_stopping_is_disabled() {
        let flow = StroberFlow::new(&counter_design(), small_config()).unwrap();
        let seq_run = flow.run_sampled(&mut NoIo, 2_000).unwrap();
        let seq_results = flow.replay_all_batched(&seq_run.snapshots, 2, 2).unwrap();

        for (parallelism, lanes) in [(1, 1), (2, 2), (4, 64)] {
            let (run, results) = flow
                .replay_streaming(
                    &mut NoIo,
                    2_000,
                    parallelism,
                    lanes,
                    None,
                    &RunControl::default(),
                )
                .unwrap();
            assert_eq!(run.snapshots, seq_run.snapshots, "sample diverged");
            assert_eq!(run.windows, seq_run.windows);
            assert_eq!(run.records, seq_run.records);
            assert_eq!(run.stop, seq_run.stop);
            assert_eq!(results, seq_results, "{parallelism}x{lanes} diverged");
        }
    }

    #[test]
    fn streaming_with_a_loose_rule_converges_early() {
        // The counter's windows are near-identical in power, so a loose ε
        // converges as soon as the sample floor is met — well before the
        // full reservoir would have been replayed.
        let config = StroberConfig {
            replay_length: 16,
            sample_size: 8,
            ..StroberConfig::default()
        };
        let flow = StroberFlow::new(&counter_design(), config).unwrap();
        let rule = StoppingRule::new(0.5, Confidence::C99, 4).unwrap();
        use std::sync::Mutex;
        let seen = Mutex::new(Vec::new());
        let hook = |p: Progress| seen.lock().unwrap().push(p);
        let ctl = RunControl {
            progress: Some(&hook),
            ..RunControl::default()
        };
        let (run, results) = flow
            .replay_streaming(&mut NoIo, 200_000, 1, 1, Some(rule), &ctl)
            .unwrap();
        assert!(
            run.stop.is_converged(),
            "expected convergence: {:?}",
            run.stop
        );
        let StopReason::Converged { achieved, target } = run.stop else {
            unreachable!()
        };
        assert!(achieved <= target, "achieved {achieved} > target {target}");
        assert!(
            results.len() < flow.config().sample_size,
            "stopped with {} of {} samples — no early stop happened",
            results.len(),
            flow.config().sample_size
        );
        assert!(results.len() >= rule.min_samples());
        assert!(run.windows < 200_000 / u64::from(flow.config().replay_length));
        assert!(
            seen.lock()
                .unwrap()
                .iter()
                .any(|p| matches!(p, Progress::IntervalUpdate { .. })),
            "no IntervalUpdate reported"
        );
        // The estimate over the executed prefix is still well-formed.
        let estimate = flow.estimate(&run, &results).unwrap();
        assert!(estimate.mean_power_mw() > 0.0);
    }

    #[test]
    fn streaming_cancellation_is_clean() {
        let flow = StroberFlow::new(&counter_design(), small_config()).unwrap();
        let token = crate::control::CancelToken::new();
        token.cancel();
        let ctl = RunControl::cancellable(&token);
        let err = flow
            .replay_streaming(&mut NoIo, 2_000, 2, 2, None, &ctl)
            .unwrap_err();
        assert!(matches!(err, StroberError::Cancelled), "{err}");
    }

    #[test]
    fn streaming_surfaces_replay_errors() {
        // Force a replay mismatch by giving replay a different design's
        // netlist: impossible through the public API, so instead corrupt
        // the run by making gate-level replay impossible — an over-wide
        // lane count is the cheapest injectable error.
        let flow = StroberFlow::new(&counter_design(), small_config()).unwrap();
        let err = flow
            .replay_streaming(&mut NoIo, 2_000, 1, 65, None, &RunControl::default())
            .unwrap_err();
        assert!(matches!(err, StroberError::GateSim(_)), "{err}");
    }

    #[test]
    fn sim_progress_is_not_duplicated_on_stride_boundaries() {
        use std::sync::Mutex;
        let flow = StroberFlow::new(&counter_design(), small_config()).unwrap();
        // Pick a stride that divides the total window count so the final
        // window lands exactly on a report boundary; the completion
        // report must not repeat it.
        let probe = flow.run_sampled(&mut NoIo, 2_000).unwrap();
        assert!(probe.windows > 1, "need multiple windows");
        let stride = probe.windows;
        let seen = Mutex::new(Vec::new());
        let hook = |p: Progress| seen.lock().unwrap().push(p);
        let ctl = RunControl {
            progress: Some(&hook),
            progress_window_stride: stride,
            ..RunControl::default()
        };
        flow.run_sampled_controlled(&mut NoIo, 2_000, &ctl).unwrap();
        let sim_reports: Vec<_> = seen
            .lock()
            .unwrap()
            .iter()
            .filter(|p| matches!(p, Progress::SimWindows { .. }))
            .copied()
            .collect();
        assert_eq!(
            sim_reports.len(),
            1,
            "duplicate final report: {sim_reports:?}"
        );
    }

    #[test]
    fn sampling_is_deterministic_per_seed() {
        let flow = StroberFlow::new(&counter_design(), small_config()).unwrap();
        let a = flow.run_sampled(&mut NoIo, 3_000).unwrap();
        let b = flow.run_sampled(&mut NoIo, 3_000).unwrap();
        let ca: Vec<u64> = a.snapshots.iter().map(|s| s.cycle).collect();
        let cb: Vec<u64> = b.snapshots.iter().map(|s| s.cycle).collect();
        assert_eq!(ca, cb);
    }

    #[test]
    fn retimed_designs_replay_through_warmup() {
        // A two-stage annotated pipeline: its registers retime away, and
        // replay must recover them by forcing inputs for `warmup` cycles.
        let ctx = Ctx::new("pipe");
        let w8 = Width::new(8).unwrap();
        let x = ctx.input("x", w8);
        let s1 = ctx.scope("fpu", |c| c.reg("s1", w8, 0));
        let s2 = ctx.scope("fpu", |c| c.reg("s2", w8, 0));
        s1.set(&x.add_lit(3));
        s2.set(&s1.out().add_lit(5));
        ctx.output("y", &s2.out());
        let design = ctx.finish().unwrap();

        struct Driver;
        impl HostModel for Driver {
            fn tick(&mut self, c: u64, io: &mut OutputView<'_>) {
                io.set("x", c & 0xFF);
            }
        }

        let config = StroberConfig {
            replay_length: 12,
            warmup: 4, // covers the 2-cycle pipeline depth
            sample_size: 4,
            synth: SynthOptions {
                retime_prefixes: vec!["fpu/".to_owned()],
                ..SynthOptions::default()
            },
            ..StroberConfig::default()
        };
        let flow = StroberFlow::new(&design, config).unwrap();
        assert!(!flow.name_map().retimed.is_empty());
        let run = flow.run_sampled(&mut Driver, 2_000).unwrap();
        let results = flow.replay_all(&run.snapshots, 1).unwrap();
        for r in &results {
            assert!(r.outputs_checked > 0);
        }
    }
}

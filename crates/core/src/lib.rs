//! Strober: sample-based energy simulation for arbitrary RTL.
//!
//! This crate is the paper's primary contribution assembled from the
//! workspace substrates: given any `strober-rtl` design, it
//!
//! 1. **instruments** it with the FAME1 transform, scan chains and I/O
//!    trace buffers (`strober-fame`),
//! 2. **synthesizes** it to a gate-level netlist through the CAD flow
//!    (`strober-synth`) and verifies the RTL↔gate correspondence with the
//!    formal matcher (`strober-formal`),
//! 3. **simulates** the full workload fast on the host platform
//!    (`strober-platform` over `strober-sim`), capturing replayable RTL
//!    snapshots by reservoir sampling (`strober-sampling`),
//! 4. **replays** each snapshot on gate-level simulation
//!    (`strober-gatesim`), checking replayed outputs against the recorded
//!    traces, and feeds the signal activity to the power tool
//!    (`strober-power`),
//! 5. **estimates** workload average power with a confidence interval
//!    (eq. 7 of the paper) and reports the per-component breakdown.
//!
//! The analytic performance model of §IV-E is available as
//! [`PerfModel`]; it reproduces the paper's worked example (9.4 hours
//! overall vs. days for microarchitectural software simulation and
//! centuries for gate-level simulation).
//!
//! # Examples
//!
//! End-to-end on a small design:
//!
//! ```
//! use strober::{StroberConfig, StroberFlow};
//! use strober_dsl::Ctx;
//! use strober_platform::{HostModel, OutputView};
//! use strober_rtl::Width;
//!
//! struct NoIo;
//! impl HostModel for NoIo {
//!     fn tick(&mut self, _c: u64, _io: &mut OutputView<'_>) {}
//! }
//!
//! fn main() -> Result<(), strober::StroberError> {
//!     // A free-running 16-bit counter as the target.
//!     let ctx = Ctx::new("counter");
//!     let count = ctx.reg("count", Width::new(16).unwrap(), 0);
//!     count.set(&count.out().add_lit(1));
//!     ctx.output("value", &count.out());
//!     let design = ctx.finish().unwrap();
//!
//!     let config = StroberConfig {
//!         replay_length: 16,
//!         sample_size: 5,
//!         ..StroberConfig::default()
//!     };
//!     let flow = StroberFlow::new(&design, config)?;
//!     let run = flow.run_sampled(&mut NoIo, 2_000)?;
//!     let results = flow.replay_all(&run.snapshots, 2)?;
//!     let estimate = flow.estimate(&run, &results)?;
//!     assert!(estimate.mean_power_mw() > 0.0);
//!     Ok(())
//! }
//! ```

#![deny(missing_docs)]
#![deny(missing_debug_implementations)]

mod control;
mod error;
mod estimate;
mod flow;
mod perf_model;
mod pipeline;

pub use control::{CancelToken, Progress, RunControl};
pub use error::StroberError;
pub use estimate::{EnergyEstimate, ReplayResult, SampledRun, StopReason};
pub use flow::{PreparedArtifact, StroberConfig, StroberFlow};
pub use perf_model::PerfModel;
pub use strober_platform::HubEngine;
pub use strober_sampling::{StopDecision, StoppingRule};

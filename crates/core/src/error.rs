use std::error::Error;
use std::fmt;

/// Errors from the end-to-end Strober flow.
#[derive(Debug)]
#[non_exhaustive]
pub enum StroberError {
    /// The target design or a generated hub failed validation.
    Rtl(strober_rtl::RtlError),
    /// Synthesis failed.
    Synth(strober_synth::SynthError),
    /// Formal matching / equivalence checking failed.
    Formal(strober_formal::FormalError),
    /// A simulator-level problem (bad port name, state shape).
    Sim(strober_sim::SimError),
    /// A gate-level simulator problem during replay.
    GateSim(strober_gatesim::GateSimError),
    /// A statistics problem: an invalid confidence level in the
    /// configuration, or too few replay results to estimate a variance.
    Stats(strober_sampling::StatsError),
    /// A batch of snapshots handed to [`crate::StroberFlow::replay_batch`]
    /// mixed trace lengths — lanes share one instruction stream, so one
    /// cycle count.
    BatchTraceLengthMismatch {
        /// Trace length of the batch's first snapshot.
        expected: usize,
        /// The first diverging trace length.
        got: usize,
        /// Lane (batch index) of the diverging snapshot.
        lane: usize,
    },
    /// A replayed output diverged from the recorded trace — the §IV-C
    /// replay self-check failed.
    ReplayMismatch {
        /// The output port that diverged.
        output: String,
        /// Cycle offset within the replay window.
        offset: usize,
        /// Value recorded during fast simulation.
        expected: u64,
        /// Value produced by gate-level replay.
        got: u64,
    },
    /// A snapshot referenced state the name map does not cover.
    UnmappedState {
        /// The RTL state element's name.
        name: String,
    },
    /// The run was stopped by its [`crate::CancelToken`] at a sample or
    /// batch boundary — cooperative cancellation, not a failure of the
    /// flow itself.
    Cancelled,
}

impl fmt::Display for StroberError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            StroberError::Rtl(e) => write!(f, "rtl error: {e}"),
            StroberError::Synth(e) => write!(f, "synthesis error: {e}"),
            StroberError::Formal(e) => write!(f, "formal matching error: {e}"),
            StroberError::Sim(e) => write!(f, "simulation error: {e}"),
            StroberError::GateSim(e) => write!(f, "gate-level simulation error: {e}"),
            StroberError::Stats(e) => write!(f, "statistics error: {e}"),
            StroberError::BatchTraceLengthMismatch {
                expected,
                got,
                lane,
            } => write!(
                f,
                "batched snapshots must share one trace length: lane {lane} has {got} cycles, lane 0 has {expected}"
            ),
            StroberError::ReplayMismatch {
                output,
                offset,
                expected,
                got,
            } => write!(
                f,
                "replay mismatch on `{output}` at window offset {offset}: expected {expected:#x}, got {got:#x}"
            ),
            StroberError::UnmappedState { name } => {
                write!(f, "snapshot state `{name}` has no netlist mapping")
            }
            StroberError::Cancelled => write!(f, "run cancelled"),
        }
    }
}

impl Error for StroberError {
    fn source(&self) -> Option<&(dyn Error + 'static)> {
        match self {
            StroberError::Rtl(e) => Some(e),
            StroberError::Synth(e) => Some(e),
            StroberError::Formal(e) => Some(e),
            StroberError::Sim(e) => Some(e),
            StroberError::GateSim(e) => Some(e),
            StroberError::Stats(e) => Some(e),
            _ => None,
        }
    }
}

impl From<strober_rtl::RtlError> for StroberError {
    fn from(e: strober_rtl::RtlError) -> Self {
        StroberError::Rtl(e)
    }
}

impl From<strober_synth::SynthError> for StroberError {
    fn from(e: strober_synth::SynthError) -> Self {
        StroberError::Synth(e)
    }
}

impl From<strober_formal::FormalError> for StroberError {
    fn from(e: strober_formal::FormalError) -> Self {
        StroberError::Formal(e)
    }
}

impl From<strober_sim::SimError> for StroberError {
    fn from(e: strober_sim::SimError) -> Self {
        StroberError::Sim(e)
    }
}

impl From<strober_gatesim::GateSimError> for StroberError {
    fn from(e: strober_gatesim::GateSimError) -> Self {
        StroberError::GateSim(e)
    }
}

impl From<strober_sampling::StatsError> for StroberError {
    fn from(e: strober_sampling::StatsError) -> Self {
        StroberError::Stats(e)
    }
}

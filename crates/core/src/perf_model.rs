//! The §IV-E analytic simulation-performance model.
//!
//! `T_overall = max(T_FPGAsyn + T_FPGAsim, T_ASIC) + T_replay`, with
//!
//! * `T_FPGAsim = N/K_f + T_rec · 2n·ln((N/L)/n)`
//! * `T_replay = n · (T_load + L/K_g + T_power) / P`
//!
//! The default parameters are the paper's measured constants for the
//! two-way BOOM processor, and [`PerfModel::paper_example`] reproduces the
//! worked example: ~9.4 hours overall for 100 billion cycles, versus
//! ~3.86 *days* on a fast microarchitectural software simulator and ~264
//! *years* on commercial gate-level simulation.

/// Parameters of the analytic model, in the paper's notation.
#[derive(Debug, Clone, PartialEq)]
pub struct PerfModel {
    /// FPGA synthesis time `T_FPGAsyn`, seconds.
    pub t_fpga_syn_s: f64,
    /// FPGA simulation rate `K_f`, Hz.
    pub kf_hz: f64,
    /// Time to record one replayable snapshot `T_rec`, seconds.
    pub t_rec_s: f64,
    /// ASIC tool-chain time `T_ASIC`, seconds.
    pub t_asic_s: f64,
    /// Snapshot load time on gate-level simulation `T_load`, seconds.
    pub t_load_s: f64,
    /// Gate-level simulation rate `K_g`, Hz.
    pub kg_hz: f64,
    /// Power-analysis time per snapshot `T_power`, seconds.
    pub t_power_s: f64,
    /// Sample size `n`.
    pub n: u64,
    /// Replay length `L`, cycles.
    pub replay_length: u64,
    /// Gate-level simulation instances `P`.
    pub parallelism: u64,
    /// Microarchitectural software simulator rate, Hz (for the comparison
    /// the paper quotes: "3.86 days even on fast microarchitectural
    /// software simulators").
    pub uarch_sim_hz: f64,
}

impl PerfModel {
    /// The constants of the paper's worked example (§IV-E, two-way BOOM).
    pub fn paper_example() -> Self {
        PerfModel {
            t_fpga_syn_s: 3600.0,
            kf_hz: 3.6e6,
            t_rec_s: 1.3,
            t_asic_s: 3.5 * 3600.0,
            t_load_s: 3.0,
            kg_hz: 12.0,
            t_power_s: 150.0,
            n: 100,
            replay_length: 1000,
            parallelism: 10,
            uarch_sim_hz: 300.0e3,
        }
    }

    /// `T_run = N / K_f`.
    pub fn t_run_s(&self, cycles: u64) -> f64 {
        cycles as f64 / self.kf_hz
    }

    /// Expected snapshot records: the paper's bound `2n·ln((N/L)/n)`.
    pub fn expected_records(&self, cycles: u64) -> f64 {
        let m = cycles as f64 / self.replay_length as f64;
        2.0 * self.n as f64 * (m / self.n as f64).ln()
    }

    /// `T_sample = T_rec · 2n·ln((N/L)/n)`.
    pub fn t_sample_s(&self, cycles: u64) -> f64 {
        self.t_rec_s * self.expected_records(cycles)
    }

    /// `T_FPGAsim = T_run + T_sample`.
    pub fn t_fpga_sim_s(&self, cycles: u64) -> f64 {
        self.t_run_s(cycles) + self.t_sample_s(cycles)
    }

    /// `T_replay = n·(T_load + L/K_g + T_power)/P`.
    pub fn t_replay_s(&self) -> f64 {
        self.n as f64 * (self.t_load_s + self.replay_length as f64 / self.kg_hz + self.t_power_s)
            / self.parallelism as f64
    }

    /// `T_overall = max(T_FPGAsyn + T_FPGAsim, T_ASIC) + T_replay`.
    pub fn t_overall_s(&self, cycles: u64) -> f64 {
        let fpga_path = self.t_fpga_syn_s + self.t_fpga_sim_s(cycles);
        fpga_path.max(self.t_asic_s) + self.t_replay_s()
    }

    /// Wall-clock for the same cycles on a microarchitectural software
    /// simulator.
    pub fn t_uarch_sim_s(&self, cycles: u64) -> f64 {
        cycles as f64 / self.uarch_sim_hz
    }

    /// Wall-clock for the same cycles on gate-level simulation.
    pub fn t_gate_level_s(&self, cycles: u64) -> f64 {
        cycles as f64 / self.kg_hz
    }

    /// Speedup of the Strober flow over pure gate-level simulation.
    pub fn speedup_vs_gate_level(&self, cycles: u64) -> f64 {
        self.t_gate_level_s(cycles) / self.t_overall_s(cycles)
    }

    /// Speedup over the microarchitectural software simulator.
    pub fn speedup_vs_uarch(&self, cycles: u64) -> f64 {
        self.t_uarch_sim_s(cycles) / self.t_overall_s(cycles)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    const N: u64 = 100_000_000_000; // the example's 100 billion cycles

    #[test]
    fn reproduces_the_papers_worked_example() {
        let m = PerfModel::paper_example();
        // T_run = 27778 s
        assert!((m.t_run_s(N) - 27_778.0).abs() < 1.0);
        // T_sample ≈ 3592 s
        assert!((m.t_sample_s(N) - 3_592.0).abs() < 5.0);
        // T_replay ≈ 2333 s in the paper's arithmetic, which drops the
        // 3-second T_load from its own formula; with T_load included we
        // get 2363 s, within 1.3%.
        assert!((m.t_replay_s() - 2_333.0).abs() < 50.0);
        // The paper's quoted total, T_run + T_sample + T_replay = 33703 s
        // ≈ 9.4 h, omits T_FPGAsyn even though its own formula includes
        // it; we reproduce both numbers.
        let paper_sum = (m.t_run_s(N) + m.t_sample_s(N) + m.t_replay_s()) / 3600.0;
        assert!((9.3..9.5).contains(&paper_sum), "paper sum {paper_sum} h");
        let formula_hours = m.t_overall_s(N) / 3600.0;
        assert!(
            (10.2..10.6).contains(&formula_hours),
            "formula overall {formula_hours} h"
        );
    }

    #[test]
    fn comparison_points_match_the_paper() {
        let m = PerfModel::paper_example();
        // "3.86 days even on fast microarchitectural software simulators"
        let days = m.t_uarch_sim_s(N) / 86_400.0;
        assert!((3.8..3.9).contains(&days), "uarch {days} days");
        // "264 years on gate-level simulation"
        let years = m.t_gate_level_s(N) / (365.0 * 86_400.0);
        assert!((260.0..268.0).contains(&years), "gate {years} years");
    }

    #[test]
    fn speedups_exceed_the_abstract_claims() {
        let m = PerfModel::paper_example();
        // ≥ 4 orders of magnitude over commercial gate-level simulation.
        assert!(m.speedup_vs_gate_level(N) > 1.0e4);
        // Near 10× even against the *fastest* (300 kHz) software
        // simulators; against a typical detailed simulator (~20 kHz,
        // gem5-class) the paper's two-orders-of-magnitude claim holds.
        assert!(m.speedup_vs_uarch(N) > 8.0);
        let slow = PerfModel {
            uarch_sim_hz: 20.0e3,
            ..PerfModel::paper_example()
        };
        assert!(slow.speedup_vs_uarch(N) > 1.0e2);
    }

    #[test]
    fn asic_path_dominates_short_runs() {
        let m = PerfModel::paper_example();
        // For a tiny run the ASIC tool chain is the long pole.
        let short = 1_000_000; // 1M cycles
        let overall = m.t_overall_s(short);
        assert!(overall > m.t_asic_s);
        assert!(overall < m.t_asic_s + m.t_replay_s() + 1.0);
    }
}

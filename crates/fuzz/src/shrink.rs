//! Greedy structural shrinking of a diverging genome.
//!
//! Given a genome whose oracle run produced a divergence, the shrinker
//! repeatedly tries structural edits — shorten the workload, drop ops,
//! registers, the memory, constants, inputs, outputs, narrow widths —
//! keeping an edit only if "the same bug" (same divergence kind, same
//! oracle, per [`Divergence::same_bug`]) still reproduces.
//!
//! Raw genome references resolve modulo the pool size, so naively
//! deleting a gene reshuffles every later resolution and the divergence
//! usually evaporates. The shrinker therefore works on
//! [canonicalized](Genome::canonicalize) genomes: references are exact
//! pool indices, and removing pool slot `s` renumbers references above
//! `s` down by one while redirecting references *to* `s` at a designated
//! replacement — every other node keeps its exact structure. Dead code
//! thus drops out one oracle evaluation per gene, and the fixpoint loop
//! converges to a near-minimal reproducer.

use crate::genome::{Genome, OpGene};
use crate::oracle::{check, Divergence, OracleConfig};

/// The shrinker's outcome: the smallest reproducing genome found and the
/// divergence it still produces.
#[derive(Debug, Clone)]
pub struct Shrunk {
    /// The minimized genome.
    pub genome: Genome,
    /// The divergence the minimized genome reproduces.
    pub divergence: Divergence,
    /// Oracle evaluations spent shrinking.
    pub evals: usize,
}

/// Renumbers every reference in a canonical genome after pool slot
/// `slot` was removed: references to `slot` become `redirect`, references
/// above it shift down by one.
fn remap_refs(g: &mut Genome, slot: u32, redirect: u32) {
    let m = |r: &mut u32| {
        if *r == slot {
            *r = redirect;
        } else if *r > slot {
            *r -= 1;
        }
    };
    for op in &mut g.ops {
        match op {
            OpGene::Unary { a, .. } | OpGene::Slice { a, .. } => m(a),
            OpGene::Binary { a, b, .. } => {
                m(a);
                m(b);
            }
            OpGene::Mux { sel, t, f } => {
                m(sel);
                m(t);
                m(f);
            }
            OpGene::Cat { hi, lo } => {
                m(hi);
                m(lo);
            }
            OpGene::MemRead { addr } => m(addr),
        }
    }
    for r in &mut g.regs {
        m(&mut r.src);
        if let Some(e) = &mut r.enable {
            m(e);
        }
    }
    if let Some(mem) = &mut g.mem {
        m(&mut mem.rd_addr);
        m(&mut mem.wr_addr);
        m(&mut mem.wr_data);
        m(&mut mem.wr_en);
    }
    for r in &mut g.outputs {
        m(r);
    }
}

/// A reference the op's consumers can be redirected to when the op is
/// removed — its first operand, which dominates it in the pool order.
fn op_replacement(op: &OpGene) -> u32 {
    match op {
        OpGene::Unary { a, .. } | OpGene::Slice { a, .. } => *a,
        OpGene::Binary { a, .. } => *a,
        OpGene::Mux { t, .. } => *t,
        OpGene::Cat { hi, .. } => *hi,
        OpGene::MemRead { addr } => *addr,
    }
}

/// Shrinks `genome` while `original`'s bug keeps reproducing.
///
/// `max_evals` bounds the number of oracle evaluations (each one runs
/// the full matrix, so this is the shrinker's time budget).
pub fn shrink(
    genome: &Genome,
    original: &Divergence,
    cfg: &OracleConfig,
    max_evals: usize,
) -> Shrunk {
    let mut best = genome.canonicalize();
    let mut best_div = original.clone();
    let mut evals = 0usize;

    let reproduces = |candidate: &Genome, evals: &mut usize| -> Option<Divergence> {
        if *evals >= max_evals {
            return None;
        }
        *evals += 1;
        match check(candidate, cfg) {
            Err(d) if d.same_bug(original) => Some(d),
            _ => None,
        }
    };

    loop {
        let before = best.gene_count() + best.cycles as usize;

        // Shorten the workload first — every later oracle run gets cheaper.
        for target in [1u32, best.cycles / 2, best.cycles.saturating_sub(1)] {
            if target < best.cycles {
                let mut c = best.clone();
                c.cycles = target.max(1);
                if let Some(d) = reproduces(&c, &mut evals) {
                    best = c;
                    best_div = d;
                }
            }
        }

        // Drop ops from the end (dead code first), redirecting consumers
        // of a dropped op to its first operand.
        let mut i = best.ops.len();
        while i > 0 {
            i -= 1;
            let mut c = best.clone();
            let slot = (c.pool_base() + i) as u32;
            let redirect = op_replacement(&c.ops[i]);
            c.ops.remove(i);
            remap_refs(&mut c, slot, redirect);
            if let Some(d) = reproduces(&c, &mut evals) {
                best = c;
                best_div = d;
            }
        }

        // Drop registers, constants, and inputs (pool slots below the
        // ops, so every op reference above shifts down by one).
        let mut i = best.regs.len();
        while i > 0 {
            i -= 1;
            let mut c = best.clone();
            let slot = (c.inputs.len() + c.consts.len() + i) as u32;
            c.regs.remove(i);
            remap_refs(&mut c, slot, 0);
            if let Some(d) = reproduces(&c, &mut evals) {
                best = c.canonicalize();
                best_div = d;
            }
        }
        let mut i = best.consts.len();
        while i > 0 {
            i -= 1;
            let mut c = best.clone();
            let slot = (c.inputs.len() + i) as u32;
            c.consts.remove(i);
            remap_refs(&mut c, slot, 0);
            if let Some(d) = reproduces(&c, &mut evals) {
                best = c.canonicalize();
                best_div = d;
            }
        }
        let mut i = best.inputs.len();
        while i > 0 {
            i -= 1;
            let mut c = best.clone();
            c.inputs.remove(i);
            remap_refs(&mut c, i as u32, 0);
            if let Some(d) = reproduces(&c, &mut evals) {
                best = c.canonicalize();
                best_div = d;
            }
        }

        // Drop the memory (its read port is the last pool slot).
        if best.mem.is_some() {
            let mut c = best.clone();
            let slot = (c.pool_base() + c.ops.len()) as u32;
            c.mem = None;
            remap_refs(&mut c, slot, 0);
            if let Some(d) = reproduces(&c, &mut evals) {
                best = c.canonicalize();
                best_div = d;
            }
        }

        // Drop extra outputs (no pool slot — plain list removal).
        let mut i = best.outputs.len();
        while i > 0 && best.outputs.len() > 1 {
            i -= 1;
            let mut c = best.clone();
            c.outputs.remove(i);
            if let Some(d) = reproduces(&c, &mut evals) {
                best = c;
                best_div = d;
            }
        }

        // Narrow widths down the ladder.
        for i in 0..best.inputs.len() {
            for w in [32u32, 16, 8, 4, 1] {
                if w < best.inputs[i].clamp(1, 64) {
                    let mut c = best.clone();
                    c.inputs[i] = w;
                    if let Some(d) = reproduces(&c, &mut evals) {
                        best = c;
                        best_div = d;
                        break;
                    }
                }
            }
        }
        for i in 0..best.regs.len() {
            for w in [32u32, 16, 8, 4, 1] {
                if w < best.regs[i].width.clamp(1, 64) {
                    let mut c = best.clone();
                    c.regs[i].width = w;
                    if let Some(d) = reproduces(&c, &mut evals) {
                        best = c;
                        best_div = d;
                        break;
                    }
                }
            }
        }
        for i in 0..best.consts.len() {
            for w in [32u32, 16, 8, 4, 1] {
                if w < best.consts[i].1.clamp(1, 64) {
                    let mut c = best.clone();
                    c.consts[i].1 = w;
                    if let Some(d) = reproduces(&c, &mut evals) {
                        best = c;
                        best_div = d;
                        break;
                    }
                }
            }
        }

        let after = best.gene_count() + best.cycles as usize;
        if after >= before || evals >= max_evals {
            break;
        }
    }

    Shrunk {
        genome: best,
        divergence: best_div,
        evals,
    }
}

//! The fuzz campaign driver: seed loop, config sweep, shrink-on-failure.

use crate::corpus::{write_reproducer, Reproducer, CORPUS_VERSION};
use crate::genome::rand_genome;
use crate::oracle::{check, Divergence, OracleConfig};
use crate::shrink::shrink;
use std::path::PathBuf;
use strober_sim::rand_design::RandDesignConfig;

/// Options for one fuzz campaign.
#[derive(Debug, Clone)]
pub struct FuzzOptions {
    /// First seed (inclusive).
    pub seed_start: u64,
    /// Last seed (exclusive).
    pub seed_end: u64,
    /// Workload length per design, in cycles.
    pub cycles: u32,
    /// Oracle configuration (lanes, flow round trip, injection).
    pub oracle: OracleConfig,
    /// Where to write minimized reproducers; `None` disables writing.
    pub corpus_dir: Option<PathBuf>,
    /// Oracle-evaluation budget for the shrinker.
    pub shrink_evals: usize,
}

impl Default for FuzzOptions {
    fn default() -> Self {
        FuzzOptions {
            seed_start: 0,
            seed_end: 50,
            cycles: 48,
            oracle: OracleConfig::default(),
            corpus_dir: Some(PathBuf::from("fuzz/corpus")),
            shrink_evals: 2000,
        }
    }
}

/// A found-and-minimized divergence.
#[derive(Debug, Clone)]
pub struct FuzzFailure {
    /// The seed that produced the diverging design.
    pub seed: u64,
    /// The divergence as first observed (pre-shrink).
    pub original: Divergence,
    /// The minimized reproducer.
    pub reproducer: Reproducer,
    /// Node count of the minimized design.
    pub min_nodes: usize,
    /// Where the reproducer was written, if a corpus dir was set.
    pub written_to: Option<PathBuf>,
}

/// A completed campaign.
#[derive(Debug, Clone)]
pub struct FuzzOutcome {
    /// Designs checked (seeds × one config each).
    pub designs: u64,
    /// Wall-clock seconds spent.
    pub elapsed_secs: f64,
    /// The first failure, if any (the campaign stops at the first).
    pub failure: Option<FuzzFailure>,
    /// Whether the campaign stopped early because the caller's
    /// cancellation predicate tripped (see [`run_fuzz_cancellable`]).
    pub cancelled: bool,
}

impl FuzzOutcome {
    /// Designs fully checked per wall-clock second.
    pub fn designs_per_sec(&self) -> f64 {
        if self.elapsed_secs > 0.0 {
            self.designs as f64 / self.elapsed_secs
        } else {
            0.0
        }
    }
}

/// The per-seed design-shape sweep: cycles through representative
/// configurations, including the degenerate corners the generator is
/// hardened against, so every campaign covers the whole config space.
pub fn config_for_seed(seed: u64) -> RandDesignConfig {
    let base = RandDesignConfig::default();
    match seed % 8 {
        0 => base,
        1 => RandDesignConfig {
            with_memory: false,
            ..base
        },
        2 => RandDesignConfig {
            ops: 120,
            regs: 10,
            ..base
        },
        3 => RandDesignConfig {
            widths: vec![64],
            ..base
        },
        4 => RandDesignConfig {
            widths: vec![1, 4],
            ..base
        },
        5 => RandDesignConfig {
            inputs: 0,
            regs: 2,
            ..base
        },
        6 => RandDesignConfig {
            regs: 0,
            with_memory: false,
            ..base
        },
        _ => RandDesignConfig {
            inputs: 1,
            ops: 8,
            regs: 1,
            with_memory: false,
            outputs: 1,
            ..base
        },
    }
}

/// Runs a fuzz campaign: for each seed, generate a genome under the
/// seed's sweep config, run the oracle matrix, and on the first
/// divergence shrink it and (optionally) write a reproducer.
///
/// `progress` is called after each seed with `(seed, designs_so_far)`.
pub fn run_fuzz(opts: &FuzzOptions, progress: impl FnMut(u64, u64)) -> Result<FuzzOutcome, String> {
    run_fuzz_cancellable(opts, || false, progress)
}

/// [`run_fuzz`] with a cooperative cancellation predicate, checked
/// between seeds: when `cancelled` returns `true` the campaign stops
/// cleanly and the outcome reports the designs checked so far with
/// `cancelled` set. A long-lived server uses this to abort a queued
/// sweep without killing the worker.
///
/// # Errors
///
/// As [`run_fuzz`].
pub fn run_fuzz_cancellable(
    opts: &FuzzOptions,
    cancelled: impl Fn() -> bool,
    mut progress: impl FnMut(u64, u64),
) -> Result<FuzzOutcome, String> {
    let t0 = std::time::Instant::now();
    let mut designs = 0u64;
    for seed in opts.seed_start..opts.seed_end {
        if cancelled() {
            return Ok(FuzzOutcome {
                designs,
                elapsed_secs: t0.elapsed().as_secs_f64(),
                failure: None,
                cancelled: true,
            });
        }
        let cfg = config_for_seed(seed);
        let genome = rand_genome(seed, &cfg, opts.cycles);
        match check(&genome, &opts.oracle) {
            Ok(()) => {
                designs += 1;
                progress(seed, designs);
            }
            Err(original) => {
                let shrunk = shrink(&genome, &original, &opts.oracle, opts.shrink_evals);
                let min_nodes = shrunk.genome.build().node_count();
                let reproducer = Reproducer {
                    version: CORPUS_VERSION,
                    provenance: format!(
                        "strober fuzz, seed {seed}, cycles {}, {} shrink evals",
                        opts.cycles, shrunk.evals
                    ),
                    inject: opts.oracle.inject,
                    oracle: OracleConfig {
                        inject: None,
                        ..opts.oracle.clone()
                    },
                    genome: shrunk.genome,
                    divergence: shrunk.divergence,
                };
                let written_to = match &opts.corpus_dir {
                    Some(dir) => Some(write_reproducer(
                        dir,
                        &format!("seed{seed}-{}", reproducer.divergence.kind()),
                        &reproducer,
                    )?),
                    None => None,
                };
                return Ok(FuzzOutcome {
                    designs: designs + 1,
                    elapsed_secs: t0.elapsed().as_secs_f64(),
                    failure: Some(FuzzFailure {
                        seed,
                        original,
                        reproducer,
                        min_nodes,
                        written_to,
                    }),
                    cancelled: false,
                });
            }
        }
    }
    Ok(FuzzOutcome {
        designs,
        elapsed_secs: t0.elapsed().as_secs_f64(),
        failure: None,
        cancelled: false,
    })
}

//! Differential fuzzing for the Strober reproduction.
//!
//! The workspace carries five semantically-equivalent ways to execute a
//! design — the naive RTL interpreter, the compiled op tape, the
//! FAME1-transformed hub, the scalar gate-level simulator, and the
//! 64-lane bit-parallel batch engine — plus the full
//! sample→snapshot→replay pipeline built on top of them. The paper's
//! methodology (§III-C) rests on those paths agreeing *bit-for-bit*: any
//! silent divergence corrupts every downstream energy number.
//!
//! This crate turns that invariant into an executable oracle:
//!
//! * [`genome`] — a serializable, totally-interpretable design recipe
//!   (every edit still builds, which the shrinker depends on);
//! * [`oracle`] — the N-way agreement check over outputs, architectural
//!   state, toggle counts, and power totals;
//! * [`mod@shrink`] — greedy structural minimization of a diverging genome;
//! * [`corpus`] — checked-in reproducers replayed forever by the
//!   regression suite;
//! * [`driver`] — the `strober fuzz` campaign loop.

#![deny(missing_docs)]
#![deny(missing_debug_implementations)]

pub mod corpus;
pub mod driver;
pub mod genome;
pub mod oracle;
pub mod shrink;

pub use corpus::{load_corpus, write_reproducer, Reproducer, CORPUS_VERSION};
pub use driver::{
    config_for_seed, run_fuzz, run_fuzz_cancellable, FuzzFailure, FuzzOptions, FuzzOutcome,
};
pub use genome::{rand_genome, stimulus, Genome, MemGene, OpGene, RegGene};
pub use oracle::{check, inject_bug, Divergence, InjectedBug, OracleConfig};
pub use shrink::{shrink, Shrunk};

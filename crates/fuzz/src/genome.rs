//! The design genome: a serializable, *totally interpretable* recipe for
//! a random design plus its workload.
//!
//! `strober_sim::rand_design` builds a [`Design`] directly, which makes
//! shrinking awkward: removing a node invalidates every later reference.
//! The genome instead stores operand references as plain integers that
//! are resolved **modulo the current pool size** at build time, so any
//! structural edit (drop an op, drop a register, narrow a width, shorten
//! the workload) still yields a valid design. That totality is what the
//! shrinker leans on: every candidate edit produces *some* design, and
//! the oracle decides whether the divergence still reproduces.

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use strober_rtl::{BinOp, Design, NodeId, UnOp, Width};
use strober_sim::rand_design::RandDesignConfig;

/// Unary operators the genome can pick, indexed by `OpGene::Unary::op`.
pub const UNOPS: [UnOp; 5] = [
    UnOp::Not,
    UnOp::Neg,
    UnOp::RedAnd,
    UnOp::RedOr,
    UnOp::RedXor,
];

/// Binary operators the genome can pick, indexed by `OpGene::Binary::op`.
pub const BINOPS: [BinOp; 17] = [
    BinOp::Add,
    BinOp::Sub,
    BinOp::Mul,
    BinOp::And,
    BinOp::Or,
    BinOp::Xor,
    BinOp::Shl,
    BinOp::Shr,
    BinOp::Sra,
    BinOp::Eq,
    BinOp::Neq,
    BinOp::Ltu,
    BinOp::Leu,
    BinOp::Lts,
    BinOp::Les,
    BinOp::DivU,
    BinOp::RemU,
];

/// One combinational operator gene. Operand fields are pool references,
/// resolved modulo the pool size at build time.
#[derive(Debug, Clone, PartialEq, Eq, serde::Serialize, serde::Deserialize)]
pub enum OpGene {
    /// A unary operator (`op` indexes [`UNOPS`]).
    Unary {
        /// Operator table index.
        op: u8,
        /// Operand reference.
        a: u32,
    },
    /// A binary operator (`op` indexes [`BINOPS`]); `b` is coerced to
    /// `a`'s width.
    Binary {
        /// Operator table index.
        op: u8,
        /// Left operand reference.
        a: u32,
        /// Right operand reference.
        b: u32,
    },
    /// A two-way mux; the select is coerced to one bit and `f` to `t`'s
    /// width.
    Mux {
        /// Select reference.
        sel: u32,
        /// Taken-when-one reference.
        t: u32,
        /// Taken-when-zero reference.
        f: u32,
    },
    /// A bit slice; `hi`/`lo` are normalized into the operand's width.
    Slice {
        /// Operand reference.
        a: u32,
        /// Raw high bound (normalized modulo the remaining width).
        hi: u32,
        /// Raw low bound (normalized modulo the operand width).
        lo: u32,
    },
    /// A concatenation; the low part is truncated so the result fits in
    /// 64 bits (aliasing `hi` when there is no room at all).
    Cat {
        /// High part reference.
        hi: u32,
        /// Low part reference.
        lo: u32,
    },
    /// A memory read port (aliases `addr` when the genome has no memory).
    MemRead {
        /// Address reference, coerced to the memory's address width.
        addr: u32,
    },
}

/// A register gene: declared before the ops (so ops can reference its
/// output) and connected after them (so feedback through ops is possible).
#[derive(Debug, Clone, PartialEq, Eq, serde::Serialize, serde::Deserialize)]
pub struct RegGene {
    /// Register width in bits (clamped to `1..=64`).
    pub width: u32,
    /// Power-on value (masked to the width).
    pub init: u64,
    /// Next-value reference, coerced to the register width.
    pub src: u32,
    /// Optional enable reference, coerced to one bit.
    pub enable: Option<u32>,
}

/// A memory gene: a 16-bit RAM with one read and one write port.
#[derive(Debug, Clone, PartialEq, Eq, serde::Serialize, serde::Deserialize)]
pub struct MemGene {
    /// Number of words (clamped to `2..=32`).
    pub depth: u32,
    /// Read-port address reference.
    pub rd_addr: u32,
    /// Write-port address reference.
    pub wr_addr: u32,
    /// Write-port data reference, coerced to 16 bits.
    pub wr_data: u32,
    /// Write-enable reference, coerced to one bit.
    pub wr_en: u32,
}

/// A complete design-plus-workload recipe. See the module docs for the
/// reference-resolution rules that make every genome buildable.
#[derive(Debug, Clone, PartialEq, Eq, serde::Serialize, serde::Deserialize)]
pub struct Genome {
    /// Input port widths (clamped to `1..=64`).
    pub inputs: Vec<u32>,
    /// Seeded constants (value masked to the width).
    pub consts: Vec<(u64, u32)>,
    /// Registers.
    pub regs: Vec<RegGene>,
    /// The optional memory.
    pub mem: Option<MemGene>,
    /// Combinational operators, appended to the pool in order.
    pub ops: Vec<OpGene>,
    /// Output references into the final pool.
    pub outputs: Vec<u32>,
    /// Workload length in cycles.
    pub cycles: u32,
    /// Seed for the deterministic input stimulus (see [`stimulus`]).
    pub stim_seed: u64,
}

fn clamp_width(w: u32) -> Width {
    Width::new(w.clamp(1, 64)).expect("clamped width is valid")
}

/// The deterministic stimulus function: the value driven on input
/// `input_idx` at `cycle` for a given stream seed (before masking to the
/// port width). SplitMix64-style so that shrinking the workload never
/// changes the values of the cycles that remain.
pub fn stimulus(stim_seed: u64, input_idx: usize, cycle: u64) -> u64 {
    let mut z = stim_seed
        .wrapping_add((input_idx as u64).wrapping_mul(0x9E37_79B9_7F4A_7C15))
        .wrapping_add(cycle.wrapping_mul(0xBF58_476D_1CE4_E5B9));
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

impl Genome {
    /// Builds the genome into a validated [`Design`].
    ///
    /// Total: every genome builds, including empty ones. Panics only on
    /// internal builder bugs (the produced design always passes
    /// [`Design::validate`]).
    pub fn build(&self) -> Design {
        let mut d = Design::new("fuzz");
        let mut pool: Vec<NodeId> = Vec::new();

        for (i, &w) in self.inputs.iter().enumerate() {
            let w = clamp_width(w);
            pool.push(d.input(format!("in{i}"), w).expect("fresh input name"));
        }
        for &(v, w) in &self.consts {
            let w = clamp_width(w);
            pool.push(d.constant(v & w.mask(), w));
        }

        let mut regs = Vec::new();
        for (i, g) in self.regs.iter().enumerate() {
            let w = clamp_width(g.width);
            let r = d
                .reg(format!("reg{i}"), w, g.init & w.mask())
                .expect("fresh reg name");
            pool.push(d.reg_out(r));
            regs.push(r);
        }

        // Anything that needs an operand (ops, outputs, memory ports)
        // must find a non-empty pool; an empty genome prefix gets one
        // seeded constant.
        let needs_pool = self.mem.is_some() || !self.ops.is_empty() || !self.outputs.is_empty();
        if pool.is_empty() && needs_pool {
            pool.push(d.constant(0, Width::BIT));
        }

        let mem = self.mem.as_ref().map(|g| {
            let depth = g.depth.clamp(2, 32) as usize;
            let w = Width::new(16).expect("static");
            let m = d.mem("ram", w, depth, vec![]).expect("fresh mem name");
            (m, g)
        });

        let resolve = |pool: &[NodeId], r: u32| pool[r as usize % pool.len()];

        for op in &self.ops {
            let node = match *op {
                OpGene::Unary { op, a } => {
                    let a = resolve(&pool, a);
                    d.unary(UNOPS[op as usize % UNOPS.len()], a)
                }
                OpGene::Binary { op, a, b } => {
                    let a = resolve(&pool, a);
                    let b = resolve(&pool, b);
                    let wa = d.width(a);
                    let b = coerce(&mut d, b, wa);
                    d.binary(BINOPS[op as usize % BINOPS.len()], a, b)
                        .expect("coerced to same width")
                }
                OpGene::Mux { sel, t, f } => {
                    let sel = resolve(&pool, sel);
                    let t = resolve(&pool, t);
                    let f = resolve(&pool, f);
                    let sel = coerce(&mut d, sel, Width::BIT);
                    let wt = d.width(t);
                    let f = coerce(&mut d, f, wt);
                    d.mux(sel, t, f).expect("coerced widths")
                }
                OpGene::Slice { a, hi, lo } => {
                    let a = resolve(&pool, a);
                    let w = d.width(a).bits();
                    let lo = lo % w;
                    let hi = lo + hi % (w - lo);
                    d.slice(a, hi, lo).expect("normalized bounds")
                }
                OpGene::Cat { hi, lo } => {
                    let hi = resolve(&pool, hi);
                    let lo = resolve(&pool, lo);
                    let room = 64 - d.width(hi).bits();
                    if room == 0 {
                        hi
                    } else {
                        let lo_w = d.width(lo).bits().min(room);
                        let lo = coerce(&mut d, lo, clamp_width(lo_w));
                        d.cat(hi, lo).expect("fits in 64 bits")
                    }
                }
                OpGene::MemRead { addr } => {
                    let a = resolve(&pool, addr);
                    match mem {
                        Some((m, _)) => {
                            let aw = d.memory(m).addr_width();
                            let addr = coerce(&mut d, a, aw);
                            d.mem_read(m, addr).expect("coerced address width")
                        }
                        None => a,
                    }
                }
            };
            pool.push(node);
        }

        for (r, g) in regs.iter().zip(&self.regs) {
            let w = d.register(*r).width();
            let src = resolve(&pool, g.src);
            let src = coerce(&mut d, src, w);
            let enable = g.enable.map(|e| {
                let e = resolve(&pool, e);
                coerce(&mut d, e, Width::BIT)
            });
            d.reconnect_reg(*r, src, enable).expect("coerced widths");
        }

        if let Some((m, g)) = mem {
            let aw = d.memory(m).addr_width();
            let dw = d.memory(m).width();
            let rd = resolve(&pool, g.rd_addr);
            let rd = coerce(&mut d, rd, aw);
            let read = d.mem_read(m, rd).expect("coerced address width");
            pool.push(read);
            let wa = resolve(&pool, g.wr_addr);
            let wa = coerce(&mut d, wa, aw);
            let wd = resolve(&pool, g.wr_data);
            let wd = coerce(&mut d, wd, dw);
            let we = resolve(&pool, g.wr_en);
            let we = coerce(&mut d, we, Width::BIT);
            d.mem_write(m, wa, wd, we).expect("coerced port widths");
        }

        for (i, &r) in self.outputs.iter().enumerate() {
            if pool.is_empty() {
                break;
            }
            let n = resolve(&pool, r);
            d.output(format!("out{i}"), n).expect("fresh output name");
        }

        d.validate().expect("genome builds a valid design");
        d
    }

    /// The number of pool slots that exist before the first op: inputs,
    /// constants, register outputs, and (for otherwise-empty genomes that
    /// still need operands) the seeded constant.
    pub fn pool_base(&self) -> usize {
        let n = self.inputs.len() + self.consts.len() + self.regs.len();
        let needs_pool = self.mem.is_some() || !self.ops.is_empty() || !self.outputs.is_empty();
        n + usize::from(n == 0 && needs_pool)
    }

    /// Rewrites every reference to the pool index it actually resolves
    /// to, without changing the built design.
    ///
    /// Raw genomes carry arbitrary `u32` references that [`build`]
    /// reduces modulo the pool size *at the point of use* — which means
    /// removing any gene reshuffles every later resolution. A canonical
    /// genome's references are already reduced, so the shrinker can
    /// remove a pool slot and renumber the survivors exactly, leaving
    /// the rest of the design bit-identical.
    ///
    /// [`build`]: Genome::build
    pub fn canonicalize(&self) -> Genome {
        let mut g = self.clone();
        let base = g.pool_base();
        let m = |r: &mut u32, len: usize| *r %= len as u32;
        for (j, op) in g.ops.iter_mut().enumerate() {
            let len = base + j;
            match op {
                OpGene::Unary { a, .. } | OpGene::Slice { a, .. } => m(a, len),
                OpGene::Binary { a, b, .. } => {
                    m(a, len);
                    m(b, len);
                }
                OpGene::Mux { sel, t, f } => {
                    m(sel, len);
                    m(t, len);
                    m(f, len);
                }
                OpGene::Cat { hi, lo } => {
                    m(hi, len);
                    m(lo, len);
                }
                OpGene::MemRead { addr } => m(addr, len),
            }
        }
        let full = base + g.ops.len();
        for r in &mut g.regs {
            m(&mut r.src, full);
            if let Some(e) = &mut r.enable {
                m(e, full);
            }
        }
        let final_len = full + usize::from(g.mem.is_some());
        if let Some(mem) = &mut g.mem {
            m(&mut mem.rd_addr, full);
            m(&mut mem.wr_addr, final_len);
            m(&mut mem.wr_data, final_len);
            m(&mut mem.wr_en, final_len);
        }
        for r in &mut g.outputs {
            m(r, final_len);
        }
        g
    }

    /// Total number of genes — the size metric the shrinker minimizes.
    pub fn gene_count(&self) -> usize {
        self.inputs.len()
            + self.consts.len()
            + self.regs.len()
            + usize::from(self.mem.is_some())
            + self.ops.len()
            + self.outputs.len()
    }
}

/// Width coercion that keeps genome interpretation total: slice down to
/// narrow, zero-extend (via concatenation with a zero constant) to widen.
fn coerce(d: &mut Design, n: NodeId, w: Width) -> NodeId {
    let have = d.width(n).bits();
    let want = w.bits();
    if have == want {
        n
    } else if have > want {
        d.slice(n, want - 1, 0).expect("narrowing slice in range")
    } else {
        let pad = d.constant(0, Width::new(want - have).expect("1..=63 bits"));
        d.cat(pad, n).expect("widening cat fits")
    }
}

/// Generates a random genome from a seed and a
/// [`RandDesignConfig`]-shaped budget (the same knobs `rand_design`
/// takes, so the fuzzer's config sweep can reuse its degenerate corners).
pub fn rand_genome(seed: u64, cfg: &RandDesignConfig, cycles: u32) -> Genome {
    let mut rng = StdRng::seed_from_u64(seed);
    let widths: Vec<u32> = if cfg.widths.is_empty() {
        vec![1]
    } else {
        cfg.widths.clone()
    };
    let pick_w = |rng: &mut StdRng| widths[rng.gen_range(0..widths.len())];

    let inputs: Vec<u32> = (0..cfg.inputs).map(|_| pick_w(&mut rng)).collect();
    let consts: Vec<(u64, u32)> = (0..3)
        .map(|_| {
            let w = pick_w(&mut rng);
            (rng.gen::<u64>(), w)
        })
        .collect();
    let regs: Vec<RegGene> = (0..cfg.regs)
        .map(|_| RegGene {
            width: pick_w(&mut rng),
            init: rng.gen(),
            src: rng.gen(),
            enable: if rng.gen_bool(0.5) {
                Some(rng.gen())
            } else {
                None
            },
        })
        .collect();
    let mem = cfg.with_memory.then(|| MemGene {
        depth: rng.gen_range(2..=32),
        rd_addr: rng.gen(),
        wr_addr: rng.gen(),
        wr_data: rng.gen(),
        wr_en: rng.gen(),
    });
    let ops: Vec<OpGene> = (0..cfg.ops)
        .map(|_| match rng.gen_range(0..10) {
            0 => OpGene::Unary {
                op: rng.gen(),
                a: rng.gen(),
            },
            1..=4 => OpGene::Binary {
                op: rng.gen(),
                a: rng.gen(),
                b: rng.gen(),
            },
            5 => OpGene::Mux {
                sel: rng.gen(),
                t: rng.gen(),
                f: rng.gen(),
            },
            6 => OpGene::Slice {
                a: rng.gen(),
                hi: rng.gen(),
                lo: rng.gen(),
            },
            7 => OpGene::Cat {
                hi: rng.gen(),
                lo: rng.gen(),
            },
            8 => OpGene::MemRead { addr: rng.gen() },
            _ => OpGene::Unary {
                op: 0,
                a: rng.gen(),
            },
        })
        .collect();
    let outputs: Vec<u32> = (0..cfg.outputs).map(|_| rng.gen()).collect();

    Genome {
        inputs,
        consts,
        regs,
        mem,
        ops,
        outputs,
        cycles,
        stim_seed: seed ^ 0x5EED_CAFE_F00D_BEEF,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn every_random_genome_builds() {
        let cfg = RandDesignConfig::default();
        for seed in 0..100 {
            let g = rand_genome(seed, &cfg, 16);
            let d = g.build();
            assert!(d.validate().is_ok());
        }
    }

    #[test]
    fn empty_genome_builds() {
        let g = Genome {
            inputs: vec![],
            consts: vec![],
            regs: vec![],
            mem: None,
            ops: vec![],
            outputs: vec![],
            cycles: 0,
            stim_seed: 0,
        };
        let d = g.build();
        assert_eq!(d.node_count(), 0);
    }

    #[test]
    fn genome_roundtrips_through_json() {
        let g = rand_genome(7, &RandDesignConfig::default(), 32);
        let text = serde_json::to_string(&g).unwrap();
        let back: Genome = serde_json::from_str(&text).unwrap();
        assert_eq!(g, back);
    }

    #[test]
    fn canonicalize_preserves_the_built_design() {
        use strober_sim::Simulator;
        let cfg = RandDesignConfig::default();
        for seed in 0..30 {
            let g = rand_genome(seed, &cfg, 8);
            let c = g.canonicalize();
            let (da, db) = (g.build(), c.build());
            assert_eq!(da.node_count(), db.node_count(), "seed {seed}");
            let mut sa = Simulator::new(&da).unwrap();
            let mut sb = Simulator::new(&db).unwrap();
            let outputs: Vec<String> = da.outputs().iter().map(|(n, _)| n.clone()).collect();
            for cycle in 0..8u64 {
                for (i, p) in da.ports().iter().enumerate() {
                    let v = stimulus(g.stim_seed, i, cycle) & p.width().mask();
                    sa.poke_by_name(p.name(), v).unwrap();
                    sb.poke_by_name(p.name(), v).unwrap();
                }
                for out in &outputs {
                    assert_eq!(
                        sa.peek_output(out).unwrap(),
                        sb.peek_output(out).unwrap(),
                        "seed {seed}: `{out}` diverged after canonicalize"
                    );
                }
                sa.step();
                sb.step();
            }
            assert_eq!(sa.state(), sb.state(), "seed {seed}");
            // Canonicalizing twice is a fixpoint.
            assert_eq!(c, c.canonicalize(), "seed {seed}");
        }
    }

    #[test]
    fn build_is_total_under_arbitrary_gene_edits() {
        // Dropping any single gene from a valid genome must still build.
        let g = rand_genome(11, &RandDesignConfig::default(), 16);
        for i in 0..g.ops.len() {
            let mut e = g.clone();
            e.ops.remove(i);
            e.build();
        }
        for i in 0..g.regs.len() {
            let mut e = g.clone();
            e.regs.remove(i);
            e.build();
        }
        let mut e = g.clone();
        e.mem = None;
        e.build();
        for i in 0..g.inputs.len() {
            let mut e = g.clone();
            e.inputs.remove(i);
            e.build();
        }
    }
}

//! Checked-in reproducers.
//!
//! When the fuzzer finds (and shrinks) a divergence, it writes a
//! [`Reproducer`] — the minimized genome, the oracle configuration, and
//! the divergence report — as JSON into `fuzz/corpus/`. The corpus
//! regression test replays every entry through the full oracle matrix
//! *without* the recorded injection on every `cargo test`, so a fixed bug
//! stays fixed forever (and an entry for a still-open bug fails loudly).

use crate::genome::Genome;
use crate::oracle::{Divergence, InjectedBug, OracleConfig};
use std::path::{Path, PathBuf};

/// Schema version for corpus files.
pub const CORPUS_VERSION: u32 = 1;

/// One minimized, replayable reproducer.
#[derive(Debug, Clone, PartialEq, serde::Serialize, serde::Deserialize)]
pub struct Reproducer {
    /// Schema version ([`CORPUS_VERSION`]).
    pub version: u32,
    /// Where the entry came from (seed, tool invocation, date).
    pub provenance: String,
    /// The bug that was injected when this entry was produced, if any.
    /// Replays run **without** it: an entry earns its place in the corpus
    /// by reproducing on (a past version of) the real code, or by
    /// documenting an injected bug the harness provably catches.
    pub inject: Option<InjectedBug>,
    /// The oracle configuration the divergence was found under.
    pub oracle: OracleConfig,
    /// The minimized genome.
    pub genome: Genome,
    /// The divergence observed when the entry was written.
    pub divergence: Divergence,
}

impl Reproducer {
    /// Serializes to pretty JSON.
    pub fn to_json(&self) -> String {
        serde_json::to_string_pretty(self).expect("reproducer serialization is infallible")
    }

    /// Parses from JSON.
    pub fn from_json(text: &str) -> Result<Self, String> {
        serde_json::from_str(text).map_err(|e| format!("corpus entry parse error: {e}"))
    }
}

/// Loads every `*.json` reproducer under `dir`, sorted by file name.
/// A missing directory is an empty corpus, not an error.
pub fn load_corpus(dir: &Path) -> Result<Vec<(PathBuf, Reproducer)>, String> {
    let mut entries = Vec::new();
    let rd = match std::fs::read_dir(dir) {
        Ok(rd) => rd,
        Err(e) if e.kind() == std::io::ErrorKind::NotFound => return Ok(entries),
        Err(e) => return Err(format!("cannot read corpus dir `{}`: {e}", dir.display())),
    };
    let mut paths: Vec<PathBuf> = rd
        .filter_map(|e| e.ok().map(|e| e.path()))
        .filter(|p| p.extension().is_some_and(|x| x == "json"))
        .collect();
    paths.sort();
    for path in paths {
        let text = std::fs::read_to_string(&path)
            .map_err(|e| format!("cannot read `{}`: {e}", path.display()))?;
        let rep = Reproducer::from_json(&text).map_err(|e| format!("`{}`: {e}", path.display()))?;
        entries.push((path, rep));
    }
    Ok(entries)
}

/// Writes a reproducer into `dir` as `<stem>.json`, creating the
/// directory if needed. Returns the written path.
pub fn write_reproducer(dir: &Path, stem: &str, rep: &Reproducer) -> Result<PathBuf, String> {
    std::fs::create_dir_all(dir)
        .map_err(|e| format!("cannot create corpus dir `{}`: {e}", dir.display()))?;
    let path = dir.join(format!("{stem}.json"));
    std::fs::write(&path, rep.to_json())
        .map_err(|e| format!("cannot write `{}`: {e}", path.display()))?;
    Ok(path)
}

//! The N-way oracle matrix.
//!
//! One genome is run through every semantically-equivalent execution
//! path in the workspace and all of them must agree:
//!
//! | oracle      | engine                                   | compared against |
//! |-------------|------------------------------------------|------------------|
//! | `naive`     | tree-walking interpreter                 | (reference)      |
//! | `tape`      | compiled op-tape, optimizing compiler    | `naive`          |
//! | `tape-raw`  | compiled op-tape, optimizer disabled     | `naive`          |
//! | `tape-par@T`| optimized op-tape on T settle workers    | `naive`          |
//! | `tape-jit`  | rustc-compiled native settle dylib       | `naive`          |
//! | `fame`      | FAME1 hub with `fire` held high          | `naive`          |
//! | `gate`      | scalar gate-level sim of the netlist     | `naive`/`tape`   |
//! | `batch@L`   | L-lane bit-parallel gate-level sim       | `gate`           |
//! | `flow`      | sample → snapshot → replay round trip    | itself, 1 vs 64 lanes |
//!
//! Agreement covers per-cycle outputs, final architectural state, per-net
//! toggle counts, and power totals — the quantities Strober's energy
//! numbers are built from. The optional [`InjectedBug`] mutates the
//! synthesized netlist the way a buggy gate lowering would, letting the
//! corpus tests prove the harness catches (and the shrinker minimizes)
//! real divergences.

use crate::genome::{stimulus, Genome};
use strober::{StroberConfig, StroberFlow};
use strober_fame::{transform, FameConfig};
use strober_gates::{CellKind, CellLibrary, Gate, Netlist};
use strober_gatesim::{ActivityReport, BatchSim, GateSim};
use strober_platform::{HostModel, OutputView, TargetInput};
use strober_power::PowerAnalyzer;
use strober_sim::{NaiveInterpreter, Simulator, TapeOptions};
use strober_synth::{synthesize, SynthOptions};

/// A deliberately-introduced netlist bug, applied after synthesis to
/// model a broken gate lowering.
#[derive(Debug, Clone, Copy, PartialEq, Eq, serde::Serialize, serde::Deserialize)]
pub enum InjectedBug {
    /// Every 2-input XOR cell is replaced by an OR cell — wrong only
    /// when both inputs are high, so it survives sparse stimulus and
    /// exercises the shrinker on a realistic miscompile.
    XorAsOr,
}

/// What to run and how.
#[derive(Debug, Clone, PartialEq, Eq, serde::Serialize, serde::Deserialize)]
pub struct OracleConfig {
    /// Batch lane counts to cross-check against the scalar gate sim.
    pub lanes: Vec<usize>,
    /// Whether to run the full `StroberFlow` round trip (skipped
    /// automatically for designs with no I/O and for injected-bug runs).
    pub flow: bool,
    /// The netlist mutation to apply, if any.
    pub inject: Option<InjectedBug>,
}

impl Default for OracleConfig {
    fn default() -> Self {
        OracleConfig {
            lanes: vec![1, 7, 63, 64],
            flow: true,
            inject: None,
        }
    }
}

/// A disagreement between two oracles (or a hard failure inside one).
#[derive(Debug, Clone, PartialEq, serde::Serialize, serde::Deserialize)]
pub enum Divergence {
    /// An output value differed from the reference at some cycle.
    Output {
        /// The oracle that produced the wrong value.
        oracle: String,
        /// The oracle that produced the reference value.
        reference: String,
        /// Output port name.
        output: String,
        /// Cycle at which the values differed.
        cycle: u64,
        /// Batch lane (0 for scalar oracles).
        lane: usize,
        /// Reference value.
        expected: u64,
        /// Observed value.
        got: u64,
    },
    /// Final architectural state differed.
    State {
        /// The oracle with the wrong state.
        oracle: String,
        /// The reference oracle.
        reference: String,
        /// Human-readable difference.
        detail: String,
    },
    /// Gate-level toggle counts differed between lanes/engines.
    Toggles {
        /// The oracle with the wrong count.
        oracle: String,
        /// The reference oracle.
        reference: String,
        /// Batch lane.
        lane: usize,
        /// Reference total toggle count.
        expected: u64,
        /// Observed total toggle count.
        got: u64,
    },
    /// Power totals differed between lanes/engines.
    Power {
        /// The oracle with the wrong total.
        oracle: String,
        /// The reference oracle.
        reference: String,
        /// Batch lane.
        lane: usize,
        /// Reference total power, mW.
        expected_mw: f64,
        /// Observed total power, mW.
        got_mw: f64,
    },
    /// The sample→snapshot→replay round trip disagreed with itself.
    Flow {
        /// Human-readable difference.
        detail: String,
    },
    /// An oracle failed outright (build, synthesis, or replay error).
    Error {
        /// The failing oracle.
        oracle: String,
        /// The error text.
        detail: String,
    },
}

impl Divergence {
    /// A stable label for the divergence's kind — the shrinker requires
    /// the kind (and oracle) to stay fixed while it minimizes.
    pub fn kind(&self) -> &'static str {
        match self {
            Divergence::Output { .. } => "output",
            Divergence::State { .. } => "state",
            Divergence::Toggles { .. } => "toggles",
            Divergence::Power { .. } => "power",
            Divergence::Flow { .. } => "flow",
            Divergence::Error { .. } => "error",
        }
    }

    /// The oracle the divergence was observed in.
    pub fn oracle(&self) -> &str {
        match self {
            Divergence::Output { oracle, .. }
            | Divergence::State { oracle, .. }
            | Divergence::Toggles { oracle, .. }
            | Divergence::Power { oracle, .. }
            | Divergence::Error { oracle, .. } => oracle,
            Divergence::Flow { .. } => "flow",
        }
    }

    /// Whether `other` is "the same bug" for shrinking purposes: same
    /// kind, observed in the same oracle.
    pub fn same_bug(&self, other: &Divergence) -> bool {
        self.kind() == other.kind() && self.oracle() == other.oracle()
    }
}

impl std::fmt::Display for Divergence {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            Divergence::Output {
                oracle,
                reference,
                output,
                cycle,
                lane,
                expected,
                got,
            } => write!(
                f,
                "{oracle} vs {reference}: output `{output}` lane {lane} cycle {cycle}: expected {expected:#x}, got {got:#x}"
            ),
            Divergence::State {
                oracle,
                reference,
                detail,
            } => write!(f, "{oracle} vs {reference}: state diverged: {detail}"),
            Divergence::Toggles {
                oracle,
                reference,
                lane,
                expected,
                got,
            } => write!(
                f,
                "{oracle} vs {reference}: toggle count lane {lane}: expected {expected}, got {got}"
            ),
            Divergence::Power {
                oracle,
                reference,
                lane,
                expected_mw,
                got_mw,
            } => write!(
                f,
                "{oracle} vs {reference}: power lane {lane}: expected {expected_mw} mW, got {got_mw} mW"
            ),
            Divergence::Flow { detail } => write!(f, "flow round trip: {detail}"),
            Divergence::Error { oracle, detail } => write!(f, "{oracle} failed: {detail}"),
        }
    }
}

/// Rebuilds a netlist with the given bug applied.
pub fn inject_bug(netlist: &Netlist, bug: InjectedBug) -> Netlist {
    let mut out = Netlist::new(netlist.name().to_owned());
    for i in 0..netlist.net_count() {
        out.add_net(
            netlist
                .net_name(strober_gates::NetId::from_index(i))
                .to_owned(),
        );
    }
    for region in netlist.regions() {
        out.intern_region(region);
    }
    for (name, net) in netlist.inputs() {
        out.add_input(name.clone(), *net);
    }
    for (name, net) in netlist.outputs() {
        out.add_output(name.clone(), *net);
    }
    for gate in netlist.gates() {
        match gate {
            Gate::Comb {
                kind,
                inputs,
                output,
                region,
            } => {
                let kind = match bug {
                    InjectedBug::XorAsOr if *kind == CellKind::Xor2 => CellKind::Or2,
                    _ => *kind,
                };
                out.add_gate(kind, inputs.clone(), *output, *region);
            }
            Gate::Dff {
                name,
                d,
                q,
                init,
                region,
            } => {
                out.add_dff(name.clone(), *d, *q, *init, *region);
            }
        }
    }
    for sram in netlist.srams() {
        out.add_sram(sram.clone());
    }
    out
}

/// The stimulus stream a lane replays: even lanes drive stream A, odd
/// lanes stream B, so cross-lane bleed in the bit-parallel engine cannot
/// cancel out.
fn lane_stream(genome: &Genome, lane: usize) -> u64 {
    if lane.is_multiple_of(2) {
        genome.stim_seed
    } else {
        genome.stim_seed ^ 0xB00B_5EED_0DD5_EED5
    }
}

struct RtlRun {
    /// `outputs_trace[cycle][output_idx]`.
    outputs_trace: Vec<Vec<u64>>,
    state: strober_sim::SimState,
}

/// Drives a scalar RTL engine with one stimulus stream, recording every
/// output every cycle and the final architectural state.
#[allow(clippy::too_many_arguments)]
fn run_rtl<E>(
    engine: &mut E,
    ports: &[(String, u64)],
    outputs: &[String],
    stream: u64,
    cycles: u32,
    poke: impl Fn(&mut E, &str, u64) -> Result<(), String>,
    peek: impl Fn(&mut E, &str) -> Result<u64, String>,
    step: impl Fn(&mut E),
    state: impl Fn(&E) -> strober_sim::SimState,
) -> Result<RtlRun, String> {
    let mut outputs_trace = Vec::with_capacity(cycles as usize);
    for cycle in 0..u64::from(cycles) {
        for (i, (name, mask)) in ports.iter().enumerate() {
            poke(engine, name, stimulus(stream, i, cycle) & mask)?;
        }
        let mut row = Vec::with_capacity(outputs.len());
        for out in outputs {
            row.push(peek(engine, out)?);
        }
        outputs_trace.push(row);
        step(engine);
    }
    Ok(RtlRun {
        outputs_trace,
        state: state(engine),
    })
}

/// Logs — once per process — that the `tape-jit` oracle lane is being
/// skipped for lack of a `rustc` on PATH, so campaign logs record why
/// the matrix is one lane short rather than silently narrowing.
fn jit_lane_skip_notice() {
    static ONCE: std::sync::Once = std::sync::Once::new();
    ONCE.call_once(|| {
        strober_probe::warn!("no rustc on PATH; skipping the tape-jit oracle lane");
    });
}

/// Runs the full oracle matrix on one genome.
///
/// `Ok(())` means every oracle agreed on every compared quantity;
/// `Err(d)` reports the first divergence found.
pub fn check(genome: &Genome, cfg: &OracleConfig) -> Result<(), Divergence> {
    let design = genome.build();
    let ports: Vec<(String, u64)> = design
        .ports()
        .iter()
        .map(|p| (p.name().to_owned(), p.width().mask()))
        .collect();
    let outputs: Vec<String> = design.outputs().iter().map(|(n, _)| n.clone()).collect();
    let cycles = genome.cycles;
    let err = |oracle: &str, detail: String| Divergence::Error {
        oracle: oracle.to_owned(),
        detail,
    };

    // --- Reference: naive tree-walking interpreter, both streams. ---
    let mut refs = Vec::new();
    for stream_lane in 0..2usize {
        let stream = lane_stream(genome, stream_lane);
        let mut naive = NaiveInterpreter::new(&design).map_err(|e| err("naive", e.to_string()))?;
        let run = run_rtl(
            &mut naive,
            &ports,
            &outputs,
            stream,
            cycles,
            |e, n, v| e.poke_by_name(n, v).map_err(|e| e.to_string()),
            |e, n| e.peek_output(n).map_err(|e| e.to_string()),
            |e| e.step(),
            |e| e.state(),
        )
        .map_err(|d| err("naive", d))?;
        refs.push(run);
    }

    // --- Oracle: compiled tape simulator, both streams, with the
    // optimizing tape compiler both enabled (the default) and disabled.
    // Running both lanes over the same stimulus makes every fuzz seed a
    // differential test of the optimizer passes themselves.
    for (oracle, options) in [
        ("tape", TapeOptions::all()),
        ("tape-raw", TapeOptions::none()),
    ] {
        for (stream_lane, reference) in refs.iter().enumerate() {
            let stream = lane_stream(genome, stream_lane);
            let mut tape = Simulator::with_options(&design, &options)
                .map_err(|e| err(oracle, e.to_string()))?;
            let run = run_rtl(
                &mut tape,
                &ports,
                &outputs,
                stream,
                cycles,
                |e, n, v| e.poke_by_name(n, v).map_err(|e| e.to_string()),
                |e, n| e.peek_output(n).map_err(|e| e.to_string()),
                |e| e.step(),
                |e| e.state(),
            )
            .map_err(|d| err(oracle, d))?;
            compare_rtl(oracle, &run, reference, &outputs)?;
        }
    }

    // --- Oracle: partitioned multi-threaded tape engine, both streams.
    // Same optimized tape as `tape`, settled on a worker pool — every
    // fuzz seed differentially tests the partition planner and barrier
    // discipline against the tree-walking reference.
    for &threads in &[2usize, 4] {
        let oracle = format!("tape-par@{threads}");
        for (stream_lane, reference) in refs.iter().enumerate() {
            let stream = lane_stream(genome, stream_lane);
            let mut tape = Simulator::new(&design).map_err(|e| err(&oracle, e.to_string()))?;
            tape.set_threads(threads);
            let run = run_rtl(
                &mut tape,
                &ports,
                &outputs,
                stream,
                cycles,
                |e, n, v| e.poke_by_name(n, v).map_err(|e| e.to_string()),
                |e, n| e.peek_output(n).map_err(|e| e.to_string()),
                |e| e.step(),
                |e| e.state(),
            )
            .map_err(|d| err(&oracle, d))?;
            compare_rtl(&oracle, &run, reference, &outputs)?;
        }
    }

    // --- Oracle: JIT-compiled native settle code, both streams. The
    // optimized op tape is lowered to Rust, compiled into a dylib and
    // attached as the settle engine, so every fuzz seed differentially
    // tests the codegen (and the dylib loader) against the tree-walking
    // reference. Skipped — with one logged notice per process — when no
    // rustc is on PATH to compile the dylib; the cross-seed file cache
    // makes the second stream's attach a warm hit.
    if strober_jit::rustc_version().is_some() {
        let oracle = "tape-jit";
        let compiler = strober_jit::JitCompiler::in_temp();
        for (stream_lane, reference) in refs.iter().enumerate() {
            let stream = lane_stream(genome, stream_lane);
            let mut tape = Simulator::new(&design).map_err(|e| err(oracle, e.to_string()))?;
            compiler
                .attach(&mut tape)
                .map_err(|e| err(oracle, e.to_string()))?;
            let run = run_rtl(
                &mut tape,
                &ports,
                &outputs,
                stream,
                cycles,
                |e, n, v| e.poke_by_name(n, v).map_err(|e| e.to_string()),
                |e, n| e.peek_output(n).map_err(|e| e.to_string()),
                |e| e.step(),
                |e| e.state(),
            )
            .map_err(|d| err(oracle, d))?;
            compare_rtl(oracle, &run, reference, &outputs)?;
        }
    } else {
        jit_lane_skip_notice();
    }

    // --- Oracle: FAME1 hub with fire held high (stream A only). ---
    {
        let fame =
            transform(&design, &FameConfig::default()).map_err(|e| err("fame", e.to_string()))?;
        let mut hub = Simulator::new(&fame.hub).map_err(|e| err("fame", e.to_string()))?;
        hub.poke_by_name("fame/fire", 1)
            .map_err(|e| err("fame", e.to_string()))?;
        let stream = lane_stream(genome, 0);
        for cycle in 0..u64::from(cycles) {
            for (i, (name, mask)) in ports.iter().enumerate() {
                hub.poke_by_name(name, stimulus(stream, i, cycle) & mask)
                    .map_err(|e| err("fame", e.to_string()))?;
            }
            for (oi, out) in outputs.iter().enumerate() {
                let got = hub
                    .peek_output(out)
                    .map_err(|e| err("fame", e.to_string()))?;
                let expected = refs[0].outputs_trace[cycle as usize][oi];
                if got != expected {
                    return Err(Divergence::Output {
                        oracle: "fame".to_owned(),
                        reference: "naive".to_owned(),
                        output: out.clone(),
                        cycle,
                        lane: 0,
                        expected,
                        got,
                    });
                }
            }
            hub.step();
        }
        let hub_cycle = hub
            .peek_output("fame/cycle")
            .map_err(|e| err("fame", e.to_string()))?;
        if hub_cycle != u64::from(cycles) {
            return Err(Divergence::State {
                oracle: "fame".to_owned(),
                reference: "naive".to_owned(),
                detail: format!("hub fired {cycles} cycles but fame/cycle reads {hub_cycle}"),
            });
        }
    }

    // --- Synthesize (optionally with the injected bug). ---
    let synth =
        synthesize(&design, &SynthOptions::default()).map_err(|e| err("synth", e.to_string()))?;
    let netlist = match cfg.inject {
        Some(bug) => inject_bug(&synth.netlist, bug),
        None => synth.netlist.clone(),
    };
    let lib = CellLibrary::generic_45nm();
    let analyzer = PowerAnalyzer::new(&netlist, &lib, 1.0e9);

    // --- Oracle: scalar gate-level sim, both streams. ---
    let mut gate_runs: Vec<(RtlRunGate, ActivityReport)> = Vec::new();
    for (stream_lane, reference) in refs.iter().enumerate() {
        let stream = lane_stream(genome, stream_lane);
        let mut gate = GateSim::new(&netlist).map_err(|e| err("gate", e.to_string()))?;
        let mut outputs_trace = Vec::with_capacity(cycles as usize);
        for cycle in 0..u64::from(cycles) {
            for (i, (name, mask)) in ports.iter().enumerate() {
                gate.poke_port(name, stimulus(stream, i, cycle) & mask)
                    .map_err(|e| err("gate", e.to_string()))?;
            }
            let mut row = Vec::with_capacity(outputs.len());
            for (oi, out) in outputs.iter().enumerate() {
                let got = gate
                    .peek_port(out)
                    .map_err(|e| err("gate", e.to_string()))?;
                let expected = reference.outputs_trace[cycle as usize][oi];
                if got != expected {
                    return Err(Divergence::Output {
                        oracle: "gate".to_owned(),
                        reference: "naive".to_owned(),
                        output: out.clone(),
                        cycle,
                        lane: stream_lane,
                        expected,
                        got,
                    });
                }
                row.push(got);
            }
            outputs_trace.push(row);
            gate.step();
        }
        let activity = gate.activity();
        gate_runs.push((RtlRunGate { outputs_trace }, activity));
    }

    // --- Oracle: bit-parallel batch sim at each lane count. ---
    for &lanes in &cfg.lanes {
        let mut batch =
            BatchSim::with_lanes(&netlist, lanes).map_err(|e| err("batch", e.to_string()))?;
        let oracle = format!("batch@{lanes}");
        let mut values = vec![0u64; lanes];
        for cycle in 0..u64::from(cycles) {
            for (i, (name, mask)) in ports.iter().enumerate() {
                for (lane, v) in values.iter_mut().enumerate() {
                    *v = stimulus(lane_stream(genome, lane), i, cycle) & mask;
                }
                batch
                    .poke_port_lanes(name, &values)
                    .map_err(|e| err(&oracle, e.to_string()))?;
            }
            for (oi, out) in outputs.iter().enumerate() {
                batch
                    .peek_port_lanes_into(out, &mut values)
                    .map_err(|e| err(&oracle, e.to_string()))?;
                for (lane, &got) in values.iter().enumerate() {
                    let expected = gate_runs[lane % 2].0.outputs_trace[cycle as usize][oi];
                    if got != expected {
                        return Err(Divergence::Output {
                            oracle: oracle.clone(),
                            reference: "gate".to_owned(),
                            output: out.clone(),
                            cycle,
                            lane,
                            expected,
                            got,
                        });
                    }
                }
            }
            batch.step();
        }
        for lane in 0..lanes {
            let activity = batch
                .activity_lane(lane)
                .map_err(|e| err(&oracle, e.to_string()))?;
            let reference = &gate_runs[lane % 2].1;
            if activity != *reference {
                return Err(Divergence::Toggles {
                    oracle: oracle.clone(),
                    reference: "gate".to_owned(),
                    lane,
                    expected: reference.total_toggles(),
                    got: activity.total_toggles(),
                });
            }
            if cycles > 0 {
                let got = analyzer.analyze(&activity);
                let expected = analyzer.analyze(reference);
                if got != expected {
                    return Err(Divergence::Power {
                        oracle: oracle.clone(),
                        reference: "gate".to_owned(),
                        lane,
                        expected_mw: expected.total_mw(),
                        got_mw: got.total_mw(),
                    });
                }
            }
        }
    }

    // --- Oracle: full sample → snapshot → replay round trip. ---
    // Needs real I/O traffic (an empty trace window would make the power
    // model divide by zero cycles) and an unmutated netlist.
    if cfg.flow && cfg.inject.is_none() && !ports.is_empty() && !outputs.is_empty() {
        check_flow(genome, &design, &ports)?;
    }

    Ok(())
}

struct RtlRunGate {
    outputs_trace: Vec<Vec<u64>>,
}

fn compare_rtl(
    oracle: &str,
    run: &RtlRun,
    reference: &RtlRun,
    outputs: &[String],
) -> Result<(), Divergence> {
    for (cycle, (row, ref_row)) in run
        .outputs_trace
        .iter()
        .zip(&reference.outputs_trace)
        .enumerate()
    {
        for (oi, (&got, &expected)) in row.iter().zip(ref_row).enumerate() {
            if got != expected {
                return Err(Divergence::Output {
                    oracle: oracle.to_owned(),
                    reference: "naive".to_owned(),
                    output: outputs[oi].clone(),
                    cycle: cycle as u64,
                    lane: 0,
                    expected,
                    got,
                });
            }
        }
    }
    if run.state != reference.state {
        return Err(Divergence::State {
            oracle: oracle.to_owned(),
            reference: "naive".to_owned(),
            detail: format!(
                "regs {:x?} vs {:x?}; mems differ: {}",
                run.state.regs,
                reference.state.regs,
                run.state.mems != reference.state.mems
            ),
        });
    }
    Ok(())
}

/// The host model that drives the flow oracle: replays the genome's
/// deterministic stimulus into the FAME1 hub.
#[derive(Debug)]
struct StimDriver {
    inputs: Vec<String>,
    masks: Vec<u64>,
    stream: u64,
    handles: Option<Vec<TargetInput>>,
}

impl HostModel for StimDriver {
    fn tick(&mut self, c: u64, io: &mut OutputView<'_>) {
        let inputs = &self.inputs;
        let handles = self
            .handles
            .get_or_insert_with(|| inputs.iter().map(|n| io.input(n)).collect());
        for (i, &h) in handles.iter().enumerate() {
            io.write(h, stimulus(self.stream, i, c) & self.masks[i]);
        }
    }
}

fn check_flow(
    genome: &Genome,
    design: &strober_rtl::Design,
    ports: &[(String, u64)],
) -> Result<(), Divergence> {
    let ferr = |detail: String| Divergence::Flow { detail };
    let config = StroberConfig {
        replay_length: 16,
        warmup: 0,
        sample_size: 4,
        seed: genome.stim_seed,
        ..StroberConfig::default()
    };
    let flow = StroberFlow::new(design, config).map_err(|e| ferr(format!("prepare: {e}")))?;
    let mut driver = StimDriver {
        inputs: ports.iter().map(|(n, _)| n.clone()).collect(),
        masks: ports.iter().map(|(_, m)| *m).collect(),
        stream: lane_stream(genome, 0),
        handles: None,
    };
    let max_cycles = u64::from(genome.cycles).max(64) * 4;
    let run = flow
        .run_sampled(&mut driver, max_cycles)
        .map_err(|e| ferr(format!("run_sampled: {e}")))?;
    if run.snapshots.is_empty() {
        return Ok(());
    }
    let scalar = flow
        .replay_all(&run.snapshots, 1)
        .map_err(|e| ferr(format!("scalar replay: {e}")))?;
    let batched = flow
        .replay_all_batched(&run.snapshots, 1, 64)
        .map_err(|e| ferr(format!("batched replay: {e}")))?;
    if scalar != batched {
        return Err(ferr(format!(
            "scalar and 64-lane replay disagree: {scalar:?} vs {batched:?}"
        )));
    }
    if scalar.len() >= 2 {
        let est = flow
            .estimate(&run, &scalar)
            .map_err(|e| ferr(format!("estimate: {e}")))?;
        let est_b = flow
            .estimate(&run, &batched)
            .map_err(|e| ferr(format!("estimate (batched): {e}")))?;
        if est.mean_power_mw() != est_b.mean_power_mw() {
            return Err(ferr(format!(
                "estimates disagree: {} vs {} mW",
                est.mean_power_mw(),
                est_b.mean_power_mw()
            )));
        }
    }
    Ok(())
}

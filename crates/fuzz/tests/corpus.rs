//! Corpus regression suite.
//!
//! Replays every checked-in reproducer under `fuzz/corpus/` through the
//! full oracle matrix on every `cargo test`, and proves end-to-end that
//! the harness catches and minimizes an artificially-injected bug.

use std::path::Path;
use strober_fuzz::{check, load_corpus, run_fuzz, FuzzOptions, InjectedBug, OracleConfig};

fn corpus_dir() -> std::path::PathBuf {
    Path::new(env!("CARGO_MANIFEST_DIR")).join("../../fuzz/corpus")
}

/// Every corpus entry must replay cleanly on the real (un-injected) code:
/// a fixed bug stays fixed forever. Entries that recorded an injected bug
/// must additionally still *diverge* when the injection is re-applied —
/// the minimized genome keeps exercising the code path that caught it.
#[test]
fn corpus_replays_clean_and_reinjects_dirty() {
    let entries = load_corpus(&corpus_dir()).expect("corpus loads");
    assert!(
        !entries.is_empty(),
        "fuzz/corpus must hold at least one checked-in reproducer"
    );
    for (path, rep) in entries {
        let name = path.file_name().unwrap().to_string_lossy().into_owned();
        assert_eq!(rep.version, strober_fuzz::CORPUS_VERSION, "{name}: version");
        assert!(
            rep.oracle.inject.is_none(),
            "{name}: stored oracle must not inject"
        );
        if let Err(d) = check(&rep.genome, &rep.oracle) {
            panic!("{name}: regressed — oracles diverge again: {d}");
        }
        if let Some(bug) = rep.inject {
            let dirty = OracleConfig {
                inject: Some(bug),
                ..rep.oracle.clone()
            };
            let d = check(&rep.genome, &dirty).expect_err("re-injected bug must still diverge");
            assert_eq!(
                d.kind(),
                rep.divergence.kind(),
                "{name}: re-injection produced a different divergence kind"
            );
        }
    }
}

/// End-to-end self-test: with a gate-lowering bug injected into the
/// synthesized netlist, a short campaign must catch a divergence and the
/// shrinker must minimize the reproducer to at most 10 design nodes.
#[test]
fn injected_bug_is_caught_and_minimized() {
    let opts = FuzzOptions {
        seed_start: 0,
        seed_end: 8,
        cycles: 24,
        oracle: OracleConfig {
            lanes: vec![1, 64],
            flow: false,
            inject: Some(InjectedBug::XorAsOr),
        },
        corpus_dir: None,
        shrink_evals: 1500,
    };
    let outcome = run_fuzz(&opts, |_, _| {}).expect("campaign runs");
    let failure = outcome
        .failure
        .expect("the injected xor-as-or bug must be caught within 8 seeds");
    assert!(
        failure.min_nodes <= 10,
        "shrinker left {} nodes (want <= 10); genome: {}",
        failure.min_nodes,
        serde_json::to_string(&failure.reproducer.genome).unwrap()
    );
    // The minimized genome still diverges under injection and agrees
    // without it — exactly the contract a corpus entry relies on.
    let g = &failure.reproducer.genome;
    assert!(check(g, &opts.oracle).is_err());
    assert!(check(g, &failure.reproducer.oracle).is_ok());
}

/// A campaign over clean code finds nothing and reports throughput.
#[test]
fn clean_seeds_agree() {
    let opts = FuzzOptions {
        seed_start: 0,
        seed_end: 6,
        cycles: 16,
        oracle: OracleConfig {
            lanes: vec![1, 64],
            flow: false,
            inject: None,
        },
        corpus_dir: None,
        shrink_evals: 100,
    };
    let outcome = run_fuzz(&opts, |_, _| {}).expect("campaign runs");
    assert!(outcome.failure.is_none(), "clean code must not diverge");
    assert_eq!(outcome.designs, 6);
    assert!(outcome.designs_per_sec() > 0.0);
}

//! Power analysis from gate-level signal activity.
//!
//! This crate is the PrimeTime PX stage of the Strober replay flow
//! (Fig. 5 of the paper): it consumes the
//! [`strober_gatesim::ActivityReport`] (our SAIF) produced by replaying a
//! snapshot on the gate-level simulator, together with the cell library and
//! netlist, and produces total and per-component average power.
//!
//! The power model is the standard cycle-based decomposition:
//!
//! * **Switching + internal power** — every net toggle charges the driving
//!   cell's internal energy plus the fanout load (`E = E_int + ½·C_load·V²`
//!   from [`strober_gates::CellLibrary::switching_energy_fj`]).
//! * **Clock power** — two clock edges per cycle per flip-flop, charged
//!   against the flop's clock pin and clock-tree share.
//! * **SRAM access power** — per-access read/write energy scaled by word
//!   width, with access counts from the simulator.
//! * **Leakage** — per-cell and per-SRAM-bit static power, independent of
//!   activity.
//!
//! Every term is attributed to the floorplan component (region) its cell
//! belongs to, which is what Fig. 9a's stacked bars plot.
//!
//! # Examples
//!
//! ```
//! use strober_dsl::Ctx;
//! use strober_rtl::Width;
//! use strober_synth::{synthesize, SynthOptions};
//! use strober_gatesim::GateSim;
//! use strober_gates::CellLibrary;
//! use strober_power::PowerAnalyzer;
//!
//! # fn main() -> Result<(), Box<dyn std::error::Error>> {
//! let ctx = Ctx::new("counter");
//! let count = ctx.reg("count", Width::new(8)?, 0);
//! count.set(&count.out().add_lit(1));
//! ctx.output("value", &count.out());
//! let synth = synthesize(&ctx.finish()?, &SynthOptions::default())?;
//!
//! let mut sim = GateSim::new(&synth.netlist)?;
//! sim.step_n(256);
//!
//! let lib = CellLibrary::generic_45nm();
//! let analyzer = PowerAnalyzer::new(&synth.netlist, &lib, 1.0e9);
//! let report = analyzer.analyze(&sim.activity());
//! assert!(report.total_mw() > 0.0);
//! # Ok(())
//! # }
//! ```

#![deny(missing_docs)]
#![deny(missing_debug_implementations)]

use std::collections::BTreeMap;
use std::fmt;
use strober_gates::{CellLibrary, Gate, Netlist};
use strober_gatesim::ActivityReport;

/// The power decomposition for one component (or the whole design), in
/// milliwatts.
#[derive(Debug, Clone, Copy, Default, PartialEq)]
pub struct PowerBreakdown {
    /// Switching + internal power of combinational cells and flop data
    /// pins.
    pub switching_mw: f64,
    /// Clock-tree and clock-pin power.
    pub clock_mw: f64,
    /// SRAM macro access power.
    pub sram_mw: f64,
    /// Static leakage.
    pub leakage_mw: f64,
}

impl PowerBreakdown {
    /// Sum of all terms.
    pub fn total_mw(&self) -> f64 {
        self.switching_mw + self.clock_mw + self.sram_mw + self.leakage_mw
    }

    fn add(&mut self, other: &PowerBreakdown) {
        self.switching_mw += other.switching_mw;
        self.clock_mw += other.clock_mw;
        self.sram_mw += other.sram_mw;
        self.leakage_mw += other.leakage_mw;
    }
}

/// A power report for one measurement window.
#[derive(Debug, Clone, PartialEq)]
pub struct PowerReport {
    cycles: u64,
    by_region: BTreeMap<String, PowerBreakdown>,
}

impl PowerReport {
    /// The number of cycles the activity covered.
    pub fn cycles(&self) -> u64 {
        self.cycles
    }

    /// Total average power in mW.
    pub fn total_mw(&self) -> f64 {
        self.by_region.values().map(PowerBreakdown::total_mw).sum()
    }

    /// The whole-design breakdown.
    pub fn breakdown(&self) -> PowerBreakdown {
        let mut acc = PowerBreakdown::default();
        for b in self.by_region.values() {
            acc.add(b);
        }
        acc
    }

    /// Per-component breakdowns, keyed by region name.
    pub fn by_region(&self) -> &BTreeMap<String, PowerBreakdown> {
        &self.by_region
    }

    /// Power of one component in mW (zero if the region does not exist).
    pub fn region_mw(&self, region: &str) -> f64 {
        self.by_region
            .get(region)
            .map(PowerBreakdown::total_mw)
            .unwrap_or(0.0)
    }
}

impl fmt::Display for PowerReport {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(
            f,
            "{:<24} {:>10} {:>10} {:>10} {:>10} {:>10}",
            "component", "switch mW", "clock mW", "sram mW", "leak mW", "total mW"
        )?;
        for (region, b) in &self.by_region {
            writeln!(
                f,
                "{:<24} {:>10.3} {:>10.3} {:>10.3} {:>10.3} {:>10.3}",
                region,
                b.switching_mw,
                b.clock_mw,
                b.sram_mw,
                b.leakage_mw,
                b.total_mw()
            )?;
        }
        let t = self.breakdown();
        writeln!(
            f,
            "{:<24} {:>10.3} {:>10.3} {:>10.3} {:>10.3} {:>10.3}",
            "TOTAL",
            t.switching_mw,
            t.clock_mw,
            t.sram_mw,
            t.leakage_mw,
            t.total_mw()
        )
    }
}

/// A compiled power model for one netlist at one clock frequency.
///
/// Construction precomputes per-gate switching energies (including fanout
/// load); [`PowerAnalyzer::analyze`] is then a single pass over the
/// activity counters, so analysis time is independent of how many cycles
/// the activity window covered — the property §IV-E relies on.
#[derive(Debug, Clone)]
pub struct PowerAnalyzer {
    /// Per gate: (output net index, energy per toggle in fJ, region index).
    gate_energy: Vec<(u32, f64, u32)>,
    /// Per region: leakage power in nW.
    region_leakage_nw: Vec<f64>,
    /// Per region: clock energy per cycle in fJ.
    region_clock_fj: Vec<f64>,
    /// Per SRAM: (read energy fJ, write energy fJ, region index).
    sram_energy: Vec<(f64, f64, u32)>,
    regions: Vec<String>,
    freq_hz: f64,
}

impl PowerAnalyzer {
    /// Compiles the power model.
    pub fn new(netlist: &Netlist, lib: &CellLibrary, freq_hz: f64) -> Self {
        let fanout = netlist.fanout();
        let n_regions = netlist.regions().len();
        let mut region_leakage_nw = vec![0.0; n_regions];
        let mut region_clock_fj = vec![0.0; n_regions];

        let mut gate_energy = Vec::with_capacity(netlist.gates().len());
        for g in netlist.gates() {
            let kind = g.kind();
            let region = g.region();
            let out = g.output();
            let energy = lib.switching_energy_fj(kind, fanout[out.index()] as usize);
            gate_energy.push((out.index() as u32, energy, region));
            region_leakage_nw[region as usize] += lib.cell(kind).leakage_nw;
            if matches!(g, Gate::Dff { .. }) {
                region_clock_fj[region as usize] += lib.clock_energy_per_dff_fj();
            }
        }

        let mut sram_energy = Vec::with_capacity(netlist.srams().len());
        for s in netlist.srams() {
            // Access energy grows with bitline/wordline length: scale by
            // sqrt(depth) relative to a 4096-entry reference array, floored
            // so tiny queue arrays still cost something.
            let depth_scale = ((s.depth as f64) / 4096.0).sqrt().max(0.05);
            let read = lib.sram_read_energy_per_bit_fj * f64::from(s.width) * depth_scale;
            let write = lib.sram_write_energy_per_bit_fj * f64::from(s.width) * depth_scale;
            sram_energy.push((read, write, s.region));
            region_leakage_nw[s.region as usize] +=
                lib.sram_leakage_per_bit_nw * s.capacity_bits() as f64;
        }

        PowerAnalyzer {
            gate_energy,
            region_leakage_nw,
            region_clock_fj,
            sram_energy,
            regions: netlist.regions().to_vec(),
            freq_hz,
        }
    }

    /// The clock frequency the model was compiled for, in Hz.
    pub fn freq_hz(&self) -> f64 {
        self.freq_hz
    }

    /// Computes average power over the activity window.
    ///
    /// # Panics
    ///
    /// Panics if the activity report comes from a different netlist (shape
    /// mismatch) or covers zero cycles.
    pub fn analyze(&self, activity: &ActivityReport) -> PowerReport {
        assert!(activity.cycles() > 0, "activity window is empty");
        assert_eq!(
            self.sram_energy.len(),
            activity.sram_accesses().len(),
            "activity report is from a different netlist"
        );
        let cycles = activity.cycles() as f64;
        let window_s = cycles / self.freq_hz;

        let mut region_energy_fj = vec![0.0f64; self.regions.len()];
        let toggles = activity.toggles();
        for &(net, energy, region) in &self.gate_energy {
            let t = toggles[net as usize] as f64;
            region_energy_fj[region as usize] += t * energy;
        }

        let mut region_clock_fj_total = vec![0.0f64; self.regions.len()];
        for (r, e) in self.region_clock_fj.iter().enumerate() {
            region_clock_fj_total[r] = e * cycles;
        }

        let mut region_sram_fj = vec![0.0f64; self.regions.len()];
        for (&(read_fj, write_fj, region), &(reads, writes)) in
            self.sram_energy.iter().zip(activity.sram_accesses())
        {
            region_sram_fj[region as usize] += reads as f64 * read_fj + writes as f64 * write_fj;
        }

        let mut by_region = BTreeMap::new();
        for (r, name) in self.regions.iter().enumerate() {
            // fJ over the window → mW: 1 fJ = 1e-15 J; mW = 1e3 · J/s.
            let to_mw = 1e-15 / window_s * 1e3;
            let b = PowerBreakdown {
                switching_mw: region_energy_fj[r] * to_mw,
                clock_mw: region_clock_fj_total[r] * to_mw,
                sram_mw: region_sram_fj[r] * to_mw,
                leakage_mw: self.region_leakage_nw[r] * 1e-6,
            };
            if b.total_mw() > 0.0 {
                by_region.insert(name.clone(), b);
            }
        }

        PowerReport {
            cycles: activity.cycles(),
            by_region,
        }
    }

    /// Computes average power for a batch of activity windows — one
    /// report per window, in order.
    ///
    /// This is the lane-aware entry point for the bit-parallel replay
    /// path: [`strober_gatesim::BatchSim::activities`] yields one
    /// [`ActivityReport`] per bit-lane (each shaped exactly like a scalar
    /// report), and this method prices them against the one compiled
    /// energy model. Because lane activity counts are exact integers, the
    /// per-lane reports are bit-identical to analyzing each lane's scalar
    /// replay separately.
    ///
    /// # Panics
    ///
    /// Panics under the same conditions as [`PowerAnalyzer::analyze`],
    /// for any window in the batch.
    pub fn analyze_all(&self, activities: &[ActivityReport]) -> Vec<PowerReport> {
        activities.iter().map(|a| self.analyze(a)).collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use strober_dsl::Ctx;
    use strober_gatesim::GateSim;
    use strober_rtl::Width;
    use strober_synth::{synthesize, SynthOptions};

    fn w(bits: u32) -> Width {
        Width::new(bits).unwrap()
    }

    fn counter_report(enabled: bool, cycles: u64) -> PowerReport {
        let ctx = Ctx::new("counter");
        let en = ctx.input("en", Width::BIT);
        let count = ctx.scope("core", |c| c.reg("count", w(16), 0));
        count.set_en(&count.out().add_lit(1), &en);
        ctx.output("value", &count.out());
        let synth = synthesize(&ctx.finish().unwrap(), &SynthOptions::default()).unwrap();
        let mut sim = GateSim::new(&synth.netlist).unwrap();
        sim.poke_port("en", u64::from(enabled)).unwrap();
        sim.step_n(cycles);
        let lib = CellLibrary::generic_45nm();
        PowerAnalyzer::new(&synth.netlist, &lib, 1.0e9).analyze(&sim.activity())
    }

    #[test]
    fn active_counter_burns_more_than_idle() {
        let active = counter_report(true, 512);
        let idle = counter_report(false, 512);
        assert!(active.total_mw() > idle.total_mw());
        // Idle still pays clock + leakage.
        assert!(idle.total_mw() > 0.0);
        assert!(idle.breakdown().clock_mw > 0.0);
        assert!(idle.breakdown().leakage_mw > 0.0);
        assert_eq!(idle.breakdown().switching_mw, 0.0);
    }

    #[test]
    fn power_attributed_to_the_right_region() {
        let report = counter_report(true, 256);
        assert!(report.region_mw("core") > 0.0);
        assert_eq!(report.region_mw("nonexistent"), 0.0);
    }

    #[test]
    fn average_power_is_window_invariant_for_steady_activity() {
        // A free-running counter has steady activity, so power over 256
        // cycles ≈ power over 1024 cycles.
        let a = counter_report(true, 256);
        let b = counter_report(true, 1024);
        let rel = (a.total_mw() - b.total_mw()).abs() / b.total_mw();
        assert!(rel < 0.05, "power not window-invariant: {rel}");
    }

    #[test]
    fn sram_power_counts_accesses() {
        let ctx = Ctx::new("ram");
        let m = ctx.scope("dcache", |c| c.mem("data", w(32), 64));
        let addr = ctx.input("addr", w(6));
        let data = ctx.input("data", w(32));
        let we = ctx.input("we", Width::BIT);
        ctx.output("q", &m.read(&addr));
        m.write(&addr, &data, &we);
        let synth = synthesize(&ctx.finish().unwrap(), &SynthOptions::default()).unwrap();
        let lib = CellLibrary::generic_45nm();
        let analyzer = PowerAnalyzer::new(&synth.netlist, &lib, 1.0e9);

        let mut busy = GateSim::new(&synth.netlist).unwrap();
        busy.poke_port("we", 1).unwrap();
        for i in 0..256u64 {
            busy.poke_port("addr", i % 64).unwrap();
            busy.poke_port("data", i).unwrap();
            busy.step();
        }
        let busy_power = analyzer.analyze(&busy.activity());

        let mut quiet = GateSim::new(&synth.netlist).unwrap();
        quiet.poke_port("we", 0).unwrap();
        quiet.poke_port("addr", 1).unwrap();
        quiet.step_n(256);
        let quiet_power = analyzer.analyze(&quiet.activity());

        assert!(busy_power.breakdown().sram_mw > 10.0 * quiet_power.breakdown().sram_mw);
        assert!(busy_power.region_mw("dcache") > quiet_power.region_mw("dcache"));
    }

    #[test]
    fn batched_lanes_price_identically_to_scalar_replays() {
        use strober_gatesim::BatchSim;
        let ctx = Ctx::new("counter");
        let en = ctx.input("en", Width::BIT);
        let count = ctx.scope("core", |c| c.reg("count", w(16), 0));
        count.set_en(&count.out().add_lit(1), &en);
        ctx.output("value", &count.out());
        let synth = synthesize(&ctx.finish().unwrap(), &SynthOptions::default()).unwrap();
        let lib = CellLibrary::generic_45nm();
        let analyzer = PowerAnalyzer::new(&synth.netlist, &lib, 1.0e9);

        // Lane 0 active, lane 1 idle; expect exact equality with two
        // scalar runs because activity counts are integers.
        let mut batch = BatchSim::with_lanes(&synth.netlist, 2).unwrap();
        batch.poke_port_lanes("en", &[1, 0]).unwrap();
        batch.step_n(512);
        let reports = analyzer.analyze_all(&batch.activities());

        for (lane, enabled) in [true, false].into_iter().enumerate() {
            let mut sim = GateSim::new(&synth.netlist).unwrap();
            sim.poke_port("en", u64::from(enabled)).unwrap();
            sim.step_n(512);
            assert_eq!(reports[lane], analyzer.analyze(&sim.activity()));
        }
        assert!(reports[0].total_mw() > reports[1].total_mw());
    }

    #[test]
    fn display_renders_a_table() {
        let report = counter_report(true, 64);
        let text = report.to_string();
        assert!(text.contains("TOTAL"));
        assert!(text.contains("component"));
    }

    #[test]
    #[should_panic(expected = "empty")]
    fn empty_window_rejected() {
        let ctx = Ctx::new("t");
        let r = ctx.reg("r", w(4), 0);
        r.set(&r.out());
        ctx.output("o", &r.out());
        let synth = synthesize(&ctx.finish().unwrap(), &SynthOptions::default()).unwrap();
        let sim = GateSim::new(&synth.netlist).unwrap();
        let lib = CellLibrary::generic_45nm();
        let _ = PowerAnalyzer::new(&synth.netlist, &lib, 1.0e9).analyze(&sim.activity());
    }
}

//! The flight recorder: a fixed-size ring of periodic registry
//! snapshots.
//!
//! Long-lived processes (the estimation server in particular) want a
//! recent history of every metric — enough to compute rates and deltas
//! for a live view — without unbounded growth. A [`FlightRecorder`]
//! keeps the last `capacity` [`FlightFrame`]s; pushing beyond capacity
//! evicts the oldest frame, so memory is bounded by
//! `capacity × live series count` regardless of uptime.
//!
//! [`start_flight_recorder`] spawns a background sampler thread that
//! records a frame every `interval_ms`; drop (or [`FlightHandle::stop`])
//! joins it. Recording reads the registry via [`crate::snapshot`], which
//! works whether or not the recorder is enabled — frames captured while
//! disabled are simply empty.

use crate::metrics::MetricsSnapshot;
use crate::record::now_us;
use std::collections::VecDeque;
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::{Arc, Mutex};
use std::time::Duration;

/// Sampler configuration for [`start_flight_recorder`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct FlightConfig {
    /// Milliseconds between snapshots (clamped to at least 10).
    pub interval_ms: u64,
    /// Ring capacity in frames (clamped to at least 2, so a rate is
    /// always computable once the ring is warm).
    pub capacity: usize,
}

impl Default for FlightConfig {
    /// One frame per second, ten minutes of history.
    fn default() -> FlightConfig {
        FlightConfig {
            interval_ms: 1_000,
            capacity: 600,
        }
    }
}

/// One timestamped registry snapshot in the ring.
#[derive(Debug, Clone, PartialEq, serde::Serialize, serde::Deserialize)]
pub struct FlightFrame {
    /// Milliseconds since the recorder epoch.
    pub at_ms: u64,
    /// The registry at that instant.
    pub metrics: MetricsSnapshot,
}

/// A bounded ring of periodic [`FlightFrame`]s.
#[derive(Debug)]
pub struct FlightRecorder {
    capacity: usize,
    ring: Mutex<VecDeque<FlightFrame>>,
}

impl FlightRecorder {
    /// An empty ring holding at most `capacity` frames (min 2).
    pub fn new(capacity: usize) -> FlightRecorder {
        let capacity = capacity.max(2);
        FlightRecorder {
            capacity,
            ring: Mutex::new(VecDeque::with_capacity(capacity)),
        }
    }

    /// The configured frame capacity.
    pub fn capacity(&self) -> usize {
        self.capacity
    }

    /// The number of frames currently held (≤ capacity).
    pub fn len(&self) -> usize {
        self.ring.lock().expect("flight ring lock").len()
    }

    /// Whether no frames have been recorded yet.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Records a snapshot of the registry now.
    pub fn record_now(&self) {
        self.record_at(now_us() / 1_000);
    }

    /// Records a snapshot of the registry stamped `at_ms` (for
    /// deterministic tests; [`FlightRecorder::record_now`] otherwise).
    pub fn record_at(&self, at_ms: u64) {
        let frame = FlightFrame {
            at_ms,
            metrics: crate::metrics::snapshot(),
        };
        let mut ring = self.ring.lock().expect("flight ring lock");
        if ring.len() == self.capacity {
            ring.pop_front();
        }
        ring.push_back(frame);
    }

    /// A copy of the held frames, oldest first.
    pub fn frames(&self) -> Vec<FlightFrame> {
        self.ring
            .lock()
            .expect("flight ring lock")
            .iter()
            .cloned()
            .collect()
    }

    /// The per-second rate series of a counter: one `(at_ms, per_sec)`
    /// point per consecutive frame pair in which the counter appears.
    /// Counter resets (a decrease between frames) yield a 0 point rather
    /// than a negative rate.
    pub fn counter_rates(&self, name: &str) -> Vec<(u64, f64)> {
        let ring = self.ring.lock().expect("flight ring lock");
        let mut out = Vec::new();
        for pair in ring.iter().collect::<Vec<_>>().windows(2) {
            let (prev, cur) = (pair[0], pair[1]);
            let (Some(a), Some(b)) = (prev.metrics.counter(name), cur.metrics.counter(name)) else {
                continue;
            };
            let dt_ms = cur.at_ms.saturating_sub(prev.at_ms);
            if dt_ms == 0 {
                continue;
            }
            let delta = b.saturating_sub(a) as f64;
            out.push((cur.at_ms, delta * 1_000.0 / dt_ms as f64));
        }
        out
    }

    /// The value series of a gauge: one `(at_ms, value)` point per frame
    /// in which the gauge appears.
    pub fn gauge_series(&self, name: &str) -> Vec<(u64, f64)> {
        self.ring
            .lock()
            .expect("flight ring lock")
            .iter()
            .filter_map(|f| f.metrics.gauge(name).map(|v| (f.at_ms, v)))
            .collect()
    }
}

/// A running background sampler; joins its thread on drop.
#[derive(Debug)]
pub struct FlightHandle {
    recorder: Arc<FlightRecorder>,
    stop: Arc<AtomicBool>,
    join: Option<std::thread::JoinHandle<()>>,
}

impl FlightHandle {
    /// The ring the sampler is filling.
    pub fn recorder(&self) -> &Arc<FlightRecorder> {
        &self.recorder
    }

    /// Stops the sampler, joins it, and returns the captured frames.
    pub fn stop(mut self) -> Vec<FlightFrame> {
        self.shutdown();
        self.recorder.frames()
    }

    fn shutdown(&mut self) {
        self.stop.store(true, Ordering::Relaxed);
        if let Some(join) = self.join.take() {
            let _ = join.join();
        }
    }
}

impl Drop for FlightHandle {
    fn drop(&mut self) {
        self.shutdown();
    }
}

/// Spawns the background sampler thread (named `strober-flight`)
/// recording one frame every `config.interval_ms` into a fresh ring of
/// `config.capacity` frames. An initial frame is recorded immediately so
/// the ring is never empty once this returns.
pub fn start_flight_recorder(config: FlightConfig) -> FlightHandle {
    let recorder = Arc::new(FlightRecorder::new(config.capacity));
    let stop = Arc::new(AtomicBool::new(false));
    recorder.record_now();
    let join = {
        let recorder = Arc::clone(&recorder);
        let stop = Arc::clone(&stop);
        let interval = Duration::from_millis(config.interval_ms.max(10));
        std::thread::Builder::new()
            .name("strober-flight".to_owned())
            .spawn(move || {
                let tick = Duration::from_millis(25).min(interval);
                let mut since_frame = Duration::ZERO;
                while !stop.load(Ordering::Relaxed) {
                    std::thread::sleep(tick);
                    since_frame += tick;
                    if since_frame >= interval {
                        since_frame = Duration::ZERO;
                        recorder.record_now();
                    }
                }
            })
            .expect("spawn flight sampler")
    };
    FlightHandle {
        recorder,
        stop,
        join: Some(join),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::record::testutil;
    use crate::{counter_add, disable, enable, gauge_set, reset};

    #[test]
    fn ring_is_bounded_by_capacity() {
        let _guard = testutil::exclusive();
        reset();
        let rec = FlightRecorder::new(3);
        assert!(rec.is_empty());
        for i in 0..10 {
            rec.record_at(i * 100);
        }
        assert_eq!(rec.len(), 3);
        assert_eq!(rec.capacity(), 3);
        let frames = rec.frames();
        // Oldest frames were evicted; the last three survive in order.
        let stamps: Vec<u64> = frames.iter().map(|f| f.at_ms).collect();
        assert_eq!(stamps, vec![700, 800, 900]);
    }

    #[test]
    fn counter_rates_and_gauge_series_come_from_frame_deltas() {
        let _guard = testutil::exclusive();
        reset();
        enable();
        let rec = FlightRecorder::new(8);
        counter_add("strober.test.flight", 10);
        gauge_set("strober.test.depth", 2.0);
        rec.record_at(1_000);
        counter_add("strober.test.flight", 30);
        gauge_set("strober.test.depth", 5.0);
        rec.record_at(2_000);
        counter_add("strober.test.flight", 5);
        rec.record_at(4_000);
        disable();
        // 30 in 1 s, then 5 in 2 s.
        assert_eq!(
            rec.counter_rates("strober.test.flight"),
            vec![(2_000, 30.0), (4_000, 2.5)]
        );
        assert_eq!(
            rec.gauge_series("strober.test.depth"),
            vec![(1_000, 2.0), (2_000, 5.0), (4_000, 5.0)]
        );
        assert!(rec.counter_rates("strober.test.absent").is_empty());
    }

    #[test]
    fn sampler_thread_records_and_stops() {
        let _guard = testutil::exclusive();
        reset();
        enable();
        counter_add("strober.test.sampled", 1);
        let handle = start_flight_recorder(FlightConfig {
            interval_ms: 10,
            capacity: 4,
        });
        let deadline = std::time::Instant::now() + Duration::from_secs(5);
        while handle.recorder().len() < 2 && std::time::Instant::now() < deadline {
            std::thread::sleep(Duration::from_millis(5));
        }
        let frames = handle.stop();
        disable();
        assert!(
            frames.len() >= 2,
            "sampler captured {} frames",
            frames.len()
        );
        assert!(frames.len() <= 4, "ring respected capacity");
        assert_eq!(frames[0].metrics.counter("strober.test.sampled"), Some(1));
    }
}

//! `strober-probe` — the in-tree observability layer: hierarchical timed
//! spans, named metrics and leveled logging, with zero external
//! dependencies (only the vendored serde stack, for snapshot and trace
//! serialization).
//!
//! # Design
//!
//! Everything funnels through one process-global recorder that is **off by
//! default**. Every instrumentation call starts with a single relaxed
//! atomic load; when the recorder is disabled that load is the entire
//! cost, so library code can be instrumented unconditionally — hot loops
//! included — without a measurable penalty (see the
//! `probe_overhead` check in `strober-bench`).
//!
//! Three primitive kinds:
//!
//! * **Spans** ([`span`]) — RAII-timed regions forming a per-thread tree
//!   (nesting depth is tracked per thread, so worker threads show up as
//!   separate tracks). Exported as chrome://tracing JSON via
//!   [`chrome_trace_json`], viewable in Perfetto.
//! * **Metrics** ([`counter_add`], [`gauge_set`], [`histogram_record`]) —
//!   named by the `strober.<crate>.<name>` convention, snapshotted as a
//!   serializable [`MetricsSnapshot`] with a human-readable table form.
//!   Dimensional series carry a bounded [`Labels`] set
//!   (`design`/`job`/`phase`/`provenance`/`worker`) encoded into the
//!   series key; [`prometheus_text`] renders any snapshot as Prometheus
//!   text exposition, and a [`FlightRecorder`] ring keeps a bounded
//!   history of periodic snapshots for rate/delta time series.
//! * **Logs** ([`error!`], [`warn!`], [`info!`], [`debug!`], [`trace!`])
//!   — leveled stderr diagnostics, gated on a global [`Level`]
//!   (default [`Level::Info`]); logging works even when the recorder is
//!   disabled, since it replaces ad-hoc `eprintln!` diagnostics.
//!
//! # Examples
//!
//! ```
//! strober_probe::reset();
//! strober_probe::enable();
//! {
//!     let _outer = strober_probe::span("strober.demo.outer");
//!     let _inner = strober_probe::span("strober.demo.inner");
//!     strober_probe::counter_add("strober.demo.widgets", 3);
//! }
//! let events = strober_probe::take_events();
//! assert_eq!(events.len(), 2);
//! let trace = strober_probe::chrome_trace_json(&events);
//! assert!(trace.contains("traceEvents"));
//! assert_eq!(
//!     strober_probe::snapshot().counter("strober.demo.widgets"),
//!     Some(3)
//! );
//! strober_probe::disable();
//! ```

mod chrome;
mod flight;
mod labels;
mod log;
mod metrics;
mod profile;
mod prometheus;
mod record;

pub use chrome::{chrome_trace_json, chrome_trace_json_with_threads, parse_chrome_trace};
pub use flight::{start_flight_recorder, FlightConfig, FlightFrame, FlightHandle, FlightRecorder};
pub use labels::{
    counter_add_labeled, gauge_set_labeled, histogram_record_labeled, parse_series, Labels,
};
pub use log::{log_enabled, log_message, set_log_level, Level, LevelParseError};
pub use metrics::{
    counter_add, counter_set, gauge_set, histogram_record, histogram_with_bounds,
    remove_series_with_label, snapshot, CounterEntry, GaugeEntry, HistogramEntry, MetricsSnapshot,
};
pub use profile::{profile, render_profile, SpanStat};
pub use prometheus::{prometheus_text, PROMETHEUS_CONTENT_TYPE};
pub use record::{
    disable, enable, enabled, events, now_ms, reset, span, take_events, thread_names, Span,
    SpanEvent,
};

/// Current level of the global log filter.
pub fn log_level() -> Level {
    log::log_level()
}

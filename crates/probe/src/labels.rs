//! Dimensional metrics: a small, bounded label set layered on the flat
//! registry.
//!
//! A [`Labels`] value carries at most one value for each of the six
//! supported label keys — `design`, `engine`, `job`, `phase`,
//! `provenance`, `worker` — so series cardinality stays bounded by
//! construction: there
//! is no free-form key API. Labeled series are stored in the same
//! registry as unlabeled ones, under a canonical encoded name of the
//! Prometheus form `name{key="value",...}` with keys sorted; everything
//! built on the registry (snapshots, the wire protocol, manifests, the
//! table renderer) therefore handles labeled series without change.
//!
//! Like every probe entry point, the labeled mutators are gated on the
//! recorder's enabled flag: one relaxed atomic load is the entire cost
//! when disabled — no label rendering, no allocation.

use crate::record::enabled;

/// The fixed label keys, in canonical (sorted) order.
const LABEL_KEYS: [&str; 6] = ["design", "engine", "job", "phase", "provenance", "worker"];

/// A bounded set of label key/value pairs for dimensional metrics.
///
/// Built with chained setters; setting the same key twice keeps the last
/// value. The encoded form is canonical (keys sorted), so two `Labels`
/// with the same pairs always address the same series.
///
/// ```
/// use strober_probe::Labels;
/// let l = Labels::new().job(7).design("rok-tiny").worker("1");
/// assert_eq!(l.render(), r#"{design="rok-tiny",job="7",worker="1"}"#);
/// ```
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct Labels {
    /// Values for [`LABEL_KEYS`], index-aligned; `None` = unset.
    values: [Option<String>; 6],
}

impl Labels {
    /// An empty label set.
    #[must_use]
    pub fn new() -> Labels {
        Labels::default()
    }

    fn set(mut self, key: &str, value: String) -> Labels {
        let idx = LABEL_KEYS
            .iter()
            .position(|&k| k == key)
            .expect("label key is one of the fixed set");
        self.values[idx] = Some(value);
        self
    }

    /// Sets the `design` label (the design under estimation).
    #[must_use]
    pub fn design(self, design: &str) -> Labels {
        self.set("design", design.to_owned())
    }

    /// Sets the `engine` label (the hub settle engine, e.g. `tape`,
    /// `tape-partitioned`, `tape-jit`).
    #[must_use]
    pub fn engine(self, engine: &str) -> Labels {
        self.set("engine", engine.to_owned())
    }

    /// Sets the `job` label (a server job id).
    #[must_use]
    pub fn job(self, job: u64) -> Labels {
        self.set("job", job.to_string())
    }

    /// Sets the `phase` label (e.g. `sim`, `replay`).
    #[must_use]
    pub fn phase(self, phase: &str) -> Labels {
        self.set("phase", phase.to_owned())
    }

    /// Sets the `provenance` label (`warm`, `store` or `cold`).
    #[must_use]
    pub fn provenance(self, provenance: &str) -> Labels {
        self.set("provenance", provenance.to_owned())
    }

    /// Sets the `worker` label (a server worker index).
    #[must_use]
    pub fn worker(self, worker: &str) -> Labels {
        self.set("worker", worker.to_owned())
    }

    /// Whether no labels are set.
    pub fn is_empty(&self) -> bool {
        self.values.iter().all(Option::is_none)
    }

    /// The set pairs in canonical key order.
    pub fn pairs(&self) -> Vec<(&'static str, &str)> {
        LABEL_KEYS
            .iter()
            .zip(&self.values)
            .filter_map(|(&k, v)| v.as_deref().map(|v| (k, v)))
            .collect()
    }

    /// The canonical `{key="value",...}` encoding (empty string when no
    /// labels are set). Values are escaped Prometheus-style (`\\`, `\"`,
    /// `\n`).
    #[must_use]
    pub fn render(&self) -> String {
        let pairs = self.pairs();
        if pairs.is_empty() {
            return String::new();
        }
        let mut out = String::from("{");
        for (i, (k, v)) in pairs.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            out.push_str(k);
            out.push_str("=\"");
            out.push_str(&escape_label_value(v));
            out.push('"');
        }
        out.push('}');
        out
    }

    /// The full registry key for a metric `name` under these labels.
    #[must_use]
    pub fn decorate(&self, name: &str) -> String {
        let mut out = String::with_capacity(name.len() + 16);
        out.push_str(name);
        out.push_str(&self.render());
        out
    }
}

/// Escapes a label value for the `k="v"` encoding.
fn escape_label_value(value: &str) -> String {
    let mut out = String::with_capacity(value.len());
    for c in value.chars() {
        match c {
            '\\' => out.push_str("\\\\"),
            '"' => out.push_str("\\\""),
            '\n' => out.push_str("\\n"),
            other => out.push(other),
        }
    }
    out
}

/// Splits an encoded series name into its base name and label pairs.
///
/// Unlabeled names come back with an empty pair list. The inverse of
/// [`Labels::decorate`] for names produced by this crate; foreign names
/// with malformed label blocks are returned whole with no pairs.
#[must_use]
pub fn parse_series(name: &str) -> (&str, Vec<(String, String)>) {
    let Some(open) = name.find('{') else {
        return (name, Vec::new());
    };
    if !name.ends_with('}') {
        return (name, Vec::new());
    }
    let base = &name[..open];
    let body = &name[open + 1..name.len() - 1];
    let mut pairs = Vec::new();
    let mut rest = body;
    while !rest.is_empty() {
        let Some(eq) = rest.find("=\"") else {
            return (name, Vec::new());
        };
        let key = &rest[..eq];
        let mut value = String::new();
        let mut chars = rest[eq + 2..].char_indices();
        let mut end = None;
        while let Some((i, c)) = chars.next() {
            match c {
                '\\' => match chars.next() {
                    Some((_, 'n')) => value.push('\n'),
                    Some((_, escaped)) => value.push(escaped),
                    None => return (name, Vec::new()),
                },
                '"' => {
                    end = Some(eq + 2 + i);
                    break;
                }
                other => value.push(other),
            }
        }
        let Some(end) = end else {
            return (name, Vec::new());
        };
        pairs.push((key.to_owned(), value));
        rest = &rest[end + 1..];
        if let Some(stripped) = rest.strip_prefix(',') {
            rest = stripped;
        } else if !rest.is_empty() {
            return (name, Vec::new());
        }
    }
    (base, pairs)
}

/// Adds `delta` to a labeled counter ([`crate::counter_add`] with a
/// dimensional series key).
#[inline]
pub fn counter_add_labeled(name: &str, labels: &Labels, delta: u64) {
    if !enabled() {
        return;
    }
    crate::metrics::counter_add(&labels.decorate(name), delta);
}

/// Sets a labeled gauge ([`crate::gauge_set`] with a dimensional series
/// key).
#[inline]
pub fn gauge_set_labeled(name: &str, labels: &Labels, value: f64) {
    if !enabled() {
        return;
    }
    crate::metrics::gauge_set(&labels.decorate(name), value);
}

/// Records into a labeled histogram ([`crate::histogram_record`] with a
/// dimensional series key).
#[inline]
pub fn histogram_record_labeled(name: &str, labels: &Labels, value: f64) {
    if !enabled() {
        return;
    }
    crate::metrics::histogram_record(&labels.decorate(name), value);
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::record::testutil;
    use crate::{disable, enable, reset, snapshot};

    #[test]
    fn labels_render_sorted_and_canonical() {
        let a = Labels::new()
            .worker("2")
            .job(9)
            .engine("tape-jit")
            .design("rok");
        let b = Labels::new()
            .design("rok")
            .engine("tape-jit")
            .job(9)
            .worker("2");
        assert_eq!(
            a.render(),
            r#"{design="rok",engine="tape-jit",job="9",worker="2"}"#
        );
        assert_eq!(a, b);
        assert!(Labels::new().is_empty());
        assert_eq!(Labels::new().render(), "");
        assert_eq!(Labels::new().decorate("x"), "x");
    }

    #[test]
    fn label_values_escape_and_parse_back() {
        let l = Labels::new().design("a\"b\\c\nd");
        let key = l.decorate("strober.test.series");
        let (base, pairs) = parse_series(&key);
        assert_eq!(base, "strober.test.series");
        assert_eq!(pairs, vec![("design".to_owned(), "a\"b\\c\nd".to_owned())]);
    }

    #[test]
    fn parse_series_handles_plain_and_malformed_names() {
        assert_eq!(parse_series("plain"), ("plain", Vec::new()));
        let (base, pairs) = parse_series(r#"n{a="1",b="2"}"#);
        assert_eq!(base, "n");
        assert_eq!(
            pairs,
            vec![
                ("a".to_owned(), "1".to_owned()),
                ("b".to_owned(), "2".to_owned())
            ]
        );
        // Malformed blocks come back whole, unparsed.
        assert_eq!(parse_series("n{a=1}").1, Vec::new());
        assert_eq!(parse_series("n{a=\"1\"").1, Vec::new());
    }

    #[test]
    fn labeled_series_land_in_the_registry() {
        let _guard = testutil::exclusive();
        reset();
        enable();
        let l = Labels::new().job(3).phase("sim");
        counter_add_labeled("strober.test.labeled", &l, 2);
        counter_add_labeled("strober.test.labeled", &l, 1);
        gauge_set_labeled("strober.test.rate", &l, 4.5);
        histogram_record_labeled("strober.test.lat", &l, 7.0);
        let snap = snapshot();
        disable();
        assert_eq!(
            snap.counter(r#"strober.test.labeled{job="3",phase="sim"}"#),
            Some(3)
        );
        assert_eq!(
            snap.gauge(r#"strober.test.rate{job="3",phase="sim"}"#),
            Some(4.5)
        );
        assert!(snap
            .histogram(r#"strober.test.lat{job="3",phase="sim"}"#)
            .is_some());
    }

    #[test]
    fn disabled_labeled_calls_do_not_register() {
        let _guard = testutil::exclusive();
        reset();
        disable();
        let l = Labels::new().job(1);
        counter_add_labeled("strober.test.off", &l, 1);
        gauge_set_labeled("strober.test.off_g", &l, 1.0);
        histogram_record_labeled("strober.test.off_h", &l, 1.0);
        assert!(snapshot().is_empty());
    }
}

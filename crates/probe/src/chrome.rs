//! chrome://tracing ("Trace Event Format") export and import.
//!
//! Spans are rendered as complete (`"ph": "X"`) events with microsecond
//! timestamps, one track per recorder thread id. The resulting JSON opens
//! directly in Perfetto (<https://ui.perfetto.dev>) or `about:tracing`.

use crate::record::SpanEvent;
use serde_json::{json, Map, Value};

/// Renders span events as a chrome-trace JSON document, labeling each
/// thread track with the OS thread name the recorder captured (see
/// [`crate::thread_names`]). Use [`chrome_trace_json_with_threads`] to
/// supply names explicitly (e.g. for parsed foreign traces).
pub fn chrome_trace_json(events: &[SpanEvent]) -> String {
    chrome_trace_json_with_threads(events, &crate::record::thread_names())
}

/// Renders span events as a chrome-trace JSON document with explicit
/// `(tid, name)` thread labels. Each tid that both appears in `events`
/// and has a name gets a `"ph": "M"` `thread_name` metadata event, so
/// concurrent worker threads render as separate, labeled rows; a
/// `process_name` metadata event names the process track. Metadata
/// phases are ignored by [`parse_chrome_trace`], so round-tripping stays
/// lossless.
pub fn chrome_trace_json_with_threads(events: &[SpanEvent], threads: &[(u64, String)]) -> String {
    let metadata = |name: &str, tid: Option<u64>, label: &str| {
        let mut args = Map::new();
        args.insert("name".to_owned(), json!(label));
        let mut event = Map::new();
        event.insert("name".to_owned(), json!(name));
        event.insert("ph".to_owned(), json!("M"));
        event.insert("pid".to_owned(), json!(1u64));
        if let Some(tid) = tid {
            event.insert("tid".to_owned(), json!(tid));
        }
        event.insert("args".to_owned(), Value::Object(args));
        Value::Object(event)
    };
    let mut trace_events: Vec<Value> = Vec::with_capacity(events.len() + threads.len() + 1);
    trace_events.push(metadata("process_name", None, "strober"));
    for (tid, name) in threads {
        if events.iter().any(|e| e.tid == *tid) {
            trace_events.push(metadata("thread_name", Some(*tid), name));
        }
    }
    trace_events.extend(events.iter().map(|e| {
        let mut args = Map::new();
        args.insert("seq".to_owned(), json!(e.seq));
        args.insert("depth".to_owned(), json!(u64::from(e.depth)));
        let mut event = Map::new();
        event.insert("name".to_owned(), json!(e.name.as_str()));
        event.insert("cat".to_owned(), json!("strober"));
        event.insert("ph".to_owned(), json!("X"));
        event.insert("ts".to_owned(), json!(e.start_us));
        event.insert("dur".to_owned(), json!(e.dur_us));
        event.insert("pid".to_owned(), json!(1u64));
        event.insert("tid".to_owned(), json!(e.tid));
        event.insert("args".to_owned(), Value::Object(args));
        Value::Object(event)
    }));
    let mut doc = Map::new();
    doc.insert("displayTimeUnit".to_owned(), json!("ms"));
    doc.insert("traceEvents".to_owned(), Value::Array(trace_events));
    serde_json::to_string_pretty(&Value::Object(doc)).expect("trace serialization is infallible")
}

/// Parses a chrome-trace JSON document back into span events.
///
/// Only complete (`"ph": "X"`) events are returned; other phases are
/// ignored, so traces written by other tools degrade gracefully.
///
/// # Errors
///
/// Returns the parser error for malformed JSON, or a synthesized error
/// when the document has no `traceEvents` array.
pub fn parse_chrome_trace(text: &str) -> Result<Vec<SpanEvent>, serde_json::Error> {
    let doc: Value = serde_json::from_str(text)?;
    let events = doc
        .object_get("traceEvents")
        .and_then(Value::as_array)
        .ok_or_else(|| serde_json::Error("trace document has no traceEvents array".to_owned()))?;
    let mut out = Vec::new();
    for event in events {
        if event.object_get("ph").and_then(Value::as_str) != Some("X") {
            continue;
        }
        let field_u64 = |key: &str| event.object_get(key).and_then(Value::as_u64).unwrap_or(0);
        let args = event.object_get("args");
        let arg_u64 = |key: &str| {
            args.and_then(|a| a.object_get(key))
                .and_then(Value::as_u64)
                .unwrap_or(0)
        };
        out.push(SpanEvent {
            name: event
                .object_get("name")
                .and_then(Value::as_str)
                .unwrap_or("")
                .to_owned(),
            tid: field_u64("tid"),
            depth: u32::try_from(arg_u64("depth")).unwrap_or(u32::MAX),
            seq: arg_u64("seq"),
            start_us: field_u64("ts"),
            dur_us: field_u64("dur"),
        });
    }
    Ok(out)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample_events() -> Vec<SpanEvent> {
        vec![
            SpanEvent {
                name: "strober.core.prepare".to_owned(),
                tid: 0,
                depth: 0,
                seq: 0,
                start_us: 10,
                dur_us: 500,
            },
            SpanEvent {
                name: "strober.fame.transform".to_owned(),
                tid: 0,
                depth: 1,
                seq: 1,
                start_us: 20,
                dur_us: 100,
            },
        ]
    }

    #[test]
    fn export_parses_back_losslessly() {
        let events = sample_events();
        let text = chrome_trace_json(&events);
        let back = parse_chrome_trace(&text).unwrap();
        assert_eq!(back, events);
    }

    #[test]
    fn export_has_the_expected_shape() {
        let text = chrome_trace_json(&sample_events());
        let doc: Value = serde_json::from_str(&text).unwrap();
        assert_eq!(
            doc.object_get("displayTimeUnit").and_then(Value::as_str),
            Some("ms")
        );
        let events = doc
            .object_get("traceEvents")
            .and_then(Value::as_array)
            .unwrap();
        let complete: Vec<&Value> = events
            .iter()
            .filter(|e| e.object_get("ph").and_then(Value::as_str) == Some("X"))
            .collect();
        assert_eq!(complete.len(), 2);
        for e in complete {
            assert!(e.object_get("ts").and_then(Value::as_u64).is_some());
            assert!(e.object_get("dur").and_then(Value::as_u64).is_some());
        }
        // The process track is always labeled.
        assert!(events.iter().any(|e| {
            e.object_get("ph").and_then(Value::as_str) == Some("M")
                && e.object_get("name").and_then(Value::as_str) == Some("process_name")
        }));
    }

    #[test]
    fn thread_name_metadata_labels_only_present_tids() {
        let threads = vec![
            (0, "strober-worker-0".to_owned()),
            (7, "strober-worker-7".to_owned()),
        ];
        let text = chrome_trace_json_with_threads(&sample_events(), &threads);
        let doc: Value = serde_json::from_str(&text).unwrap();
        let events = doc
            .object_get("traceEvents")
            .and_then(Value::as_array)
            .unwrap();
        let names: Vec<(u64, &str)> = events
            .iter()
            .filter(|e| e.object_get("name").and_then(Value::as_str) == Some("thread_name"))
            .map(|e| {
                (
                    e.object_get("tid").and_then(Value::as_u64).unwrap(),
                    e.object_get("args")
                        .and_then(|a| a.object_get("name"))
                        .and_then(Value::as_str)
                        .unwrap(),
                )
            })
            .collect();
        // tid 7 has no spans, so it gets no row label; tid 0 does.
        assert_eq!(names, vec![(0, "strober-worker-0")]);
        // Metadata events do not disturb the parsed span stream.
        let back = parse_chrome_trace(&text).unwrap();
        assert_eq!(back, sample_events());
    }

    #[test]
    fn foreign_phases_are_ignored() {
        let text = r#"{"traceEvents":[
            {"ph":"M","name":"process_name","pid":1},
            {"ph":"X","name":"kept","ts":1,"dur":2,"tid":3,"pid":1}
        ]}"#;
        let events = parse_chrome_trace(text).unwrap();
        assert_eq!(events.len(), 1);
        assert_eq!(events[0].name, "kept");
        assert_eq!(events[0].tid, 3);
    }

    #[test]
    fn malformed_documents_error() {
        assert!(parse_chrome_trace("not json").is_err());
        assert!(parse_chrome_trace("{\"no\": \"events\"}").is_err());
    }
}

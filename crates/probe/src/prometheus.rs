//! Prometheus text exposition (format version 0.0.4) for a
//! [`MetricsSnapshot`].
//!
//! Registry names (`strober.server.queue_depth`) are sanitized to the
//! Prometheus charset by mapping every character outside
//! `[a-zA-Z0-9_:]` to `_` (`strober_server_queue_depth`); the label
//! block produced by [`crate::Labels`] is already in exposition syntax
//! and passes through unchanged. Counters are suffixed `_total`;
//! histograms expand to cumulative `_bucket{le=...}` series plus `_sum`
//! and `_count`, merging the `le` label into any dimensional labels the
//! series carries.

use crate::labels::parse_series;
use crate::metrics::MetricsSnapshot;
use std::fmt::Write;

/// The `Content-Type` a scrape endpoint should serve this text under.
pub const PROMETHEUS_CONTENT_TYPE: &str = "text/plain; version=0.0.4; charset=utf-8";

/// Maps a registry base name to the Prometheus metric-name charset.
fn sanitize(name: &str) -> String {
    let mut out: String = name
        .chars()
        .map(|c| {
            if c.is_ascii_alphanumeric() || c == '_' || c == ':' {
                c
            } else {
                '_'
            }
        })
        .collect();
    if out.starts_with(|c: char| c.is_ascii_digit()) {
        out.insert(0, '_');
    }
    out
}

/// Renders a label pair list (optionally extended with `le`) as an
/// exposition label block, or "" when empty.
fn label_block(pairs: &[(String, String)], le: Option<&str>) -> String {
    if pairs.is_empty() && le.is_none() {
        return String::new();
    }
    let mut out = String::from("{");
    let mut first = true;
    for (k, v) in pairs {
        if !first {
            out.push(',');
        }
        first = false;
        let escaped = v
            .replace('\\', "\\\\")
            .replace('"', "\\\"")
            .replace('\n', "\\n");
        let _ = write!(out, "{k}=\"{escaped}\"");
    }
    if let Some(le) = le {
        if !first {
            out.push(',');
        }
        let _ = write!(out, "le=\"{le}\"");
    }
    out.push('}');
    out
}

/// Formats an f64 the exposition format accepts (`+Inf`/`-Inf`/`NaN`
/// spellings included).
fn fmt_f64(v: f64) -> String {
    if v.is_nan() {
        "NaN".to_owned()
    } else if v == f64::INFINITY {
        "+Inf".to_owned()
    } else if v == f64::NEG_INFINITY {
        "-Inf".to_owned()
    } else {
        format!("{v}")
    }
}

/// Renders the snapshot as Prometheus text exposition. Series sharing a
/// base name emit one `# TYPE` header covering all their label
/// combinations, as the format requires.
#[must_use]
pub fn prometheus_text(snap: &MetricsSnapshot) -> String {
    let mut out = String::new();
    let mut last_typed = String::new();
    let mut type_line = |out: &mut String, name: &str, kind: &str| {
        if last_typed != name {
            let _ = writeln!(out, "# TYPE {name} {kind}");
            last_typed = name.to_owned();
        }
    };

    for c in &snap.counters {
        let (base, pairs) = parse_series(&c.name);
        let name = format!("{}_total", sanitize(base));
        type_line(&mut out, &name, "counter");
        let _ = writeln!(out, "{name}{} {}", label_block(&pairs, None), c.value);
    }
    for g in &snap.gauges {
        let (base, pairs) = parse_series(&g.name);
        let name = sanitize(base);
        type_line(&mut out, &name, "gauge");
        let _ = writeln!(
            out,
            "{name}{} {}",
            label_block(&pairs, None),
            fmt_f64(g.value)
        );
    }
    for h in &snap.histograms {
        let (base, pairs) = parse_series(&h.name);
        let name = sanitize(base);
        type_line(&mut out, &name, "histogram");
        let mut cumulative = 0u64;
        for (bound, count) in h.bounds.iter().zip(&h.counts) {
            cumulative += count;
            let _ = writeln!(
                out,
                "{name}_bucket{} {cumulative}",
                label_block(&pairs, Some(&fmt_f64(*bound)))
            );
        }
        let _ = writeln!(
            out,
            "{name}_bucket{} {}",
            label_block(&pairs, Some("+Inf")),
            h.count
        );
        let _ = writeln!(
            out,
            "{name}_sum{} {}",
            label_block(&pairs, None),
            fmt_f64(h.sum)
        );
        let _ = writeln!(out, "{name}_count{} {}", label_block(&pairs, None), h.count);
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::record::testutil;
    use crate::{
        counter_add, counter_add_labeled, disable, enable, gauge_set, histogram_record,
        histogram_with_bounds, reset, snapshot, Labels,
    };

    #[test]
    fn renders_all_kinds_with_types_and_cumulative_buckets() {
        let _guard = testutil::exclusive();
        reset();
        enable();
        counter_add("strober.test.hits", 5);
        gauge_set("strober.test.depth", 3.0);
        histogram_with_bounds("strober.test.lat_ms", &[1.0, 10.0]);
        for v in [0.5, 5.0, 100.0] {
            histogram_record("strober.test.lat_ms", v);
        }
        let text = prometheus_text(&snapshot());
        disable();
        assert!(text.contains("# TYPE strober_test_hits_total counter"));
        assert!(text.contains("strober_test_hits_total 5"));
        assert!(text.contains("# TYPE strober_test_depth gauge"));
        assert!(text.contains("strober_test_depth 3"));
        assert!(text.contains("# TYPE strober_test_lat_ms histogram"));
        assert!(text.contains("strober_test_lat_ms_bucket{le=\"1\"} 1"));
        assert!(text.contains("strober_test_lat_ms_bucket{le=\"10\"} 2"));
        assert!(text.contains("strober_test_lat_ms_bucket{le=\"+Inf\"} 3"));
        assert!(text.contains("strober_test_lat_ms_sum 105.5"));
        assert!(text.contains("strober_test_lat_ms_count 3"));
    }

    #[test]
    fn labeled_series_share_one_type_header() {
        let _guard = testutil::exclusive();
        reset();
        enable();
        counter_add_labeled("strober.test.jobs", &Labels::new().job(1), 2);
        counter_add_labeled("strober.test.jobs", &Labels::new().job(2), 3);
        let text = prometheus_text(&snapshot());
        disable();
        assert_eq!(
            text.matches("# TYPE strober_test_jobs_total counter")
                .count(),
            1
        );
        assert!(text.contains("strober_test_jobs_total{job=\"1\"} 2"));
        assert!(text.contains("strober_test_jobs_total{job=\"2\"} 3"));
    }

    #[test]
    fn exposition_lines_are_well_formed() {
        let _guard = testutil::exclusive();
        reset();
        enable();
        counter_add("strober.test.a", 1);
        gauge_set("strober.test.b", 0.5);
        histogram_record("strober.test.c", 1.0);
        let text = prometheus_text(&snapshot());
        disable();
        for line in text.lines() {
            if line.starts_with('#') {
                assert!(line.starts_with("# TYPE "), "header: {line}");
                continue;
            }
            // Every sample line is `name[{labels}] value`.
            let (series, value) = line.rsplit_once(' ').expect("sample has a value");
            assert!(value.parse::<f64>().is_ok(), "numeric value: {line}");
            let name_end = series.find('{').unwrap_or(series.len());
            assert!(
                series[..name_end]
                    .chars()
                    .all(|c| c.is_ascii_alphanumeric() || c == '_' || c == ':'),
                "sanitized name: {line}"
            );
        }
    }
}

//! The global span recorder.
//!
//! A [`Span`] is an RAII guard: creating one notes the start time and the
//! current per-thread nesting depth, dropping it appends one completed
//! [`SpanEvent`] to the global event buffer. Threads are identified by a
//! small dense id assigned on first use, so worker threads appear as
//! separate tracks in the exported trace.

use std::borrow::Cow;
use std::cell::Cell;
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::{Mutex, OnceLock};
use std::time::Instant;

/// Whether the recorder captures spans and metrics. A single relaxed load
/// of this flag is the entire cost of every probe call when disabled.
static ENABLED: AtomicBool = AtomicBool::new(false);

/// Global begin-order sequence for span events.
static SEQ: AtomicU64 = AtomicU64::new(0);

/// Next dense thread id.
static NEXT_TID: AtomicU64 = AtomicU64::new(0);

/// The time origin all span timestamps are relative to.
static EPOCH: OnceLock<Instant> = OnceLock::new();

/// Completed span events, in completion order.
static EVENTS: Mutex<Vec<SpanEvent>> = Mutex::new(Vec::new());

/// OS thread name per dense recorder tid, captured when the tid is
/// assigned. Never cleared by [`reset`]: the threads are still alive and
/// their ids stay valid for the next export.
static THREAD_NAMES: Mutex<std::collections::BTreeMap<u64, String>> =
    Mutex::new(std::collections::BTreeMap::new());

thread_local! {
    static TID: u64 = {
        let tid = NEXT_TID.fetch_add(1, Ordering::Relaxed);
        let name = std::thread::current()
            .name()
            .map_or_else(|| format!("thread-{tid}"), str::to_owned);
        THREAD_NAMES
            .lock()
            .expect("probe thread names lock")
            .insert(tid, name);
        tid
    };
    static DEPTH: Cell<u32> = const { Cell::new(0) };
}

/// The `(tid, OS thread name)` pairs known to the recorder, for every
/// thread that has opened at least one span. Unnamed threads get a
/// synthetic `thread-<tid>` name. Used by the chrome-trace exporter to
/// emit `thread_name` metadata so worker threads render as labeled rows.
pub fn thread_names() -> Vec<(u64, String)> {
    THREAD_NAMES
        .lock()
        .expect("probe thread names lock")
        .iter()
        .map(|(&tid, name)| (tid, name.clone()))
        .collect()
}

/// Microseconds since the recorder's epoch (set on first use).
pub(crate) fn now_us() -> u64 {
    let epoch = EPOCH.get_or_init(Instant::now);
    u64::try_from(epoch.elapsed().as_micros()).unwrap_or(u64::MAX)
}

/// Milliseconds since the recorder's epoch (set on first use). A cheap
/// monotonic timestamp for flight-recorder frames and watch streams;
/// comparable across calls within one process, not across processes.
pub fn now_ms() -> u64 {
    now_us() / 1_000
}

/// Whether the recorder is currently capturing.
#[inline]
pub fn enabled() -> bool {
    ENABLED.load(Ordering::Relaxed)
}

/// Turns the recorder on. Spans and metrics recorded before `enable` are
/// not retroactively captured.
pub fn enable() {
    EPOCH.get_or_init(Instant::now);
    ENABLED.store(true, Ordering::Relaxed);
}

/// Turns the recorder off. Already-open spans still record on drop.
pub fn disable() {
    ENABLED.store(false, Ordering::Relaxed);
}

/// Clears every recorded span event and metric (the log level and
/// enabled state are left alone). Intended for tests and long-lived
/// processes that export periodically.
pub fn reset() {
    EVENTS.lock().expect("probe events lock").clear();
    crate::metrics::clear();
}

/// One completed timed span.
#[derive(Debug, Clone, PartialEq, Eq, serde::Serialize, serde::Deserialize)]
pub struct SpanEvent {
    /// Span name, by convention `strober.<crate>.<name>`.
    pub name: String,
    /// Dense id of the thread the span ran on.
    pub tid: u64,
    /// Nesting depth on that thread when the span opened (0 = top level).
    pub depth: u32,
    /// Global begin-order sequence number.
    pub seq: u64,
    /// Start time in microseconds since the recorder epoch.
    pub start_us: u64,
    /// Duration in microseconds.
    pub dur_us: u64,
}

struct SpanData {
    name: Cow<'static, str>,
    tid: u64,
    depth: u32,
    seq: u64,
    start_us: u64,
}

/// An open timed span; records itself when dropped. Obtain via [`span`].
#[must_use = "a span measures the region it is alive for"]
pub struct Span {
    data: Option<SpanData>,
}

impl std::fmt::Debug for Span {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match &self.data {
            Some(d) => write!(f, "Span({})", d.name),
            None => write!(f, "Span(disabled)"),
        }
    }
}

impl Drop for Span {
    fn drop(&mut self) {
        let Some(data) = self.data.take() else {
            return;
        };
        DEPTH.with(|d| d.set(d.get().saturating_sub(1)));
        let event = SpanEvent {
            dur_us: now_us().saturating_sub(data.start_us),
            name: data.name.into_owned(),
            tid: data.tid,
            depth: data.depth,
            seq: data.seq,
            start_us: data.start_us,
        };
        EVENTS.lock().expect("probe events lock").push(event);
    }
}

/// Opens a timed span. When the recorder is disabled this is one relaxed
/// atomic load and the returned guard is inert.
#[inline]
pub fn span(name: impl Into<Cow<'static, str>>) -> Span {
    if !enabled() {
        return Span { data: None };
    }
    let seq = SEQ.fetch_add(1, Ordering::Relaxed);
    let tid = TID.with(|t| *t);
    let depth = DEPTH.with(|d| {
        let depth = d.get();
        d.set(depth + 1);
        depth
    });
    Span {
        data: Some(SpanData {
            name: name.into(),
            tid,
            depth,
            seq,
            start_us: now_us(),
        }),
    }
}

/// Drains and returns every recorded span event (completion order).
pub fn take_events() -> Vec<SpanEvent> {
    std::mem::take(&mut *EVENTS.lock().expect("probe events lock"))
}

/// A copy of the recorded span events without draining them.
pub fn events() -> Vec<SpanEvent> {
    EVENTS.lock().expect("probe events lock").clone()
}

#[cfg(test)]
pub(crate) mod testutil {
    use std::sync::{Mutex, MutexGuard};

    /// Serializes tests that touch the process-global recorder.
    static TEST_LOCK: Mutex<()> = Mutex::new(());

    pub fn exclusive() -> MutexGuard<'static, ()> {
        TEST_LOCK
            .lock()
            .unwrap_or_else(|poisoned| poisoned.into_inner())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn nested_spans_record_depth_and_order() {
        let _guard = testutil::exclusive();
        reset();
        enable();
        {
            let _a = span("outer");
            {
                let _b = span("inner");
            }
            let _c = span("sibling");
        }
        disable();
        let events = take_events();
        // Completion order: inner, sibling, outer.
        let names: Vec<&str> = events.iter().map(|e| e.name.as_str()).collect();
        assert_eq!(names, ["inner", "sibling", "outer"]);
        let outer = &events[2];
        let inner = &events[0];
        let sibling = &events[1];
        assert_eq!(outer.depth, 0);
        assert_eq!(inner.depth, 1);
        assert_eq!(sibling.depth, 1);
        // Begin order via seq: outer first, then inner, then sibling.
        assert!(outer.seq < inner.seq && inner.seq < sibling.seq);
        // The parent's interval encloses the children's.
        assert!(inner.start_us >= outer.start_us);
        assert!(inner.start_us + inner.dur_us <= outer.start_us + outer.dur_us);
        assert_eq!(outer.tid, inner.tid);
    }

    #[test]
    fn disabled_recorder_captures_nothing() {
        let _guard = testutil::exclusive();
        reset();
        disable();
        {
            let _s = span("ignored");
            crate::counter_add("ignored.counter", 1);
            crate::gauge_set("ignored.gauge", 1.0);
            crate::histogram_record("ignored.hist", 1.0);
        }
        assert!(take_events().is_empty());
        let snap = crate::snapshot();
        assert!(
            snap.is_empty(),
            "disabled recorder must not register metrics"
        );
    }

    #[test]
    fn worker_threads_get_distinct_tids() {
        let _guard = testutil::exclusive();
        reset();
        enable();
        {
            let _outer = span("main");
            std::thread::scope(|scope| {
                for _ in 0..2 {
                    scope.spawn(|| {
                        let _w = span("worker");
                    });
                }
            });
        }
        disable();
        let events = take_events();
        let main_tid = events.iter().find(|e| e.name == "main").unwrap().tid;
        let worker_tids: Vec<u64> = events
            .iter()
            .filter(|e| e.name == "worker")
            .map(|e| e.tid)
            .collect();
        assert_eq!(worker_tids.len(), 2);
        assert!(worker_tids.iter().all(|&t| t != main_tid));
        assert_ne!(worker_tids[0], worker_tids[1]);
        // Worker spans start at depth 0 on their own thread.
        assert!(events
            .iter()
            .filter(|e| e.name == "worker")
            .all(|e| e.depth == 0));
    }

    #[test]
    fn named_threads_register_their_os_name() {
        let _guard = testutil::exclusive();
        reset();
        enable();
        let tid = std::thread::Builder::new()
            .name("strober-test-thread".to_owned())
            .spawn(|| {
                let _s = span("named");
                TID.with(|t| *t)
            })
            .unwrap()
            .join()
            .unwrap();
        disable();
        take_events();
        let names = thread_names();
        assert_eq!(
            names
                .iter()
                .find(|(t, _)| *t == tid)
                .map(|(_, n)| n.as_str()),
            Some("strober-test-thread")
        );
    }

    #[test]
    fn spans_opened_while_enabled_record_after_disable() {
        let _guard = testutil::exclusive();
        reset();
        enable();
        let open = span("straddles");
        disable();
        drop(open);
        let events = take_events();
        assert_eq!(events.len(), 1);
        assert_eq!(events[0].name, "straddles");
    }
}

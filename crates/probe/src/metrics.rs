//! The global metric registry: named counters, gauges and histograms.
//!
//! Metric names follow the `strober.<crate>.<name>` convention. All
//! mutation paths are gated on the recorder's enabled flag (one relaxed
//! atomic load when disabled); [`snapshot`] always works, returning
//! whatever has been registered so far.

use crate::record::enabled;
use std::collections::BTreeMap;
use std::fmt;
use std::sync::Mutex;

/// Upper bucket edges used when a histogram is first touched by
/// [`histogram_record`] without a prior [`histogram_with_bounds`]
/// registration. Decades around milliseconds, the usual span unit.
pub(crate) const DEFAULT_BOUNDS: [f64; 7] = [0.01, 0.1, 1.0, 10.0, 100.0, 1_000.0, 10_000.0];

#[derive(Debug, Clone)]
enum Metric {
    Counter(u64),
    Gauge(f64),
    Histogram(Hist),
}

#[derive(Debug, Clone)]
struct Hist {
    /// Upper-inclusive bucket edges; an implicit overflow bucket follows.
    bounds: Vec<f64>,
    /// One count per edge, plus the trailing overflow bucket.
    counts: Vec<u64>,
    count: u64,
    sum: f64,
    min: f64,
    max: f64,
}

impl Hist {
    fn new(bounds: &[f64]) -> Self {
        Hist {
            bounds: bounds.to_vec(),
            counts: vec![0; bounds.len() + 1],
            count: 0,
            sum: 0.0,
            min: f64::INFINITY,
            max: f64::NEG_INFINITY,
        }
    }

    fn record(&mut self, value: f64) {
        let idx = self
            .bounds
            .iter()
            .position(|&b| value <= b)
            .unwrap_or(self.bounds.len());
        self.counts[idx] += 1;
        self.count += 1;
        self.sum += value;
        self.min = self.min.min(value);
        self.max = self.max.max(value);
    }
}

static REGISTRY: Mutex<BTreeMap<String, Metric>> = Mutex::new(BTreeMap::new());

fn with_registry<R>(f: impl FnOnce(&mut BTreeMap<String, Metric>) -> R) -> R {
    f(&mut REGISTRY.lock().expect("probe metric registry lock"))
}

pub(crate) fn clear() {
    with_registry(std::mem::take);
}

/// Adds `delta` to a named counter, creating it at zero first.
#[inline]
pub fn counter_add(name: &str, delta: u64) {
    if !enabled() {
        return;
    }
    with_registry(
        |reg| match reg.entry(name.to_owned()).or_insert(Metric::Counter(0)) {
            Metric::Counter(v) => *v += delta,
            other => *other = Metric::Counter(delta),
        },
    );
}

/// Sets a named counter to an absolute value (for mirroring counters whose
/// source of truth lives elsewhere, e.g. the store's persisted index).
#[inline]
pub fn counter_set(name: &str, value: u64) {
    if !enabled() {
        return;
    }
    with_registry(|reg| {
        reg.insert(name.to_owned(), Metric::Counter(value));
    });
}

/// Sets a named gauge.
#[inline]
pub fn gauge_set(name: &str, value: f64) {
    if !enabled() {
        return;
    }
    with_registry(|reg| {
        reg.insert(name.to_owned(), Metric::Gauge(value));
    });
}

/// Registers a histogram with explicit upper-inclusive bucket edges
/// (sorted ascending). Values above the last edge land in an implicit
/// overflow bucket. Re-registering an existing histogram is a no-op.
pub fn histogram_with_bounds(name: &str, bounds: &[f64]) {
    if !enabled() {
        return;
    }
    with_registry(|reg| {
        if !matches!(reg.get(name), Some(Metric::Histogram(_))) {
            reg.insert(name.to_owned(), Metric::Histogram(Hist::new(bounds)));
        }
    });
}

/// Records one observation into a named histogram, creating it with the
/// default decade buckets if needed.
#[inline]
pub fn histogram_record(name: &str, value: f64) {
    if !enabled() {
        return;
    }
    with_registry(|reg| {
        match reg
            .entry(name.to_owned())
            .or_insert_with(|| Metric::Histogram(Hist::new(&DEFAULT_BOUNDS)))
        {
            Metric::Histogram(h) => h.record(value),
            other => {
                let mut h = Hist::new(&DEFAULT_BOUNDS);
                h.record(value);
                *other = Metric::Histogram(h);
            }
        }
    });
}

/// Drops every registered series carrying the label pair
/// `key="value"` (in the canonical encoding produced by
/// [`crate::Labels`]). Used to retire per-job series once a job
/// finishes, keeping registry cardinality bounded by the number of
/// *active* jobs rather than growing forever. Works whether or not the
/// recorder is enabled.
pub fn remove_series_with_label(key: &str, value: &str) {
    with_registry(|reg| {
        reg.retain(|name, _| {
            let (_, pairs) = crate::labels::parse_series(name);
            !pairs.iter().any(|(k, v)| k == key && v == value)
        });
    });
}

/// One counter in a [`MetricsSnapshot`].
#[derive(Debug, Clone, PartialEq, serde::Serialize, serde::Deserialize)]
pub struct CounterEntry {
    /// Metric name.
    pub name: String,
    /// Current value.
    pub value: u64,
}

/// One gauge in a [`MetricsSnapshot`].
#[derive(Debug, Clone, PartialEq, serde::Serialize, serde::Deserialize)]
pub struct GaugeEntry {
    /// Metric name.
    pub name: String,
    /// Last set value.
    pub value: f64,
}

/// One histogram in a [`MetricsSnapshot`].
#[derive(Debug, Clone, PartialEq, serde::Serialize, serde::Deserialize)]
pub struct HistogramEntry {
    /// Metric name.
    pub name: String,
    /// Upper-inclusive bucket edges.
    pub bounds: Vec<f64>,
    /// Per-bucket counts (one per edge, plus the overflow bucket).
    pub counts: Vec<u64>,
    /// Total observations.
    pub count: u64,
    /// Sum of observations.
    pub sum: f64,
    /// Smallest observation (0 when empty).
    pub min: f64,
    /// Largest observation (0 when empty).
    pub max: f64,
}

impl HistogramEntry {
    /// Mean observation, or 0 for an empty histogram.
    pub fn mean(&self) -> f64 {
        if self.count == 0 {
            0.0
        } else {
            self.sum / self.count as f64
        }
    }
}

/// A point-in-time copy of every registered metric, sorted by name.
#[derive(Debug, Clone, Default, PartialEq, serde::Serialize, serde::Deserialize)]
pub struct MetricsSnapshot {
    /// All counters.
    pub counters: Vec<CounterEntry>,
    /// All gauges.
    pub gauges: Vec<GaugeEntry>,
    /// All histograms.
    pub histograms: Vec<HistogramEntry>,
}

impl MetricsSnapshot {
    /// Whether no metrics have been registered.
    pub fn is_empty(&self) -> bool {
        self.counters.is_empty() && self.gauges.is_empty() && self.histograms.is_empty()
    }

    /// Looks up a counter by name.
    pub fn counter(&self, name: &str) -> Option<u64> {
        self.counters
            .iter()
            .find(|c| c.name == name)
            .map(|c| c.value)
    }

    /// Looks up a gauge by name.
    pub fn gauge(&self, name: &str) -> Option<f64> {
        self.gauges.iter().find(|g| g.name == name).map(|g| g.value)
    }

    /// Looks up a histogram by name.
    pub fn histogram(&self, name: &str) -> Option<&HistogramEntry> {
        self.histograms.iter().find(|h| h.name == name)
    }

    /// Every series name in the snapshot, in kind order.
    pub fn names(&self) -> Vec<&str> {
        self.counters
            .iter()
            .map(|c| c.name.as_str())
            .chain(self.gauges.iter().map(|g| g.name.as_str()))
            .chain(self.histograms.iter().map(|h| h.name.as_str()))
            .collect()
    }

    /// The entries of `self` that are new or changed relative to `prev` —
    /// the incremental payload of one `Watch` frame. Applying the result
    /// to `prev` with [`MetricsSnapshot::merge`] (together with
    /// [`MetricsSnapshot::removed_since`]) reconstructs `self` exactly.
    #[must_use]
    pub fn delta_from(&self, prev: &MetricsSnapshot) -> MetricsSnapshot {
        MetricsSnapshot {
            counters: self
                .counters
                .iter()
                .filter(|c| prev.counter(&c.name) != Some(c.value))
                .cloned()
                .collect(),
            gauges: self
                .gauges
                .iter()
                .filter(|g| prev.gauge(&g.name).map(f64::to_bits) != Some(g.value.to_bits()))
                .cloned()
                .collect(),
            histograms: self
                .histograms
                .iter()
                .filter(|h| prev.histogram(&h.name) != Some(h))
                .cloned()
                .collect(),
        }
    }

    /// The series names present in `prev` but no longer in `self`
    /// (retired series, e.g. a finished job's labeled gauges).
    #[must_use]
    pub fn removed_since(&self, prev: &MetricsSnapshot) -> Vec<String> {
        let keep: std::collections::BTreeSet<&str> = self.names().into_iter().collect();
        prev.names()
            .into_iter()
            .filter(|n| !keep.contains(n))
            .map(str::to_owned)
            .collect()
    }

    /// Applies one incremental frame: upserts every entry of `delta` and
    /// drops every series named in `removed`. Entries stay sorted by
    /// name, matching what [`snapshot`] produces.
    pub fn merge(&mut self, delta: &MetricsSnapshot, removed: &[String]) {
        fn apply<T: Clone>(
            dst: &mut Vec<T>,
            src: &[T],
            removed: &[String],
            name: impl Fn(&T) -> &str,
        ) {
            let mut by_name: BTreeMap<String, T> =
                dst.drain(..).map(|e| (name(&e).to_owned(), e)).collect();
            for e in src {
                by_name.insert(name(e).to_owned(), e.clone());
            }
            for n in removed {
                by_name.remove(n);
            }
            dst.extend(by_name.into_values());
        }
        apply(&mut self.counters, &delta.counters, removed, |c| &c.name);
        apply(&mut self.gauges, &delta.gauges, removed, |g| &g.name);
        apply(&mut self.histograms, &delta.histograms, removed, |h| {
            &h.name
        });
    }

    /// The subset of metrics whose names start with `prefix`.
    #[must_use]
    pub fn filtered(&self, prefix: &str) -> MetricsSnapshot {
        MetricsSnapshot {
            counters: self
                .counters
                .iter()
                .filter(|c| c.name.starts_with(prefix))
                .cloned()
                .collect(),
            gauges: self
                .gauges
                .iter()
                .filter(|g| g.name.starts_with(prefix))
                .cloned()
                .collect(),
            histograms: self
                .histograms
                .iter()
                .filter(|h| h.name.starts_with(prefix))
                .cloned()
                .collect(),
        }
    }
}

impl fmt::Display for MetricsSnapshot {
    /// Renders the human-readable metrics table.
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if self.is_empty() {
            return writeln!(f, "(no metrics recorded)");
        }
        let width = self
            .counters
            .iter()
            .map(|c| c.name.len())
            .chain(self.gauges.iter().map(|g| g.name.len()))
            .chain(self.histograms.iter().map(|h| h.name.len()))
            .max()
            .unwrap_or(0);
        for c in &self.counters {
            writeln!(f, "counter    {:<width$}  {}", c.name, c.value)?;
        }
        for g in &self.gauges {
            writeln!(f, "gauge      {:<width$}  {:.3}", g.name, g.value)?;
        }
        for h in &self.histograms {
            writeln!(
                f,
                "histogram  {:<width$}  count={} mean={:.3} min={:.3} max={:.3}",
                h.name,
                h.count,
                h.mean(),
                if h.count == 0 { 0.0 } else { h.min },
                if h.count == 0 { 0.0 } else { h.max },
            )?;
        }
        Ok(())
    }
}

/// Snapshots every registered metric. Works whether or not the recorder
/// is enabled (it simply reports whatever was captured while it was).
pub fn snapshot() -> MetricsSnapshot {
    with_registry(|reg| {
        let mut snap = MetricsSnapshot::default();
        for (name, metric) in reg.iter() {
            match metric {
                Metric::Counter(v) => snap.counters.push(CounterEntry {
                    name: name.clone(),
                    value: *v,
                }),
                Metric::Gauge(v) => snap.gauges.push(GaugeEntry {
                    name: name.clone(),
                    value: *v,
                }),
                Metric::Histogram(h) => snap.histograms.push(HistogramEntry {
                    name: name.clone(),
                    bounds: h.bounds.clone(),
                    counts: h.counts.clone(),
                    count: h.count,
                    sum: h.sum,
                    min: if h.count == 0 { 0.0 } else { h.min },
                    max: if h.count == 0 { 0.0 } else { h.max },
                }),
            }
        }
        snap
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::record::testutil;
    use crate::{disable, enable, reset};

    #[test]
    fn counters_and_gauges_register_and_snapshot() {
        let _guard = testutil::exclusive();
        reset();
        enable();
        counter_add("strober.test.hits", 2);
        counter_add("strober.test.hits", 3);
        counter_set("strober.test.abs", 41);
        counter_set("strober.test.abs", 42);
        gauge_set("strober.test.rate", 1.5);
        let snap = snapshot();
        disable();
        assert_eq!(snap.counter("strober.test.hits"), Some(5));
        assert_eq!(snap.counter("strober.test.abs"), Some(42));
        assert_eq!(snap.gauge("strober.test.rate"), Some(1.5));
        assert_eq!(snap.counter("strober.test.absent"), None);
        let table = snap.to_string();
        assert!(table.contains("strober.test.hits"));
        assert!(table.contains("counter"));
    }

    #[test]
    fn histogram_bucket_boundaries_are_upper_inclusive() {
        let _guard = testutil::exclusive();
        reset();
        enable();
        histogram_with_bounds("strober.test.lat", &[1.0, 10.0, 100.0]);
        // Edge values land in the bucket whose bound they equal.
        for v in [0.5, 1.0, 1.0001, 10.0, 99.9, 100.0, 100.1, 1e9] {
            histogram_record("strober.test.lat", v);
        }
        let snap = snapshot();
        disable();
        let h = snap.histogram("strober.test.lat").unwrap();
        assert_eq!(h.bounds, vec![1.0, 10.0, 100.0]);
        // <=1: {0.5, 1.0}; <=10: {1.0001, 10.0}; <=100: {99.9, 100.0};
        // overflow: {100.1, 1e9}.
        assert_eq!(h.counts, vec![2, 2, 2, 2]);
        assert_eq!(h.count, 8);
        assert_eq!(h.min, 0.5);
        assert_eq!(h.max, 1e9);
        assert!(h.mean() > 0.0);
    }

    #[test]
    fn default_bounds_apply_when_unregistered() {
        let _guard = testutil::exclusive();
        reset();
        enable();
        histogram_record("strober.test.auto", 5.0);
        let snap = snapshot();
        disable();
        let h = snap.histogram("strober.test.auto").unwrap();
        assert_eq!(h.bounds, DEFAULT_BOUNDS.to_vec());
        assert_eq!(h.counts.iter().sum::<u64>(), 1);
        // 5.0 lands in the (1, 10] bucket: index 3.
        assert_eq!(h.counts[3], 1);
    }

    #[test]
    fn snapshot_round_trips_through_json() {
        let _guard = testutil::exclusive();
        reset();
        enable();
        counter_add("strober.test.a", 7);
        gauge_set("strober.test.b", 2.25);
        histogram_record("strober.test.c", 3.0);
        let snap = snapshot();
        disable();
        let text = serde_json::to_string_pretty(&snap).unwrap();
        let back: MetricsSnapshot = serde_json::from_str(&text).unwrap();
        assert_eq!(back, snap);
    }

    #[test]
    fn filtered_keeps_only_the_prefix() {
        let _guard = testutil::exclusive();
        reset();
        enable();
        counter_add("strober.store.hits", 1);
        counter_add("strober.core.replays", 1);
        let snap = snapshot().filtered("strober.store.");
        disable();
        assert_eq!(snap.counters.len(), 1);
        assert_eq!(snap.counter("strober.store.hits"), Some(1));
    }

    #[test]
    fn delta_merge_round_trips_and_reports_removals() {
        let _guard = testutil::exclusive();
        reset();
        enable();
        counter_add("strober.test.a", 1);
        gauge_set("strober.test.g", 1.0);
        histogram_record("strober.test.h", 2.0);
        let before = snapshot();
        counter_add("strober.test.a", 4);
        counter_add("strober.test.b", 1);
        gauge_set("strober.test.g", 1.0); // unchanged
        let after = snapshot();
        disable();

        let delta = after.delta_from(&before);
        // Only the changed counter and the new one travel; the unchanged
        // gauge and histogram do not.
        assert_eq!(delta.counters.len(), 2);
        assert!(delta.gauges.is_empty());
        assert!(delta.histograms.is_empty());

        let mut merged = before.clone();
        merged.merge(&delta, &after.removed_since(&before));
        assert_eq!(merged, after);

        // A series present before but gone after is reported removed.
        let mut shrunk = after.clone();
        shrunk.counters.retain(|c| c.name != "strober.test.b");
        let removed = shrunk.removed_since(&after);
        assert_eq!(removed, vec!["strober.test.b".to_owned()]);
        let mut merged = after.clone();
        merged.merge(&shrunk.delta_from(&after), &removed);
        assert_eq!(merged, shrunk);
    }

    #[test]
    fn remove_series_with_label_retires_only_matching_series() {
        let _guard = testutil::exclusive();
        reset();
        enable();
        let l3 = crate::Labels::new().job(3);
        let l4 = crate::Labels::new().job(4);
        crate::counter_add_labeled("strober.test.jobs", &l3, 1);
        crate::counter_add_labeled("strober.test.jobs", &l4, 1);
        crate::gauge_set_labeled("strober.test.run", &l3, 1.0);
        counter_add("strober.test.global", 1);
        remove_series_with_label("job", "3");
        let snap = snapshot();
        disable();
        assert_eq!(snap.counter(r#"strober.test.jobs{job="3"}"#), None);
        assert_eq!(snap.gauge(r#"strober.test.run{job="3"}"#), None);
        assert_eq!(snap.counter(r#"strober.test.jobs{job="4"}"#), Some(1));
        assert_eq!(snap.counter("strober.test.global"), Some(1));
    }
}

//! Flat profile aggregation over span events: per-name call counts,
//! total/self/max wall-clock, for the `strober probe report` view.

use crate::record::SpanEvent;
use std::collections::BTreeMap;
use std::fmt;

/// Aggregate statistics for one span name.
#[derive(Debug, Clone, PartialEq)]
pub struct SpanStat {
    /// Span name.
    pub name: String,
    /// Number of completed spans.
    pub count: u64,
    /// Total wall-clock microseconds across all instances.
    pub total_us: u64,
    /// Total microseconds minus time spent in nested child spans.
    pub self_us: u64,
    /// The longest single instance, microseconds.
    pub max_us: u64,
}

impl SpanStat {
    /// Mean instance duration in microseconds.
    pub fn mean_us(&self) -> f64 {
        if self.count == 0 {
            0.0
        } else {
            self.total_us as f64 / self.count as f64
        }
    }
}

/// Aggregates span events into per-name statistics, sorted by total time
/// descending.
///
/// Self time subtracts immediate children: a child is an event on the
/// same thread at depth `d + 1` whose interval lies inside the parent's.
pub fn profile(events: &[SpanEvent]) -> Vec<SpanStat> {
    let mut by_name: BTreeMap<&str, SpanStat> = BTreeMap::new();
    for e in events {
        let child_us: u64 = events
            .iter()
            .filter(|c| {
                c.tid == e.tid
                    && c.depth == e.depth + 1
                    && c.start_us >= e.start_us
                    && c.start_us + c.dur_us <= e.start_us + e.dur_us
            })
            .map(|c| c.dur_us)
            .sum();
        let stat = by_name.entry(e.name.as_str()).or_insert_with(|| SpanStat {
            name: e.name.clone(),
            count: 0,
            total_us: 0,
            self_us: 0,
            max_us: 0,
        });
        stat.count += 1;
        stat.total_us += e.dur_us;
        stat.self_us += e.dur_us.saturating_sub(child_us);
        stat.max_us = stat.max_us.max(e.dur_us);
    }
    let mut stats: Vec<SpanStat> = by_name.into_values().collect();
    stats.sort_by(|a, b| b.total_us.cmp(&a.total_us).then(a.name.cmp(&b.name)));
    stats
}

/// A table of [`SpanStat`]s (what [`fmt::Display`] on the slice would be,
/// if slices took impls): render with [`render_profile`].
pub fn render_profile(stats: &[SpanStat]) -> String {
    use fmt::Write as _;
    let mut out = String::new();
    let width = stats
        .iter()
        .map(|s| s.name.len())
        .max()
        .unwrap_or(4)
        .max("span".len());
    writeln!(
        out,
        "{:<width$}  {:>7}  {:>12}  {:>12}  {:>12}  {:>12}",
        "span", "count", "total ms", "self ms", "mean ms", "max ms"
    )
    .expect("string writes are infallible");
    for s in stats {
        writeln!(
            out,
            "{:<width$}  {:>7}  {:>12.3}  {:>12.3}  {:>12.3}  {:>12.3}",
            s.name,
            s.count,
            s.total_us as f64 / 1e3,
            s.self_us as f64 / 1e3,
            s.mean_us() / 1e3,
            s.max_us as f64 / 1e3,
        )
        .expect("string writes are infallible");
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    fn event(name: &str, tid: u64, depth: u32, start_us: u64, dur_us: u64) -> SpanEvent {
        SpanEvent {
            name: name.to_owned(),
            tid,
            depth,
            seq: start_us,
            start_us,
            dur_us,
        }
    }

    #[test]
    fn totals_and_self_time_aggregate() {
        let events = vec![
            event("parent", 0, 0, 0, 100),
            event("child", 0, 1, 10, 30),
            event("child", 0, 1, 50, 20),
            // A different thread's span must not count as a child.
            event("child", 1, 1, 20, 40),
        ];
        let stats = profile(&events);
        let parent = stats.iter().find(|s| s.name == "parent").unwrap();
        assert_eq!(parent.count, 1);
        assert_eq!(parent.total_us, 100);
        assert_eq!(parent.self_us, 50, "children on tid 0 subtract 30 + 20");
        let child = stats.iter().find(|s| s.name == "child").unwrap();
        assert_eq!(child.count, 3);
        assert_eq!(child.total_us, 90);
        assert_eq!(child.max_us, 40);
        assert!((child.mean_us() - 30.0).abs() < 1e-9);
    }

    #[test]
    fn sorted_by_total_descending() {
        let events = vec![event("small", 0, 0, 0, 10), event("large", 0, 0, 20, 90)];
        let stats = profile(&events);
        assert_eq!(stats[0].name, "large");
        assert_eq!(stats[1].name, "small");
    }

    #[test]
    fn render_is_a_readable_table() {
        let stats = profile(&[event("strober.core.replay", 0, 0, 0, 1500)]);
        let table = render_profile(&stats);
        assert!(table.contains("span"));
        assert!(table.contains("strober.core.replay"));
        assert!(table.contains("1.500"));
    }
}

//! Leveled stderr logging.
//!
//! A single global level filters the [`error!`], [`warn!`], [`info!`],
//! [`debug!`] and [`trace!`] macros. The default is [`Level::Info`]:
//! warnings and progress messages reach stderr, debug chatter does not.
//! Logging is independent of the span/metric recorder — diagnostics work
//! even when tracing is off.

use std::fmt;
use std::str::FromStr;
use std::sync::atomic::{AtomicU8, Ordering};

/// Log severity, most severe first.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord)]
#[repr(u8)]
pub enum Level {
    /// Unrecoverable or surprising failures.
    Error = 0,
    /// Degraded-but-continuing conditions.
    Warn = 1,
    /// Progress and one-line results (the default threshold).
    Info = 2,
    /// Per-stage internals.
    Debug = 3,
    /// Per-item chatter.
    Trace = 4,
}

impl Level {
    fn from_u8(v: u8) -> Level {
        match v {
            0 => Level::Error,
            1 => Level::Warn,
            2 => Level::Info,
            3 => Level::Debug,
            _ => Level::Trace,
        }
    }

    /// The conventional lowercase name.
    pub fn as_str(self) -> &'static str {
        match self {
            Level::Error => "error",
            Level::Warn => "warn",
            Level::Info => "info",
            Level::Debug => "debug",
            Level::Trace => "trace",
        }
    }
}

impl fmt::Display for Level {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.as_str())
    }
}

/// A failed [`Level::from_str`] with the offending input.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct LevelParseError(pub String);

impl fmt::Display for LevelParseError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "unknown log level `{}` (expected error, warn, info, debug or trace)",
            self.0
        )
    }
}

impl std::error::Error for LevelParseError {}

impl FromStr for Level {
    type Err = LevelParseError;

    fn from_str(s: &str) -> Result<Level, LevelParseError> {
        match s.to_ascii_lowercase().as_str() {
            "error" => Ok(Level::Error),
            "warn" | "warning" => Ok(Level::Warn),
            "info" => Ok(Level::Info),
            "debug" => Ok(Level::Debug),
            "trace" => Ok(Level::Trace),
            other => Err(LevelParseError(other.to_owned())),
        }
    }
}

static LOG_LEVEL: AtomicU8 = AtomicU8::new(Level::Info as u8);

/// The current log filter level.
pub fn log_level() -> Level {
    Level::from_u8(LOG_LEVEL.load(Ordering::Relaxed))
}

/// Sets the global log filter level.
pub fn set_log_level(level: Level) {
    LOG_LEVEL.store(level as u8, Ordering::Relaxed);
}

/// Whether a message at `level` would currently be emitted.
#[inline]
pub fn log_enabled(level: Level) -> bool {
    (level as u8) <= LOG_LEVEL.load(Ordering::Relaxed)
}

/// Emits one log line to stderr if `level` passes the filter. Prefer the
/// `error!`/`warn!`/`info!`/`debug!`/`trace!` macros.
pub fn log_message(level: Level, args: fmt::Arguments<'_>) {
    if log_enabled(level) {
        match level {
            // Error and warn lines are prefixed so they stand out in a
            // stream of progress output; info keeps the message verbatim
            // (CLI progress lines own their formatting).
            Level::Error => eprintln!("error: {args}"),
            Level::Warn => eprintln!("warning: {args}"),
            Level::Info => eprintln!("{args}"),
            Level::Debug | Level::Trace => eprintln!("[{level}] {args}"),
        }
    }
}

/// Logs at [`Level::Error`].
#[macro_export]
macro_rules! error {
    ($($arg:tt)*) => {
        $crate::log_message($crate::Level::Error, format_args!($($arg)*))
    };
}

/// Logs at [`Level::Warn`].
#[macro_export]
macro_rules! warn {
    ($($arg:tt)*) => {
        $crate::log_message($crate::Level::Warn, format_args!($($arg)*))
    };
}

/// Logs at [`Level::Info`].
#[macro_export]
macro_rules! info {
    ($($arg:tt)*) => {
        $crate::log_message($crate::Level::Info, format_args!($($arg)*))
    };
}

/// Logs at [`Level::Debug`].
#[macro_export]
macro_rules! debug {
    ($($arg:tt)*) => {
        $crate::log_message($crate::Level::Debug, format_args!($($arg)*))
    };
}

/// Logs at [`Level::Trace`].
#[macro_export]
macro_rules! trace {
    ($($arg:tt)*) => {
        $crate::log_message($crate::Level::Trace, format_args!($($arg)*))
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn levels_parse_and_order() {
        assert_eq!("warn".parse::<Level>().unwrap(), Level::Warn);
        assert_eq!("WARNING".parse::<Level>().unwrap(), Level::Warn);
        assert_eq!("trace".parse::<Level>().unwrap(), Level::Trace);
        assert!("loud".parse::<Level>().is_err());
        assert!(Level::Error < Level::Warn && Level::Warn < Level::Info);
        assert_eq!(Level::Debug.to_string(), "debug");
    }

    #[test]
    fn filter_gates_by_severity() {
        let prev = log_level();
        set_log_level(Level::Warn);
        assert!(log_enabled(Level::Error));
        assert!(log_enabled(Level::Warn));
        assert!(!log_enabled(Level::Info));
        assert!(!log_enabled(Level::Debug));
        set_log_level(Level::Trace);
        assert!(log_enabled(Level::Trace));
        set_log_level(prev);
    }

    #[test]
    fn default_level_lets_warnings_through() {
        // Other tests restore the level, so the default is observable.
        // (If this races another test mid-change, both set valid levels;
        // the invariant tested is that warn <= the default info.)
        assert!(Level::Warn <= Level::Info);
    }
}

//! Integration tests: corruption tolerance, LRU eviction and round-trip
//! properties of the artifact store.

use proptest::prelude::*;
use std::path::{Path, PathBuf};
use std::sync::atomic::{AtomicU64, Ordering};
use strober_store::{fingerprint_of, Fingerprint, Store, ENVELOPE_VERSION};

/// Self-cleaning temp directory (the crate's internal helper is not
/// visible to integration tests).
struct TempDir {
    path: PathBuf,
}

impl TempDir {
    fn new(label: &str) -> Self {
        static COUNTER: AtomicU64 = AtomicU64::new(0);
        let n = COUNTER.fetch_add(1, Ordering::Relaxed);
        let path = std::env::temp_dir().join(format!(
            "strober-store-it-{label}-{}-{n}",
            std::process::id()
        ));
        std::fs::create_dir_all(&path).expect("create temp dir");
        TempDir { path }
    }

    fn path(&self) -> &Path {
        &self.path
    }
}

impl Drop for TempDir {
    fn drop(&mut self) {
        let _ = std::fs::remove_dir_all(&self.path);
    }
}

fn object_path(root: &Path, fp: Fingerprint) -> PathBuf {
    root.join("objects").join(format!("{}.bin", fp.to_hex()))
}

#[test]
fn truncated_object_is_a_silent_miss() {
    let dir = TempDir::new("truncated");
    let mut store = Store::open(dir.path()).unwrap();
    let value: Vec<u64> = (0..256).collect();
    let fp = fingerprint_of(&value);
    assert!(store.put(fp, &value));

    let path = object_path(dir.path(), fp);
    let full = std::fs::read(&path).unwrap();
    std::fs::write(&path, &full[..full.len() / 2]).unwrap();

    assert_eq!(store.get::<Vec<u64>>(fp), None, "truncation must be a miss");
    let snap = store.metrics();
    assert_eq!(
        snap.counter("strober.store.corrupt"),
        Some(1),
        "truncation counts as corruption"
    );
    assert_eq!(snap.counter("strober.store.misses"), Some(1));
    assert!(!path.exists(), "damaged object is deleted for rebuild");

    // The slot is rebuildable: a fresh put makes it hit again.
    assert!(store.put(fp, &value));
    assert_eq!(store.get::<Vec<u64>>(fp), Some(value));
}

#[test]
fn bit_flipped_object_is_a_silent_miss() {
    let dir = TempDir::new("bitflip");
    let mut store = Store::open(dir.path()).unwrap();
    let value: Vec<u64> = (0..256).map(|i| i * 31).collect();
    let fp = fingerprint_of(&value);
    assert!(store.put(fp, &value));

    // Flip one bit in the middle of the payload, past the 24-byte header:
    // the envelope stays structurally valid, only the checksum can catch
    // the damage.
    let path = object_path(dir.path(), fp);
    let mut bytes = std::fs::read(&path).unwrap();
    let target = 24 + (bytes.len() - 24) / 2;
    bytes[target] ^= 0x01;
    std::fs::write(&path, &bytes).unwrap();

    assert_eq!(store.get::<Vec<u64>>(fp), None, "bit flip must be a miss");
    assert_eq!(store.metrics().counter("strober.store.corrupt"), Some(1));
}

#[test]
fn version_mismatch_is_counted_separately() {
    let dir = TempDir::new("version");
    let mut store = Store::open(dir.path()).unwrap();
    let fp = Fingerprint(0xf00d);
    assert!(store.put(fp, &7u64));

    let path = object_path(dir.path(), fp);
    let mut bytes = std::fs::read(&path).unwrap();
    bytes[4..8].copy_from_slice(&(ENVELOPE_VERSION + 1).to_le_bytes());
    std::fs::write(&path, bytes).unwrap();

    assert_eq!(store.get::<u64>(fp), None);
    let snap = store.metrics();
    assert_eq!(snap.counter("strober.store.version_mismatch"), Some(1));
    assert_eq!(
        snap.counter("strober.store.corrupt"),
        Some(0),
        "format drift is not corruption"
    );
    assert_eq!(
        snap.counter("strober.store.misses"),
        Some(1),
        "format drift is still a miss"
    );
}

#[test]
fn lru_eviction_respects_byte_budget() {
    let dir = TempDir::new("eviction");
    // Size one object, then budget for roughly three of them.
    let probe: Vec<u64> = (0..64).collect();
    let mut store = Store::open(dir.path()).unwrap();
    store.put(Fingerprint(0), &probe);
    let object_bytes = store.total_bytes();
    store.clear().unwrap();

    let budget = object_bytes * 7 / 2;
    let mut store = Store::open(dir.path()).unwrap().with_max_bytes(budget);
    for i in 0..3u64 {
        store.put(Fingerprint(i), &probe);
    }
    assert_eq!(store.len(), 3, "three objects fit the budget");

    // Touch 0 so 1 becomes the least recently used, then overflow.
    store.get::<Vec<u64>>(Fingerprint(0)).unwrap();
    store.put(Fingerprint(3), &probe);

    assert!(store.total_bytes() <= budget, "budget holds after eviction");
    assert_eq!(store.metrics().counter("strober.store.evictions"), Some(1));
    assert!(
        store.get::<Vec<u64>>(Fingerprint(1)).is_none(),
        "the least recently used object is the one evicted"
    );
    for kept in [0u64, 3] {
        assert!(
            store.get::<Vec<u64>>(Fingerprint(kept)).is_some(),
            "recently used object {kept} survives"
        );
    }
}

#[test]
fn eviction_never_drops_below_one_object_needlessly() {
    let dir = TempDir::new("tiny_budget");
    let mut store = Store::open(dir.path()).unwrap().with_max_bytes(1);
    store.put(Fingerprint(1), &1u64);
    // A budget smaller than any object empties the store rather than
    // erroring; subsequent operation stays functional.
    assert!(store.get::<u64>(Fingerprint(1)).is_none());
    assert!(store.total_bytes() <= 1);
}

proptest! {
    #[test]
    fn round_trip_preserves_arbitrary_payloads(
        words in proptest::collection::vec(any::<u64>(), 0..64),
        flags in proptest::collection::vec(any::<bool>(), 0..16),
        scale in any::<f64>(),
    ) {
        let dir = TempDir::new("prop_round_trip");
        let mut store = Store::open(dir.path()).unwrap();
        let payload = (words.clone(), flags.clone(), scale.to_bits());
        let fp = fingerprint_of(&payload);
        prop_assert!(store.put(fp, &payload));
        let back: Option<(Vec<u64>, Vec<bool>, u64)> = store.get(fp);
        prop_assert_eq!(back, Some(payload));
    }

    #[test]
    fn equal_values_fingerprint_equal_and_distinct_values_rarely_collide(
        a in proptest::collection::vec(any::<u64>(), 1..32),
        b in proptest::collection::vec(any::<u64>(), 1..32),
    ) {
        prop_assert_eq!(fingerprint_of(&a), fingerprint_of(&a.clone()));
        if a != b {
            // FNV-1a is not collision-proof, but 64-bit collisions on
            // short random inputs would indicate a broken implementation.
            prop_assert_ne!(fingerprint_of(&a), fingerprint_of(&b));
        }
    }
}

//! Minimal self-cleaning temp directories for tests (no `tempfile` dep).

use std::path::{Path, PathBuf};
use std::sync::atomic::{AtomicU64, Ordering};

/// A directory under the system temp root, removed on drop.
pub struct TempDir {
    path: PathBuf,
}

impl TempDir {
    /// Creates a fresh directory whose name embeds `label`, the process id
    /// and a counter, so parallel tests never collide.
    pub fn new(label: &str) -> Self {
        static COUNTER: AtomicU64 = AtomicU64::new(0);
        let n = COUNTER.fetch_add(1, Ordering::Relaxed);
        let path = std::env::temp_dir().join(format!(
            "strober-store-test-{label}-{}-{n}",
            std::process::id()
        ));
        std::fs::create_dir_all(&path).expect("create temp dir");
        TempDir { path }
    }

    /// The directory path.
    pub fn path(&self) -> &Path {
        &self.path
    }
}

impl Drop for TempDir {
    fn drop(&mut self) {
        let _ = std::fs::remove_dir_all(&self.path);
    }
}

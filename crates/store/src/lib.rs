//! Content-addressed artifact store and warm-start run cache.
//!
//! Preparing a Strober session — the FAME1 transform, synthesis and formal
//! matching — is by far the most expensive part of short runs, and it is a
//! pure function of the target design and the session configuration. This
//! crate caches its outputs on disk so repeated runs over the same design
//! start warm:
//!
//! * [`fingerprint`] derives a stable, process-independent cache key (an
//!   in-crate FNV-1a digest over canonical serialization — deliberately
//!   *not* [`std::collections::hash_map::DefaultHasher`], whose SipHash
//!   keys are randomised per process).
//! * [`envelope`] defines the versioned, checksummed on-disk object format
//!   with atomic write-then-rename; any damage degrades to a cache miss.
//! * [`store`] is the content-addressed [`Store`] with size-bounded LRU
//!   eviction; its hit/miss/eviction counters surface through the
//!   `strober-probe` metrics registry under `strober.store.*` (see
//!   [`Store::metrics`]).
//! * [`manifest`] records per-stage wall-clock timings of one run as JSON.
//!
//! The store is deliberately generic: it caches any artifact implementing
//! the binary [`serde::Blob`] codec (cache keys additionally use the
//! canonical `serde` value serialization). The Strober-specific
//! composition (what constitutes a prepared session, which fields form
//! the key) lives in `strober-core`'s `prepare_cached`.
//!
//! ```
//! use strober_store::{fingerprint_of, Store};
//!
//! let root = std::env::temp_dir().join(format!("store-doc-{}", std::process::id()));
//! let mut store = Store::open(&root).unwrap().with_max_bytes(1 << 20);
//! let key = fingerprint_of(&("my-design", 42u32));
//! if store.get::<Vec<u64>>(key).is_none() {
//!     let artifact: Vec<u64> = vec![1, 2, 3]; // ... expensive build ...
//!     store.put(key, &artifact);
//! }
//! assert_eq!(store.get::<Vec<u64>>(key), Some(vec![1, 2, 3]));
//! # std::fs::remove_dir_all(&root).unwrap();
//! ```

#![warn(missing_docs)]

pub mod envelope;
pub mod fingerprint;
pub mod manifest;
pub mod store;

#[cfg(test)]
pub(crate) mod testutil;

pub use envelope::{read_object, write_object, ReadFailure, ENVELOPE_MAGIC, ENVELOPE_VERSION};
pub use fingerprint::{fingerprint_bytes, fingerprint_of, fingerprint_parts, Fingerprint, Fnv1a};
pub use manifest::{
    CodegenProvenance, JobProvenance, RunManifest, SamplingOutcome, StageTiming, MANIFEST_VERSION,
};
pub use store::Store;

//! The content-addressed store: objects keyed by fingerprint with a
//! size-bounded LRU index.
//!
//! On-disk layout under the store root:
//!
//! ```text
//! <root>/
//!   objects/<fingerprint-hex>.bin    one binary envelope per artifact
//!   index.json                       LRU clock + per-object sizes + stats
//! ```
//!
//! The index is advisory: if it is missing or corrupt the store rebuilds
//! it by scanning `objects/`, so losing it can only forget recency
//! information, never artifacts. All read paths degrade to a cache miss —
//! a damaged store never fails a build, it only stops accelerating it.

use crate::envelope::{read_object, write_atomic, write_object, ReadFailure};
use crate::fingerprint::Fingerprint;
use serde::Blob;
use std::collections::BTreeMap;
use std::fs;
use std::io;
use std::path::{Path, PathBuf};

/// Behaviour counters, persisted in the index so they accumulate across
/// processes until [`Store::clear`]. This is the persistence format only;
/// the public view is the probe-registry snapshot from [`Store::metrics`],
/// under the `strober.store.*` names.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq, serde::Serialize, serde::Deserialize)]
struct Counters {
    /// Objects served from disk.
    hits: u64,
    /// Lookups that found no usable object (including the mismatch and
    /// corruption cases below).
    misses: u64,
    /// Objects evicted to respect the byte budget.
    evictions: u64,
    /// Objects rejected for checksum/fingerprint/parse damage.
    corrupt: u64,
    /// Objects rejected for an envelope format version mismatch.
    version_mismatch: u64,
}

impl Counters {
    /// The counters as `(probe metric name, value)` pairs.
    fn named(&self) -> [(&'static str, u64); 5] {
        [
            ("strober.store.hits", self.hits),
            ("strober.store.misses", self.misses),
            ("strober.store.evictions", self.evictions),
            ("strober.store.corrupt", self.corrupt),
            ("strober.store.version_mismatch", self.version_mismatch),
        ]
    }
}

#[derive(Debug, Clone, Default, serde::Serialize, serde::Deserialize)]
struct IndexEntry {
    bytes: u64,
    last_used: u64,
}

#[derive(Debug, Clone, Default, serde::Serialize, serde::Deserialize)]
struct Index {
    clock: u64,
    entries: BTreeMap<String, IndexEntry>,
    stats: Counters,
}

/// A content-addressed artifact store with LRU eviction.
#[derive(Debug)]
pub struct Store {
    root: PathBuf,
    max_bytes: Option<u64>,
    index: Index,
}

impl Store {
    /// Opens (creating if needed) a store rooted at `root`, with no byte
    /// budget.
    ///
    /// # Errors
    ///
    /// Returns an I/O error only when the directory tree cannot be
    /// created; a damaged index is silently rebuilt from the objects on
    /// disk.
    pub fn open(root: impl Into<PathBuf>) -> io::Result<Self> {
        let root = root.into();
        fs::create_dir_all(root.join("objects"))?;
        let index = load_index(&root);
        Ok(Store {
            root,
            max_bytes: None,
            index,
        })
    }

    /// Sets the byte budget; the next write evicts down to it.
    #[must_use]
    pub fn with_max_bytes(mut self, max_bytes: u64) -> Self {
        self.max_bytes = Some(max_bytes);
        self
    }

    /// The store's root directory.
    pub fn root(&self) -> &Path {
        &self.root
    }

    /// The store's counters and size gauges as a probe metrics snapshot
    /// (cumulative since the store was last cleared), under the
    /// `strober.store.*` names. Built from this store's own state, so it
    /// is exact even when several stores share the process; the same
    /// values are also mirrored into the global probe registry whenever
    /// the recorder is enabled.
    pub fn metrics(&self) -> strober_probe::MetricsSnapshot {
        let mut snap = strober_probe::MetricsSnapshot::default();
        for (name, value) in self.index.stats.named() {
            snap.counters.push(strober_probe::CounterEntry {
                name: name.to_owned(),
                value,
            });
        }
        snap.gauges.push(strober_probe::GaugeEntry {
            name: "strober.store.objects".to_owned(),
            value: self.len() as f64,
        });
        snap.gauges.push(strober_probe::GaugeEntry {
            name: "strober.store.bytes".to_owned(),
            value: self.total_bytes() as f64,
        });
        snap
    }

    /// Mirrors the store's counters into the global probe registry (a
    /// no-op while the recorder is disabled). Absolute-set semantics, so
    /// re-publishing after every mutation cannot double count.
    fn publish_metrics(&self) {
        if !strober_probe::enabled() {
            return;
        }
        for (name, value) in self.index.stats.named() {
            strober_probe::counter_set(name, value);
        }
        strober_probe::gauge_set("strober.store.objects", self.len() as f64);
        strober_probe::gauge_set("strober.store.bytes", self.total_bytes() as f64);
    }

    /// Number of objects currently indexed.
    pub fn len(&self) -> usize {
        self.index.entries.len()
    }

    /// Whether the store holds no objects.
    pub fn is_empty(&self) -> bool {
        self.index.entries.is_empty()
    }

    /// Total bytes of indexed objects.
    pub fn total_bytes(&self) -> u64 {
        self.index.entries.values().map(|e| e.bytes).sum()
    }

    /// Looks up an artifact. Any unreadable object — absent, truncated,
    /// bit-flipped, stored under the wrong key, or written by a different
    /// format revision — is a miss, never an error; damaged files are
    /// deleted so the next write rebuilds them.
    pub fn get<T: Blob>(&mut self, fingerprint: Fingerprint) -> Option<T> {
        let path = self.object_path(fingerprint);
        match read_object::<T>(&path, fingerprint) {
            Ok(value) => {
                self.index.stats.hits += 1;
                self.touch(fingerprint);
                self.save_index();
                Some(value)
            }
            Err(failure) => {
                self.index.stats.misses += 1;
                match failure {
                    ReadFailure::Absent => {}
                    ReadFailure::VersionMismatch => {
                        self.index.stats.version_mismatch += 1;
                        self.forget(fingerprint, &path);
                    }
                    ReadFailure::Corrupt => {
                        self.index.stats.corrupt += 1;
                        self.forget(fingerprint, &path);
                    }
                }
                self.save_index();
                None
            }
        }
    }

    /// Stores an artifact under `fingerprint`, evicting least-recently-used
    /// objects if a byte budget is set. Best-effort: an I/O failure leaves
    /// the store unchanged and returns `false`.
    pub fn put<T: Blob>(&mut self, fingerprint: Fingerprint, value: &T) -> bool {
        let path = self.object_path(fingerprint);
        match write_object(&path, fingerprint, value) {
            Ok(bytes) => {
                self.index.entries.insert(
                    fingerprint.to_hex(),
                    IndexEntry {
                        bytes,
                        last_used: 0,
                    },
                );
                self.touch(fingerprint);
                self.evict_to_budget();
                self.save_index();
                true
            }
            Err(_) => false,
        }
    }

    /// Deletes every object and resets the index and counters. Returns the
    /// number of objects removed.
    ///
    /// # Errors
    ///
    /// Returns an I/O error if the objects directory cannot be recreated.
    pub fn clear(&mut self) -> io::Result<usize> {
        let removed = self.index.entries.len();
        let objects = self.root.join("objects");
        let _ = fs::remove_dir_all(&objects);
        fs::create_dir_all(&objects)?;
        self.index = Index::default();
        self.save_index();
        Ok(removed)
    }

    fn object_path(&self, fingerprint: Fingerprint) -> PathBuf {
        self.root
            .join("objects")
            .join(format!("{}.bin", fingerprint.to_hex()))
    }

    fn touch(&mut self, fingerprint: Fingerprint) {
        self.index.clock += 1;
        let clock = self.index.clock;
        if let Some(entry) = self.index.entries.get_mut(&fingerprint.to_hex()) {
            entry.last_used = clock;
        }
    }

    fn forget(&mut self, fingerprint: Fingerprint, path: &Path) {
        let _ = fs::remove_file(path);
        self.index.entries.remove(&fingerprint.to_hex());
    }

    fn evict_to_budget(&mut self) {
        let Some(budget) = self.max_bytes else {
            return;
        };
        while self.total_bytes() > budget {
            let Some(oldest) = self
                .index
                .entries
                .iter()
                .min_by_key(|(_, e)| e.last_used)
                .map(|(k, _)| k.clone())
            else {
                return;
            };
            let path = self.root.join("objects").join(format!("{oldest}.bin"));
            let _ = fs::remove_file(&path);
            self.index.entries.remove(&oldest);
            self.index.stats.evictions += 1;
        }
    }

    fn save_index(&self) {
        self.publish_metrics();
        let text = serde_json::to_string_pretty(&self.index)
            .expect("canonical serialization is infallible");
        let _ = write_atomic(&self.root.join("index.json"), text.as_bytes());
    }
}

/// Loads the index, rebuilding it from the objects directory when the file
/// is absent or unreadable (recency and counters are lost, objects are
/// not).
fn load_index(root: &Path) -> Index {
    let parsed = fs::read_to_string(root.join("index.json"))
        .ok()
        .and_then(|text| serde_json::from_str::<Index>(&text).ok());
    if let Some(index) = parsed {
        return index;
    }
    let mut index = Index::default();
    if let Ok(dir) = fs::read_dir(root.join("objects")) {
        for entry in dir.flatten() {
            let name = entry.file_name().to_string_lossy().into_owned();
            let Some(stem) = name.strip_suffix(".bin") else {
                continue;
            };
            if Fingerprint::from_hex(stem).is_none() {
                continue;
            }
            let bytes = entry.metadata().map(|m| m.len()).unwrap_or(0);
            index.entries.insert(
                stem.to_owned(),
                IndexEntry {
                    bytes,
                    last_used: 0,
                },
            );
        }
    }
    index
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::fingerprint::fingerprint_of;
    use crate::testutil::TempDir;

    #[test]
    fn get_after_put_hits() {
        let dir = TempDir::new("store_hit");
        let mut store = Store::open(dir.path()).unwrap();
        let value = vec![1u64, 2, 3];
        let fp = fingerprint_of(&value);
        assert!(store.get::<Vec<u64>>(fp).is_none());
        assert!(store.put(fp, &value));
        assert_eq!(store.get::<Vec<u64>>(fp), Some(value));
        let snap = store.metrics();
        assert_eq!(
            (
                snap.counter("strober.store.hits"),
                snap.counter("strober.store.misses")
            ),
            (Some(1), Some(1))
        );
    }

    #[test]
    fn reopen_preserves_objects_and_stats() {
        let dir = TempDir::new("store_reopen");
        let fp = Fingerprint(42);
        {
            let mut store = Store::open(dir.path()).unwrap();
            store.put(fp, &String::from("persisted"));
            store.get::<String>(fp).unwrap();
        }
        let mut store = Store::open(dir.path()).unwrap();
        assert_eq!(store.len(), 1);
        assert_eq!(store.get::<String>(fp).as_deref(), Some("persisted"));
        assert_eq!(
            store.metrics().counter("strober.store.hits"),
            Some(2),
            "stats accumulate across opens"
        );
    }

    #[test]
    fn lost_index_is_rebuilt_from_objects() {
        let dir = TempDir::new("store_lost_index");
        let fp = Fingerprint(7);
        {
            let mut store = Store::open(dir.path()).unwrap();
            store.put(fp, &123u64);
        }
        std::fs::write(dir.path().join("index.json"), b"not json at all").unwrap();
        let mut store = Store::open(dir.path()).unwrap();
        assert_eq!(store.len(), 1, "objects survive index loss");
        assert_eq!(store.get::<u64>(fp), Some(123));
    }

    #[test]
    fn clear_removes_everything() {
        let dir = TempDir::new("store_clear");
        let mut store = Store::open(dir.path()).unwrap();
        for i in 0..4u64 {
            store.put(Fingerprint(i), &i);
        }
        assert_eq!(store.clear().unwrap(), 4);
        assert!(store.is_empty());
        assert_eq!(store.total_bytes(), 0);
        let snap = store.metrics();
        for entry in &snap.counters {
            assert_eq!(entry.value, 0, "{} survives clear", entry.name);
        }
        assert_eq!(snap.gauge("strober.store.objects"), Some(0.0));
        assert!(store.get::<u64>(Fingerprint(0)).is_none());
    }
}

//! The on-disk artifact format.
//!
//! Every cached object is one binary file: a fixed 24-byte header followed
//! by the payload's [`serde::Blob`] encoding.
//!
//! ```text
//! offset  size  field
//!      0     4  magic  b"STRB"
//!      4     4  envelope version, u32 LE
//!      8     8  fingerprint (cache key), u64 LE
//!     16     8  FNV-1a checksum of the payload bytes, u64 LE
//!     24     —  payload (Blob encoding)
//! ```
//!
//! The `version` is the envelope format revision: any mismatch (older *or*
//! newer) makes the object unreadable and is reported as a miss, never an
//! error. The `fingerprint` is the cache key the object was stored under,
//! so a file renamed or copied to the wrong key is rejected. The `checksum`
//! is verified over the raw payload bytes before decoding is trusted, so a
//! truncated or bit-flipped file is rejected up front; only
//! checksum-clean bytes ever reach the decoder.
//!
//! Payloads use the binary codec rather than JSON because warm starts are
//! the entire point of the store: decoding a megabyte-scale netlist from
//! JSON costs more than re-running synthesis on small designs, which would
//! silently turn every "cache hit" into a slowdown.
//!
//! Writes go to a temporary sibling file and are atomically renamed into
//! place, so a crashed writer can never leave a half-written object under
//! a valid name.

use crate::fingerprint::{fingerprint_bytes, Fingerprint};
use serde::Blob;
use std::fs;
use std::io;
use std::path::Path;
use std::sync::atomic::{AtomicU64, Ordering};

/// File magic identifying a Strober artifact.
pub const ENVELOPE_MAGIC: [u8; 4] = *b"STRB";

/// Current envelope format revision.
pub const ENVELOPE_VERSION: u32 = 2;

/// Header length in bytes: magic + version + fingerprint + checksum.
const HEADER_LEN: usize = 24;

/// Why an on-disk object could not be used. All of these are cache misses;
/// the store counts them separately so operators can tell corruption from
/// format drift.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ReadFailure {
    /// File absent — a plain miss.
    Absent,
    /// Envelope version differs from [`ENVELOPE_VERSION`].
    VersionMismatch,
    /// Bad magic, checksum mismatch, fingerprint mismatch, or a payload
    /// that no longer decodes: the object is untrustworthy.
    Corrupt,
}

/// Serialises `payload` into an envelope and writes it atomically.
///
/// Returns the number of bytes written.
///
/// # Errors
///
/// Returns any I/O error from writing the temporary file or renaming it
/// into place (callers treat this as best-effort and degrade to uncached
/// operation).
pub fn write_object<T: Blob>(
    path: &Path,
    fingerprint: Fingerprint,
    payload: &T,
) -> io::Result<u64> {
    let mut bytes = Vec::with_capacity(HEADER_LEN + 4096);
    bytes.extend_from_slice(&ENVELOPE_MAGIC);
    bytes.extend_from_slice(&ENVELOPE_VERSION.to_le_bytes());
    bytes.extend_from_slice(&fingerprint.0.to_le_bytes());
    bytes.extend_from_slice(&[0u8; 8]); // checksum backpatched below
    payload.encode_blob(&mut bytes);
    let checksum = fingerprint_bytes(&bytes[HEADER_LEN..]);
    bytes[16..24].copy_from_slice(&checksum.0.to_le_bytes());

    write_atomic(path, &bytes)?;
    Ok(bytes.len() as u64)
}

/// Reads and verifies an object written by [`write_object`].
///
/// Every failure mode maps to a [`ReadFailure`] — this function never
/// panics on hostile file contents and never surfaces an error type the
/// caller might be tempted to propagate.
pub fn read_object<T: Blob>(path: &Path, expected: Fingerprint) -> Result<T, ReadFailure> {
    let bytes = match fs::read(path) {
        Ok(bytes) => bytes,
        Err(e) if e.kind() == io::ErrorKind::NotFound => return Err(ReadFailure::Absent),
        Err(_) => return Err(ReadFailure::Corrupt),
    };
    if bytes.len() < HEADER_LEN || bytes[..4] != ENVELOPE_MAGIC {
        return Err(ReadFailure::Corrupt);
    }

    let field = |at: usize| -> [u8; 8] { bytes[at..at + 8].try_into().expect("header sized") };
    let version = u32::from_le_bytes(bytes[4..8].try_into().expect("header sized"));
    if version != ENVELOPE_VERSION {
        return Err(ReadFailure::VersionMismatch);
    }
    if Fingerprint(u64::from_le_bytes(field(8))) != expected {
        return Err(ReadFailure::Corrupt);
    }
    let checksum = Fingerprint(u64::from_le_bytes(field(16)));
    let payload = &bytes[HEADER_LEN..];
    if fingerprint_bytes(payload) != checksum {
        return Err(ReadFailure::Corrupt);
    }

    serde::from_blob(payload).map_err(|_| ReadFailure::Corrupt)
}

/// Writes `bytes` to `path` via a unique temporary sibling + rename, so
/// concurrent writers and crashes cannot produce a torn file.
pub fn write_atomic(path: &Path, bytes: &[u8]) -> io::Result<()> {
    static COUNTER: AtomicU64 = AtomicU64::new(0);
    let n = COUNTER.fetch_add(1, Ordering::Relaxed);
    let dir = path.parent().unwrap_or_else(|| Path::new("."));
    fs::create_dir_all(dir)?;
    let tmp = dir.join(format!(
        ".tmp.{}.{n}.{}",
        std::process::id(),
        path.file_name()
            .map(|f| f.to_string_lossy().into_owned())
            .unwrap_or_default()
    ));
    let result = fs::write(&tmp, bytes).and_then(|()| fs::rename(&tmp, path));
    if result.is_err() {
        let _ = fs::remove_file(&tmp);
    }
    result
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::fingerprint::fingerprint_of;
    use crate::testutil::TempDir;

    #[test]
    fn round_trip() {
        let dir = TempDir::new("envelope_round_trip");
        let path = dir.path().join("obj.bin");
        let value = vec![(String::from("a"), 1u64), (String::from("b"), 2)];
        let fp = fingerprint_of(&value);
        write_object(&path, fp, &value).unwrap();
        let back: Vec<(String, u64)> = read_object(&path, fp).unwrap();
        assert_eq!(back, value);
    }

    #[test]
    fn absent_is_a_plain_miss() {
        let dir = TempDir::new("envelope_absent");
        let err = read_object::<u64>(&dir.path().join("missing.bin"), Fingerprint(1));
        assert_eq!(err.unwrap_err(), ReadFailure::Absent);
    }

    #[test]
    fn wrong_fingerprint_is_corrupt() {
        let dir = TempDir::new("envelope_wrong_fp");
        let path = dir.path().join("obj.bin");
        write_object(&path, Fingerprint(7), &42u64).unwrap();
        let err = read_object::<u64>(&path, Fingerprint(8));
        assert_eq!(err.unwrap_err(), ReadFailure::Corrupt);
    }

    #[test]
    fn future_version_is_a_version_mismatch() {
        let dir = TempDir::new("envelope_version");
        let path = dir.path().join("obj.bin");
        write_object(&path, Fingerprint(7), &42u64).unwrap();
        let mut bytes = std::fs::read(&path).unwrap();
        bytes[4..8].copy_from_slice(&(ENVELOPE_VERSION + 1).to_le_bytes());
        std::fs::write(&path, bytes).unwrap();
        let err = read_object::<u64>(&path, Fingerprint(7));
        assert_eq!(err.unwrap_err(), ReadFailure::VersionMismatch);
    }

    #[test]
    fn bad_magic_is_corrupt() {
        let dir = TempDir::new("envelope_magic");
        let path = dir.path().join("obj.bin");
        write_object(&path, Fingerprint(7), &42u64).unwrap();
        let mut bytes = std::fs::read(&path).unwrap();
        bytes[0] = b'X';
        std::fs::write(&path, bytes).unwrap();
        let err = read_object::<u64>(&path, Fingerprint(7));
        assert_eq!(err.unwrap_err(), ReadFailure::Corrupt);
    }
}

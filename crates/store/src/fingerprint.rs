//! Stable content fingerprints.
//!
//! Cache keys must be identical across processes and machine reboots, so
//! they cannot come from [`std::collections::hash_map::DefaultHasher`]
//! (SipHash with per-process random keys). Instead a fingerprint is the
//! 64-bit FNV-1a hash of a value's *canonical serialization*: the compact
//! JSON text of its [`serde::Value`] tree. Object keys are sorted and
//! unordered collections are serialised in a canonical order (see the
//! vendored `serde`), so any two processes that would produce equal
//! artifacts derive equal fingerprints.

use serde::Serialize;
use std::fmt;

/// 64-bit FNV-1a offset basis.
const FNV_OFFSET: u64 = 0xcbf2_9ce4_8422_2325;
/// 64-bit FNV-1a prime.
const FNV_PRIME: u64 = 0x0000_0100_0000_01b3;

/// An incremental FNV-1a hasher over bytes.
///
/// Deliberately minimal: the store only needs a stable, well-distributed
/// 64-bit digest, not cryptographic strength.
#[derive(Debug, Clone)]
pub struct Fnv1a {
    state: u64,
}

impl Default for Fnv1a {
    fn default() -> Self {
        Fnv1a { state: FNV_OFFSET }
    }
}

impl Fnv1a {
    /// Starts a fresh hasher.
    pub fn new() -> Self {
        Self::default()
    }

    /// Absorbs bytes.
    pub fn write(&mut self, bytes: &[u8]) {
        for &b in bytes {
            self.state ^= u64::from(b);
            self.state = self.state.wrapping_mul(FNV_PRIME);
        }
    }

    /// The digest so far.
    pub fn finish(&self) -> u64 {
        self.state
    }
}

/// A stable 64-bit content fingerprint.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct Fingerprint(pub u64);

impl Fingerprint {
    /// The fingerprint as a fixed-width lowercase hex string, used as the
    /// on-disk object file stem.
    pub fn to_hex(self) -> String {
        format!("{:016x}", self.0)
    }

    /// Parses a fixed-width hex string produced by [`Fingerprint::to_hex`].
    pub fn from_hex(hex: &str) -> Option<Self> {
        if hex.len() != 16 {
            return None;
        }
        u64::from_str_radix(hex, 16).ok().map(Fingerprint)
    }
}

impl fmt::Display for Fingerprint {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.to_hex())
    }
}

/// Hashes raw bytes.
pub fn fingerprint_bytes(bytes: &[u8]) -> Fingerprint {
    let mut h = Fnv1a::new();
    h.write(bytes);
    Fingerprint(h.finish())
}

/// Fingerprints one serialisable value through its canonical serialization.
pub fn fingerprint_of<T: Serialize + ?Sized>(value: &T) -> Fingerprint {
    let text = serde_json::to_string(value).expect("canonical serialization is infallible");
    fingerprint_bytes(text.as_bytes())
}

/// Fingerprints a sequence of serialisable parts as one key.
///
/// Each part's canonical text is hashed with a length prefix and separator
/// so distinct part splits cannot collide by concatenation.
pub fn fingerprint_parts(parts: &[&dyn erased::ErasedSerialize]) -> Fingerprint {
    let mut h = Fnv1a::new();
    for part in parts {
        let text = serde_json::to_string(&part.erased_to_value())
            .expect("canonical serialization is infallible");
        h.write(&(text.len() as u64).to_le_bytes());
        h.write(text.as_bytes());
        h.write(b"\x1f");
    }
    Fingerprint(h.finish())
}

/// Object-safe serialization shim so [`fingerprint_parts`] can take a
/// heterogeneous list of parts.
pub mod erased {
    use serde::{Serialize, Value};

    /// Object-safe mirror of [`serde::Serialize`].
    pub trait ErasedSerialize {
        /// Converts to a canonical value tree.
        fn erased_to_value(&self) -> Value;
    }

    impl<T: Serialize> ErasedSerialize for T {
        fn erased_to_value(&self) -> Value {
            self.to_value()
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fnv_vectors() {
        // Published FNV-1a test vectors.
        assert_eq!(fingerprint_bytes(b"").0, FNV_OFFSET);
        assert_eq!(fingerprint_bytes(b"a").0, 0xaf63_dc4c_8601_ec8c);
        assert_eq!(fingerprint_bytes(b"foobar").0, 0x85944171f73967e8);
    }

    #[test]
    fn hex_round_trip() {
        let fp = fingerprint_bytes(b"strober");
        assert_eq!(Fingerprint::from_hex(&fp.to_hex()), Some(fp));
        assert_eq!(Fingerprint::from_hex("xyz"), None);
        assert_eq!(Fingerprint::from_hex(""), None);
    }

    #[test]
    fn parts_are_length_prefixed() {
        let a = fingerprint_parts(&[&"ab", &"c"]);
        let b = fingerprint_parts(&[&"a", &"bc"]);
        assert_ne!(a, b, "part boundaries must be part of the key");
    }

    #[test]
    fn value_equality_implies_fingerprint_equality() {
        use std::collections::HashMap;
        let mut m1 = HashMap::new();
        let mut m2 = HashMap::new();
        for i in 0..32u32 {
            m1.insert(format!("k{i}"), i);
        }
        for i in (0..32u32).rev() {
            m2.insert(format!("k{i}"), i);
        }
        assert_eq!(fingerprint_of(&m1), fingerprint_of(&m2));
    }
}

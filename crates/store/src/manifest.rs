//! Run manifests: a JSON record of one end-to-end Strober invocation.
//!
//! A manifest names the design and workload, the cache key the prepared
//! artifacts were stored under, whether preparation was served warm, and
//! the wall-clock time of each pipeline stage (prepare / sim / replay /
//! power). The CLI writes one per run so speedups and regressions can be
//! diffed across invocations without re-parsing logs.

use crate::envelope::write_atomic;
use std::io;
use std::path::Path;
use std::time::Duration;

/// One timed pipeline stage.
#[derive(Debug, Clone, PartialEq, serde::Serialize, serde::Deserialize)]
pub struct StageTiming {
    /// Stage name (`prepare`, `sim`, `replay`, `power`, ...).
    pub name: String,
    /// Wall-clock milliseconds spent in the stage.
    pub millis: f64,
}

/// The JSON run record.
#[derive(Debug, Clone, Default, PartialEq, serde::Serialize, serde::Deserialize)]
pub struct RunManifest {
    /// Target design name.
    pub design: String,
    /// Workload description (program name or image path).
    pub workload: String,
    /// Cache key of the prepared artifacts, as hex.
    pub fingerprint: String,
    /// Whether preparation was served from the artifact store.
    pub cache_hit: bool,
    /// Per-stage wall-clock timings, in execution order.
    pub stages: Vec<StageTiming>,
}

impl RunManifest {
    /// Starts a manifest for one run.
    pub fn new(design: impl Into<String>, workload: impl Into<String>) -> Self {
        RunManifest {
            design: design.into(),
            workload: workload.into(),
            ..RunManifest::default()
        }
    }

    /// Appends a stage timing.
    pub fn record(&mut self, name: impl Into<String>, elapsed: Duration) {
        self.stages.push(StageTiming {
            name: name.into(),
            millis: elapsed.as_secs_f64() * 1e3,
        });
    }

    /// Looks up a recorded stage by name.
    pub fn stage_millis(&self, name: &str) -> Option<f64> {
        self.stages
            .iter()
            .find(|s| s.name == name)
            .map(|s| s.millis)
    }

    /// Total recorded wall-clock milliseconds.
    pub fn total_millis(&self) -> f64 {
        self.stages.iter().map(|s| s.millis).sum()
    }

    /// Pretty JSON text of the manifest.
    pub fn to_json(&self) -> String {
        serde_json::to_string_pretty(self).expect("canonical serialization is infallible")
    }

    /// Parses a manifest from JSON text.
    ///
    /// # Errors
    ///
    /// Returns the underlying JSON error for malformed input.
    pub fn from_json(text: &str) -> Result<Self, serde_json::Error> {
        serde_json::from_str(text)
    }

    /// Writes the manifest atomically.
    ///
    /// # Errors
    ///
    /// Returns any I/O error from the write or rename.
    pub fn save(&self, path: &Path) -> io::Result<()> {
        write_atomic(path, self.to_json().as_bytes())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::testutil::TempDir;

    #[test]
    fn manifest_round_trips_through_json() {
        let mut manifest = RunManifest::new("rok", "vvadd(192)");
        manifest.fingerprint = String::from("00117a5e57a0be55");
        manifest.cache_hit = true;
        manifest.record("prepare", Duration::from_millis(12));
        manifest.record("sim", Duration::from_millis(340));
        manifest.record("replay", Duration::from_millis(95));
        manifest.record("power", Duration::from_millis(3));
        let back = RunManifest::from_json(&manifest.to_json()).unwrap();
        assert_eq!(back, manifest);
        assert_eq!(back.stage_millis("sim"), Some(340.0));
        assert!((back.total_millis() - 450.0).abs() < 1e-9);
    }

    #[test]
    fn manifest_saves_to_disk() {
        let dir = TempDir::new("manifest_save");
        let path = dir.path().join("run.json");
        let mut manifest = RunManifest::new("boum-2w", "dhrystone");
        manifest.record("prepare", Duration::from_secs(1));
        manifest.save(&path).unwrap();
        let text = std::fs::read_to_string(&path).unwrap();
        let back = RunManifest::from_json(&text).unwrap();
        assert_eq!(back, manifest);
    }
}

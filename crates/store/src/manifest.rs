//! Run manifests: a JSON record of one end-to-end Strober invocation.
//!
//! A manifest names the design and workload, the cache key the prepared
//! artifacts were stored under, whether preparation was served warm, the
//! wall-clock time of each pipeline stage (derived from probe spans via
//! [`RunManifest::record_spans`]) and the run's full metrics snapshot.
//! The CLI writes one per run so speedups and regressions can be diffed
//! across invocations without re-parsing logs.

use crate::envelope::write_atomic;
use std::io;
use std::path::Path;
use std::time::Duration;

/// Manifest schema version. Bumped to 2 when the `version` and `metrics`
/// fields were added and stage timings moved to span-derived values;
/// bumped to 3 when the estimation server landed and manifests grew job
/// provenance (`job`) and prepare provenance (`prepare`); bumped to 4
/// when the telemetry layer added worker attribution (`job.worker`) and
/// the metrics snapshot started carrying labeled per-job series; bumped
/// to 5 when confidence-driven adaptive sampling landed and manifests
/// grew the `sampling` outcome (stop reason, target and achieved ε);
/// bumped to 6 when tape-to-native codegen landed and manifests grew
/// the `hub_engine` name plus the `jit` codegen provenance
/// (cold/warm/store, compile wall-time).
/// Older documents no longer parse: every field is required.
pub const MANIFEST_VERSION: u32 = 6;

/// Which job a served run belonged to — absent for one-shot CLI runs.
#[derive(Debug, Clone, PartialEq, serde::Serialize, serde::Deserialize)]
pub struct JobProvenance {
    /// Server-assigned job id.
    pub id: u64,
    /// Submitting client's display name.
    pub client: String,
    /// Milliseconds the job waited in the queue before a worker
    /// picked it up.
    pub queue_wait_ms: f64,
    /// Index of the server worker that executed the job (the `worker`
    /// label of the run's dimensional metrics).
    pub worker: String,
}

/// How the run's sampling ended — stop reason plus the adaptive
/// stopping rule's target and achieved relative error (both absent for
/// runs without adaptive stopping).
#[derive(Debug, Clone, Default, PartialEq, serde::Serialize, serde::Deserialize)]
pub struct SamplingOutcome {
    /// Why the sampled simulation stopped: `workload-done`, `max-cycles`
    /// or `converged`.
    pub stop_reason: String,
    /// The requested target relative error ε, when adaptive stopping was
    /// enabled.
    pub target_epsilon: Option<f64>,
    /// The relative error bound achieved over the final sample, when
    /// adaptive stopping was enabled.
    pub achieved_epsilon: Option<f64>,
}

/// How the run's JIT-compiled settle engine was served — absent for
/// runs on the interpreted engines.
#[derive(Debug, Clone, Default, PartialEq, serde::Serialize, serde::Deserialize)]
pub struct CodegenProvenance {
    /// Where the compiled dylib came from: `cold` (`rustc` ran this
    /// session), `warm` (compile cache hit on disk) or `store` (artifact
    /// store hit).
    pub provenance: String,
    /// Wall-clock milliseconds the `rustc` invocation took when the
    /// dylib was first compiled (0 only if the compile was immeasurably
    /// fast).
    pub compile_ms: u64,
}

/// One timed pipeline stage.
#[derive(Debug, Clone, PartialEq, serde::Serialize, serde::Deserialize)]
pub struct StageTiming {
    /// Stage name (`prepare`, `sim`, `replay`, `power`, ...).
    pub name: String,
    /// Wall-clock milliseconds spent in the stage.
    pub millis: f64,
}

/// The JSON run record.
#[derive(Debug, Clone, Default, PartialEq, serde::Serialize, serde::Deserialize)]
pub struct RunManifest {
    /// Schema version ([`MANIFEST_VERSION`] for manifests written by this
    /// build).
    pub version: u32,
    /// Target design name.
    pub design: String,
    /// Workload description (program name or image path).
    pub workload: String,
    /// Cache key of the prepared artifacts, as hex.
    pub fingerprint: String,
    /// Whether preparation was served from a cache (`prepare` says
    /// which): `prepare != "cold"`.
    pub cache_hit: bool,
    /// How preparation was served: `cold` (full
    /// transform/synthesis/matching), `store` (artifact store hit) or
    /// `warm` (in-memory prepared flow reused by a long-lived server).
    pub prepare: String,
    /// Job provenance, for runs executed by the estimation server.
    pub job: Option<JobProvenance>,
    /// How sampling ended — absent only for runs that never reached the
    /// sampled simulation (e.g. failed during prepare).
    pub sampling: Option<SamplingOutcome>,
    /// The hub settle engine the sampled simulation ran under, after any
    /// fallback: `tape`, `tape-partitioned` or `tape-jit`.
    pub hub_engine: String,
    /// Codegen provenance, for runs on the JIT engine.
    pub jit: Option<CodegenProvenance>,
    /// Per-stage wall-clock timings, in execution order.
    pub stages: Vec<StageTiming>,
    /// Every metric the probe registry held at the end of the run.
    pub metrics: strober_probe::MetricsSnapshot,
}

impl RunManifest {
    /// Starts a manifest for one run.
    pub fn new(design: impl Into<String>, workload: impl Into<String>) -> Self {
        RunManifest {
            version: MANIFEST_VERSION,
            design: design.into(),
            workload: workload.into(),
            prepare: "cold".to_owned(),
            hub_engine: "tape".to_owned(),
            ..RunManifest::default()
        }
    }

    /// Records how preparation was served (`cold`, `store`, `warm`),
    /// keeping the boolean `cache_hit` consistent.
    pub fn set_prepare(&mut self, provenance: impl Into<String>) {
        self.prepare = provenance.into();
        self.cache_hit = self.prepare != "cold";
    }

    /// Appends a stage timing.
    pub fn record(&mut self, name: impl Into<String>, elapsed: Duration) {
        self.stages.push(StageTiming {
            name: name.into(),
            millis: elapsed.as_secs_f64() * 1e3,
        });
    }

    /// Derives stage timings from recorded probe spans: every *top-level*
    /// span (nesting depth 0) of the orchestrating thread becomes one
    /// stage, named by the last dot-segment of the span name
    /// (`strober.core.prepare` → `prepare`), in completion order.
    /// Repeated spans merge by summing durations. Worker threads'
    /// top-level spans (parallel replay) are excluded — they remain
    /// visible in the trace and profile, but are not pipeline stages.
    /// Unlike hand-placed `Instant::now()` pairs, these timings measure
    /// exactly the instrumented region and agree with the exported
    /// chrome trace.
    pub fn record_spans(&mut self, events: &[strober_probe::SpanEvent]) {
        // The orchestrating thread completes the first span: worker
        // threads only exist inside an already-open stage span.
        let Some(main_tid) = events.iter().min_by_key(|e| e.seq).map(|e| e.tid) else {
            return;
        };
        for event in events.iter().filter(|e| e.depth == 0 && e.tid == main_tid) {
            let name = event.name.rsplit('.').next().unwrap_or(&event.name);
            let millis = event.dur_us as f64 / 1e3;
            match self.stages.iter_mut().find(|s| s.name == name) {
                Some(stage) => stage.millis += millis,
                None => self.stages.push(StageTiming {
                    name: name.to_owned(),
                    millis,
                }),
            }
        }
    }

    /// Looks up a recorded stage by name.
    pub fn stage_millis(&self, name: &str) -> Option<f64> {
        self.stages
            .iter()
            .find(|s| s.name == name)
            .map(|s| s.millis)
    }

    /// Total recorded wall-clock milliseconds.
    pub fn total_millis(&self) -> f64 {
        self.stages.iter().map(|s| s.millis).sum()
    }

    /// Pretty JSON text of the manifest.
    pub fn to_json(&self) -> String {
        serde_json::to_string_pretty(self).expect("canonical serialization is infallible")
    }

    /// Parses a manifest from JSON text.
    ///
    /// # Errors
    ///
    /// Returns the underlying JSON error for malformed input.
    pub fn from_json(text: &str) -> Result<Self, serde_json::Error> {
        serde_json::from_str(text)
    }

    /// Writes the manifest atomically.
    ///
    /// # Errors
    ///
    /// Returns any I/O error from the write or rename.
    pub fn save(&self, path: &Path) -> io::Result<()> {
        write_atomic(path, self.to_json().as_bytes())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::testutil::TempDir;

    #[test]
    fn manifest_round_trips_through_json() {
        let mut manifest = RunManifest::new("rok", "vvadd(192)");
        manifest.fingerprint = String::from("00117a5e57a0be55");
        manifest.cache_hit = true;
        manifest.record("prepare", Duration::from_millis(12));
        manifest.record("sim", Duration::from_millis(340));
        manifest.record("replay", Duration::from_millis(95));
        manifest.record("power", Duration::from_millis(3));
        let back = RunManifest::from_json(&manifest.to_json()).unwrap();
        assert_eq!(back, manifest);
        assert_eq!(back.stage_millis("sim"), Some(340.0));
        assert!((back.total_millis() - 450.0).abs() < 1e-9);
    }

    #[test]
    fn schema_version_is_bumped_and_enforced() {
        let manifest = RunManifest::new("rok", "vvadd");
        assert_eq!(manifest.version, MANIFEST_VERSION);
        assert_eq!(MANIFEST_VERSION, 6, "bump this test with the schema");
        let text = manifest.to_json();
        assert!(text.contains("\"version\""));
        assert!(text.contains("\"metrics\""));
        assert!(text.contains("\"prepare\""));
        assert!(text.contains("\"job\""));
        // A version-1 document predates the `version` and `metrics`
        // fields; it must be rejected, not silently half-parsed.
        let v1 = r#"{
            "design": "rok",
            "workload": "vvadd",
            "fingerprint": "00117a5e57a0be55",
            "cache_hit": false,
            "stages": []
        }"#;
        assert!(RunManifest::from_json(v1).is_err());
        // A version-2 document predates the provenance fields; it must
        // be rejected too.
        let v2 = r#"{
            "version": 2,
            "design": "rok",
            "workload": "vvadd",
            "fingerprint": "00117a5e57a0be55",
            "cache_hit": false,
            "stages": [],
            "metrics": {"counters": [], "gauges": [], "histograms": []}
        }"#;
        assert!(RunManifest::from_json(v2).is_err());
        // A version-3 document's job provenance predates worker
        // attribution; a served manifest without it must be rejected.
        let v3 = r#"{
            "version": 3,
            "design": "rok",
            "workload": "vvadd",
            "fingerprint": "00117a5e57a0be55",
            "cache_hit": false,
            "prepare": "cold",
            "job": {"id": 1, "client": "ci", "queue_wait_ms": 0.5},
            "stages": [],
            "metrics": {"counters": [], "gauges": [], "histograms": []}
        }"#;
        assert!(RunManifest::from_json(v3).is_err());
        // A version-4 document predates the sampling outcome; it must be
        // rejected.
        let v4 = r#"{
            "version": 4,
            "design": "rok",
            "workload": "vvadd",
            "fingerprint": "00117a5e57a0be55",
            "cache_hit": false,
            "prepare": "cold",
            "job": null,
            "stages": [],
            "metrics": {"counters": [], "gauges": [], "histograms": []}
        }"#;
        assert!(RunManifest::from_json(v4).is_err());
        // A version-5 document predates the hub-engine and codegen
        // provenance fields; it must be rejected.
        let v5 = r#"{
            "version": 5,
            "design": "rok",
            "workload": "vvadd",
            "fingerprint": "00117a5e57a0be55",
            "cache_hit": false,
            "prepare": "cold",
            "job": null,
            "sampling": null,
            "stages": [],
            "metrics": {"counters": [], "gauges": [], "histograms": []}
        }"#;
        assert!(RunManifest::from_json(v5).is_err());
    }

    #[test]
    fn codegen_provenance_round_trips() {
        let mut manifest = RunManifest::new("rok", "vvadd");
        assert_eq!(manifest.hub_engine, "tape");
        assert_eq!(manifest.jit, None);
        manifest.hub_engine = "tape-jit".to_owned();
        manifest.jit = Some(CodegenProvenance {
            provenance: "store".to_owned(),
            compile_ms: 412,
        });
        let back = RunManifest::from_json(&manifest.to_json()).unwrap();
        assert_eq!(back, manifest);
        assert_eq!(back.hub_engine, "tape-jit");
        assert_eq!(back.jit.unwrap().compile_ms, 412);
    }

    #[test]
    fn sampling_outcome_round_trips() {
        let mut manifest = RunManifest::new("rok", "vvadd");
        manifest.sampling = Some(SamplingOutcome {
            stop_reason: "converged".to_owned(),
            target_epsilon: Some(0.05),
            achieved_epsilon: Some(0.031),
        });
        let back = RunManifest::from_json(&manifest.to_json()).unwrap();
        assert_eq!(back, manifest);
        let sampling = back.sampling.unwrap();
        assert_eq!(sampling.stop_reason, "converged");
        assert_eq!(sampling.achieved_epsilon, Some(0.031));
    }

    #[test]
    fn job_and_prepare_provenance_round_trip() {
        let mut manifest = RunManifest::new("rok", "vvadd");
        assert_eq!(manifest.prepare, "cold");
        assert!(!manifest.cache_hit);
        assert_eq!(manifest.job, None);
        manifest.set_prepare("warm");
        manifest.job = Some(JobProvenance {
            id: 42,
            client: "ci-runner".to_owned(),
            queue_wait_ms: 12.5,
            worker: "1".to_owned(),
        });
        assert!(manifest.cache_hit);
        let back = RunManifest::from_json(&manifest.to_json()).unwrap();
        assert_eq!(back, manifest);
        assert_eq!(back.job.as_ref().unwrap().id, 42);
        assert_eq!(back.prepare, "warm");
    }

    #[test]
    fn record_spans_derives_stages_from_top_level_spans() {
        let mk =
            |name: &str, tid: u64, depth: u32, seq: u64, dur_us: u64| strober_probe::SpanEvent {
                name: name.to_owned(),
                tid,
                depth,
                seq,
                start_us: 0,
                dur_us,
            };
        let events = vec![
            // Nested spans must not become stages of their own.
            mk("strober.synth.lower", 0, 1, 0, 1_500),
            mk("strober.core.prepare", 0, 0, 1, 2_000),
            mk("strober.core.run_sampled", 0, 0, 2, 40_000),
            // Worker-thread top-level spans are not pipeline stages.
            mk("strober.core.replay_worker.0", 3, 0, 3, 900),
            // Repeated top-level spans merge into one stage.
            mk("strober.core.replay_sample", 0, 0, 4, 600),
            mk("strober.core.replay_sample", 0, 0, 5, 400),
        ];
        let mut manifest = RunManifest::new("rok", "vvadd");
        manifest.record_spans(&events);
        assert_eq!(manifest.stages.len(), 3);
        assert_eq!(manifest.stage_millis("prepare"), Some(2.0));
        assert_eq!(manifest.stage_millis("run_sampled"), Some(40.0));
        assert_eq!(manifest.stage_millis("replay_sample"), Some(1.0));
        assert_eq!(manifest.stage_millis("lower"), None);
        assert_eq!(manifest.stage_millis("0"), None, "no worker stages");
    }

    #[test]
    fn manifest_saves_to_disk() {
        let dir = TempDir::new("manifest_save");
        let path = dir.path().join("run.json");
        let mut manifest = RunManifest::new("boum-2w", "dhrystone");
        manifest.record("prepare", Duration::from_secs(1));
        manifest.save(&path).unwrap();
        let text = std::fs::read_to_string(&path).unwrap();
        let back = RunManifest::from_json(&text).unwrap();
        assert_eq!(back, manifest);
    }
}

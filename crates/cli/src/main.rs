//! `strober` — the command-line driver for sample-based energy simulation
//! of the bundled processor designs and workloads.

mod args;

use args::{
    default_cache_dir, BenchArgs, CacheAction, CacheArgs, CancelArgs, Command, EstimateArgs,
    ExportArgs, FuzzArgs, JobsArgs, ProbeArgs, RunArgs, ServeArgs, SubmitArgs, TopArgs, HELP,
};
use std::process::ExitCode;
use strober::{HubEngine, RunControl, StoppingRule, StroberConfig, StroberFlow};
use strober_cores::build_core;
use strober_dram::{DramConfig, DramModel, LpddrPowerParams};
use strober_isa::programs;
use strober_server::catalog::{self, core_config};
use strober_server::protocol::{
    EstimateSpec, Event, FuzzSpec, JobResult, JobSpec, Priority, Request, Response,
};
use strober_server::{Client, Server, ServerConfig};
use strober_store::{CodegenProvenance, RunManifest, SamplingOutcome, Store};

/// Resolves a workload reference the way the CLI spells it: `--asm` is a
/// *path* read from disk, then assembled via the same catalog the server
/// uses for inline sources.
fn load_image(workload: &str, asm: &Option<String>) -> Result<Vec<u32>, String> {
    let inline = read_asm(asm)?;
    catalog::image_for(workload, &inline)
}

/// Reads an `--asm FILE` argument into inline assembly text.
fn read_asm(asm: &Option<String>) -> Result<Option<String>, String> {
    asm.as_ref()
        .map(|path| std::fs::read_to_string(path).map_err(|e| format!("cannot read `{path}`: {e}")))
        .transpose()
}

fn cmd_run(a: &RunArgs) -> Result<(), String> {
    let config = core_config(&a.core)?;
    let image = load_image(&a.workload, &a.asm)?;
    let design = build_core(&config);
    let mut sim = strober_sim_new(&design)?;
    let mut dram = DramModel::new(DramConfig::default(), programs::MEM_BYTES);
    dram.load(&image, 0);
    let t0 = std::time::Instant::now();
    let mut cycles = 0u64;
    while cycles < a.max_cycles && dram.exit_code().is_none() {
        dram.tick_raw(&mut sim);
        cycles += 1;
    }
    let Some(exit) = dram.exit_code() else {
        return Err(format!(
            "workload did not halt within {} cycles",
            a.max_cycles
        ));
    };
    let instret = dram.instret();
    println!("core:      {}", config.name);
    println!("cycles:    {cycles}");
    println!("instret:   {instret}");
    println!("CPI:       {:.3}", cycles as f64 / instret as f64);
    println!("exit code: {exit:#x}");
    if !dram.console().is_empty() {
        println!("console:   {}", String::from_utf8_lossy(dram.console()));
    }
    println!(
        "host:      {:.2} s ({:.0} cycles/s)",
        t0.elapsed().as_secs_f64(),
        cycles as f64 / t0.elapsed().as_secs_f64()
    );
    Ok(())
}

fn strober_sim_new(design: &strober_rtl::Design) -> Result<strober_sim::Simulator, String> {
    strober_sim::Simulator::new(design).map_err(|e| format!("invalid design: {e}"))
}

/// Opens the artifact store for an estimate run, or `None` when caching is
/// disabled or the store directory is unusable (degrades to a cold run).
fn open_store(a: &EstimateArgs) -> Option<Store> {
    if a.no_cache {
        return None;
    }
    let dir = a.cache_dir.clone().unwrap_or_else(default_cache_dir);
    match Store::open(&dir) {
        Ok(store) => Some(store),
        Err(e) => {
            strober_probe::warn!("cannot open artifact store at `{dir}`: {e}; running cold");
            None
        }
    }
}

fn cmd_estimate(a: &EstimateArgs) -> Result<(), String> {
    let config = core_config(&a.core)?;
    let image = load_image(&a.workload, &a.asm)?;
    let design = build_core(&config);
    let mut session = StroberConfig {
        replay_length: a.replay_length,
        sample_size: a.samples,
        seed: a.seed,
        ..StroberConfig::default()
    };
    session.platform.tape_opt = !a.no_tape_opt;
    session.platform.hub_threads = a.hub_threads;
    session.platform.hub_engine =
        HubEngine::from_name(&a.hub_engine).expect("validated by the arg parser");
    session.platform.target_error = a.target_error;
    session.platform.min_samples = a.min_samples;
    let mut manifest = RunManifest::new(
        config.name.clone(),
        a.asm.clone().unwrap_or_else(|| a.workload.clone()),
    );
    manifest.fingerprint = StroberFlow::prepare_fingerprint(&design, &session).to_hex();

    // The estimate flow always records: the manifest's stage timings,
    // --trace-out and --metrics all read from the recorder, and at CLI
    // granularity its cost is far below measurement noise.
    strober_probe::reset();
    strober_probe::enable();

    strober_probe::info!(
        "[1/4] instrumenting, synthesizing and formally matching {} ...",
        config.name
    );
    let mut store = open_store(a);
    let (flow, cache_hit) = match store.as_mut() {
        Some(store) => StroberFlow::prepare_cached(&design, session, store)
            .map_err(|e| format!("flow setup failed: {e}"))?,
        None => (
            StroberFlow::new(&design, session).map_err(|e| format!("flow setup failed: {e}"))?,
            false,
        ),
    };
    manifest.set_prepare(if cache_hit { "store" } else { "cold" });
    if cache_hit {
        strober_probe::info!("      (prepared artifacts served from the store)");
    }
    // With --hub-engine jit, compile (or fetch) the native settle dylib
    // up front so the cost is attributed to preparation, not the first
    // simulated window; a no-op for every other engine.
    if let Some((provenance, compile_ms)) = flow.prepare_jit(store.as_mut()) {
        strober_probe::info!(
            "      (native settle engine ready: {provenance}, compile {compile_ms} ms)"
        );
    }

    let mut dram = DramModel::new(DramConfig::default(), programs::MEM_BYTES);
    dram.load(&image, 0);
    let (run, results) = if a.stream || a.target_error > 0.0 {
        strober_probe::info!(
            "[2/4] streaming simulation with overlapped gate-level replay \
             ({} workers x {} bit-lanes) ...",
            a.parallel,
            a.batch_lanes
        );
        let rule = if a.target_error > 0.0 {
            Some(
                StoppingRule::new(a.target_error, flow.config().confidence, a.min_samples)
                    .map_err(|e| format!("invalid stopping rule: {e}"))?,
            )
        } else {
            None
        };
        let (run, results) = flow
            .replay_streaming(
                &mut dram,
                a.max_cycles,
                a.parallel,
                a.batch_lanes,
                rule,
                &RunControl::default(),
            )
            .map_err(|e| format!("streaming run failed: {e}"))?;
        if dram.exit_code().is_none() && !run.stop.is_converged() {
            return Err(format!(
                "workload did not halt within {} cycles",
                a.max_cycles
            ));
        }
        strober_probe::info!(
            "[3/4] replay of {} snapshots already overlapped with simulation ({})",
            results.len(),
            run.stop.as_str()
        );
        (run, results)
    } else {
        strober_probe::info!("[2/4] fast simulation with reservoir sampling ...");
        let run = flow
            .run_sampled(&mut dram, a.max_cycles)
            .map_err(|e| format!("sampled run failed: {e}"))?;
        if dram.exit_code().is_none() {
            return Err(format!(
                "workload did not halt within {} cycles",
                a.max_cycles
            ));
        }

        strober_probe::info!(
            "[3/4] replaying {} snapshots on gate-level simulation ({} workers x {} bit-lanes) ...",
            run.snapshots.len(),
            a.parallel,
            a.batch_lanes
        );
        let results = flow
            .replay_all_batched(&run.snapshots, a.parallel, a.batch_lanes)
            .map_err(|e| format!("replay failed: {e}"))?;
        (run, results)
    };

    strober_probe::info!("[4/4] estimating ...");
    let estimate = flow
        .estimate(&run, &results)
        .map_err(|e| format!("estimate failed: {e}"))?;
    let instret = dram.instret();
    let dram_power = LpddrPowerParams::lpddr2_s4()
        .average_power_mw(dram.counters(), run.target_cycles, flow.config().freq_hz)
        .total_mw();
    let achieved_epsilon = match run.stop {
        strober::StopReason::Converged { achieved, .. } => Some(achieved),
        _ => None,
    };
    manifest.sampling = Some(SamplingOutcome {
        stop_reason: run.stop.as_str().to_owned(),
        target_epsilon: (a.target_error > 0.0).then_some(a.target_error),
        achieved_epsilon,
    });
    manifest.hub_engine = flow.hub_engine_name().to_owned();
    manifest.jit = flow
        .jit_info()
        .map(|(provenance, compile_ms)| CodegenProvenance {
            provenance: provenance.to_owned(),
            compile_ms,
        });

    // Fold everything the recorder captured into the manifest: stage
    // timings come from the spans themselves, so they agree exactly with
    // the exported trace.
    let events = strober_probe::take_events();
    manifest.record_spans(&events);
    manifest.metrics = strober_probe::snapshot();
    strober_probe::disable();

    if let Some(path) = &a.trace_out {
        std::fs::write(path, strober_probe::chrome_trace_json(&events))
            .map_err(|e| format!("cannot write trace to `{path}`: {e}"))?;
        strober_probe::info!("      chrome trace written to {path} (open in Perfetto)");
    }

    let manifest_path = a.manifest.clone().or_else(|| {
        store.as_ref().map(|s| {
            s.root()
                .join("last-run.json")
                .to_string_lossy()
                .into_owned()
        })
    });
    if let Some(path) = manifest_path {
        match manifest.save(std::path::Path::new(&path)) {
            Ok(()) => strober_probe::info!("      run manifest written to {path}"),
            Err(e) => strober_probe::warn!("cannot write run manifest to `{path}`: {e}"),
        }
    }

    if a.json {
        let mut regions = serde_json::Map::new();
        for (region, mw) in estimate.per_region_mw() {
            regions.insert(region.clone(), serde_json::json!(mw));
        }
        let doc = serde_json::json!({
            "core": config.name,
            "workload": a.workload,
            "cycles": run.target_cycles,
            "instret": instret,
            "cpi": run.target_cycles as f64 / instret as f64,
            "samples": results.len(),
            "windows": run.windows,
            "records": run.records,
            "stop_reason": run.stop.as_str(),
            "target_error": a.target_error,
            "achieved_epsilon": achieved_epsilon,
            "cache_hit": cache_hit,
            "hub_engine": manifest.hub_engine,
            "jit_compile_ms": manifest.jit.as_ref().map(|j| j.compile_ms),
            "timings_ms": serde_json::json!({
                "prepare": manifest.stage_millis("prepare"),
                "sim": manifest.stage_millis("run_sampled"),
                "replay": manifest.stage_millis("replay"),
                "estimate": manifest.stage_millis("estimate"),
            }),
            "core_power_mw": estimate.mean_power_mw(),
            "core_power_bound_mw": estimate.interval().half_width(),
            "confidence": estimate.interval().confidence(),
            "dram_power_mw": dram_power,
            "epi_nj": (estimate.mean_power_mw() + dram_power) * 1e-3
                * (run.target_cycles as f64 / flow.config().freq_hz)
                / instret as f64 * 1e9,
            "regions": regions,
        });
        println!(
            "{}",
            serde_json::to_string_pretty(&doc).expect("serialisable")
        );
        return Ok(());
    }

    println!("core:        {}", config.name);
    println!("workload:    {}", a.workload);
    println!("engine:      {}", manifest.hub_engine);
    println!(
        "cycles:      {} ({} windows of {}; {} records)",
        run.target_cycles, run.windows, a.replay_length, run.records
    );
    println!(
        "CPI:         {:.3}",
        run.target_cycles as f64 / instret as f64
    );
    if let Some(eps) = achieved_epsilon {
        println!(
            "stopping:    converged at epsilon {eps:.4} (target {:.4}, {} samples)",
            a.target_error,
            results.len()
        );
    }
    println!();
    print!("{estimate}");
    println!(
        "  {:<24} {dram_power:>9.3} mW  (counter-based model)",
        "DRAM"
    );
    let total = estimate.mean_power_mw() + dram_power;
    let epi =
        total * 1e-3 * (run.target_cycles as f64 / flow.config().freq_hz) / instret as f64 * 1e9;
    println!();
    println!("total (core + DRAM): {total:.3} mW;  EPI: {epi:.3} nJ/instruction");
    if a.metrics {
        println!();
        print!("{}", manifest.metrics);
    }
    Ok(())
}

fn cmd_probe(a: &ProbeArgs) -> Result<(), String> {
    if let Some(path) = &a.trace {
        let text =
            std::fs::read_to_string(path).map_err(|e| format!("cannot read `{path}`: {e}"))?;
        let events = strober_probe::parse_chrome_trace(&text)
            .map_err(|e| format!("`{path}` is not a chrome trace: {e}"))?;
        println!("trace: {path} ({} spans)", events.len());
        print!(
            "{}",
            strober_probe::render_profile(&strober_probe::profile(&events))
        );
    }
    if let Some(path) = &a.manifest {
        let text =
            std::fs::read_to_string(path).map_err(|e| format!("cannot read `{path}`: {e}"))?;
        let manifest = RunManifest::from_json(&text)
            .map_err(|e| format!("`{path}` is not a run manifest: {e}"))?;
        if a.trace.is_some() {
            println!();
        }
        println!("manifest:  {path} (schema v{})", manifest.version);
        println!("design:    {}", manifest.design);
        println!("workload:  {}", manifest.workload);
        println!(
            "prepare:   {} (cache hit: {})",
            manifest.prepare, manifest.cache_hit
        );
        if let Some(job) = &manifest.job {
            println!(
                "job:       #{} from `{}` (queued {:.1} ms)",
                job.id, job.client, job.queue_wait_ms
            );
        }
        for stage in &manifest.stages {
            println!("  {:<20} {:>10.3} ms", stage.name, stage.millis);
        }
        if !manifest.metrics.is_empty() {
            println!();
            print!("{}", manifest.metrics);
        }
    }
    Ok(())
}

fn cmd_export(a: &ExportArgs) -> Result<(), String> {
    let config = core_config(&a.core)?;
    let design = build_core(&config);
    let out = std::path::Path::new(&a.out);
    std::fs::create_dir_all(out).map_err(|e| format!("cannot create `{}`: {e}", a.out))?;

    let rtl = strober_rtl::verilog::to_verilog(&design).map_err(|e| e.to_string())?;
    std::fs::write(out.join(format!("{}.v", config.name)), rtl).map_err(|e| e.to_string())?;

    let synth = strober_synth::synthesize(&design, &strober_synth::SynthOptions::default())
        .map_err(|e| e.to_string())?;
    let netlist =
        strober_gates::verilog::to_structural_verilog(&synth.netlist).map_err(|e| e.to_string())?;
    std::fs::write(out.join(format!("{}_netlist.v", config.name)), netlist)
        .map_err(|e| e.to_string())?;

    let fame = strober_fame::transform(&design, &strober_fame::FameConfig::default())
        .map_err(|e| e.to_string())?;
    std::fs::write(
        out.join(format!("{}_fame_meta.json", config.name)),
        fame.meta.to_json(),
    )
    .map_err(|e| e.to_string())?;
    let hub = strober_rtl::verilog::to_verilog(&fame.hub).map_err(|e| e.to_string())?;
    std::fs::write(out.join(format!("{}_hub.v", config.name)), hub).map_err(|e| e.to_string())?;

    println!(
        "wrote {}/{{{n}.v, {n}_netlist.v, {n}_hub.v, {n}_fame_meta.json}}",
        a.out,
        n = config.name
    );
    Ok(())
}

fn cmd_cache(a: &CacheArgs) -> Result<(), String> {
    let dir = a.cache_dir.clone().unwrap_or_else(default_cache_dir);
    let mut store =
        Store::open(&dir).map_err(|e| format!("cannot open artifact store at `{dir}`: {e}"))?;
    match a.action {
        CacheAction::Stats => {
            let snap = store.metrics();
            println!("store: {dir}");
            print!("{snap}");
        }
        CacheAction::Clear => {
            let removed = store
                .clear()
                .map_err(|e| format!("cannot clear store: {e}"))?;
            println!("removed {removed} cached artifacts from {dir}");
        }
    }
    Ok(())
}

fn cmd_fuzz(a: &FuzzArgs) -> Result<(), String> {
    let opts = strober_fuzz::FuzzOptions {
        seed_start: a.seed_start,
        seed_end: a.seed_end,
        cycles: a.cycles,
        oracle: strober_fuzz::OracleConfig {
            lanes: a.lanes.clone(),
            flow: !a.no_flow,
            inject: match a.inject.as_deref() {
                Some("xor-as-or") => Some(strober_fuzz::InjectedBug::XorAsOr),
                Some(other) => return Err(format!("unknown injected bug `{other}`")),
                None => None,
            },
        },
        corpus_dir: Some(std::path::PathBuf::from(&a.corpus)),
        shrink_evals: a.shrink_evals,
    };
    let total = opts.seed_end - opts.seed_start;
    strober_probe::info!(
        "fuzzing seeds {}..{} ({} designs, {} cycles each, lanes {:?}{}{})",
        opts.seed_start,
        opts.seed_end,
        total,
        opts.cycles,
        opts.oracle.lanes,
        if opts.oracle.flow { ", with flow" } else { "" },
        if opts.oracle.inject.is_some() {
            ", bug injected"
        } else {
            ""
        }
    );
    let outcome = strober_fuzz::run_fuzz(&opts, |seed, designs| {
        if designs % 25 == 0 {
            strober_probe::info!("  … seed {seed}: {designs}/{total} designs agree");
        }
    })?;
    match outcome.failure {
        None => {
            println!(
                "fuzz: {} designs, all oracles agree ({:.1} s, {:.1} designs/s)",
                outcome.designs,
                outcome.elapsed_secs,
                outcome.designs_per_sec()
            );
            Ok(())
        }
        Some(f) => {
            println!("fuzz: DIVERGENCE at seed {}", f.seed);
            println!("  original:  {}", f.original);
            println!("  minimized: {}", f.reproducer.divergence);
            println!(
                "  reproducer: {} nodes, {} genes",
                f.min_nodes,
                f.reproducer.genome.gene_count()
            );
            if let Some(path) = &f.written_to {
                println!("  written to {}", path.display());
            }
            Err(format!(
                "oracles diverged at seed {} ({})",
                f.seed,
                f.reproducer.divergence.kind()
            ))
        }
    }
}

fn cmd_serve(a: &ServeArgs) -> Result<(), String> {
    let store_dir = if a.no_cache {
        None
    } else {
        Some(a.cache_dir.clone().unwrap_or_else(default_cache_dir))
    };
    let server = Server::bind(ServerConfig {
        addr: a.addr.clone(),
        unix_socket: a.unix_socket.clone(),
        workers: a.workers,
        store_dir,
        drain_ms: a.drain_ms,
        metrics_addr: a.metrics_addr.clone(),
        flight_interval_ms: a.flight_interval_ms,
        flight_capacity: a.flight_capacity,
    })
    .map_err(|e| format!("cannot bind `{}`: {e}", a.addr))?;
    strober_probe::info!("strober server listening on {}", server.local_addr());
    if let Some(path) = &a.unix_socket {
        strober_probe::info!("  … and on unix socket {path}");
    }
    if let Some(maddr) = server.metrics_local_addr() {
        strober_probe::info!("  … and serving metrics on http://{maddr}/metrics");
    }
    server.run().map_err(|e| format!("server failed: {e}"))
}

/// One active job's row in the `strober top` table, assembled from the
/// per-job labeled series the server publishes while the job runs.
#[derive(Default)]
struct TopJob {
    design: String,
    worker: String,
    phase: String,
    progress: f64,
    sim_rate: Option<f64>,
    replay_rate: Option<f64>,
    epsilon: Option<f64>,
    provenance: String,
    engine: String,
}

/// Orders the pipeline phases so a job's row shows the furthest stage
/// reached (per-phase progress gauges persist until the job's series
/// are retired, so both `sim` and `replay` can be present at once).
fn phase_rank(phase: &str) -> u32 {
    match phase {
        "sim" => 1,
        "replay" => 2,
        // Adaptive runs: one interval observation per replayed batch,
        // reported after the batch itself, so it outranks `replay`.
        "interval" => 3,
        _ => 0,
    }
}

/// Pulls the label value for `key` out of a parsed series label list.
fn label<'a>(labels: &'a [(String, String)], key: &str) -> Option<&'a str> {
    labels
        .iter()
        .find(|(k, _)| k == key)
        .map(|(_, v)| v.as_str())
}

/// Looks up (inserting if new) the row for the `job` label of a series,
/// refreshing the row's design/worker attribution as a side effect.
fn note_job<'a>(
    jobs: &'a mut std::collections::BTreeMap<u64, TopJob>,
    labels: &[(String, String)],
) -> Option<&'a mut TopJob> {
    let id: u64 = label(labels, "job")?.parse().ok()?;
    let row = jobs.entry(id).or_default();
    if let Some(d) = label(labels, "design") {
        row.design = d.to_owned();
    }
    if let Some(w) = label(labels, "worker") {
        row.worker = w.to_owned();
    }
    if let Some(e) = label(labels, "engine") {
        row.engine = e.to_owned();
    }
    Some(row)
}

/// Finds an unlabeled gauge by exact name.
fn gauge(snap: &strober_probe::MetricsSnapshot, name: &str) -> Option<f64> {
    snap.gauges.iter().find(|g| g.name == name).map(|g| g.value)
}

/// Finds an unlabeled counter by exact name (0 when never bumped).
fn counter(snap: &strober_probe::MetricsSnapshot, name: &str) -> u64 {
    snap.counters
        .iter()
        .find(|c| c.name == name)
        .map_or(0, |c| c.value)
}

/// Formats a rate with an SI suffix (`1.2M`, `345k`, `87`).
fn fmt_rate(v: f64) -> String {
    if v >= 1e6 {
        format!("{:.1}M", v / 1e6)
    } else if v >= 1e3 {
        format!("{:.1}k", v / 1e3)
    } else {
        format!("{v:.0}")
    }
}

/// Renders one frame of the `strober top` dashboard from the merged
/// metrics snapshot maintained by the watch session.
fn render_top(addr: &str, seq: u64, at_ms: u64, snap: &strober_probe::MetricsSnapshot) {
    println!(
        "strober top — {addr}  (frame {seq}, t+{:.1}s)",
        at_ms as f64 / 1000.0
    );
    println!();

    let accepted = counter(snap, "strober.server.jobs_accepted");
    let completed = counter(snap, "strober.server.jobs_completed");
    let failed = counter(snap, "strober.server.jobs_failed");
    let cancelled = counter(snap, "strober.server.jobs_cancelled");
    println!(
        "jobs:     accepted {accepted}   completed {completed}   failed {failed}   cancelled {cancelled}   queued {:.0}",
        gauge(snap, "strober.server.queue_depth").unwrap_or(0.0)
    );
    println!(
        "prepare:  warm {}   store {}   cold {}   (warm designs {:.0})",
        counter(snap, "strober.server.prepare_warm"),
        counter(snap, "strober.server.prepare_store"),
        counter(snap, "strober.server.prepare_cold"),
        gauge(snap, "strober.server.warm_designs").unwrap_or(0.0)
    );
    if let Some(h) = snap
        .histograms
        .iter()
        .find(|h| h.name == "strober.server.queue_wait_ms")
    {
        println!(
            "queue:    waits {}   mean {:.1} ms   max {:.1} ms",
            h.count,
            h.mean(),
            h.max
        );
    }

    // Per-worker busy/idle flags come from the labeled worker_busy gauge.
    let mut workers: Vec<(String, f64)> = Vec::new();
    let mut jobs: std::collections::BTreeMap<u64, TopJob> = std::collections::BTreeMap::new();
    for g in &snap.gauges {
        let (base, labels) = strober_probe::parse_series(&g.name);
        match base {
            "strober.server.worker_busy" => {
                if let Some(w) = label(&labels, "worker") {
                    workers.push((w.to_owned(), g.value));
                }
            }
            "strober.server.job_progress" => {
                if let Some(row) = note_job(&mut jobs, &labels) {
                    let phase = label(&labels, "phase").unwrap_or("?");
                    if phase_rank(phase) >= phase_rank(&row.phase) {
                        row.phase = phase.to_owned();
                        row.progress = g.value;
                    }
                }
            }
            "strober.core.sim_cycles_per_sec" => {
                if let Some(row) = note_job(&mut jobs, &labels) {
                    row.sim_rate = Some(g.value);
                }
            }
            "strober.core.replay_samples_per_sec" => {
                if let Some(row) = note_job(&mut jobs, &labels) {
                    row.replay_rate = Some(g.value);
                }
            }
            "strober.sampling.stop.relative_error" => {
                if let Some(row) = note_job(&mut jobs, &labels) {
                    row.epsilon = Some(g.value);
                }
            }
            _ => {}
        }
    }
    for c in &snap.counters {
        let (base, labels) = strober_probe::parse_series(&c.name);
        if base == "strober.server.job_prepare" {
            if let Some(row) = note_job(&mut jobs, &labels) {
                if let Some(p) = label(&labels, "provenance") {
                    row.provenance = p.to_owned();
                }
            }
        }
        // The engine rides in every post-prepare labeled series; this
        // counter pins it even before the first progress tick.
        if base == "strober.server.job_engine" {
            note_job(&mut jobs, &labels);
        }
    }

    workers.sort_by(|a, b| a.0.cmp(&b.0));
    let busy = workers.iter().filter(|(_, v)| *v > 0.0).count();
    print!("workers:  {busy}/{} busy ", workers.len());
    for (name, v) in &workers {
        print!(" [{}:{}]", name, if *v > 0.0 { "busy" } else { "idle" });
    }
    println!();
    println!();

    if jobs.is_empty() {
        println!("no active jobs");
    } else {
        println!(
            "{:>5}  {:<14} {:>6}  {:<8} {:>9}  {:>10}  {:>12}  {:>7}  {:<6}  {:<16}",
            "JOB",
            "DESIGN",
            "WORKER",
            "PHASE",
            "PROGRESS",
            "SIM c/s",
            "REPLAY s/s",
            "EPS",
            "CACHE",
            "ENGINE"
        );
        for (id, row) in &jobs {
            println!(
                "{:>5}  {:<14} {:>6}  {:<8} {:>9}  {:>10}  {:>12}  {:>7}  {:<6}  {:<16}",
                id,
                row.design,
                row.worker,
                // A row exists only once a worker emitted a job-labeled
                // series, so pre-progress the job is mid-prepare/sim.
                if row.phase.is_empty() {
                    "running"
                } else {
                    &row.phase
                },
                format!("{:.0}", row.progress),
                row.sim_rate.map_or_else(|| "-".to_owned(), fmt_rate),
                row.replay_rate.map_or_else(|| "-".to_owned(), fmt_rate),
                // Achieved relative error bound of an adaptive job's
                // running estimate (absent for fixed-size runs).
                row.epsilon
                    .map_or_else(|| "-".to_owned(), |e| format!("{e:.3}")),
                row.provenance,
                // The hub settle engine after fallback (tape, tape-jit,
                // tape-partitioned); unknown until prepare finishes.
                if row.engine.is_empty() {
                    "-"
                } else {
                    &row.engine
                }
            );
        }
    }
}

fn cmd_top(a: &TopArgs) -> Result<(), String> {
    let mut client = dial(&a.addr)?;
    let interval_ms = match client.request(&Request::Watch {
        interval_ms: a.interval_ms,
    }) {
        Ok(Response::Watching { interval_ms }) => interval_ms,
        Ok(other) => return Err(format!("unexpected watch response: {other:?}")),
        Err(e) => return Err(format!("watch failed: {e}")),
    };
    let ansi = !a.plain && a.frames != 1;
    let mut session = strober_server::WatchSession::new();
    let mut rendered = 0u64;
    loop {
        let frame = match client.next_watch() {
            Ok(f) => f,
            // The stream ends when the server shuts down; with a frame
            // budget that is an error (we were cut short), without one
            // it is the normal way out.
            Err(e) if a.frames == 0 => {
                strober_probe::info!("server went away ({e}); exiting");
                return Ok(());
            }
            Err(e) => return Err(format!("watch stream ended early: {e}")),
        };
        let (seq, at_ms) = (frame.seq, frame.at_ms);
        if !session.apply(&frame) {
            // Desynced (missed a frame); skip until the next reset frame.
            continue;
        }
        if ansi {
            // Clear the screen and home the cursor, like top(1).
            print!("\x1b[2J\x1b[H");
        }
        render_top(&a.addr, seq, at_ms, session.metrics());
        if ansi {
            println!();
            println!("refreshing every {interval_ms} ms — press Ctrl-C to quit");
        }
        rendered += 1;
        if a.frames > 0 && rendered >= a.frames {
            return Ok(());
        }
    }
}

fn cmd_bench(a: &BenchArgs) -> Result<(), String> {
    use std::hint::black_box;
    use std::time::Instant;
    use strober_bench::overhead::{run_plain, run_probed};

    // Mirror tests/probe_overhead.rs: compare minima over interleaved
    // trials so the report is stable on a noisy machine.
    const ITERS: u64 = 2_000;
    const TRIALS: usize = 9;
    let min_nanos = |f: &dyn Fn() -> u64| -> u128 {
        let mut best = u128::MAX;
        for _ in 0..TRIALS {
            let t0 = Instant::now();
            black_box(f());
            best = best.min(t0.elapsed().as_nanos());
        }
        best
    };

    strober_probe::disable();
    strober_probe::reset();
    black_box(run_plain(ITERS));
    black_box(run_probed(ITERS));
    let plain_ns = min_nanos(&|| run_plain(ITERS));
    let disabled_ns = min_nanos(&|| run_probed(ITERS));
    let disabled_pct = (disabled_ns as f64 / plain_ns as f64 - 1.0) * 100.0;

    // One enabled run to report the live cost and the series the labeled
    // instrumentation actually produces.
    strober_probe::enable();
    let enabled_ns = min_nanos(&|| run_probed(ITERS));
    let enabled_pct = (enabled_ns as f64 / plain_ns as f64 - 1.0) * 100.0;
    let snap = strober_probe::snapshot();
    let labeled_series = snap
        .counters
        .iter()
        .filter(|c| c.name.contains('{'))
        .count();
    strober_probe::disable();
    strober_probe::reset();

    // One end-to-end simulator-speed scenario so the report tracks the
    // flow itself, not just the probe: vvadd on the smallest core, the
    // same pairing the bench crate's smoke test uses.
    let design = build_core(&strober_cores::CoreConfig::rok_tiny());
    let (outcome, _) = strober_bench::run_on_rtl(
        &design,
        &strober_bench::Workload::Vvadd.image(),
        DramConfig::default(),
        10_000_000,
    );
    let sim_cycles_per_sec = outcome.cycles as f64 / outcome.wall_seconds;

    // Hub settle throughput at 1/2/4/8 workers on the FAME1-transformed
    // hub — the BENCH_8 trajectory behind the partitioned engine. Each
    // entry records the engine variant so entries stay comparable across
    // report versions.
    const SWEEP_CYCLES: u64 = 4096;
    let fame = strober_fame::transform(&design, &strober_fame::FameConfig::default())
        .map_err(|e| format!("fame transform failed: {e}"))?;
    let mut sweep = Vec::new();
    for threads in [1usize, 2, 4, 8] {
        let mut hub = strober_sim::Simulator::new(&fame.hub)
            .map_err(|e| format!("hub lowering failed: {e}"))?;
        hub.set_threads(threads);
        let fire = hub
            .resolve_port(&fame.meta.control.fire)
            .map_err(|e| format!("hub fire port: {e}"))?;
        hub.poke(fire, 1);
        hub.step_n(SWEEP_CYCLES); // warm: spawn pool, page in code
        let mut ns = u128::MAX;
        for _ in 0..TRIALS {
            let t0 = Instant::now();
            hub.step_n(SWEEP_CYCLES);
            black_box(hub.cycle());
            ns = ns.min(t0.elapsed().as_nanos());
        }
        let rate = SWEEP_CYCLES as f64 / (ns as f64 / 1e9);
        let engine = if threads > 1 {
            "tape-partitioned"
        } else {
            "tape"
        };
        sweep.push((threads, engine, rate));
    }

    // Hub-engine sweep at one thread: the interpreted tape vs the
    // JIT-compiled native settle code over the same hub. Rows are
    // labeled by the simulator's own engine name; omitted (with a
    // warning) when no rustc is on PATH to compile the dylib.
    let mut engine_sweep: Vec<(&'static str, f64)> = Vec::new();
    if strober_jit::rustc_version().is_some() {
        for jit in [false, true] {
            let mut hub = strober_sim::Simulator::new(&fame.hub)
                .map_err(|e| format!("hub lowering failed: {e}"))?;
            if jit {
                strober_jit::JitCompiler::in_temp()
                    .attach(&mut hub)
                    .map_err(|e| format!("jit compile failed: {e}"))?;
            }
            let fire = hub
                .resolve_port(&fame.meta.control.fire)
                .map_err(|e| format!("hub fire port: {e}"))?;
            hub.poke(fire, 1);
            hub.step_n(SWEEP_CYCLES); // warm: page in the dylib
            let mut ns = u128::MAX;
            for _ in 0..TRIALS {
                let t0 = Instant::now();
                hub.step_n(SWEEP_CYCLES);
                black_box(hub.cycle());
                ns = ns.min(t0.elapsed().as_nanos());
            }
            let rate = SWEEP_CYCLES as f64 / (ns as f64 / 1e9);
            engine_sweep.push((hub.active_engine_name(), rate));
        }
    } else {
        strober_probe::warn!("no rustc on PATH; hub_engine_sweep omitted from the report");
    }

    // Pipeline-mode rows: one small estimate flow (vvadd on rok-tiny) run
    // through each capture→replay pipeline, so the report tracks the
    // sim/replay overlap and the adaptive stop alongside the raw engine
    // numbers. Wall times here are single-shot trend indicators; the
    // enforced overlap gate lives in crates/bench/tests/stream_overlap.rs.
    const PIPE_CYCLES: u64 = 60_000;
    const PIPE_TARGET: f64 = 0.25;
    let pipe_flow = StroberFlow::new(
        &design,
        StroberConfig {
            sample_size: 12,
            replay_length: 64,
            ..StroberConfig::default()
        },
    )
    .map_err(|e| format!("flow setup failed: {e}"))?;
    let pipe_image = strober_bench::Workload::Vvadd.image();
    let pipe_dram = || {
        let mut dram = DramModel::new(DramConfig::default(), programs::MEM_BYTES);
        dram.load(&pipe_image, 0);
        dram
    };
    struct PipeRow {
        mode: &'static str,
        samples: usize,
        windows: u64,
        wall_seconds: f64,
        stop_reason: &'static str,
        achieved_epsilon: f64,
        target_error: Option<f64>,
    }
    let pipe_row = |mode: &'static str,
                    wall: f64,
                    run: &strober::SampledRun,
                    results: &[strober::ReplayResult]|
     -> Result<PipeRow, String> {
        let est = pipe_flow
            .estimate(run, results)
            .map_err(|e| format!("estimate failed: {e}"))?;
        Ok(PipeRow {
            mode,
            samples: results.len(),
            windows: run.windows,
            wall_seconds: wall,
            stop_reason: run.stop.as_str(),
            achieved_epsilon: est.interval().relative_error_bound(),
            target_error: None,
        })
    };
    let mut pipeline_rows: Vec<PipeRow> = Vec::new();
    {
        let mut dram = pipe_dram();
        let t0 = Instant::now();
        let run = pipe_flow
            .run_sampled(&mut dram, PIPE_CYCLES)
            .map_err(|e| format!("sampled run failed: {e}"))?;
        let results = pipe_flow
            .replay_all_batched(&run.snapshots, 2, 2)
            .map_err(|e| format!("replay failed: {e}"))?;
        pipeline_rows.push(pipe_row(
            "sequential",
            t0.elapsed().as_secs_f64(),
            &run,
            &results,
        )?);
    }
    {
        let mut dram = pipe_dram();
        let t0 = Instant::now();
        let (run, results) = pipe_flow
            .replay_streaming(
                &mut dram,
                PIPE_CYCLES,
                2,
                2,
                None,
                &strober::RunControl::default(),
            )
            .map_err(|e| format!("streaming run failed: {e}"))?;
        pipeline_rows.push(pipe_row(
            "streaming",
            t0.elapsed().as_secs_f64(),
            &run,
            &results,
        )?);
    }
    {
        let rule = strober::StoppingRule::new(PIPE_TARGET, pipe_flow.config().confidence, 4)
            .map_err(|e| format!("invalid stopping rule: {e}"))?;
        let mut dram = pipe_dram();
        let t0 = Instant::now();
        let (run, results) = pipe_flow
            .replay_streaming(
                &mut dram,
                PIPE_CYCLES,
                2,
                2,
                Some(rule),
                &strober::RunControl::default(),
            )
            .map_err(|e| format!("streaming run failed: {e}"))?;
        let mut row = pipe_row("adaptive", t0.elapsed().as_secs_f64(), &run, &results)?;
        row.target_error = Some(PIPE_TARGET);
        pipeline_rows.push(row);
    }

    let mut report = serde_json::Map::new();
    report.insert("bench".to_owned(), serde_json::json!("telemetry_overhead"));
    report.insert("iters".to_owned(), serde_json::json!(ITERS));
    report.insert("trials".to_owned(), serde_json::json!(TRIALS));
    report.insert("plain_ns".to_owned(), serde_json::json!(plain_ns as u64));
    report.insert(
        "disabled_probed_ns".to_owned(),
        serde_json::json!(disabled_ns as u64),
    );
    report.insert(
        "disabled_overhead_pct".to_owned(),
        serde_json::json!(disabled_pct),
    );
    report.insert(
        "enabled_probed_ns".to_owned(),
        serde_json::json!(enabled_ns as u64),
    );
    report.insert(
        "enabled_overhead_pct".to_owned(),
        serde_json::json!(enabled_pct),
    );
    report.insert(
        "labeled_series".to_owned(),
        serde_json::json!(labeled_series as u64),
    );
    report.insert("budget_pct".to_owned(), serde_json::json!(2.0));
    report.insert(
        "within_budget".to_owned(),
        serde_json::json!(disabled_pct < 2.0),
    );
    report.insert(
        "sim_workload".to_owned(),
        serde_json::json!("vvadd/rok-tiny"),
    );
    report.insert("sim_cycles".to_owned(), serde_json::json!(outcome.cycles));
    report.insert(
        "sim_cycles_per_sec".to_owned(),
        serde_json::json!(sim_cycles_per_sec),
    );
    // The engine variant and thread count behind `sim_cycles_per_sec`,
    // so BENCH_*.json entries are comparable across PRs.
    report.insert("sim_engine".to_owned(), serde_json::json!("tape"));
    report.insert("sim_hub_threads".to_owned(), serde_json::json!(1));
    report.insert(
        "hub_threads_sweep".to_owned(),
        serde_json::Value::Array(
            sweep
                .iter()
                .map(|&(threads, engine, rate)| {
                    serde_json::json!({
                        "engine": engine,
                        "hub_threads": threads,
                        "sim_cycles_per_sec": rate,
                    })
                })
                .collect(),
        ),
    );
    report.insert(
        "hub_engine_sweep".to_owned(),
        serde_json::Value::Array(
            engine_sweep
                .iter()
                .map(|&(engine, rate)| {
                    serde_json::json!({
                        "engine": engine,
                        "hub_threads": 1,
                        "sim_cycles_per_sec": rate,
                    })
                })
                .collect(),
        ),
    );
    report.insert(
        "pipeline_modes".to_owned(),
        serde_json::Value::Array(
            pipeline_rows
                .iter()
                .map(|r| {
                    serde_json::json!({
                        "mode": r.mode,
                        "samples": r.samples,
                        "windows": r.windows,
                        "wall_seconds": r.wall_seconds,
                        "stop_reason": r.stop_reason,
                        "achieved_epsilon": r.achieved_epsilon,
                        "target_error": r.target_error,
                    })
                })
                .collect(),
        ),
    );
    let text = serde_json::to_string_pretty(&serde_json::Value::Object(report))
        .map_err(|e| format!("cannot serialize report: {e}"))?;
    std::fs::write(&a.out, text + "\n").map_err(|e| format!("cannot write `{}`: {e}", a.out))?;

    println!("probe overhead ({ITERS} chunks, best of {TRIALS}):");
    println!("  plain:            {plain_ns} ns");
    println!("  probed, disabled: {disabled_ns} ns ({disabled_pct:+.2}%)");
    println!("  probed, enabled:  {enabled_ns} ns ({enabled_pct:+.2}%)");
    println!("  labeled series:   {labeled_series}");
    println!(
        "sim speed (vvadd/rok-tiny): {} cycles in {:.2} s ({} cycles/s)",
        strober_bench::fmt_u64(outcome.cycles),
        outcome.wall_seconds,
        strober_bench::fmt_u64(sim_cycles_per_sec as u64)
    );
    println!("hub settle sweep (rok-tiny fame1 hub, best of {TRIALS}):");
    for &(threads, engine, rate) in &sweep {
        println!(
            "  {threads} thread(s) [{engine}]: {} cycles/s",
            strober_bench::fmt_u64(rate as u64),
        );
    }
    if engine_sweep.is_empty() {
        println!("hub engine sweep: skipped (no rustc on PATH)");
    } else {
        println!("hub engine sweep (rok-tiny fame1 hub, 1 thread, best of {TRIALS}):");
        for &(engine, rate) in &engine_sweep {
            println!(
                "  [{engine}]: {} cycles/s",
                strober_bench::fmt_u64(rate as u64),
            );
        }
    }
    println!("pipeline modes (vvadd/rok-tiny, {PIPE_CYCLES} cycles):");
    for row in &pipeline_rows {
        println!(
            "  {:<10} {:>2} samples in {:.2} s  (stop: {}, epsilon {:.3})",
            row.mode, row.samples, row.wall_seconds, row.stop_reason, row.achieved_epsilon,
        );
    }
    println!("report written to {}", a.out);
    Ok(())
}

/// Dials the server and introduces this process.
fn dial(addr: &str) -> Result<Client, String> {
    let mut client =
        Client::connect(addr).map_err(|e| format!("cannot reach server at `{addr}`: {e}"))?;
    let name = format!("strober-cli[{}]", std::process::id());
    match client.hello(&name) {
        Ok(Response::Hello { protocol, .. })
            if protocol == strober_server::protocol::PROTOCOL_VERSION =>
        {
            Ok(client)
        }
        Ok(Response::Hello { protocol, .. }) => Err(format!(
            "server at `{addr}` speaks protocol v{protocol}, this client v{}",
            strober_server::protocol::PROTOCOL_VERSION
        )),
        Ok(other) => Err(format!("unexpected hello response: {other:?}")),
        Err(e) => Err(format!("hello failed: {e}")),
    }
}

fn submit_spec(a: &SubmitArgs) -> Result<JobSpec, String> {
    let estimate = || -> Result<EstimateSpec, String> {
        Ok(EstimateSpec {
            core: a.core.clone(),
            workload: a.workload.clone(),
            asm: read_asm(&a.asm)?,
            samples: a.samples,
            replay_length: a.replay_length,
            seed: a.seed,
            max_cycles: a.max_cycles,
            parallel: a.parallel,
            batch_lanes: a.batch_lanes,
            tape_opt: !a.no_tape_opt,
            hub_threads: a.hub_threads,
            hub_engine: a.hub_engine.clone(),
            target_error: a.target_error,
            min_samples: a.min_samples,
        })
    };
    match a.kind.as_str() {
        "estimate" => Ok(JobSpec::Estimate(estimate()?)),
        "replay" => Ok(JobSpec::Replay(estimate()?)),
        "fuzz" => Ok(JobSpec::Fuzz(FuzzSpec {
            seed_start: a.seed_start,
            seed_end: a.seed_end,
            cycles: a.cycles,
        })),
        other => Err(format!("unknown job kind `{other}`")),
    }
}

fn print_job_result(result: &JobResult, json: bool) {
    if json {
        println!(
            "{}",
            serde_json::to_string_pretty(result).expect("serialisable")
        );
        return;
    }
    match result {
        JobResult::Estimate(o) => {
            println!("core:        {}", o.core);
            println!("workload:    {}", o.workload);
            println!("engine:      {}", o.manifest.hub_engine);
            println!(
                "cycles:      {} ({} windows; {} records)",
                o.cycles, o.windows, o.records
            );
            println!("CPI:         {:.3}", o.cycles as f64 / o.instret as f64);
            println!("prepare:     {}", o.provenance);
            println!(
                "core power:  {:.3} mW ± {:.3} mW ({:.0}% confidence, {} samples)",
                o.core_power_mw,
                o.half_width_mw,
                o.confidence * 100.0,
                o.samples
            );
            if let Some(eps) = o.achieved_epsilon {
                println!("stopping:    {} at epsilon {eps:.4}", o.stop_reason);
            }
            println!("DRAM power:  {:.3} mW", o.dram_power_mw);
            println!(
                "total:       {:.3} mW;  EPI: {:.3} nJ/instruction",
                o.core_power_mw + o.dram_power_mw,
                o.epi_nj
            );
        }
        JobResult::Replay(o) => {
            println!(
                "replayed {} samples: mean {:.3} mW, {} outputs checked, prepare {}",
                o.samples, o.mean_power_mw, o.outputs_checked, o.provenance
            );
        }
        JobResult::Fuzz(o) => {
            let status = match (o.diverged, o.cancelled) {
                (true, _) => "DIVERGENCE",
                (false, true) => "cancelled",
                (false, false) => "all oracles agree",
            };
            print!("fuzz: {} designs, {status}", o.designs);
            match o.failure_seed {
                Some(seed) => println!(" (seed {seed})"),
                None => println!(),
            }
        }
    }
}

fn cmd_submit(a: &SubmitArgs) -> Result<(), String> {
    let spec = submit_spec(a)?;
    let priority = match a.priority.as_str() {
        "high" => Priority::High,
        "low" => Priority::Low,
        _ => Priority::Normal,
    };
    let mut client = dial(&a.addr)?;
    let resp = client
        .request(&Request::Submit {
            spec,
            priority,
            follow: !a.detach,
        })
        .map_err(|e| format!("submit failed: {e}"))?;
    let job = match resp {
        Response::Submitted { job } => job,
        Response::Error { error } => return Err(format!("server rejected the job: {error}")),
        other => return Err(format!("unexpected submit response: {other:?}")),
    };
    if a.detach {
        println!("{job}");
        return Ok(());
    }
    strober_probe::info!("job #{job} submitted to {}; following …", a.addr);
    let result = client.wait_result(job, |ev| match ev {
        Event::Started { queue_wait_ms, .. } => {
            strober_probe::info!("  job #{job} started after {queue_wait_ms:.1} ms in queue");
        }
        Event::Stage { stage, millis, .. } => {
            strober_probe::info!("  {stage}: {millis:.1} ms");
        }
        Event::Progress {
            phase, done, total, ..
        } => {
            if *total > 0 {
                strober_probe::debug!("  {phase}: {done}/{total}");
            } else {
                strober_probe::debug!("  {phase}: {done}");
            }
        }
        Event::Log { message, .. } => strober_probe::info!("  {message}"),
        _ => {}
    })?;
    print_job_result(&result, a.json);
    Ok(())
}

fn cmd_jobs(a: &JobsArgs) -> Result<(), String> {
    let mut client = dial(&a.addr)?;
    match client
        .request(&Request::Jobs)
        .map_err(|e| format!("jobs query failed: {e}"))?
    {
        Response::Jobs { jobs } if jobs.is_empty() => println!("no jobs"),
        Response::Jobs { jobs } => {
            println!(
                "{:>5}  {:<9} {:<10} {:<8} {:>12}  CLIENT",
                "ID", "KIND", "STATE", "PRIO", "QUEUED (ms)"
            );
            for j in jobs {
                println!(
                    "{:>5}  {:<9} {:<10} {:<8} {:>12.1}  {}",
                    j.id,
                    j.kind,
                    j.state.as_str(),
                    j.priority.as_str(),
                    j.queue_wait_ms,
                    j.client
                );
            }
        }
        other => return Err(format!("unexpected jobs response: {other:?}")),
    }
    Ok(())
}

fn cmd_cancel(a: &CancelArgs) -> Result<(), String> {
    let mut client = dial(&a.addr)?;
    match client
        .request(&Request::Cancel { job: a.job })
        .map_err(|e| format!("cancel failed: {e}"))?
    {
        Response::Cancelled { job, state } => {
            println!("job #{job}: {}", state.as_str());
            Ok(())
        }
        Response::Error { error } => Err(format!("cancel rejected: {error}")),
        other => Err(format!("unexpected cancel response: {other:?}")),
    }
}

fn main() -> ExitCode {
    let argv: Vec<String> = std::env::args().skip(1).collect();
    let refs: Vec<&str> = argv.iter().map(String::as_str).collect();
    let cli = match args::parse(&refs) {
        Ok(c) => c,
        Err(e) => {
            strober_probe::error!("{e}");
            return ExitCode::FAILURE;
        }
    };
    if let Some(level) = cli.log_level {
        strober_probe::set_log_level(level);
    }
    let result = match &cli.command {
        Command::Help => {
            print!("{HELP}");
            Ok(())
        }
        Command::Workloads => {
            println!("bundled workloads (scaled versions of the paper's benchmarks):");
            for (name, _) in catalog::WORKLOADS {
                println!("  {name}");
            }
            Ok(())
        }
        Command::Run(a) => cmd_run(a),
        Command::Estimate(a) => cmd_estimate(a),
        Command::Export(a) => cmd_export(a),
        Command::Cache(a) => cmd_cache(a),
        Command::Probe(a) => cmd_probe(a),
        Command::Fuzz(a) => cmd_fuzz(a),
        Command::Serve(a) => cmd_serve(a),
        Command::Submit(a) => cmd_submit(a),
        Command::Jobs(a) => cmd_jobs(a),
        Command::Cancel(a) => cmd_cancel(a),
        Command::Top(a) => cmd_top(a),
        Command::Bench(a) => cmd_bench(a),
    };
    match result {
        Ok(()) => ExitCode::SUCCESS,
        Err(e) => {
            strober_probe::error!("{e}");
            ExitCode::FAILURE
        }
    }
}

//! `strober` — the command-line driver for sample-based energy simulation
//! of the bundled processor designs and workloads.

mod args;

use args::{
    default_cache_dir, CacheAction, CacheArgs, Command, EstimateArgs, ExportArgs, FuzzArgs,
    ProbeArgs, RunArgs, HELP,
};
use std::process::ExitCode;
use strober::{StroberConfig, StroberFlow};
use strober_cores::{build_core, CoreConfig};
use strober_dram::{DramConfig, DramModel, LpddrPowerParams};
use strober_isa::{assemble, programs};
use strober_store::{RunManifest, Store};

type WorkloadGen = fn() -> String;

const WORKLOADS: &[(&str, WorkloadGen)] = &[
    ("vvadd", || programs::vvadd(640)),
    ("towers", || programs::towers(14)),
    ("dhrystone", || programs::dhrystone(2800)),
    ("qsort", || programs::qsort(768)),
    ("spmv", || programs::spmv(256, 12)),
    ("dgemm", || programs::dgemm(36)),
    ("coremark", || programs::coremark_like(60)),
    ("linux-boot", || programs::linux_boot_like(16, 1500)),
    ("gcc", || programs::gcc_like(40_000, 2048)),
];

fn core_config(name: &str) -> Result<CoreConfig, String> {
    match name {
        "rok" => Ok(CoreConfig::rok()),
        "boum-1w" => Ok(CoreConfig::boum_1w()),
        "boum-2w" => Ok(CoreConfig::boum_2w()),
        other => Err(format!(
            "unknown core `{other}` (expected rok, boum-1w or boum-2w)"
        )),
    }
}

fn load_image(workload: &str, asm: &Option<String>) -> Result<Vec<u32>, String> {
    let source = match asm {
        Some(path) => {
            std::fs::read_to_string(path).map_err(|e| format!("cannot read `{path}`: {e}"))?
        }
        None => WORKLOADS
            .iter()
            .find(|(n, _)| *n == workload)
            .map(|(_, f)| f())
            .ok_or_else(|| format!("unknown workload `{workload}` (see `strober workloads`)"))?,
    };
    Ok(assemble(&source)
        .map_err(|e| format!("assembly failed: {e}"))?
        .words)
}

fn cmd_run(a: &RunArgs) -> Result<(), String> {
    let config = core_config(&a.core)?;
    let image = load_image(&a.workload, &a.asm)?;
    let design = build_core(&config);
    let mut sim = strober_sim_new(&design)?;
    let mut dram = DramModel::new(DramConfig::default(), programs::MEM_BYTES);
    dram.load(&image, 0);
    let t0 = std::time::Instant::now();
    let mut cycles = 0u64;
    while cycles < a.max_cycles && dram.exit_code().is_none() {
        dram.tick_raw(&mut sim);
        cycles += 1;
    }
    let Some(exit) = dram.exit_code() else {
        return Err(format!(
            "workload did not halt within {} cycles",
            a.max_cycles
        ));
    };
    let instret = dram.instret();
    println!("core:      {}", config.name);
    println!("cycles:    {cycles}");
    println!("instret:   {instret}");
    println!("CPI:       {:.3}", cycles as f64 / instret as f64);
    println!("exit code: {exit:#x}");
    if !dram.console().is_empty() {
        println!("console:   {}", String::from_utf8_lossy(dram.console()));
    }
    println!(
        "host:      {:.2} s ({:.0} cycles/s)",
        t0.elapsed().as_secs_f64(),
        cycles as f64 / t0.elapsed().as_secs_f64()
    );
    Ok(())
}

fn strober_sim_new(design: &strober_rtl::Design) -> Result<strober_sim::Simulator, String> {
    strober_sim::Simulator::new(design).map_err(|e| format!("invalid design: {e}"))
}

/// Opens the artifact store for an estimate run, or `None` when caching is
/// disabled or the store directory is unusable (degrades to a cold run).
fn open_store(a: &EstimateArgs) -> Option<Store> {
    if a.no_cache {
        return None;
    }
    let dir = a.cache_dir.clone().unwrap_or_else(default_cache_dir);
    match Store::open(&dir) {
        Ok(store) => Some(store),
        Err(e) => {
            strober_probe::warn!("cannot open artifact store at `{dir}`: {e}; running cold");
            None
        }
    }
}

fn cmd_estimate(a: &EstimateArgs) -> Result<(), String> {
    let config = core_config(&a.core)?;
    let image = load_image(&a.workload, &a.asm)?;
    let design = build_core(&config);
    let mut session = StroberConfig {
        replay_length: a.replay_length,
        sample_size: a.samples,
        seed: a.seed,
        ..StroberConfig::default()
    };
    session.platform.tape_opt = !a.no_tape_opt;
    let mut manifest = RunManifest::new(
        config.name.clone(),
        a.asm.clone().unwrap_or_else(|| a.workload.clone()),
    );
    manifest.fingerprint = StroberFlow::prepare_fingerprint(&design, &session).to_hex();

    // The estimate flow always records: the manifest's stage timings,
    // --trace-out and --metrics all read from the recorder, and at CLI
    // granularity its cost is far below measurement noise.
    strober_probe::reset();
    strober_probe::enable();

    strober_probe::info!(
        "[1/4] instrumenting, synthesizing and formally matching {} ...",
        config.name
    );
    let mut store = open_store(a);
    let (flow, cache_hit) = match store.as_mut() {
        Some(store) => StroberFlow::prepare_cached(&design, session, store)
            .map_err(|e| format!("flow setup failed: {e}"))?,
        None => (
            StroberFlow::new(&design, session).map_err(|e| format!("flow setup failed: {e}"))?,
            false,
        ),
    };
    manifest.cache_hit = cache_hit;
    if cache_hit {
        strober_probe::info!("      (prepared artifacts served from the store)");
    }

    strober_probe::info!("[2/4] fast simulation with reservoir sampling ...");
    let mut dram = DramModel::new(DramConfig::default(), programs::MEM_BYTES);
    dram.load(&image, 0);
    let run = flow
        .run_sampled(&mut dram, a.max_cycles)
        .map_err(|e| format!("sampled run failed: {e}"))?;
    if dram.exit_code().is_none() {
        return Err(format!(
            "workload did not halt within {} cycles",
            a.max_cycles
        ));
    }

    strober_probe::info!(
        "[3/4] replaying {} snapshots on gate-level simulation ({} workers x {} bit-lanes) ...",
        run.snapshots.len(),
        a.parallel,
        a.batch_lanes
    );
    let results = flow
        .replay_all_batched(&run.snapshots, a.parallel, a.batch_lanes)
        .map_err(|e| format!("replay failed: {e}"))?;

    strober_probe::info!("[4/4] estimating ...");
    let estimate = flow
        .estimate(&run, &results)
        .map_err(|e| format!("estimate failed: {e}"))?;
    let instret = dram.instret();
    let dram_power = LpddrPowerParams::lpddr2_s4()
        .average_power_mw(dram.counters(), run.target_cycles, flow.config().freq_hz)
        .total_mw();

    // Fold everything the recorder captured into the manifest: stage
    // timings come from the spans themselves, so they agree exactly with
    // the exported trace.
    let events = strober_probe::take_events();
    manifest.record_spans(&events);
    manifest.metrics = strober_probe::snapshot();
    strober_probe::disable();

    if let Some(path) = &a.trace_out {
        std::fs::write(path, strober_probe::chrome_trace_json(&events))
            .map_err(|e| format!("cannot write trace to `{path}`: {e}"))?;
        strober_probe::info!("      chrome trace written to {path} (open in Perfetto)");
    }

    let manifest_path = a.manifest.clone().or_else(|| {
        store.as_ref().map(|s| {
            s.root()
                .join("last-run.json")
                .to_string_lossy()
                .into_owned()
        })
    });
    if let Some(path) = manifest_path {
        match manifest.save(std::path::Path::new(&path)) {
            Ok(()) => strober_probe::info!("      run manifest written to {path}"),
            Err(e) => strober_probe::warn!("cannot write run manifest to `{path}`: {e}"),
        }
    }

    if a.json {
        let mut regions = serde_json::Map::new();
        for (region, mw) in estimate.per_region_mw() {
            regions.insert(region.clone(), serde_json::json!(mw));
        }
        let doc = serde_json::json!({
            "core": config.name,
            "workload": a.workload,
            "cycles": run.target_cycles,
            "instret": instret,
            "cpi": run.target_cycles as f64 / instret as f64,
            "samples": results.len(),
            "windows": run.windows,
            "records": run.records,
            "cache_hit": cache_hit,
            "timings_ms": serde_json::json!({
                "prepare": manifest.stage_millis("prepare"),
                "sim": manifest.stage_millis("run_sampled"),
                "replay": manifest.stage_millis("replay"),
                "estimate": manifest.stage_millis("estimate"),
            }),
            "core_power_mw": estimate.mean_power_mw(),
            "core_power_bound_mw": estimate.interval().half_width(),
            "confidence": estimate.interval().confidence(),
            "dram_power_mw": dram_power,
            "epi_nj": (estimate.mean_power_mw() + dram_power) * 1e-3
                * (run.target_cycles as f64 / flow.config().freq_hz)
                / instret as f64 * 1e9,
            "regions": regions,
        });
        println!(
            "{}",
            serde_json::to_string_pretty(&doc).expect("serialisable")
        );
        return Ok(());
    }

    println!("core:        {}", config.name);
    println!("workload:    {}", a.workload);
    println!(
        "cycles:      {} ({} windows of {}; {} records)",
        run.target_cycles, run.windows, a.replay_length, run.records
    );
    println!(
        "CPI:         {:.3}",
        run.target_cycles as f64 / instret as f64
    );
    println!();
    print!("{estimate}");
    println!(
        "  {:<24} {dram_power:>9.3} mW  (counter-based model)",
        "DRAM"
    );
    let total = estimate.mean_power_mw() + dram_power;
    let epi =
        total * 1e-3 * (run.target_cycles as f64 / flow.config().freq_hz) / instret as f64 * 1e9;
    println!();
    println!("total (core + DRAM): {total:.3} mW;  EPI: {epi:.3} nJ/instruction");
    if a.metrics {
        println!();
        print!("{}", manifest.metrics);
    }
    Ok(())
}

fn cmd_probe(a: &ProbeArgs) -> Result<(), String> {
    if let Some(path) = &a.trace {
        let text =
            std::fs::read_to_string(path).map_err(|e| format!("cannot read `{path}`: {e}"))?;
        let events = strober_probe::parse_chrome_trace(&text)
            .map_err(|e| format!("`{path}` is not a chrome trace: {e}"))?;
        println!("trace: {path} ({} spans)", events.len());
        print!(
            "{}",
            strober_probe::render_profile(&strober_probe::profile(&events))
        );
    }
    if let Some(path) = &a.manifest {
        let text =
            std::fs::read_to_string(path).map_err(|e| format!("cannot read `{path}`: {e}"))?;
        let manifest = RunManifest::from_json(&text)
            .map_err(|e| format!("`{path}` is not a run manifest: {e}"))?;
        if a.trace.is_some() {
            println!();
        }
        println!("manifest:  {path} (schema v{})", manifest.version);
        println!("design:    {}", manifest.design);
        println!("workload:  {}", manifest.workload);
        println!("cache hit: {}", manifest.cache_hit);
        for stage in &manifest.stages {
            println!("  {:<20} {:>10.3} ms", stage.name, stage.millis);
        }
        if !manifest.metrics.is_empty() {
            println!();
            print!("{}", manifest.metrics);
        }
    }
    Ok(())
}

fn cmd_export(a: &ExportArgs) -> Result<(), String> {
    let config = core_config(&a.core)?;
    let design = build_core(&config);
    let out = std::path::Path::new(&a.out);
    std::fs::create_dir_all(out).map_err(|e| format!("cannot create `{}`: {e}", a.out))?;

    let rtl = strober_rtl::verilog::to_verilog(&design).map_err(|e| e.to_string())?;
    std::fs::write(out.join(format!("{}.v", config.name)), rtl).map_err(|e| e.to_string())?;

    let synth = strober_synth::synthesize(&design, &strober_synth::SynthOptions::default())
        .map_err(|e| e.to_string())?;
    let netlist =
        strober_gates::verilog::to_structural_verilog(&synth.netlist).map_err(|e| e.to_string())?;
    std::fs::write(out.join(format!("{}_netlist.v", config.name)), netlist)
        .map_err(|e| e.to_string())?;

    let fame = strober_fame::transform(&design, &strober_fame::FameConfig::default())
        .map_err(|e| e.to_string())?;
    std::fs::write(
        out.join(format!("{}_fame_meta.json", config.name)),
        fame.meta.to_json(),
    )
    .map_err(|e| e.to_string())?;
    let hub = strober_rtl::verilog::to_verilog(&fame.hub).map_err(|e| e.to_string())?;
    std::fs::write(out.join(format!("{}_hub.v", config.name)), hub).map_err(|e| e.to_string())?;

    println!(
        "wrote {}/{{{n}.v, {n}_netlist.v, {n}_hub.v, {n}_fame_meta.json}}",
        a.out,
        n = config.name
    );
    Ok(())
}

fn cmd_cache(a: &CacheArgs) -> Result<(), String> {
    let dir = a.cache_dir.clone().unwrap_or_else(default_cache_dir);
    let mut store =
        Store::open(&dir).map_err(|e| format!("cannot open artifact store at `{dir}`: {e}"))?;
    match a.action {
        CacheAction::Stats => {
            let snap = store.metrics();
            println!("store: {dir}");
            print!("{snap}");
        }
        CacheAction::Clear => {
            let removed = store
                .clear()
                .map_err(|e| format!("cannot clear store: {e}"))?;
            println!("removed {removed} cached artifacts from {dir}");
        }
    }
    Ok(())
}

fn cmd_fuzz(a: &FuzzArgs) -> Result<(), String> {
    let opts = strober_fuzz::FuzzOptions {
        seed_start: a.seed_start,
        seed_end: a.seed_end,
        cycles: a.cycles,
        oracle: strober_fuzz::OracleConfig {
            lanes: a.lanes.clone(),
            flow: !a.no_flow,
            inject: match a.inject.as_deref() {
                Some("xor-as-or") => Some(strober_fuzz::InjectedBug::XorAsOr),
                Some(other) => return Err(format!("unknown injected bug `{other}`")),
                None => None,
            },
        },
        corpus_dir: Some(std::path::PathBuf::from(&a.corpus)),
        shrink_evals: a.shrink_evals,
    };
    let total = opts.seed_end - opts.seed_start;
    strober_probe::info!(
        "fuzzing seeds {}..{} ({} designs, {} cycles each, lanes {:?}{}{})",
        opts.seed_start,
        opts.seed_end,
        total,
        opts.cycles,
        opts.oracle.lanes,
        if opts.oracle.flow { ", with flow" } else { "" },
        if opts.oracle.inject.is_some() {
            ", bug injected"
        } else {
            ""
        }
    );
    let outcome = strober_fuzz::run_fuzz(&opts, |seed, designs| {
        if designs % 25 == 0 {
            strober_probe::info!("  … seed {seed}: {designs}/{total} designs agree");
        }
    })?;
    match outcome.failure {
        None => {
            println!(
                "fuzz: {} designs, all oracles agree ({:.1} s, {:.1} designs/s)",
                outcome.designs,
                outcome.elapsed_secs,
                outcome.designs_per_sec()
            );
            Ok(())
        }
        Some(f) => {
            println!("fuzz: DIVERGENCE at seed {}", f.seed);
            println!("  original:  {}", f.original);
            println!("  minimized: {}", f.reproducer.divergence);
            println!(
                "  reproducer: {} nodes, {} genes",
                f.min_nodes,
                f.reproducer.genome.gene_count()
            );
            if let Some(path) = &f.written_to {
                println!("  written to {}", path.display());
            }
            Err(format!(
                "oracles diverged at seed {} ({})",
                f.seed,
                f.reproducer.divergence.kind()
            ))
        }
    }
}

fn main() -> ExitCode {
    let argv: Vec<String> = std::env::args().skip(1).collect();
    let refs: Vec<&str> = argv.iter().map(String::as_str).collect();
    let cli = match args::parse(&refs) {
        Ok(c) => c,
        Err(e) => {
            strober_probe::error!("{e}");
            return ExitCode::FAILURE;
        }
    };
    if let Some(level) = cli.log_level {
        strober_probe::set_log_level(level);
    }
    let result = match &cli.command {
        Command::Help => {
            print!("{HELP}");
            Ok(())
        }
        Command::Workloads => {
            println!("bundled workloads (scaled versions of the paper's benchmarks):");
            for (name, _) in WORKLOADS {
                println!("  {name}");
            }
            Ok(())
        }
        Command::Run(a) => cmd_run(a),
        Command::Estimate(a) => cmd_estimate(a),
        Command::Export(a) => cmd_export(a),
        Command::Cache(a) => cmd_cache(a),
        Command::Probe(a) => cmd_probe(a),
        Command::Fuzz(a) => cmd_fuzz(a),
    };
    match result {
        Ok(()) => ExitCode::SUCCESS,
        Err(e) => {
            strober_probe::error!("{e}");
            ExitCode::FAILURE
        }
    }
}

//! Hand-rolled argument parsing (no external dependencies).

use std::fmt;

/// Parsed command line.
#[derive(Debug, Clone, PartialEq)]
pub enum Command {
    /// `strober estimate …` — the full sampled-energy flow.
    Estimate(EstimateArgs),
    /// `strober run …` — fast performance-only simulation.
    Run(RunArgs),
    /// `strober workloads` — list bundled workloads.
    Workloads,
    /// `strober export …` — write Verilog/metadata artifacts.
    Export(ExportArgs),
    /// `strober help` or `--help`.
    Help,
}

/// Arguments of the `estimate` subcommand.
#[derive(Debug, Clone, PartialEq)]
pub struct EstimateArgs {
    /// Core configuration name.
    pub core: String,
    /// Bundled workload name.
    pub workload: String,
    /// Path to an assembly file instead of a bundled workload.
    pub asm: Option<String>,
    /// Sample size `n`.
    pub samples: usize,
    /// Replay length `L`.
    pub replay_length: u32,
    /// RNG seed.
    pub seed: u64,
    /// Replay worker threads.
    pub parallel: usize,
    /// Cycle budget.
    pub max_cycles: u64,
    /// Emit the result as JSON.
    pub json: bool,
}

impl Default for EstimateArgs {
    fn default() -> Self {
        EstimateArgs {
            core: "rok".to_owned(),
            workload: "dhrystone".to_owned(),
            asm: None,
            samples: 30,
            replay_length: 128,
            seed: 0x57_0BE5,
            parallel: 4,
            max_cycles: 200_000_000,
            json: false,
        }
    }
}

/// Arguments of the `run` subcommand.
#[derive(Debug, Clone, PartialEq)]
pub struct RunArgs {
    /// Core configuration name.
    pub core: String,
    /// Bundled workload name.
    pub workload: String,
    /// Path to an assembly file instead of a bundled workload.
    pub asm: Option<String>,
    /// Cycle budget.
    pub max_cycles: u64,
}

impl Default for RunArgs {
    fn default() -> Self {
        RunArgs {
            core: "rok".to_owned(),
            workload: "dhrystone".to_owned(),
            asm: None,
            max_cycles: 200_000_000,
        }
    }
}

/// Arguments of the `export` subcommand.
#[derive(Debug, Clone, PartialEq)]
pub struct ExportArgs {
    /// Core configuration name.
    pub core: String,
    /// Output directory.
    pub out: String,
}

/// A parse failure with a message for the user.
#[derive(Debug, Clone, PartialEq)]
pub struct ArgError(pub String);

impl fmt::Display for ArgError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}", self.0)
    }
}

impl std::error::Error for ArgError {}

fn take_value<'a>(
    flag: &str,
    it: &mut impl Iterator<Item = &'a str>,
) -> Result<String, ArgError> {
    it.next()
        .map(str::to_owned)
        .ok_or_else(|| ArgError(format!("flag {flag} expects a value")))
}

/// Parses a command line (without the program name).
///
/// # Errors
///
/// Returns [`ArgError`] with a user-facing message for unknown
/// subcommands, unknown flags or malformed values.
pub fn parse(args: &[&str]) -> Result<Command, ArgError> {
    let mut it = args.iter().copied();
    let sub = match it.next() {
        None | Some("help") | Some("--help") | Some("-h") => return Ok(Command::Help),
        Some(s) => s,
    };
    match sub {
        "workloads" => Ok(Command::Workloads),
        "estimate" => {
            let mut a = EstimateArgs::default();
            while let Some(flag) = it.next() {
                match flag {
                    "--core" => a.core = take_value(flag, &mut it)?,
                    "--workload" => a.workload = take_value(flag, &mut it)?,
                    "--asm" => a.asm = Some(take_value(flag, &mut it)?),
                    "-n" | "--samples" => {
                        a.samples = take_value(flag, &mut it)?
                            .parse()
                            .map_err(|_| ArgError(format!("{flag}: not a number")))?;
                    }
                    "-L" | "--replay-length" => {
                        a.replay_length = take_value(flag, &mut it)?
                            .parse()
                            .map_err(|_| ArgError(format!("{flag}: not a number")))?;
                    }
                    "--seed" => {
                        a.seed = take_value(flag, &mut it)?
                            .parse()
                            .map_err(|_| ArgError(format!("{flag}: not a number")))?;
                    }
                    "--parallel" => {
                        a.parallel = take_value(flag, &mut it)?
                            .parse()
                            .map_err(|_| ArgError(format!("{flag}: not a number")))?;
                    }
                    "--max-cycles" => {
                        a.max_cycles = take_value(flag, &mut it)?
                            .parse()
                            .map_err(|_| ArgError(format!("{flag}: not a number")))?;
                    }
                    "--json" => a.json = true,
                    other => return Err(ArgError(format!("unknown flag `{other}`"))),
                }
            }
            Ok(Command::Estimate(a))
        }
        "run" => {
            let mut a = RunArgs::default();
            while let Some(flag) = it.next() {
                match flag {
                    "--core" => a.core = take_value(flag, &mut it)?,
                    "--workload" => a.workload = take_value(flag, &mut it)?,
                    "--asm" => a.asm = Some(take_value(flag, &mut it)?),
                    "--max-cycles" => {
                        a.max_cycles = take_value(flag, &mut it)?
                            .parse()
                            .map_err(|_| ArgError(format!("{flag}: not a number")))?;
                    }
                    other => return Err(ArgError(format!("unknown flag `{other}`"))),
                }
            }
            Ok(Command::Run(a))
        }
        "export" => {
            let mut a = ExportArgs {
                core: "rok".to_owned(),
                out: "strober-export".to_owned(),
            };
            while let Some(flag) = it.next() {
                match flag {
                    "--core" => a.core = take_value(flag, &mut it)?,
                    "--out" => a.out = take_value(flag, &mut it)?,
                    other => return Err(ArgError(format!("unknown flag `{other}`"))),
                }
            }
            Ok(Command::Export(a))
        }
        other => Err(ArgError(format!(
            "unknown subcommand `{other}` (try `strober help`)"
        ))),
    }
}

/// The help text.
pub const HELP: &str = "\
strober — sample-based energy simulation for arbitrary RTL

USAGE:
  strober estimate [--core rok|boum-1w|boum-2w] [--workload NAME | --asm FILE]
                   [-n N] [-L CYCLES] [--seed S] [--parallel P]
                   [--max-cycles N] [--json]
      Run the full flow: fast sampled simulation, gate-level replay,
      average power with a 99% confidence interval.

  strober run      [--core NAME] [--workload NAME | --asm FILE] [--max-cycles N]
      Fast performance-only simulation (cycles, CPI, exit code).

  strober workloads
      List the bundled workloads.

  strober export   [--core NAME] [--out DIR]
      Write Verilog (RTL, netlist, FAME hub) and host metadata.
";

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parses_estimate_flags() {
        let cmd = parse(&[
            "estimate", "--core", "boum-2w", "--workload", "coremark", "-n", "40", "-L", "256",
            "--json",
        ])
        .unwrap();
        let Command::Estimate(a) = cmd else {
            panic!("wrong command")
        };
        assert_eq!(a.core, "boum-2w");
        assert_eq!(a.workload, "coremark");
        assert_eq!(a.samples, 40);
        assert_eq!(a.replay_length, 256);
        assert!(a.json);
    }

    #[test]
    fn defaults_apply() {
        let Command::Run(a) = parse(&["run"]).unwrap() else {
            panic!("wrong command")
        };
        assert_eq!(a.core, "rok");
        assert_eq!(a.workload, "dhrystone");
    }

    #[test]
    fn help_variants() {
        assert_eq!(parse(&[]).unwrap(), Command::Help);
        assert_eq!(parse(&["--help"]).unwrap(), Command::Help);
        assert_eq!(parse(&["help"]).unwrap(), Command::Help);
    }

    #[test]
    fn errors_are_descriptive() {
        assert!(parse(&["bogus"]).unwrap_err().0.contains("subcommand"));
        assert!(parse(&["estimate", "--nope"]).unwrap_err().0.contains("unknown flag"));
        assert!(parse(&["estimate", "-n"]).unwrap_err().0.contains("expects a value"));
        assert!(parse(&["estimate", "-n", "abc"]).unwrap_err().0.contains("not a number"));
    }
}

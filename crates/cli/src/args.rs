//! Hand-rolled argument parsing (no external dependencies).

use std::fmt;

/// The fully parsed command line: global options plus one subcommand.
#[derive(Debug, Clone, PartialEq)]
pub struct Cli {
    /// Log filter from the global `--log-level` flag (None = default).
    pub log_level: Option<strober_probe::Level>,
    /// The subcommand.
    pub command: Command,
}

/// Parsed command line.
#[derive(Debug, Clone, PartialEq)]
pub enum Command {
    /// `strober estimate …` — the full sampled-energy flow.
    Estimate(EstimateArgs),
    /// `strober run …` — fast performance-only simulation.
    Run(RunArgs),
    /// `strober workloads` — list bundled workloads.
    Workloads,
    /// `strober export …` — write Verilog/metadata artifacts.
    Export(ExportArgs),
    /// `strober cache …` — inspect or clear the artifact store.
    Cache(CacheArgs),
    /// `strober probe report …` — summarise a recorded trace/manifest.
    Probe(ProbeArgs),
    /// `strober fuzz …` — differential fuzzing of the execution engines.
    Fuzz(FuzzArgs),
    /// `strober serve …` — run the persistent estimation server.
    Serve(ServeArgs),
    /// `strober submit …` — submit a job to a running server.
    Submit(SubmitArgs),
    /// `strober jobs …` — list a running server's jobs.
    Jobs(JobsArgs),
    /// `strober cancel …` — cancel a job on a running server.
    Cancel(CancelArgs),
    /// `strober top …` — live telemetry view of a running server.
    Top(TopArgs),
    /// `strober bench report …` — run the micro-benchmark suite and
    /// emit a JSON report.
    Bench(BenchArgs),
    /// `strober help` or `--help`.
    Help,
}

/// The default TCP address the server listens on and clients dial.
pub const DEFAULT_ADDR: &str = "127.0.0.1:7207";

/// Arguments of the `serve` subcommand.
#[derive(Debug, Clone, PartialEq)]
pub struct ServeArgs {
    /// TCP listen address (port 0 = ephemeral).
    pub addr: String,
    /// Additional Unix-socket listen path.
    pub unix_socket: Option<String>,
    /// Worker threads (0 = server default).
    pub workers: usize,
    /// Artifact store directory (None = default location).
    pub cache_dir: Option<String>,
    /// Disable the on-disk artifact store.
    pub no_cache: bool,
    /// Graceful-shutdown drain deadline, in milliseconds.
    pub drain_ms: u64,
    /// HTTP listen address for Prometheus `GET /metrics` scraping
    /// (None = no HTTP endpoint; the framed `Scrape` request always
    /// works).
    pub metrics_addr: Option<String>,
    /// Flight-recorder frame interval in milliseconds (0 = default).
    pub flight_interval_ms: u64,
    /// Flight-recorder ring capacity in frames (0 = default).
    pub flight_capacity: usize,
}

impl Default for ServeArgs {
    fn default() -> Self {
        ServeArgs {
            addr: DEFAULT_ADDR.to_owned(),
            unix_socket: None,
            workers: 0,
            cache_dir: None,
            no_cache: false,
            drain_ms: 30_000,
            metrics_addr: None,
            flight_interval_ms: 0,
            flight_capacity: 0,
        }
    }
}

/// Arguments of the `top` subcommand.
#[derive(Debug, Clone, PartialEq)]
pub struct TopArgs {
    /// Server address to dial.
    pub addr: String,
    /// Refresh interval in milliseconds.
    pub interval_ms: u64,
    /// Stop after this many rendered frames (0 = run until the server
    /// goes away or the process is interrupted).
    pub frames: u64,
    /// Render plainly without ANSI cursor control (implied by
    /// `frames == 1`).
    pub plain: bool,
}

impl Default for TopArgs {
    fn default() -> Self {
        TopArgs {
            addr: DEFAULT_ADDR.to_owned(),
            interval_ms: 1_000,
            frames: 0,
            plain: false,
        }
    }
}

/// Arguments of the `bench report` subcommand.
#[derive(Debug, Clone, PartialEq)]
pub struct BenchArgs {
    /// Where to write the JSON report.
    pub out: String,
}

impl Default for BenchArgs {
    fn default() -> Self {
        BenchArgs {
            out: "BENCH_10.json".to_owned(),
        }
    }
}

/// Arguments of the `submit` subcommand. The estimate knobs mirror
/// `strober estimate`; the fuzz knobs mirror `strober fuzz`.
#[derive(Debug, Clone, PartialEq)]
pub struct SubmitArgs {
    /// Server address to dial.
    pub addr: String,
    /// Job kind: `estimate`, `replay` or `fuzz`.
    pub kind: String,
    /// Scheduling class: `high`, `normal` or `low`.
    pub priority: String,
    /// Submit and return the job id without streaming events.
    pub detach: bool,
    /// Emit the result as JSON.
    pub json: bool,
    /// Core configuration name (estimate/replay).
    pub core: String,
    /// Bundled workload name (estimate/replay).
    pub workload: String,
    /// Path to an assembly file sent inline instead of a workload name.
    pub asm: Option<String>,
    /// Sample size `n`.
    pub samples: usize,
    /// Replay length `L`.
    pub replay_length: u32,
    /// RNG seed.
    pub seed: u64,
    /// Replay worker threads (0 = server default).
    pub parallel: usize,
    /// Bit-parallel replay lanes per worker (1..=64).
    pub batch_lanes: usize,
    /// Cycle budget.
    pub max_cycles: u64,
    /// Disable the optimizing tape compiler.
    pub no_tape_opt: bool,
    /// Hub-simulator settle worker threads (1 = sequential).
    pub hub_threads: usize,
    /// Hub settle engine: `auto`, `interp`, `partitioned` or `jit`.
    pub hub_engine: String,
    /// Target relative error ε for adaptive stopping (0 = disabled).
    pub target_error: f64,
    /// Minimum replayed samples before the stopping rule may fire.
    pub min_samples: usize,
    /// First fuzz seed (inclusive).
    pub seed_start: u64,
    /// Last fuzz seed (exclusive).
    pub seed_end: u64,
    /// Fuzz workload length per design, in cycles.
    pub cycles: u32,
}

impl Default for SubmitArgs {
    fn default() -> Self {
        SubmitArgs {
            addr: DEFAULT_ADDR.to_owned(),
            kind: "estimate".to_owned(),
            priority: "normal".to_owned(),
            detach: false,
            json: false,
            core: "rok".to_owned(),
            workload: "dhrystone".to_owned(),
            asm: None,
            samples: 30,
            replay_length: 128,
            seed: 0x57_0BE5,
            parallel: 0,
            batch_lanes: 64,
            max_cycles: 200_000_000,
            no_tape_opt: false,
            hub_threads: 1,
            hub_engine: "auto".to_owned(),
            target_error: 0.0,
            min_samples: 30,
            seed_start: 0,
            seed_end: 50,
            cycles: 48,
        }
    }
}

/// Arguments of the `jobs` subcommand.
#[derive(Debug, Clone, PartialEq)]
pub struct JobsArgs {
    /// Server address to dial.
    pub addr: String,
}

/// Arguments of the `cancel` subcommand.
#[derive(Debug, Clone, PartialEq)]
pub struct CancelArgs {
    /// Server address to dial.
    pub addr: String,
    /// Job id to cancel.
    pub job: u64,
}

/// Arguments of the `fuzz` subcommand.
#[derive(Debug, Clone, PartialEq)]
pub struct FuzzArgs {
    /// First seed (inclusive).
    pub seed_start: u64,
    /// Last seed (exclusive).
    pub seed_end: u64,
    /// Workload length per design, in cycles.
    pub cycles: u32,
    /// Batch lane counts to cross-check.
    pub lanes: Vec<usize>,
    /// Skip the `StroberFlow` round-trip oracle.
    pub no_flow: bool,
    /// Name of the bug to inject (`xor-as-or`), for harness self-tests.
    pub inject: Option<String>,
    /// Directory minimized reproducers are written to.
    pub corpus: String,
    /// Oracle-evaluation budget for the shrinker.
    pub shrink_evals: usize,
}

impl Default for FuzzArgs {
    fn default() -> Self {
        FuzzArgs {
            seed_start: 0,
            seed_end: 200,
            cycles: 48,
            lanes: vec![1, 7, 63, 64],
            no_flow: false,
            inject: None,
            corpus: "fuzz/corpus".to_owned(),
            shrink_evals: 2000,
        }
    }
}

/// Arguments of the `estimate` subcommand.
#[derive(Debug, Clone, PartialEq)]
pub struct EstimateArgs {
    /// Core configuration name.
    pub core: String,
    /// Bundled workload name.
    pub workload: String,
    /// Path to an assembly file instead of a bundled workload.
    pub asm: Option<String>,
    /// Sample size `n`.
    pub samples: usize,
    /// Replay length `L`.
    pub replay_length: u32,
    /// RNG seed.
    pub seed: u64,
    /// Replay worker threads.
    pub parallel: usize,
    /// Bit-parallel replay lanes per worker (1..=64; 1 = scalar replay).
    pub batch_lanes: usize,
    /// Cycle budget.
    pub max_cycles: u64,
    /// Emit the result as JSON.
    pub json: bool,
    /// Artifact store directory (None = default location).
    pub cache_dir: Option<String>,
    /// Disable the artifact store entirely.
    pub no_cache: bool,
    /// Where to write the JSON run manifest (None = inside the cache dir).
    pub manifest: Option<String>,
    /// Where to write a chrome://tracing JSON trace of the run.
    pub trace_out: Option<String>,
    /// Print the metrics snapshot table after the results.
    pub metrics: bool,
    /// Disable the optimizing tape compiler on the hub simulator.
    pub no_tape_opt: bool,
    /// Hub-simulator settle worker threads (1 = sequential; more selects
    /// the partitioned parallel engine).
    pub hub_threads: usize,
    /// Hub settle engine: `auto` (threads decide), `interp`,
    /// `partitioned` or `jit` (native code compiled from the op tape).
    pub hub_engine: String,
    /// Target relative error ε for confidence-driven adaptive stopping
    /// (0 = disabled). Implies the streaming capture→replay pipeline.
    pub target_error: f64,
    /// Minimum replayed samples before the stopping rule may fire.
    pub min_samples: usize,
    /// Use the streaming capture→replay pipeline even without a stopping
    /// rule (replay overlaps capture; results stay bit-identical).
    pub stream: bool,
}

impl Default for EstimateArgs {
    fn default() -> Self {
        EstimateArgs {
            core: "rok".to_owned(),
            workload: "dhrystone".to_owned(),
            asm: None,
            samples: 30,
            replay_length: 128,
            seed: 0x57_0BE5,
            // One replay worker per hardware thread; snapshots are
            // independent, so replay scales until the machine runs out.
            parallel: default_parallelism(),
            // Pack 64 snapshots per u64 bit-lane pass; composes with the
            // worker threads above (threads × lanes concurrent replays).
            batch_lanes: 64,
            max_cycles: 200_000_000,
            json: false,
            cache_dir: None,
            no_cache: false,
            manifest: None,
            trace_out: None,
            metrics: false,
            no_tape_opt: false,
            hub_threads: 1,
            hub_engine: "auto".to_owned(),
            target_error: 0.0,
            min_samples: 30,
            stream: false,
        }
    }
}

/// Arguments of the `run` subcommand.
#[derive(Debug, Clone, PartialEq)]
pub struct RunArgs {
    /// Core configuration name.
    pub core: String,
    /// Bundled workload name.
    pub workload: String,
    /// Path to an assembly file instead of a bundled workload.
    pub asm: Option<String>,
    /// Cycle budget.
    pub max_cycles: u64,
}

impl Default for RunArgs {
    fn default() -> Self {
        RunArgs {
            core: "rok".to_owned(),
            workload: "dhrystone".to_owned(),
            asm: None,
            max_cycles: 200_000_000,
        }
    }
}

/// What `strober cache` should do.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum CacheAction {
    /// Print object counts, sizes and behaviour counters.
    Stats,
    /// Delete every cached artifact.
    Clear,
}

/// Arguments of the `cache` subcommand.
#[derive(Debug, Clone, PartialEq)]
pub struct CacheArgs {
    /// The action to perform.
    pub action: CacheAction,
    /// Artifact store directory (None = default location).
    pub cache_dir: Option<String>,
}

/// The default replay parallelism: every available hardware thread.
pub fn default_parallelism() -> usize {
    std::thread::available_parallelism()
        .map(std::num::NonZeroUsize::get)
        .unwrap_or(1)
}

/// The artifact store location used when `--cache-dir` is not given:
/// `$STROBER_CACHE_DIR`, else `$XDG_CACHE_HOME/strober`, else
/// `$HOME/.cache/strober`, else `.strober-cache` in the working directory.
pub fn default_cache_dir() -> String {
    if let Ok(dir) = std::env::var("STROBER_CACHE_DIR") {
        return dir;
    }
    if let Ok(dir) = std::env::var("XDG_CACHE_HOME") {
        return format!("{dir}/strober");
    }
    if let Ok(home) = std::env::var("HOME") {
        return format!("{home}/.cache/strober");
    }
    ".strober-cache".to_owned()
}

/// Arguments of the `probe report` subcommand.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct ProbeArgs {
    /// Chrome-trace JSON file to profile (as written by `--trace-out`).
    pub trace: Option<String>,
    /// Run manifest whose timings and metrics should be summarised.
    pub manifest: Option<String>,
}

/// Arguments of the `export` subcommand.
#[derive(Debug, Clone, PartialEq)]
pub struct ExportArgs {
    /// Core configuration name.
    pub core: String,
    /// Output directory.
    pub out: String,
}

/// A parse failure with a message for the user.
#[derive(Debug, Clone, PartialEq)]
pub struct ArgError(pub String);

impl fmt::Display for ArgError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}", self.0)
    }
}

impl std::error::Error for ArgError {}

fn take_value<'a>(flag: &str, it: &mut impl Iterator<Item = &'a str>) -> Result<String, ArgError> {
    it.next()
        .map(str::to_owned)
        .ok_or_else(|| ArgError(format!("flag {flag} expects a value")))
}

/// Parses a command line (without the program name).
///
/// The global `--log-level LEVEL` flag is accepted before the
/// subcommand; everything after the subcommand belongs to it.
///
/// # Errors
///
/// Returns [`ArgError`] with a user-facing message for unknown
/// subcommands, unknown flags or malformed values.
pub fn parse(args: &[&str]) -> Result<Cli, ArgError> {
    let mut it = args.iter().copied();
    let mut log_level = None;
    let sub = loop {
        match it.next() {
            None | Some("help") | Some("--help") | Some("-h") => {
                return Ok(Cli {
                    log_level,
                    command: Command::Help,
                })
            }
            Some("--log-level") => {
                log_level = Some(
                    take_value("--log-level", &mut it)?
                        .parse::<strober_probe::Level>()
                        .map_err(|e| ArgError(e.to_string()))?,
                );
            }
            Some(s) => break s,
        }
    };
    let command = parse_command(sub, &mut it)?;
    Ok(Cli { log_level, command })
}

fn parse_command<'a>(
    sub: &str,
    mut it: &mut impl Iterator<Item = &'a str>,
) -> Result<Command, ArgError> {
    match sub {
        "workloads" => Ok(Command::Workloads),
        "estimate" => {
            let mut a = EstimateArgs::default();
            while let Some(flag) = it.next() {
                match flag {
                    "--core" => a.core = take_value(flag, &mut it)?,
                    "--workload" => a.workload = take_value(flag, &mut it)?,
                    "--asm" => a.asm = Some(take_value(flag, &mut it)?),
                    "-n" | "--samples" => {
                        a.samples = take_value(flag, &mut it)?
                            .parse()
                            .map_err(|_| ArgError(format!("{flag}: not a number")))?;
                    }
                    "-L" | "--replay-length" => {
                        a.replay_length = take_value(flag, &mut it)?
                            .parse()
                            .map_err(|_| ArgError(format!("{flag}: not a number")))?;
                    }
                    "--seed" => {
                        a.seed = take_value(flag, &mut it)?
                            .parse()
                            .map_err(|_| ArgError(format!("{flag}: not a number")))?;
                    }
                    "--parallel" | "--jobs" | "-j" => {
                        a.parallel = take_value(flag, &mut it)?
                            .parse()
                            .map_err(|_| ArgError(format!("{flag}: not a number")))?;
                        if a.parallel == 0 {
                            return Err(ArgError(format!("{flag}: must be at least 1")));
                        }
                    }
                    "--batch-lanes" => {
                        a.batch_lanes = take_value(flag, &mut it)?
                            .parse()
                            .map_err(|_| ArgError(format!("{flag}: not a number")))?;
                        if a.batch_lanes == 0 || a.batch_lanes > 64 {
                            return Err(ArgError(format!("{flag}: must be in 1..=64")));
                        }
                    }
                    "--max-cycles" => {
                        a.max_cycles = take_value(flag, &mut it)?
                            .parse()
                            .map_err(|_| ArgError(format!("{flag}: not a number")))?;
                    }
                    "--json" => a.json = true,
                    "--cache-dir" => a.cache_dir = Some(take_value(flag, &mut it)?),
                    "--no-cache" => a.no_cache = true,
                    "--manifest" => a.manifest = Some(take_value(flag, &mut it)?),
                    "--trace-out" => a.trace_out = Some(take_value(flag, &mut it)?),
                    "--metrics" => a.metrics = true,
                    "--no-tape-opt" => a.no_tape_opt = true,
                    "--hub-threads" => {
                        a.hub_threads = take_value(flag, &mut it)?
                            .parse()
                            .map_err(|_| ArgError(format!("{flag}: not a number")))?;
                        if a.hub_threads == 0 || a.hub_threads > 64 {
                            return Err(ArgError(format!("{flag}: must be in 1..=64")));
                        }
                    }
                    "--hub-engine" => {
                        a.hub_engine = take_value(flag, &mut it)?;
                        if !matches!(
                            a.hub_engine.as_str(),
                            "auto" | "interp" | "partitioned" | "jit"
                        ) {
                            return Err(ArgError(format!(
                                "{flag}: must be one of auto|interp|partitioned|jit"
                            )));
                        }
                    }
                    "--target-error" => {
                        a.target_error = take_value(flag, &mut it)?
                            .parse()
                            .map_err(|_| ArgError(format!("{flag}: not a number")))?;
                        if !(a.target_error > 0.0 && a.target_error < 1.0) {
                            return Err(ArgError(format!("{flag}: must be in (0, 1)")));
                        }
                    }
                    "--min-samples" => {
                        a.min_samples = take_value(flag, &mut it)?
                            .parse()
                            .map_err(|_| ArgError(format!("{flag}: not a number")))?;
                        if a.min_samples < 2 {
                            return Err(ArgError(format!("{flag}: must be at least 2")));
                        }
                    }
                    "--stream" => a.stream = true,
                    other => return Err(ArgError(format!("unknown flag `{other}`"))),
                }
            }
            Ok(Command::Estimate(a))
        }
        "run" => {
            let mut a = RunArgs::default();
            while let Some(flag) = it.next() {
                match flag {
                    "--core" => a.core = take_value(flag, &mut it)?,
                    "--workload" => a.workload = take_value(flag, &mut it)?,
                    "--asm" => a.asm = Some(take_value(flag, &mut it)?),
                    "--max-cycles" => {
                        a.max_cycles = take_value(flag, &mut it)?
                            .parse()
                            .map_err(|_| ArgError(format!("{flag}: not a number")))?;
                    }
                    other => return Err(ArgError(format!("unknown flag `{other}`"))),
                }
            }
            Ok(Command::Run(a))
        }
        "cache" => {
            let action = match it.next() {
                Some("stats") => CacheAction::Stats,
                Some("clear") => CacheAction::Clear,
                Some(other) => {
                    return Err(ArgError(format!(
                        "unknown cache action `{other}` (expected stats or clear)"
                    )))
                }
                None => {
                    return Err(ArgError(
                        "cache expects an action: stats or clear".to_owned(),
                    ))
                }
            };
            let mut a = CacheArgs {
                action,
                cache_dir: None,
            };
            while let Some(flag) = it.next() {
                match flag {
                    "--cache-dir" => a.cache_dir = Some(take_value(flag, &mut it)?),
                    other => return Err(ArgError(format!("unknown flag `{other}`"))),
                }
            }
            Ok(Command::Cache(a))
        }
        "probe" => {
            match it.next() {
                Some("report") => {}
                Some(other) => {
                    return Err(ArgError(format!(
                        "unknown probe action `{other}` (expected report)"
                    )))
                }
                None => return Err(ArgError("probe expects an action: report".to_owned())),
            }
            let mut a = ProbeArgs::default();
            while let Some(flag) = it.next() {
                match flag {
                    "--trace" => a.trace = Some(take_value(flag, &mut it)?),
                    "--manifest" => a.manifest = Some(take_value(flag, &mut it)?),
                    other => return Err(ArgError(format!("unknown flag `{other}`"))),
                }
            }
            if a.trace.is_none() && a.manifest.is_none() {
                return Err(ArgError(
                    "probe report needs --trace FILE and/or --manifest FILE".to_owned(),
                ));
            }
            Ok(Command::Probe(a))
        }
        "export" => {
            let mut a = ExportArgs {
                core: "rok".to_owned(),
                out: "strober-export".to_owned(),
            };
            while let Some(flag) = it.next() {
                match flag {
                    "--core" => a.core = take_value(flag, &mut it)?,
                    "--out" => a.out = take_value(flag, &mut it)?,
                    other => return Err(ArgError(format!("unknown flag `{other}`"))),
                }
            }
            Ok(Command::Export(a))
        }
        "fuzz" => {
            let mut a = FuzzArgs::default();
            while let Some(flag) = it.next() {
                match flag {
                    "--seeds" => {
                        let v = take_value(flag, &mut it)?;
                        let Some((lo, hi)) = v.split_once("..") else {
                            return Err(ArgError(format!("{flag}: expected a range like 0..200")));
                        };
                        a.seed_start = lo
                            .parse()
                            .map_err(|_| ArgError(format!("{flag}: not a number")))?;
                        a.seed_end = hi
                            .parse()
                            .map_err(|_| ArgError(format!("{flag}: not a number")))?;
                        if a.seed_end <= a.seed_start {
                            return Err(ArgError(format!("{flag}: empty range {v}")));
                        }
                    }
                    "--cycles" => {
                        a.cycles = take_value(flag, &mut it)?
                            .parse()
                            .map_err(|_| ArgError(format!("{flag}: not a number")))?;
                        if a.cycles == 0 {
                            return Err(ArgError(format!("{flag}: must be at least 1")));
                        }
                    }
                    "--lanes" => {
                        let v = take_value(flag, &mut it)?;
                        a.lanes = v
                            .split(',')
                            .map(|s| {
                                s.trim()
                                    .parse::<usize>()
                                    .ok()
                                    .filter(|&l| (1..=64).contains(&l))
                                    .ok_or_else(|| {
                                        ArgError(format!(
                                            "{flag}: `{s}` is not a lane count in 1..=64"
                                        ))
                                    })
                            })
                            .collect::<Result<Vec<_>, _>>()?;
                        if a.lanes.is_empty() {
                            return Err(ArgError(format!("{flag}: needs at least one lane count")));
                        }
                    }
                    "--no-flow" => a.no_flow = true,
                    "--inject" => {
                        let v = take_value(flag, &mut it)?;
                        if v != "xor-as-or" {
                            return Err(ArgError(format!(
                                "{flag}: unknown bug `{v}` (expected xor-as-or)"
                            )));
                        }
                        a.inject = Some(v);
                    }
                    "--corpus" => a.corpus = take_value(flag, &mut it)?,
                    "--shrink-evals" => {
                        a.shrink_evals = take_value(flag, &mut it)?
                            .parse()
                            .map_err(|_| ArgError(format!("{flag}: not a number")))?;
                    }
                    other => return Err(ArgError(format!("unknown flag `{other}`"))),
                }
            }
            Ok(Command::Fuzz(a))
        }
        "serve" => {
            let mut a = ServeArgs::default();
            while let Some(flag) = it.next() {
                match flag {
                    "--addr" => a.addr = take_value(flag, &mut it)?,
                    "--unix-socket" => a.unix_socket = Some(take_value(flag, &mut it)?),
                    "--workers" => {
                        a.workers = take_value(flag, &mut it)?
                            .parse()
                            .map_err(|_| ArgError(format!("{flag}: not a number")))?;
                    }
                    "--cache-dir" => a.cache_dir = Some(take_value(flag, &mut it)?),
                    "--no-cache" => a.no_cache = true,
                    "--drain-ms" => {
                        a.drain_ms = take_value(flag, &mut it)?
                            .parse()
                            .map_err(|_| ArgError(format!("{flag}: not a number")))?;
                    }
                    "--metrics-addr" => a.metrics_addr = Some(take_value(flag, &mut it)?),
                    "--flight-interval-ms" => {
                        a.flight_interval_ms = take_value(flag, &mut it)?
                            .parse()
                            .map_err(|_| ArgError(format!("{flag}: not a number")))?;
                    }
                    "--flight-capacity" => {
                        a.flight_capacity = take_value(flag, &mut it)?
                            .parse()
                            .map_err(|_| ArgError(format!("{flag}: not a number")))?;
                    }
                    other => return Err(ArgError(format!("unknown flag `{other}`"))),
                }
            }
            Ok(Command::Serve(a))
        }
        "submit" => {
            let mut a = SubmitArgs::default();
            match it.next() {
                Some(kind @ ("estimate" | "replay" | "fuzz")) => a.kind = kind.to_owned(),
                Some(other) => {
                    return Err(ArgError(format!(
                        "unknown job kind `{other}` (expected estimate, replay or fuzz)"
                    )))
                }
                None => {
                    return Err(ArgError(
                        "submit expects a job kind: estimate, replay or fuzz".to_owned(),
                    ))
                }
            }
            while let Some(flag) = it.next() {
                match flag {
                    "--addr" => a.addr = take_value(flag, &mut it)?,
                    "--priority" => {
                        let v = take_value(flag, &mut it)?;
                        if !matches!(v.as_str(), "high" | "normal" | "low") {
                            return Err(ArgError(format!(
                                "{flag}: `{v}` is not high, normal or low"
                            )));
                        }
                        a.priority = v;
                    }
                    "--detach" => a.detach = true,
                    "--json" => a.json = true,
                    "--core" => a.core = take_value(flag, &mut it)?,
                    "--workload" => a.workload = take_value(flag, &mut it)?,
                    "--asm" => a.asm = Some(take_value(flag, &mut it)?),
                    "-n" | "--samples" => {
                        a.samples = take_value(flag, &mut it)?
                            .parse()
                            .map_err(|_| ArgError(format!("{flag}: not a number")))?;
                    }
                    "-L" | "--replay-length" => {
                        a.replay_length = take_value(flag, &mut it)?
                            .parse()
                            .map_err(|_| ArgError(format!("{flag}: not a number")))?;
                    }
                    "--seed" => {
                        a.seed = take_value(flag, &mut it)?
                            .parse()
                            .map_err(|_| ArgError(format!("{flag}: not a number")))?;
                    }
                    "--parallel" | "--jobs" | "-j" => {
                        a.parallel = take_value(flag, &mut it)?
                            .parse()
                            .map_err(|_| ArgError(format!("{flag}: not a number")))?;
                    }
                    "--batch-lanes" => {
                        a.batch_lanes = take_value(flag, &mut it)?
                            .parse()
                            .map_err(|_| ArgError(format!("{flag}: not a number")))?;
                        if a.batch_lanes == 0 || a.batch_lanes > 64 {
                            return Err(ArgError(format!("{flag}: must be in 1..=64")));
                        }
                    }
                    "--max-cycles" => {
                        a.max_cycles = take_value(flag, &mut it)?
                            .parse()
                            .map_err(|_| ArgError(format!("{flag}: not a number")))?;
                    }
                    "--no-tape-opt" => a.no_tape_opt = true,
                    "--hub-threads" => {
                        a.hub_threads = take_value(flag, &mut it)?
                            .parse()
                            .map_err(|_| ArgError(format!("{flag}: not a number")))?;
                        if a.hub_threads == 0 || a.hub_threads > 64 {
                            return Err(ArgError(format!("{flag}: must be in 1..=64")));
                        }
                    }
                    "--hub-engine" => {
                        a.hub_engine = take_value(flag, &mut it)?;
                        if !matches!(
                            a.hub_engine.as_str(),
                            "auto" | "interp" | "partitioned" | "jit"
                        ) {
                            return Err(ArgError(format!(
                                "{flag}: must be one of auto|interp|partitioned|jit"
                            )));
                        }
                    }
                    "--target-error" => {
                        a.target_error = take_value(flag, &mut it)?
                            .parse()
                            .map_err(|_| ArgError(format!("{flag}: not a number")))?;
                        if !(a.target_error > 0.0 && a.target_error < 1.0) {
                            return Err(ArgError(format!("{flag}: must be in (0, 1)")));
                        }
                    }
                    "--min-samples" => {
                        a.min_samples = take_value(flag, &mut it)?
                            .parse()
                            .map_err(|_| ArgError(format!("{flag}: not a number")))?;
                        if a.min_samples < 2 {
                            return Err(ArgError(format!("{flag}: must be at least 2")));
                        }
                    }
                    "--seeds" => {
                        let v = take_value(flag, &mut it)?;
                        let Some((lo, hi)) = v.split_once("..") else {
                            return Err(ArgError(format!("{flag}: expected a range like 0..200")));
                        };
                        a.seed_start = lo
                            .parse()
                            .map_err(|_| ArgError(format!("{flag}: not a number")))?;
                        a.seed_end = hi
                            .parse()
                            .map_err(|_| ArgError(format!("{flag}: not a number")))?;
                        if a.seed_end <= a.seed_start {
                            return Err(ArgError(format!("{flag}: empty range {v}")));
                        }
                    }
                    "--cycles" => {
                        a.cycles = take_value(flag, &mut it)?
                            .parse()
                            .map_err(|_| ArgError(format!("{flag}: not a number")))?;
                    }
                    other => return Err(ArgError(format!("unknown flag `{other}`"))),
                }
            }
            Ok(Command::Submit(a))
        }
        "jobs" => {
            let mut a = JobsArgs {
                addr: DEFAULT_ADDR.to_owned(),
            };
            while let Some(flag) = it.next() {
                match flag {
                    "--addr" => a.addr = take_value(flag, &mut it)?,
                    other => return Err(ArgError(format!("unknown flag `{other}`"))),
                }
            }
            Ok(Command::Jobs(a))
        }
        "cancel" => {
            let Some(id) = it.next() else {
                return Err(ArgError("cancel expects a job id".to_owned()));
            };
            let job = id
                .parse()
                .map_err(|_| ArgError(format!("`{id}` is not a job id")))?;
            let mut a = CancelArgs {
                addr: DEFAULT_ADDR.to_owned(),
                job,
            };
            while let Some(flag) = it.next() {
                match flag {
                    "--addr" => a.addr = take_value(flag, &mut it)?,
                    other => return Err(ArgError(format!("unknown flag `{other}`"))),
                }
            }
            Ok(Command::Cancel(a))
        }
        "top" => {
            let mut a = TopArgs::default();
            while let Some(flag) = it.next() {
                match flag {
                    "--addr" => a.addr = take_value(flag, &mut it)?,
                    "--interval-ms" => {
                        a.interval_ms = take_value(flag, &mut it)?
                            .parse()
                            .map_err(|_| ArgError(format!("{flag}: not a number")))?;
                        if a.interval_ms == 0 {
                            return Err(ArgError(format!("{flag}: must be at least 1")));
                        }
                    }
                    "--frames" => {
                        a.frames = take_value(flag, &mut it)?
                            .parse()
                            .map_err(|_| ArgError(format!("{flag}: not a number")))?;
                    }
                    "--once" => a.frames = 1,
                    "--plain" => a.plain = true,
                    other => return Err(ArgError(format!("unknown flag `{other}`"))),
                }
            }
            Ok(Command::Top(a))
        }
        "bench" => {
            match it.next() {
                Some("report") => {}
                Some(other) => {
                    return Err(ArgError(format!(
                        "unknown bench action `{other}` (expected report)"
                    )))
                }
                None => return Err(ArgError("bench expects an action: report".to_owned())),
            }
            let mut a = BenchArgs::default();
            while let Some(flag) = it.next() {
                match flag {
                    "--out" => a.out = take_value(flag, &mut it)?,
                    other => return Err(ArgError(format!("unknown flag `{other}`"))),
                }
            }
            Ok(Command::Bench(a))
        }
        other => Err(ArgError(format!(
            "unknown subcommand `{other}` (try `strober help`)"
        ))),
    }
}

/// The help text.
pub const HELP: &str = "\
strober — sample-based energy simulation for arbitrary RTL

USAGE:
  strober [--log-level error|warn|info|debug|trace] <command> …
      The global log filter defaults to info: progress and warnings
      reach stderr, debug chatter does not.

  strober estimate [--core rok|boum-1w|boum-2w] [--workload NAME | --asm FILE]
                   [-n N] [-L CYCLES] [--seed S] [--jobs P]
                   [--batch-lanes K] [--max-cycles N] [--json]
                   [--cache-dir DIR] [--no-cache] [--manifest FILE]
                   [--trace-out FILE] [--metrics] [--no-tape-opt]
                   [--hub-threads T] [--hub-engine E] [--target-error E]
                   [--min-samples M] [--stream]
      Run the full flow: fast sampled simulation, gate-level replay,
      average power with a 99% confidence interval. Prepared artifacts
      (FAME hub, netlist, name map) are cached content-addressed under
      the cache dir, so repeated runs over the same design start warm;
      a JSON run manifest with span-derived per-stage timings and the
      full metrics snapshot is written next to the cache (or to
      --manifest FILE). --trace-out writes a chrome://tracing JSON
      trace of the run (open it in Perfetto or chrome://tracing);
      --metrics prints the metrics table after the results. Replay
      uses every hardware thread unless --jobs (alias --parallel)
      says otherwise, and packs up to --batch-lanes snapshots (default
      64, max 64) into the bit-lanes of each gate-level pass; set
      --batch-lanes 1 for the scalar reference replay. --no-tape-opt
      disables the hub simulator's optimizing tape compiler (constant
      folding, copy propagation, dead code elimination, fusion) — an
      escape hatch for isolating a suspected optimizer miscompile.
      --hub-threads T (default 1, max 64) runs the hub simulator's
      combinational settle on T workers via the partitioned parallel
      engine; results are bit-identical to the sequential default.
      --hub-engine picks the settle engine explicitly: auto (default;
      the thread count decides), interp (sequential interpreter),
      partitioned (multi-threaded interpreter) or jit — the op tape is
      lowered to Rust, compiled once with rustc into a cached dylib,
      and attached as a native settle function; compiles are keyed by
      design + tape options + rustc version in the artifact store, so
      warm runs skip rustc entirely, and the engine falls back to the
      interpreter (bit-identically) when rustc is unavailable.
      --stream pipelines capture and replay: snapshots flow through a
      bounded queue to persistent replay workers while simulation
      continues, with bit-identical results. --target-error E (in
      (0, 1)) additionally enables confidence-driven adaptive stopping
      on that pipeline: the run stops capturing as soon as the
      confidence interval's relative error bound reaches E, after at
      least --min-samples M (default 30) replayed samples — fewer
      simulated cycles and fewer replays when the workload's power
      converges early.

  strober run      [--core NAME] [--workload NAME | --asm FILE] [--max-cycles N]
      Fast performance-only simulation (cycles, CPI, exit code).

  strober workloads
      List the bundled workloads.

  strober export   [--core NAME] [--out DIR]
      Write Verilog (RTL, netlist, FAME hub) and host metadata.

  strober cache    (stats | clear) [--cache-dir DIR]
      Inspect or empty the artifact store.

  strober probe    report [--trace FILE] [--manifest FILE]
      Summarise a recorded run: per-span profile of a --trace-out
      file and/or the stage timings and metrics of a run manifest.

  strober fuzz     [--seeds A..B] [--cycles N] [--lanes L1,L2,…]
                   [--no-flow] [--inject xor-as-or] [--corpus DIR]
                   [--shrink-evals N]
      Differential fuzzing: generate one random design per seed and
      drive it through every execution engine — naive interpreter,
      compiled tape, FAME1 hub, scalar gate-level simulation, and the
      bit-parallel batch engine at each --lanes count — plus a full
      sample→replay round trip, failing on any disagreement in
      outputs, architectural state, toggle counts or power. On a
      divergence the design is automatically minimized and a
      reproducer (seed, config, divergence report) is written to the
      corpus dir for the regression suite to replay. --inject plants
      a known bug in the synthesized netlist to self-test the
      harness; --no-flow skips the (slower) flow round trip.

  strober serve    [--addr HOST:PORT] [--unix-socket PATH] [--workers N]
                   [--cache-dir DIR] [--no-cache] [--drain-ms MS]
                   [--metrics-addr HOST:PORT] [--flight-interval-ms MS]
                   [--flight-capacity N]
      Run the persistent estimation server (default 127.0.0.1:7207).
      Prepared designs — FAME hub, synthesized netlist, lowered
      simulator, compiled gate tape — stay hot in memory for the
      daemon's lifetime, so repeat jobs against the same design skip
      preparation entirely and served results stay bit-identical to
      the one-shot flow. Jobs are scheduled by priority class on
      --workers threads; SIGINT/SIGTERM (or a client Shutdown
      request) drains in-flight jobs for up to --drain-ms before
      cancelling them, then flushes the server trace and metrics.
      --metrics-addr additionally serves Prometheus text exposition
      over HTTP at GET /metrics; the flight recorder keeps a bounded
      ring of periodic metric snapshots (--flight-interval-ms between
      frames, --flight-capacity frames) flushed to server-flight.json
      at shutdown.

  strober submit   (estimate | replay | fuzz) [--addr HOST:PORT]
                   [--priority high|normal|low] [--detach] [--json]
                   [estimate/replay: --core NAME, --workload NAME | --asm FILE,
                    -n N, -L CYCLES, --seed S, --jobs P, --batch-lanes K,
                    --max-cycles N, --no-tape-opt, --hub-threads T,
                    --hub-engine E, --target-error E, --min-samples M]
                   [fuzz: --seeds A..B, --cycles N]
      Submit a job to a running server. By default the client follows
      the job, streaming progress events until the result arrives;
      --detach prints the job id and returns immediately. An --asm
      file is read locally and sent inline as assembly text.

  strober jobs     [--addr HOST:PORT]
      List every job the server knows about.

  strober cancel   ID [--addr HOST:PORT]
      Cancel a queued or running job. Running jobs stop cooperatively
      at the next sample-window or replay-batch boundary.

  strober top      [--addr HOST:PORT] [--interval-ms MS] [--frames N]
                   [--once] [--plain]
      Live view of a running server, refreshed from its metric watch
      stream: queue depth, per-worker utilization, and every active
      job's phase, progress, simulation and replay throughput, hub
      engine, and prepare provenance (warm/store/cold). --once renders a single
      frame and exits (for scripts and CI); --frames N stops after N
      frames; --plain skips ANSI screen clearing.

  strober bench    report [--out FILE]
      Run the in-process micro-benchmark suite (probe overhead on/off,
      labeled-metric overhead, end-to-end flow timing on a small core,
      sequential vs streaming vs adaptive pipeline modes with achieved
      relative error, and a hub-engine sweep of the interpreted vs
      JIT-compiled settle engines) and write a JSON report (default
      BENCH_10.json).
";

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parses_estimate_flags() {
        let cli = parse(&[
            "estimate",
            "--core",
            "boum-2w",
            "--workload",
            "coremark",
            "-n",
            "40",
            "-L",
            "256",
            "--json",
            "--trace-out",
            "trace.json",
            "--metrics",
        ])
        .unwrap();
        assert_eq!(cli.log_level, None);
        let Command::Estimate(a) = cli.command else {
            panic!("wrong command")
        };
        assert_eq!(a.core, "boum-2w");
        assert_eq!(a.workload, "coremark");
        assert_eq!(a.samples, 40);
        assert_eq!(a.replay_length, 256);
        assert!(a.json);
        assert_eq!(a.trace_out.as_deref(), Some("trace.json"));
        assert!(a.metrics);
        assert!(!a.no_tape_opt);
    }

    #[test]
    fn parses_no_tape_opt() {
        let Command::Estimate(a) = parse(&["estimate", "--no-tape-opt"]).unwrap().command else {
            panic!("wrong command")
        };
        assert!(a.no_tape_opt);
    }

    #[test]
    fn hub_threads_default_and_bounds() {
        let Command::Estimate(a) = parse(&["estimate"]).unwrap().command else {
            panic!("wrong command")
        };
        assert_eq!(a.hub_threads, 1);

        let Command::Estimate(a) = parse(&["estimate", "--hub-threads", "4"]).unwrap().command
        else {
            panic!("wrong command")
        };
        assert_eq!(a.hub_threads, 4);

        for bad in ["0", "65", "many"] {
            assert!(parse(&["estimate", "--hub-threads", bad]).is_err(), "{bad}");
        }
    }

    #[test]
    fn hub_engine_default_and_bounds() {
        let Command::Estimate(a) = parse(&["estimate"]).unwrap().command else {
            panic!("wrong command")
        };
        assert_eq!(a.hub_engine, "auto");

        for engine in ["auto", "interp", "partitioned", "jit"] {
            let Command::Estimate(a) = parse(&["estimate", "--hub-engine", engine])
                .unwrap()
                .command
            else {
                panic!("wrong command")
            };
            assert_eq!(a.hub_engine, engine);
        }

        assert!(parse(&["estimate", "--hub-engine", "llvm"])
            .unwrap_err()
            .0
            .contains("auto|interp|partitioned|jit"));
    }

    #[test]
    fn target_error_flags_default_and_bounds() {
        let Command::Estimate(a) = parse(&["estimate"]).unwrap().command else {
            panic!("wrong command")
        };
        assert_eq!(a.target_error, 0.0);
        assert_eq!(a.min_samples, 30);
        assert!(!a.stream);

        let Command::Estimate(a) = parse(&[
            "estimate",
            "--target-error",
            "0.05",
            "--min-samples",
            "10",
            "--stream",
        ])
        .unwrap()
        .command
        else {
            panic!("wrong command")
        };
        assert_eq!(a.target_error, 0.05);
        assert_eq!(a.min_samples, 10);
        assert!(a.stream);

        for bad in ["0", "1", "1.5", "-0.1", "lots"] {
            assert!(
                parse(&["estimate", "--target-error", bad]).is_err(),
                "{bad}"
            );
        }
        assert!(parse(&["estimate", "--min-samples", "1"])
            .unwrap_err()
            .0
            .contains("at least 2"));
    }

    #[test]
    fn submit_parses_target_error() {
        let Command::Submit(a) = parse(&[
            "submit",
            "estimate",
            "--target-error",
            "0.1",
            "--min-samples",
            "5",
        ])
        .unwrap()
        .command
        else {
            panic!("wrong command")
        };
        assert_eq!(a.target_error, 0.1);
        assert_eq!(a.min_samples, 5);
        assert!(parse(&["submit", "estimate", "--target-error", "2"])
            .unwrap_err()
            .0
            .contains("(0, 1)"));
    }

    #[test]
    fn submit_parses_hub_threads() {
        let Command::Submit(a) = parse(&["submit", "estimate", "--hub-threads", "2"])
            .unwrap()
            .command
        else {
            panic!("wrong command")
        };
        assert_eq!(a.hub_threads, 2);
        assert!(parse(&["submit", "estimate", "--hub-threads", "65"])
            .unwrap_err()
            .0
            .contains("1..=64"));
    }

    #[test]
    fn submit_parses_hub_engine() {
        let Command::Submit(a) = parse(&["submit", "estimate", "--hub-engine", "jit"])
            .unwrap()
            .command
        else {
            panic!("wrong command")
        };
        assert_eq!(a.hub_engine, "jit");
        assert!(parse(&["submit", "estimate", "--hub-engine", "fast"])
            .unwrap_err()
            .0
            .contains("auto|interp|partitioned|jit"));
    }

    #[test]
    fn global_log_level_precedes_the_subcommand() {
        let cli = parse(&["--log-level", "debug", "run"]).unwrap();
        assert_eq!(cli.log_level, Some(strober_probe::Level::Debug));
        assert!(matches!(cli.command, Command::Run(_)));
        assert!(parse(&["--log-level", "loud", "run"])
            .unwrap_err()
            .0
            .contains("unknown log level"));
        // A bare --log-level still shows help.
        let cli = parse(&["--log-level", "trace"]).unwrap();
        assert_eq!(cli.command, Command::Help);
    }

    #[test]
    fn parses_probe_report() {
        let cli = parse(&["probe", "report", "--trace", "t.json"]).unwrap();
        assert_eq!(
            cli.command,
            Command::Probe(ProbeArgs {
                trace: Some("t.json".to_owned()),
                manifest: None,
            })
        );
        let cli = parse(&["probe", "report", "--manifest", "run.json"]).unwrap();
        let Command::Probe(a) = cli.command else {
            panic!("wrong command")
        };
        assert_eq!(a.manifest.as_deref(), Some("run.json"));
        assert!(parse(&["probe", "report"])
            .unwrap_err()
            .0
            .contains("--trace"));
        assert!(parse(&["probe", "bogus"])
            .unwrap_err()
            .0
            .contains("unknown probe action"));
        assert!(parse(&["probe"])
            .unwrap_err()
            .0
            .contains("expects an action"));
    }

    #[test]
    fn defaults_apply() {
        let Command::Run(a) = parse(&["run"]).unwrap().command else {
            panic!("wrong command")
        };
        assert_eq!(a.core, "rok");
        assert_eq!(a.workload, "dhrystone");
    }

    #[test]
    fn help_variants() {
        assert_eq!(parse(&[]).unwrap().command, Command::Help);
        assert_eq!(parse(&["--help"]).unwrap().command, Command::Help);
        assert_eq!(parse(&["help"]).unwrap().command, Command::Help);
    }

    #[test]
    fn parses_cache_flags() {
        let Command::Estimate(a) = parse(&[
            "estimate",
            "--cache-dir",
            "/tmp/store",
            "--manifest",
            "run.json",
            "--jobs",
            "2",
        ])
        .unwrap()
        .command
        else {
            panic!("wrong command")
        };
        assert_eq!(a.cache_dir.as_deref(), Some("/tmp/store"));
        assert_eq!(a.manifest.as_deref(), Some("run.json"));
        assert_eq!(a.parallel, 2);
        assert!(!a.no_cache);

        let Command::Estimate(a) = parse(&["estimate", "--no-cache"]).unwrap().command else {
            panic!("wrong command")
        };
        assert!(a.no_cache);
    }

    #[test]
    fn parallel_defaults_to_available_hardware() {
        let Command::Estimate(a) = parse(&["estimate"]).unwrap().command else {
            panic!("wrong command")
        };
        assert_eq!(a.parallel, default_parallelism());
        assert!(a.parallel >= 1);
        assert!(parse(&["estimate", "--jobs", "0"])
            .unwrap_err()
            .0
            .contains("at least 1"));
    }

    #[test]
    fn batch_lanes_default_and_bounds() {
        let Command::Estimate(a) = parse(&["estimate"]).unwrap().command else {
            panic!("wrong command")
        };
        assert_eq!(a.batch_lanes, 64);

        let Command::Estimate(a) = parse(&["estimate", "--batch-lanes", "8"]).unwrap().command
        else {
            panic!("wrong command")
        };
        assert_eq!(a.batch_lanes, 8);

        for bad in ["0", "65", "many"] {
            assert!(parse(&["estimate", "--batch-lanes", bad]).is_err(), "{bad}");
        }
    }

    #[test]
    fn parses_cache_subcommand() {
        assert_eq!(
            parse(&["cache", "stats"]).unwrap().command,
            Command::Cache(CacheArgs {
                action: CacheAction::Stats,
                cache_dir: None,
            })
        );
        assert_eq!(
            parse(&["cache", "clear", "--cache-dir", "/tmp/x"])
                .unwrap()
                .command,
            Command::Cache(CacheArgs {
                action: CacheAction::Clear,
                cache_dir: Some("/tmp/x".to_owned()),
            })
        );
        assert!(parse(&["cache"])
            .unwrap_err()
            .0
            .contains("expects an action"));
        assert!(parse(&["cache", "bogus"])
            .unwrap_err()
            .0
            .contains("unknown cache action"));
    }

    #[test]
    fn parses_fuzz_flags() {
        let Command::Fuzz(a) = parse(&["fuzz"]).unwrap().command else {
            panic!("wrong command")
        };
        assert_eq!(a, FuzzArgs::default());

        let Command::Fuzz(a) = parse(&[
            "fuzz",
            "--seeds",
            "10..20",
            "--cycles",
            "12",
            "--lanes",
            "1,64",
            "--no-flow",
            "--inject",
            "xor-as-or",
            "--corpus",
            "/tmp/corpus",
            "--shrink-evals",
            "500",
        ])
        .unwrap()
        .command
        else {
            panic!("wrong command")
        };
        assert_eq!(a.seed_start, 10);
        assert_eq!(a.seed_end, 20);
        assert_eq!(a.cycles, 12);
        assert_eq!(a.lanes, vec![1, 64]);
        assert!(a.no_flow);
        assert_eq!(a.inject.as_deref(), Some("xor-as-or"));
        assert_eq!(a.corpus, "/tmp/corpus");
        assert_eq!(a.shrink_evals, 500);
    }

    #[test]
    fn fuzz_flag_validation() {
        assert!(parse(&["fuzz", "--seeds", "7"])
            .unwrap_err()
            .0
            .contains("range"));
        assert!(parse(&["fuzz", "--seeds", "9..9"])
            .unwrap_err()
            .0
            .contains("empty range"));
        assert!(parse(&["fuzz", "--cycles", "0"])
            .unwrap_err()
            .0
            .contains("at least 1"));
        assert!(parse(&["fuzz", "--lanes", "1,65"])
            .unwrap_err()
            .0
            .contains("1..=64"));
        assert!(parse(&["fuzz", "--inject", "nop"])
            .unwrap_err()
            .0
            .contains("unknown bug"));
    }

    #[test]
    fn parses_serve_flags() {
        let Command::Serve(a) = parse(&["serve"]).unwrap().command else {
            panic!("wrong command")
        };
        assert_eq!(a, ServeArgs::default());
        assert_eq!(a.addr, DEFAULT_ADDR);

        let Command::Serve(a) = parse(&[
            "serve",
            "--addr",
            "0.0.0.0:9000",
            "--unix-socket",
            "/tmp/strober.sock",
            "--workers",
            "4",
            "--no-cache",
            "--drain-ms",
            "5000",
        ])
        .unwrap()
        .command
        else {
            panic!("wrong command")
        };
        assert_eq!(a.addr, "0.0.0.0:9000");
        assert_eq!(a.unix_socket.as_deref(), Some("/tmp/strober.sock"));
        assert_eq!(a.workers, 4);
        assert!(a.no_cache);
        assert_eq!(a.drain_ms, 5000);
    }

    #[test]
    fn parses_submit_flags() {
        let Command::Submit(a) = parse(&["submit", "estimate"]).unwrap().command else {
            panic!("wrong command")
        };
        assert_eq!(a, SubmitArgs::default());

        let Command::Submit(a) = parse(&[
            "submit",
            "replay",
            "--core",
            "rok-tiny",
            "--workload",
            "vvadd",
            "--priority",
            "high",
            "--detach",
            "-n",
            "12",
            "--batch-lanes",
            "8",
        ])
        .unwrap()
        .command
        else {
            panic!("wrong command")
        };
        assert_eq!(a.kind, "replay");
        assert_eq!(a.core, "rok-tiny");
        assert_eq!(a.workload, "vvadd");
        assert_eq!(a.priority, "high");
        assert!(a.detach);
        assert_eq!(a.samples, 12);
        assert_eq!(a.batch_lanes, 8);

        let Command::Submit(a) = parse(&["submit", "fuzz", "--seeds", "5..9", "--cycles", "16"])
            .unwrap()
            .command
        else {
            panic!("wrong command")
        };
        assert_eq!(a.kind, "fuzz");
        assert_eq!((a.seed_start, a.seed_end, a.cycles), (5, 9, 16));
    }

    #[test]
    fn submit_validation() {
        assert!(parse(&["submit"]).unwrap_err().0.contains("job kind"));
        assert!(parse(&["submit", "bake"])
            .unwrap_err()
            .0
            .contains("unknown job kind"));
        assert!(parse(&["submit", "estimate", "--priority", "urgent"])
            .unwrap_err()
            .0
            .contains("not high, normal or low"));
        assert!(parse(&["submit", "estimate", "--batch-lanes", "65"])
            .unwrap_err()
            .0
            .contains("1..=64"));
    }

    #[test]
    fn parses_jobs_and_cancel() {
        let Command::Jobs(a) = parse(&["jobs"]).unwrap().command else {
            panic!("wrong command")
        };
        assert_eq!(a.addr, DEFAULT_ADDR);

        let Command::Cancel(a) = parse(&["cancel", "17", "--addr", "127.0.0.1:9"])
            .unwrap()
            .command
        else {
            panic!("wrong command")
        };
        assert_eq!(a.job, 17);
        assert_eq!(a.addr, "127.0.0.1:9");
        assert!(parse(&["cancel"]).unwrap_err().0.contains("job id"));
        assert!(parse(&["cancel", "soon"])
            .unwrap_err()
            .0
            .contains("not a job id"));
    }

    #[test]
    fn parses_top_flags() {
        let Command::Top(a) = parse(&["top"]).unwrap().command else {
            panic!("wrong command")
        };
        assert_eq!(a, TopArgs::default());

        let Command::Top(a) = parse(&[
            "top",
            "--addr",
            "127.0.0.1:9",
            "--interval-ms",
            "250",
            "--frames",
            "3",
            "--plain",
        ])
        .unwrap()
        .command
        else {
            panic!("wrong command")
        };
        assert_eq!(a.addr, "127.0.0.1:9");
        assert_eq!(a.interval_ms, 250);
        assert_eq!(a.frames, 3);
        assert!(a.plain);

        let Command::Top(a) = parse(&["top", "--once"]).unwrap().command else {
            panic!("wrong command")
        };
        assert_eq!(a.frames, 1);
        assert!(parse(&["top", "--interval-ms", "0"])
            .unwrap_err()
            .0
            .contains("at least 1"));
    }

    #[test]
    fn parses_bench_report() {
        let Command::Bench(a) = parse(&["bench", "report"]).unwrap().command else {
            panic!("wrong command")
        };
        assert_eq!(a.out, "BENCH_10.json");
        let Command::Bench(a) = parse(&["bench", "report", "--out", "/tmp/b.json"])
            .unwrap()
            .command
        else {
            panic!("wrong command")
        };
        assert_eq!(a.out, "/tmp/b.json");
        assert!(parse(&["bench"])
            .unwrap_err()
            .0
            .contains("expects an action"));
        assert!(parse(&["bench", "race"])
            .unwrap_err()
            .0
            .contains("unknown bench action"));
    }

    #[test]
    fn parses_serve_telemetry_flags() {
        let Command::Serve(a) = parse(&[
            "serve",
            "--metrics-addr",
            "127.0.0.1:9100",
            "--flight-interval-ms",
            "500",
            "--flight-capacity",
            "120",
        ])
        .unwrap()
        .command
        else {
            panic!("wrong command")
        };
        assert_eq!(a.metrics_addr.as_deref(), Some("127.0.0.1:9100"));
        assert_eq!(a.flight_interval_ms, 500);
        assert_eq!(a.flight_capacity, 120);
    }

    #[test]
    fn errors_are_descriptive() {
        assert!(parse(&["bogus"]).unwrap_err().0.contains("subcommand"));
        assert!(parse(&["estimate", "--nope"])
            .unwrap_err()
            .0
            .contains("unknown flag"));
        assert!(parse(&["estimate", "-n"])
            .unwrap_err()
            .0
            .contains("expects a value"));
        assert!(parse(&["estimate", "-n", "abc"])
            .unwrap_err()
            .0
            .contains("not a number"));
    }
}

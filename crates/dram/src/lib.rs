//! The DRAM subsystem: timing model, activity counters and the LPDDR2
//! power calculator.
//!
//! The paper (§IV-D) estimates DRAM power from activity counters attached
//! to the memory request port: knowing the physical address mapping
//! (bank-interleaved), the controller policy (open page) and the request
//! stream is enough to reconstruct the DRAM's internal operations, whose
//! counts feed Micron's spreadsheet power calculator for an LPDDR2-S4
//! device. Main memory itself lives on the *host* side of the platform
//! (the paper maps it to Zynq host memory), which is why the timing model
//! here implements [`strober_platform::HostModel`].
//!
//! * [`DramModel`] — backing storage plus the timing model: configurable
//!   CAS latency, eight banks with open-page row tracking (a row miss
//!   pays an activation penalty), one outstanding 4-beat block read, and
//!   posted writes. The configurable latency is what Fig. 7 sweeps.
//! * [`DramCounters`] — reads, writes and row activations observed at the
//!   request port (§IV-D's counters).
//! * [`LpddrPowerParams`] — the IDD-based average-power calculator
//!   (Micron spreadsheet analog).
//!
//! # Examples
//!
//! ```
//! use strober_dram::{DramConfig, DramModel, LpddrPowerParams};
//!
//! let mut dram = DramModel::new(DramConfig::default(), 1 << 20);
//! dram.write_word(0x1000, 42);
//! assert_eq!(dram.read_word(0x1000), 42);
//!
//! // After a workload, turn the counters into average power.
//! let params = LpddrPowerParams::lpddr2_s4();
//! let power = params.average_power_mw(dram.counters(), 1_000_000, 1.0e9);
//! assert!(power.total_mw() > 0.0);
//! ```

#![deny(missing_docs)]
#![deny(missing_debug_implementations)]

mod model;
mod power;

pub use model::{DramConfig, DramCounters, DramModel};
pub use power::{DramPowerBreakdown, LpddrPowerParams};

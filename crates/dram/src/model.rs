//! The DRAM timing model and activity counters.

use strober_platform::{HostModel, OutputView, TargetInput, TargetOutput};
use strober_sim::{NodeId, PortId};

/// The core memory-interface ports of a FAME hub, resolved once on the
/// first [`HostModel::tick`] so the per-cycle loop never hashes a name.
#[derive(Debug, Clone, Copy)]
struct HubPorts {
    resp_valid: TargetInput,
    resp_tag: TargetInput,
    resp_rdata: TargetInput,
    req_valid: TargetOutput,
    req_rw: TargetOutput,
    req_addr: TargetOutput,
    req_wdata: TargetOutput,
    req_tag: TargetOutput,
    console_valid: TargetOutput,
    console_byte: TargetOutput,
    tohost: TargetOutput,
    instret: TargetOutput,
}

impl HubPorts {
    fn resolve(io: &OutputView<'_>) -> Self {
        HubPorts {
            resp_valid: io.input("mem_resp_valid"),
            resp_tag: io.input("mem_resp_tag"),
            resp_rdata: io.input("mem_resp_rdata"),
            req_valid: io.output("mem_req_valid"),
            req_rw: io.output("mem_req_rw"),
            req_addr: io.output("mem_req_addr"),
            req_wdata: io.output("mem_req_wdata"),
            req_tag: io.output("mem_req_tag"),
            console_valid: io.output("console_valid"),
            console_byte: io.output("console_byte"),
            tohost: io.output("tohost"),
            instret: io.output("instret"),
        }
    }
}

/// The same interface resolved against a bare simulator for
/// [`DramModel::tick_raw`]. The console ports are optional there (cores
/// without a console still run bare workloads).
#[derive(Debug, Clone, Copy)]
struct RawPorts {
    resp_valid: PortId,
    resp_tag: PortId,
    resp_rdata: PortId,
    req_valid: NodeId,
    req_rw: NodeId,
    req_addr: NodeId,
    req_wdata: NodeId,
    req_tag: NodeId,
    console: Option<(NodeId, NodeId)>,
    tohost: NodeId,
    instret: NodeId,
}

impl RawPorts {
    fn resolve(sim: &strober_sim::Simulator) -> Self {
        let port = |n: &str| sim.resolve_port(n).expect("core port");
        let out = |n: &str| sim.resolve_output(n).expect("core port");
        RawPorts {
            resp_valid: port("mem_resp_valid"),
            resp_tag: port("mem_resp_tag"),
            resp_rdata: port("mem_resp_rdata"),
            req_valid: out("mem_req_valid"),
            req_rw: out("mem_req_rw"),
            req_addr: out("mem_req_addr"),
            req_wdata: out("mem_req_wdata"),
            req_tag: out("mem_req_tag"),
            console: sim
                .resolve_output("console_valid")
                .ok()
                .zip(sim.resolve_output("console_byte").ok()),
            tohost: out("tohost"),
            instret: out("instret"),
        }
    }
}

/// Timing and geometry parameters.
///
/// The defaults follow the paper's experimental setting: an LPDDR2-S4
/// style device with eight banks and 16K rows per bank, a bank-interleaved
/// mapping (adjacent blocks hit different banks) and an open-page policy.
/// `cas_latency_cycles` is the target-clock latency the memory system adds
/// to a row hit — 100 cycles in Table II, and the knob Fig. 7 sweeps.
#[derive(Debug, Clone)]
pub struct DramConfig {
    /// Cycles from read acceptance to the first beat, row hit.
    pub cas_latency_cycles: u64,
    /// Extra cycles when the access needs a row activation.
    pub row_miss_penalty_cycles: u64,
    /// Number of banks.
    pub banks: u32,
    /// Bytes per row (per bank).
    pub row_bytes: u32,
}

impl Default for DramConfig {
    fn default() -> Self {
        DramConfig {
            cas_latency_cycles: 100,
            row_miss_penalty_cycles: 40,
            banks: 8,
            row_bytes: 2048,
        }
    }
}

/// Request-port activity counters (§IV-D).
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct DramCounters {
    /// Block read operations.
    pub reads: u64,
    /// Posted word writes.
    pub writes: u64,
    /// Row activations (open-page misses).
    pub activations: u64,
    /// Cycles with a read in flight or a request on the bus; the power
    /// calculator treats the remainder as power-down-eligible idle time
    /// (the Micron calculator's CKE-low states).
    pub busy_cycles: u64,
}

#[derive(Debug, Clone, Copy)]
struct Inflight {
    tag: u64,
    base_word: usize,
    beat: u64,
    ready_at: u64,
}

/// Backing storage plus the timing model; drives a core's external memory
/// port either through [`HostModel`] (on the FAME platform) or directly
/// via [`DramModel::tick_raw`] (on a bare simulator).
///
/// Port names are resolved to numeric handles on the first serviced cycle
/// and cached, so one model instance must keep driving the same target it
/// first ticked.
#[derive(Debug, Clone)]
pub struct DramModel {
    cfg: DramConfig,
    store: Vec<u32>,
    open_rows: Vec<Option<u32>>,
    counters: DramCounters,
    inflight: Option<Inflight>,
    now: u64,
    console: Vec<u8>,
    tohost: u64,
    instret: u64,
    hub_ports: Option<HubPorts>,
    raw_ports: Option<RawPorts>,
}

impl DramModel {
    /// Creates a model backing `bytes` of memory (zero filled).
    ///
    /// # Panics
    ///
    /// Panics if `bytes` is not a positive multiple of 16 (the block
    /// size).
    pub fn new(cfg: DramConfig, bytes: usize) -> Self {
        assert!(
            bytes > 0 && bytes.is_multiple_of(16),
            "memory must be whole blocks"
        );
        let banks = cfg.banks as usize;
        DramModel {
            cfg,
            store: vec![0; bytes / 4],
            open_rows: vec![None; banks],
            counters: DramCounters::default(),
            inflight: None,
            now: 0,
            console: Vec::new(),
            tohost: 0,
            instret: 0,
            hub_ports: None,
            raw_ports: None,
        }
    }

    /// Loads a program image at a byte address.
    ///
    /// # Panics
    ///
    /// Panics if the image does not fit.
    pub fn load(&mut self, words: &[u32], byte_addr: u32) {
        let base = (byte_addr / 4) as usize;
        self.store[base..base + words.len()].copy_from_slice(words);
    }

    /// Reads one backing-store word (host-side debug access).
    ///
    /// # Panics
    ///
    /// Panics when out of range.
    pub fn read_word(&self, byte_addr: u32) -> u32 {
        self.store[(byte_addr / 4) as usize]
    }

    /// Writes one backing-store word (host-side debug access).
    ///
    /// # Panics
    ///
    /// Panics when out of range.
    pub fn write_word(&mut self, byte_addr: u32, value: u32) {
        self.store[(byte_addr / 4) as usize] = value;
    }

    /// The activity counters.
    pub fn counters(&self) -> &DramCounters {
        &self.counters
    }

    /// Bytes captured from the core's console port.
    pub fn console(&self) -> &[u8] {
        &self.console
    }

    /// The core's `tohost` value, once observed nonzero (bit 0 set means
    /// the program halted; the exit code is `tohost >> 1`).
    pub fn tohost(&self) -> Option<u64> {
        if self.tohost & 1 == 1 {
            Some(self.tohost)
        } else {
            None
        }
    }

    /// The exit code, once the program has halted.
    pub fn exit_code(&self) -> Option<u32> {
        self.tohost().map(|t| (t >> 1) as u32)
    }

    /// The core's retired-instruction counter, as last observed.
    pub fn instret(&self) -> u64 {
        self.instret
    }

    /// `(bank, row)` of a byte address under the bank-interleaved mapping:
    /// adjacent 16-byte blocks land in adjacent banks.
    fn bank_row(&self, addr: u32) -> (usize, u32) {
        let block = addr / 16;
        let bank = (block % self.cfg.banks) as usize;
        let blocks_per_row = self.cfg.row_bytes / 16;
        let row = block / self.cfg.banks / blocks_per_row;
        (bank, row)
    }

    /// Open-page bookkeeping: returns `true` when the access required a
    /// row activation.
    fn access_row(&mut self, addr: u32) -> bool {
        let (bank, row) = self.bank_row(addr);
        if self.open_rows[bank] == Some(row) {
            false
        } else {
            self.open_rows[bank] = Some(row);
            self.counters.activations += 1;
            true
        }
    }

    /// This cycle's response signals `(valid, tag, data)`.
    fn response(&mut self) -> (u64, u64, u64) {
        let mut resp = (0, 0, 0);
        if let Some(inf) = &mut self.inflight {
            if self.now >= inf.ready_at {
                resp = (
                    1,
                    inf.tag,
                    u64::from(self.store[inf.base_word + inf.beat as usize]),
                );
                inf.beat += 1;
            }
        }
        if self.inflight.map(|i| i.beat >= 4).unwrap_or(false) {
            self.inflight = None;
        }
        resp
    }

    /// Consumes this cycle's request signals.
    fn request(&mut self, valid: bool, rw: bool, addr: u32, wdata: u32, tag: u64) {
        if !valid {
            return;
        }
        if rw {
            self.counters.writes += 1;
            self.access_row(addr);
            if let Some(slot) = self.store.get_mut((addr / 4) as usize) {
                *slot = wdata;
            }
        } else {
            assert!(
                self.inflight.is_none(),
                "protocol violation: second outstanding read"
            );
            self.counters.reads += 1;
            let miss = self.access_row(addr);
            let latency = self.cfg.cas_latency_cycles
                + if miss {
                    self.cfg.row_miss_penalty_cycles
                } else {
                    0
                };
            self.inflight = Some(Inflight {
                tag,
                base_word: ((addr & !0xF) / 4) as usize,
                beat: 0,
                ready_at: self.now + latency,
            });
        }
    }

    /// Services one cycle of a bare `strober-sim` simulator running a core
    /// design (poke responses, sample requests, step).
    ///
    /// # Panics
    ///
    /// Panics if the design does not expose the core memory interface.
    pub fn tick_raw(&mut self, sim: &mut strober_sim::Simulator) {
        let p = *self.raw_ports.get_or_insert_with(|| RawPorts::resolve(sim));
        let resp = self.response();
        sim.poke(p.resp_valid, resp.0);
        sim.poke(p.resp_tag, resp.1);
        sim.poke(p.resp_rdata, resp.2);
        let valid = sim.peek(p.req_valid) == 1;
        let rw = sim.peek(p.req_rw) == 1;
        let addr = sim.peek(p.req_addr) as u32;
        let wdata = sim.peek(p.req_wdata) as u32;
        let tag = sim.peek(p.req_tag);
        self.request(valid, rw, addr, wdata, tag);
        if valid || self.inflight.is_some() {
            self.counters.busy_cycles += 1;
        }
        if let Some((console_valid, console_byte)) = p.console {
            if sim.peek(console_valid) == 1 {
                let byte = sim.peek(console_byte) as u8;
                self.console.push(byte);
            }
        }
        self.tohost = sim.peek(p.tohost);
        self.instret = sim.peek(p.instret);
        sim.step();
        self.now += 1;
    }
}

impl DramModel {
    /// Services one cycle of a gate-level simulation of a core netlist
    /// (used for the full-workload ground-truth runs of Fig. 8).
    ///
    /// # Panics
    ///
    /// Panics if the netlist does not expose the core memory interface.
    pub fn tick_gate(&mut self, sim: &mut strober_gatesim::GateSim) {
        let resp = self.response();
        sim.poke_port("mem_resp_valid", resp.0).expect("core port");
        sim.poke_port("mem_resp_tag", resp.1).expect("core port");
        sim.poke_port("mem_resp_rdata", resp.2).expect("core port");
        let valid = sim.peek_port("mem_req_valid").expect("core port") == 1;
        let rw = sim.peek_port("mem_req_rw").expect("core port") == 1;
        let addr = sim.peek_port("mem_req_addr").expect("core port") as u32;
        let wdata = sim.peek_port("mem_req_wdata").expect("core port") as u32;
        let tag = sim.peek_port("mem_req_tag").expect("core port");
        self.request(valid, rw, addr, wdata, tag);
        if valid || self.inflight.is_some() {
            self.counters.busy_cycles += 1;
        }
        self.tohost = sim.peek_port("tohost").expect("core port");
        self.instret = sim.peek_port("instret").expect("core port");
        sim.step();
        self.now += 1;
    }
}

impl HostModel for DramModel {
    fn tick(&mut self, _cycle: u64, io: &mut OutputView<'_>) {
        let p = *self.hub_ports.get_or_insert_with(|| HubPorts::resolve(io));
        let resp = self.response();
        io.write(p.resp_valid, resp.0);
        io.write(p.resp_tag, resp.1);
        io.write(p.resp_rdata, resp.2);
        let valid = io.read(p.req_valid) == 1;
        let rw = io.read(p.req_rw) == 1;
        let addr = io.read(p.req_addr) as u32;
        let wdata = io.read(p.req_wdata) as u32;
        let tag = io.read(p.req_tag);
        self.request(valid, rw, addr, wdata, tag);
        if valid || self.inflight.is_some() {
            self.counters.busy_cycles += 1;
        }
        if io.read(p.console_valid) == 1 {
            let byte = io.read(p.console_byte) as u8;
            self.console.push(byte);
        }
        self.tohost = io.read(p.tohost);
        self.instret = io.read(p.instret);
        self.now += 1;
    }

    fn is_done(&self) -> bool {
        self.tohost & 1 == 1
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bank_interleaving_spreads_adjacent_blocks() {
        let m = DramModel::new(DramConfig::default(), 1 << 16);
        let (b0, _) = m.bank_row(0x00);
        let (b1, _) = m.bank_row(0x10);
        let (b2, _) = m.bank_row(0x20);
        assert_ne!(b0, b1);
        assert_ne!(b1, b2);
        let (b8, r8) = m.bank_row(0x80);
        assert_eq!(b8, b0);
        assert_eq!(r8, 0);
    }

    #[test]
    fn open_page_policy_counts_activations() {
        let mut m = DramModel::new(DramConfig::default(), 1 << 20);
        // Same bank, same row: one activation.
        assert!(m.access_row(0x0));
        assert!(!m.access_row(0x80)); // next block in the same bank row
        assert_eq!(m.counters().activations, 1);
        // Same bank, different row: a new activation.
        let row_span = 2048 * 8; // row_bytes × banks
        assert!(m.access_row(row_span as u32));
        assert_eq!(m.counters().activations, 2);
        // Returning to the old row re-activates.
        assert!(m.access_row(0x0));
        assert_eq!(m.counters().activations, 3);
    }

    #[test]
    fn read_latency_depends_on_row_state() {
        let cfg = DramConfig {
            cas_latency_cycles: 10,
            row_miss_penalty_cycles: 30,
            ..DramConfig::default()
        };
        let mut m = DramModel::new(cfg, 1 << 16);
        m.write_word(0x0, 7);
        // First read: row miss → first beat after 40 cycles.
        m.request(true, false, 0x0, 0, 0);
        let mut first_beat_at = None;
        for _ in 0..100 {
            let (v, _, d) = m.response();
            if v == 1 && first_beat_at.is_none() {
                first_beat_at = Some(m.now);
                assert_eq!(d, 7);
            }
            m.now += 1;
        }
        assert_eq!(first_beat_at, Some(40));
        // Second read of the same row: only CAS latency.
        let start = m.now;
        m.request(true, false, 0x80, 0, 0);
        let mut hit_beat_at = None;
        for _ in 0..100 {
            let (v, _, _) = m.response();
            if v == 1 && hit_beat_at.is_none() {
                hit_beat_at = Some(m.now - start);
            }
            m.now += 1;
        }
        assert_eq!(hit_beat_at, Some(10));
    }

    #[test]
    fn writes_commit_and_count() {
        let mut m = DramModel::new(DramConfig::default(), 1 << 16);
        m.request(true, true, 0x40, 0xBEEF, 1);
        assert_eq!(m.read_word(0x40), 0xBEEF);
        assert_eq!(m.counters().writes, 1);
        assert_eq!(m.counters().reads, 0);
    }

    #[test]
    #[should_panic(expected = "second outstanding read")]
    fn double_read_is_a_protocol_violation() {
        let mut m = DramModel::new(DramConfig::default(), 1 << 16);
        m.request(true, false, 0x0, 0, 0);
        m.request(true, false, 0x100, 0, 0);
    }
}

//! The IDD-based LPDDR2 power calculator (Micron spreadsheet analog).

use crate::model::DramCounters;

/// Average-power decomposition in milliwatts.
#[derive(Debug, Clone, Copy, Default, PartialEq)]
pub struct DramPowerBreakdown {
    /// Always-on background power (standby currents).
    pub background_mw: f64,
    /// Row activate/precharge power.
    pub activate_mw: f64,
    /// Read/write burst core power.
    pub rw_mw: f64,
    /// I/O and termination power.
    pub io_mw: f64,
}

impl DramPowerBreakdown {
    /// Sum of all terms.
    pub fn total_mw(&self) -> f64 {
        self.background_mw + self.activate_mw + self.rw_mw + self.io_mw
    }
}

/// Datasheet-style parameters for the power calculation.
///
/// The structure mirrors Micron's system-power calculator: background
/// power from standby current, an energy per row activation (derived from
/// `IDD0 − IDD3N` over `tRC`), an energy per read/write burst (from
/// `IDD4R/W − IDD3N`), and per-bit I/O switching energy. The defaults are
/// representative of the LPDDR2-S4 device the paper uses (values of that
/// magnitude; the calculator structure, not the exact constants, is the
/// reproduced artifact).
#[derive(Debug, Clone, PartialEq)]
pub struct LpddrPowerParams {
    /// Active/standby background power in mW (CKE high).
    pub background_mw: f64,
    /// Power-down background power in mW (CKE low; the device drops into
    /// precharge power-down when the controller has been idle).
    pub powerdown_mw: f64,
    /// Energy per row activation, in nJ.
    pub activate_energy_nj: f64,
    /// Core energy per 16-byte read burst, in nJ.
    pub read_energy_nj: f64,
    /// Core energy per word write, in nJ.
    pub write_energy_nj: f64,
    /// I/O energy per byte transferred, in nJ.
    pub io_energy_per_byte_nj: f64,
}

impl LpddrPowerParams {
    /// Parameters representative of a Micron LPDDR2-S4 device.
    pub fn lpddr2_s4() -> Self {
        LpddrPowerParams {
            background_mw: 18.0,
            powerdown_mw: 4.0,
            activate_energy_nj: 2.2,
            read_energy_nj: 1.3,
            write_energy_nj: 0.5,
            io_energy_per_byte_nj: 0.045,
        }
    }

    /// Average DRAM power over a window of `cycles` target cycles at
    /// `clock_hz`.
    ///
    /// # Panics
    ///
    /// Panics if `cycles` is zero.
    pub fn average_power_mw(
        &self,
        counters: &DramCounters,
        cycles: u64,
        clock_hz: f64,
    ) -> DramPowerBreakdown {
        assert!(cycles > 0, "empty measurement window");
        let seconds = cycles as f64 / clock_hz;
        let to_mw = |energy_nj: f64| energy_nj * 1e-9 / seconds * 1e3;

        let read_bytes = counters.reads as f64 * 16.0;
        let write_bytes = counters.writes as f64 * 4.0;
        // Background power blends standby and power-down by the observed
        // bus-busy fraction (busy tracking is optional: a zero counter
        // means "always standby", the conservative pre-power-down model).
        let busy_frac = if counters.busy_cycles == 0 {
            1.0
        } else {
            (counters.busy_cycles as f64 / cycles as f64).min(1.0)
        };
        let background = self.powerdown_mw + (self.background_mw - self.powerdown_mw) * busy_frac;

        DramPowerBreakdown {
            background_mw: background,
            activate_mw: to_mw(counters.activations as f64 * self.activate_energy_nj),
            rw_mw: to_mw(
                counters.reads as f64 * self.read_energy_nj
                    + counters.writes as f64 * self.write_energy_nj,
            ),
            io_mw: to_mw((read_bytes + write_bytes) * self.io_energy_per_byte_nj),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn idle_dram_pays_only_background() {
        let p = LpddrPowerParams::lpddr2_s4();
        let power = p.average_power_mw(&DramCounters::default(), 1_000_000, 1.0e9);
        assert_eq!(power.total_mw(), power.background_mw);
        assert!(power.total_mw() > 0.0);
    }

    #[test]
    fn busier_windows_burn_more() {
        let p = LpddrPowerParams::lpddr2_s4();
        let quiet = DramCounters {
            reads: 100,
            writes: 50,
            activations: 30,
            ..DramCounters::default()
        };
        let busy = DramCounters {
            reads: 10_000,
            writes: 5_000,
            activations: 3_000,
            ..DramCounters::default()
        };
        let pq = p.average_power_mw(&quiet, 1_000_000, 1.0e9).total_mw();
        let pb = p.average_power_mw(&busy, 1_000_000, 1.0e9).total_mw();
        assert!(pb > pq);
    }

    #[test]
    fn magnitudes_match_the_papers_figure() {
        // Fig. 9a shows DRAM between roughly 20 and 120 mW. A moderately
        // busy window should land inside that band.
        let p = LpddrPowerParams::lpddr2_s4();
        // ~1 read per 40 cycles at 1 GHz, half causing activations.
        let counters = DramCounters {
            reads: 25_000,
            writes: 8_000,
            activations: 12_000,
            ..DramCounters::default()
        };
        let power = p.average_power_mw(&counters, 1_000_000, 1.0e9);
        let total = power.total_mw();
        assert!(
            (20.0..150.0).contains(&total),
            "DRAM power {total} mW outside the plausible band"
        );
    }

    #[test]
    fn window_invariance_for_proportional_activity() {
        let p = LpddrPowerParams::lpddr2_s4();
        let c1 = DramCounters {
            reads: 1000,
            writes: 400,
            activations: 300,
            ..DramCounters::default()
        };
        let c2 = DramCounters {
            reads: 2000,
            writes: 800,
            activations: 600,
            ..DramCounters::default()
        };
        let p1 = p.average_power_mw(&c1, 1_000_000, 1.0e9).total_mw();
        let p2 = p.average_power_mw(&c2, 2_000_000, 1.0e9).total_mw();
        assert!((p1 - p2).abs() < 1e-9);
    }
}

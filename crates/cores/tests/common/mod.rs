//! Shared test harness: a fixed-latency memory model driving a core's
//! external port on a `strober-sim` simulator.

use strober_sim::Simulator;

/// A simple backing memory with fixed read latency and 4-beat block
/// responses, matching the cores' uncore protocol.
pub struct TestMem {
    pub store: Vec<u32>,
    pub latency: u64,
    inflight: Option<Inflight>,
}

struct Inflight {
    tag: u64,
    base_word: usize,
    beat: u64,
    ready_at: u64,
}

impl TestMem {
    pub fn new(bytes: usize, latency: u64) -> Self {
        TestMem {
            store: vec![0; bytes / 4],
            latency,
            inflight: None,
        }
    }

    pub fn load(&mut self, words: &[u32], byte_addr: u32) {
        let base = (byte_addr / 4) as usize;
        self.store[base..base + words.len()].copy_from_slice(words);
    }

    /// Services one cycle: poke responses, then consume the core's
    /// request, then step the simulator.
    pub fn tick(&mut self, sim: &mut Simulator, now: u64) {
        // Drive response signals for this cycle.
        let mut resp = (0u64, 0u64, 0u64); // valid, tag, data
        if let Some(inf) = &mut self.inflight {
            if now >= inf.ready_at {
                resp = (
                    1,
                    inf.tag,
                    u64::from(self.store[inf.base_word + inf.beat as usize]),
                );
                inf.beat += 1;
            }
        }
        if self.inflight.as_ref().map(|i| i.beat >= 4).unwrap_or(false) {
            self.inflight = None;
        }
        sim.poke_by_name("mem_resp_valid", resp.0).unwrap();
        sim.poke_by_name("mem_resp_tag", resp.1).unwrap();
        sim.poke_by_name("mem_resp_rdata", resp.2).unwrap();

        // Sample the core's request (combinational, after the response
        // poke).
        if sim.peek_output("mem_req_valid").unwrap() == 1 {
            let rw = sim.peek_output("mem_req_rw").unwrap();
            let addr = sim.peek_output("mem_req_addr").unwrap() as usize;
            if rw == 1 {
                let wdata = sim.peek_output("mem_req_wdata").unwrap() as u32;
                if let Some(slot) = self.store.get_mut(addr / 4) {
                    *slot = wdata;
                }
            } else {
                assert!(self.inflight.is_none(), "uncore issued a second read");
                let tag = sim.peek_output("mem_req_tag").unwrap();
                self.inflight = Some(Inflight {
                    tag,
                    base_word: (addr & !0xF) / 4,
                    beat: 0,
                    ready_at: now + self.latency,
                });
            }
        }

        sim.step();
    }
}

/// Runs a core design on a program until `tohost` is set or `max_cycles`
/// pass. Returns `(exit_code, cycles, instret)`.
pub fn run_core(
    design: &strober_rtl::Design,
    image: &[u32],
    mem_bytes: usize,
    latency: u64,
    max_cycles: u64,
) -> Option<(u32, u64, u64)> {
    let mut sim = Simulator::new(design).expect("core design must be valid");
    let mut mem = TestMem::new(mem_bytes, latency);
    mem.load(image, 0);
    for now in 0..max_cycles {
        mem.tick(&mut sim, now);
        let tohost = sim.peek_output("tohost").unwrap();
        if tohost & 1 == 1 {
            let instret = sim.peek_output("instret").unwrap();
            return Some(((tohost >> 1) as u32, now + 1, instret));
        }
    }
    None
}

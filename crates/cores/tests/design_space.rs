//! Cross-core performance shape checks: the design-space relationships the
//! paper's case study reports (Fig. 9b) must hold qualitatively.

mod common;

use common::run_core;
use strober_cores::{build_core, CoreConfig};
use strober_isa::{assemble, programs};

fn cycles(config: &CoreConfig, src: &str, max: u64) -> (u64, u64) {
    let design = build_core(config);
    let image = assemble(src).unwrap();
    let (_, cycles, instret) =
        run_core(&design, &image.words, programs::MEM_BYTES, 30, max).expect("halts");
    (cycles, instret)
}

#[test]
fn boum_2w_beats_rok_on_compute_kernels() {
    // CoreMark-like: compute-heavy, cache-resident — the paper's headline
    // "BOOM-2w is 58% faster than Rocket" comparison point.
    let src = programs::coremark_like(3);
    let (rok, i1) = cycles(&CoreConfig::rok_tiny(), &src, 2_000_000);
    let (b2, i2) = cycles(&CoreConfig::boum_tiny(2), &src, 2_000_000);
    assert_eq!(i1, i2, "same program must retire the same instructions");
    assert!(
        (b2 as f64) < 0.95 * rok as f64,
        "Boum-2w ({b2}) should beat Rok ({rok}) on CoreMark-like code"
    );
}

#[test]
fn all_cores_agree_on_results() {
    let src = programs::dhrystone(10);
    let mut exits = Vec::new();
    for cfg in [
        CoreConfig::rok_tiny(),
        CoreConfig::boum_tiny(1),
        CoreConfig::boum_tiny(2),
    ] {
        let design = build_core(&cfg);
        let image = assemble(&src).unwrap();
        let (code, _, _) =
            run_core(&design, &image.words, programs::MEM_BYTES, 30, 2_000_000).expect("halts");
        exits.push(code);
    }
    assert_eq!(exits[0], exits[1]);
    assert_eq!(exits[1], exits[2]);
}

#[test]
fn wider_boum_is_at_least_as_fast() {
    let src = programs::vvadd(64);
    let (b1, _) = cycles(&CoreConfig::boum_tiny(1), &src, 2_000_000);
    let (b2, _) = cycles(&CoreConfig::boum_tiny(2), &src, 2_000_000);
    assert!(
        b2 <= b1,
        "Boum-2w ({b2}) must not be slower than Boum-1w ({b1})"
    );
}

//! Differential testing of the Rok core against the golden-model ISS:
//! every workload must produce the same exit code and retire exactly the
//! same number of instructions.

mod common;

use common::run_core;
use strober_cores::{build_core, CoreConfig};
use strober_isa::{assemble, programs, Iss};

const MEM: usize = programs::MEM_BYTES;

fn iss_run(src: &str) -> (u32, u64) {
    let image = assemble(src).expect("program assembles");
    let mut iss = Iss::new(MEM);
    iss.load(&image.words, 0);
    let code = iss
        .run(200_000_000)
        .expect("no faults")
        .expect("program halts");
    (code, iss.instret())
}

fn differential(src: &str, max_cycles: u64) {
    let (iss_code, iss_instret) = iss_run(src);
    let design = build_core(&CoreConfig::rok_tiny());
    let image = assemble(src).unwrap();
    let (code, cycles, instret) =
        run_core(&design, &image.words, MEM, 20, max_cycles).expect("core must halt in budget");
    assert_eq!(code, iss_code, "exit code mismatch");
    assert_eq!(instret, iss_instret, "retired instruction count mismatch");
    assert!(cycles >= instret, "CPI below 1 is impossible for Rok");
}

#[test]
fn arithmetic_smoke() {
    differential("li a0, 6\nli a1, 7\nmul a2, a0, a1\nhalt a2\n", 10_000);
}

#[test]
fn forwarding_chains() {
    // Back-to-back dependent ALU ops exercise MEM->EX and WB->EX paths.
    differential(
        "li a0, 1\nadd a1, a0, a0\nadd a2, a1, a1\nadd a3, a2, a2\nadd a4, a3, a3\nsub a5, a4, a0\nhalt a5\n",
        10_000,
    );
}

#[test]
fn load_use_and_stores() {
    differential(
        "la t0, data\nlw a0, 0(t0)\naddi a0, a0, 1\nsw a0, 4(t0)\nlw a1, 4(t0)\nadd a2, a0, a1\nhalt a2\ndata: .word 41, 0\n",
        10_000,
    );
}

#[test]
fn branches_and_loops() {
    differential(
        "li t0, 10\nmv a0, zero\nloop: add a0, a0, t0\naddi t0, t0, -1\nbnez t0, loop\nhalt a0\n",
        10_000,
    );
}

#[test]
fn function_calls() {
    differential(
        "li sp, 0x8000\nli a0, 5\ncall fact\nhalt a0\nfact: li t0, 1\nble a0, t0, base\naddi sp, sp, -8\nsw ra, 0(sp)\nsw a0, 4(sp)\naddi a0, a0, -1\ncall fact\nlw t1, 4(sp)\nmul a0, a0, t1\nlw ra, 0(sp)\naddi sp, sp, 8\nret\nbase: li a0, 1\nret\n",
        50_000,
    );
}

#[test]
fn counters_work() {
    // rdcyc/rdinst must be monotone and the program must halt cleanly.
    let src =
        "rdcyc t0\nrdinst t1\nnop\nnop\nrdcyc t2\nsub a0, t2, t0\nsltu a1, zero, a0\nhalt a1\n";
    let design = build_core(&CoreConfig::rok_tiny());
    let image = assemble(src).unwrap();
    let (code, _, _) = run_core(&design, &image.words, MEM, 20, 10_000).unwrap();
    assert_eq!(code, 1, "cycles must have advanced between rdcyc reads");
}

#[test]
fn vvadd_differential() {
    differential(&programs::vvadd(64), 200_000);
}

#[test]
fn towers_differential() {
    differential(&programs::towers(5), 200_000);
}

#[test]
fn qsort_differential() {
    differential(&programs::qsort(48), 2_000_000);
}

#[test]
fn dhrystone_differential() {
    differential(&programs::dhrystone(30), 500_000);
}

#[test]
fn spmv_differential() {
    differential(&programs::spmv(32, 4), 500_000);
}

#[test]
fn dgemm_differential() {
    differential(&programs::dgemm(6), 500_000);
}

#[test]
fn coremark_differential() {
    differential(&programs::coremark_like(3), 500_000);
}

#[test]
fn gcc_like_differential() {
    differential(&programs::gcc_like(300, 64), 1_000_000);
}

#[test]
fn linux_boot_differential() {
    differential(&programs::linux_boot_like(4, 50), 1_000_000);
}

#[test]
fn pointer_chase_runs_and_latency_scales_with_memory() {
    // With a working-set far beyond the 1 KiB D$, raising memory latency
    // must raise measured chase cycles (the Fig. 7 mechanism).
    let src = programs::pointer_chase(2048, 4, 256);
    let image = assemble(&src).unwrap();
    let design = build_core(&CoreConfig::rok_tiny());
    let (fast, _, _) = run_core(&design, &image.words, MEM, 5, 2_000_000).unwrap();
    let (slow, _, _) = run_core(&design, &image.words, MEM, 60, 4_000_000).unwrap();
    assert!(
        slow > fast + 256 * 30,
        "latency sweep had no effect: fast={fast} slow={slow}"
    );
}

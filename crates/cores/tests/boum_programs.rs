//! Differential testing of the Boum core (both widths) against the
//! golden-model ISS: identical exit codes and retired instruction counts.

mod common;

use common::run_core;
use strober_cores::{build_core, CoreConfig};
use strober_isa::{assemble, programs, Iss};

const MEM: usize = programs::MEM_BYTES;

fn iss_run(src: &str) -> (u32, u64) {
    let image = assemble(src).expect("program assembles");
    let mut iss = Iss::new(MEM);
    iss.load(&image.words, 0);
    let code = iss
        .run(200_000_000)
        .expect("no faults")
        .expect("program halts");
    (code, iss.instret())
}

fn differential(width: u32, src: &str, max_cycles: u64) -> (u64, u64) {
    let (iss_code, iss_instret) = iss_run(src);
    let design = build_core(&CoreConfig::boum_tiny(width));
    let image = assemble(src).unwrap();
    let (code, cycles, instret) =
        run_core(&design, &image.words, MEM, 20, max_cycles).expect("core must halt in budget");
    assert_eq!(code, iss_code, "exit code mismatch (width {width})");
    assert_eq!(
        instret, iss_instret,
        "retired instruction count mismatch (width {width})"
    );
    (cycles, instret)
}

#[test]
fn smoke_both_widths() {
    for width in [1, 2] {
        differential(
            width,
            "li a0, 6\nli a1, 7\nmul a2, a0, a1\nhalt a2\n",
            10_000,
        );
    }
}

#[test]
fn dependent_chains() {
    for width in [1, 2] {
        differential(
            width,
            "li a0, 1\nadd a1, a0, a0\nadd a2, a1, a1\nadd a3, a2, a2\nsub a4, a3, a0\nhalt a4\n",
            10_000,
        );
    }
}

#[test]
fn independent_pairs_exploit_width() {
    // Long runs of independent ALU ops: the 2-wide machine must be
    // meaningfully faster than the 1-wide one.
    let mut body = String::new();
    body.push_str("li a0, 0\nli a1, 0\nli t0, 200\nloop:\n");
    for _ in 0..8 {
        body.push_str("addi a0, a0, 1\naddi a1, a1, 3\n");
    }
    body.push_str("addi t0, t0, -1\nbnez t0, loop\nadd a2, a0, a1\nhalt a2\n");
    let (c1, _) = differential(1, &body, 300_000);
    let (c2, _) = differential(2, &body, 300_000);
    assert!(
        (c2 as f64) < 0.8 * c1 as f64,
        "2-wide ({c2} cycles) should beat 1-wide ({c1} cycles)"
    );
}

#[test]
fn branches_and_btb() {
    for width in [1, 2] {
        differential(
            width,
            "li t0, 50\nmv a0, zero\nloop: add a0, a0, t0\naddi t0, t0, -1\nbnez t0, loop\nhalt a0\n",
            100_000,
        );
    }
}

#[test]
fn loads_stores_and_hazards() {
    for width in [1, 2] {
        differential(
            width,
            "la t0, data\nlw a0, 0(t0)\naddi a1, a0, 1\nsw a1, 4(t0)\nlw a2, 4(t0)\nadd a3, a2, a0\nhalt a3\ndata: .word 41, 0\n",
            50_000,
        );
    }
}

#[test]
fn function_calls() {
    for width in [1, 2] {
        differential(
            width,
            "li sp, 0x8000\nli a0, 6\ncall fact\nhalt a0\nfact: li t0, 1\nble a0, t0, base\naddi sp, sp, -8\nsw ra, 0(sp)\nsw a0, 4(sp)\naddi a0, a0, -1\ncall fact\nlw t1, 4(sp)\nmul a0, a0, t1\nlw ra, 0(sp)\naddi sp, sp, 8\nret\nbase: li a0, 1\nret\n",
            100_000,
        );
    }
}

#[test]
fn vvadd_differential() {
    differential(2, &programs::vvadd(48), 300_000);
}

#[test]
fn towers_differential() {
    differential(2, &programs::towers(5), 300_000);
}

#[test]
fn qsort_differential() {
    differential(2, &programs::qsort(32), 2_000_000);
}

#[test]
fn dhrystone_differential() {
    differential(2, &programs::dhrystone(20), 500_000);
}

#[test]
fn coremark_differential() {
    differential(2, &programs::coremark_like(2), 500_000);
}

#[test]
fn gcc_like_differential() {
    differential(2, &programs::gcc_like(200, 64), 1_000_000);
}

#[test]
fn spmv_differential() {
    differential(1, &programs::spmv(16, 4), 500_000);
}

#[test]
fn dgemm_differential() {
    differential(2, &programs::dgemm(5), 500_000);
}

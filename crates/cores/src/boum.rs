//! Boum: the parameterised superscalar core (BOOM analog).
//!
//! Front end: BTB-assisted fetch of up to `width` instructions per cycle
//! into a fetch buffer, then a transfer stage into the issue queue.
//! Back end: up to `width` instructions issue per cycle from the queue
//! head with operand readiness tracked by a scoreboard (busy table) and
//! values picked up from the register file or the EX/WB bypass networks;
//! execution is one cycle (lane 0 also hosts the D$ port, the multiplier
//! and branch resolution), then writeback and in-order retirement through
//! a completion buffer (ROB).
//!
//! Relative to BOOM this issues in order from the queue head (no
//! out-of-order wakeup/select) and renames nothing — WAW hazards stall
//! dispatch; DESIGN.md records the simplification inventory. The design
//! point matches Table II: wider fetch/issue, an issue window, a ROB and
//! a physical register file whose depth scales with the configuration.
//!
//! Control flow resolves in lane 0's EX: a mispredicted branch (or any
//! BTB false hit) flushes both queues and blocks issue for that cycle —
//! a three-cycle penalty, one worse than Rok, reflecting the longer front
//! end.

use crate::cache::{build_cache, CacheCpuReq};
use crate::config::CoreConfig;
use crate::decode::{alu, branch_taken, decode, Decoded};
use crate::uncore::build_uncore;
use strober_dsl::{Ctx, Sig, Wire};
use strober_rtl::{Design, Width};

fn w(bits: u32) -> Width {
    Width::new(bits).expect("static width")
}

/// A two-wide circular queue built from parallel memories with shared
/// head/tail/count control.
struct Queue {
    ctx: Ctx,
    name: String,
    depth: usize,
    ptr_w: Width,
    head: Sig,
    tail: Sig,
    count: Sig,
    push_count: Wire,
    pop_count: Wire,
    flush: Wire,
    lanes: usize,
}

impl Queue {
    fn new(ctx: &Ctx, name: &str, depth: usize) -> Self {
        assert!(depth.is_power_of_two() && depth >= 4, "queue depth");
        let ptr_w = Width::for_depth(depth).expect("depth ok");
        let cnt_w = w(ptr_w.bits() + 1);
        let push_count = ctx.wire(w(2));
        let pop_count = ctx.wire(w(2));
        let flush = ctx.wire(w(1));
        let (head, tail, count) = ctx.scope(name, |c| {
            let head = c.reg("head", ptr_w, 0);
            let tail = c.reg("tail", ptr_w, 0);
            let count = c.reg("count", cnt_w, 0);
            let zero_p = c.lit(0, ptr_w);
            let head_next = &head.out() + &push_to(ptr_w, &pop_count.sig());
            let tail_next = &tail.out() + &push_to(ptr_w, &push_count.sig());
            head.set(&flush.sig().mux(&zero_p, &head_next));
            tail.set(&flush.sig().mux(&zero_p, &tail_next));
            let zero_c = c.lit(0, cnt_w);
            let grow = &count.out() + &push_to(cnt_w, &push_count.sig());
            let next = &grow - &push_to(cnt_w, &pop_count.sig());
            count.set(&flush.sig().mux(&zero_c, &next));
            (head.out(), tail.out(), count.out())
        });
        Queue {
            ctx: ctx.clone(),
            name: name.to_owned(),
            depth,
            ptr_w,
            head,
            tail,
            count,
            push_count,
            pop_count,
            flush,
            lanes: 0,
        }
    }

    /// Adds a payload lane; returns `(head0, head1)` read data.
    fn lane(&mut self, lane_name: &str, width: Width, data0: &Sig, data1: &Sig) -> (Sig, Sig) {
        let c = &self.ctx;
        let full = format!("{}/{lane_name}", self.name);
        let mem = c.mem(&full, width, self.depth);
        let one = c.lit(1, self.ptr_w);
        let tail1 = &self.tail + &one;
        let push1 = self.push_count.sig().bit(0); // count >= 1 (1 or 2)
        let push2 = self.push_count.sig().bit(1); // count == 2
        let any_push = &push1 | &push2;
        mem.write(&self.tail, data0, &any_push);
        mem.write(&tail1, data1, &push2);
        let head1_addr = &self.head + &one;
        let h0 = mem.read(&self.head);
        let h1 = mem.read(&head1_addr);
        self.lanes += 1;
        (h0, h1)
    }

    fn has(&self, n: u64) -> Sig {
        let lit = self.count.lit(n);
        !&self.count.ltu(&lit)
    }

    fn space_for(&self, n: u64) -> Sig {
        let lim = self.count.lit(self.depth as u64 - n);
        self.count.leu(&lim)
    }
}

/// Zero-extends or truncates `s` to width `to` (queues count arithmetic).
fn push_to(to: Width, s: &Sig) -> Sig {
    if s.width().bits() < to.bits() {
        s.zext(to)
    } else {
        s.trunc(to)
    }
}

/// One-hot mask for a 5-bit register index within a 32-bit table, zero
/// for `x0` or when `en` is low.
fn onehot_rd(c: &Ctx, rd: &Sig, en: &Sig) -> Sig {
    let one = c.lit(1, w(32));
    let mask = one.shl(&rd.zext(w(32)));
    let gate = en & &!&rd.eq_lit(0);
    gate.mux(&mask, &c.lit(0, w(32)))
}

/// Builds the Boum design for a configuration.
///
/// # Panics
///
/// Panics on inconsistent configurations (generator-time error).
#[allow(clippy::too_many_lines)]
pub fn build_boum(config: &CoreConfig) -> Design {
    assert!(config.superscalar, "build_boum takes superscalar configs");
    assert!(matches!(config.width, 1 | 2), "width must be 1 or 2");
    assert!(config.physical_regs >= 32);
    assert!(config.btb_entries.is_power_of_two() && config.btb_entries >= 4);
    let dual = config.width == 2;

    let ctx = Ctx::new(config.name.clone());
    let c = &ctx;
    let w1 = w(1);
    let w32 = w(32);

    // ---- external memory interface ------------------------------------------
    let mem_resp_valid = c.input("mem_resp_valid", w1);
    let mem_resp_tag = c.input("mem_resp_tag", w1);
    let mem_resp_rdata = c.input("mem_resp_rdata", w32);

    // ---- global wires ----------------------------------------------------------
    let flush_w = c.wire(w1); // mispredict/halt resolution in lane-0 EX
    let flush = flush_w.sig();
    let flush_target_w = c.wire(w32);
    let ex_stall_w = c.wire(w1); // lane-0 memory op back-pressure
    let ex_stall = ex_stall_w.sig();
    let stop_front_w = c.wire(w1); // halting | halted
    let stop_front = stop_front_w.sig();

    // ---- CSRs -------------------------------------------------------------------
    let retire_count_w = c.wire(w(2));
    let halt_val_w = c.wire(w(33));
    let halt_now_w = c.wire(w1);
    let halting_set_w = c.wire(w1);
    let (cycle_q, instret_q, tohost_out, halted_out, halting_out) = c.scope("csr", |c| {
        let cycle = c.reg("cycle", w32, 0);
        cycle.set(&cycle.out().add_lit(1));
        let instret = c.reg("instret", w32, 0);
        instret.set(&(&instret.out() + &retire_count_w.sig().zext(w32)));
        let tohost = c.reg("tohost", w(33), 0);
        tohost.set_en(&halt_val_w.sig(), &halt_now_w.sig());
        let halted = c.reg("halted", w1, 0);
        halted.set_en(&c.lit1(true), &halt_now_w.sig());
        let halting = c.reg("halting", w1, 0);
        halting.set_en(&c.lit1(true), &halting_set_w.sig());
        (
            cycle.out(),
            instret.out(),
            tohost.out(),
            halted.out(),
            halting.out(),
        )
    });
    stop_front_w.drive(&(&halted_out | &halting_out));

    // ---- BTB -----------------------------------------------------------------------
    let btb_entries = config.btb_entries as usize;
    let btb_ib = config.btb_entries.trailing_zeros();
    let btb_tag_w = w(32 - 2 - btb_ib + 1); // {valid, tag}
    let (btb_tags, btb_targets) = c.scope("btb", |c| {
        (
            c.mem("tags", btb_tag_w, btb_entries),
            c.mem("targets", w32, btb_entries),
        )
    });
    let btb_index = |pc: &Sig| pc.bits(2 + btb_ib - 1, 2);
    let btb_tag_of = |pc: &Sig| pc.bits(31, 2 + btb_ib);

    // ---- IF --------------------------------------------------------------------------
    let pc = c.scope("fetch", |c| c.reg("pc", w32, 0));
    let fetch_wanted = !&stop_front;
    let icache_req = CacheCpuReq {
        valid: fetch_wanted.clone(),
        addr: pc.out(),
        rw: c.lit1(false),
        wdata: c.lit(0, w32),
    };
    let igrant_w = c.wire(w1);
    let irefill_valid_w = c.wire(w1);
    let icache = build_cache(
        c,
        "icache",
        config.icache_bytes,
        &icache_req,
        &igrant_w.sig(),
        &irefill_valid_w.sig(),
        &mem_resp_rdata,
    );
    let fetch_valid = &icache.cpu.resp_valid & &fetch_wanted;

    // BTB lookup for both fetch slots (a loop back-edge usually sits in
    // slot 1; without this lookup it would mispredict every iteration).
    let pc1 = pc.out().add_lit(4);
    let btb_rd = btb_tags.read(&btb_index(&pc.out()));
    let btb_valid = btb_rd.bit(btb_tag_w.bits() - 1);
    let btb_hit = &(&btb_valid
        & &btb_rd
            .bits(btb_tag_w.bits() - 2, 0)
            .eq(&btb_tag_of(&pc.out())))
        & &fetch_valid;
    let btb_target = btb_targets.read(&btb_index(&pc.out()));
    let btb_rd1 = btb_tags.read(&btb_index(&pc1));
    let btb_valid1 = btb_rd1.bit(btb_tag_w.bits() - 1);
    let btb_hit1_raw = &btb_valid1 & &btb_rd1.bits(btb_tag_w.bits() - 2, 0).eq(&btb_tag_of(&pc1));
    let btb_target1 = btb_targets.read(&btb_index(&pc1));

    // Fetch buffer.
    let mut fbuf = Queue::new(c, "fetch/fbuf", 8);
    let slot1_same_line = !&pc.out().bits(3, 2).eq_lit(3);
    let slot1_avail = if dual {
        &(&fetch_valid & &slot1_same_line) & &!&btb_hit
    } else {
        c.lit1(false)
    };
    let btb_hit1 = &btb_hit1_raw & &slot1_avail;
    let fb_space = fbuf.space_for(2);
    let push_any = &fetch_valid & &fb_space;
    let push_two = &push_any & &slot1_avail;
    let push_count_v = push_two.cat(&(&push_any & &!&push_two));
    fbuf.push_count.drive(&push_count_v);
    fbuf.flush.drive(&flush);

    // pred lane payload: {pred_taken, target}.
    let pred0 = btb_hit.cat(&btb_target);
    let pred1 = btb_hit1.cat(&btb_target1);
    let (fb_pc0, fb_pc1) = fbuf.lane("pc", w32, &pc.out(), &pc1);
    let (fb_ir0, fb_ir1) = fbuf.lane("ir", w32, &icache.cpu.resp_data, &icache.cpu.resp_data_next);
    let (fb_pr0, fb_pr1) = fbuf.lane("pred", w(33), &pred0, &pred1);

    // PC update: a slot-1 BTB hit steers fetch after both slots push.
    let pc_next_seq = push_two.mux(&pc.out().add_lit(8), &pc.out().add_lit(4));
    let slot1_steer = &push_two & &btb_hit1;
    let pc_seq_or_steer = slot1_steer.mux(&btb_target1, &pc_next_seq);
    let pc_after_fetch = btb_hit.mux(&btb_target, &pc_seq_or_steer);
    let pc_next = c.select(
        &[
            (flush.clone(), flush_target_w.sig()),
            (push_any.clone(), pc_after_fetch),
        ],
        &pc.out(),
    );
    pc.set(&pc_next);

    // ---- transfer stage: fetch buffer → issue queue ----------------------------------
    let mut iq = Queue::new(
        c,
        "issue/iq",
        config.issue_slots.next_power_of_two() as usize,
    );
    let iq_space2 = iq.space_for(2);
    let iq_space1 = iq.space_for(1);
    let t2 = &(&fbuf.has(2) & &iq_space2) & &if dual { c.lit1(true) } else { c.lit1(false) };
    let t1 = &fbuf.has(1) & &iq_space1;
    let tcount = t2.cat(&(&t1 & &!&t2));
    fbuf.pop_count.drive(&tcount);
    iq.push_count.drive(&tcount);
    iq.flush.drive(&flush);
    let (iq_pc0, iq_pc1) = iq.lane("pc", w32, &fb_pc0, &fb_pc1);
    let (iq_ir0, iq_ir1) = iq.lane("ir", w32, &fb_ir0, &fb_ir1);
    let (iq_pr0, iq_pr1) = iq.lane("pred", w(33), &fb_pr0, &fb_pr1);
    let _ = iq_pr1; // slot-1 instructions are never control flow

    // ---- issue -------------------------------------------------------------------------
    let d0: Decoded = decode(c, &iq_ir0);
    let d1: Decoded = decode(c, &iq_ir1);

    // Scoreboard.
    let busy_set_w = c.wire(w32);
    let busy_clear_w = c.wire(w32);
    let busy = c.scope("issue", |c| {
        let busy = c.reg("busy", w32, 0);
        let kept = &busy.out() & &!&busy_clear_w.sig();
        let next = &kept | &busy_set_w.sig();
        // A flush can only coincide with in-flight ops that complete
        // normally (the branch itself); no rollback is needed because
        // issue is blocked during the flush cycle.
        busy.set(&next);
        busy.out()
    });

    // Bypass sources (driven later): EX lane results and WB lane results.
    // Packed as {avail, rd, value} = 38 bits.
    let ex0_byp_w = c.wire(w(38));
    let ex1_byp_w = c.wire(w(38));
    let wb0_byp_w = c.wire(w(38));
    let wb1_byp_w = c.wire(w(38));
    let byp = |src: &Wire, rs: &Sig| -> (Sig, Sig) {
        let s = src.sig();
        let avail = s.bit(37);
        let rd = s.bits(36, 32);
        let val = s.bits(31, 0);
        let hit = &(&avail & &rd.eq(rs)) & &!&rs.eq_lit(0);
        (hit, val)
    };

    let rf = c.scope("regfile", |c| {
        c.mem("rf", w32, config.physical_regs as usize)
    });
    let rf_addr_w = Width::for_depth(config.physical_regs as usize).expect("depth ok");

    // Operand lookup: value and readiness.
    let operand = |rs: &Sig| -> (Sig, Sig) {
        let raw = rf.read(&rs.zext(rf_addr_w));
        let is_zero = rs.eq_lit(0);
        let one = c.lit(1, w32);
        let busy_bit = (&busy.shr(&rs.zext(w32)) & &one).bit(0);
        let (h_ex0, v_ex0) = byp(&ex0_byp_w, rs);
        let (h_ex1, v_ex1) = byp(&ex1_byp_w, rs);
        let (h_wb0, v_wb0) = byp(&wb0_byp_w, rs);
        let (h_wb1, v_wb1) = byp(&wb1_byp_w, rs);
        let zero = c.lit(0, w32);
        let value = c.select(
            &[
                (is_zero.clone(), zero),
                (h_ex0.clone(), v_ex0),
                (h_ex1.clone(), v_ex1),
                (h_wb0.clone(), v_wb0),
                (h_wb1.clone(), v_wb1),
            ],
            &raw,
        );
        let any_byp = &(&h_ex0 | &h_ex1) | &(&h_wb0 | &h_wb1);
        let ready = &(&!&busy_bit | &any_byp) | &is_zero;
        (value, ready)
    };

    let (s0_a, s0_a_ready) = operand(&d0.rs1);
    let (s0_b, s0_b_ready) = operand(&d0.rs2);
    let (s1_a, s1_a_ready) = operand(&d1.rs1);
    let (s1_b, s1_b_ready) = operand(&d1.rs2);

    // Slot-0 issue conditions. WAW hazards need no stall: issue and
    // writeback are both in order, so a younger writer always reaches the
    // register file later; the busy-clear logic below keeps the scoreboard
    // honest with multiple writers in flight.
    let s0_ready = &(&s0_a_ready | &!&d0.uses_rs1) & &(&s0_b_ready | &!&d0.uses_rs2);
    let rob_space1_w = c.wire(w1);
    let rob_space2_w = c.wire(w1);
    let issue0 = &(&(&iq.has(1) & &s0_ready) & &rob_space1_w.sig())
        & &(&(&!&ex_stall & &!&flush) & &!&stop_front);

    // Slot-1 issue conditions: plain ALU only, no dependence on slot 0.
    let solo0 = &(&(&d0.is_branch | &d0.is_jal) | &(&d0.is_jalr | &d0.is_halt)) | &d0.is_out;
    let plain1 = &(&d1.is_alu_reg & &!&d1.is_mul) | &d1.is_alu_imm;
    let s1_ready = &(&s1_a_ready | &!&d1.uses_rs1) & &(&s1_b_ready | &!&d1.uses_rs2);
    let rd_conflict = &(&d0.writes_rd & &d1.writes_rd) & &d0.rd.eq(&d1.rd);
    let raw_on_0 = &(&d0.writes_rd & &!&d0.rd.eq_lit(0))
        & &(&(&d1.uses_rs1 & &d1.rs1.eq(&d0.rd)) | &(&d1.uses_rs2 & &d1.rs2.eq(&d0.rd)));
    let issue1 = if dual {
        &(&(&(&(&issue0 & &iq.has(2)) & &!&solo0) & &plain1) & &s1_ready)
            & &(&(&!&rd_conflict & &!&raw_on_0) & &rob_space2_w.sig())
    } else {
        c.lit1(false)
    };

    let issue_count = issue1.cat(&(&issue0 & &!&issue1));
    iq.pop_count.drive(&issue_count);

    busy_set_w.drive(
        &(&onehot_rd(c, &d0.rd, &(&issue0 & &d0.writes_rd))
            | &onehot_rd(c, &d1.rd, &(&issue1 & &d1.writes_rd))),
    );

    // ---- ROB (completion buffer) -------------------------------------------------------
    let rob_depth = config.rob_entries.next_power_of_two() as usize;
    let mut rob = Queue::new(c, "rob", rob_depth);
    rob_space1_w.drive(&rob.space_for(1));
    rob_space2_w.drive(&rob.space_for(2));
    rob.push_count.drive(&issue_count);
    rob.pop_count.drive(&retire_count_w.sig());
    rob.flush.drive(&c.lit1(false)); // never rolled back (see busy note)
    let (rob_pc0, _rob_pc1) = rob.lane("pc", w32, &iq_pc0, &iq_pc1);
    let _ = rob_pc0;

    // ---- EX stage ------------------------------------------------------------------------
    let ex_adv = !&ex_stall;
    let mk_lane = |lane: &str, take: &Sig, ir: &Sig, a: &Sig, b: &Sig| {
        c.scope("alu", |c| {
            c.scope(lane, |c| {
                let v = c.reg("valid", w1, 0);
                let irr = c.reg("ir", w32, 0);
                let ar = c.reg("a", w32, 0);
                let br = c.reg("b", w32, 0);
                v.set_en(take, &ex_adv);
                irr.set_en(ir, &ex_adv);
                ar.set_en(a, &ex_adv);
                br.set_en(b, &ex_adv);
                (v.out(), irr.out(), ar.out(), br.out())
            })
        })
    };
    let (ex0_valid, ex0_ir, ex0_a, ex0_b) = mk_lane("lane0", &issue0, &iq_ir0, &s0_a, &s0_b);
    let (ex0_pc, ex0_pred) = c.scope("alu", |c| {
        c.scope("lane0", |c| {
            let pcr = c.reg("pc", w32, 0);
            let pr = c.reg("pred", w(33), 0);
            pcr.set_en(&iq_pc0, &ex_adv);
            pr.set_en(&iq_pr0, &ex_adv);
            (pcr.out(), pr.out())
        })
    });
    let (ex1_valid, ex1_ir, ex1_a, ex1_b) = mk_lane("lane1", &issue1, &iq_ir1, &s1_a, &s1_b);

    let d_ex0 = decode(c, &ex0_ir);
    let d_ex1 = decode(c, &ex1_ir);

    // Lane 0: full execute.
    let mul_product = c.scope("mul", |_| ex0_a.mul(&ex0_b));
    let alu0 = alu(c, &d_ex0, &ex0_a, &ex0_b);
    let taken0 = branch_taken(&d_ex0, &ex0_a, &ex0_b);
    let imm_words0 = d_ex0.imm_s.shl_lit(2);
    let br_target0 = &ex0_pc + &imm_words0;
    let jalr_target0 = {
        let sum = &ex0_a + &d_ex0.imm_s;
        let mask = c.lit(0xFFFF_FFFC, w32);
        &sum & &mask
    };
    let actual_redirect = &(&taken0 | &d_ex0.is_jal) | &d_ex0.is_jalr;
    let actual_target = d_ex0.is_jalr.mux(&jalr_target0, &br_target0);
    let pred_taken = ex0_pred.bit(32);
    let pred_target = ex0_pred.bits(31, 0);
    let wrong_dir = pred_taken.neq(&actual_redirect);
    let wrong_target = &actual_redirect & &!&pred_target.eq(&actual_target);
    let mispredict = &ex0_valid & &(&wrong_dir | &wrong_target);
    let halt_in_ex = &ex0_valid & &d_ex0.is_halt;
    halting_set_w.drive(&halt_in_ex);
    flush_w.drive(&(&(&mispredict | &halt_in_ex) & &!&ex_stall));
    let fallthrough = ex0_pc.add_lit(4);
    let correct_target = actual_redirect.mux(&actual_target, &fallthrough);
    flush_target_w.drive(&correct_target);

    // BTB update: learn taken control flow.
    let btb_learn = &(&ex0_valid & &actual_redirect) & &!&ex_stall;
    let learn_entry = c.lit1(true).cat(&btb_tag_of(&ex0_pc));
    btb_tags.write(&btb_index(&ex0_pc), &learn_entry, &btb_learn);
    btb_targets.write(&btb_index(&ex0_pc), &actual_target, &btb_learn);

    // Lane 0 D$ port.
    let dcache_req = CacheCpuReq {
        valid: &ex0_valid & &(&d_ex0.is_load | &d_ex0.is_store),
        addr: alu0.clone(),
        rw: d_ex0.is_store.clone(),
        wdata: ex0_b.clone(),
    };
    let dgrant_w = c.wire(w1);
    let drefill_valid_w = c.wire(w1);
    let dcache = build_cache(
        c,
        "dcache",
        config.dcache_bytes,
        &dcache_req,
        &dgrant_w.sig(),
        &drefill_valid_w.sig(),
        &mem_resp_rdata,
    );
    ex_stall_w.drive(&dcache.cpu.stall);

    let link0 = ex0_pc.add_lit(4);
    let result0 = c.select(
        &[
            (d_ex0.is_load.clone(), dcache.cpu.resp_data.clone()),
            (&d_ex0.is_jal | &d_ex0.is_jalr, link0),
            (d_ex0.is_rdcyc.clone(), cycle_q.clone()),
            (d_ex0.is_rdinst.clone(), instret_q.clone()),
            (d_ex0.is_mul.clone(), mul_product),
        ],
        &alu0,
    );
    // Lane 1: plain ALU.
    let result1 = alu(c, &d_ex1, &ex1_a, &ex1_b);

    // EX bypass packets: available for single-cycle producers (not loads
    // during a stall; a stalled lane forwards nothing).
    let ex0_avail = &(&(&ex0_valid & &d_ex0.writes_rd) & &!&ex_stall) & &!&d_ex0.rd.eq_lit(0);
    ex0_byp_w.drive(&ex0_avail.cat(&d_ex0.rd).cat(&result0));
    let ex1_avail = &(&ex1_valid & &d_ex1.writes_rd) & &!&ex_stall;
    ex1_byp_w.drive(&ex1_avail.cat(&d_ex1.rd).cat(&result1));

    // ---- uncore ----------------------------------------------------------------------------
    let uncore = build_uncore(c, &icache.mem, &dcache.mem, &mem_resp_valid, &mem_resp_tag);
    igrant_w.drive(&uncore.grant_i);
    irefill_valid_w.drive(&uncore.refill_i_valid);
    dgrant_w.drive(&uncore.grant_d);
    drefill_valid_w.drive(&uncore.refill_d_valid);

    // ---- WB stage -----------------------------------------------------------------------------
    let (wb0_valid, wb0_ir, wb0_val, wb1_valid, wb1_ir, wb1_val) = c.scope("wb", |c| {
        let v0 = c.reg("v0", w1, 0);
        let ir0 = c.reg("ir0", w32, 0);
        let val0 = c.reg("val0", w32, 0);
        let v1 = c.reg("v1", w1, 0);
        let ir1 = c.reg("ir1", w32, 0);
        let val1 = c.reg("val1", w32, 0);
        let take0 = &ex0_valid & &!&ex_stall;
        let take1 = &ex1_valid & &!&ex_stall;
        v0.set(&take0);
        ir0.set_en(&ex0_ir, &!&ex_stall);
        val0.set_en(&result0, &!&ex_stall);
        v1.set(&take1);
        ir1.set_en(&ex1_ir, &!&ex_stall);
        val1.set_en(&result1, &!&ex_stall);
        (
            v0.out(),
            ir0.out(),
            val0.out(),
            v1.out(),
            ir1.out(),
            val1.out(),
        )
    });

    let d_wb0 = decode(c, &wb0_ir);
    let d_wb1 = decode(c, &wb1_ir);
    let we0 = &(&wb0_valid & &d_wb0.writes_rd) & &!&d_wb0.rd.eq_lit(0);
    let we1 = &(&wb1_valid & &d_wb1.writes_rd) & &!&d_wb1.rd.eq_lit(0);
    rf.write(&d_wb0.rd.zext(rf_addr_w), &wb0_val, &we0);
    rf.write(&d_wb1.rd.zext(rf_addr_w), &wb1_val, &we1);
    wb0_byp_w.drive(&we0.cat(&d_wb0.rd).cat(&wb0_val));
    wb1_byp_w.drive(&we1.cat(&d_wb1.rd).cat(&wb1_val));
    // Clear a busy bit only when no younger in-flight writer (in EX)
    // claims the same register; a same-cycle issuing writer re-sets the
    // bit because `set` wins over `clear` in the scoreboard update.
    let ex_claims = |rd: &Sig| -> Sig {
        let m0 = &(&ex0_valid & &d_ex0.writes_rd) & &d_ex0.rd.eq(rd);
        let m1 = &(&ex1_valid & &d_ex1.writes_rd) & &d_ex1.rd.eq(rd);
        &m0 | &m1
    };
    let clear0 = &we0 & &!&ex_claims(&d_wb0.rd);
    let clear1 = &we1 & &!&ex_claims(&d_wb1.rd);
    busy_clear_w.drive(&(&onehot_rd(c, &d_wb0.rd, &clear0) | &onehot_rd(c, &d_wb1.rd, &clear1)));

    // Retirement (in-order by construction).
    let retire0 = &wb0_valid & &!&halted_out;
    let retire1 = &wb1_valid & &!&halted_out;
    retire_count_w.drive(&retire1.cat(&(&retire0 & &!&retire1)));
    let halt_now = &(&wb0_valid & &d_wb0.is_halt) & &!&halted_out;
    halt_now_w.drive(&halt_now);
    let one33 = c.lit(1, w(33));
    let halt_code = &wb0_val.zext(w(33)).shl_lit(1) | &one33;
    halt_val_w.drive(&halt_code);

    // ---- outputs ---------------------------------------------------------------------------------
    ctx.output("mem_req_valid", &uncore.req_valid);
    ctx.output("mem_req_rw", &uncore.req_rw);
    ctx.output("mem_req_addr", &uncore.req_addr);
    ctx.output("mem_req_wdata", &uncore.req_wdata);
    ctx.output("mem_req_tag", &uncore.req_tag);
    ctx.output("tohost", &tohost_out);
    ctx.output("instret", &instret_q);
    let console_valid = &(&wb0_valid & &d_wb0.is_out) & &!&halted_out;
    ctx.output("console_valid", &console_valid);
    ctx.output("console_byte", &wb0_val.bits(7, 0));

    ctx.finish().expect("Boum must elaborate")
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn boum_elaborates_both_widths() {
        for width in [1, 2] {
            let design = build_boum(&CoreConfig::boum_tiny(width));
            assert!(design.register_count() > 20, "width {width}");
            assert!(design.memory_count() >= 10, "width {width}");
        }
    }

    #[test]
    fn full_size_boum_elaborates() {
        let d1 = build_boum(&CoreConfig::boum_1w());
        let d2 = build_boum(&CoreConfig::boum_2w());
        // The 2-wide configuration carries more state (bigger queues,
        // ROB, physical register file).
        assert!(d2.state_bits() > d1.state_bits());
    }
}

//! Core configurations — the Table II analog.

/// Parameters of one processor configuration.
///
/// The three presets mirror Table II of the paper (Rocket, BOOM-1w,
/// BOOM-2w): fetch/issue width, issue slots, ROB size, physical register
/// count and L1 cache capacities.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct CoreConfig {
    /// Display name.
    pub name: String,
    /// `false` = Rok (in-order 5-stage), `true` = Boum (superscalar).
    pub superscalar: bool,
    /// Fetch/issue width (1 or 2; Boum only).
    pub width: u32,
    /// Issue-queue depth (Boum only).
    pub issue_slots: u32,
    /// Completion-buffer (ROB) entries (Boum only).
    pub rob_entries: u32,
    /// Physical register file depth (≥ 32; the architectural registers
    /// occupy the first 32 entries).
    pub physical_regs: u32,
    /// L1 instruction cache capacity in bytes.
    pub icache_bytes: u32,
    /// L1 data cache capacity in bytes.
    pub dcache_bytes: u32,
    /// Branch-target-buffer entries (Boum only; Rok has none, matching
    /// the case study's "only a simple branch predictor" remark).
    pub btb_entries: u32,
}

impl CoreConfig {
    /// Rok — the Rocket analog (Table II column 1).
    pub fn rok() -> Self {
        CoreConfig {
            name: "rok".to_owned(),
            superscalar: false,
            width: 1,
            issue_slots: 0,
            rob_entries: 0,
            physical_regs: 32,
            icache_bytes: 16 * 1024,
            dcache_bytes: 16 * 1024,
            btb_entries: 0,
        }
    }

    /// Boum-1w — the BOOM-1w analog (Table II column 2).
    pub fn boum_1w() -> Self {
        CoreConfig {
            name: "boum-1w".to_owned(),
            superscalar: true,
            width: 1,
            issue_slots: 12,
            rob_entries: 24,
            physical_regs: 100,
            icache_bytes: 16 * 1024,
            dcache_bytes: 16 * 1024,
            btb_entries: 16,
        }
    }

    /// Boum-2w — the BOOM-2w analog (Table II column 3).
    pub fn boum_2w() -> Self {
        CoreConfig {
            name: "boum-2w".to_owned(),
            superscalar: true,
            width: 2,
            issue_slots: 16,
            rob_entries: 32,
            physical_regs: 110,
            icache_bytes: 16 * 1024,
            dcache_bytes: 16 * 1024,
            btb_entries: 16,
        }
    }

    /// All three Table II configurations.
    pub fn table2() -> Vec<CoreConfig> {
        vec![Self::rok(), Self::boum_1w(), Self::boum_2w()]
    }

    /// A miniature Rok with small caches, for fast tests.
    pub fn rok_tiny() -> Self {
        CoreConfig {
            name: "rok-tiny".to_owned(),
            icache_bytes: 1024,
            dcache_bytes: 1024,
            ..Self::rok()
        }
    }

    /// A miniature Boum-2w with small caches, for fast tests.
    pub fn boum_tiny(width: u32) -> Self {
        CoreConfig {
            name: format!("boum-tiny-{width}w"),
            width,
            issue_slots: 8,
            rob_entries: 16,
            physical_regs: 48,
            icache_bytes: 1024,
            dcache_bytes: 1024,
            ..Self::boum_2w()
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn table2_matches_paper_axes() {
        let t = CoreConfig::table2();
        assert_eq!(t.len(), 3);
        assert_eq!(t[0].width, 1);
        assert_eq!(t[2].width, 2);
        assert!(t[2].issue_slots > t[1].issue_slots);
        assert!(t[2].rob_entries > t[1].rob_entries);
        assert!(t[2].physical_regs > t[1].physical_regs);
        for c in &t {
            assert_eq!(c.icache_bytes, 16 * 1024);
            assert_eq!(c.dcache_bytes, 16 * 1024);
        }
    }
}

//! The blocking L1 cache generator.
//!
//! Direct-mapped, 16-byte (4-word) blocks, write-through, no-allocate.
//! Reads hit combinationally; a read miss stalls the requester while the
//! uncore fetches the block in a 4-beat burst. Stores are posted to the
//! uncore (write-through) and update the data array on hit.

use strober_dsl::{Ctx, Sig};
use strober_rtl::Width;

fn w(bits: u32) -> Width {
    Width::new(bits).expect("static width")
}

/// CPU-side request into a cache (all signals sampled combinationally).
#[derive(Debug, Clone)]
pub struct CacheCpuReq {
    /// Request valid.
    pub valid: Sig,
    /// Byte address (word aligned).
    pub addr: Sig,
    /// 1 = store, 0 = load.
    pub rw: Sig,
    /// Store data.
    pub wdata: Sig,
}

/// Memory-side wiring of a cache (to the uncore arbiter).
#[derive(Debug, Clone)]
pub struct CacheMemPort {
    /// The cache requests the bus.
    pub req_valid: Sig,
    /// 1 = posted write, 0 = block read.
    pub req_rw: Sig,
    /// Request address (block-aligned for reads).
    pub req_addr: Sig,
    /// Write data.
    pub req_wdata: Sig,
}

/// Cache outputs toward the CPU.
#[derive(Debug, Clone)]
pub struct CacheCpuResp {
    /// Read data valid this cycle (combinational hit, including the cycle
    /// a refill completes).
    pub resp_valid: Sig,
    /// Read data.
    pub resp_data: Sig,
    /// The next sequential word of the same block (for superscalar
    /// fetch); only meaningful when the request hits and the requested
    /// word is not the last of its block.
    pub resp_data_next: Sig,
    /// The request cannot complete this cycle; hold it.
    pub stall: Sig,
}

/// The fully wired cache.
#[derive(Debug, Clone)]
pub struct Cache {
    /// CPU-side outputs.
    pub cpu: CacheCpuResp,
    /// Memory-side request outputs (inputs to the uncore).
    pub mem: CacheMemPort,
}

/// Builds a cache inside scope `name`.
///
/// `grant` must be high in a cycle where the uncore accepted this cache's
/// request; `refill_valid`/`refill_data` deliver the four read beats.
///
/// # Panics
///
/// Panics if `capacity_bytes` is not a power of two of at least 64 bytes
/// (generator-time error).
#[allow(clippy::too_many_arguments)]
pub fn build_cache(
    ctx: &Ctx,
    name: &str,
    capacity_bytes: u32,
    req: &CacheCpuReq,
    grant: &Sig,
    refill_valid: &Sig,
    refill_data: &Sig,
) -> Cache {
    assert!(
        capacity_bytes.is_power_of_two() && capacity_bytes >= 64,
        "cache capacity must be a power of two ≥ 64 bytes"
    );
    ctx.scope(name, |c| {
        let lines = capacity_bytes / 16;
        let index_bits = lines.trailing_zeros();
        let tag_bits = 32 - 4 - index_bits;

        // Address slicing: [3:2] word-in-block, [4+ib-1:4] index, rest tag.
        let off = req.addr.bits(3, 2);
        let idx = req.addr.bits(4 + index_bits - 1, 4);
        let tag = req.addr.bits(31, 4 + index_bits);

        // State: 0 = IDLE, 1 = REFILL.
        let state = c.reg("state", w(1), 0);
        let beat = c.reg("beat", w(2), 0);
        let miss_addr = c.reg("miss_addr", w(32), 0);
        let miss_idx = miss_addr.out().bits(4 + index_bits - 1, 4);
        let miss_tag = miss_addr.out().bits(31, 4 + index_bits);

        let idle = state.out().eq_lit(0);
        let refilling = state.out().eq_lit(1);

        // Arrays.
        let tags = c.mem("tags", w(tag_bits + 1), lines as usize);
        let data = c.mem("data", w(32), (lines * 4) as usize);

        let tag_rd = tags.read(&idx);
        let valid_bit = tag_rd.bit(tag_bits);
        let tag_match = tag_rd.bits(tag_bits - 1, 0).eq(&tag);
        let hit = &valid_bit & &tag_match;

        let data_addr = idx.cat(&off);
        let data_rd = data.read(&data_addr);
        let off_next = off.add_lit(1);
        let data_addr_next = idx.cat(&off_next);
        let data_rd_next = data.read(&data_addr_next);

        let is_read = &req.valid & &!&req.rw;
        let is_write = &req.valid & &req.rw;

        let read_hit = &(&is_read & &idle) & &hit;

        // Memory request: read miss fetches the block; stores post through.
        let want_read = &(&is_read & &idle) & &!&hit;
        let mreq_valid = &want_read | &(&is_write & &idle);
        let block_addr = req.addr.bits(31, 4).cat(&c.lit(0, w(4)));
        let mreq_addr = req.rw.mux(&req.addr, &block_addr);

        // Grant handling.
        let read_granted = &want_read & grant;
        let write_granted = &(&is_write & &idle) & grant;

        // State transitions.
        let last_beat = &beat.out().eq_lit(3) & refill_valid;
        let next_state = c.select(
            &[
                (read_granted.clone(), c.lit(1, w(1))),
                (last_beat.clone(), c.lit(0, w(1))),
            ],
            &state.out(),
        );
        state.set(&next_state);

        let beat_next = c.select(
            &[
                (read_granted.clone(), c.lit(0, w(2))),
                (refill_valid.clone(), beat.out().add_lit(1)),
            ],
            &beat.out(),
        );
        beat.set(&beat_next);
        miss_addr.set_en(&req.addr, &read_granted);

        // Refill writes into the data array; tag written on the last beat.
        let refill_wr_addr = miss_idx.cat(&beat.out());
        let refill_wr_en = &refilling & refill_valid;
        data.write(&refill_wr_addr, refill_data, &refill_wr_en);
        let one = c.lit1(true);
        let new_tag_entry = one.cat(&miss_tag);
        tags.write(&miss_idx, &new_tag_entry, &last_beat);

        // Store path: update the array on hit (write-through, no-allocate).
        let store_update = &write_granted & &hit;
        data.write(&data_addr, &req.wdata, &store_update);

        // CPU response.
        let resp_valid = read_hit.clone();
        let stall_read = &is_read & &!&read_hit;
        let stall_write = &is_write & &!&write_granted;
        let stall = &stall_read | &stall_write;

        Cache {
            cpu: CacheCpuResp {
                resp_valid,
                resp_data: data_rd,
                resp_data_next: data_rd_next,
                stall,
            },
            mem: CacheMemPort {
                req_valid: mreq_valid,
                req_rw: req.rw.clone(),
                req_addr: mreq_addr,
                req_wdata: req.wdata.clone(),
            },
        }
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use strober_sim::Simulator;

    /// Standalone cache testbench with an ideal 0-latency grant and a
    /// scripted refill driven from the test.
    fn harness(capacity: u32) -> strober_rtl::Design {
        let ctx = Ctx::new("cache_tb");
        let req = CacheCpuReq {
            valid: ctx.input("valid", w(1)),
            addr: ctx.input("addr", w(32)),
            rw: ctx.input("rw", w(1)),
            wdata: ctx.input("wdata", w(32)),
        };
        let grant = ctx.input("grant", w(1));
        let refill_valid = ctx.input("refill_valid", w(1));
        let refill_data = ctx.input("refill_data", w(32));
        let cache = build_cache(
            &ctx,
            "dcache",
            capacity,
            &req,
            &grant,
            &refill_valid,
            &refill_data,
        );
        ctx.output("resp_valid", &cache.cpu.resp_valid);
        ctx.output("resp_data", &cache.cpu.resp_data);
        ctx.output("stall", &cache.cpu.stall);
        ctx.output("mreq_valid", &cache.mem.req_valid);
        ctx.output("mreq_rw", &cache.mem.req_rw);
        ctx.output("mreq_addr", &cache.mem.req_addr);
        ctx.finish().unwrap()
    }

    #[test]
    fn miss_refill_then_hit() {
        let design = harness(256);
        let mut sim = Simulator::new(&design).unwrap();
        sim.poke_by_name("valid", 1).unwrap();
        sim.poke_by_name("rw", 0).unwrap();
        sim.poke_by_name("addr", 0x108).unwrap(); // block 0x100, word 2
        sim.poke_by_name("grant", 1).unwrap();
        sim.poke_by_name("refill_valid", 0).unwrap();

        // Cycle 0: miss; block-aligned read request.
        assert_eq!(sim.peek_output("resp_valid").unwrap(), 0);
        assert_eq!(sim.peek_output("stall").unwrap(), 1);
        assert_eq!(sim.peek_output("mreq_valid").unwrap(), 1);
        assert_eq!(sim.peek_output("mreq_addr").unwrap(), 0x100);
        sim.step(); // grant taken, state -> REFILL

        // Four refill beats: words 0x100..0x10C get values 10,11,12,13.
        sim.poke_by_name("grant", 0).unwrap();
        sim.poke_by_name("refill_valid", 1).unwrap();
        for k in 0..4u64 {
            sim.poke_by_name("refill_data", 10 + k).unwrap();
            assert_eq!(sim.peek_output("resp_valid").unwrap(), 0);
            sim.step();
        }
        sim.poke_by_name("refill_valid", 0).unwrap();

        // Now the held request hits: word 2 of the block = 12.
        assert_eq!(sim.peek_output("resp_valid").unwrap(), 1);
        assert_eq!(sim.peek_output("resp_data").unwrap(), 12);
        assert_eq!(sim.peek_output("stall").unwrap(), 0);

        // Another word of the same block hits immediately.
        sim.poke_by_name("addr", 0x10C).unwrap();
        assert_eq!(sim.peek_output("resp_valid").unwrap(), 1);
        assert_eq!(sim.peek_output("resp_data").unwrap(), 13);
    }

    #[test]
    fn store_hit_updates_array_and_posts_write() {
        let design = harness(256);
        let mut sim = Simulator::new(&design).unwrap();
        // Fill block 0 via refill.
        sim.poke_by_name("valid", 1).unwrap();
        sim.poke_by_name("rw", 0).unwrap();
        sim.poke_by_name("addr", 0x0).unwrap();
        sim.poke_by_name("grant", 1).unwrap();
        sim.step();
        sim.poke_by_name("refill_valid", 1).unwrap();
        for k in 0..4u64 {
            sim.poke_by_name("refill_data", 100 + k).unwrap();
            sim.step();
        }
        sim.poke_by_name("refill_valid", 0).unwrap();

        // Store to word 1.
        sim.poke_by_name("rw", 1).unwrap();
        sim.poke_by_name("addr", 0x4).unwrap();
        sim.poke_by_name("wdata", 0xBEEF).unwrap();
        assert_eq!(sim.peek_output("mreq_valid").unwrap(), 1);
        assert_eq!(sim.peek_output("mreq_rw").unwrap(), 1);
        assert_eq!(sim.peek_output("mreq_addr").unwrap(), 0x4);
        assert_eq!(sim.peek_output("stall").unwrap(), 0); // granted
        sim.step();

        // Read it back: hit with the stored value.
        sim.poke_by_name("rw", 0).unwrap();
        assert_eq!(sim.peek_output("resp_valid").unwrap(), 1);
        assert_eq!(sim.peek_output("resp_data").unwrap(), 0xBEEF);
    }

    #[test]
    fn store_without_grant_stalls() {
        let design = harness(256);
        let mut sim = Simulator::new(&design).unwrap();
        sim.poke_by_name("valid", 1).unwrap();
        sim.poke_by_name("rw", 1).unwrap();
        sim.poke_by_name("addr", 0x40).unwrap();
        sim.poke_by_name("wdata", 1).unwrap();
        sim.poke_by_name("grant", 0).unwrap();
        assert_eq!(sim.peek_output("stall").unwrap(), 1);
        sim.poke_by_name("grant", 1).unwrap();
        assert_eq!(sim.peek_output("stall").unwrap(), 0);
    }

    #[test]
    fn store_miss_does_not_allocate() {
        let design = harness(256);
        let mut sim = Simulator::new(&design).unwrap();
        // Store to an uncached block (miss): posts the write, no refill.
        sim.poke_by_name("valid", 1).unwrap();
        sim.poke_by_name("rw", 1).unwrap();
        sim.poke_by_name("addr", 0x80).unwrap();
        sim.poke_by_name("wdata", 7).unwrap();
        sim.poke_by_name("grant", 1).unwrap();
        sim.step();
        // Read of the same address must miss (no allocation happened).
        sim.poke_by_name("rw", 0).unwrap();
        assert_eq!(sim.peek_output("resp_valid").unwrap(), 0);
        assert_eq!(sim.peek_output("mreq_valid").unwrap(), 1);
        assert_eq!(sim.peek_output("mreq_rw").unwrap(), 0);
    }

    #[test]
    fn conflicting_lines_evict() {
        let design = harness(256); // 16 lines
        let mut sim = Simulator::new(&design).unwrap();
        let refill = |sim: &mut Simulator, addr: u64, base: u64| {
            sim.poke_by_name("valid", 1).unwrap();
            sim.poke_by_name("rw", 0).unwrap();
            sim.poke_by_name("addr", addr).unwrap();
            sim.poke_by_name("grant", 1).unwrap();
            sim.step();
            sim.poke_by_name("grant", 0).unwrap();
            sim.poke_by_name("refill_valid", 1).unwrap();
            for k in 0..4u64 {
                sim.poke_by_name("refill_data", base + k).unwrap();
                sim.step();
            }
            sim.poke_by_name("refill_valid", 0).unwrap();
        };
        refill(&mut sim, 0x000, 10); // line 0
        refill(&mut sim, 0x100, 20); // also maps to line 0 (16 lines × 16 B)
                                     // 0x100 hits with the new data; 0x000 now misses.
        sim.poke_by_name("addr", 0x100).unwrap();
        assert_eq!(sim.peek_output("resp_valid").unwrap(), 1);
        assert_eq!(sim.peek_output("resp_data").unwrap(), 20);
        sim.poke_by_name("addr", 0x000).unwrap();
        assert_eq!(sim.peek_output("resp_valid").unwrap(), 0);
    }
}

//! The target processor designs: Rok and Boum.
//!
//! The paper evaluates Strober on two open-source RISC-V cores built with
//! the Rocket-chip generator: Rocket (5-stage in-order) and BOOM
//! (parameterised superscalar out-of-order). This crate provides the
//! equivalent synthesizable designs for the SRV32 ISA, written in the
//! `strober-dsl` hardware construction language:
//!
//! * [`rok::build_rok`] — **Rok**, a 5-stage in-order scalar pipeline with
//!   full forwarding, branch resolution in EX, blocking L1 instruction and
//!   data caches (direct-mapped, 16-byte blocks, write-through
//!   no-allocate), and a bus arbiter ("uncore") multiplexing both caches
//!   onto one external memory port.
//! * [`boum::build_boum`] — **Boum**, a parameterised superscalar core
//!   (fetch/issue width 1 or 2) with a fetch buffer, a branch target
//!   buffer, an issue queue, a scoreboard with EX/WB bypass networks, a
//!   completion buffer (ROB) for in-order retirement, and a physical
//!   register file sized per configuration. Relative to BOOM it issues in
//!   order from the queue head (see DESIGN.md for the simplification
//!   inventory); it occupies the same design-space point — wider, more
//!   physical state, higher IPC on parallel code, higher power.
//!
//! Both cores share the decode/ALU library ([`decode`]), the cache
//! generator ([`cache`]) and the uncore ([`uncore`]), and expose the same
//! top-level interface, so the Strober flow treats them identically.
//!
//! # Top-level interface
//!
//! | port | dir | meaning |
//! |---|---|---|
//! | `mem_req_valid/rw/addr/wdata/tag` | out | memory request (reads fetch a 16-byte block; writes are posted single words) |
//! | `mem_resp_valid/tag/rdata` | in | read response, four beats on consecutive cycles |
//! | `tohost` | out | `(code << 1) \| 1` once the program executes `halt` |
//! | `instret` | out | retired instruction counter |
//! | `console_valid/console_byte` | out | `out` instruction byte stream |
//!
//! Hierarchical name scopes (`fetch/…`, `decode/…`, `alu/…`, `lsu/…`,
//! `regfile/…`, `issue/…`, `rob/…`, `btb/…`, `icache/…`, `dcache/…`,
//! `uncore/…`, `csr/…`, `mul/…`) drive the Fig. 9a per-component power
//! breakdown.

#![deny(missing_docs)]
#![deny(missing_debug_implementations)]

pub mod boum;
pub mod cache;
pub mod config;
pub mod decode;
pub mod rok;
pub mod uncore;

pub use config::CoreConfig;

use strober_rtl::Design;

/// Builds the core selected by a configuration.
///
/// # Panics
///
/// Panics if the configuration is internally inconsistent (generator-time
/// error), like the DSL it is built on.
pub fn build_core(config: &CoreConfig) -> Design {
    if config.superscalar {
        boum::build_boum(config)
    } else {
        rok::build_rok(config)
    }
}

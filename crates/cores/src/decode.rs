//! Instruction decode and the integer ALU, shared by both cores.

use strober_dsl::{Ctx, Sig};
use strober_isa::Op;
use strober_rtl::Width;

fn w(bits: u32) -> Width {
    Width::new(bits).expect("static width")
}

/// The decoded control/operand bundle for one instruction word.
#[derive(Debug, Clone)]
pub struct Decoded {
    /// Raw 6-bit opcode field.
    pub op: Sig,
    /// Destination architectural register (0 when the instruction writes
    /// nothing).
    pub rd: Sig,
    /// First source register.
    pub rs1: Sig,
    /// Second source register (0 when unused).
    pub rs2: Sig,
    /// Sign-extended immediate.
    pub imm_s: Sig,
    /// Zero-extended immediate (logical ops).
    pub imm_z: Sig,
    /// Register-register ALU op.
    pub is_alu_reg: Sig,
    /// Register-immediate ALU op (including `lui`).
    pub is_alu_imm: Sig,
    /// `lw`.
    pub is_load: Sig,
    /// `sw`.
    pub is_store: Sig,
    /// Conditional branch.
    pub is_branch: Sig,
    /// `jal`.
    pub is_jal: Sig,
    /// `jalr`.
    pub is_jalr: Sig,
    /// `halt`.
    pub is_halt: Sig,
    /// `rdcyc` / `rdinst`.
    pub is_rdcyc: Sig,
    /// `rdinst`.
    pub is_rdinst: Sig,
    /// `out`.
    pub is_out: Sig,
    /// `mul` (register form).
    pub is_mul: Sig,
    /// Instruction writes `rd`.
    pub writes_rd: Sig,
    /// Instruction reads `rs1`.
    pub uses_rs1: Sig,
    /// Instruction reads `rs2`.
    pub uses_rs2: Sig,
}

/// Decodes a 32-bit instruction word.
pub fn decode(ctx: &Ctx, ir: &Sig) -> Decoded {
    let op = ir.bits(31, 26);
    let f1 = ir.bits(25, 21);
    let f2 = ir.bits(20, 16);
    let f3 = ir.bits(15, 11);
    let imm16 = ir.bits(15, 0);
    let imm_s = imm16.sext(w(32));
    let imm_z = imm16.zext(w(32));

    let opc = |o: Op| op.eq_lit(o as u64);
    let in_range = |lo: u64, hi: u64| {
        // lo <= op <= hi
        let ge = !op.ltu(&op.lit(lo));
        let le = op.leu(&op.lit(hi));
        ge & le
    };

    let is_alu_reg = in_range(Op::Add as u64, Op::Mul as u64);
    let is_alu_imm = in_range(Op::Addi as u64, Op::Lui as u64);
    let is_load = opc(Op::Lw);
    let is_store = opc(Op::Sw);
    let is_branch = in_range(Op::Beq as u64, Op::Bgeu as u64);
    let is_jal = opc(Op::Jal);
    let is_jalr = opc(Op::Jalr);
    let is_halt = opc(Op::Halt);
    let is_rdcyc = opc(Op::Rdcyc);
    let is_rdinst = opc(Op::Rdinst);
    let is_out = opc(Op::Out);
    let is_mul = opc(Op::Mul);

    // Field mapping: stores/branches carry rs1 in field 1 swapped order
    // (see strober-isa encoding).
    let swapped = &is_branch | &is_store;
    let rs1 = swapped.mux(&f1, &f2);
    let rs1 = is_store.mux(&f2, &rs1); // sw: rs1 is field 2
    let rs2_raw = is_alu_reg.mux(&f3, &is_store.mux(&f1, &f2));
    let zero5 = ctx.lit(0, w(5));
    let uses_rs2 = &is_alu_reg | &is_branch | &is_store;
    let rs2 = uses_rs2.mux(&rs2_raw, &zero5);

    let writes_rd = &(&is_alu_reg | &is_alu_imm)
        | &(&(&is_load | &is_jal) | &(&is_jalr | &(&is_rdcyc | &is_rdinst)));
    let rd = writes_rd.mux(&f1, &zero5);

    // `lui`, `jal`, `rdcyc`, `rdinst` ignore rs1; everything else reads it.
    let no_rs1 = &(&opc(Op::Lui) | &is_jal) | &(&is_rdcyc | &is_rdinst);
    let uses_rs1 = !&no_rs1;

    Decoded {
        op,
        rd,
        rs1,
        rs2,
        imm_s,
        imm_z,
        is_alu_reg,
        is_alu_imm,
        is_load,
        is_store,
        is_branch,
        is_jal,
        is_jalr,
        is_halt,
        is_rdcyc,
        is_rdinst,
        is_out,
        is_mul,
        writes_rd,
        uses_rs1,
        uses_rs2,
    }
}

/// Computes the ALU result for a decoded instruction.
///
/// `a` is the rs1 value; `b` is the rs2 value for register forms. The
/// immediate variants pick the correct immediate (sign- or zero-extended)
/// internally; `lui` produces `imm << 16`.
pub fn alu(ctx: &Ctx, d: &Decoded, a: &Sig, b: &Sig) -> Sig {
    let opc = |o: Op| d.op.eq_lit(o as u64);

    // Second operand: immediate for I-forms and for load/store/jalr
    // address arithmetic.
    let imm_logical = &opc(Op::Andi) | &(&opc(Op::Ori) | &opc(Op::Xori));
    let imm = imm_logical.mux(&d.imm_z, &d.imm_s);
    let use_imm = &d.is_alu_imm | &(&(&d.is_load | &d.is_store) | &d.is_jalr);
    let operand_b = use_imm.mux(&imm, b);

    let amt = operand_b.bits(4, 0).zext(w(32));
    let sum = a + &operand_b;
    let diff = a - &operand_b;
    let and_v = a & &operand_b;
    let or_v = a | &operand_b;
    let xor_v = a ^ &operand_b;
    let slt_v = a.lts(&operand_b).zext(w(32));
    let sltu_v = a.ltu(&operand_b).zext(w(32));
    let sll_v = a.shl(&amt);
    let srl_v = a.shr(&amt);
    let sra_v = a.sra(&amt);
    let mul_v = a.mul(&operand_b);
    let lui_v = d.imm_z.shl_lit(16);

    let is_sub = opc(Op::Sub);
    let is_and = &opc(Op::And) | &opc(Op::Andi);
    let is_or = &opc(Op::Or) | &opc(Op::Ori);
    let is_xor = &opc(Op::Xor) | &opc(Op::Xori);
    let is_slt = &opc(Op::Slt) | &opc(Op::Slti);
    let is_sltu = &opc(Op::Sltu) | &opc(Op::Sltiu);
    let is_sll = &opc(Op::Sll) | &opc(Op::Slli);
    let is_srl = &opc(Op::Srl) | &opc(Op::Srli);
    let is_sra = &opc(Op::Sra) | &opc(Op::Srai);
    let is_lui = opc(Op::Lui);

    ctx.select(
        &[
            (is_sub, diff),
            (is_and, and_v),
            (is_or, or_v),
            (is_xor, xor_v),
            (is_slt, slt_v),
            (is_sltu, sltu_v),
            (is_sll, sll_v),
            (is_srl, srl_v),
            (is_sra, sra_v),
            (d.is_mul.clone(), mul_v),
            (is_lui, lui_v),
        ],
        &sum, // add/addi/loads/stores address arithmetic default
    )
}

/// Evaluates a conditional branch: 1 when taken.
pub fn branch_taken(d: &Decoded, a: &Sig, b: &Sig) -> Sig {
    let opc = |o: Op| d.op.eq_lit(o as u64);
    let eq = a.eq(b);
    let ltu = a.ltu(b);
    let lts = a.lts(b);
    let sel_beq = opc(Op::Beq);
    let sel_bne = opc(Op::Bne);
    let sel_blt = opc(Op::Blt);
    let sel_bltu = opc(Op::Bltu);
    let sel_bge = opc(Op::Bge);
    // default arm below covers bgeu
    let t_beq = eq.clone();
    let t_bne = !&eq;
    let t_bge = !&lts;
    let t_bgeu = !&ltu;
    let cond = sel_beq.mux(
        &t_beq,
        &sel_bne.mux(
            &t_bne,
            &sel_blt.mux(&lts, &sel_bltu.mux(&ltu, &sel_bge.mux(&t_bge, &t_bgeu))),
        ),
    );
    &cond & &d.is_branch
}

#[cfg(test)]
mod tests {
    use super::*;
    use strober_isa::{encode, Instr, Reg};
    use strober_sim::Simulator;

    /// Builds a combinational decode+alu+branch testbench design.
    fn harness() -> strober_rtl::Design {
        let ctx = Ctx::new("decode_tb");
        let ir = ctx.input("ir", w(32));
        let a = ctx.input("a", w(32));
        let b = ctx.input("b", w(32));
        let d = decode(&ctx, &ir);
        let result = alu(&ctx, &d, &a, &b);
        let taken = branch_taken(&d, &a, &b);
        ctx.output("result", &result);
        ctx.output("taken", &taken);
        ctx.output("rd", &d.rd);
        ctx.output("rs1", &d.rs1);
        ctx.output("rs2", &d.rs2);
        ctx.output("is_load", &d.is_load);
        ctx.output("is_store", &d.is_store);
        ctx.output("writes_rd", &d.writes_rd);
        ctx.finish().unwrap()
    }

    fn check(sim: &mut Simulator, i: Instr, a: u32, b: u32) -> (u64, u64) {
        sim.poke_by_name("ir", u64::from(encode(i))).unwrap();
        sim.poke_by_name("a", u64::from(a)).unwrap();
        sim.poke_by_name("b", u64::from(b)).unwrap();
        (
            sim.peek_output("result").unwrap(),
            sim.peek_output("taken").unwrap(),
        )
    }

    fn r(op: Op, rd: u8, rs1: u8, rs2: u8) -> Instr {
        Instr {
            op,
            rd: Reg(rd),
            rs1: Reg(rs1),
            rs2: Reg(rs2),
            imm: 0,
        }
    }

    fn i(op: Op, rd: u8, rs1: u8, imm: i32) -> Instr {
        Instr {
            op,
            rd: Reg(rd),
            rs1: Reg(rs1),
            rs2: Reg(0),
            imm,
        }
    }

    #[test]
    fn alu_matches_reference_semantics() {
        let design = harness();
        let mut sim = Simulator::new(&design).unwrap();
        let cases: Vec<(Instr, u32, u32, u32)> = vec![
            (r(Op::Add, 1, 2, 3), 5, 7, 12),
            (r(Op::Sub, 1, 2, 3), 5, 7, 0xFFFF_FFFE),
            (r(Op::And, 1, 2, 3), 0b1100, 0b1010, 0b1000),
            (r(Op::Or, 1, 2, 3), 0b1100, 0b1010, 0b1110),
            (r(Op::Xor, 1, 2, 3), 0b1100, 0b1010, 0b0110),
            (r(Op::Slt, 1, 2, 3), (-1i32) as u32, 1, 1),
            (r(Op::Sltu, 1, 2, 3), (-1i32) as u32, 1, 0),
            (r(Op::Sll, 1, 2, 3), 1, 5, 32),
            (r(Op::Srl, 1, 2, 3), 0x8000_0000, 4, 0x0800_0000),
            (r(Op::Sra, 1, 2, 3), 0x8000_0000, 4, 0xF800_0000),
            (r(Op::Mul, 1, 2, 3), 6, 7, 42),
            (i(Op::Addi, 1, 2, -5), 3, 0, (-2i32) as u32),
            (i(Op::Andi, 1, 2, -1), 0x1234_5678, 0, 0x5678), // zero-extended
            (
                i(Op::Ori, 1, 2, 0x0F0F_u16 as i32),
                0x1000_0000,
                0,
                0x1000_0F0F,
            ),
            (i(Op::Slli, 1, 2, 8), 0xAB, 0, 0xAB00),
            (i(Op::Srai, 1, 2, 8), 0x8000_0000, 0, 0xFF80_0000),
            (i(Op::Lui, 1, 0, 0x1234), 0, 0, 0x1234_0000),
            (i(Op::Lw, 1, 2, 8), 100, 0, 108), // address arithmetic
        ];
        for (instr, a, b, expect) in cases {
            let (got, _) = check(&mut sim, instr, a, b);
            assert_eq!(got, u64::from(expect), "{instr:?} a={a:#x} b={b:#x}");
        }
    }

    #[test]
    fn branch_conditions() {
        let design = harness();
        let mut sim = Simulator::new(&design).unwrap();
        let b_ = |op: Op| Instr {
            op,
            rd: Reg(0),
            rs1: Reg(1),
            rs2: Reg(2),
            imm: 4,
        };
        let cases = vec![
            (Op::Beq, 5u32, 5u32, 1u64),
            (Op::Beq, 5, 6, 0),
            (Op::Bne, 5, 6, 1),
            (Op::Blt, (-1i32) as u32, 1, 1),
            (Op::Bltu, (-1i32) as u32, 1, 0),
            (Op::Bge, 1, 1, 1),
            (Op::Bgeu, 0, 1, 0),
            (Op::Bgeu, (-1i32) as u32, 1, 1),
        ];
        for (op, a, b, expect) in cases {
            let (_, taken) = check(&mut sim, b_(op), a, b);
            assert_eq!(taken, expect, "{op:?} a={a:#x} b={b:#x}");
        }
        // Non-branches never report taken.
        let (_, taken) = check(&mut sim, r(Op::Add, 1, 2, 3), 1, 1);
        assert_eq!(taken, 0);
    }

    #[test]
    fn register_field_mapping() {
        let design = harness();
        let mut sim = Simulator::new(&design).unwrap();

        // R-type: rd=f1, rs1=f2, rs2=f3.
        sim.poke_by_name("ir", u64::from(encode(r(Op::Add, 3, 4, 5))))
            .unwrap();
        assert_eq!(sim.peek_output("rd").unwrap(), 3);
        assert_eq!(sim.peek_output("rs1").unwrap(), 4);
        assert_eq!(sim.peek_output("rs2").unwrap(), 5);

        // Store: rs1 = base, rs2 = data, no rd.
        let sw = Instr {
            op: Op::Sw,
            rd: Reg(0),
            rs1: Reg(7),
            rs2: Reg(9),
            imm: 4,
        };
        sim.poke_by_name("ir", u64::from(encode(sw))).unwrap();
        assert_eq!(sim.peek_output("rd").unwrap(), 0);
        assert_eq!(sim.peek_output("rs1").unwrap(), 7);
        assert_eq!(sim.peek_output("rs2").unwrap(), 9);
        assert_eq!(sim.peek_output("is_store").unwrap(), 1);
        assert_eq!(sim.peek_output("writes_rd").unwrap(), 0);

        // Branch: rs1/rs2, no rd.
        let beq = Instr {
            op: Op::Beq,
            rd: Reg(0),
            rs1: Reg(6),
            rs2: Reg(8),
            imm: -2,
        };
        sim.poke_by_name("ir", u64::from(encode(beq))).unwrap();
        assert_eq!(sim.peek_output("rs1").unwrap(), 6);
        assert_eq!(sim.peek_output("rs2").unwrap(), 8);
        assert_eq!(sim.peek_output("rd").unwrap(), 0);

        // Load: writes rd.
        sim.poke_by_name("ir", u64::from(encode(i(Op::Lw, 11, 12, 4))))
            .unwrap();
        assert_eq!(sim.peek_output("is_load").unwrap(), 1);
        assert_eq!(sim.peek_output("rd").unwrap(), 11);
        assert_eq!(sim.peek_output("writes_rd").unwrap(), 1);
    }
}

//! The uncore: bus arbiter between the L1 caches and the external memory
//! port.
//!
//! One read may be outstanding at a time (responses are 4-beat bursts and
//! must not interleave); posted writes are granted whenever the port is
//! otherwise free. The data cache has priority, matching typical L1
//! arbiters.

use crate::cache::CacheMemPort;
use strober_dsl::{Ctx, Sig};
use strober_rtl::Width;

fn w(bits: u32) -> Width {
    Width::new(bits).expect("static width")
}

/// The uncore's external request port plus per-cache grants and routed
/// refill strobes.
#[derive(Debug, Clone)]
pub struct Uncore {
    /// External request valid (to the memory system).
    pub req_valid: Sig,
    /// External request is a posted write.
    pub req_rw: Sig,
    /// External request address.
    pub req_addr: Sig,
    /// External write data.
    pub req_wdata: Sig,
    /// External request tag (0 = icache, 1 = dcache).
    pub req_tag: Sig,
    /// Grant to the instruction cache.
    pub grant_i: Sig,
    /// Grant to the data cache.
    pub grant_d: Sig,
    /// Refill beat routed to the instruction cache.
    pub refill_i_valid: Sig,
    /// Refill beat routed to the data cache.
    pub refill_d_valid: Sig,
}

/// Builds the arbiter inside scope `uncore`.
///
/// `resp_valid`/`resp_tag` come from the external memory system; the
/// refill data itself is broadcast (each cache consumes its own strobe).
pub fn build_uncore(
    ctx: &Ctx,
    imem: &CacheMemPort,
    dmem: &CacheMemPort,
    resp_valid: &Sig,
    resp_tag: &Sig,
) -> Uncore {
    ctx.scope("uncore", |c| {
        // Outstanding-read bookkeeping: tag of the read in flight plus a
        // beat counter.
        let busy = c.reg("read_busy", w(1), 0);
        let busy_tag = c.reg("read_tag", w(1), 0);
        let beats = c.reg("beats", w(2), 0);

        let idle = !busy.out();

        // A read may be granted only when no read is outstanding; writes
        // are posted and can always take a free port cycle. D$ wins ties.
        let d_read = &dmem.req_valid & &!&dmem.req_rw;
        let d_write = &dmem.req_valid & &dmem.req_rw;
        let i_read = imem.req_valid.clone(); // the I$ never writes

        let grant_d_read = &d_read & &idle;
        let grant_d_write = d_write.clone();
        let grant_d = &grant_d_read | &grant_d_write;
        let port_free_for_i = !&dmem.req_valid;
        let grant_i = &(&i_read & &idle) & &port_free_for_i;

        // External request mux (D$ priority).
        let req_valid = &grant_d | &grant_i;
        let req_rw = &grant_d & &dmem.req_rw;
        let req_addr = grant_d.mux(&dmem.req_addr, &imem.req_addr);
        let req_wdata = dmem.req_wdata.clone();
        let req_tag = grant_d.clone();

        // Track the outstanding read.
        let read_granted = &grant_d_read | &grant_i;
        let last_beat = &(&busy.out() & resp_valid) & &beats.out().eq_lit(3);
        let busy_next = c.select(
            &[
                (read_granted.clone(), c.lit1(true)),
                (last_beat.clone(), c.lit1(false)),
            ],
            &busy.out(),
        );
        busy.set(&busy_next);
        busy_tag.set_en(&grant_d_read, &read_granted);
        let beats_next = c.select(
            &[
                (read_granted.clone(), c.lit(0, w(2))),
                (resp_valid.clone(), beats.out().add_lit(1)),
            ],
            &beats.out(),
        );
        beats.set(&beats_next);

        // Route refill beats by tag.
        let tag_match = resp_tag.eq(&busy_tag.out());
        let routed = &(&busy.out() & resp_valid) & &tag_match;
        let refill_d_valid = &routed & &busy_tag.out();
        let refill_i_valid = &routed & &!&busy_tag.out();

        Uncore {
            req_valid,
            req_rw,
            req_addr,
            req_wdata,
            req_tag,
            grant_i,
            grant_d,
            refill_i_valid,
            refill_d_valid,
        }
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use strober_sim::Simulator;

    fn harness() -> strober_rtl::Design {
        let ctx = Ctx::new("uncore_tb");
        let mk = |p: &str| CacheMemPort {
            req_valid: ctx.input(&format!("{p}_valid"), w(1)),
            req_rw: ctx.input(&format!("{p}_rw"), w(1)),
            req_addr: ctx.input(&format!("{p}_addr"), w(32)),
            req_wdata: ctx.input(&format!("{p}_wdata"), w(32)),
        };
        let imem = mk("i");
        let dmem = mk("d");
        let resp_valid = ctx.input("resp_valid", w(1));
        let resp_tag = ctx.input("resp_tag", w(1));
        let u = build_uncore(&ctx, &imem, &dmem, &resp_valid, &resp_tag);
        ctx.output("req_valid", &u.req_valid);
        ctx.output("req_rw", &u.req_rw);
        ctx.output("req_addr", &u.req_addr);
        ctx.output("req_tag", &u.req_tag);
        ctx.output("grant_i", &u.grant_i);
        ctx.output("grant_d", &u.grant_d);
        ctx.output("refill_i", &u.refill_i_valid);
        ctx.output("refill_d", &u.refill_d_valid);
        ctx.finish().unwrap()
    }

    #[test]
    fn dcache_has_priority() {
        let mut sim = Simulator::new(&harness()).unwrap();
        sim.poke_by_name("i_valid", 1).unwrap();
        sim.poke_by_name("i_rw", 0).unwrap();
        sim.poke_by_name("i_addr", 0x100).unwrap();
        sim.poke_by_name("d_valid", 1).unwrap();
        sim.poke_by_name("d_rw", 0).unwrap();
        sim.poke_by_name("d_addr", 0x200).unwrap();
        assert_eq!(sim.peek_output("grant_d").unwrap(), 1);
        assert_eq!(sim.peek_output("grant_i").unwrap(), 0);
        assert_eq!(sim.peek_output("req_addr").unwrap(), 0x200);
        assert_eq!(sim.peek_output("req_tag").unwrap(), 1);
    }

    #[test]
    fn single_outstanding_read_and_routing() {
        let mut sim = Simulator::new(&harness()).unwrap();
        // I$ read granted.
        sim.poke_by_name("i_valid", 1).unwrap();
        sim.poke_by_name("i_addr", 0x40).unwrap();
        assert_eq!(sim.peek_output("grant_i").unwrap(), 1);
        sim.step();
        // While outstanding, D$ reads are blocked, writes allowed.
        sim.poke_by_name("d_valid", 1).unwrap();
        sim.poke_by_name("d_rw", 0).unwrap();
        assert_eq!(sim.peek_output("grant_d").unwrap(), 0);
        sim.poke_by_name("d_rw", 1).unwrap();
        assert_eq!(sim.peek_output("grant_d").unwrap(), 1);
        sim.poke_by_name("d_valid", 0).unwrap();
        // Four beats route to the I$.
        sim.poke_by_name("resp_valid", 1).unwrap();
        sim.poke_by_name("resp_tag", 0).unwrap();
        for _ in 0..4 {
            assert_eq!(sim.peek_output("refill_i").unwrap(), 1);
            assert_eq!(sim.peek_output("refill_d").unwrap(), 0);
            sim.step();
        }
        sim.poke_by_name("resp_valid", 0).unwrap();
        // Read port free again.
        sim.poke_by_name("d_valid", 1).unwrap();
        sim.poke_by_name("d_rw", 0).unwrap();
        assert_eq!(sim.peek_output("grant_d").unwrap(), 1);
        assert_eq!(sim.peek_output("req_tag").unwrap(), 1);
    }

    #[test]
    fn write_while_read_outstanding_does_not_break_routing() {
        let mut sim = Simulator::new(&harness()).unwrap();
        // D$ read granted.
        sim.poke_by_name("d_valid", 1).unwrap();
        sim.poke_by_name("d_rw", 0).unwrap();
        sim.poke_by_name("d_addr", 0x80).unwrap();
        assert_eq!(sim.peek_output("grant_d").unwrap(), 1);
        sim.step();
        sim.poke_by_name("d_valid", 0).unwrap();
        // Beats tagged for D$ route correctly even when the I$ posts a
        // request that is blocked.
        sim.poke_by_name("i_valid", 1).unwrap();
        sim.poke_by_name("resp_valid", 1).unwrap();
        sim.poke_by_name("resp_tag", 1).unwrap();
        assert_eq!(sim.peek_output("grant_i").unwrap(), 0);
        assert_eq!(sim.peek_output("refill_d").unwrap(), 1);
        assert_eq!(sim.peek_output("refill_i").unwrap(), 0);
    }
}

//! Rok: the 5-stage in-order scalar core (Rocket analog).
//!
//! Pipeline: IF → ID → EX → MEM → WB.
//!
//! * Full forwarding (MEM→EX, WB→EX, WB→ID-read bypass); no load-use
//!   bubble because load data forwards combinationally from the D$ hit
//!   path.
//! * Branches, `jal` and `jalr` resolve in EX with a two-cycle redirect
//!   penalty; there is no branch predictor (the case study's Rocket has
//!   "only a simple branch predictor" — ours predicts not-taken).
//! * Blocking caches: an I$ miss bubbles IF, a D$ miss/store backpressure
//!   freezes the whole pipeline.
//! * `halt` latches `tohost = (rs1 << 1) | 1` at WB and stops fetching.

use crate::cache::{build_cache, CacheCpuReq};
use crate::config::CoreConfig;
use crate::decode::{alu, branch_taken, decode};
use crate::uncore::build_uncore;
use strober_dsl::{Ctx, Sig};
use strober_rtl::{Design, Width};

fn w(bits: u32) -> Width {
    Width::new(bits).expect("static width")
}

/// Builds the Rok design for a configuration.
///
/// # Panics
///
/// Panics on inconsistent configurations (generator-time error).
pub fn build_rok(config: &CoreConfig) -> Design {
    assert!(!config.superscalar, "build_rok takes in-order configs");
    assert!(config.physical_regs >= 32);
    let ctx = Ctx::new(config.name.clone());
    let c = &ctx;
    let w1 = w(1);
    let w32 = w(32);

    // ---- external memory interface -----------------------------------------
    let mem_resp_valid = c.input("mem_resp_valid", w1);
    let mem_resp_tag = c.input("mem_resp_tag", w1);
    let mem_resp_rdata = c.input("mem_resp_rdata", w32);

    // ---- global wires (resolved later) ---------------------------------------
    let freeze_w = c.wire(w1); // D$ backpressure: hold everything
    let freeze = freeze_w.sig();
    let mul_stall_w = c.wire(w1); // multiplier occupies EX for an extra cycle
    let mul_stall = mul_stall_w.sig();
    // `hold` freezes the front end (IF/ID/EX); `freeze` alone also stops
    // MEM/WB.
    let hold = &freeze | &mul_stall;
    let redirect_w = c.wire(w1); // EX control-flow change
    let redirect = redirect_w.sig();
    let redirect_target_w = c.wire(w32);
    let halted_q_w = c.wire(w1);
    let halted_q = halted_q_w.sig();

    // ---- CSRs ------------------------------------------------------------------
    let retire_w = c.wire(w1);
    let halt_val_w = c.wire(w(33));
    let halt_now_w = c.wire(w1);
    let (cycle_q, instret_q, tohost_out, halted_out) = c.scope("csr", |c| {
        let cycle = c.reg("cycle", w32, 0);
        cycle.set(&cycle.out().add_lit(1));
        let instret = c.reg("instret", w32, 0);
        instret.set_en(&instret.out().add_lit(1), &retire_w.sig());
        let tohost = c.reg("tohost", w(33), 0);
        tohost.set_en(&halt_val_w.sig(), &halt_now_w.sig());
        let halted = c.reg("halted", w1, 0);
        halted.set_en(&c.lit1(true), &halt_now_w.sig());
        (cycle.out(), instret.out(), tohost.out(), halted.out())
    });
    // `halting` stops fetch as soon as a halt reaches EX, so no shadow
    // instruction younger than the halt can reach MEM and touch memory.
    let halting_set_w = c.wire(w1);
    let halting = c.scope("csr", |c| {
        let halting = c.reg("halting", w1, 0);
        halting.set_en(&c.lit1(true), &halting_set_w.sig());
        halting.out()
    });
    halted_q_w.drive(&(&halted_out | &halting));

    // ---- IF: program counter and I$ --------------------------------------------
    let pc = c.scope("fetch", |c| c.reg("pc", w32, 0));
    let fetch_wanted = !&halted_q;
    let icache_req = CacheCpuReq {
        valid: fetch_wanted.clone(),
        addr: pc.out(),
        rw: c.lit1(false),
        wdata: c.lit(0, w32),
    };
    let igrant_w = c.wire(w1);
    let irefill_valid_w = c.wire(w1);
    let icache = build_cache(
        c,
        "icache",
        config.icache_bytes,
        &icache_req,
        &igrant_w.sig(),
        &irefill_valid_w.sig(),
        &mem_resp_rdata,
    );
    let instr_valid = &icache.cpu.resp_valid & &fetch_wanted;
    let instr = icache.cpu.resp_data.clone();

    // PC update: redirect > advance-on-fetch > hold. All gated by freeze.
    let pc_plus4 = pc.out().add_lit(4);
    let pc_next = c.select(
        &[
            (redirect.clone(), redirect_target_w.sig()),
            (instr_valid.clone(), pc_plus4),
        ],
        &pc.out(),
    );
    pc.set_en(&pc_next, &!&hold);

    // ---- ID pipeline registers ----------------------------------------------
    let (id_valid, id_pc, id_ir) = c.scope("decode", |c| {
        let adv = !&hold;
        let id_valid = c.reg("id_valid", w1, 0);
        let id_pc = c.reg("id_pc", w32, 0);
        let id_ir = c.reg("id_ir", w32, 0);
        // A redirect kills the fetched instruction; an I$ miss bubbles.
        let take = &(&instr_valid & &!&redirect) & &!&halted_q;
        id_valid.set_en(&take, &adv);
        id_pc.set_en(&pc.out(), &adv);
        id_ir.set_en(&instr, &adv);
        (id_valid.out(), id_pc.out(), id_ir.out())
    });

    // Decode in ID, regfile read with WB bypass.
    let d_id = decode(c, &id_ir);
    let rf = c.scope("regfile", |c| {
        c.mem("rf", w32, config.physical_regs as usize)
    });
    let rf_addr_w = Width::for_depth(config.physical_regs as usize).expect("depth ok");
    let wb_info_w = c.wire(w(1 + 5 + 32)); // {valid&writes, rd, value}
    let wb_info = wb_info_w.sig();
    let wb_bypass_valid = wb_info.bit(37);
    let wb_bypass_rd = wb_info.bits(36, 32);
    let wb_bypass_val = wb_info.bits(31, 0);

    let read_rf = |rs: &Sig| -> Sig {
        let raw = rf.read(&rs.zext(rf_addr_w));
        let is_zero = rs.eq_lit(0);
        let zero = c.lit(0, w32);
        let bypass = &(&wb_bypass_valid & &wb_bypass_rd.eq(rs)) & &!&is_zero;
        let v = bypass.mux(&wb_bypass_val, &raw);
        is_zero.mux(&zero, &v)
    };
    let id_rs1_val = read_rf(&d_id.rs1);
    let id_rs2_val = read_rf(&d_id.rs2);

    // ---- EX pipeline registers --------------------------------------------------
    // Operand registers re-capture their own forwarded values while the
    // stage holds: a producer can retire out of the bypass network during
    // a D$ stall, so the value must be latched when it flies by.
    let ex_rs1_capture_w = c.wire(w32);
    let ex_rs2_capture_w = c.wire(w32);
    let (ex_valid, ex_pc, ex_ir, ex_rs1_v, ex_rs2_v) = c.scope("alu", |c| {
        let adv = !&hold;
        let ex_valid = c.reg("ex_valid", w1, 0);
        let ex_pc = c.reg("ex_pc", w32, 0);
        let ex_ir = c.reg("ex_ir", w32, 0);
        let ex_rs1 = c.reg("ex_rs1_val", w32, 0);
        let ex_rs2 = c.reg("ex_rs2_val", w32, 0);
        let take = &id_valid & &!&redirect;
        ex_valid.set_en(&take, &adv);
        ex_pc.set_en(&id_pc, &adv);
        ex_ir.set_en(&id_ir, &adv);
        ex_rs1.set(&hold.mux(&ex_rs1_capture_w.sig(), &id_rs1_val));
        ex_rs2.set(&hold.mux(&ex_rs2_capture_w.sig(), &id_rs2_val));
        (
            ex_valid.out(),
            ex_pc.out(),
            ex_ir.out(),
            ex_rs1.out(),
            ex_rs2.out(),
        )
    });

    let d_ex = decode(c, &ex_ir);

    // Forwarding into EX from MEM and WB.
    let mem_fwd_w = c.wire(w(1 + 5 + 32)); // {valid&writes, rd, value}
    let mem_fwd = mem_fwd_w.sig();
    let mem_fwd_valid = mem_fwd.bit(37);
    let mem_fwd_rd = mem_fwd.bits(36, 32);
    let mem_fwd_val = mem_fwd.bits(31, 0);

    let fwd = |rs: &Sig, base: &Sig| -> Sig {
        let nz = !&rs.eq_lit(0);
        let from_mem = &(&mem_fwd_valid & &mem_fwd_rd.eq(rs)) & &nz;
        let from_wb = &(&wb_bypass_valid & &wb_bypass_rd.eq(rs)) & &nz;
        from_mem.mux(&mem_fwd_val, &from_wb.mux(&wb_bypass_val, base))
    };
    let ex_a = fwd(&d_ex.rs1, &ex_rs1_v);
    let ex_b = fwd(&d_ex.rs2, &ex_rs2_v);
    ex_rs1_capture_w.drive(&ex_a);
    ex_rs2_capture_w.drive(&ex_b);

    // Two-cycle pipelined multiplier in its own region (Fig. 9a reports
    // it separately): operands latch in the first EX cycle (stalling the
    // front end once), the product is consumed in the second.
    let (mul_stall_v, mul_product) = c.scope("mul", |c| {
        let s_a = c.reg("s1_a", w32, 0);
        let s_b = c.reg("s1_b", w32, 0);
        let busy = c.reg("busy", w1, 0);
        let start = &(&(&ex_valid & &d_ex.is_mul) & &!&busy.out()) & &!&freeze;
        busy.set(&start);
        s_a.set_en(&ex_a, &start);
        s_b.set_en(&ex_b, &start);
        let product = s_a.out().mul(&s_b.out());
        (start, product)
    });
    mul_stall_w.drive(&mul_stall_v);
    let alu_raw = alu(c, &d_ex, &ex_a, &ex_b);
    let alu_result = d_ex.is_mul.mux(&mul_product, &alu_raw);

    // Control flow.
    let taken = branch_taken(&d_ex, &ex_a, &ex_b);
    let imm_words = d_ex.imm_s.shl_lit(2);
    let br_target = &ex_pc + &imm_words;
    let jalr_target = {
        let sum = &ex_a + &d_ex.imm_s;
        let mask = c.lit(0xFFFF_FFFC, w32);
        &sum & &mask
    };
    // A halt in EX also redirects (killing its shadow) and latches
    // `halting` so fetch stops; the halt itself proceeds to WB.
    let halt_in_ex = &ex_valid & &d_ex.is_halt;
    halting_set_w.drive(&(&halt_in_ex & &!&freeze));
    let do_redirect = &ex_valid & &(&(&taken | &d_ex.is_jal) | &(&d_ex.is_jalr | &d_ex.is_halt));
    redirect_w.drive(&(&do_redirect & &!&freeze));
    let target = d_ex.is_jalr.mux(&jalr_target, &br_target);
    redirect_target_w.drive(&target);

    // Writeback value produced in EX (everything but load data).
    let link = ex_pc.add_lit(4);
    let ex_value = c.select(
        &[
            (&d_ex.is_jal | &d_ex.is_jalr, link),
            (d_ex.is_rdcyc.clone(), cycle_q.clone()),
            (d_ex.is_rdinst.clone(), instret_q.clone()),
        ],
        &alu_result,
    );

    // ---- MEM pipeline registers -----------------------------------------------
    let (mem_valid, mem_ir, mem_val, mem_st_data) = c.scope("lsu", |c| {
        let adv = !&freeze;
        let mem_valid = c.reg("mem_valid", w1, 0);
        let mem_ir = c.reg("mem_ir", w32, 0);
        let mem_val = c.reg("mem_val", w32, 0);
        let mem_st = c.reg("mem_st_data", w32, 0);
        // The EX instruction moves on unless the multiplier is holding it.
        let take = &ex_valid & &!&mul_stall;
        mem_valid.set_en(&take, &adv);
        mem_ir.set_en(&ex_ir, &adv);
        mem_val.set_en(&ex_value, &adv);
        mem_st.set_en(&ex_b, &adv);
        (mem_valid.out(), mem_ir.out(), mem_val.out(), mem_st.out())
    });

    let d_mem = decode(c, &mem_ir);
    let dcache_req = CacheCpuReq {
        valid: &mem_valid & &(&d_mem.is_load | &d_mem.is_store),
        addr: mem_val.clone(),
        rw: d_mem.is_store.clone(),
        wdata: mem_st_data.clone(),
    };
    let dgrant_w = c.wire(w1);
    let drefill_valid_w = c.wire(w1);
    let dcache = build_cache(
        c,
        "dcache",
        config.dcache_bytes,
        &dcache_req,
        &dgrant_w.sig(),
        &drefill_valid_w.sig(),
        &mem_resp_rdata,
    );
    freeze_w.drive(&dcache.cpu.stall);

    let mem_result = d_mem.is_load.mux(&dcache.cpu.resp_data, &mem_val);
    // Forward from MEM (loads forward the D$ hit data combinationally).
    let mem_fwd_valid_v = &(&mem_valid & &d_mem.writes_rd) & &!&freeze;
    let packed_mem = mem_fwd_valid_v.cat(&d_mem.rd).cat(&mem_result);
    mem_fwd_w.drive(&packed_mem);

    // ---- uncore -------------------------------------------------------------------
    let uncore = build_uncore(c, &icache.mem, &dcache.mem, &mem_resp_valid, &mem_resp_tag);
    igrant_w.drive(&uncore.grant_i);
    irefill_valid_w.drive(&uncore.refill_i_valid);
    dgrant_w.drive(&uncore.grant_d);
    drefill_valid_w.drive(&uncore.refill_d_valid);

    // ---- WB pipeline registers -------------------------------------------------
    let (wb_valid, wb_ir, wb_value) = c.scope("wb", |c| {
        let wb_valid = c.reg("wb_valid", w1, 0);
        let wb_ir = c.reg("wb_ir", w32, 0);
        let wb_value = c.reg("wb_value", w32, 0);
        // A frozen MEM stage sends a bubble into WB.
        let take = &mem_valid & &!&freeze;
        wb_valid.set(&take);
        wb_ir.set_en(&mem_ir, &!&freeze);
        wb_value.set_en(&mem_result, &!&freeze);
        (wb_valid.out(), wb_ir.out(), wb_value.out())
    });

    let d_wb = decode(c, &wb_ir);
    let rf_we = &(&wb_valid & &d_wb.writes_rd) & &!&d_wb.rd.eq_lit(0);
    rf.write(&d_wb.rd.zext(rf_addr_w), &wb_value, &rf_we);
    let packed_wb = rf_we.cat(&d_wb.rd).cat(&wb_value);
    wb_info_w.drive(&packed_wb);

    // Retirement, halt, console.
    let retire = &wb_valid & &!&halted_out;
    retire_w.drive(&retire);
    let halt_now = &(&wb_valid & &d_wb.is_halt) & &!&halted_out;
    halt_now_w.drive(&halt_now);
    let one33 = c.lit(1, w(33));
    let halt_code = &wb_value.zext(w(33)).shl_lit(1) | &one33;
    halt_val_w.drive(&halt_code);

    // ---- outputs ----------------------------------------------------------------
    ctx.output("mem_req_valid", &uncore.req_valid);
    ctx.output("mem_req_rw", &uncore.req_rw);
    ctx.output("mem_req_addr", &uncore.req_addr);
    ctx.output("mem_req_wdata", &uncore.req_wdata);
    ctx.output("mem_req_tag", &uncore.req_tag);
    ctx.output("tohost", &tohost_out);
    ctx.output("instret", &instret_q);
    let console_valid = &(&wb_valid & &d_wb.is_out) & &!&halted_out;
    ctx.output("console_valid", &console_valid);
    ctx.output("console_byte", &wb_value.bits(7, 0));

    ctx.finish().expect("Rok must elaborate")
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn rok_elaborates() {
        let design = build_rok(&CoreConfig::rok_tiny());
        assert!(design.register_count() > 10);
        assert!(design.memory_count() >= 5); // rf, 2×tags, 2×data
        assert!(design.state_bits() > 8 * 2 * 1024);
    }

    #[test]
    fn full_size_rok_elaborates() {
        let design = build_rok(&CoreConfig::rok());
        // 2 × 16 KiB caches dominate the state bits.
        assert!(design.state_bits() > 2 * 16 * 1024 * 8);
    }
}

//! State elements: registers, memories and forward-reference wires.

use crate::ctx::Ctx;
use crate::sig::Sig;
use strober_rtl::{MemId, RegId, Width};

/// A register under construction.
///
/// Created with [`Ctx::reg`]; read with [`Reg::out`]; connected exactly once
/// with [`Reg::set`] or [`Reg::set_en`].
#[derive(Clone)]
pub struct Reg {
    ctx: Ctx,
    id: RegId,
    out: Sig,
}

impl std::fmt::Debug for Reg {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "Reg({}, {})", self.id, self.out.width())
    }
}

impl Reg {
    pub(crate) fn new(ctx: Ctx, id: RegId, out: Sig) -> Self {
        Reg { ctx, id, out }
    }

    /// The register's current value.
    pub fn out(&self) -> Sig {
        self.out.clone()
    }

    /// The underlying IR register id.
    pub fn id(&self) -> RegId {
        self.id
    }

    /// The register's width.
    pub fn width(&self) -> Width {
        self.out.width()
    }

    /// Connects the next value; the register updates every cycle.
    ///
    /// # Panics
    ///
    /// Panics if already connected or on a width mismatch.
    pub fn set(&self, next: &Sig) {
        let mut inner = self.ctx.inner.borrow_mut();
        let res = inner.design.connect_reg(self.id, next.id(), None);
        drop(inner);
        self.ctx.lift(res);
    }

    /// Connects the next value gated by a one-bit enable; the register
    /// holds its value in cycles where `enable` is 0.
    ///
    /// # Panics
    ///
    /// Panics if already connected or on width errors.
    pub fn set_en(&self, next: &Sig, enable: &Sig) {
        let mut inner = self.ctx.inner.borrow_mut();
        let res = inner
            .design
            .connect_reg(self.id, next.id(), Some(enable.id()));
        drop(inner);
        self.ctx.lift(res);
    }
}

/// A memory under construction.
///
/// Created with [`Ctx::mem`]. Reads are combinational ([`Mem::read`]);
/// writes take effect at the clock edge ([`Mem::write`]).
#[derive(Clone)]
pub struct Mem {
    ctx: Ctx,
    id: MemId,
}

impl std::fmt::Debug for Mem {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "Mem({})", self.id)
    }
}

impl Mem {
    pub(crate) fn new(ctx: Ctx, id: MemId) -> Self {
        Mem { ctx, id }
    }

    /// The underlying IR memory id.
    pub fn id(&self) -> MemId {
        self.id
    }

    /// The address width expected by this memory's ports.
    pub fn addr_width(&self) -> Width {
        self.ctx.inner.borrow().design.memory(self.id).addr_width()
    }

    /// Adds a combinational read port and returns the read data.
    ///
    /// # Panics
    ///
    /// Panics unless `addr` matches the memory's address width exactly
    /// (use [`Sig::trunc`]/[`Sig::zext`] to adapt).
    pub fn read(&self, addr: &Sig) -> Sig {
        let mut inner = self.ctx.inner.borrow_mut();
        let res = inner.design.mem_read(self.id, addr.id());
        drop(inner);
        let id = self.ctx.lift(res);
        self.ctx.wrap(id)
    }

    /// Adds a synchronous read port: the address is captured in a named
    /// register, so the data appears one cycle after the address is
    /// presented — the timing of an SRAM macro's registered read. This is
    /// how sync-read arrays are expressed on the comb-read IR (see
    /// DESIGN.md §5).
    ///
    /// # Panics
    ///
    /// Panics on width errors or a duplicate register name.
    pub fn read_sync(&self, name: &str, addr: &Sig, enable: &Sig) -> Sig {
        let aw = self.addr_width();
        let ctx = self.ctx.clone();
        let addr_reg = ctx.reg(name, aw, 0);
        addr_reg.set_en(addr, enable);
        self.read(&addr_reg.out())
    }

    /// Adds a clocked write port.
    ///
    /// # Panics
    ///
    /// Panics on address/data/enable width errors.
    pub fn write(&self, addr: &Sig, data: &Sig, enable: &Sig) {
        let mut inner = self.ctx.inner.borrow_mut();
        let res = inner
            .design
            .mem_write(self.id, addr.id(), data.id(), enable.id());
        drop(inner);
        self.ctx.lift(res);
    }
}

/// A forward-reference wire.
///
/// Created with [`Ctx::wire`]; its value ([`Wire::sig`]) can be used before
/// the driver is connected with [`Wire::drive`], enabling feedback-style
/// construction such as pipeline stall signals.
#[derive(Clone)]
pub struct Wire {
    sig: Sig,
}

impl std::fmt::Debug for Wire {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "Wire({:?})", self.sig)
    }
}

impl Wire {
    pub(crate) fn new(sig: Sig) -> Self {
        Wire { sig }
    }

    /// The wire's value.
    pub fn sig(&self) -> Sig {
        self.sig.clone()
    }

    /// Connects the wire's driver.
    ///
    /// # Panics
    ///
    /// Panics if already driven or on a width mismatch.
    pub fn drive(&self, src: &Sig) {
        let ctx = self.sig.ctx.clone();
        let mut inner = ctx.inner.borrow_mut();
        let res = inner.design.drive_wire(self.sig.id(), src.id());
        drop(inner);
        ctx.lift(res);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn w(bits: u32) -> Width {
        Width::new(bits).unwrap()
    }

    #[test]
    fn register_counter_round_trip() {
        let ctx = Ctx::new("t");
        let r = ctx.reg("count", w(8), 7);
        r.set(&r.out().add_lit(1));
        assert_eq!(r.width(), w(8));
        let d = ctx.finish().unwrap();
        let (_, reg) = d.registers().next().unwrap();
        assert_eq!(reg.init(), 7);
    }

    #[test]
    #[should_panic(expected = "already connected")]
    fn double_set_panics() {
        let ctx = Ctx::new("t");
        let r = ctx.reg("r", w(4), 0);
        let v = ctx.lit(1, w(4));
        r.set(&v);
        r.set(&v);
    }

    #[test]
    fn memory_read_write() {
        let ctx = Ctx::new("t");
        let m = ctx.mem("ram", w(16), 64);
        assert_eq!(m.addr_width(), w(6));
        let addr = ctx.input("addr", w(6));
        let data = ctx.input("data", w(16));
        let we = ctx.input("we", Width::BIT);
        let rd = m.read(&addr);
        m.write(&addr, &data, &we);
        ctx.output("q", &rd);
        let d = ctx.finish().unwrap();
        assert_eq!(d.memory_count(), 1);
    }

    #[test]
    fn sync_read_has_one_cycle_latency() {
        let ctx = Ctx::new("t");
        let m = ctx.mem_init("rom", w(8), 4, vec![10, 20, 30, 40]);
        let addr = ctx.input("addr", w(2));
        let en = ctx.input("en", Width::BIT);
        let q = m.read_sync("raddr", &addr, &en);
        ctx.output("q", &q);
        let design = ctx.finish().unwrap();
        let mut sim = strober_sim::Simulator::new(&design).unwrap();
        sim.poke_by_name("en", 1).unwrap();
        sim.poke_by_name("addr", 2).unwrap();
        // Before the edge the registered address is still 0.
        assert_eq!(sim.peek_output("q").unwrap(), 10);
        sim.step();
        assert_eq!(sim.peek_output("q").unwrap(), 30);
        // With the enable low, the port holds the old address.
        sim.poke_by_name("en", 0).unwrap();
        sim.poke_by_name("addr", 3).unwrap();
        sim.step();
        assert_eq!(sim.peek_output("q").unwrap(), 30);
    }

    #[test]
    fn wire_feedback() {
        let ctx = Ctx::new("t");
        let stall = ctx.wire(Width::BIT);
        let r = ctx.reg("pc", w(8), 0);
        r.set_en(&r.out().add_lit(4), &!stall.sig());
        stall.drive(&r.out().bit(7));
        ctx.finish().unwrap();
    }
}

//! Signal handles and their operator set.

use crate::ctx::Ctx;
use strober_rtl::{BinOp, NodeId, UnOp, Width};

/// A handle to a combinational value in a design under construction.
///
/// `Sig` supports Rust's arithmetic/logical operators (on references:
/// `&a + &b`) with hardware semantics — wrapping arithmetic, width-checked
/// operands — plus hardware-specific methods for slicing, extension,
/// comparison and multiplexing. All operators panic on width mismatches;
/// see the [crate-level documentation](crate) for the panics policy.
#[derive(Clone)]
pub struct Sig {
    pub(crate) ctx: Ctx,
    pub(crate) id: NodeId,
    pub(crate) width: Width,
}

impl std::fmt::Debug for Sig {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "Sig({}, {})", self.id, self.width)
    }
}

impl Sig {
    /// The underlying IR node id.
    pub fn id(&self) -> NodeId {
        self.id
    }

    /// The signal's width.
    pub fn width(&self) -> Width {
        self.width
    }

    fn bin(&self, op: BinOp, rhs: &Sig) -> Sig {
        let mut inner = self.ctx.inner.borrow_mut();
        let res = inner.design.binary(op, self.id, rhs.id);
        drop(inner);
        let id = self.ctx.lift(res);
        self.ctx.wrap(id)
    }

    fn un(&self, op: UnOp) -> Sig {
        let id = self.ctx.inner.borrow_mut().design.unary(op, self.id);
        self.ctx.wrap(id)
    }

    /// A literal of this signal's width (convenience for mixed expressions).
    ///
    /// # Panics
    ///
    /// Panics if `value` does not fit.
    pub fn lit(&self, value: u64) -> Sig {
        self.ctx.lit(value, self.width)
    }

    // ---- comparisons -----------------------------------------------------

    /// Equality comparison, producing one bit.
    pub fn eq(&self, rhs: &Sig) -> Sig {
        self.bin(BinOp::Eq, rhs)
    }

    /// Inequality comparison, producing one bit.
    pub fn neq(&self, rhs: &Sig) -> Sig {
        self.bin(BinOp::Neq, rhs)
    }

    /// Unsigned less-than, producing one bit.
    pub fn ltu(&self, rhs: &Sig) -> Sig {
        self.bin(BinOp::Ltu, rhs)
    }

    /// Unsigned less-or-equal, producing one bit.
    pub fn leu(&self, rhs: &Sig) -> Sig {
        self.bin(BinOp::Leu, rhs)
    }

    /// Signed less-than, producing one bit.
    pub fn lts(&self, rhs: &Sig) -> Sig {
        self.bin(BinOp::Lts, rhs)
    }

    /// Signed less-or-equal, producing one bit.
    pub fn les(&self, rhs: &Sig) -> Sig {
        self.bin(BinOp::Les, rhs)
    }

    /// Equality against a literal, producing one bit.
    ///
    /// # Panics
    ///
    /// Panics if `value` does not fit this signal's width.
    pub fn eq_lit(&self, value: u64) -> Sig {
        let l = self.lit(value);
        self.eq(&l)
    }

    /// Inequality against a literal, producing one bit.
    ///
    /// # Panics
    ///
    /// Panics if `value` does not fit this signal's width.
    pub fn neq_lit(&self, value: u64) -> Sig {
        let l = self.lit(value);
        self.neq(&l)
    }

    // ---- arithmetic helpers ------------------------------------------------

    /// Addition with a literal.
    ///
    /// # Panics
    ///
    /// Panics if `value` does not fit this signal's width.
    pub fn add_lit(&self, value: u64) -> Sig {
        let l = self.lit(value);
        self.bin(BinOp::Add, &l)
    }

    /// Subtraction of a literal.
    ///
    /// # Panics
    ///
    /// Panics if `value` does not fit this signal's width.
    pub fn sub_lit(&self, value: u64) -> Sig {
        let l = self.lit(value);
        self.bin(BinOp::Sub, &l)
    }

    /// Unsigned division (division by zero yields all-ones; see
    /// [`BinOp::DivU`]).
    pub fn divu(&self, rhs: &Sig) -> Sig {
        self.bin(BinOp::DivU, rhs)
    }

    /// Unsigned remainder (remainder by zero yields the dividend; see
    /// [`BinOp::RemU`]).
    pub fn remu(&self, rhs: &Sig) -> Sig {
        self.bin(BinOp::RemU, rhs)
    }

    /// Wrapping multiplication (low word).
    pub fn mul(&self, rhs: &Sig) -> Sig {
        self.bin(BinOp::Mul, rhs)
    }

    // ---- shifts -------------------------------------------------------------

    /// Logical left shift by a dynamic amount (same-width operands).
    pub fn shl(&self, amount: &Sig) -> Sig {
        self.bin(BinOp::Shl, amount)
    }

    /// Logical right shift by a dynamic amount (same-width operands).
    pub fn shr(&self, amount: &Sig) -> Sig {
        self.bin(BinOp::Shr, amount)
    }

    /// Arithmetic right shift by a dynamic amount (same-width operands).
    pub fn sra(&self, amount: &Sig) -> Sig {
        self.bin(BinOp::Sra, amount)
    }

    /// Logical left shift by a constant.
    pub fn shl_lit(&self, amount: u32) -> Sig {
        let l = self.lit(u64::from(amount) & self.width.mask());
        self.bin(BinOp::Shl, &l)
    }

    /// Logical right shift by a constant.
    pub fn shr_lit(&self, amount: u32) -> Sig {
        let l = self.lit(u64::from(amount) & self.width.mask());
        self.bin(BinOp::Shr, &l)
    }

    // ---- reductions ----------------------------------------------------------

    /// OR-reduction: 1 iff any bit is set.
    pub fn red_or(&self) -> Sig {
        self.un(UnOp::RedOr)
    }

    /// AND-reduction: 1 iff all bits are set.
    pub fn red_and(&self) -> Sig {
        self.un(UnOp::RedAnd)
    }

    /// XOR-reduction: parity.
    pub fn red_xor(&self) -> Sig {
        self.un(UnOp::RedXor)
    }

    /// Two's-complement negation.
    pub fn neg(&self) -> Sig {
        self.un(UnOp::Neg)
    }

    // ---- bit manipulation ------------------------------------------------------

    /// Bits `[hi:lo]` inclusive.
    ///
    /// # Panics
    ///
    /// Panics if the range is empty or out of bounds.
    pub fn bits(&self, hi: u32, lo: u32) -> Sig {
        let mut inner = self.ctx.inner.borrow_mut();
        let res = inner.design.slice(self.id, hi, lo);
        drop(inner);
        let id = self.ctx.lift(res);
        self.ctx.wrap(id)
    }

    /// A single bit.
    ///
    /// # Panics
    ///
    /// Panics if `i` is out of bounds.
    pub fn bit(&self, i: u32) -> Sig {
        self.bits(i, i)
    }

    /// Concatenation `{self, lo}` with `self` in the most significant bits.
    ///
    /// # Panics
    ///
    /// Panics if the result exceeds 64 bits.
    pub fn cat(&self, lo: &Sig) -> Sig {
        let mut inner = self.ctx.inner.borrow_mut();
        let res = inner.design.cat(self.id, lo.id);
        drop(inner);
        let id = self.ctx.lift(res);
        self.ctx.wrap(id)
    }

    /// Zero-extends to `width`.
    ///
    /// # Panics
    ///
    /// Panics if `width` is narrower than this signal.
    pub fn zext(&self, width: Width) -> Sig {
        assert!(
            width.bits() >= self.width.bits(),
            "zext from {} to {width} would truncate",
            self.width
        );
        if width == self.width {
            return self.clone();
        }
        let pad = self.ctx.lit(
            0,
            Width::new(width.bits() - self.width.bits()).expect("nonzero pad"),
        );
        pad.cat(self)
    }

    /// Sign-extends to `width`.
    ///
    /// # Panics
    ///
    /// Panics if `width` is narrower than this signal.
    pub fn sext(&self, width: Width) -> Sig {
        assert!(
            width.bits() >= self.width.bits(),
            "sext from {} to {width} would truncate",
            self.width
        );
        if width == self.width {
            return self.clone();
        }
        let sign = self.bit(self.width.bits() - 1);
        let mut pad = sign.clone();
        while pad.width.bits() < width.bits() - self.width.bits() {
            let take = (width.bits() - self.width.bits() - pad.width.bits()).min(pad.width.bits());
            let extra = pad.bits(take - 1, 0);
            pad = pad.cat(&extra);
        }
        pad.cat(self)
    }

    /// Truncates to the low `width` bits.
    ///
    /// # Panics
    ///
    /// Panics if `width` is wider than this signal.
    pub fn trunc(&self, width: Width) -> Sig {
        assert!(
            width.bits() <= self.width.bits(),
            "trunc from {} to {width} would extend",
            self.width
        );
        if width == self.width {
            return self.clone();
        }
        self.bits(width.bits() - 1, 0)
    }

    // ---- multiplexing -----------------------------------------------------------

    /// Two-way multiplexer: `self ? t : f`; `self` must be one bit.
    ///
    /// # Panics
    ///
    /// Panics on width errors.
    pub fn mux(&self, t: &Sig, f: &Sig) -> Sig {
        let mut inner = self.ctx.inner.borrow_mut();
        let res = inner.design.mux(self.id, t.id, f.id);
        drop(inner);
        let id = self.ctx.lift(res);
        self.ctx.wrap(id)
    }
}

macro_rules! binop_impl {
    ($trait:ident, $method:ident, $op:expr) => {
        impl std::ops::$trait for &Sig {
            type Output = Sig;
            fn $method(self, rhs: &Sig) -> Sig {
                self.bin($op, rhs)
            }
        }

        impl std::ops::$trait for Sig {
            type Output = Sig;
            fn $method(self, rhs: Sig) -> Sig {
                (&self).bin($op, &rhs)
            }
        }

        impl std::ops::$trait<&Sig> for Sig {
            type Output = Sig;
            fn $method(self, rhs: &Sig) -> Sig {
                (&self).bin($op, rhs)
            }
        }

        impl std::ops::$trait<Sig> for &Sig {
            type Output = Sig;
            fn $method(self, rhs: Sig) -> Sig {
                self.bin($op, &rhs)
            }
        }
    };
}

binop_impl!(Add, add, BinOp::Add);
binop_impl!(Sub, sub, BinOp::Sub);
binop_impl!(BitAnd, bitand, BinOp::And);
binop_impl!(BitOr, bitor, BinOp::Or);
binop_impl!(BitXor, bitxor, BinOp::Xor);

impl std::ops::Not for &Sig {
    type Output = Sig;
    fn not(self) -> Sig {
        self.un(UnOp::Not)
    }
}

impl std::ops::Not for Sig {
    type Output = Sig;
    fn not(self) -> Sig {
        self.un(UnOp::Not)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn w(bits: u32) -> Width {
        Width::new(bits).unwrap()
    }

    #[test]
    fn operators_build_nodes_with_expected_widths() {
        let ctx = Ctx::new("t");
        let a = ctx.input("a", w(8));
        let b = ctx.input("b", w(8));
        assert_eq!((&a + &b).width(), w(8));
        assert_eq!((&a - &b).width(), w(8));
        assert_eq!((&a & &b).width(), w(8));
        assert_eq!((&a | &b).width(), w(8));
        assert_eq!((&a ^ &b).width(), w(8));
        assert_eq!((!&a).width(), w(8));
        assert_eq!(a.eq(&b).width(), Width::BIT);
        assert_eq!(a.ltu(&b).width(), Width::BIT);
        assert_eq!(a.red_or().width(), Width::BIT);
    }

    #[test]
    fn extension_and_truncation() {
        let ctx = Ctx::new("t");
        let a = ctx.input("a", w(8));
        assert_eq!(a.zext(w(32)).width(), w(32));
        assert_eq!(a.sext(w(32)).width(), w(32));
        assert_eq!(a.trunc(w(4)).width(), w(4));
        assert_eq!(a.zext(w(8)).width(), w(8));
        assert_eq!(a.bits(7, 4).width(), w(4));
        assert_eq!(a.bit(0).width(), Width::BIT);
        assert_eq!(a.cat(&a).width(), w(16));
    }

    #[test]
    #[should_panic(expected = "would truncate")]
    fn zext_narrower_panics() {
        let ctx = Ctx::new("t");
        let a = ctx.input("a", w(8));
        let _ = a.zext(w(4));
    }

    #[test]
    #[should_panic(expected = "width mismatch")]
    fn mismatched_widths_panic() {
        let ctx = Ctx::new("t");
        let a = ctx.input("a", w(8));
        let b = ctx.input("b", w(4));
        let _ = &a + &b;
    }

    #[test]
    fn sext_wide_pad() {
        // Extending 1 bit to 64 exercises the pad-doubling loop.
        let ctx = Ctx::new("t");
        let a = ctx.input("a", Width::BIT);
        assert_eq!(a.sext(Width::W64).width(), Width::W64);
        assert_eq!(a.sext(w(2)).width(), w(2));
        assert_eq!(a.sext(w(33)).width(), w(33));
    }
}

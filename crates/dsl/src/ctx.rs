//! The construction context.

use crate::sig::Sig;
use crate::storage::{Mem, Reg, Wire};
use std::cell::RefCell;
use std::rc::Rc;
use strober_rtl::{Design, NodeId, RtlError, Width};

pub(crate) struct CtxInner {
    pub(crate) design: Design,
    pub(crate) scopes: Vec<String>,
}

impl CtxInner {
    pub(crate) fn qualify(&self, name: &str) -> String {
        if self.scopes.is_empty() {
            name.to_owned()
        } else {
            let mut s = self.scopes.join("/");
            s.push('/');
            s.push_str(name);
            s
        }
    }
}

/// A shared handle to a design under construction.
///
/// `Ctx` is cheap to clone; all clones refer to the same design. It is
/// single-threaded by design (generators are ordinary sequential Rust
/// code), mirroring Chisel's `Builder` context.
#[derive(Clone)]
pub struct Ctx {
    pub(crate) inner: Rc<RefCell<CtxInner>>,
}

impl std::fmt::Debug for Ctx {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        let inner = self.inner.borrow();
        write!(
            f,
            "Ctx({}, {} nodes)",
            inner.design.name(),
            inner.design.node_count()
        )
    }
}

impl Ctx {
    /// Starts a new design.
    pub fn new(name: impl Into<String>) -> Self {
        Ctx {
            inner: Rc::new(RefCell::new(CtxInner {
                design: Design::new(name),
                scopes: Vec::new(),
            })),
        }
    }

    pub(crate) fn wrap(&self, id: NodeId) -> Sig {
        let width = self.inner.borrow().design.width(id);
        Sig {
            ctx: self.clone(),
            id,
            width,
        }
    }

    pub(crate) fn lift<T>(&self, r: Result<T, RtlError>) -> T {
        match r {
            Ok(v) => v,
            Err(e) => panic!("hardware generator error: {e}"),
        }
    }

    /// Declares a top-level input.
    ///
    /// # Panics
    ///
    /// Panics on a duplicate name.
    pub fn input(&self, name: &str, width: Width) -> Sig {
        let id = {
            let mut inner = self.inner.borrow_mut();
            let qual = inner.qualify(name);
            let res = inner.design.input(qual, width);
            drop(inner);
            self.lift(res)
        };
        self.wrap(id)
    }

    /// Declares a named top-level output driven by `sig`.
    ///
    /// # Panics
    ///
    /// Panics on a duplicate name.
    pub fn output(&self, name: &str, sig: &Sig) {
        let mut inner = self.inner.borrow_mut();
        let qual = inner.qualify(name);
        let res = inner.design.output(qual, sig.id);
        drop(inner);
        self.lift(res);
    }

    /// A literal constant of the given width.
    ///
    /// # Panics
    ///
    /// Panics if `value` does not fit in `width` bits.
    pub fn lit(&self, value: u64, width: Width) -> Sig {
        let id = self.inner.borrow_mut().design.constant(value, width);
        self.wrap(id)
    }

    /// A one-bit literal.
    pub fn lit1(&self, value: bool) -> Sig {
        self.lit(u64::from(value), Width::BIT)
    }

    /// Declares a register; its name is qualified by the current scope.
    ///
    /// The register's next value must be connected exactly once with
    /// [`Reg::set`] or [`Reg::set_en`].
    ///
    /// # Panics
    ///
    /// Panics on a duplicate name or an oversized reset value.
    pub fn reg(&self, name: &str, width: Width, init: u64) -> Reg {
        let (reg_id, out_id) = {
            let mut inner = self.inner.borrow_mut();
            let qual = inner.qualify(name);
            let res = inner.design.reg(qual, width, init);
            let reg_id = match res {
                Ok(r) => r,
                Err(e) => panic!("hardware generator error: {e}"),
            };
            let out_id = inner.design.reg_out(reg_id);
            (reg_id, out_id)
        };
        Reg::new(self.clone(), reg_id, self.wrap(out_id))
    }

    /// Declares a memory of `depth` words; its name is qualified by the
    /// current scope.
    ///
    /// # Panics
    ///
    /// Panics on invalid parameters or a duplicate name.
    pub fn mem(&self, name: &str, width: Width, depth: usize) -> Mem {
        self.mem_init(name, width, depth, Vec::new())
    }

    /// Declares a memory with initial contents.
    ///
    /// # Panics
    ///
    /// Panics on invalid parameters or a duplicate name.
    pub fn mem_init(&self, name: &str, width: Width, depth: usize, init: Vec<u64>) -> Mem {
        let mem_id = {
            let mut inner = self.inner.borrow_mut();
            let qual = inner.qualify(name);
            let res = inner.design.mem(qual, width, depth, init);
            match res {
                Ok(m) => m,
                Err(e) => panic!("hardware generator error: {e}"),
            }
        };
        Mem::new(self.clone(), mem_id)
    }

    /// Declares a forward-reference wire, to be driven later with
    /// [`Wire::drive`].
    pub fn wire(&self, width: Width) -> Wire {
        let id = self.inner.borrow_mut().design.wire(width);
        Wire::new(self.wrap(id))
    }

    /// Runs `body` inside a named scope: state elements created inside get
    /// `name/` prefixed to their names, building the hierarchical paths the
    /// power breakdown groups by.
    ///
    /// Scopes nest: `ctx.scope("core", |c| c.scope("fetch", …))` produces
    /// `core/fetch/…` names.
    pub fn scope<T>(&self, name: &str, body: impl FnOnce(&Ctx) -> T) -> T {
        self.inner.borrow_mut().scopes.push(name.to_owned());
        let result = body(self);
        self.inner.borrow_mut().scopes.pop();
        result
    }

    /// Priority selector: returns the value of the first `(condition,
    /// value)` pair whose condition is true, or `default` if none is.
    ///
    /// Generates a right-leaning mux chain, the workhorse of control logic.
    ///
    /// # Panics
    ///
    /// Panics if conditions are not one bit wide or values' widths differ.
    pub fn select(&self, cases: &[(Sig, Sig)], default: &Sig) -> Sig {
        let mut acc = default.clone();
        for (cond, value) in cases.iter().rev() {
            acc = cond.mux(value, &acc);
        }
        acc
    }

    /// Finishes construction, validates, and returns the design.
    ///
    /// The design is cloned out of the context, so `Sig`/[`Reg`] handles may
    /// still be alive — they refer to the context, not to the returned
    /// design.
    ///
    /// # Errors
    ///
    /// Returns any [`RtlError`] found by validation (unconnected registers
    /// or wires, combinational loops).
    pub fn finish(&self) -> Result<Design, RtlError> {
        let inner = self.inner.borrow();
        inner.design.validate()?;
        Ok(inner.design.clone())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn scope_prefixes_state_names() {
        let ctx = Ctx::new("t");
        let r = ctx.scope("core", |c| {
            c.scope("fetch", |c2| c2.reg("pc", Width::W32, 0))
        });
        r.set(&ctx.lit(0, Width::W32));
        let d = ctx.finish().unwrap();
        let names: Vec<_> = d.registers().map(|(_, r)| r.name().to_owned()).collect();
        assert_eq!(names, vec!["core/fetch/pc"]);
    }

    #[test]
    fn select_prefers_earlier_cases() {
        let ctx = Ctx::new("t");
        let a = ctx.input("a", Width::BIT);
        let b = ctx.input("b", Width::BIT);
        let w8 = Width::new(8).unwrap();
        let v1 = ctx.lit(1, w8);
        let v2 = ctx.lit(2, w8);
        let v0 = ctx.lit(0, w8);
        let out = ctx.select(&[(a, v1), (b, v2)], &v0);
        ctx.output("o", &out);
        let d = ctx.finish().unwrap();
        assert!(d.node_count() > 5);
    }

    #[test]
    #[should_panic(expected = "duplicate name")]
    fn duplicate_input_panics() {
        let ctx = Ctx::new("t");
        let _ = ctx.input("x", Width::BIT);
        let _ = ctx.input("x", Width::BIT);
    }

    #[test]
    fn finish_validates() {
        let ctx = Ctx::new("t");
        let _unconnected = ctx.reg("r", Width::BIT, 0);
        assert!(ctx.finish().is_err());
    }
}

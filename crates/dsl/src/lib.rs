//! A hardware construction DSL embedded in Rust.
//!
//! This crate plays the role of Chisel (§IV-A of the paper): a host-language
//! API for *generating* structural RTL. Like Chisel, it is not high-level
//! synthesis — every method corresponds to a concrete circuit element, and
//! the output is a flat [`strober_rtl::Design`] that the Strober compiler
//! passes (FAME1 transform, scan-chain insertion, synthesis) consume.
//!
//! The entry point is [`Ctx`], a shared handle to a design under
//! construction. Values are [`Sig`]s, which support Rust's arithmetic and
//! logical operators, plus hardware-specific methods (bit slicing,
//! zero/sign extension, multiplexing). State elements are created with
//! [`Ctx::reg`] and [`Ctx::mem`], forward references with [`Ctx::wire`],
//! and hierarchy is expressed with [`Ctx::scope`], which prefixes the names
//! of the state elements created inside it (`"fetch/pc"`); those prefixes
//! become the per-component power breakdown groups of Fig. 9a.
//!
//! # Panics
//!
//! Unlike `strober-rtl`, whose API returns `Result`, this crate follows
//! Chisel's generator-time semantics: malformed circuits (width mismatches,
//! duplicate names, invalid slices) are **programming errors in the
//! generator** and panic with a descriptive message. Generators run at
//! "elaboration time", so a panic is a build failure, not a runtime hazard.
//!
//! # Examples
//!
//! A GCD unit, the classic Chisel starter circuit:
//!
//! ```
//! use strober_dsl::Ctx;
//! use strober_rtl::Width;
//!
//! let ctx = Ctx::new("gcd");
//! let w16 = Width::new(16).unwrap();
//! let a_in = ctx.input("a", w16);
//! let b_in = ctx.input("b", w16);
//! let start = ctx.input("start", Width::BIT);
//!
//! let x = ctx.reg("x", w16, 0);
//! let y = ctx.reg("y", w16, 0);
//! let x_gt_y = y.out().ltu(&x.out());
//! let x_next = x_gt_y.mux(&(&x.out() - &y.out()), &x.out());
//! let y_next = x_gt_y.mux(&y.out(), &(&y.out() - &x.out()));
//! x.set(&start.mux(&a_in, &x_next));
//! y.set(&start.mux(&b_in, &y_next));
//!
//! ctx.output("result", &x.out());
//! ctx.output("done", &y.out().eq_lit(0));
//! let design = ctx.finish().unwrap();
//! assert_eq!(design.register_count(), 2);
//! ```

#![deny(missing_docs)]
#![deny(missing_debug_implementations)]

mod ctx;
mod sig;
mod storage;

pub use ctx::Ctx;
pub use sig::Sig;
pub use storage::{Mem, Reg, Wire};

//! Transform-correctness tests on random designs: the FAME1 hub with
//! `fire` held high must match the bare target cycle-for-cycle, and a
//! captured snapshot must reconstruct the exact architectural state.

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use strober_fame::{transform, FameConfig, SnapshotController};
use strober_sim::rand_design::{rand_design, RandDesignConfig};
use strober_sim::Simulator;

fn ports_and_outputs(design: &strober_rtl::Design) -> (Vec<(String, u64)>, Vec<String>) {
    let ports = design
        .ports()
        .iter()
        .map(|p| (p.name().to_owned(), p.width().mask()))
        .collect();
    let outputs = design.outputs().iter().map(|(n, _)| n.clone()).collect();
    (ports, outputs)
}

#[test]
fn hub_matches_target_on_random_designs() {
    let cfg = RandDesignConfig::default();
    for seed in 0..15 {
        let design = rand_design(seed, &cfg);
        let fame = transform(&design, &FameConfig::default()).expect("transform");
        let mut target = Simulator::new(&design).expect("target");
        let mut hub = Simulator::new(&fame.hub).expect("hub");
        hub.poke_by_name("fame/fire", 1).unwrap();

        let (ports, outputs) = ports_and_outputs(&design);
        let mut rng = StdRng::seed_from_u64(seed ^ 0xFA3E);
        for cycle in 0..60 {
            for (name, mask) in &ports {
                let v = rng.gen::<u64>() & mask;
                target.poke_by_name(name, v).unwrap();
                hub.poke_by_name(name, v).unwrap();
            }
            for out in &outputs {
                assert_eq!(
                    target.peek_output(out).unwrap(),
                    hub.peek_output(out).unwrap(),
                    "seed {seed}: `{out}` diverged at cycle {cycle}"
                );
            }
            target.step();
            hub.step();
        }
    }
}

#[test]
fn stalls_anywhere_never_perturb_the_target() {
    // Randomly interleave fire/stall cycles; the target-visible trajectory
    // must equal an uninterrupted run.
    let cfg = RandDesignConfig::default();
    for seed in 20..28 {
        let design = rand_design(seed, &cfg);
        let fame = transform(&design, &FameConfig::default()).expect("transform");
        let (ports, outputs) = ports_and_outputs(&design);

        let run = |stall_pattern: bool| -> Vec<u64> {
            let mut hub = Simulator::new(&fame.hub).expect("hub");
            let mut rng = StdRng::seed_from_u64(seed);
            let mut stall_rng = StdRng::seed_from_u64(seed ^ 0x57A11);
            let mut trace = Vec::new();
            let mut fired = 0;
            while fired < 40 {
                let fire = !stall_pattern || stall_rng.gen_bool(0.6);
                hub.poke_by_name("fame/fire", u64::from(fire)).unwrap();
                if fire {
                    for (name, mask) in &ports {
                        let v = rng.gen::<u64>() & mask;
                        hub.poke_by_name(name, v).unwrap();
                    }
                    for out in &outputs {
                        trace.push(hub.peek_output(out).unwrap());
                    }
                    fired += 1;
                }
                hub.step();
            }
            trace
        };

        assert_eq!(
            run(false),
            run(true),
            "seed {seed}: stalling changed the target trajectory"
        );
    }
}

#[test]
fn snapshot_state_restores_exactly_into_a_fresh_target() {
    // Capture a snapshot mid-run, pour its registers and memories into a
    // bare target simulator, and require identical behaviour thereafter.
    let cfg = RandDesignConfig::default();
    for seed in 40..48 {
        let design = rand_design(seed, &cfg);
        let fame = transform(
            &design,
            &FameConfig {
                replay_length: 8,
                warmup: 0,
            },
        )
        .expect("transform");
        let mut hub = Simulator::new(&fame.hub).expect("hub");
        let mut ctl = SnapshotController::new(&fame.meta);
        let (ports, outputs) = ports_and_outputs(&design);

        let mut rng = StdRng::seed_from_u64(seed ^ 0xBEEF);
        ctl.set_fire(&mut hub, true).unwrap();
        let mut input_log: Vec<Vec<u64>> = Vec::new();
        for _ in 0..37 {
            let vals: Vec<u64> = ports.iter().map(|(_, m)| rng.gen::<u64>() & m).collect();
            for ((name, _), v) in ports.iter().zip(&vals) {
                hub.poke_by_name(name, *v).unwrap();
            }
            input_log.push(vals);
            hub.step();
        }
        ctl.set_fire(&mut hub, false).unwrap();
        let pending = ctl.begin_snapshot(&mut hub).unwrap();

        // Rebuild a bare target at the snapshot point.
        let mut target = Simulator::new(&design).expect("target");
        let reg_ids: std::collections::HashMap<String, strober_rtl::RegId> = design
            .registers()
            .map(|(id, r)| (r.name().to_owned(), id))
            .collect();
        for (name, value) in &pending.regs {
            target.set_reg_value(reg_ids[name], *value);
        }
        let mem_ids: std::collections::HashMap<String, strober_rtl::MemId> = design
            .memories()
            .map(|(id, m)| (m.name().to_owned(), id))
            .collect();
        for (name, contents) in &pending.mems {
            for (addr, word) in contents.iter().enumerate() {
                target.set_mem_value(mem_ids[name], addr, *word);
            }
        }

        // Continue both with the same fresh inputs; they must agree.
        ctl.set_fire(&mut hub, true).unwrap();
        for cycle in 0..30 {
            let vals: Vec<u64> = ports.iter().map(|(_, m)| rng.gen::<u64>() & m).collect();
            for ((name, _), v) in ports.iter().zip(&vals) {
                hub.poke_by_name(name, *v).unwrap();
                target.poke_by_name(name, *v).unwrap();
            }
            for out in &outputs {
                assert_eq!(
                    hub.peek_output(out).unwrap(),
                    target.peek_output(out).unwrap(),
                    "seed {seed}: `{out}` diverged {cycle} cycles after restore"
                );
            }
            hub.step();
            target.step();
        }
        let _ = input_log;
    }
}
